// Case study: keystroke sniffing (paper Section III-D).
//
// xdotool-style keystroke bursts leave timing-correlated spikes in the HPC
// traces; the attacker counts how many keys were typed in the monitoring
// window (whose timing pattern in turn identifies the keys). This example
// also shows the order-statistic feature trick that gives a plain MLP the
// burst-position invariance a CNN gets from convolution.
#include <iostream>

#include "util/table.hpp"

#include "attack/ksa.hpp"
#include "attack/wfa.hpp"
#include "core/aegis.hpp"

using namespace aegis;

// aegis-rng: stream(keystroke-sniffing-main)
int main() {
  core::Aegis engine(isa::CpuModel::kAmdEpyc7252);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*engine.database().find(name));
  }

  attack::KsaScale scale;
  scale.traces_per_count = 90;
  scale.epochs = 25;
  scale.slices = 240;
  auto secrets = attack::make_ksa_secrets(scale);

  std::cout << "training the keystroke-count model (K in [0, 9], "
            << scale.traces_per_count << " windows per count)...\n";
  attack::ClassificationAttack attacker(engine.database(),
                                        attack::make_ksa_config(events, scale));
  const auto history = attacker.train(secrets);
  std::cout << "validation accuracy: "
            << util::fmt_pct(history.back().val_accuracy)
            << " (paper: 95.21 %)\n\n";

  // Sniff a few victim windows.
  util::Rng rng(0x5EULL);
  attack::CollectionConfig collect;
  collect.event_ids = events;
  std::cout << "sample victim windows:\n";
  for (std::size_t k : {0u, 2u, 5u, 9u}) {
    const trace::Trace t =
        attack::collect_one(engine.database(), *secrets[k], collect, rng.next_u64());
    std::cout << "  typed " << k << " keys  ->  sniffed "
              << attacker.predict(t) << "\n";
  }

  // Why sorted features matter: the same attack without them.
  auto positional = attack::make_ksa_config(events, scale, 0x4A5CULL);
  positional.sort_windows = false;
  attack::ClassificationAttack positional_attacker(engine.database(), positional);
  const auto positional_history = positional_attacker.train(secrets);
  std::cout << "\nwithout order-statistic features the same model reaches only "
            << util::fmt_pct(positional_history.back().val_accuracy)
            << " (burst positions are random; a positional MLP cannot count "
               "them)\n";

  // Defense.
  attack::WfaScale site_scale;
  site_scale.sites = 10;
  site_scale.slices = scale.slices;
  auto site_secrets = attack::make_wfa_secrets(site_scale);
  core::OfflineConfig offline = core::make_quick_offline_config();
  offline.fuzz_top_events = 0;
  const core::OfflineResult analysis =
      engine.analyze(*site_secrets[0], site_secrets, offline);
  dp::MechanismConfig mechanism;
  mechanism.kind = dp::MechanismKind::kLaplace;
  mechanism.epsilon = 1.0;
  auto obfuscator = engine.make_obfuscator(analysis, site_secrets, mechanism);
  const double defended =
      attacker.exploit(secrets, 4, 0x5FULL, [&] { return obfuscator->session(); });
  std::cout << "\nunder Aegis (Laplace, eps=2^0): " << util::fmt_pct(defended)
            << " sniffing accuracy (random guess 10.00 %)\n";
  return 0;
}
