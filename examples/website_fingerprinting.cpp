// Case study: website fingerprinting (paper Section III-C + Fig. 9a).
//
// A malicious hypervisor samples four HPC events while the guest browses,
// and a classifier maps each 4 x T trace to one of the 45 Alexa-top sites.
// This example trains the attack at full 45-site width, shows per-site
// results, then sweeps the Event Obfuscator's privacy budget to trace the
// accuracy-vs-epsilon defense curve for both DP mechanisms.
#include <iostream>

#include "util/table.hpp"

#include "attack/wfa.hpp"
#include "core/aegis.hpp"

using namespace aegis;

// aegis-rng: stream(website-fingerprinting-main)
int main() {
  core::Aegis engine(isa::CpuModel::kAmdEpyc7252);

  attack::WfaScale scale;
  scale.sites = 45;
  scale.traces_per_site = 12;
  scale.epochs = 20;
  scale.slices = 200;
  auto secrets = attack::make_wfa_secrets(scale);

  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*engine.database().find(name));
  }
  std::cout << "monitored events:";
  for (auto id : events) std::cout << " " << engine.database().by_id(id).name;
  std::cout << "\n\ntraining the fingerprinting model on " << scale.sites
            << " sites x " << scale.traces_per_site << " visits...\n";
  attack::ClassificationAttack attacker(engine.database(),
                                        attack::make_wfa_config(events, scale));
  const auto history = attacker.train(secrets);
  std::cout << "validation accuracy: "
            << util::fmt_pct(history.back().val_accuracy)
            << " (paper: 98.72 %)\n";

  // A few per-site predictions against the victim VM.
  std::cout << "\nsample victim predictions:\n";
  util::Rng rng(0xE6ULL);
  attack::CollectionConfig collect;
  collect.event_ids = events;
  for (std::size_t s = 0; s < 45; s += 9) {
    const trace::Trace t =
        attack::collect_one(engine.database(), *secrets[s], collect, rng.next_u64());
    const int predicted = attacker.predict(t);
    std::cout << "  visited " << secrets[s]->name() << "  ->  predicted "
              << secrets[static_cast<std::size_t>(predicted)]->name()
              << (predicted == static_cast<int>(s) ? "  [hit]" : "  [miss]")
              << "\n";
  }

  // Offline analysis + defense sweep.
  std::cout << "\nrunning the Aegis offline pipeline...\n";
  core::OfflineConfig config = core::make_quick_offline_config();
  config.fuzz_top_events = 0;
  const core::OfflineResult analysis = engine.analyze(*secrets[0], secrets, config);

  std::cout << "\ndefense sweep (victim accuracy under Aegis):\n";
  util::Table table({"mechanism", "epsilon", "attack accuracy"});
  for (dp::MechanismKind kind :
       {dp::MechanismKind::kLaplace, dp::MechanismKind::kDStar}) {
    for (double epsilon : {8.0, 1.0, 0.125}) {
      dp::MechanismConfig mechanism;
      mechanism.kind = kind;
      mechanism.epsilon = epsilon;
      auto obfuscator = engine.make_obfuscator(analysis, secrets, mechanism);
      const double accuracy =
          attacker.exploit(secrets, 2, 7, [&] { return obfuscator->session(); });
      table.add_row({std::string(dp::to_string(kind)), util::fmt_f(epsilon, 3),
                     util::fmt_pct(accuracy)});
    }
  }
  table.print(std::cout);
  std::cout << "random guess: " << util::fmt_pct(1.0 / 45.0)
            << " — the paper's \"attack accuracy drops from >90 % to 2 %\"\n";
  return 0;
}
