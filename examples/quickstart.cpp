// Quickstart: the complete Aegis workflow on a small website-fingerprinting
// scenario.
//
//   1. Build the per-CPU substrate (PMU event database + ISA spec).
//   2. OFFLINE, on the template server: profile the application, rank the
//      vulnerable HPC events, fuzz instruction gadgets, build the cover.
//   3. Demonstrate the threat: a host-side attacker fingerprints which
//      website the guest visits from 4 HPC event traces.
//   4. ONLINE, inside the victim VM: install the Event Obfuscator and show
//      the same attack collapsing to random guessing.
//
// Run time: a few seconds.
#include <iostream>

#include "util/table.hpp"

#include "attack/wfa.hpp"
#include "core/aegis.hpp"

using namespace aegis;

int main() {
  // --- substrate: the template server's CPU (paper testbed: EPYC 7252) ---
  core::Aegis engine(isa::CpuModel::kAmdEpyc7252);
  std::cout << "CPU: " << isa::to_string(engine.cpu()) << " — "
            << engine.database().size() << " HPC events, "
            << engine.specification().legal_count()
            << " legal instruction variants\n";

  // --- the protected application: browsing 10 websites ---
  attack::WfaScale scale;
  scale.sites = 10;
  scale.traces_per_site = 14;
  scale.epochs = 18;
  scale.slices = 180;
  auto secrets = attack::make_wfa_secrets(scale);

  // --- offline: profile -> rank -> fuzz -> minimal gadget cover ---
  core::OfflineConfig config = core::make_quick_offline_config();
  config.fuzz_top_events = 0;  // fuzz every warm-up survivor
  core::OfflineResult analysis = engine.analyze(*secrets[0], secrets, config);
  std::cout << "\n[offline] warm-up: " << analysis.warmup.surviving.size()
            << " of " << analysis.warmup.total_events
            << " events reflect guest activity\n";
  std::cout << "[offline] top-4 leaking events:";
  for (std::uint32_t id : analysis.top_events(4)) {
    std::cout << " " << engine.database().by_id(id).name;
  }
  std::cout << "\n[offline] gadget cover: " << analysis.cover.gadgets.size()
            << " gadgets reach " << analysis.cover.covered_events.size()
            << " vulnerable events\n";

  // --- the attack (paper Section III): train on template-VM traces ---
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*engine.database().find(name));
  }
  attack::ClassificationAttack attacker(engine.database(),
                                        attack::make_wfa_config(events, scale));
  (void)attacker.train(secrets);
  const double clean_accuracy = attacker.exploit(secrets, 3, 1);
  std::cout << "\n[attack] website fingerprinting on the UNDEFENDED VM: "
            << util::fmt_pct(clean_accuracy) << " accuracy (random guess "
            << util::fmt_pct(1.0 / scale.sites) << ")\n";

  // --- online: install the Event Obfuscator (Laplace, eps = 2^-2) ---
  dp::MechanismConfig mechanism;
  mechanism.kind = dp::MechanismKind::kLaplace;
  mechanism.epsilon = 0.25;
  auto obfuscator = engine.make_obfuscator(analysis, secrets, mechanism);
  const double defended_accuracy =
      attacker.exploit(secrets, 3, 1, [&] { return obfuscator->session(); });
  std::cout << "[defense] same attack on the DEFENDED VM (Laplace eps=2^-2): "
            << util::fmt_pct(defended_accuracy) << " accuracy\n";
  std::cout << "[defense] injected "
            << util::fmt_f(obfuscator->total_injected_repetitions() /
                               static_cast<double>(obfuscator->sessions_started()),
                           0)
            << " gadget-segment repetitions per protected run\n";
  return 0;
}
