// Case study: DNN model extraction (paper Section III-E).
//
// The guest runs inference of a (secret) neural network; the hypervisor's
// HPC traces segment into per-layer signatures, and a sequence model with a
// CTC-style decoder recovers the layer architecture. This example extracts
// a few architectures layer-by-layer, then shows the Event Obfuscator
// scrambling the recovered sequences.
#include <iostream>

#include "util/table.hpp"

#include "attack/mea.hpp"
#include "attack/wfa.hpp"
#include "core/aegis.hpp"

using namespace aegis;

namespace {

std::string sequence_to_string(const std::vector<int>& seq) {
  std::string out;
  for (int label : seq) {
    if (!out.empty()) out += '-';
    out += workload::to_string(static_cast<workload::LayerKind>(label));
  }
  return out;
}

}  // namespace

int main() {
  core::Aegis engine(isa::CpuModel::kAmdEpyc7252);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*engine.database().find(name));
  }

  attack::MeaConfig config;
  config.event_ids = events;
  config.scale.models = 12;
  config.scale.traces_per_model = 10;
  config.scale.epochs = 14;
  config.scale.slices = 220;
  attack::MeaAttack attacker(engine.database(), config);
  std::cout << "training the extraction model on " << config.scale.models
            << " architectures...\n";
  const auto history = attacker.train();
  std::cout << "frame-classifier validation accuracy: "
            << util::fmt_pct(history.back().val_accuracy) << "\n\n";

  // Extract a few victims and compare to the true architectures.
  for (std::size_t m : {0u, 3u, 5u}) {
    const workload::DnnWorkload model(m, config.scale.slices);
    std::vector<int> truth;
    for (auto k : model.layer_sequence()) truth.push_back(static_cast<int>(k));
    const std::vector<int> extracted = attacker.extract(m, 0xE0 + m);
    std::cout << model.name() << " (" << truth.size() << " layers)\n";
    std::cout << "  true:      " << sequence_to_string(truth).substr(0, 100) << "...\n";
    std::cout << "  extracted: " << sequence_to_string(extracted).substr(0, 100)
              << "...\n";
    std::cout << "  matched-layers accuracy: "
              << util::fmt_pct(ml::sequence_match_accuracy(truth, extracted))
              << "\n\n";
  }
  std::cout << "mean matched-layers accuracy over all models: "
            << util::fmt_pct(attacker.exploit(2, 0xE9)) << " (paper: 90.5 %)\n";

  // Defense: offline analysis against website secrets (the VM protects all
  // its applications with one cover), then obfuscated extraction.
  attack::WfaScale site_scale;
  site_scale.sites = 10;
  site_scale.slices = config.scale.slices;
  auto site_secrets = attack::make_wfa_secrets(site_scale);
  core::OfflineConfig offline = core::make_quick_offline_config();
  offline.fuzz_top_events = 0;
  const core::OfflineResult analysis =
      engine.analyze(*site_secrets[0], site_secrets, offline);
  dp::MechanismConfig mechanism;
  mechanism.kind = dp::MechanismKind::kDStar;
  mechanism.epsilon = 1.0;
  auto obfuscator = engine.make_obfuscator(analysis, site_secrets, mechanism);
  const double defended =
      attacker.exploit(2, 0xEA, [&] { return obfuscator->session(); });
  std::cout << "under Aegis (d*, eps=2^0): " << util::fmt_pct(defended)
            << " matched layers — the architecture no longer extracts\n";
  return 0;
}
