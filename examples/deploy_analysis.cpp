// Deployment flow: the offline analysis is performed ONCE on a template
// server, persisted through the service TemplateCache, and warm-started on
// the victim host to arm the Event Obfuscator (paper Fig. 2: the offline
// modules run one time and their results are applied online).
//
// This example plays both roles in one process:
//   [template server]  TemplateCache miss -> analyze -> persisted to disk
//   [victim VM]        fresh cache, same dir -> warm start, NO re-analysis
// It also demonstrates portability across family members (Table I): the
// template keyed against the EPYC 7252 warm-starts on the EPYC 7313P,
// because the cache keys on CPU *family*, not model.
#include <filesystem>
#include <iostream>

#include "util/table.hpp"

#include "attack/wfa.hpp"
#include "service/template_cache.hpp"

using namespace aegis;

int main() {
  const std::string cache_dir = "/tmp/aegis_deploy_cache";
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  attack::WfaScale scale;
  scale.sites = 8;
  scale.traces_per_site = 14;
  scale.epochs = 18;
  scale.slices = 160;

  core::OfflineConfig config = core::make_quick_offline_config();
  config.fuzz_top_events = 0;

  // ---------------- template server ----------------
  {
    core::Aegis template_server(isa::CpuModel::kAmdEpyc7252);
    auto secrets = attack::make_wfa_secrets(scale);
    service::TemplateCache cache({cache_dir});
    const auto key =
        service::make_template_key(template_server.cpu(), *secrets[0], config);
    const auto analysis = cache.get_or_analyze(
        key, template_server.database(),
        [&] { return template_server.analyze(*secrets[0], secrets, config); });
    const auto stats = cache.stats();
    std::cout << "[template] analyzed " << analysis->warmup.surviving.size()
              << " vulnerable events (" << stats.analyses_run
              << " analysis run), persisted to " << cache.disk_path(key)
              << "\n";
  }

  // ---------------- victim VM (a family sibling, cold process) ----------------
  core::Aegis victim(isa::CpuModel::kAmdEpyc7313P);
  auto secrets = attack::make_wfa_secrets(scale);
  service::TemplateCache cache({cache_dir});
  const auto key = service::make_template_key(victim.cpu(), *secrets[0], config);
  const auto analysis = cache.get_or_analyze(key, victim.database(), [&]() {
    std::cerr << "BUG: warm start failed, re-running the offline analysis\n";
    return victim.analyze(*secrets[0], secrets, config);
  });
  const auto stats = cache.stats();
  std::cout << "[victim]   warm-started the template on "
            << isa::to_string(victim.cpu()) << " (" << stats.warm_starts
            << " disk load, " << stats.analyses_run << " analyses): "
            << analysis->cover.gadgets.size() << " cover gadgets for "
            << analysis->cover.covered_events.size() << " events\n";

  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*victim.database().find(name));
  }
  attack::ClassificationAttack attacker(victim.database(),
                                        attack::make_wfa_config(events, scale));
  (void)attacker.train(secrets);
  const double clean = attacker.exploit(secrets, 3, 1);

  dp::MechanismConfig mechanism;
  mechanism.kind = dp::MechanismKind::kDStar;
  mechanism.epsilon = 0.5;
  auto obfuscator = victim.make_obfuscator(*analysis, secrets, mechanism);
  const double defended =
      attacker.exploit(secrets, 3, 1, [&] { return obfuscator->session(); });

  std::cout << "[victim]   attack accuracy: " << util::fmt_pct(clean)
            << " undefended -> " << util::fmt_pct(defended)
            << " under the warm-started template (d*, eps=2^-1; random "
            << util::fmt_pct(1.0 / scale.sites) << ")\n";
  return stats.analyses_run == 0 && stats.warm_starts == 1 ? 0 : 1;
}
