// Deployment flow: the offline analysis is performed ONCE on a template
// server, saved, shipped into the victim VM, and loaded there to arm the
// Event Obfuscator (paper Fig. 2: the offline modules run one time and
// their results are applied online).
//
// This example plays both roles in one process:
//   [template server]  analyze -> save analysis.aegis
//   [victim VM]        load analysis.aegis -> make_obfuscator -> protect
// It also demonstrates portability across family members (Table I): the
// analysis saved against the EPYC 7252 loads on the EPYC 7313P.
#include <iostream>

#include "util/table.hpp"

#include "attack/wfa.hpp"
#include "core/serialize.hpp"

using namespace aegis;

int main() {
  const std::string path = "/tmp/aegis_analysis.aegis";

  attack::WfaScale scale;
  scale.sites = 8;
  scale.traces_per_site = 14;
  scale.epochs = 18;
  scale.slices = 160;

  // ---------------- template server ----------------
  {
    core::Aegis template_server(isa::CpuModel::kAmdEpyc7252);
    auto secrets = attack::make_wfa_secrets(scale);
    core::OfflineConfig config = core::make_quick_offline_config();
    config.fuzz_top_events = 0;
    const core::OfflineResult analysis =
        template_server.analyze(*secrets[0], secrets, config);
    core::save_offline_result(path, analysis, template_server.database());
    std::cout << "[template] analyzed " << analysis.warmup.surviving.size()
              << " vulnerable events, saved the result to " << path << "\n";
  }

  // ---------------- victim VM (a family sibling) ----------------
  core::Aegis victim(isa::CpuModel::kAmdEpyc7313P);
  const core::OfflineResult analysis =
      core::load_offline_result(path, victim.database());
  std::cout << "[victim]   loaded the analysis on "
            << isa::to_string(victim.cpu()) << ": "
            << analysis.cover.gadgets.size() << " cover gadgets for "
            << analysis.cover.covered_events.size() << " events\n";

  auto secrets = attack::make_wfa_secrets(scale);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*victim.database().find(name));
  }
  attack::ClassificationAttack attacker(victim.database(),
                                        attack::make_wfa_config(events, scale));
  (void)attacker.train(secrets);
  const double clean = attacker.exploit(secrets, 3, 1);

  dp::MechanismConfig mechanism;
  mechanism.kind = dp::MechanismKind::kDStar;
  mechanism.epsilon = 0.5;
  auto obfuscator = victim.make_obfuscator(analysis, secrets, mechanism);
  const double defended =
      attacker.exploit(secrets, 3, 1, [&] { return obfuscator->session(); });

  std::cout << "[victim]   attack accuracy: " << util::fmt_pct(clean)
            << " undefended -> " << util::fmt_pct(defended)
            << " under the loaded analysis (d*, eps=2^-1; random "
            << util::fmt_pct(1.0 / scale.sites) << ")\n";
  return 0;
}
