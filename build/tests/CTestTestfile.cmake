# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/pmu_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/obf_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
