# Empty dependencies file for obf_test.
# This may be replaced when dependencies are built.
