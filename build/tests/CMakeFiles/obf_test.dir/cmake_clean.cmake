file(REMOVE_RECURSE
  "CMakeFiles/obf_test.dir/obf_test.cpp.o"
  "CMakeFiles/obf_test.dir/obf_test.cpp.o.d"
  "obf_test"
  "obf_test.pdb"
  "obf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
