# Empty compiler generated dependencies file for aegis.
# This may be replaced when dependencies are built.
