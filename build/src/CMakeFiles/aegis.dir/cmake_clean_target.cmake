file(REMOVE_RECURSE
  "libaegis.a"
)
