
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/classification_attack.cpp" "src/CMakeFiles/aegis.dir/attack/classification_attack.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/classification_attack.cpp.o.d"
  "/root/repo/src/attack/dataset.cpp" "src/CMakeFiles/aegis.dir/attack/dataset.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/dataset.cpp.o.d"
  "/root/repo/src/attack/kea.cpp" "src/CMakeFiles/aegis.dir/attack/kea.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/kea.cpp.o.d"
  "/root/repo/src/attack/ksa.cpp" "src/CMakeFiles/aegis.dir/attack/ksa.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/ksa.cpp.o.d"
  "/root/repo/src/attack/mea.cpp" "src/CMakeFiles/aegis.dir/attack/mea.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/mea.cpp.o.d"
  "/root/repo/src/attack/wfa.cpp" "src/CMakeFiles/aegis.dir/attack/wfa.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/attack/wfa.cpp.o.d"
  "/root/repo/src/core/aegis.cpp" "src/CMakeFiles/aegis.dir/core/aegis.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/core/aegis.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/aegis.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/core/config.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/aegis.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/core/serialize.cpp.o.d"
  "/root/repo/src/dp/accountant.cpp" "src/CMakeFiles/aegis.dir/dp/accountant.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/dp/accountant.cpp.o.d"
  "/root/repo/src/dp/baselines.cpp" "src/CMakeFiles/aegis.dir/dp/baselines.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/dp/baselines.cpp.o.d"
  "/root/repo/src/dp/dstar.cpp" "src/CMakeFiles/aegis.dir/dp/dstar.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/dp/dstar.cpp.o.d"
  "/root/repo/src/dp/laplace.cpp" "src/CMakeFiles/aegis.dir/dp/laplace.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/dp/laplace.cpp.o.d"
  "/root/repo/src/fuzzer/confirmation.cpp" "src/CMakeFiles/aegis.dir/fuzzer/confirmation.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/fuzzer/confirmation.cpp.o.d"
  "/root/repo/src/fuzzer/filtering.cpp" "src/CMakeFiles/aegis.dir/fuzzer/filtering.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/fuzzer/filtering.cpp.o.d"
  "/root/repo/src/fuzzer/fuzzer.cpp" "src/CMakeFiles/aegis.dir/fuzzer/fuzzer.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/fuzzer/fuzzer.cpp.o.d"
  "/root/repo/src/fuzzer/set_cover.cpp" "src/CMakeFiles/aegis.dir/fuzzer/set_cover.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/fuzzer/set_cover.cpp.o.d"
  "/root/repo/src/isa/instruction_class.cpp" "src/CMakeFiles/aegis.dir/isa/instruction_class.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/isa/instruction_class.cpp.o.d"
  "/root/repo/src/isa/spec.cpp" "src/CMakeFiles/aegis.dir/isa/spec.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/isa/spec.cpp.o.d"
  "/root/repo/src/ml/gaussian_nb.cpp" "src/CMakeFiles/aegis.dir/ml/gaussian_nb.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/ml/gaussian_nb.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/aegis.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/aegis.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/aegis.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/sequence_model.cpp" "src/CMakeFiles/aegis.dir/ml/sequence_model.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/ml/sequence_model.cpp.o.d"
  "/root/repo/src/obf/injector.cpp" "src/CMakeFiles/aegis.dir/obf/injector.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/obf/injector.cpp.o.d"
  "/root/repo/src/obf/kernel_controller.cpp" "src/CMakeFiles/aegis.dir/obf/kernel_controller.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/obf/kernel_controller.cpp.o.d"
  "/root/repo/src/obf/noise_calculator.cpp" "src/CMakeFiles/aegis.dir/obf/noise_calculator.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/obf/noise_calculator.cpp.o.d"
  "/root/repo/src/obf/obfuscator.cpp" "src/CMakeFiles/aegis.dir/obf/obfuscator.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/obf/obfuscator.cpp.o.d"
  "/root/repo/src/pmu/counter_file.cpp" "src/CMakeFiles/aegis.dir/pmu/counter_file.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/pmu/counter_file.cpp.o.d"
  "/root/repo/src/pmu/event_database.cpp" "src/CMakeFiles/aegis.dir/pmu/event_database.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/pmu/event_database.cpp.o.d"
  "/root/repo/src/pmu/event_model.cpp" "src/CMakeFiles/aegis.dir/pmu/event_model.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/pmu/event_model.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/CMakeFiles/aegis.dir/profiler/profiler.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/profiler/profiler.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/aegis.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/executor.cpp.o.d"
  "/root/repo/src/sim/gadget_runner.cpp" "src/CMakeFiles/aegis.dir/sim/gadget_runner.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/gadget_runner.cpp.o.d"
  "/root/repo/src/sim/host_monitor.cpp" "src/CMakeFiles/aegis.dir/sim/host_monitor.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/host_monitor.cpp.o.d"
  "/root/repo/src/sim/instruction_block.cpp" "src/CMakeFiles/aegis.dir/sim/instruction_block.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/instruction_block.cpp.o.d"
  "/root/repo/src/sim/uarch_state.cpp" "src/CMakeFiles/aegis.dir/sim/uarch_state.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/uarch_state.cpp.o.d"
  "/root/repo/src/sim/virtual_machine.cpp" "src/CMakeFiles/aegis.dir/sim/virtual_machine.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/sim/virtual_machine.cpp.o.d"
  "/root/repo/src/trace/gaussian.cpp" "src/CMakeFiles/aegis.dir/trace/gaussian.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/trace/gaussian.cpp.o.d"
  "/root/repo/src/trace/mutual_information.cpp" "src/CMakeFiles/aegis.dir/trace/mutual_information.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/trace/mutual_information.cpp.o.d"
  "/root/repo/src/trace/pca.cpp" "src/CMakeFiles/aegis.dir/trace/pca.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/trace/pca.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/aegis.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/aegis.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/aegis.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/aegis.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/crypto.cpp" "src/CMakeFiles/aegis.dir/workload/crypto.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/workload/crypto.cpp.o.d"
  "/root/repo/src/workload/dnn.cpp" "src/CMakeFiles/aegis.dir/workload/dnn.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/workload/dnn.cpp.o.d"
  "/root/repo/src/workload/idle.cpp" "src/CMakeFiles/aegis.dir/workload/idle.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/workload/idle.cpp.o.d"
  "/root/repo/src/workload/keystroke.cpp" "src/CMakeFiles/aegis.dir/workload/keystroke.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/workload/keystroke.cpp.o.d"
  "/root/repo/src/workload/website.cpp" "src/CMakeFiles/aegis.dir/workload/website.cpp.o" "gcc" "src/CMakeFiles/aegis.dir/workload/website.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
