# Empty dependencies file for deploy_analysis.
# This may be replaced when dependencies are built.
