file(REMOVE_RECURSE
  "CMakeFiles/deploy_analysis.dir/deploy_analysis.cpp.o"
  "CMakeFiles/deploy_analysis.dir/deploy_analysis.cpp.o.d"
  "deploy_analysis"
  "deploy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
