# Empty dependencies file for website_fingerprinting.
# This may be replaced when dependencies are built.
