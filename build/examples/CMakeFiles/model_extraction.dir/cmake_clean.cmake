file(REMOVE_RECURSE
  "CMakeFiles/model_extraction.dir/model_extraction.cpp.o"
  "CMakeFiles/model_extraction.dir/model_extraction.cpp.o.d"
  "model_extraction"
  "model_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
