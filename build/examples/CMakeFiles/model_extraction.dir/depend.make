# Empty dependencies file for model_extraction.
# This may be replaced when dependencies are built.
