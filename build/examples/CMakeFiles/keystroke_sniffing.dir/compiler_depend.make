# Empty compiler generated dependencies file for keystroke_sniffing.
# This may be replaced when dependencies are built.
