file(REMOVE_RECURSE
  "CMakeFiles/keystroke_sniffing.dir/keystroke_sniffing.cpp.o"
  "CMakeFiles/keystroke_sniffing.dir/keystroke_sniffing.cpp.o.d"
  "keystroke_sniffing"
  "keystroke_sniffing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keystroke_sniffing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
