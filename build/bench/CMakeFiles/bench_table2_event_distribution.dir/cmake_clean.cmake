file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_event_distribution.dir/bench_table2_event_distribution.cpp.o"
  "CMakeFiles/bench_table2_event_distribution.dir/bench_table2_event_distribution.cpp.o.d"
  "bench_table2_event_distribution"
  "bench_table2_event_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_event_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
