# Empty dependencies file for bench_table2_event_distribution.
# This may be replaced when dependencies are built.
