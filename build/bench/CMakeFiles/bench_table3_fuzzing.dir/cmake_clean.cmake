file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fuzzing.dir/bench_table3_fuzzing.cpp.o"
  "CMakeFiles/bench_table3_fuzzing.dir/bench_table3_fuzzing.cpp.o.d"
  "bench_table3_fuzzing"
  "bench_table3_fuzzing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
