file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_intel_generality.dir/bench_ext_intel_generality.cpp.o"
  "CMakeFiles/bench_ext_intel_generality.dir/bench_ext_intel_generality.cpp.o.d"
  "bench_ext_intel_generality"
  "bench_ext_intel_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intel_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
