# Empty compiler generated dependencies file for bench_fig9a_defense_clean.
# This may be replaced when dependencies are built.
