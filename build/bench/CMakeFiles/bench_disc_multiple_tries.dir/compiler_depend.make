# Empty compiler generated dependencies file for bench_disc_multiple_tries.
# This may be replaced when dependencies are built.
