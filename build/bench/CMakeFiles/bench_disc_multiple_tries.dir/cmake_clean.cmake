file(REMOVE_RECURSE
  "CMakeFiles/bench_disc_multiple_tries.dir/bench_disc_multiple_tries.cpp.o"
  "CMakeFiles/bench_disc_multiple_tries.dir/bench_disc_multiple_tries.cpp.o.d"
  "bench_disc_multiple_tries"
  "bench_disc_multiple_tries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disc_multiple_tries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
