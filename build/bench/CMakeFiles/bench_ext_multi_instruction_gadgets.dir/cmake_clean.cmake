file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_instruction_gadgets.dir/bench_ext_multi_instruction_gadgets.cpp.o"
  "CMakeFiles/bench_ext_multi_instruction_gadgets.dir/bench_ext_multi_instruction_gadgets.cpp.o.d"
  "bench_ext_multi_instruction_gadgets"
  "bench_ext_multi_instruction_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_instruction_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
