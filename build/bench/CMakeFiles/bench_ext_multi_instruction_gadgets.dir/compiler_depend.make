# Empty compiler generated dependencies file for bench_ext_multi_instruction_gadgets.
# This may be replaced when dependencies are built.
