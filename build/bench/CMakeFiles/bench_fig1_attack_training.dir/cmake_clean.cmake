file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_attack_training.dir/bench_fig1_attack_training.cpp.o"
  "CMakeFiles/bench_fig1_attack_training.dir/bench_fig1_attack_training.cpp.o.d"
  "bench_fig1_attack_training"
  "bench_fig1_attack_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_attack_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
