# Empty dependencies file for bench_fig1_attack_training.
# This may be replaced when dependencies are built.
