# Empty compiler generated dependencies file for bench_disc_constant_output.
# This may be replaced when dependencies are built.
