file(REMOVE_RECURSE
  "CMakeFiles/bench_disc_constant_output.dir/bench_disc_constant_output.cpp.o"
  "CMakeFiles/bench_disc_constant_output.dir/bench_disc_constant_output.cpp.o.d"
  "bench_disc_constant_output"
  "bench_disc_constant_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disc_constant_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
