file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_key_extraction.dir/bench_ext_key_extraction.cpp.o"
  "CMakeFiles/bench_ext_key_extraction.dir/bench_ext_key_extraction.cpp.o.d"
  "bench_ext_key_extraction"
  "bench_ext_key_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_key_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
