# Empty dependencies file for bench_ext_key_extraction.
# This may be replaced when dependencies are built.
