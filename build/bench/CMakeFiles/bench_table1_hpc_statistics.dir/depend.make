# Empty dependencies file for bench_table1_hpc_statistics.
# This may be replaced when dependencies are built.
