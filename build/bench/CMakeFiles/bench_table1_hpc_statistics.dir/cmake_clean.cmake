file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hpc_statistics.dir/bench_table1_hpc_statistics.cpp.o"
  "CMakeFiles/bench_table1_hpc_statistics.dir/bench_table1_hpc_statistics.cpp.o.d"
  "bench_table1_hpc_statistics"
  "bench_table1_hpc_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hpc_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
