file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_mutual_information_noise.dir/bench_fig9c_mutual_information_noise.cpp.o"
  "CMakeFiles/bench_fig9c_mutual_information_noise.dir/bench_fig9c_mutual_information_noise.cpp.o.d"
  "bench_fig9c_mutual_information_noise"
  "bench_fig9c_mutual_information_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_mutual_information_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
