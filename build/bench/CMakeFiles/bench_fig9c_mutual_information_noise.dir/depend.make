# Empty dependencies file for bench_fig9c_mutual_information_noise.
# This may be replaced when dependencies are built.
