# Empty dependencies file for bench_abl_model_diversity.
# This may be replaced when dependencies are built.
