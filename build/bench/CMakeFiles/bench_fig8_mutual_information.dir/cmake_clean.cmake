file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mutual_information.dir/bench_fig8_mutual_information.cpp.o"
  "CMakeFiles/bench_fig8_mutual_information.dir/bench_fig8_mutual_information.cpp.o.d"
  "bench_fig8_mutual_information"
  "bench_fig8_mutual_information.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mutual_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
