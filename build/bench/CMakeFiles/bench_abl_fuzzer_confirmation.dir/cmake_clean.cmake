file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_fuzzer_confirmation.dir/bench_abl_fuzzer_confirmation.cpp.o"
  "CMakeFiles/bench_abl_fuzzer_confirmation.dir/bench_abl_fuzzer_confirmation.cpp.o.d"
  "bench_abl_fuzzer_confirmation"
  "bench_abl_fuzzer_confirmation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fuzzer_confirmation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
