# Empty compiler generated dependencies file for bench_abl_fuzzer_confirmation.
# This may be replaced when dependencies are built.
