file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_defense_adaptive.dir/bench_fig9b_defense_adaptive.cpp.o"
  "CMakeFiles/bench_fig9b_defense_adaptive.dir/bench_fig9b_defense_adaptive.cpp.o.d"
  "bench_fig9b_defense_adaptive"
  "bench_fig9b_defense_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_defense_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
