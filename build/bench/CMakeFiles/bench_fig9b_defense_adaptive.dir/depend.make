# Empty dependencies file for bench_fig9b_defense_adaptive.
# This may be replaced when dependencies are built.
