# Empty compiler generated dependencies file for bench_ext_cache_occupancy.
# This may be replaced when dependencies are built.
