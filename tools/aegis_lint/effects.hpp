// Phase 2 rules: the interprocedural checks that need the whole-project
// CallGraph rather than one TU's tokens.
//
//   * rng-stream         — every function that draws from (or forwards) a
//                          util::Rng must carry `// aegis-rng: stream(<name>)`
//                          so draw-order coupling between subsystems is
//                          declared, not accidental.
//   * noalloc-transitive — allocation effects propagated bottom-up: a call
//                          site inside a noalloc region whose callee chain
//                          reaches an allocation is flagged at the call
//                          site, with the chain in the message.
//   * lock-order-global  — the declared lock-level lattice lifted to the
//                          call graph: calling a function that transitively
//                          acquires level L while holding level H >= L is an
//                          out-of-order acquisition even across TUs.
//
// Findings carry the same suppress tags as their lexical cousins
// (alloc-ok / lock-ok), so one annotated exemption covers both phases.
#pragma once

#include <string>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"

namespace aegis::lint {

/// Runs the three interprocedural rules over the graph. Findings are
/// UNFILTERED — the driver applies each file's suppression directives.
std::vector<FileFinding> run_graph_rules(const CallGraph& graph);

/// The RNG_STREAMS.md content: for every hot-path root (a function whose
/// body a `// aegis-lint: noalloc` directive guards), the DFS-preorder
/// sequence of reachable Rng draw sites. Deliberately free of line
/// numbers — unrelated edits leave it untouched, but a new, deleted,
/// moved, or reordered draw changes the sequence and therefore the pinned
/// digest. The final line is `digest: 0x<fnv1a64 of the body>`.
std::string rng_manifest(const CallGraph& graph);

/// Extracts the `digest: 0x...` value from a manifest, or "" if absent.
std::string manifest_digest_line(const std::string& manifest);

}  // namespace aegis::lint
