// Phase-2 tests over the committed fixture project in testdata/fixture/:
// the golden-pinned call-graph dump, overload/qualifier resolution, the
// three interprocedural rules (including the seeded one-call-deep
// allocation the lexical pass provably misses), the RNG manifest pin, and
// the cached-vs-uncached differential. In-memory models (lex + parse_file
// over string fixtures) cover the cases that need two variants of the same
// code, e.g. "reordering two draws changes the manifest digest".
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "effects.hpp"
#include "graph.hpp"
#include "lint.hpp"
#include "parse.hpp"

namespace aegis::lint {
namespace {

namespace fs = std::filesystem;

ProjectOptions fixture_options() {
  ProjectOptions o;
  o.tree.root = AEGIS_LINT_TESTDATA;
  o.tree.paths = {"fixture"};
  return o;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string render(const ProjectResult& r) {
  std::string out;
  for (const FileFinding& f : r.findings) out += format_finding(f) + '\n';
  return out;
}

const FileFinding* find_rule(const std::vector<FileFinding>& fs,
                             std::string_view rule) {
  for (const FileFinding& f : fs) {
    if (f.finding.rule == rule) return &f;
  }
  return nullptr;
}

/// Builds a ProjectModel straight from in-memory sources (no filesystem),
/// for tests that need two variants of the same code.
ProjectModel model_from(
    const std::vector<std::pair<std::string, std::string>>& files) {
  ProjectModel m;
  std::vector<Finding> diags;
  for (const auto& [path, src] : files) {
    const LexOutput lx = lex(src);
    m.files.push_back(parse_file(path, lx, nullptr, diags));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Golden graph dump + resolution

TEST(GoldenGraph, DumpMatchesPinnedFixture) {
  const ProjectResult r = lint_project(fixture_options());
  const CallGraph graph(r.model);
  const std::string golden =
      read_file(fs::path(AEGIS_LINT_TESTDATA) / "golden_graph.txt");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(graph.dump(), golden)
      << "call-graph shape changed; review and regenerate with\n"
         "  aegis_lint --root tools/aegis_lint/testdata "
         "--graph-dump tools/aegis_lint/testdata/golden_graph.txt fixture";
}

TEST(GoldenGraph, OverloadsMergeIntoOneNameGroup) {
  const ProjectResult r = lint_project(fixture_options());
  const CallGraph graph(r.model);
  CallSite call;
  call.callee = "scale";
  EXPECT_EQ(graph.resolve(call).size(), 2u);
}

TEST(GoldenGraph, WrittenQualifierNarrowsTheGroup) {
  const ProjectResult r = lint_project(fixture_options());
  const CallGraph graph(r.model);
  CallSite unqualified;
  unqualified.callee = "reset";
  EXPECT_EQ(graph.resolve(unqualified).size(), 2u);

  CallSite qualified;
  qualified.callee = "reset";
  qualified.qualifier = "Telemetry";
  const auto targets = graph.resolve(qualified);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(graph.fn(targets[0]).qualified, "fx::Telemetry::reset");
}

TEST(GoldenGraph, MemberReceiverNamesNeverNarrow) {
  const ProjectResult r = lint_project(fixture_options());
  const CallGraph graph(r.model);
  // `telemetry_.reset()` carries a variable name, not a type — resolution
  // must keep the whole name group rather than suffix-match "telemetry_".
  CallSite member;
  member.callee = "reset";
  member.qualifier = "telemetry_";
  member.member = true;
  EXPECT_EQ(graph.resolve(member).size(), 2u);
}

TEST(GoldenGraph, TemplateDefinitionsResolveByName) {
  const ProjectResult r = lint_project(fixture_options());
  const CallGraph graph(r.model);
  CallSite call;
  call.callee = "clamp_to";
  const auto targets = graph.resolve(call);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(graph.fn(targets[0]).qualified, "fx::clamp_to");
}

// ---------------------------------------------------------------------------
// Interprocedural rules over the fixture

TEST(NoallocTransitive, LexicalPassMissesTheSeededAllocation) {
  // The v1 per-file scan sees only a call token inside tick's noalloc
  // region — the push_back sits one frame down in refill().
  const auto lexical = lint_tree(fixture_options().tree);
  EXPECT_EQ(find_rule(lexical, "noalloc"), nullptr);
  EXPECT_EQ(find_rule(lexical, "noalloc-transitive"), nullptr);
}

TEST(NoallocTransitive, GraphPassCatchesTheSeededAllocation) {
  const ProjectResult r = lint_project(fixture_options());
  const FileFinding* f = find_rule(r.findings, "noalloc-transitive");
  ASSERT_NE(f, nullptr) << render(r);
  EXPECT_EQ(f->file, "fixture/engine.cpp");
  EXPECT_NE(f->finding.message.find("refill"), std::string::npos);
  EXPECT_NE(f->finding.message.find("push_back"), std::string::npos);
}

TEST(TelemetryHandleFixture, RecorderByNameSitesFlaggedHandleIdiomClean) {
  // Committed fixture pair in testdata/telemetry_handle/ (its own
  // directory: fixture/ is pinned by golden_graph.txt and must not grow).
  // recorder_bad.cpp resolves and records by name inside a noalloc region
  // (two findings); recorder_ok.cpp uses the ctor-resolve + wait-free
  // record idiom (zero findings).
  ProjectOptions o;
  o.tree.root = AEGIS_LINT_TESTDATA;
  o.tree.paths = {"telemetry_handle"};
  const ProjectResult r = lint_project(o);
  std::size_t bad = 0;
  for (const FileFinding& f : r.findings) {
    EXPECT_EQ(f.finding.rule, "telemetry-handle") << render(r);
    EXPECT_EQ(f.file, "telemetry_handle/recorder_bad.cpp") << render(r);
    ++bad;
  }
  EXPECT_EQ(bad, 2u) << render(r);
}

TEST(RngStream, UnannotatedDrawIsFlaggedAnnotatedRootIsClean) {
  const ProjectResult r = lint_project(fixture_options());
  const FileFinding* f = find_rule(r.findings, "rng-stream");
  ASSERT_NE(f, nullptr) << render(r);
  EXPECT_NE(f->finding.message.find("fx::Engine::sample"), std::string::npos);
  // tick draws AND forwards but is annotated — exactly one finding total.
  std::size_t count = 0;
  for (const FileFinding& ff : r.findings) {
    if (ff.finding.rule == "rng-stream") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(LockOrderGlobal, CrossTuInversionIsReported) {
  const ProjectResult r = lint_project(fixture_options());
  const FileFinding* f = find_rule(r.findings, "lock-order-global");
  ASSERT_NE(f, nullptr) << render(r);
  EXPECT_EQ(f->file, "fixture/governor.cpp");
  EXPECT_NE(f->finding.message.find("level 30"), std::string::npos);
  EXPECT_NE(f->finding.message.find("level 10"), std::string::npos);
  EXPECT_NE(f->finding.message.find("fx::Telemetry::record"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Incremental cache: byte-identical findings, full hits on the warm run

TEST(Cache, CachedAndUncachedRunsAreByteIdentical) {
  const fs::path cache_dir =
      fs::temp_directory_path() / "aegis-lint-graph-test-cache";
  fs::remove_all(cache_dir);

  ProjectOptions uncached = fixture_options();
  const ProjectResult base = lint_project(uncached);

  ProjectOptions cached = fixture_options();
  cached.cache_dir = cache_dir.string();
  const ProjectResult cold = lint_project(cached);
  const ProjectResult warm = lint_project(cached);
  fs::remove_all(cache_dir);

  EXPECT_EQ(base.files_analyzed, cold.files_analyzed);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(warm.cache_hits, warm.files_analyzed);
  EXPECT_EQ(render(base), render(cold));
  EXPECT_EQ(render(base), render(warm));
  // The phase-1 models round-trip through the cache too: phase 2 consumes
  // them, so the graph itself must come back byte-identical.
  EXPECT_EQ(CallGraph(base.model).dump(), CallGraph(warm.model).dump());
  EXPECT_EQ(rng_manifest(CallGraph(base.model)),
            rng_manifest(CallGraph(warm.model)));
}

// ---------------------------------------------------------------------------
// RNG manifest pinning

TEST(Manifest, MatchesPinnedGolden) {
  const ProjectResult r = lint_project(fixture_options());
  const std::string golden =
      read_file(fs::path(AEGIS_LINT_TESTDATA) / "golden_manifest.md");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(rng_manifest(CallGraph(r.model)), golden)
      << "manifest shape changed; review and regenerate with\n"
         "  aegis_lint --root tools/aegis_lint/testdata "
         "--write-rng-manifest tools/aegis_lint/testdata/golden_manifest.md "
         "fixture";
}

TEST(Manifest, ReorderingTwoDrawsChangesTheDigest) {
  const std::string draws_ab =
      "// aegis-lint: noalloc\n"
      "// aegis-rng: stream(pair)\n"
      "double root(util::Rng& rng) {\n"
      "  const double a = rng.laplace(0.0, 1.0);\n"
      "  const double b = rng.uniform(0.0, 1.0);\n"
      "  return a + b;\n"
      "}\n";
  const std::string draws_ba =
      "// aegis-lint: noalloc\n"
      "// aegis-rng: stream(pair)\n"
      "double root(util::Rng& rng) {\n"
      "  const double b = rng.uniform(0.0, 1.0);\n"
      "  const double a = rng.laplace(0.0, 1.0);\n"
      "  return a + b;\n"
      "}\n";
  const ProjectModel ab = model_from({{"a.cpp", draws_ab}});
  const ProjectModel ba = model_from({{"a.cpp", draws_ba}});
  const std::string digest_ab =
      manifest_digest_line(rng_manifest(CallGraph(ab)));
  const std::string digest_ba =
      manifest_digest_line(rng_manifest(CallGraph(ba)));
  EXPECT_FALSE(digest_ab.empty());
  EXPECT_FALSE(digest_ba.empty());
  EXPECT_NE(digest_ab, digest_ba);
}

TEST(Manifest, UnrelatedEditsLeaveTheDigestAlone) {
  const std::string before =
      "// aegis-lint: noalloc\n"
      "// aegis-rng: stream(solo)\n"
      "double root(util::Rng& rng) { return rng.laplace(0.0, 1.0); }\n";
  const std::string after =
      "int unrelated(int v) { return v + 1; }\n"
      "// aegis-lint: noalloc\n"
      "// aegis-rng: stream(solo)\n"
      "double root(util::Rng& rng) { return rng.laplace(0.0, 1.0); }\n";
  const ProjectModel a = model_from({{"a.cpp", before}});
  const ProjectModel b = model_from({{"a.cpp", after}});
  EXPECT_EQ(manifest_digest_line(rng_manifest(CallGraph(a))),
            manifest_digest_line(rng_manifest(CallGraph(b))));
}

// ---------------------------------------------------------------------------
// In-memory effect-propagation corners

TEST(Effects, AmortizedAllocCalleeDoesNotPropagate) {
  const std::string src =
      "// aegis-lint: noalloc\n"
      "void hot() { grow(); }\n"
      "// aegis-lint: amortized-alloc(fills the pool once, first call only)\n"
      "void grow() { pool.push_back(1); }\n";
  const ProjectModel m = model_from({{"a.cpp", src}});
  const auto findings = run_graph_rules(CallGraph(m));
  EXPECT_EQ(find_rule(findings, "noalloc-transitive"), nullptr);
}

TEST(Effects, RemovingTheAmortizedAnnotationRestoresTheFinding) {
  const std::string src =
      "// aegis-lint: noalloc\n"
      "void hot() { grow(); }\n"
      "void grow() { pool.push_back(1); }\n";
  const ProjectModel m = model_from({{"a.cpp", src}});
  const auto findings = run_graph_rules(CallGraph(m));
  EXPECT_NE(find_rule(findings, "noalloc-transitive"), nullptr);
}

TEST(Effects, MutualRecursionTerminatesWithoutFindings) {
  const std::string src =
      "// aegis-lint: noalloc\n"
      "void ping(int n) { if (n > 0) pong(n - 1); }\n"
      "// aegis-lint: noalloc\n"
      "void pong(int n) { if (n > 0) ping(n - 1); }\n";
  const ProjectModel m = model_from({{"a.cpp", src}});
  const auto findings = run_graph_rules(CallGraph(m));
  EXPECT_EQ(find_rule(findings, "noalloc-transitive"), nullptr);
}

TEST(Effects, AllocThroughRecursiveCycleIsStillSeen) {
  const std::string src =
      "// aegis-lint: noalloc\n"
      "void hot(int n) { step(n); }\n"
      "void step(int n) { if (n > 0) step(n - 1); buf.push_back(n); }\n";
  const ProjectModel m = model_from({{"a.cpp", src}});
  const auto findings = run_graph_rules(CallGraph(m));
  EXPECT_NE(find_rule(findings, "noalloc-transitive"), nullptr);
}

}  // namespace
}  // namespace aegis::lint
