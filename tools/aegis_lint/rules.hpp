// Rule catalog for aegis-lint. Each rule enforces one repo invariant the
// compiler cannot see (see DESIGN.md "Static analysis layer"):
//
//   banned-random      rand()/srand()/std::random_device/std engine types/
//                      time()-seeding. All randomness must flow through
//                      util::Rng so results are a pure function of config
//                      seeds.                     suppress: random-ok(...)
//   banned-clock       std::*_clock::now(). Wall-clock reads are allowed
//                      only at reporting-only sites (timing fields in
//                      result structs, latency stats) and in bench/, which
//                      is exempt wholesale.        suppress: clock-ok(...)
//   std-hash           std::hash<> — unstable across runs/platforms, so it
//                      can never feed a persisted value or cache key; use
//                      util/hash.hpp FNV-1a.    suppress: std-hash-ok(...)
//   unordered-iter     range-for over a std::unordered_{map,set} variable:
//                      iteration order is a hash-table artifact, so any
//                      result it feeds (ranking, serialization, greedy
//                      selection) loses determinism. suppress: ordered-ok(...)
//   noalloc            inside a `// aegis-lint: noalloc` function (or a
//                      noalloc-begin/noalloc-end region): no new/malloc/
//                      push_back/emplace*/resize/reserve/..., no by-value
//                      allocating container declarations.
//                                                  suppress: alloc-ok(...)
//   telemetry-handle   inside the same noalloc regions: no by-name metric
//                      or flight-recorder lookup (`counter("...")`/
//                      `gauge("...")`/`histogram("...")`/
//                      `event_handle("...")`/`record_named("...")`) — a
//                      string key plus the registry lock. Resolve telemetry
//                      handles once at construction and record through
//                      them (EventHandle::record is the sanctioned wait-
//                      free path).           suppress: telemetry-ok(...)
//   dispatch-once      inside the same noalloc regions: no CPU-feature query
//                      or SIMD kernel resolution (__builtin_cpu_supports,
//                      __get_cpuid*, detect_cpu_features, best_isa,
//                      expected_group_kernel, simd::supported, ...). The
//                      engine dispatch decision is made once, at
//                      program()/set_engine() time, and stored as a function
//                      pointer the hot path calls through.
//                                               suppress: dispatch-ok(...)
//   lock-order         mutexes declared `// aegis-lint: lock-level(N[,
//                      noblock])` must be acquired in strictly increasing
//                      level order when nested.      suppress: lock-ok(...)
//   blocking-in-lock   while holding a `noblock` mutex: no .join()/.push()/
//                      .pop()/.pop_batch() and no condition-variable wait
//                      (waiting on the held lock itself is allowed — the
//                      wait releases it).        suppress: blocking-ok(...)
//   backend-registry   EventDatabase::generate() outside src/pmu/backend/
//                      (which is exempt wholesale): every other component
//                      resolves its database through
//                      pmu::backend::backend_for(model), so SKU metadata,
//                      tiers and attack defaults stay attached to it.
//                                               suppress: event-db-ok(...)
//
// Rules are lexical by design: they see one file (plus its companion
// header) and cannot follow calls across translation units. That buys a
// dependency-free analyzer that runs in milliseconds as a ctest gate; the
// sanitizer matrix covers the dynamic side.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace aegis::lint {

struct Finding {
  std::string rule;          // catalog name, e.g. "noalloc"
  int line = 0;              // 1-based line in the linted file
  std::string message;
  std::string suppress_tag;  // e.g. "alloc-ok"; empty = not suppressible
};

struct LintConfig {
  /// When false the banned-clock rule is skipped (the driver disables it
  /// for bench/, which exists to measure wall time).
  bool clock_rule = true;
  /// When false the backend-registry rule is skipped (the driver disables
  /// it for src/pmu/backend/, the one sanctioned generate() caller).
  bool backend_rule = true;
};

struct RuleInfo {
  std::string name;
  std::string suppress_tag;
  std::string summary;
};

/// Bumped whenever a rule's behavior changes. Part of every incremental-
/// cache key (a stale entry from an older rule set can never satisfy a
/// lookup) and of the CI cache key, and reported as the SARIF tool version.
inline constexpr std::string_view kRuleSetVersion = "aegis-lint-2.1";

// ---------------------------------------------------------------------------
// Shared scan helpers. These power both the lexical rules in rules.cpp and
// the phase-1 effect extraction in parse.cpp, so the two phases can never
// disagree about what counts as an allocation, a noalloc region, or a
// declared lock level.

/// Half-open token-index range [begin, end).
struct TokenRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Resolves `// aegis-lint: noalloc` (covers the next function body) and
/// noalloc-begin/noalloc-end pairs into token regions. Misplaced-marker
/// findings are appended to `out`.
std::vector<TokenRegion> noalloc_regions(const LexOutput& file,
                                         std::vector<Finding>& out);

struct MutexInfo {
  int level = 0;
  bool noblock = false;
};

/// Parses `lock-level(N[, noblock])` directives into `table`; the annotated
/// mutex is the last identifier on the directive's line or on the first
/// following line with tokens. Malformed directives are reported into
/// `out` when non-null.
void collect_lock_table(const LexOutput& lx,
                        std::map<std::string, MutexInfo>& table,
                        std::vector<Finding>* out);

/// When tokens[i] begins an allocation site (new, an allocating call like
/// push_back/resize, a by-value allocating container construction, a
/// stringstream), fills `what` with a short description and returns true.
bool alloc_site_at(const std::vector<Token>& t, std::size_t i,
                   std::string* what);

/// The rule catalog, for --list-rules and the docs.
std::vector<RuleInfo> rule_catalog();

/// Runs every rule over `file`. `companion` (may be null) contributes
/// declarations only — unordered-container variable names and lock-level
/// tables from a .cpp file's header — never findings.
std::vector<Finding> run_rules(const LexOutput& file, const LexOutput* companion,
                               const LintConfig& config);

}  // namespace aegis::lint
