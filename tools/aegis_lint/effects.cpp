#include "effects.hpp"

#include <algorithm>
#include <climits>
#include <iomanip>
#include <set>
#include <sstream>

#include "fnv.hpp"

namespace aegis::lint {
namespace {

std::string join_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += " -> ";
    out += chain[i];
  }
  return out;
}

void rule_rng_stream(const CallGraph& graph, std::vector<FileFinding>& out) {
  for (FnRef r : graph.sorted_functions()) {
    const FunctionModel& f = graph.fn(r);
    const bool draws = !f.draws.empty();
    bool forwards = false;
    for (const CallSite& c : f.calls) forwards = forwards || c.forwards_rng;
    if (!draws && !forwards) continue;
    if (!f.rng_stream.empty()) continue;
    const std::string verb =
        draws ? "draws from a util::Rng" : "forwards a util::Rng to callees";
    out.push_back(FileFinding{
        graph.path(r),
        Finding{"rng-stream", f.line,
                "function '" + f.qualified + "' " + verb +
                    " but has no '// aegis-rng: stream(<name>)' annotation; "
                    "name the stream so draw-order coupling is declared",
                "stream-ok"}});
  }
}

void rule_noalloc_transitive(const CallGraph& graph,
                             std::vector<FileFinding>& out) {
  for (FnRef r : graph.sorted_functions()) {
    const FunctionModel& f = graph.fn(r);
    for (const CallSite& c : f.calls) {
      if (!c.in_noalloc) continue;
      for (FnRef target : graph.resolve(c)) {
        if (target == r) continue;  // self-recursion: own body already linted
        const CallGraph::AllocReach& ar = graph.alloc_reach(target);
        if (!ar.reachable) continue;
        std::vector<std::string> chain = ar.chain;
        chain.insert(chain.begin(), f.qualified);
        out.push_back(FileFinding{
            graph.path(r),
            Finding{"noalloc-transitive", c.line,
                    "call to '" + c.callee +
                        "' inside a noalloc region reaches an allocation (" +
                        ar.what + " at " + ar.file + ":" +
                        std::to_string(ar.line) + " via " + join_chain(chain) +
                        ")",
                    "alloc-ok"}});
        break;  // one report per call site
      }
    }
  }
}

void rule_lock_order_global(const CallGraph& graph,
                            std::vector<FileFinding>& out) {
  for (FnRef r : graph.sorted_functions()) {
    const FunctionModel& f = graph.fn(r);
    for (const CallSite& c : f.calls) {
      if (c.held_levels.empty()) continue;
      // The tightest constraint is the highest level currently held.
      std::size_t hi = 0;
      for (std::size_t h = 1; h < c.held_levels.size(); ++h) {
        if (c.held_levels[h] > c.held_levels[hi]) hi = h;
      }
      const int held_level = c.held_levels[hi];
      const std::string& held_name = c.held_names[hi];
      for (FnRef target : graph.resolve(c)) {
        const CallGraph::LockReach& lr = graph.lock_reach(target);
        if (lr.level == INT_MAX || lr.level > held_level) continue;
        std::vector<std::string> chain = lr.chain;
        chain.insert(chain.begin(), f.qualified);
        out.push_back(FileFinding{
            graph.path(r),
            Finding{"lock-order-global", c.line,
                    "call to '" + c.callee + "' while holding '" + held_name +
                        "' (level " + std::to_string(held_level) +
                        ") transitively acquires '" + lr.mutex_name +
                        "' (level " + std::to_string(lr.level) + ") at " +
                        lr.file + ":" + std::to_string(lr.line) +
                        " via " + join_chain(chain) +
                        "; the declared lock order requires strictly "
                        "increasing levels",
                    "lock-ok"}});
        break;  // one report per call site
      }
    }
  }
}

/// DFS-preorder walk for the manifest: emits draws and descends into
/// resolved callees in body (seq) order. `visited` is per-root, so shared
/// helpers are inventoried once, at their first reachable position.
void manifest_walk(const CallGraph& graph, FnRef at, std::set<FnRef>& visited,
                   std::ostringstream& body, int& count) {
  if (visited.count(at) != 0) return;
  visited.insert(at);
  const FunctionModel& f = graph.fn(at);
  std::size_t di = 0;
  std::size_t ci = 0;
  while (di < f.draws.size() || ci < f.calls.size()) {
    const bool draw_next =
        ci >= f.calls.size() ||
        (di < f.draws.size() && f.draws[di].seq < f.calls[ci].seq);
    if (draw_next) {
      body << "- " << f.draws[di].method << " via " << f.qualified;
      if (!f.rng_stream.empty()) body << " [stream=" << f.rng_stream << "]";
      body << "\n";
      ++count;
      ++di;
    } else {
      for (FnRef target : graph.resolve(f.calls[ci])) {
        manifest_walk(graph, target, visited, body, count);
      }
      ++ci;
    }
  }
}

}  // namespace

std::vector<FileFinding> run_graph_rules(const CallGraph& graph) {
  std::vector<FileFinding> out;
  rule_rng_stream(graph, out);
  rule_noalloc_transitive(graph, out);
  rule_lock_order_global(graph, out);
  return out;
}

std::string rng_manifest(const CallGraph& graph) {
  std::ostringstream body;
  body << "# RNG stream manifest\n"
       << "\n"
       << "Generated by `aegis_lint --write-rng-manifest`; checked by the\n"
       << "`aegis_lint_gate` ctest via `--check-rng-manifest`. For every\n"
       << "hot-path root (a function guarded by `// aegis-lint: noalloc`)\n"
       << "this records the DFS-preorder sequence of util::Rng draw sites\n"
       << "the root can reach through the call graph. Line numbers are\n"
       << "deliberately omitted: unrelated edits leave the manifest alone,\n"
       << "but adding, removing, moving, or reordering a reachable draw\n"
       << "changes the sequence — and the pinned digest — so the gate\n"
       << "fails until the change is reviewed and the file regenerated:\n"
       << "\n"
       << "    build/tools/aegis_lint/aegis_lint --root . \\\n"
       << "        --write-rng-manifest RNG_STREAMS.md src bench examples "
          "tools\n"
       << "\n";
  int roots = 0;
  for (FnRef r : graph.sorted_functions()) {
    const FunctionModel& f = graph.fn(r);
    if (!f.noalloc_root) continue;
    ++roots;
    body << "## root " << f.qualified << " (" << graph.path(r) << ")";
    body << " stream="
         << (f.rng_stream.empty() ? "(unannotated)" : f.rng_stream) << "\n";
    std::set<FnRef> visited;
    int count = 0;
    manifest_walk(graph, r, visited, body, count);
    if (count == 0) body << "- (no reachable draws)\n";
    body << "\n";
  }
  if (roots == 0) body << "(no hot-path roots found)\n\n";
  std::ostringstream out;
  out << body.str();
  out << "digest: 0x" << std::hex << std::setw(16) << std::setfill('0')
      << fnv1a64(body.str()) << "\n";
  return out.str();
}

std::string manifest_digest_line(const std::string& manifest) {
  const std::string key = "digest: ";
  std::size_t pos = manifest.rfind(key);
  if (pos == std::string::npos) return "";
  // Must be at a line start.
  if (pos != 0 && manifest[pos - 1] != '\n') return "";
  std::size_t end = manifest.find('\n', pos);
  if (end == std::string::npos) end = manifest.size();
  return manifest.substr(pos + key.size(), end - pos - key.size());
}

}  // namespace aegis::lint
