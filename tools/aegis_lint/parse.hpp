// Phase 1 of the two-phase analyzer: per-TU symbol and effect extraction.
//
// parse_file() turns one lexed translation unit into a FileModel — the
// list of function definitions it contains, each with the effects the
// interprocedural rules in effects.cpp care about:
//
//   * call sites, in body order, each tagged with the declared lock levels
//     held at the site and whether the site sits inside a noalloc region;
//   * util::Rng draw sites (member calls like `rng_.laplace(...)` and
//     direct invocations `rng(...)` of an Rng-typed variable);
//   * allocation sites (same classifier the lexical noalloc rule uses);
//   * lock acquisitions of `lock-level(N)`-annotated mutexes;
//   * the `// aegis-rng: stream(<name>)` annotation, when present.
//
// The parser is heuristic, not a C++ front end: function heads are
// recognized as `qualified-name ( params ) [const|noexcept|-> type|init
// list] {`, qualified names combine the written `A::B::` qualifiers with a
// class/struct/namespace scope stack, and templates degrade gracefully to
// plain name matching. Anything the parser cannot shape-match (operator
// overloads with exotic spellings, macro-generated definitions) simply
// contributes no graph node — the lexical rules still see every token.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace aegis::lint {

/// One draw from a util::Rng inside a function body. `seq` is the draw's
/// 0-based position among the function's draws and calls in token order —
/// the RNG manifest pins this ordering, so a reordered draw changes the
/// manifest even when line numbers do not.
struct DrawSite {
  std::string method;  // "laplace", "uniform", "operator()", ...
  int line = 0;
  int seq = 0;
};

struct AllocSite {
  std::string what;  // classifier description, e.g. "push_back()"
  int line = 0;
};

/// Acquisition of a lock-level(N)-annotated mutex via
/// lock_guard/unique_lock/scoped_lock.
struct LockAcquire {
  std::string mutex_name;
  int level = 0;
  bool noblock = false;
  int line = 0;
};

struct CallSite {
  std::string callee;     // unqualified name, e.g. "accumulate"
  std::string qualifier;  // written "ns::Class" qualifier or receiver name
  bool member = false;    // receiver.callee(...) / receiver->callee(...)
  int line = 0;
  int seq = 0;  // position among the function's draws+calls, token order
  /// Declared levels of the annotated mutexes held at this call site (the
  /// guard scopes open around it), for the cross-TU lock-order rule.
  std::vector<int> held_levels;
  std::vector<std::string> held_names;
  /// True when the call site sits inside a noalloc region (function-form
  /// or begin/end-form) — the sites the transitive-allocation rule checks.
  bool in_noalloc = false;
  /// True when an Rng-typed variable is passed through this call's
  /// argument list (the callee draws on the caller's stream).
  bool forwards_rng = false;
};

struct FunctionModel {
  std::string qualified;  // e.g. "aegis::sim::GadgetRunner::execute_once"
  std::string name;       // last component, e.g. "execute_once"
  int line = 0;           // line of the name token in the definition
  /// True when a `// aegis-lint: noalloc` directive guards this body —
  /// these are the hot-path roots the RNG manifest inventories.
  bool noalloc_root = false;
  /// True when `// aegis-lint: amortized-alloc(<reason>)` guards this body:
  /// the function allocates only on cold paths (first-seen cache fill,
  /// first-touch lazy init, static-local handle resolution), so its
  /// allocations do not propagate to noalloc callers.
  bool amortized_alloc = false;
  /// The `// aegis-rng: stream(<name>)` annotation, "" when absent.
  std::string rng_stream;
  std::vector<DrawSite> draws;
  std::vector<AllocSite> allocs;
  std::vector<LockAcquire> acquires;
  std::vector<CallSite> calls;
};

struct FileModel {
  std::string path;  // display path relative to the lint root
  std::vector<FunctionModel> functions;
};

/// Extracts the FileModel for one TU. `companion` (nullable) contributes
/// declarations only — its lock-level table and Rng member declarations
/// extend what the .cpp body scan can recognize. Misparse diagnostics
/// (e.g. a stream annotation that guards no function) are appended to
/// `out`.
FileModel parse_file(std::string_view path, const LexOutput& file,
                     const LexOutput* companion, std::vector<Finding>& out);

}  // namespace aegis::lint
