// Content-hash incremental cache for phase 1.
//
// Phase 1 of the analyzer (lex + lexical rules + FileModel extraction) is
// a pure function of (display path, file content, companion content, rule
// set). The cache persists its product keyed by the FNV-1a chain of those
// four inputs, so an unchanged file costs one hash + one small read on the
// next run — lexing and parsing are skipped entirely. Phase 2 (suppression
// filtering, graph rules, stale detection) always runs fresh from the
// cached directives and models, which is what makes cached and uncached
// runs byte-identical.
//
// Entries are self-describing text; any parse failure or version mismatch
// is a miss, never an error — the cache can be deleted at will.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"
#include "parse.hpp"
#include "rules.hpp"

namespace aegis::lint {

/// Everything phase 1 produces for one file.
struct FileAnalysis {
  std::vector<Finding> raw;           // unfiltered lexical + parse findings
  std::vector<Directive> directives;  // for suppression + stale detection
  FileModel model;                    // phase-2 graph input
};

/// The cache key for one file: hex FNV-1a chain over the rule-set version,
/// the display path, the content, the companion content, and a config salt
/// (the per-file rule toggles, so changing an exemption list invalidates
/// exactly the files it covers).
std::string cache_key(std::string_view rel_path, std::string_view content,
                      std::string_view companion,
                      std::string_view config_salt);

/// Loads the entry for `key` from `dir`. Returns false on miss, version
/// mismatch, or a corrupt entry (all treated identically).
bool cache_load(const std::string& dir, const std::string& key,
                FileAnalysis& out);

/// Stores `analysis` under `key`, creating `dir` if needed. Best-effort:
/// I/O failures are swallowed (a cold cache is always correct).
void cache_store(const std::string& dir, const std::string& key,
                 const FileAnalysis& analysis);

}  // namespace aegis::lint
