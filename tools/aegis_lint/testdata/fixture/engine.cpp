#include "engine.hpp"

namespace fx {

// The seeded one-call-deep allocation: tick is the hot path, but the
// allocation hides one frame down in refill(). A per-file lexical scan of
// the noalloc region sees only an innocent call token; the transitive rule
// must walk the edge and report the chain at this call site.
// aegis-lint: noalloc
// aegis-rng: stream(fixture-engine-tick)
double Engine::tick(util::Rng& rng) {
  if (cursor_ == pool_.size()) {
    refill();
  }
  const double jitter = rng.laplace(0.0, 1.0);
  const double mixed = sample(rng);
  return pool_[cursor_++] + jitter + mixed;
}

// Draws but carries no stream annotation — the rng-stream rule wants the
// draw-order coupling declared.
double Engine::sample(util::Rng& rng) { return rng.uniform(0.0, 1.0); }

void Engine::refill() {
  pool_.push_back(0.5);
  cursor_ = 0;
}

void Engine::reset() { cursor_ = 0; }

}  // namespace fx
