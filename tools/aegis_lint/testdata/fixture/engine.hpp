// Interprocedural-test fixture. Everything under testdata/ exists to
// TRIGGER findings; the tree gate excludes this directory by default.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fx {

class Engine {
 public:
  double tick(util::Rng& rng);
  double sample(util::Rng& rng);
  void refill();
  void reset();

 private:
  std::vector<double> pool_;
  std::size_t cursor_ = 0;
};

}  // namespace fx
