#pragma once

namespace fx {

// Overload pair: the call graph merges both definitions into one name
// group, so a caller of `scale` conservatively reaches the allocating
// overload too.
double scale(double v);
int scale(int v);

template <typename T>
T clamp_to(T v, T lo, T hi);

}  // namespace fx
