#include <mutex>

#include "telemetry.hpp"

namespace fx {

// Cross-TU out-of-order acquisition: publish() holds the level-30 governor
// lock and calls Telemetry::record, which (in its own TU) takes its
// level-10 sink lock. Neither TU alone shows a nested acquisition — only
// the global rule over the call graph can see the inversion.
class Governor {
 public:
  void publish(double v) {
    std::lock_guard lock(mu_);
    telemetry_.record(v);
  }

 private:
  std::mutex mu_;  // aegis-lint: lock-level(30)
  Telemetry telemetry_;
};

}  // namespace fx
