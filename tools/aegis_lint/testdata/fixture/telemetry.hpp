#pragma once

#include <mutex>

namespace fx {

class Telemetry {
 public:
  void record(double v);
  void reset();

 private:
  std::mutex sink_mu_;  // aegis-lint: lock-level(10)
  double last_ = 0.0;
};

}  // namespace fx
