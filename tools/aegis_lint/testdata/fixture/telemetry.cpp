#include "telemetry.hpp"

namespace fx {

void Telemetry::record(double v) {
  std::lock_guard lock(sink_mu_);
  last_ = v;
}

void Telemetry::reset() { last_ = 0.0; }

}  // namespace fx
