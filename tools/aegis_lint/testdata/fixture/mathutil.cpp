#include "mathutil.hpp"

#include <vector>

namespace fx {

double scale(double v) { return clamp_to(v * 2.0, 0.0, 1.0); }

int scale(int v) {
  std::vector<int> tmp;
  tmp.push_back(v);
  return tmp[0] * 2;
}

// Templates degrade to plain name matching: instantiations do not exist as
// separate graph nodes, callers bind to this definition by name.
template <typename T>
T clamp_to(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace fx
