// Shared declarations for the telemetry_handle fixture pair. Finding-free.
#pragma once

#include <cstdint>

namespace telemetry {
class EventHandle {
 public:
  void record(std::uint64_t a, std::uint64_t b) const noexcept;
};
enum class WideEventType { kHotExec };
struct Recorder {
  EventHandle event_handle(const char* name, WideEventType type);
  void record_named(const char* name, std::uint64_t t);
};
struct Registry {
  static Registry& global();
  Recorder& recorder();
};
}  // namespace telemetry

namespace fixture {

struct HotLoop {
  void step(std::uint64_t t);
};

class ColdPath {
 public:
  ColdPath();
  void step(std::uint64_t t);

 private:
  telemetry::EventHandle step_event_;
};

}  // namespace fixture
