// Negative fixture for the telemetry-handle rule's flight-recorder
// extension: both by-name recorder entry points inside a noalloc region.
// Expected findings: two telemetry-handle hits (event_handle, record_named),
// nothing else.
#include "recorder_fixture.hpp"

namespace fixture {

// aegis-lint: noalloc
void HotLoop::step(std::uint64_t t) {
  telemetry::Registry::global().recorder().event_handle(
      "hotloop.step", telemetry::WideEventType::kHotExec);
  telemetry::Registry::global().recorder().record_named("hotloop.step", t);
}

}  // namespace fixture
