// Positive fixture for the telemetry-handle rule's flight-recorder
// extension: the sanctioned idiom. The handle is resolved once in the
// constructor (outside any noalloc region); the noalloc hot path records
// through the wait-free EventHandle. Expected findings: none.
#include "recorder_fixture.hpp"

namespace fixture {

ColdPath::ColdPath()
    : step_event_(telemetry::Registry::global().recorder().event_handle(
          "coldpath.step", telemetry::WideEventType::kHotExec)) {}

// aegis-lint: noalloc
void ColdPath::step(std::uint64_t t) { step_event_.record(t, t + 1); }

}  // namespace fixture
