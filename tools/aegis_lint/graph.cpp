#include "graph.hpp"

#include <algorithm>
#include <sstream>

namespace aegis::lint {

CallGraph::CallGraph(const ProjectModel& project) : project_(&project) {
  for (std::size_t f = 0; f < project.files.size(); ++f) {
    for (std::size_t k = 0; k < project.files[f].functions.size(); ++k) {
      sorted_.push_back(FnRef{f, k});
    }
  }
  std::sort(sorted_.begin(), sorted_.end(), [&](FnRef a, FnRef b) {
    const FunctionModel& fa = fn(a);
    const FunctionModel& fb = fn(b);
    if (fa.qualified != fb.qualified) return fa.qualified < fb.qualified;
    if (path(a) != path(b)) return path(a) < path(b);
    return fa.line < fb.line;
  });
  for (std::size_t s = 0; s < sorted_.size(); ++s) {
    dense_[sorted_[s]] = s;
    by_name_[fn(sorted_[s]).name].push_back(sorted_[s]);
  }
  alloc_state_.assign(sorted_.size(), 0);
  alloc_memo_.resize(sorted_.size());
  lock_state_.assign(sorted_.size(), 0);
  lock_memo_.resize(sorted_.size());
}

std::vector<FnRef> CallGraph::resolve(const CallSite& call) const {
  const auto it = by_name_.find(call.callee);
  if (it == by_name_.end()) return {};
  const std::vector<FnRef>& group = it->second;
  // A written (non-receiver) qualifier narrows the group when it matches.
  if (!call.qualifier.empty() && !call.member) {
    const std::string suffix = call.qualifier + "::" + call.callee;
    std::vector<FnRef> narrowed;
    for (FnRef r : group) {
      const std::string& q = fn(r).qualified;
      if (q.size() >= suffix.size() &&
          q.compare(q.size() - suffix.size(), suffix.size(), suffix) == 0) {
        narrowed.push_back(r);
      }
    }
    if (!narrowed.empty()) return narrowed;
  }
  return group;
}

void CallGraph::alloc_dfs(FnRef from) const {
  const std::size_t me = id(from);
  if (alloc_state_[me] != 0) return;
  alloc_state_[me] = 1;
  AllocReach& memo = alloc_memo_[me];
  const FunctionModel& f = fn(from);
  // Declared amortized: cold-path allocations only; neither its own alloc
  // sites nor its callees' reach its callers.
  if (f.amortized_alloc) {
    alloc_state_[me] = 2;
    return;
  }
  if (!f.allocs.empty()) {
    memo.reachable = true;
    memo.chain = {f.qualified};
    memo.what = f.allocs.front().what;
    memo.file = path(from);
    memo.line = f.allocs.front().line;
    alloc_state_[me] = 2;
    return;
  }
  for (const CallSite& c : f.calls) {
    for (FnRef callee : resolve(c)) {
      const std::size_t ci = id(callee);
      if (alloc_state_[ci] == 1) continue;  // cycle back-edge
      alloc_dfs(callee);
      if (alloc_state_[ci] == 2 && alloc_memo_[ci].reachable) {
        memo = alloc_memo_[ci];
        memo.chain.insert(memo.chain.begin(), f.qualified);
        alloc_state_[me] = 2;
        return;
      }
    }
  }
  alloc_state_[me] = 2;
}

const CallGraph::AllocReach& CallGraph::alloc_reach(FnRef from) const {
  alloc_dfs(from);
  // A back-edge target may still be marked in-progress from its own DFS
  // frame; force completion state for the read.
  alloc_state_[id(from)] = 2;
  return alloc_memo_[id(from)];
}

void CallGraph::lock_dfs(FnRef from) const {
  const std::size_t me = id(from);
  if (lock_state_[me] != 0) return;
  lock_state_[me] = 1;
  LockReach& memo = lock_memo_[me];
  const FunctionModel& f = fn(from);
  for (const LockAcquire& a : f.acquires) {
    if (a.level < memo.level) {
      memo.level = a.level;
      memo.chain = {f.qualified};
      memo.mutex_name = a.mutex_name;
      memo.file = path(from);
      memo.line = a.line;
    }
  }
  for (const CallSite& c : f.calls) {
    for (FnRef callee : resolve(c)) {
      const std::size_t ci = id(callee);
      if (lock_state_[ci] == 1) continue;
      lock_dfs(callee);
      if (lock_state_[ci] == 2 && lock_memo_[ci].level < memo.level) {
        memo = lock_memo_[ci];
        memo.chain.insert(memo.chain.begin(), f.qualified);
      }
    }
  }
  lock_state_[me] = 2;
}

const CallGraph::LockReach& CallGraph::lock_reach(FnRef from) const {
  lock_dfs(from);
  lock_state_[id(from)] = 2;
  return lock_memo_[id(from)];
}

std::string CallGraph::dump() const {
  std::ostringstream os;
  os << "# aegis-lint call graph: " << sorted_.size() << " function(s)\n";
  for (FnRef r : sorted_) {
    const FunctionModel& f = fn(r);
    os << "fn " << f.qualified << " (" << path(r) << ")";
    if (f.noalloc_root) os << " [noalloc-root]";
    if (f.amortized_alloc) os << " [amortized-alloc]";
    if (!f.rng_stream.empty()) os << " [stream=" << f.rng_stream << "]";
    os << "\n";
    for (const DrawSite& d : f.draws) {
      os << "  draw " << d.seq << ": " << d.method << "\n";
    }
    for (const AllocSite& a : f.allocs) {
      os << "  alloc: " << a.what << "\n";
    }
    for (const LockAcquire& a : f.acquires) {
      os << "  lock: " << a.mutex_name << " level=" << a.level
         << (a.noblock ? " noblock" : "") << "\n";
    }
    for (const CallSite& c : f.calls) {
      os << "  call " << c.seq << ": " << c.callee;
      std::vector<FnRef> targets = resolve(c);
      if (!targets.empty()) {
        os << " ->";
        // Dedup qualified names (overload groups repeat them).
        std::vector<std::string> quals;
        for (FnRef tr : targets) quals.push_back(fn(tr).qualified);
        std::sort(quals.begin(), quals.end());
        quals.erase(std::unique(quals.begin(), quals.end()), quals.end());
        for (const std::string& q : quals) os << " " << q;
      }
      if (c.forwards_rng) os << " [forwards-rng]";
      if (c.in_noalloc) os << " [in-noalloc]";
      if (!c.held_levels.empty()) {
        os << " [held=";
        for (std::size_t h = 0; h < c.held_levels.size(); ++h) {
          if (h != 0) os << ",";
          os << c.held_levels[h];
        }
        os << "]";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace aegis::lint
