// aegis_lint CLI — the repo's invariant gate.
//
//   aegis_lint --root <repo> [paths...]     lint (default: src bench examples)
//   aegis_lint --list-rules                 print the rule catalog
//   aegis_lint ... --fix-suppressions       print ready-to-paste suppression
//                                           comments for every finding
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  using namespace aegis::lint;

  TreeOptions options;
  options.root = ".";
  bool fix_suppressions = false;
  bool list_rules = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "aegis_lint: --root needs a directory\n";
        return 2;
      }
      options.root = argv[++i];
    } else if (arg == "--fix-suppressions") {
      fix_suppressions = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: aegis_lint [--root DIR] [--fix-suppressions] "
                   "[--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "aegis_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rule_catalog()) {
      std::cout << r.name << " (suppress: " << r.suppress_tag << ")\n    "
                << r.summary << "\n";
    }
    return 0;
  }

  options.paths = paths.empty()
                      ? std::vector<std::string>{"src", "bench", "examples"}
                      : paths;

  std::vector<FileFinding> findings;
  try {
    findings = lint_tree(options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (fix_suppressions) {
    for (const FileFinding& f : findings) {
      std::cout << format_suppression_hint(f) << "\n";
    }
    return findings.empty() ? 0 : 1;
  }

  for (const FileFinding& f : findings) {
    std::cout << format_finding(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "aegis_lint: " << findings.size()
              << " finding(s). Fix them or suppress with a reason "
                 "(--fix-suppressions prints paste-ready comments; "
                 "--list-rules explains each rule).\n";
    return 1;
  }
  std::cout << "aegis_lint: clean\n";
  return 0;
}
