// aegis_lint CLI — the repo's invariant gate.
//
//   aegis_lint --root <repo> [paths...]     analyze (default: src bench
//                                           examples tools)
//   aegis_lint --list-rules                 print the rule catalog
//   aegis_lint ... --fix-suppressions       print ready-to-paste suppression
//                                           comments for every finding
//   aegis_lint ... --sarif FILE             also write a SARIF 2.1.0 log
//                                           ("-" = stdout)
//   aegis_lint ... --cache-dir DIR          phase-1 incremental cache
//   aegis_lint ... --graph-dump FILE        dump the call graph ("-" = stdout)
//   aegis_lint ... --write-rng-manifest F   regenerate RNG_STREAMS.md
//   aegis_lint ... --check-rng-manifest F   fail unless F matches the code
//   aegis_lint ... --prune-suppressions     list stale suppressions only
//   aegis_lint ... --prune-apply            ...and delete them in place
//   aegis_lint ... --stale-as-error         stale suppressions fail the run
//   aegis_lint ... --time-report            print phase wall times
//   aegis_lint ... --time-json FILE         write run timing as JSON (the
//                                           bench_compare --lint budget)
//
// Exit status: 0 clean, 1 unsuppressed findings (stale suppressions count
// only under --stale-as-error), 2 usage or I/O error.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "effects.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace {

bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::string read_text(const std::string& path, bool& ok) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  ok = true;
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aegis::lint;

  ProjectOptions options;
  options.tree.root = ".";
  bool fix_suppressions = false;
  bool list_rules = false;
  bool prune = false;
  bool prune_apply = false;
  bool stale_as_error = false;
  bool time_report = false;
  std::string time_json_path;
  std::string sarif_path;
  std::string graph_dump_path;
  std::string write_manifest_path;
  std::string check_manifest_path;
  std::vector<std::string> paths;

  auto need_value = [&](int& i, const char* flag, std::string& out) {
    if (i + 1 >= argc) {
      std::cerr << "aegis_lint: " << flag << " needs a value\n";
      return false;
    }
    out = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (!need_value(i, "--root", options.tree.root)) return 2;
    } else if (arg == "--cache-dir") {
      if (!need_value(i, "--cache-dir", options.cache_dir)) return 2;
    } else if (arg == "--sarif") {
      if (!need_value(i, "--sarif", sarif_path)) return 2;
    } else if (arg == "--graph-dump") {
      if (!need_value(i, "--graph-dump", graph_dump_path)) return 2;
    } else if (arg == "--write-rng-manifest") {
      if (!need_value(i, "--write-rng-manifest", write_manifest_path)) return 2;
    } else if (arg == "--check-rng-manifest") {
      if (!need_value(i, "--check-rng-manifest", check_manifest_path)) return 2;
    } else if (arg == "--exclude") {
      std::string prefix;
      if (!need_value(i, "--exclude", prefix)) return 2;
      options.tree.exclude.push_back(prefix);
    } else if (arg == "--fix-suppressions") {
      fix_suppressions = true;
    } else if (arg == "--prune-suppressions") {
      prune = true;
    } else if (arg == "--prune-apply") {
      prune = true;
      prune_apply = true;
    } else if (arg == "--stale-as-error") {
      stale_as_error = true;
    } else if (arg == "--time-report") {
      time_report = true;
    } else if (arg == "--time-json") {
      if (!need_value(i, "--time-json", time_json_path)) return 2;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: aegis_lint [--root DIR] [--cache-dir DIR] [--sarif FILE]\n"
             "                  [--graph-dump FILE] [--write-rng-manifest FILE]\n"
             "                  [--check-rng-manifest FILE] [--exclude PREFIX]\n"
             "                  [--prune-suppressions [--prune-apply]]\n"
             "                  [--stale-as-error] [--fix-suppressions]\n"
             "                  [--time-report] [--time-json FILE]\n"
             "                  [--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "aegis_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rule_catalog()) {
      std::cout << r.name;
      if (!r.suppress_tag.empty()) {
        std::cout << " (suppress: " << r.suppress_tag << ")";
      }
      std::cout << "\n    " << r.summary << "\n";
    }
    return 0;
  }

  options.tree.paths =
      paths.empty()
          ? std::vector<std::string>{"src", "bench", "examples", "tools"}
          : paths;

  // aegis-lint: clock-ok(--time-report exists to measure the linter itself)
  const auto t0 = std::chrono::steady_clock::now();
  ProjectResult result;
  try {
    result = lint_project(options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  // aegis-lint: clock-ok(--time-report exists to measure the linter itself)
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<FileFinding> errors;
  std::vector<FileFinding> stale;
  for (const FileFinding& f : result.findings) {
    (f.finding.rule == "stale-suppression" ? stale : errors).push_back(f);
  }

  if (prune) {
    for (const FileFinding& f : stale) {
      std::cout << format_finding(f) << "\n";
    }
    if (prune_apply) {
      const std::size_t removed =
          prune_stale_suppressions(options.tree.root, stale);
      std::cout << "aegis_lint: removed " << removed
                << " stale suppression(s)\n";
    } else {
      std::cout << "aegis_lint: " << stale.size()
                << " stale suppression(s); rerun with --prune-apply to "
                   "delete them\n";
    }
    return stale.empty() || prune_apply ? 0 : (stale_as_error ? 1 : 0);
  }

  if (!graph_dump_path.empty()) {
    const CallGraph graph(result.model);
    if (!write_text(graph_dump_path, graph.dump())) {
      std::cerr << "aegis_lint: cannot write " << graph_dump_path << "\n";
      return 2;
    }
  }

  bool manifest_failed = false;
  if (!write_manifest_path.empty() || !check_manifest_path.empty()) {
    const CallGraph graph(result.model);
    const std::string manifest = rng_manifest(graph);
    if (!write_manifest_path.empty()) {
      if (!write_text(write_manifest_path, manifest)) {
        std::cerr << "aegis_lint: cannot write " << write_manifest_path << "\n";
        return 2;
      }
      std::cout << "aegis_lint: wrote RNG manifest (digest "
                << manifest_digest_line(manifest) << ") to "
                << write_manifest_path << "\n";
    }
    if (!check_manifest_path.empty()) {
      bool ok = false;
      const std::string committed = read_text(check_manifest_path, ok);
      if (!ok) {
        std::cerr << "aegis_lint: cannot read " << check_manifest_path << "\n";
        return 2;
      }
      if (committed != manifest) {
        manifest_failed = true;
        std::cout << "aegis_lint: RNG manifest is out of date (committed "
                     "digest "
                  << (manifest_digest_line(committed).empty()
                          ? std::string("<missing>")
                          : manifest_digest_line(committed))
                  << ", code digest " << manifest_digest_line(manifest)
                  << ").\n"
                  << "    A hot-path-reachable util::Rng draw site was "
                     "added, removed, moved, or reordered. Review the "
                     "draw-order change, then regenerate:\n"
                  << "    aegis_lint --root <repo> --write-rng-manifest "
                  << check_manifest_path << " src bench examples tools\n";
      }
    }
  }

  if (fix_suppressions) {
    for (const FileFinding& f : errors) {
      std::cout << format_suppression_hint(f) << "\n";
    }
    return errors.empty() ? 0 : 1;
  }

  if (!sarif_path.empty()) {
    if (!write_text(sarif_path, sarif_report(result.findings))) {
      std::cerr << "aegis_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  for (const FileFinding& f : errors) {
    std::cout << format_finding(f) << "\n";
  }
  for (const FileFinding& f : stale) {
    std::cout << (stale_as_error ? "" : "warning: ") << format_finding(f)
              << "\n";
  }
  const auto wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count();
  if (time_report) {
    std::cout << "aegis_lint: analyzed " << result.files_analyzed
              << " file(s) in " << wall_ms << " ms (" << result.cache_hits
              << " cache hit(s))\n";
  }
  if (!time_json_path.empty()) {
    std::ostringstream js;
    js << "{\n"
       << "  \"ruleset\": \"" << kRuleSetVersion << "\",\n"
       << "  \"files_analyzed\": " << result.files_analyzed << ",\n"
       << "  \"cache_hits\": " << result.cache_hits << ",\n"
       << "  \"wall_ms\": " << wall_ms << "\n"
       << "}\n";
    if (!write_text(time_json_path, js.str())) {
      std::cerr << "aegis_lint: cannot write " << time_json_path << "\n";
      return 2;
    }
  }

  const bool failed =
      !errors.empty() || manifest_failed || (stale_as_error && !stale.empty());
  if (failed) {
    std::cout << "aegis_lint: " << errors.size() << " finding(s)"
              << (manifest_failed ? ", stale RNG manifest" : "")
              << (stale_as_error && !stale.empty()
                      ? ", stale suppression(s)"
                      : "")
              << ". Fix them or suppress with a reason "
                 "(--fix-suppressions prints paste-ready comments; "
                 "--list-rules explains each rule).\n";
    return 1;
  }
  std::cout << "aegis_lint: clean\n";
  return 0;
}
