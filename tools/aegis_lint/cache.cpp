#include "cache.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "fnv.hpp"

namespace aegis::lint {

namespace fs = std::filesystem;

namespace {

// Field escaping: entries are tab-separated lines, so tabs, newlines and
// backslashes in free-text fields (messages, directive args) are encoded.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool to_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  int v = 0;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  out = s[0] == '-' ? -v : v;
  return true;
}

fs::path entry_path(const std::string& dir, const std::string& key) {
  return fs::path(dir) / (key + ".lintcache");
}

constexpr char kFormatVersion[] = "1";

}  // namespace

std::string cache_key(std::string_view rel_path, std::string_view content,
                      std::string_view companion,
                      std::string_view config_salt) {
  std::uint64_t h = fnv1a64(kRuleSetVersion);
  // A separator byte between inputs so boundaries cannot alias (the same
  // trick src/util/hash.hpp uses for composite keys).
  h = fnv1a64("\x1f", h);
  h = fnv1a64(rel_path, h);
  h = fnv1a64("\x1f", h);
  h = fnv1a64(content, h);
  h = fnv1a64("\x1f", h);
  h = fnv1a64(companion, h);
  h = fnv1a64("\x1f", h);
  h = fnv1a64(config_salt, h);
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << h;
  return os.str();
}

void cache_store(const std::string& dir, const std::string& key,
                 const FileAnalysis& analysis) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return;
  std::ostringstream os;
  os << "aegis-lint-cache " << kFormatVersion << " " << kRuleSetVersion
     << "\n";
  for (const Directive& d : analysis.directives) {
    os << "D\t" << d.line << "\t" << esc(d.tag) << "\t" << esc(d.arg) << "\n";
  }
  for (const Finding& f : analysis.raw) {
    os << "F\t" << f.line << "\t" << esc(f.rule) << "\t"
       << esc(f.suppress_tag) << "\t" << esc(f.message) << "\n";
  }
  for (const FunctionModel& fn : analysis.model.functions) {
    os << "N\t" << fn.line << "\t" << (fn.noalloc_root ? 1 : 0) << "\t"
       << (fn.amortized_alloc ? 1 : 0) << "\t" << esc(fn.qualified) << "\t"
       << esc(fn.name) << "\t" << esc(fn.rng_stream) << "\n";
    for (const DrawSite& d : fn.draws) {
      os << "R\t" << d.line << "\t" << d.seq << "\t" << esc(d.method) << "\n";
    }
    for (const AllocSite& a : fn.allocs) {
      os << "A\t" << a.line << "\t" << esc(a.what) << "\n";
    }
    for (const LockAcquire& a : fn.acquires) {
      os << "L\t" << a.line << "\t" << a.level << "\t" << (a.noblock ? 1 : 0)
         << "\t" << esc(a.mutex_name) << "\n";
    }
    for (const CallSite& c : fn.calls) {
      os << "C\t" << c.line << "\t" << c.seq << "\t" << (c.member ? 1 : 0)
         << "\t" << (c.in_noalloc ? 1 : 0) << "\t" << (c.forwards_rng ? 1 : 0)
         << "\t" << esc(c.callee) << "\t" << esc(c.qualifier);
      for (std::size_t h = 0; h < c.held_levels.size(); ++h) {
        os << "\t" << c.held_levels[h] << ":" << c.held_names[h];
      }
      os << "\n";
    }
  }
  // Write-then-rename so a crashed run never leaves a torn entry behind.
  const fs::path final_path = entry_path(dir, key);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << os.str();
    if (!out) return;
  }
  fs::rename(tmp_path, final_path, ec);
}

bool cache_load(const std::string& dir, const std::string& key,
                FileAnalysis& out) {
  std::ifstream is(entry_path(dir, key), std::ios::binary);
  if (!is) return false;
  std::string header;
  if (!std::getline(is, header)) return false;
  if (header != std::string("aegis-lint-cache ") + kFormatVersion + " " +
                    std::string(kRuleSetVersion)) {
    return false;
  }
  FileAnalysis loaded;
  FunctionModel* fn = nullptr;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    int n = 0;
    if (f[0] == "D") {
      if (f.size() != 4 || !to_int(f[1], n)) return false;
      loaded.directives.push_back(Directive{unesc(f[2]), unesc(f[3]), n});
    } else if (f[0] == "F") {
      if (f.size() != 5 || !to_int(f[1], n)) return false;
      loaded.raw.push_back(Finding{unesc(f[2]), n, unesc(f[4]), unesc(f[3])});
    } else if (f[0] == "N") {
      int root = 0;
      int amortized = 0;
      if (f.size() != 7 || !to_int(f[1], n) || !to_int(f[2], root) ||
          !to_int(f[3], amortized)) {
        return false;
      }
      loaded.model.functions.push_back(FunctionModel{});
      fn = &loaded.model.functions.back();
      fn->line = n;
      fn->noalloc_root = root != 0;
      fn->amortized_alloc = amortized != 0;
      fn->qualified = unesc(f[4]);
      fn->name = unesc(f[5]);
      fn->rng_stream = unesc(f[6]);
    } else if (f[0] == "R") {
      int seq = 0;
      if (fn == nullptr || f.size() != 4 || !to_int(f[1], n) ||
          !to_int(f[2], seq)) {
        return false;
      }
      fn->draws.push_back(DrawSite{unesc(f[3]), n, seq});
    } else if (f[0] == "A") {
      if (fn == nullptr || f.size() != 3 || !to_int(f[1], n)) return false;
      fn->allocs.push_back(AllocSite{unesc(f[2]), n});
    } else if (f[0] == "L") {
      int level = 0;
      int noblock = 0;
      if (fn == nullptr || f.size() != 5 || !to_int(f[1], n) ||
          !to_int(f[2], level) || !to_int(f[3], noblock)) {
        return false;
      }
      fn->acquires.push_back(
          LockAcquire{unesc(f[4]), level, noblock != 0, n});
    } else if (f[0] == "C") {
      int seq = 0;
      int member = 0;
      int in_noalloc = 0;
      int fwd = 0;
      if (fn == nullptr || f.size() < 8 || !to_int(f[1], n) ||
          !to_int(f[2], seq) || !to_int(f[3], member) ||
          !to_int(f[4], in_noalloc) || !to_int(f[5], fwd)) {
        return false;
      }
      CallSite c;
      c.line = n;
      c.seq = seq;
      c.member = member != 0;
      c.in_noalloc = in_noalloc != 0;
      c.forwards_rng = fwd != 0;
      c.callee = unesc(f[6]);
      c.qualifier = unesc(f[7]);
      for (std::size_t h = 8; h < f.size(); ++h) {
        const std::size_t colon = f[h].find(':');
        int level = 0;
        if (colon == std::string::npos || !to_int(f[h].substr(0, colon), level)) {
          return false;
        }
        c.held_levels.push_back(level);
        c.held_names.push_back(f[h].substr(colon + 1));
      }
      fn->calls.push_back(std::move(c));
    } else {
      return false;
    }
  }
  out = std::move(loaded);
  return true;
}

}  // namespace aegis::lint
