// Lint driver: suppression filtering and the filesystem walk.
//
// Suppression syntax (one per comment, same line as the finding or the
// line immediately above it):
//     // aegis-lint: <tag>-ok(<reason>)
// The reason is mandatory — an empty reason does not suppress and is
// itself reported, so every silenced finding documents WHY the invariant
// holds at that site.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rules.hpp"

namespace aegis::lint {

struct FileFinding {
  std::string file;  // display path (relative to the lint root)
  Finding finding;
};

/// Lints one in-memory source. `companion` contributes declarations
/// (unordered-container names, lock-level tables) — pass "" when there is
/// none. Returns only UNSUPPRESSED findings (plus findings about invalid
/// suppressions/directives).
std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view companion,
                                 const LintConfig& config);

struct TreeOptions {
  std::string root;                 // absolute or cwd-relative repo root
  std::vector<std::string> paths;   // subtrees/files relative to root
  /// Path prefixes (relative, '/'-terminated) where banned-clock is off:
  /// benchmarks exist to measure wall time.
  std::vector<std::string> clock_exempt = {"bench/"};
  /// Path prefixes where backend-registry is off: the backend layer itself
  /// is the one sanctioned EventDatabase::generate() caller.
  std::vector<std::string> backend_exempt = {"src/pmu/backend/"};
};

/// Lints every .cpp/.hpp/.h under the requested subtrees, in sorted path
/// order. A .cpp file's same-stem .hpp/.h neighbor is its companion.
/// Throws std::runtime_error when a requested path does not exist.
std::vector<FileFinding> lint_tree(const TreeOptions& options);

/// Renders one finding as "file:line: [rule] message".
std::string format_finding(const FileFinding& f);

/// The `--fix-suppressions` view: the exact comment to paste for each
/// finding that supports suppression.
std::string format_suppression_hint(const FileFinding& f);

}  // namespace aegis::lint
