// Lint driver: suppression filtering and the filesystem walk.
//
// Suppression syntax (one per comment, same line as the finding or the
// line immediately above it):
//     // aegis-lint: <tag>-ok(<reason>)
// The reason is mandatory — an empty reason does not suppress and is
// itself reported, so every silenced finding documents WHY the invariant
// holds at that site.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph.hpp"
#include "rules.hpp"

namespace aegis::lint {

struct FileFinding {
  std::string file;  // display path (relative to the lint root)
  Finding finding;
};

/// Lints one in-memory source. `companion` contributes declarations
/// (unordered-container names, lock-level tables) — pass "" when there is
/// none. Returns only UNSUPPRESSED findings (plus findings about invalid
/// suppressions/directives).
std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view companion,
                                 const LintConfig& config);

struct TreeOptions {
  std::string root;                 // absolute or cwd-relative repo root
  std::vector<std::string> paths;   // subtrees/files relative to root
  /// Path prefixes (relative, '/'-terminated) where banned-clock is off:
  /// benchmarks exist to measure wall time.
  std::vector<std::string> clock_exempt = {"bench/"};
  /// Path prefixes where backend-registry is off: the backend layer itself
  /// is the one sanctioned EventDatabase::generate() caller.
  std::vector<std::string> backend_exempt = {"src/pmu/backend/"};
  /// Path prefixes skipped entirely. The default keeps the linter's own
  /// negative fixtures (code that EXISTS to trigger findings) out of the
  /// gate while `tools/` as a whole is linted.
  std::vector<std::string> exclude = {"tools/aegis_lint/testdata/"};
};

/// Lints every .cpp/.hpp/.h under the requested subtrees, in sorted path
/// order. A .cpp file's same-stem .hpp/.h neighbor is its companion.
/// Throws std::runtime_error when a requested path does not exist.
std::vector<FileFinding> lint_tree(const TreeOptions& options);

// ---------------------------------------------------------------------------
// Two-phase project analysis (the v2 analyzer). lint_tree above stays the
// per-file lexical pass; lint_project runs it AND the interprocedural
// rules from effects.cpp over a project-wide call graph, with an optional
// phase-1 result cache.

struct ProjectOptions {
  TreeOptions tree;
  /// Directory for the phase-1 incremental cache; "" disables caching.
  /// Cached and uncached runs produce byte-identical findings — phase 2
  /// always runs fresh from the cached per-file models.
  std::string cache_dir;
};

struct ProjectResult {
  /// All surviving findings — lexical, parse diagnostics, interprocedural,
  /// and stale-suppression warnings — suppression-filtered and sorted by
  /// (file, line). Stale-suppression entries are warnings: the CLI exit
  /// code ignores them unless --stale-as-error.
  std::vector<FileFinding> findings;
  /// The phase-1 models, for --graph-dump and the RNG manifest.
  ProjectModel model;
  std::size_t files_analyzed = 0;
  std::size_t cache_hits = 0;
};

ProjectResult lint_project(const ProjectOptions& options);

/// Deletes the stale suppression comments `stale` points at (rule
/// "stale-suppression" findings from lint_project). Rewrites each file in
/// place: the `// aegis-lint: ...` comment is cut from its line, and the
/// line itself is dropped when nothing but whitespace remains. Returns the
/// number of comments removed.
std::size_t prune_stale_suppressions(const std::string& root,
                                     const std::vector<FileFinding>& stale);

/// Renders one finding as "file:line: [rule] message".
std::string format_finding(const FileFinding& f);

/// The `--fix-suppressions` view: the exact comment to paste for each
/// finding that supports suppression.
std::string format_suppression_hint(const FileFinding& f);

}  // namespace aegis::lint
