#include "sarif.hpp"

#include <map>
#include <sstream>

namespace aegis::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string sarif_report(const std::vector<FileFinding>& findings) {
  const std::vector<RuleInfo> catalog = rule_catalog();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    rule_index[catalog[i].name] = i;
  }

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"aegis-lint\",\n"
     << "          \"version\": \"" << json_escape(std::string(kRuleSetVersion))
     << "\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << json_escape(catalog[i].name) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(catalog[i].summary) << "\" }\n"
       << "            }" << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const FileFinding& f = findings[i];
    const char* level =
        f.finding.rule == "stale-suppression" ? "warning" : "error";
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.finding.rule) << "\",\n";
    const auto ri = rule_index.find(f.finding.rule);
    if (ri != rule_index.end()) {
      os << "          \"ruleIndex\": " << ri->second << ",\n";
    }
    os << "          \"level\": \"" << level << "\",\n"
       << "          \"message\": { \"text\": \""
       << json_escape(f.finding.message) << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": "
       << (f.finding.line > 0 ? f.finding.line : 1) << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace aegis::lint
