#include "parse.hpp"

#include <cctype>
#include <set>

namespace aegis::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

bool member_access(const Tokens& t, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(t[i - 1], '.')) return true;
  return i >= 2 && is_punct(t[i - 1], '>') && is_punct(t[i - 2], '-');
}

/// tokens[i] is `<`: index one past the matching `>`, or `fail` when the
/// angle run is clearly not a template argument list.
std::size_t skip_angles(const Tokens& t, std::size_t i, std::size_t fail) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is_punct(t[j], '<')) ++depth;
    else if (is_punct(t[j], '>')) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(t[j], ';') || is_punct(t[j], '{')) {
      return fail;
    }
  }
  return fail;
}

/// tokens[open] is `(` (or `{`): index of the matching closer, or t.size().
std::size_t match_balanced(const Tokens& t, std::size_t open, char oc,
                           char cc) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (is_punct(t[j], oc)) ++depth;
    else if (is_punct(t[j], cc) && --depth == 0) return j;
  }
  return t.size();
}

/// Identifiers that look like `name(` but never head a function definition.
const std::set<std::string, std::less<>> kNotAHead = {
    "if",       "for",      "while",       "switch",    "return",
    "sizeof",   "catch",    "new",         "delete",    "throw",
    "alignof",  "alignas",  "decltype",    "noexcept",  "static_assert",
    "assert",   "defined",  "case",        "goto",      "co_await",
    "co_return", "co_yield", "requires",   "using",     "typedef",
    "else",     "do",
};

/// Identifiers that look like `name(` but are control flow or allocation
/// primitives, never call-graph edges. Allocating calls (push_back, ...)
/// are excluded here because the allocation classifier already records
/// them as alloc sites — an edge as well would double-report.
bool skip_call_name(const std::string& w) {
  if (kNotAHead.count(w) != 0) return true;
  static const std::set<std::string, std::less<>> kCasts = {
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast"};
  return kCasts.count(w) != 0;
}

const std::set<std::string, std::less<>> kGuardTypes = {
    "lock_guard", "unique_lock", "scoped_lock"};

/// Member-call names too ubiquitous to resolve by name alone: `x.size()`
/// merges every container in the project with every class that happens to
/// define size(), and the resulting phantom edges poison the transitive
/// effect analyses. Member calls of these names contribute no graph edge —
/// the lexical rules still see their tokens, and a QUALIFIED call
/// (`TemplateCache::size(...)`) still resolves normally.
const std::set<std::string, std::less<>> kOpaqueMembers = {
    "append",    "at",        "back",      "begin",   "c_str",  "capacity",
    "cbegin",    "cend",      "clear",     "contains", "count",  "data",
    "emplace",   "empty",     "end",       "erase",   "exchange", "fetch_add",
    "fetch_sub", "find",      "first",     "front",   "get",    "has_value",
    "insert",    "length",    "load",      "lock",    "notify_all",
    "notify_one", "pop",      "pop_back",  "pop_front", "push",  "rbegin",
    "release",   "rend",      "reset",     "second",  "size",   "start",
    "stop",      "store",     "str",       "substr",  "swap",   "top",
    "try_lock",  "unlock",    "value",     "wait"};

/// util::Rng's drawing surface. A member call of one of these through an
/// Rng-typed (or rng-named) receiver is a draw site.
const std::set<std::string, std::less<>> kDrawMethods = {
    "next_u64", "uniform",     "uniform_index", "uniform_int",
    "normal",   "exponential", "laplace",       "bernoulli",
    "poisson",  "fork",        "shuffle",       "pick"};

/// Collects names declared with type Rng: `util::Rng& rng`, `Rng rng_;`,
/// `Rng r = parent.fork();`. A name followed by `(` is skipped — that is a
/// function returning Rng, not a variable.
void collect_rng_decls(const Tokens& t,
                       std::set<std::string, std::less<>>& names) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || t[i].text != "Rng") continue;
    std::size_t j = i + 1;
    while (j < t.size() && (is_punct(t[j], '&') || is_punct(t[j], '*'))) ++j;
    if (j >= t.size() || t[j].kind != TokenKind::kIdent) continue;
    if (j + 1 < t.size() && is_punct(t[j + 1], '(')) continue;
    names.insert(t[j].text);
  }
}

/// Heuristic: is `name` an Rng variable? Declared names win; otherwise the
/// repo convention that rng variables end in "rng" / "rng_" applies.
bool rng_like(const std::set<std::string, std::less<>>& declared,
              const std::string& name) {
  if (declared.count(name) != 0) return true;
  std::string low;
  low.reserve(name.size());
  for (char c : name) {
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!low.empty() && low.back() == '_') low.pop_back();
  return low.size() >= 3 && low.compare(low.size() - 3, 3, "rng") == 0;
}

/// Stricter predicate for positions where a FUNCTION name could also
/// appear (direct invocation `rng(...)`, bare argument forwarding): only
/// declared Rng variables and the literal names rng/rng_ qualify, so a
/// factory like `make_rng(...)` is a plain call, not a draw.
bool rng_variable(const std::set<std::string, std::less<>>& declared,
                  const std::string& name) {
  return declared.count(name) != 0 || name == "rng" || name == "rng_";
}

struct ScopeFrame {
  std::string name;  // may contain "::" (namespace a::b), may be empty
  int open_depth = 0;
};

struct GuardFrame {
  int depth = 0;
  std::vector<std::pair<std::string, MutexInfo>> mutexes;
};

/// Result of trying to read a function head whose name token is at `i` and
/// whose `(` is at `i + offset`.
struct HeadMatch {
  bool ok = false;
  std::size_t body_open = 0;  // index of the `{`
};

/// tokens[close] is the `)` closing the parameter list. Scans the trailer
/// (const/noexcept/override/trailing return/ctor init list) for the `{`
/// that opens a body. Returns ok=false for declarations, expressions and
/// anything shape-ambiguous.
HeadMatch scan_head_trailer(const Tokens& t, std::size_t close) {
  std::size_t j = close + 1;
  const std::size_t n = t.size();
  while (j < n) {
    if (is_punct(t[j], '{')) return {true, j};
    if (is_punct(t[j], ';') || is_punct(t[j], '=') || is_punct(t[j], ',')) {
      return {};
    }
    if (t[j].kind == TokenKind::kIdent) {
      // const, noexcept, override, final, try, macro attributes, trailing
      // return type components — all harmless to step over.
      ++j;
      continue;
    }
    if (is_punct(t[j], '(')) {  // noexcept(...), attribute macro(...)
      const std::size_t c = match_balanced(t, j, '(', ')');
      if (c >= n) return {};
      j = c + 1;
      continue;
    }
    if (is_punct(t[j], '<')) {
      const std::size_t c = skip_angles(t, j, n);
      if (c >= n) return {};
      j = c;
      continue;
    }
    if (is_punct(t[j], '-') && j + 1 < n && is_punct(t[j + 1], '>')) {
      j += 2;  // trailing return
      continue;
    }
    if (is_punct(t[j], ':')) {
      if (j + 1 < n && is_punct(t[j + 1], ':')) {  // `::` inside a type
        j += 2;
        continue;
      }
      // Constructor initializer list: entries of `name(args)` / `name{args}`
      // separated by commas, then the body `{`.
      ++j;
      while (j < n) {
        // Member / base name, possibly qualified or templated.
        while (j < n &&
               (t[j].kind == TokenKind::kIdent || is_punct(t[j], ':'))) {
          ++j;
        }
        if (j < n && is_punct(t[j], '<')) {
          const std::size_t c = skip_angles(t, j, n);
          if (c >= n) return {};
          j = c;
        }
        if (j >= n) return {};
        if (is_punct(t[j], '(')) {
          const std::size_t c = match_balanced(t, j, '(', ')');
          if (c >= n) return {};
          j = c + 1;
        } else if (is_punct(t[j], '{')) {
          // Brace-init entry… or the body itself when the entry list was
          // actually over. An entry brace is followed by `,` or `{`; the
          // body brace is followed by anything else — disambiguate by
          // trying balance: an init brace's matching `}` is followed by
          // `,` or `{`.
          const std::size_t c = match_balanced(t, j, '{', '}');
          if (c >= n) return {};
          if (c + 1 < n &&
              (is_punct(t[c + 1], ',') || is_punct(t[c + 1], '{'))) {
            j = c + 1;  // it was an init entry
          } else {
            return {true, j};  // it was the body
          }
        } else {
          return {};
        }
        if (j < n && is_punct(t[j], ',')) {
          ++j;
          continue;
        }
        if (j < n && is_punct(t[j], '{')) return {true, j};
        return {};
      }
      return {};
    }
    return {};
  }
  return {};
}

std::string join_scopes(const std::vector<ScopeFrame>& scopes,
                        const std::string& written_qual,
                        const std::string& name) {
  std::string out;
  for (const ScopeFrame& s : scopes) {
    if (s.name.empty()) continue;
    if (!out.empty()) out += "::";
    out += s.name;
  }
  if (!written_qual.empty()) {
    if (!out.empty()) out += "::";
    out += written_qual;
  }
  if (!out.empty()) out += "::";
  out += name;
  return out;
}

}  // namespace

FileModel parse_file(std::string_view path, const LexOutput& file,
                     const LexOutput* companion, std::vector<Finding>& out) {
  FileModel model;
  model.path = std::string(path);
  const Tokens& t = file.tokens;
  const std::size_t n = t.size();

  // Declared lock levels and Rng names, file + companion header.
  std::map<std::string, MutexInfo> lock_table;
  if (companion != nullptr) collect_lock_table(*companion, lock_table, nullptr);
  collect_lock_table(file, lock_table, nullptr);
  std::set<std::string, std::less<>> rng_names;
  collect_rng_decls(t, rng_names);
  if (companion != nullptr) collect_rng_decls(companion->tokens, rng_names);

  // Noalloc regions (both forms) for in_noalloc tagging; the diagnostics
  // they may produce are already emitted by the lexical pass, so they go
  // to a scratch vector here.
  std::vector<Finding> scratch;
  const std::vector<TokenRegion> regions = noalloc_regions(file, scratch);
  // Function-form regions open at the first `{` at/after the directive
  // line; a function whose body opens there is a noalloc root.
  std::set<std::size_t> root_opens;
  for (const Directive& d : file.directives) {
    if (d.tag != "noalloc") continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (t[i].line >= d.line && is_punct(t[i], '{')) {
        root_opens.insert(i);
        break;
      }
    }
  }
  auto in_region = [&](std::size_t idx) {
    for (const TokenRegion& r : regions) {
      if (idx >= r.begin && idx < r.end) return true;
    }
    return false;
  };

  // -------------------------------------------------------------------
  // Top-level scan: class/namespace scope stack + function head matching.
  std::vector<ScopeFrame> scopes;
  std::vector<std::size_t> pending_scope_open;  // token index of its `{`
  std::vector<ScopeFrame> pending_scope;
  std::vector<int> body_open_lines;  // parallel to model.functions

  int depth = 0;
  std::size_t i = 0;
  while (i < n) {
    const Token& tok = t[i];
    if (is_punct(tok, '{')) {
      ++depth;
      for (std::size_t p = 0; p < pending_scope_open.size(); ++p) {
        if (pending_scope_open[p] == i) {
          pending_scope[p].open_depth = depth;
          scopes.push_back(pending_scope[p]);
          pending_scope.erase(pending_scope.begin() + static_cast<long>(p));
          pending_scope_open.erase(pending_scope_open.begin() +
                                   static_cast<long>(p));
          break;
        }
      }
      ++i;
      continue;
    }
    if (is_punct(tok, '}')) {
      --depth;
      while (!scopes.empty() && scopes.back().open_depth > depth) {
        scopes.pop_back();
      }
      ++i;
      continue;
    }
    if (tok.kind != TokenKind::kIdent) {
      ++i;
      continue;
    }

    // enum [class] — never a function scope; let the generic scan walk it.
    if (tok.text == "enum") {
      ++i;
      if (i < n && (t[i].text == "class" || t[i].text == "struct")) ++i;
      continue;
    }
    // class/struct/union/namespace heads register a scope frame that
    // activates at their `{`.
    if (tok.text == "class" || tok.text == "struct" || tok.text == "union" ||
        tok.text == "namespace") {
      const bool ns = tok.text == "namespace";
      std::string name;
      std::size_t j = i + 1;
      while (j < n) {
        if (is_punct(t[j], '{') || is_punct(t[j], ';')) break;
        if (is_punct(t[j], ':') && !(j + 1 < n && is_punct(t[j + 1], ':')) &&
            !(j > 0 && is_punct(t[j - 1], ':'))) {
          break;  // base clause; the name is already captured
        }
        if (is_punct(t[j], '<')) {
          const std::size_t c = skip_angles(t, j, n);
          if (c >= n) break;
          j = c;
          continue;
        }
        if (is_punct(t[j], '(')) {  // alignas(...) and friends
          const std::size_t c = match_balanced(t, j, '(', ')');
          if (c >= n) break;
          j = c + 1;
          continue;
        }
        if (t[j].kind == TokenKind::kIdent && t[j].text != "final") {
          if (ns && !name.empty() && j >= 2 && is_punct(t[j - 1], ':') &&
              is_punct(t[j - 2], ':')) {
            name += "::" + t[j].text;  // namespace a::b
          } else {
            name = t[j].text;
          }
        }
        ++j;
      }
      // Advance to the terminator; when it opens a body, register the
      // pending scope at that exact `{`.
      while (j < n && !is_punct(t[j], '{') && !is_punct(t[j], ';')) ++j;
      if (j < n && is_punct(t[j], '{')) {
        pending_scope_open.push_back(j);
        pending_scope.push_back(ScopeFrame{name, 0});
      }
      i = i + 1;
      continue;
    }

    // Candidate function head: ident `(`, or `operator` + symbols + `(`.
    std::size_t name_idx = i;
    std::string name = tok.text;
    std::size_t open = i + 1;
    bool is_operator = false;
    if (tok.text == "operator") {
      is_operator = true;
      std::size_t j = i + 1;
      if (j + 1 < n && is_punct(t[j], '(') && is_punct(t[j + 1], ')')) {
        name = "operator()";
        open = j + 2;
      } else {
        name = "operator";
        while (j < n && t[j].kind == TokenKind::kPunct && !is_punct(t[j], '(')) {
          name += t[j].text;
          ++j;
        }
        // Conversion operators: `operator bool`, `operator Type`.
        while (j < n && t[j].kind == TokenKind::kIdent) {
          name += " " + t[j].text;
          ++j;
        }
        open = j;
      }
    }
    if (open >= n || !is_punct(t[open], '(') ||
        (!is_operator && kNotAHead.count(name) != 0)) {
      ++i;
      continue;
    }
    // `ident<...>(` template heads.
    // (The common case has no angles between name and paren.)

    const std::size_t close = match_balanced(t, open, '(', ')');
    if (close >= n) {
      ++i;
      continue;
    }
    const HeadMatch head = scan_head_trailer(t, close);
    if (!head.ok) {
      ++i;
      continue;
    }

    // Written qualifiers: `A::B::name`. A destructor's `~` binds tighter.
    std::string written_qual;
    std::size_t q = name_idx;
    if (q > 0 && is_punct(t[q - 1], '~')) {
      name = "~" + name;
      --q;
    }
    while (q >= 3 && is_punct(t[q - 1], ':') && is_punct(t[q - 2], ':') &&
           t[q - 3].kind == TokenKind::kIdent) {
      written_qual = t[q - 3].text +
                     (written_qual.empty() ? "" : "::" + written_qual);
      q -= 3;
    }

    const std::size_t body_open = head.body_open;
    const std::size_t body_close = match_balanced(t, body_open, '{', '}');

    FunctionModel fn;
    fn.name = name;
    fn.qualified = join_scopes(scopes, written_qual, name);
    fn.line = t[name_idx].line;
    fn.noalloc_root = root_opens.count(body_open) != 0;

    // ---------------------------------------------------------------
    // Body effects: draws, calls, allocs, lock acquisitions.
    int seq = 0;
    int bdepth = 0;
    std::vector<GuardFrame> guards;
    for (std::size_t b = body_open; b < body_close && b < n; ++b) {
      if (is_punct(t[b], '{')) {
        ++bdepth;
        continue;
      }
      if (is_punct(t[b], '}')) {
        --bdepth;
        while (!guards.empty() && guards.back().depth > bdepth) {
          guards.pop_back();
        }
        continue;
      }
      if (t[b].kind != TokenKind::kIdent) continue;
      const std::string& w = t[b].text;

      std::string what;
      if (alloc_site_at(t, b, &what)) {
        fn.allocs.push_back(AllocSite{what, t[b].line});
        // An allocating *call* (push_back, resize, …) is fully described
        // by the alloc site; only fall through for container-type matches
        // so `vector<int> v(n)` does not also look like a call to vector.
        continue;
      }

      if (kGuardTypes.count(w) != 0 && !lock_table.empty()) {
        std::size_t j = b + 1;
        if (j < n && is_punct(t[j], '<')) j = skip_angles(t, j, n);
        if (j < n && t[j].kind == TokenKind::kIdent) ++j;  // guard var name
        if (j >= n || !is_punct(t[j], '(')) continue;
        GuardFrame g;
        g.depth = bdepth;
        int pd = 0;
        std::string last_ident;
        for (std::size_t k = j; k < n; ++k) {
          if (is_punct(t[k], '(')) {
            ++pd;
            continue;
          }
          const bool closes = is_punct(t[k], ')') && --pd == 0;
          const bool splits = pd == 1 && is_punct(t[k], ',');
          if (is_punct(t[k], ')') && !closes) continue;
          if (closes || splits) {
            const auto it = lock_table.find(last_ident);
            if (it != lock_table.end()) {
              g.mutexes.emplace_back(it->first, it->second);
              fn.acquires.push_back(LockAcquire{it->first, it->second.level,
                                                it->second.noblock,
                                                t[b].line});
            }
            last_ident.clear();
            if (closes) break;
            continue;
          }
          if (t[k].kind == TokenKind::kIdent) last_ident = t[k].text;
        }
        if (!g.mutexes.empty()) guards.push_back(std::move(g));
        continue;
      }

      const bool call = b + 1 < n && is_punct(t[b + 1], '(');
      if (!call || skip_call_name(w) || kGuardTypes.count(w) != 0) continue;

      // Receiver / qualifier.
      bool member = false;
      std::string qualifier;
      if (member_access(t, b)) {
        member = true;
        const std::size_t r = is_punct(t[b - 1], '.') ? b - 2 : b - 3;
        if (r < n && t[r].kind == TokenKind::kIdent) qualifier = t[r].text;
      } else if (b >= 3 && is_punct(t[b - 1], ':') && is_punct(t[b - 2], ':')) {
        std::size_t q2 = b;
        while (q2 >= 3 && is_punct(t[q2 - 1], ':') &&
               is_punct(t[q2 - 2], ':') && t[q2 - 3].kind == TokenKind::kIdent) {
          qualifier = t[q2 - 3].text +
                      (qualifier.empty() ? "" : "::" + qualifier);
          q2 -= 3;
        }
      }

      // Rng draw: rng.laplace(...), rng_.fork(), or direct rng(...).
      if (member && rng_like(rng_names, qualifier) &&
          kDrawMethods.count(w) != 0) {
        fn.draws.push_back(DrawSite{w, t[b].line, seq++});
        continue;
      }
      if (!member && qualifier.empty() && rng_variable(rng_names, w)) {
        fn.draws.push_back(DrawSite{"operator()", t[b].line, seq++});
        continue;
      }

      if (member && kOpaqueMembers.count(w) != 0) continue;

      CallSite site;
      site.callee = w;
      site.qualifier = qualifier;
      site.member = member;
      site.line = t[b].line;
      site.seq = seq++;
      site.in_noalloc = in_region(b);
      for (const GuardFrame& g : guards) {
        for (const auto& [mname, info] : g.mutexes) {
          site.held_levels.push_back(info.level);
          site.held_names.push_back(mname);
        }
      }
      const std::size_t arg_close = match_balanced(t, b + 1, '(', ')');
      for (std::size_t k = b + 2; k < arg_close && k < n; ++k) {
        if (t[k].kind == TokenKind::kIdent && !member_access(t, k) &&
            rng_variable(rng_names, t[k].text)) {
          site.forwards_rng = true;
          break;
        }
      }
      fn.calls.push_back(std::move(site));
    }

    body_open_lines.push_back(t[body_open].line);
    model.functions.push_back(std::move(fn));
    i = body_close < n ? body_close + 1 : n;
  }

  // ---------------------------------------------------------------------
  // Attach `// aegis-lint: amortized-alloc(<reason>)` annotations the same
  // way streams attach below: to the first function whose body opens
  // at/after the directive line. An annotated function is declared
  // cold/amortized — its allocations do not propagate to noalloc callers.
  for (const Directive& d : file.directives) {
    if (d.tag != "amortized-alloc") continue;
    if (d.arg.empty()) {
      out.push_back(Finding{"noalloc-transitive", d.line,
                            "amortized-alloc needs a reason: // aegis-lint: "
                            "amortized-alloc(<why steady-state calls do not "
                            "allocate>)",
                            ""});
      continue;
    }
    int best = -1;
    int best_line = 0;
    for (std::size_t f = 0; f < model.functions.size(); ++f) {
      const int open_line = body_open_lines[f];
      if (open_line < d.line) continue;
      if (best < 0 || open_line < best_line) {
        best = static_cast<int>(f);
        best_line = open_line;
      }
    }
    if (best < 0) {
      out.push_back(Finding{"noalloc-transitive", d.line,
                            "misplaced amortized-alloc annotation: no "
                            "function body follows it",
                            ""});
      continue;
    }
    model.functions[static_cast<std::size_t>(best)].amortized_alloc = true;
  }

  // ---------------------------------------------------------------------
  // Attach `// aegis-rng: stream(<name>)` annotations: each guards the
  // first function whose body opens at/after the directive line.
  for (const Directive& d : file.directives) {
    if (d.tag != "rng-stream") continue;
    if (d.arg.empty()) {
      out.push_back(Finding{"rng-stream", d.line,
                            "stream annotation needs a name: // aegis-rng: "
                            "stream(<name>)",
                            ""});
      continue;
    }
    int best = -1;
    int best_line = 0;
    for (std::size_t f = 0; f < model.functions.size(); ++f) {
      const int open_line = body_open_lines[f];
      if (open_line < d.line) continue;
      if (best < 0 || open_line < best_line) {
        best = static_cast<int>(f);
        best_line = open_line;
      }
    }
    if (best < 0) {
      out.push_back(Finding{"rng-stream", d.line,
                            "misplaced stream annotation: no function body "
                            "follows it",
                            ""});
      continue;
    }
    model.functions[static_cast<std::size_t>(best)].rng_stream = d.arg;
  }

  return model;
}

}  // namespace aegis::lint
