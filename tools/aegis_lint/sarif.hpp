// SARIF 2.1.0 rendering (--sarif). One run, one driver ("aegis-lint",
// version kRuleSetVersion), the full rule catalog under
// tool.driver.rules, and one result per finding with a physicalLocation.
// Stale-suppression findings are emitted at level "warning"; everything
// else at "error" — which is what lets code-scanning display them without
// the gate treating them as failures.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

namespace aegis::lint {

std::string sarif_report(const std::vector<FileFinding>& findings);

}  // namespace aegis::lint
