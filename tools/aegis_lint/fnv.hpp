// FNV-1a 64-bit, the same construction as src/util/hash.hpp. aegis-lint is
// deliberately standalone (it links nothing but the standard library and
// must never depend on the code it checks), so the tool carries its own
// copy; the lint unit tests pin it against the library's golden values.
#pragma once

#include <cstdint>
#include <string_view>

namespace aegis::lint {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace aegis::lint
