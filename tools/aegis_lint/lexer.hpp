// aegis-lint lexer: a minimal C++ tokenizer sufficient for the repo's
// invariant rules. It is NOT a full C++ front end — it produces a flat
// token stream (identifiers, numbers, literals, single-character
// punctuation) plus the parsed `// aegis-lint:` directive comments the
// rules and the suppression machinery consume. Comments and string/char
// literal *contents* never reach the rules, so banned identifiers inside
// documentation or log messages cannot trigger findings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aegis::lint {

enum class TokenKind {
  kIdent,   // [A-Za-z_][A-Za-z0-9_]*
  kNumber,  // numeric literal (no semantic parsing)
  kString,  // string or char literal, text excludes quotes
  kPunct,   // exactly one character of punctuation
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;
};

/// A parsed `aegis-lint:` or `aegis-rng:` comment, e.g.
///   // aegis-lint: noalloc
///   // aegis-lint: ordered-ok(per-region update is order-independent)
///   std::mutex mu_;  // aegis-lint: lock-level(30, noblock)
///   // aegis-rng: stream(counter-noise)
/// `tag` is the word after the colon ("noalloc", "ordered-ok",
/// "lock-level", ...) and `arg` the raw text inside the optional parens.
/// Tags from the `aegis-rng:` marker are namespaced with an "rng-" prefix
/// so `// aegis-rng: stream(x)` parses as tag "rng-stream", arg "x" —
/// the two marker families can never collide.
struct Directive {
  std::string tag;
  std::string arg;
  int line = 0;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
};

/// Tokenizes `source`. Never throws on malformed input: unterminated
/// literals or comments simply end at end-of-file (the linter must degrade
/// gracefully on code the compiler would reject anyway).
LexOutput lex(std::string_view source);

}  // namespace aegis::lint
