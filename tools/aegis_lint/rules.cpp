#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>

namespace aegis::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdent && t.text == name;
}

/// True when tokens[i] is preceded by `.` or `->` (a member access).
bool member_access(const Tokens& t, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(t[i - 1], '.')) return true;
  return i >= 2 && is_punct(t[i - 1], '>') && is_punct(t[i - 2], '-');
}

/// True when tokens[i] is preceded by `::`.
bool scope_access(const Tokens& t, std::size_t i) {
  return i >= 2 && is_punct(t[i - 1], ':') && is_punct(t[i - 2], ':');
}

/// tokens[i] is `<`: returns the index one past the matching `>`, or
/// `fail` when the angle run is clearly not a template argument list
/// (hits `;` or `{` first, or never closes).
std::size_t skip_angles(const Tokens& t, std::size_t i, std::size_t fail) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is_punct(t[j], '<')) ++depth;
    else if (is_punct(t[j], '>')) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(t[j], ';') || is_punct(t[j], '{')) {
      return fail;
    }
  }
  return fail;
}

// ---------------------------------------------------------------------------
// banned-random

const std::set<std::string, std::less<>> kRandomTypes = {
    "random_device", "mt19937",     "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "ranlux24",      "ranlux48",     "knuth_b",
};

void rule_banned_random(const Tokens& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    if (kRandomTypes.count(t[i].text) != 0) {
      out.push_back(Finding{"banned-random", t[i].line,
                            "'" + t[i].text +
                                "' is nondeterministic or time-seeded; draw "
                                "from util::Rng (seeded via config) instead",
                            "random-ok"});
      continue;
    }
    if (member_access(t, i)) continue;  // rng_.rand() is someone's API
    const bool call = i + 1 < t.size() && is_punct(t[i + 1], '(');
    if (!call) continue;
    if (t[i].text == "rand" || t[i].text == "srand") {
      out.push_back(Finding{"banned-random", t[i].line,
                            "'" + t[i].text +
                                "()' breaks bit-identical reproduction; use "
                                "util::Rng with a config seed",
                            "random-ok"});
    } else if (t[i].text == "time" && !scope_access(t, i)) {
      out.push_back(Finding{"banned-random", t[i].line,
                            "'time()' reads the wall clock (typical RNG "
                            "seeding); seeds must come from config",
                            "random-ok"});
    } else if (t[i].text == "time" && scope_access(t, i) && i >= 3 &&
               is_ident(t[i - 3], "std")) {
      out.push_back(Finding{"banned-random", t[i].line,
                            "'std::time()' reads the wall clock; seeds must "
                            "come from config",
                            "random-ok"});
    }
  }
}

// ---------------------------------------------------------------------------
// banned-clock

const std::set<std::string, std::less<>> kClockTypes = {
    "steady_clock", "system_clock", "high_resolution_clock",
    "utc_clock",    "file_clock",   "tai_clock",
};

void rule_banned_clock(const Tokens& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || kClockTypes.count(t[i].text) == 0) {
      continue;
    }
    if (is_punct(t[i + 1], ':') && is_punct(t[i + 2], ':') &&
        is_ident(t[i + 3], "now")) {
      out.push_back(Finding{
          "banned-clock", t[i + 3].line,
          "'" + t[i].text +
              "::now()' outside a reporting-only site makes results depend "
              "on wall time; compute from simulated state, or annotate the "
              "reporting site",
          "clock-ok"});
    }
  }
}

// ---------------------------------------------------------------------------
// std-hash

void rule_std_hash(const Tokens& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "hash") || !is_punct(t[i + 1], '<')) continue;
    if (!scope_access(t, i) || i < 3 || !is_ident(t[i - 3], "std")) continue;
    out.push_back(Finding{
        "std-hash", t[i].line,
        "std::hash has no cross-run/cross-platform stability; persisted "
        "values and cache keys must use util/hash.hpp FNV-1a",
        "std-hash-ok"});
  }
}

// ---------------------------------------------------------------------------
// unordered-iter

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Names of variables/members declared with an unordered container type.
/// References count too: iterating a reference is just as order-dependent.
std::set<std::string, std::less<>> unordered_decls(const Tokens& t) {
  std::set<std::string, std::less<>> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent ||
        kUnorderedTypes.count(t[i].text) == 0 || !is_punct(t[i + 1], '<')) {
      continue;
    }
    std::size_t j = skip_angles(t, i + 1, t.size());
    if (j >= t.size()) continue;
    while (j < t.size() && (is_punct(t[j], '&') || is_punct(t[j], '*'))) ++j;
    if (j >= t.size() || t[j].kind != TokenKind::kIdent) continue;
    // `unordered_map<...> name(...)` / `name;` / `name =` declare a
    // variable; `name(` alone could also be a function returning the map —
    // treating it as a variable is the conservative choice for this rule.
    names.insert(t[j].text);
  }
  return names;
}

void rule_unordered_iter(const Tokens& t,
                         const std::set<std::string, std::less<>>& decls,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "for") || !is_punct(t[i + 1], '(')) continue;
    // Find the range-for `:` at paren depth 1 (skipping `::`).
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (is_punct(t[j], '(')) ++depth;
      else if (is_punct(t[j], ')')) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && is_punct(t[j], ':') && colon == 0 &&
                 !(j > 0 && is_punct(t[j - 1], ':')) &&
                 !(j + 1 < t.size() && is_punct(t[j + 1], ':'))) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind == TokenKind::kIdent && decls.count(t[j].text) != 0) {
        out.push_back(Finding{
            "unordered-iter", t[i].line,
            "range-for over unordered container '" + t[j].text +
                "': iteration order is a hash-table artifact; sort first, "
                "iterate a deterministic key list, or annotate why order "
                "cannot reach a ranked/serialized/selected result",
            "ordered-ok"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// noalloc

const std::set<std::string, std::less<>> kAllocCalls = {
    "malloc",       "calloc",        "realloc",     "aligned_alloc",
    "strdup",       "push_back",     "emplace_back", "emplace_front",
    "emplace",      "insert",        "resize",       "reserve",
    "append",       "assign",        "to_string",    "make_unique",
    "make_shared",
};

const std::set<std::string, std::less<>> kAllocContainers = {
    "vector", "deque", "list", "basic_string",
};

const std::set<std::string, std::less<>> kAllocStreams = {
    "ostringstream", "istringstream", "stringstream",
};

}  // namespace

std::vector<TokenRegion> noalloc_regions(const LexOutput& file,
                                         std::vector<Finding>& out) {
  std::vector<TokenRegion> regions;
  const Tokens& t = file.tokens;
  int pending_begin_line = -1;
  for (const Directive& d : file.directives) {
    if (d.tag == "noalloc") {
      // First `{` at or after the directive's line opens the guarded body.
      std::size_t open = t.size();
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].line >= d.line && is_punct(t[i], '{')) {
          open = i;
          break;
        }
      }
      if (open == t.size()) {
        out.push_back(Finding{"noalloc", d.line,
                              "misplaced 'noalloc' marker: no function body "
                              "follows it",
                              ""});
        continue;
      }
      int depth = 0;
      std::size_t close = t.size();
      for (std::size_t i = open; i < t.size(); ++i) {
        if (is_punct(t[i], '{')) ++depth;
        else if (is_punct(t[i], '}') && --depth == 0) {
          close = i;
          break;
        }
      }
      regions.push_back(TokenRegion{open, close});
    } else if (d.tag == "noalloc-begin") {
      if (pending_begin_line >= 0) {
        out.push_back(Finding{"noalloc", d.line,
                              "nested 'noalloc-begin' before the previous "
                              "region was closed",
                              ""});
      }
      pending_begin_line = d.line;
    } else if (d.tag == "noalloc-end") {
      if (pending_begin_line < 0) {
        out.push_back(
            Finding{"noalloc", d.line, "'noalloc-end' without a begin", ""});
        continue;
      }
      TokenRegion r;
      r.begin = t.size();
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].line > pending_begin_line) {
          r.begin = i;
          break;
        }
      }
      r.end = t.size();
      for (std::size_t i = r.begin; i < t.size(); ++i) {
        if (t[i].line >= d.line) {
          r.end = i;
          break;
        }
      }
      regions.push_back(r);
      pending_begin_line = -1;
    }
  }
  if (pending_begin_line >= 0) {
    out.push_back(Finding{"noalloc", pending_begin_line,
                          "'noalloc-begin' without a matching end", ""});
  }
  return regions;
}

bool alloc_site_at(const std::vector<Token>& t, std::size_t i,
                   std::string* what) {
  if (t[i].kind != TokenKind::kIdent) return false;
  const std::string& w = t[i].text;
  if (w == "new" && !member_access(t, i)) {
    *what = "new";
    return true;
  }
  const bool call = i + 1 < t.size() && is_punct(t[i + 1], '(');
  if (call && kAllocCalls.count(w) != 0) {
    *what = w + "()";
    return true;
  }
  if (kAllocStreams.count(w) != 0) {
    *what = w;
    return true;
  }
  // By-value container declaration/temporary: `vector<T> x` or
  // `vector<T>(...)`. References/pointers (`vector<T>&`) and nested
  // type names (`vector<T>::iterator`) do not allocate.
  if ((kAllocContainers.count(w) != 0 || w == "string") && i + 1 < t.size() &&
      is_punct(t[i + 1], '<')) {
    const std::size_t j = skip_angles(t, i + 1, t.size());
    if (j < t.size() &&
        (t[j].kind == TokenKind::kIdent || is_punct(t[j], '(') ||
         is_punct(t[j], '{')) &&
        !(j + 1 < t.size() && is_punct(t[j], ':'))) {
      *what = "by-value " + w;
      return true;
    }
  }
  return false;
}

namespace {

void rule_noalloc(const LexOutput& file,
                  const std::vector<TokenRegion>& regions,
                  std::vector<Finding>& out) {
  const Tokens& t = file.tokens;
  for (const TokenRegion& r : regions) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      std::string what;
      if (!alloc_site_at(t, i, &what)) continue;
      std::string msg;
      if (what == "new") {
        msg =
            "'new' inside a noalloc region (this path is proven "
            "allocation-free; see DESIGN.md)";
      } else if (what.size() > 2 && what.compare(what.size() - 2, 2, "()") == 0) {
        msg = "'" + what +
              "' may allocate inside a noalloc region; hoist the allocation "
              "out of the hot path";
      } else if (what.rfind("by-value ", 0) == 0) {
        msg = "by-value '" + what.substr(9) +
              "' constructed inside a noalloc region";
      } else {
        msg = "'" + what + "' allocates inside a noalloc region";
      }
      out.push_back(Finding{"noalloc", t[i].line, std::move(msg), "alloc-ok"});
    }
  }
}

// ---------------------------------------------------------------------------
// telemetry-handle

const std::set<std::string, std::less<>> kRegistryLookups = {
    "counter", "gauge", "histogram", "event_handle", "record_named"};

/// Inside a noalloc region, `counter("name")` / `gauge("name")` /
/// `histogram("name", ...)` is a by-name registry lookup: it builds a
/// std::string key and may take the registry lock — both banned on hot
/// paths. The flight recorder has the same split: `event_handle("name",
/// ...)` resolves a stream by name (registration mutex + name-table
/// append) and `record_named("name", ...)` is the by-name record
/// convenience, so both are banned too. Handles must be resolved once
/// (constructor or function-local static) and recorded through; recording
/// ops (`inc`, `observe`, `set`, `add`, `EventHandle::record`) take no
/// string and never trip this rule.
void rule_telemetry_handle(const LexOutput& file,
                           const std::vector<TokenRegion>& regions,
                           std::vector<Finding>& out) {
  const Tokens& t = file.tokens;
  for (const TokenRegion& r : regions) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (t[i].kind != TokenKind::kIdent ||
          kRegistryLookups.count(t[i].text) == 0) {
        continue;
      }
      if (i + 2 >= t.size() || !is_punct(t[i + 1], '(')) continue;
      if (t[i + 2].kind != TokenKind::kString) continue;
      out.push_back(Finding{
          "telemetry-handle", t[i].line,
          "'" + t[i].text +
              "(\"...\")' resolves a metric by name inside a noalloc "
              "region (string key + registry lock); resolve the handle "
              "once at construction and record through it",
          "telemetry-ok"});
    }
  }
}

// ---------------------------------------------------------------------------
// dispatch-once

/// CPU-feature queries and kernel-dispatch resolvers that must never run on
/// a hot path. The distinctive names are flagged anywhere in a noalloc
/// region; the generic `supported(...)` only when qualified `simd::`.
const std::set<std::string, std::less<>> kDispatchQueries = {
    "__builtin_cpu_supports", "__builtin_cpu_init", "__get_cpuid",
    "__get_cpuid_count",      "__cpuid",            "__cpuidex",
    "detect_cpu_features",    "force_scalar_env",   "best_isa",
    "expected_group_kernel",  "resolve_dispatch"};

/// Inside a noalloc region, querying CPU features or resolving a SIMD
/// kernel (`__builtin_cpu_supports`, `simd::detect_cpu_features()`,
/// `simd::best_isa()`, ...) re-runs the dispatch decision per call. The
/// decision is made ONCE, at program()/set_engine() time, and stored as a
/// function pointer; hot paths call through the pointer (see DESIGN.md
/// "SIMD kernels & superblock fusion").
void rule_dispatch_once(const LexOutput& file,
                        const std::vector<TokenRegion>& regions,
                        std::vector<Finding>& out) {
  const Tokens& t = file.tokens;
  for (const TokenRegion& r : regions) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (t[i].kind != TokenKind::kIdent) continue;
      if (i + 1 >= t.size() || !is_punct(t[i + 1], '(')) continue;
      const std::string& w = t[i].text;
      // Puncts are single chars, so `simd::supported` lexes as
      // ident(simd) ':' ':' ident(supported).
      const bool simd_qualified = i >= 3 && is_punct(t[i - 1], ':') &&
                                  is_punct(t[i - 2], ':') &&
                                  t[i - 3].kind == TokenKind::kIdent &&
                                  t[i - 3].text == "simd";
      if (kDispatchQueries.count(w) == 0 &&
          !(w == "supported" && simd_qualified)) {
        continue;
      }
      out.push_back(Finding{
          "dispatch-once", t[i].line,
          "'" + w +
              "()' queries CPU features / resolves a kernel inside a "
              "noalloc region; make the dispatch decision once at "
              "program()/set_engine() time and call through the stored "
              "kernel pointer",
          "dispatch-ok"});
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order / blocking-in-lock

}  // namespace

void collect_lock_table(const LexOutput& lx,
                        std::map<std::string, MutexInfo>& table,
                        std::vector<Finding>* out) {
  const Tokens& t = lx.tokens;
  for (const Directive& d : lx.directives) {
    if (d.tag != "lock-level") continue;
    MutexInfo info;
    std::size_t p = 0;
    while (p < d.arg.size() && std::isspace(static_cast<unsigned char>(d.arg[p]))) ++p;
    std::size_t digits = p;
    while (digits < d.arg.size() && std::isdigit(static_cast<unsigned char>(d.arg[digits]))) ++digits;
    if (digits == p) {
      if (out != nullptr) {
        out->push_back(Finding{"lock-order", d.line,
                               "lock-level directive needs a numeric level: "
                               "lock-level(<n>[, noblock])",
                               ""});
      }
      continue;
    }
    info.level = std::stoi(d.arg.substr(p, digits - p));
    info.noblock = d.arg.find("noblock") != std::string::npos;

    // The declaration the directive annotates.
    int decl_line = -1;
    for (const Token& tok : t) {
      if (tok.line == d.line) {
        decl_line = d.line;
        break;
      }
    }
    if (decl_line < 0) {
      for (const Token& tok : t) {
        if (tok.line > d.line) {
          decl_line = tok.line;
          break;
        }
      }
    }
    std::string name;
    for (const Token& tok : t) {
      if (tok.line == decl_line && tok.kind == TokenKind::kIdent) {
        name = tok.text;
      }
    }
    if (name.empty()) {
      if (out != nullptr) {
        out->push_back(Finding{"lock-order", d.line,
                               "lock-level directive does not annotate a "
                               "declaration",
                               ""});
      }
      continue;
    }
    table[name] = info;
  }
}

namespace {

struct HeldGuard {
  std::string var;  // guard variable name ("" for an unnamed guard)
  int depth = 0;    // brace depth at construction
  int line = 0;
  std::vector<std::pair<std::string, MutexInfo>> mutexes;
};

void rule_locks(const LexOutput& file, const LexOutput* companion,
                std::vector<Finding>& out) {
  std::map<std::string, MutexInfo> table;
  if (companion != nullptr) collect_lock_table(*companion, table, nullptr);
  collect_lock_table(file, table, &out);
  if (table.empty()) return;

  const Tokens& t = file.tokens;
  std::vector<HeldGuard> held;
  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_punct(t[i], '{')) {
      ++depth;
      continue;
    }
    if (is_punct(t[i], '}')) {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (t[i].kind != TokenKind::kIdent) continue;
    const std::string& w = t[i].text;

    if (w == "lock_guard" || w == "unique_lock" || w == "scoped_lock") {
      std::size_t j = i + 1;
      if (j < t.size() && is_punct(t[j], '<')) j = skip_angles(t, j, t.size());
      HeldGuard g;
      g.depth = depth;
      g.line = t[i].line;
      if (j < t.size() && t[j].kind == TokenKind::kIdent) {
        g.var = t[j].text;
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], '(')) continue;  // not a guard decl
      // Split constructor args at top-level commas; the mutex an arg names
      // is its last identifier (`mu_`, `entry->mu`, `own.mu`).
      int pd = 0;
      std::string last_ident;
      for (std::size_t k = j; k < t.size(); ++k) {
        if (is_punct(t[k], '(')) {
          ++pd;
          continue;
        }
        const bool closes = is_punct(t[k], ')') && --pd == 0;
        const bool splits = pd == 1 && is_punct(t[k], ',');
        if (is_punct(t[k], ')') && !closes) continue;
        if (closes || splits) {
          const auto it = table.find(last_ident);
          if (it != table.end()) g.mutexes.emplace_back(it->first, it->second);
          last_ident.clear();
          if (closes) break;
          continue;
        }
        if (t[k].kind == TokenKind::kIdent) last_ident = t[k].text;
      }
      if (g.mutexes.empty()) continue;
      for (const auto& [name, info] : g.mutexes) {
        for (const HeldGuard& h : held) {
          for (const auto& [held_name, held_info] : h.mutexes) {
            if (info.level <= held_info.level) {
              out.push_back(Finding{
                  "lock-order", g.line,
                  "mutex '" + name + "' (level " + std::to_string(info.level) +
                      ") acquired while holding '" + held_name + "' (level " +
                      std::to_string(held_info.level) +
                      "); the declared lock order requires strictly "
                      "increasing levels",
                  "lock-ok"});
            }
          }
        }
      }
      held.push_back(std::move(g));
      continue;
    }

    // Blocking calls while a noblock mutex is held.
    const bool any_noblock = std::any_of(
        held.begin(), held.end(), [](const HeldGuard& h) {
          return std::any_of(h.mutexes.begin(), h.mutexes.end(),
                             [](const auto& m) { return m.second.noblock; });
        });
    if (!any_noblock) continue;
    const bool call = i + 1 < t.size() && is_punct(t[i + 1], '(');
    if (!call || !member_access(t, i)) continue;

    if (w == "wait" || w == "wait_for" || w == "wait_until") {
      // cv.wait(lock, ...) releases `lock` while waiting — allowed when
      // every OTHER held mutex is blocking-tolerant.
      std::string first_arg;
      for (std::size_t k = i + 2; k < t.size(); ++k) {
        if (is_punct(t[k], ',') || is_punct(t[k], ')')) break;
        if (t[k].kind == TokenKind::kIdent && first_arg.empty()) {
          first_arg = t[k].text;
        }
      }
      bool flagged = false;
      for (const HeldGuard& h : held) {
        if (!h.var.empty() && h.var == first_arg) continue;  // the released lock
        for (const auto& [name, info] : h.mutexes) {
          if (info.noblock && !flagged) {
            out.push_back(Finding{
                "blocking-in-lock", t[i].line,
                "condition wait while holding noblock mutex '" + name +
                    "' (held since line " + std::to_string(h.line) +
                    "); waiters on that mutex stall behind this wait",
                "blocking-ok"});
            flagged = true;
          }
        }
      }
    } else if (w == "join" || w == "push" || w == "pop" || w == "pop_batch") {
      bool flagged = false;  // one finding per call site is enough
      for (const HeldGuard& h : held) {
        for (const auto& [name, info] : h.mutexes) {
          if (info.noblock && !flagged) {
            out.push_back(Finding{
                "blocking-in-lock", t[i].line,
                "blocking call '" + w + "()' while holding noblock mutex '" +
                    name + "' (held since line " + std::to_string(h.line) +
                    "); release it before blocking",
                "blocking-ok"});
            flagged = true;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// backend-registry

void rule_backend_registry(const Tokens& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "generate") || !is_punct(t[i + 1], '(')) continue;
    if (!scope_access(t, i) || i < 3 || !is_ident(t[i - 3], "EventDatabase")) {
      continue;
    }
    out.push_back(
        Finding{"backend-registry", t[i].line,
                "direct EventDatabase::generate() bypasses the PMU backend "
                "layer; resolve the database through "
                "pmu::backend::backend_for(model) so tier metadata, counter "
                "budgets and attack defaults stay attached",
                "event-db-ok"});
  }
}

}  // namespace

std::vector<RuleInfo> rule_catalog() {
  return {
      {"banned-random", "random-ok",
       "rand()/srand()/std::random_device/std RNG engines/time() seeding; "
       "all randomness must flow through util::Rng"},
      {"banned-clock", "clock-ok",
       "std::*_clock::now() outside reporting-only sites (bench/ exempt)"},
      {"std-hash", "std-hash-ok",
       "std::hash<> is unstable across runs; cache keys and persisted "
       "values use util/hash.hpp FNV-1a"},
      {"unordered-iter", "ordered-ok",
       "range-for over std::unordered_{map,set}: hash-order iteration must "
       "not feed ranked, serialized, or greedily-selected results"},
      {"noalloc", "alloc-ok",
       "no allocation inside '// aegis-lint: noalloc' functions or "
       "noalloc-begin/-end regions"},
      {"telemetry-handle", "telemetry-ok",
       "no by-name metric or flight-recorder lookup (counter/gauge/"
       "histogram/event_handle/record_named(\"...\")) inside noalloc "
       "regions; resolve handles once and record through them"},
      {"dispatch-once", "dispatch-ok",
       "no CPU-feature query or SIMD kernel resolution "
       "(__builtin_cpu_supports/cpuid/detect_cpu_features/best_isa/...) "
       "inside noalloc regions; dispatch once at program() time"},
      {"lock-order", "lock-ok",
       "mutexes with '// aegis-lint: lock-level(N)' must nest in strictly "
       "increasing level order"},
      {"blocking-in-lock", "blocking-ok",
       "no joins, queue push/pop, or foreign condition waits while holding "
       "a 'noblock' mutex"},
      {"backend-registry", "event-db-ok",
       "EventDatabase::generate() outside src/pmu/backend/: resolve "
       "databases through pmu::backend::backend_for(model) instead"},
      {"rng-stream", "stream-ok",
       "functions drawing from (or forwarding) a util::Rng must declare "
       "their stream with '// aegis-rng: stream(<name>)'"},
      {"noalloc-transitive", "alloc-ok",
       "calls inside noalloc regions must not reach an allocation through "
       "any callee chain (interprocedural; depth >= 1)"},
      {"lock-order-global", "lock-ok",
       "calling a function that transitively acquires lock level L while "
       "holding level H >= L violates the declared order across TUs"},
      // ("suppression" and "stale-suppression" are diagnostics about the
      // suppression machinery itself, not suppressible rules, so they are
      // deliberately not catalog rows.)
  };
}

std::vector<Finding> run_rules(const LexOutput& file, const LexOutput* companion,
                               const LintConfig& config) {
  std::vector<Finding> out;
  rule_banned_random(file.tokens, out);
  if (config.clock_rule) rule_banned_clock(file.tokens, out);
  if (config.backend_rule) rule_backend_registry(file.tokens, out);
  rule_std_hash(file.tokens, out);

  auto decls = unordered_decls(file.tokens);
  if (companion != nullptr) {
    auto more = unordered_decls(companion->tokens);
    decls.insert(more.begin(), more.end());
  }
  rule_unordered_iter(file.tokens, decls, out);

  // Both region-scoped rules share one resolution pass (and its misplaced-
  // marker findings are emitted exactly once).
  const std::vector<TokenRegion> regions = noalloc_regions(file, out);
  rule_noalloc(file, regions, out);
  rule_telemetry_handle(file, regions, out);
  rule_dispatch_once(file, regions, out);
  rule_locks(file, companion, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace aegis::lint
