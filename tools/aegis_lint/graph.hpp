// Phase 2 substrate: the project-wide symbol table and call graph built
// from every FileModel phase 1 produced. Call edges resolve by
// unqualified-name match (overloads and template instantiations merge into
// one name group; a written `ns::Class::` qualifier narrows the group when
// it matches). Transitive effects — "can this function reach an
// allocation?", "what is the lowest declared lock level it may acquire?" —
// are memoized DFS over the resolved edges, with cycles treated as already
// visited (effects are monotone, so the fixed point is the visited set).
#pragma once

#include <climits>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "parse.hpp"

namespace aegis::lint {

struct ProjectModel {
  std::vector<FileModel> files;
};

/// Index of one function inside a ProjectModel.
struct FnRef {
  std::size_t file = 0;
  std::size_t fn = 0;
  bool operator<(const FnRef& o) const {
    return file != o.file ? file < o.file : fn < o.fn;
  }
  bool operator==(const FnRef& o) const {
    return file == o.file && fn == o.fn;
  }
};

class CallGraph {
 public:
  explicit CallGraph(const ProjectModel& project);

  const ProjectModel& project() const { return *project_; }
  const FunctionModel& fn(FnRef r) const {
    return project_->files[r.file].functions[r.fn];
  }
  const std::string& path(FnRef r) const { return project_->files[r.file].path; }

  /// All functions, sorted by (qualified name, file path) so every walk
  /// over the graph is deterministic regardless of input file order.
  const std::vector<FnRef>& sorted_functions() const { return sorted_; }

  /// The definitions a call site may bind to: the name group of
  /// `call.callee`, narrowed to definitions whose qualified name ends in
  /// `call.qualifier + "::" + callee` when that written qualifier matches
  /// at least one of them. Member calls carry a receiver VARIABLE name, not
  /// a type, so they never narrow.
  std::vector<FnRef> resolve(const CallSite& call) const;

  /// First allocation reachable FROM `from` — through its own body or any
  /// resolved callee chain. `chain` lists qualified names from `from` down
  /// to the allocating function.
  struct AllocReach {
    bool reachable = false;
    std::vector<std::string> chain;
    std::string what;
    std::string file;
    int line = 0;
  };
  const AllocReach& alloc_reach(FnRef from) const;

  /// Lowest declared lock level `from` may transitively acquire (its own
  /// guard acquisitions included), with the chain to that acquisition.
  /// level == INT_MAX means it acquires nothing annotated.
  struct LockReach {
    int level = INT_MAX;
    std::vector<std::string> chain;
    std::string mutex_name;
    std::string file;
    int line = 0;
  };
  const LockReach& lock_reach(FnRef from) const;

  /// Deterministic whole-graph text dump (--graph-dump; golden-pinned by
  /// the fixture tests).
  std::string dump() const;

 private:
  const ProjectModel* project_;
  std::vector<FnRef> sorted_;
  // Name -> indices into sorted_ (kept sorted, so resolution order is
  // deterministic).
  std::map<std::string, std::vector<FnRef>, std::less<>> by_name_;
  // Memoization, indexed like sorted_ via a dense id.
  std::map<FnRef, std::size_t> dense_;
  mutable std::vector<int> alloc_state_;  // 0 unknown / 1 in-progress / 2 done
  mutable std::vector<AllocReach> alloc_memo_;
  mutable std::vector<int> lock_state_;
  mutable std::vector<LockReach> lock_memo_;

  std::size_t id(FnRef r) const { return dense_.at(r); }
  void alloc_dfs(FnRef from) const;
  void lock_dfs(FnRef from) const;
};

}  // namespace aegis::lint
