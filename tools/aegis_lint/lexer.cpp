#include "lexer.hpp"

#include <cctype>

namespace aegis::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True for the identifier spellings that can prefix a raw string literal.
bool raw_string_prefix(std::string_view word) {
  return word == "R" || word == "LR" || word == "uR" || word == "UR" ||
         word == "u8R";
}

/// Parses the text of one comment for an `aegis-lint:` or `aegis-rng:`
/// directive. Returns false when the comment carries none. Tags from the
/// `aegis-rng:` marker come back prefixed "rng-" (see lexer.hpp).
bool parse_directive(std::string_view comment, int line, Directive& out) {
  const std::string_view kMarker = "aegis-lint:";
  const std::string_view kRngMarker = "aegis-rng:";
  bool rng_marker = false;
  std::size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) {
    at = comment.find(kRngMarker);
    if (at == std::string_view::npos) return false;
    rng_marker = true;
  }
  // The marker must START the comment (only whitespace before it). Doc
  // prose that merely MENTIONS the syntax — "use `// aegis-lint: noalloc`"
  // or an indented example inside a comment block — is not a directive.
  for (std::size_t p = 0; p < at; ++p) {
    if (comment[p] != ' ' && comment[p] != '\t' && comment[p] != '\r') {
      return false;
    }
  }
  std::size_t i = at + (rng_marker ? kRngMarker.size() : kMarker.size());
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  std::size_t tag_begin = i;
  while (i < comment.size() &&
         (ident_char(comment[i]) || comment[i] == '-')) {
    ++i;
  }
  if (i == tag_begin) return false;
  out.tag = (rng_marker ? "rng-" : "") +
            std::string(comment.substr(tag_begin, i - tag_begin));
  out.arg.clear();
  out.line = line;
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  if (i < comment.size() && comment[i] == '(') {
    // Argument runs to the LAST closing paren so reasons may themselves
    // contain parentheses.
    const std::size_t close = comment.rfind(')');
    if (close != std::string_view::npos && close > i) {
      out.arg = std::string(comment.substr(i + 1, close - i - 1));
      // Trim surrounding whitespace.
      while (!out.arg.empty() && std::isspace(static_cast<unsigned char>(out.arg.front()))) {
        out.arg.erase(out.arg.begin());
      }
      while (!out.arg.empty() && std::isspace(static_cast<unsigned char>(out.arg.back()))) {
        out.arg.pop_back();
      }
    }
  }
  return true;
}

}  // namespace

LexOutput lex(std::string_view src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment. A backslash immediately before the newline (optionally
    // with a \r) splices the next line INTO the comment — the compiler
    // deletes backslash-newline before tokenization, so code "after" such a
    // comment is still comment text and must never reach the rules.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = i;
      int spliced_lines = 0;
      while (true) {
        std::size_t nl = src.find('\n', end);
        if (nl == std::string_view::npos) {
          end = n;
          break;
        }
        std::size_t k = nl;
        if (k > i && src[k - 1] == '\r') --k;
        if (k > i + 1 && src[k - 1] == '\\') {
          ++spliced_lines;
          end = nl + 1;
          continue;
        }
        end = nl;
        break;
      }
      Directive d;
      if (parse_directive(src.substr(i + 2, end - i - 2), line, d)) {
        out.directives.push_back(std::move(d));
      }
      line += spliced_lines;
      i = end;
      continue;
    }
    // Block comment (a directive inside applies at its opening line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      Directive d;
      if (parse_directive(src.substr(i + 2, stop - i - 2), line, d)) {
        out.directives.push_back(std::move(d));
      }
      for (std::size_t j = i; j < stop; ++j) {
        if (src[j] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = j < n ? j + 1 : n;
      push(TokenKind::kString, std::string(src.substr(i + 1, j - i - 1)));
      i = stop;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      const std::string_view word = src.substr(i, j - i);
      // Raw string literal, with or without an encoding prefix:
      // R"delim(...)delim", u8R"(...)", uR/UR/LR"(...)". The prefix must be
      // the WHOLE identifier — `FOOR"x"` is an identifier then a plain
      // string, not a raw literal.
      if (j < n && src[j] == '"' && raw_string_prefix(word)) {
        std::size_t d_end = j + 1;
        while (d_end < n && src[d_end] != '(' && src[d_end] != '"' &&
               src[d_end] != '\n') {
          ++d_end;
        }
        if (d_end < n && src[d_end] == '(') {
          const std::string close =
              ")" + std::string(src.substr(j + 1, d_end - j - 1)) + "\"";
          std::size_t end = src.find(close, d_end + 1);
          const std::size_t stop =
              end == std::string_view::npos ? n : end + close.size();
          push(TokenKind::kString, std::string(src.substr(i, stop - i)));
          for (std::size_t k = i; k < stop; ++k) {
            if (src[k] == '\n') ++line;
          }
          i = stop;
          continue;
        }
      }
      push(TokenKind::kIdent, std::string(word));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Good enough for matching purposes: digits, radix letters, dots,
      // digit separators, exponent signs. A digit separator only counts
      // when a digit follows (so `1'000'000` is one number but an
      // apostrophe that opens a char literal is not swallowed), and
      // exponent signs only after e/E in decimal literals or p/P in
      // hex/binary ones — `0x1E+2` is `0x1E` `+` `2`, not one token.
      const bool non_decimal =
          c == '0' && i + 1 < n &&
          (src[i + 1] == 'x' || src[i + 1] == 'X' || src[i + 1] == 'b' ||
           src[i + 1] == 'B');
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.') {
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n &&
            std::isalnum(static_cast<unsigned char>(src[j + 1]))) {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') &&
            (non_decimal ? (src[j - 1] == 'p' || src[j - 1] == 'P')
                         : (src[j - 1] == 'e' || src[j - 1] == 'E'))) {
          ++j;
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    push(TokenKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace aegis::lint
