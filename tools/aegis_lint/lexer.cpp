#include "lexer.hpp"

#include <cctype>

namespace aegis::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses the text of one comment for an `aegis-lint:` directive. Returns
/// false when the comment carries none.
bool parse_directive(std::string_view comment, int line, Directive& out) {
  const std::string_view kMarker = "aegis-lint:";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + kMarker.size();
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  std::size_t tag_begin = i;
  while (i < comment.size() &&
         (ident_char(comment[i]) || comment[i] == '-')) {
    ++i;
  }
  if (i == tag_begin) return false;
  out.tag = std::string(comment.substr(tag_begin, i - tag_begin));
  out.arg.clear();
  out.line = line;
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  if (i < comment.size() && comment[i] == '(') {
    // Argument runs to the LAST closing paren so reasons may themselves
    // contain parentheses.
    const std::size_t close = comment.rfind(')');
    if (close != std::string_view::npos && close > i) {
      out.arg = std::string(comment.substr(i + 1, close - i - 1));
      // Trim surrounding whitespace.
      while (!out.arg.empty() && std::isspace(static_cast<unsigned char>(out.arg.front()))) {
        out.arg.erase(out.arg.begin());
      }
      while (!out.arg.empty() && std::isspace(static_cast<unsigned char>(out.arg.back()))) {
        out.arg.pop_back();
      }
    }
  }
  return true;
}

}  // namespace

LexOutput lex(std::string_view src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      Directive d;
      if (parse_directive(src.substr(i + 2, end - i - 2), line, d)) {
        out.directives.push_back(std::move(d));
      }
      i = end;
      continue;
    }
    // Block comment (a directive inside applies at its opening line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      Directive d;
      if (parse_directive(src.substr(i + 2, stop - i - 2), line, d)) {
        out.directives.push_back(std::move(d));
      }
      for (std::size_t j = i; j < stop; ++j) {
        if (src[j] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d_end = i + 2;
      while (d_end < n && src[d_end] != '(' && src[d_end] != '\n') ++d_end;
      if (d_end < n && src[d_end] == '(') {
        const std::string close =
            ")" + std::string(src.substr(i + 2, d_end - i - 2)) + "\"";
        std::size_t end = src.find(close, d_end + 1);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + close.size();
        push(TokenKind::kString, std::string(src.substr(i, stop - i)));
        for (std::size_t j = i; j < stop; ++j) {
          if (src[j] == '\n') ++line;
        }
        i = stop;
        continue;
      }
      // "R" not followed by a raw string: fall through as an identifier.
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = j < n ? j + 1 : n;
      push(TokenKind::kString, std::string(src.substr(i + 1, j - i - 1)));
      i = stop;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      push(TokenKind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      // Good enough for matching purposes: digits, radix letters, dots,
      // digit separators, exponent signs.
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokenKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    push(TokenKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace aegis::lint
