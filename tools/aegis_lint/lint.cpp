#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "cache.hpp"
#include "effects.hpp"
#include "parse.hpp"

namespace aegis::lint {

namespace fs = std::filesystem;

namespace {

bool known_suppress_tag(const std::string& tag) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.suppress_tag == tag) return true;
  }
  return false;
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) throw std::runtime_error("aegis_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool has_prefix(const std::string& rel, const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// The sorted, deduplicated, exclude-filtered file list for a tree walk.
std::vector<fs::path> collect_files(const TreeOptions& options,
                                    const fs::path& root) {
  std::vector<fs::path> files;
  for (const std::string& sub : options.paths) {
    const fs::path p = root / sub;
    if (fs::is_regular_file(p)) {
      if (lintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("aegis_lint: no such path: " + p.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<fs::path> kept;
  for (const fs::path& p : files) {
    if (!has_prefix(fs::relative(p, root).generic_string(), options.exclude)) {
      kept.push_back(p);
    }
  }
  return kept;
}

LintConfig config_for(const std::string& rel, const TreeOptions& options) {
  LintConfig config;
  if (has_prefix(rel, options.clock_exempt)) config.clock_rule = false;
  if (has_prefix(rel, options.backend_exempt)) config.backend_rule = false;
  return config;
}

std::string companion_for(const fs::path& p) {
  if (p.extension() != ".cpp" && p.extension() != ".cc") return "";
  for (const char* ext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(ext);
    if (fs::is_regular_file(header)) return read_file(header);
  }
  return "";
}

}  // namespace

std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view companion,
                                 const LintConfig& config) {
  const LexOutput file = lex(source);
  LexOutput comp;
  if (!companion.empty()) comp = lex(companion);
  std::vector<Finding> raw =
      run_rules(file, companion.empty() ? nullptr : &comp, config);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    if (!f.suppress_tag.empty()) {
      for (const Directive& d : file.directives) {
        if (d.tag != f.suppress_tag) continue;
        if (d.line != f.line && d.line != f.line - 1) continue;
        if (d.arg.empty()) continue;  // reason-less: reported below
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  // Reason-less suppressions are findings of their own: an unexplained
  // exemption is exactly the reviewer-attention problem the linter exists
  // to remove.
  for (const Directive& d : file.directives) {
    if (known_suppress_tag(d.tag) && d.arg.empty()) {
      out.push_back(Finding{"suppression", d.line,
                            "suppression '" + d.tag +
                                "' needs a reason: // aegis-lint: " + d.tag +
                                "(<why this site is safe>)",
                            ""});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<FileFinding> lint_tree(const TreeOptions& options) {
  const fs::path root = options.root.empty() ? fs::path(".") : fs::path(options.root);
  std::vector<FileFinding> out;
  for (const fs::path& p : collect_files(options, root)) {
    const std::string rel = fs::relative(p, root).generic_string();
    // Companion header: declarations in x.hpp govern iteration/locking in
    // x.cpp.
    const std::string companion = companion_for(p);
    for (Finding& f :
         lint_source(read_file(p), companion, config_for(rel, options))) {
      out.push_back(FileFinding{rel, std::move(f)});
    }
  }
  return out;
}

ProjectResult lint_project(const ProjectOptions& options) {
  const TreeOptions& tree = options.tree;
  const fs::path root = tree.root.empty() ? fs::path(".") : fs::path(tree.root);

  ProjectResult result;
  std::vector<FileAnalysis> analyses;
  std::vector<std::string> rels;
  for (const fs::path& p : collect_files(tree, root)) {
    const std::string rel = fs::relative(p, root).generic_string();
    const LintConfig config = config_for(rel, tree);
    const std::string content = read_file(p);
    const std::string companion = companion_for(p);
    const std::string salt = std::string("clock=") +
                             (config.clock_rule ? "1" : "0") +
                             ";backend=" + (config.backend_rule ? "1" : "0");
    const std::string key = cache_key(rel, content, companion, salt);

    FileAnalysis analysis;
    bool hit = false;
    if (!options.cache_dir.empty()) {
      hit = cache_load(options.cache_dir, key, analysis);
    }
    if (!hit) {
      const LexOutput lx = lex(content);
      LexOutput comp;
      if (!companion.empty()) comp = lex(companion);
      const LexOutput* comp_ptr = companion.empty() ? nullptr : &comp;
      analysis.raw = run_rules(lx, comp_ptr, config);
      analysis.directives = lx.directives;
      analysis.model = parse_file(rel, lx, comp_ptr, analysis.raw);
      if (!options.cache_dir.empty()) {
        cache_store(options.cache_dir, key, analysis);
      }
    } else {
      ++result.cache_hits;
    }
    analysis.model.path = rel;  // never trust the cached display path
    rels.push_back(rel);
    analyses.push_back(std::move(analysis));
  }
  result.files_analyzed = analyses.size();

  // Phase 2: assemble the project model, run the interprocedural rules,
  // then filter everything per file against that file's suppressions.
  for (FileAnalysis& a : analyses) result.model.files.push_back(a.model);
  const CallGraph graph(result.model);
  std::map<std::string, std::vector<Finding>> graph_findings;
  for (FileFinding& f : run_graph_rules(graph)) {
    graph_findings[f.file].push_back(std::move(f.finding));
  }

  for (std::size_t i = 0; i < analyses.size(); ++i) {
    const std::string& rel = rels[i];
    const FileAnalysis& a = analyses[i];
    std::vector<Finding> merged = a.raw;
    const auto gi = graph_findings.find(rel);
    if (gi != graph_findings.end()) {
      merged.insert(merged.end(), gi->second.begin(), gi->second.end());
    }

    std::vector<Finding> kept;
    for (Finding& f : merged) {
      bool suppressed = false;
      if (!f.suppress_tag.empty()) {
        for (const Directive& d : a.directives) {
          if (d.tag != f.suppress_tag) continue;
          if (d.line != f.line && d.line != f.line - 1) continue;
          if (d.arg.empty()) continue;
          suppressed = true;
          break;
        }
      }
      if (!suppressed) kept.push_back(std::move(f));
    }
    for (const Directive& d : a.directives) {
      if (!known_suppress_tag(d.tag)) continue;
      if (d.arg.empty()) {
        kept.push_back(Finding{"suppression", d.line,
                               "suppression '" + d.tag +
                                   "' needs a reason: // aegis-lint: " + d.tag +
                                   "(<why this site is safe>)",
                               ""});
        continue;
      }
      // Stale detection runs against the PRE-filter findings: a directive
      // earns its keep by matching any finding, including the ones it
      // suppresses.
      bool used = false;
      for (const Finding& f : merged) {
        if (f.suppress_tag == d.tag &&
            (d.line == f.line || d.line == f.line - 1)) {
          used = true;
          break;
        }
      }
      if (!used) {
        kept.push_back(Finding{
            "stale-suppression", d.line,
            "suppression '" + d.tag + "(" + d.arg +
                ")' no longer silences any finding; delete it (or run "
                "--prune-suppressions --prune-apply)",
            ""});
      }
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding& x, const Finding& y) {
                       return x.line < y.line;
                     });
    for (Finding& f : kept) {
      result.findings.push_back(FileFinding{rel, std::move(f)});
    }
  }
  return result;
}

std::size_t prune_stale_suppressions(const std::string& root,
                                     const std::vector<FileFinding>& stale) {
  // Group line numbers per file, highest first, so earlier deletions never
  // shift the lines later ones target.
  std::map<std::string, std::vector<int>> by_file;
  for (const FileFinding& f : stale) {
    if (f.finding.rule == "stale-suppression") {
      by_file[f.file].push_back(f.finding.line);
    }
  }
  std::size_t removed = 0;
  for (auto& [rel, lines] : by_file) {
    const fs::path path = fs::path(root.empty() ? "." : root) / rel;
    std::string content = read_file(path);
    std::vector<std::string> file_lines;
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) {
        file_lines.push_back(content.substr(start));
        break;
      }
      file_lines.push_back(content.substr(start, nl - start));
      start = nl + 1;
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    bool changed = false;
    for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
      const std::size_t idx = static_cast<std::size_t>(*it) - 1;
      if (idx >= file_lines.size()) continue;
      std::string& line = file_lines[idx];
      const std::size_t comment = line.find("// aegis-lint:");
      if (comment == std::string::npos) continue;
      std::string head = line.substr(0, comment);
      while (!head.empty() && (head.back() == ' ' || head.back() == '\t')) {
        head.pop_back();
      }
      if (head.empty()) {
        file_lines.erase(file_lines.begin() + static_cast<long>(idx));
      } else {
        line = head;
      }
      ++removed;
      changed = true;
    }
    if (!changed) continue;
    std::string rebuilt;
    for (std::size_t i = 0; i < file_lines.size(); ++i) {
      rebuilt += file_lines[i];
      if (i + 1 < file_lines.size()) rebuilt += "\n";
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rebuilt;
  }
  return removed;
}

std::string format_finding(const FileFinding& f) {
  std::string s = f.file + ":" + std::to_string(f.finding.line) + ": [" +
                  f.finding.rule + "] " + f.finding.message;
  if (!f.finding.suppress_tag.empty()) {
    s += "\n    suppress with: // aegis-lint: " + f.finding.suppress_tag +
         "(<reason>)";
  }
  return s;
}

std::string format_suppression_hint(const FileFinding& f) {
  if (f.finding.suppress_tag.empty()) {
    return f.file + ":" + std::to_string(f.finding.line) +
           ": not suppressible; fix the finding: " + f.finding.message;
  }
  return f.file + ":" + std::to_string(f.finding.line) +
         ": // aegis-lint: " + f.finding.suppress_tag + "(<reason>)";
}

}  // namespace aegis::lint
