#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aegis::lint {

namespace fs = std::filesystem;

namespace {

bool known_suppress_tag(const std::string& tag) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.suppress_tag == tag) return true;
  }
  return false;
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) throw std::runtime_error("aegis_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view companion,
                                 const LintConfig& config) {
  const LexOutput file = lex(source);
  LexOutput comp;
  if (!companion.empty()) comp = lex(companion);
  std::vector<Finding> raw =
      run_rules(file, companion.empty() ? nullptr : &comp, config);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    if (!f.suppress_tag.empty()) {
      for (const Directive& d : file.directives) {
        if (d.tag != f.suppress_tag) continue;
        if (d.line != f.line && d.line != f.line - 1) continue;
        if (d.arg.empty()) continue;  // reason-less: reported below
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  // Reason-less suppressions are findings of their own: an unexplained
  // exemption is exactly the reviewer-attention problem the linter exists
  // to remove.
  for (const Directive& d : file.directives) {
    if (known_suppress_tag(d.tag) && d.arg.empty()) {
      out.push_back(Finding{"suppression", d.line,
                            "suppression '" + d.tag +
                                "' needs a reason: // aegis-lint: " + d.tag +
                                "(<why this site is safe>)",
                            ""});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<FileFinding> lint_tree(const TreeOptions& options) {
  const fs::path root = options.root.empty() ? fs::path(".") : fs::path(options.root);
  std::vector<fs::path> files;
  for (const std::string& sub : options.paths) {
    const fs::path p = root / sub;
    if (fs::is_regular_file(p)) {
      if (lintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("aegis_lint: no such path: " + p.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileFinding> out;
  for (const fs::path& p : files) {
    std::string rel = fs::relative(p, root).generic_string();
    LintConfig config;
    for (const std::string& prefix : options.clock_exempt) {
      if (rel.rfind(prefix, 0) == 0) config.clock_rule = false;
    }
    for (const std::string& prefix : options.backend_exempt) {
      if (rel.rfind(prefix, 0) == 0) config.backend_rule = false;
    }
    // Companion header: declarations in x.hpp govern iteration/locking in
    // x.cpp.
    std::string companion;
    if (p.extension() == ".cpp" || p.extension() == ".cc") {
      for (const char* ext : {".hpp", ".h"}) {
        fs::path header = p;
        header.replace_extension(ext);
        if (fs::is_regular_file(header)) {
          companion = read_file(header);
          break;
        }
      }
    }
    for (Finding& f : lint_source(read_file(p), companion, config)) {
      out.push_back(FileFinding{rel, std::move(f)});
    }
  }
  return out;
}

std::string format_finding(const FileFinding& f) {
  std::string s = f.file + ":" + std::to_string(f.finding.line) + ": [" +
                  f.finding.rule + "] " + f.finding.message;
  if (!f.finding.suppress_tag.empty()) {
    s += "\n    suppress with: // aegis-lint: " + f.finding.suppress_tag +
         "(<reason>)";
  }
  return s;
}

std::string format_suppression_hint(const FileFinding& f) {
  if (f.finding.suppress_tag.empty()) {
    return f.file + ":" + std::to_string(f.finding.line) +
           ": not suppressible; fix the finding: " + f.finding.message;
  }
  return f.file + ":" + std::to_string(f.finding.line) +
         ": // aegis-lint: " + f.finding.suppress_tag + "(<reason>)";
}

}  // namespace aegis::lint
