// Unit tests for aegis-lint: every rule is exercised with (a) a violating
// fixture that MUST produce a finding and (b) the same fixture with a
// reasoned suppression that MUST be clean. The negative fixtures double as
// the regression proof demanded by the repo's verification story: removing
// a hot-path annotation guard (e.g. reintroducing a push_back into a
// noalloc body) fails the gate.
#include <gtest/gtest.h>

#include <string>

#include "lint.hpp"

namespace aegis::lint {
namespace {

std::vector<Finding> run(std::string_view src, std::string_view companion = "") {
  return lint_source(src, companion, LintConfig{});
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

std::string messages(const std::vector<Finding>& fs) {
  std::string out;
  for (const Finding& f : fs) {
    out += std::to_string(f.line) + ": [" + f.rule + "] " + f.message + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lexer / directives

TEST(Lexer, StripsCommentsAndLiterals) {
  const auto fs = run(R"(
    // rand() in a comment is fine
    const char* s = "rand() in a string is fine";
    /* std::random_device in a block comment too */
  )");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(Lexer, ParsesDirectiveTagAndReason) {
  const LexOutput lx =
      lex("// aegis-lint: ordered-ok(keys sorted downstream (twice))\n");
  ASSERT_EQ(lx.directives.size(), 1u);
  EXPECT_EQ(lx.directives[0].tag, "ordered-ok");
  EXPECT_EQ(lx.directives[0].arg, "keys sorted downstream (twice)");
  EXPECT_EQ(lx.directives[0].line, 1);
}

TEST(Lexer, TracksLineNumbers) {
  const LexOutput lx = lex("int a;\nint b;\n\nint c;\n");
  ASSERT_EQ(lx.tokens.size(), 9u);
  EXPECT_EQ(lx.tokens[0].line, 1);
  EXPECT_EQ(lx.tokens[6].line, 4);  // "int" of line 4
}

TEST(Lexer, RawStringContentsAreStripped) {
  const auto fs = run(
      "const char* s = R\"(rand() std::random_device time(nullptr))\";\n"
      "const char* d = R\"x(a \")\" inside a custom delimiter)x\";\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(Lexer, PrefixedRawStringsAreRecognized) {
  // u8R/uR/UR/LR are raw-string spellings; FOOR"..." is an identifier
  // followed by an ordinary string.
  const auto fs = run(
      "auto a = u8R\"(rand())\";\n"
      "auto b = LR\"(std::random_device)\";\n"
      "auto c = uR\"(time(nullptr))\";\n"
      "auto d = UR\"(rand())\";\n"
      "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u) << messages(fs);
  EXPECT_EQ(fs[0].line, 5);
}

TEST(Lexer, DigitSeparatorsStayOneNumberToken) {
  const LexOutput lx = lex("int n = 1'000'000;\n");
  ASSERT_GE(lx.tokens.size(), 4u);
  EXPECT_EQ(lx.tokens[3].text, "1'000'000");
  // The apostrophe of a char literal must NOT be eaten as a separator.
  const auto fs = run("int n = 1'000'000; char c = 'r'; int y = rand();\n");
  ASSERT_EQ(fs.size(), 1u) << messages(fs);
  EXPECT_EQ(fs[0].rule, "banned-random");
}

TEST(Lexer, HexExponentSignsDoNotExtendTheNumber) {
  // 0x1E+2 is three tokens (E is a hex digit, not an exponent marker);
  // 0x1.8p+2 is one hex-float token.
  const LexOutput lx = lex("int a = 0x1E+2; double b = 0x1.8p+2;\n");
  ASSERT_GE(lx.tokens.size(), 11u);
  EXPECT_EQ(lx.tokens[3].text, "0x1E");
  EXPECT_EQ(lx.tokens[4].text, "+");
  EXPECT_EQ(lx.tokens[5].text, "2");
  EXPECT_EQ(lx.tokens[10].text, "0x1.8p+2");
}

TEST(Lexer, LineCommentBackslashSplicesTheNextLine) {
  // A line comment ending in a backslash continues onto the next physical
  // line, so the random_device there is still commented out — and line
  // numbers downstream must stay accurate.
  const auto fs = run(
      "// spliced comment \\\n"
      "std::random_device hidden;\n"
      "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u) << messages(fs);
  EXPECT_EQ(fs[0].rule, "banned-random");
  EXPECT_EQ(fs[0].line, 3);
}

// ---------------------------------------------------------------------------
// banned-random

TEST(BannedRandom, FlagsRandCall) {
  const auto fs = run("int x = rand() % 6;\n");
  EXPECT_TRUE(has_rule(fs, "banned-random")) << messages(fs);
}

TEST(BannedRandom, FlagsRandomDevice) {
  const auto fs = run("std::random_device rd;\n");
  EXPECT_TRUE(has_rule(fs, "banned-random")) << messages(fs);
}

TEST(BannedRandom, FlagsTimeSeeding) {
  const auto fs = run("rng.seed(time(nullptr));\n");
  EXPECT_TRUE(has_rule(fs, "banned-random")) << messages(fs);
}

TEST(BannedRandom, IgnoresMemberNamedRand) {
  const auto fs = run("double d = rng_.rand();\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BannedRandom, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: random-ok(entropy test fixture, result unused)\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BannedRandom, ReasonlessSuppressionIsItselfAFinding) {
  const auto fs = run(
      "// aegis-lint: random-ok()\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(fs, "banned-random")) << messages(fs);
  EXPECT_TRUE(has_rule(fs, "suppression")) << messages(fs);
}

// ---------------------------------------------------------------------------
// banned-clock

TEST(BannedClock, FlagsSteadyClockNow) {
  const auto fs = run("auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(has_rule(fs, "banned-clock")) << messages(fs);
}

TEST(BannedClock, SuppressedAtReportingSite) {
  const auto fs = run(
      "auto t0 = std::chrono::steady_clock::now();  "
      "// aegis-lint: clock-ok(reporting-only: elapsed-seconds field)\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BannedClock, DisabledByConfigForBenchFiles) {
  LintConfig config;
  config.clock_rule = false;
  const auto fs = lint_source(
      "auto t0 = std::chrono::steady_clock::now();\n", "", config);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// std-hash

TEST(StdHash, FlagsStdHash) {
  const auto fs =
      run("std::size_t h = std::hash<std::string>{}(key_text);\n");
  EXPECT_TRUE(has_rule(fs, "std-hash")) << messages(fs);
}

TEST(StdHash, IgnoresOtherHashNames) {
  const auto fs = run("std::uint64_t h = util::fnv1a(key_text);\n"
                      "GadgetHash hasher;\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(StdHash, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: std-hash-ok(process-local bucket only, never persisted)\n"
      "std::size_t h = std::hash<int>{}(x);\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// unordered-iter

TEST(UnorderedIter, FlagsRangeForOverUnorderedMap) {
  const auto fs = run(
      "std::unordered_map<int, double> effect;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : effect) sink(k, v);\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "unordered-iter")) << messages(fs);
}

TEST(UnorderedIter, UsesCompanionHeaderDeclarations) {
  const auto fs = run(
      "void Machine::decay() {\n"
      "  for (auto& [id, st] : regions_) st.warmth *= 0.5;\n"
      "}\n",
      "class Machine {\n"
      "  std::unordered_map<int, Region> regions_;\n"
      "};\n");
  EXPECT_TRUE(has_rule(fs, "unordered-iter")) << messages(fs);
}

TEST(UnorderedIter, OrderedContainersAreFine) {
  const auto fs = run(
      "std::map<int, double> effect;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : effect) sink(k, v);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(UnorderedIter, LookupsAreFine) {
  const auto fs = run(
      "std::unordered_map<int, double> effect;\n"
      "double g(int k) { return effect.find(k)->second; }\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(UnorderedIter, SuppressedWithReason) {
  const auto fs = run(
      "std::unordered_set<int> universe;\n"
      "void f() {\n"
      "  // aegis-lint: ordered-ok(result is sorted before use)\n"
      "  for (int e : universe) out.push_back(e);\n"
      "  std::sort(out.begin(), out.end());\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// noalloc

// The acceptance-criteria fixture: a GadgetRunner::execute_once-shaped
// function whose noalloc guard catches a reintroduced push_back.
TEST(NoAlloc, ReintroducedPushBackFailsTheGate) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "std::span<const double> GadgetRunner::execute_once(\n"
      "    std::span<const std::uint32_t> uids, double unroll) {\n"
      "  deltas_.push_back(counters_.read_raw(ids[0]));\n"
      "  return std::span<const double>(deltas_.data(), 1);\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "noalloc")) << messages(fs);
}

TEST(NoAlloc, CleanHotPathPasses) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void CounterRegisterFile::accumulate_batched(const Stats& stats) {\n"
      "  double features[kDim];\n"
      "  flatten_stats(stats, features);\n"
      "  for (std::size_t i = 0; i < n; ++i) slots_[i].count += features[i];\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(NoAlloc, FlagsNewAndByValueVector) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void f() {\n"
      "  auto* p = new double[8];\n"
      "  std::vector<double> tmp(8);\n"
      "}\n");
  ASSERT_EQ(fs.size(), 2u) << messages(fs);
  EXPECT_EQ(fs[0].rule, "noalloc");
  EXPECT_EQ(fs[1].rule, "noalloc");
}

TEST(NoAlloc, ReferencesToContainersAreFine) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void f() {\n"
      "  const std::vector<std::uint32_t>& ids = counters_.programmed();\n"
      "  use(ids);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(NoAlloc, RegionMarkersBoundTheCheck) {
  const auto fs = run(
      "void f() {\n"
      "  setup.push_back(1);  // before the region: fine\n"
      "  // aegis-lint: noalloc-begin\n"
      "  hot_loop();\n"
      "  // aegis-lint: noalloc-end\n"
      "  teardown.push_back(2);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);

  const auto fs2 = run(
      "void f() {\n"
      "  // aegis-lint: noalloc-begin\n"
      "  scratch.push_back(1);\n"
      "  // aegis-lint: noalloc-end\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs2, "noalloc")) << messages(fs2);
}

TEST(NoAlloc, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void measure(const Params& params) {\n"
      "  deltas.clear();\n"
      "  // aegis-lint: alloc-ok(thread_local scratch keeps its capacity)\n"
      "  deltas.reserve(params.repeats);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(NoAlloc, OutsideRegionIsUnchecked) {
  const auto fs = run("void cold() { cache_.emplace(uid, block); }\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(NoAlloc, DeletingTheGuardAlsoRemovesTheCheck) {
  // Companion proof for the acceptance fixture: the SAME body without the
  // marker is not checked — the guard comment itself carries the invariant,
  // which is why the tree-wide gate must stay green.
  const auto fs = run(
      "std::span<const double> GadgetRunner::execute_once(\n"
      "    std::span<const std::uint32_t> uids, double unroll) {\n"
      "  deltas_.push_back(counters_.read_raw(ids[0]));\n"
      "  return std::span<const double>(deltas_.data(), 1);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// lock-order

const char* kLockDecls =
    "class Service {\n"
    "  std::mutex cache_mu_;  // aegis-lint: lock-level(10, noblock)\n"
    "  std::mutex entry_mu_;  // aegis-lint: lock-level(20)\n"
    "};\n";

TEST(LockOrder, FlagsOutOfOrderNesting) {
  const std::string src = std::string(kLockDecls) +
      "void Service::bad() {\n"
      "  std::lock_guard a(entry_mu_);\n"
      "  std::lock_guard b(cache_mu_);\n"  // 10 after 20: out of order
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(has_rule(fs, "lock-order")) << messages(fs);
}

TEST(LockOrder, InOrderNestingIsFine) {
  const std::string src = std::string(kLockDecls) +
      "void Service::good() {\n"
      "  std::lock_guard a(cache_mu_);\n"
      "  std::lock_guard b(entry_mu_);\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LockOrder, SequentialScopesDoNotNest) {
  const std::string src = std::string(kLockDecls) +
      "void Service::seq() {\n"
      "  { std::lock_guard a(entry_mu_); touch(); }\n"
      "  { std::lock_guard b(cache_mu_); touch(); }\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LockOrder, ScopedLockMultiAcquisitionIsAtomic) {
  const auto fs = run(
      "struct Pool { std::mutex mu;  // aegis-lint: lock-level(50)\n"
      "};\n"
      "void steal(Shard& v, Shard& own) {\n"
      "  std::scoped_lock lock(v.mu, own.mu);\n"  // std::lock orders safely
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LockOrder, CompanionHeaderCarriesTheTable) {
  const auto fs = run(
      "void Service::bad() {\n"
      "  std::lock_guard a(entry_mu_);\n"
      "  std::lock_guard b(cache_mu_);\n"
      "}\n",
      kLockDecls);
  EXPECT_TRUE(has_rule(fs, "lock-order")) << messages(fs);
}

TEST(LockOrder, SuppressedWithReason) {
  const std::string src = std::string(kLockDecls) +
      "void Service::shutdown_path() {\n"
      "  std::lock_guard a(entry_mu_);\n"
      "  // aegis-lint: lock-ok(shutdown: single-threaded by then)\n"
      "  std::lock_guard b(cache_mu_);\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// blocking-in-lock

TEST(BlockingInLock, FlagsQueuePushUnderNoblockMutex) {
  const std::string src = std::string(kLockDecls) +
      "bool Service::submit(Item item) {\n"
      "  std::lock_guard lock(cache_mu_);\n"
      "  return queue_.push(std::move(item));\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(has_rule(fs, "blocking-in-lock")) << messages(fs);
}

TEST(BlockingInLock, PushOutsideTheLockIsFine) {
  const std::string src = std::string(kLockDecls) +
      "bool Service::submit(Item item) {\n"
      "  { std::lock_guard lock(cache_mu_); ++pending_; }\n"
      "  return queue_.push(std::move(item));\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BlockingInLock, OwnLockConditionWaitIsAllowed) {
  // The canonical cv pattern: wait() releases the very lock it is given.
  const std::string src = std::string(kLockDecls) +
      "void Service::drain() {\n"
      "  std::unique_lock lock(cache_mu_);\n"
      "  idle_cv_.wait(lock, [&] { return pending_ == 0; });\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BlockingInLock, ForeignWaitUnderNoblockMutexIsFlagged) {
  const std::string src = std::string(kLockDecls) +
      "void Service::bad_wait() {\n"
      "  std::lock_guard g(cache_mu_);\n"
      "  std::unique_lock lock(entry_mu_);\n"
      "  ready_cv_.wait(lock, [&] { return ready_; });\n"  // cache_mu_ held!
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(has_rule(fs, "blocking-in-lock")) << messages(fs);
}

TEST(BlockingInLock, JoinUnderNoblockMutexIsFlagged) {
  const std::string src = std::string(kLockDecls) +
      "void Service::stop() {\n"
      "  std::lock_guard lock(cache_mu_);\n"
      "  worker_.join();\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(has_rule(fs, "blocking-in-lock")) << messages(fs);
}

TEST(BlockingInLock, SuppressedWithReason) {
  const std::string src = std::string(kLockDecls) +
      "void Service::stop() {\n"
      "  std::lock_guard lock(cache_mu_);\n"
      "  // aegis-lint: blocking-ok(worker already signalled; join is bounded)\n"
      "  worker_.join();\n"
      "}\n";
  const auto fs = run(src);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// telemetry-handle

TEST(TelemetryHandle, ByNameLookupInNoallocRegionFailsTheGate) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "std::span<const double> GadgetRunner::execute_once(\n"
      "    std::span<const std::uint32_t> uids, double unroll) {\n"
      "  telemetry::Registry::global().metrics().counter(\n"
      "      \"aegis_gadget_executions_total\").inc();\n"
      "  return read_all(uids);\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "telemetry-handle")) << messages(fs);
}

TEST(TelemetryHandle, AllThreeLookupKindsAreFlagged) {
  const auto fs = run(
      "// aegis-lint: noalloc-begin\n"
      "reg.counter(\"a_total\").inc();\n"
      "reg.gauge(\"a_depth\").set(1.0);\n"
      "reg.histogram(\"a_reps\", bounds).observe(3.0);\n"
      "// aegis-lint: noalloc-end\n");
  std::size_t count = 0;
  for (const Finding& f : fs) {
    if (f.rule == "telemetry-handle") ++count;
  }
  EXPECT_EQ(count, 3u) << messages(fs);
}

TEST(TelemetryHandle, RecordingThroughAResolvedHandleIsFine) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void NoiseInjector::inject(double reps) {\n"
      "  injections_.inc();\n"
      "  injected_reps_.observe(reps);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(TelemetryHandle, RegistrationOutsideTheRegionIsUnchecked) {
  // The constructor (handle resolution site) is not a noalloc region; the
  // hot path records through the member handle. This is the required idiom.
  const auto fs = run(
      "GadgetRunner::GadgetRunner()\n"
      "    : executions_(telemetry::Registry::global().metrics().counter(\n"
      "          \"aegis_gadget_executions_total\")) {}\n"
      "// aegis-lint: noalloc\n"
      "void GadgetRunner::execute_once() { executions_.inc(); }\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(TelemetryHandle, FlightRecorderByNameLookupInNoallocRegionIsFlagged) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "std::span<const double> GadgetRunner::execute_once(\n"
      "    std::span<const std::uint32_t> uids, double unroll) {\n"
      "  telemetry::Registry::global().recorder().event_handle(\n"
      "      \"gadget.exec\", telemetry::WideEventType::kHotExec);\n"
      "  return read_all(uids);\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "telemetry-handle")) << messages(fs);
}

TEST(TelemetryHandle, FlightRecorderByNameRecordInNoallocRegionIsFlagged) {
  const auto fs = run(
      "// aegis-lint: noalloc-begin\n"
      "recorder.record_named(\"gadget.exec\", t, a, b);\n"
      "// aegis-lint: noalloc-end\n");
  EXPECT_TRUE(has_rule(fs, "telemetry-handle")) << messages(fs);
}

TEST(TelemetryHandle, RecordingThroughAResolvedEventHandleIsFine) {
  // The required flight-recorder idiom mirrors metrics: event_handle() at
  // construction, wait-free EventHandle::record on the hot path.
  const auto fs = run(
      "GadgetRunner::GadgetRunner()\n"
      "    : exec_event_(telemetry::Registry::global().recorder().event_handle(\n"
      "          \"gadget.exec\", telemetry::WideEventType::kHotExec)) {}\n"
      "// aegis-lint: noalloc\n"
      "void GadgetRunner::execute_once() {\n"
      "  exec_event_.record(exec_count_, uids, unroll);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(TelemetryHandle, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void f() {\n"
      "  // aegis-lint: telemetry-ok(cold slow-path branch, measured)\n"
      "  reg.counter(\"a_total\").inc();\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// dispatch-once

TEST(DispatchOnce, FeatureQueryInNoallocRegionFailsTheGate) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void CounterRegisterFile::accumulate(const ExecutionStats& stats) {\n"
      "  if (__builtin_cpu_supports(\"avx2\")) {\n"
      "    accumulate_avx2(stats);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "dispatch-once")) << messages(fs);
}

TEST(DispatchOnce, KernelResolutionInNoallocRegionIsFlagged) {
  const auto fs = run(
      "// aegis-lint: noalloc-begin\n"
      "auto kernel = simd::expected_group_kernel(simd::best_isa());\n"
      "if (simd::supported(simd::SimdIsa::kAvx512)) { wide(); }\n"
      "// aegis-lint: noalloc-end\n");
  std::size_t count = 0;
  for (const Finding& f : fs) {
    if (f.rule == "dispatch-once") ++count;
  }
  // expected_group_kernel, best_isa, and simd::supported each re-run the
  // dispatch decision.
  EXPECT_EQ(count, 3u) << messages(fs);
}

TEST(DispatchOnce, CallingThroughTheStoredKernelPointerIsFine) {
  // The required idiom: resolve_dispatch() ran at program() time (outside
  // any noalloc region) and stored group_kernel_; the hot path only calls
  // through the pointer.
  const auto fs = run(
      "void CounterRegisterFile::program(std::vector<std::uint32_t> ids) {\n"
      "  resolve_dispatch();\n"
      "}\n"
      "// aegis-lint: noalloc\n"
      "void CounterRegisterFile::accumulate(const ExecutionStats& stats) {\n"
      "  group_kernel_(view.lane_coeff, view.col_feat, view.cols, f, lanes);\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(DispatchOnce, UnqualifiedSupportedIsNotFlagged) {
  // Plain `supported(...)` is too generic to claim; only the simd::
  // qualified form re-runs feature detection.
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "bool Policy::admit(const Request& r) { return supported(r.kind); }\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(DispatchOnce, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: noalloc\n"
      "void diagnose() {\n"
      "  // aegis-lint: dispatch-ok(one-shot error report, not a hot loop)\n"
      "  log_isa(simd::best_isa());\n"
      "}\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// backend-registry

TEST(BackendRegistry, FlagsDirectGenerateCall) {
  const auto fs =
      run("const auto db = pmu::EventDatabase::generate(model);\n");
  EXPECT_TRUE(has_rule(fs, "backend-registry")) << messages(fs);
}

TEST(BackendRegistry, ResolvingThroughTheBackendIsFine) {
  const auto fs = run(
      "const auto& db = pmu::backend::backend_for(model).database();\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BackendRegistry, OtherGenerateMethodsAreFine) {
  const auto fs = run("const auto plan = Scheduler::generate(slots);\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BackendRegistry, SuppressedWithReason) {
  const auto fs = run(
      "// aegis-lint: event-db-ok(fixture compares raw database to the "
      "backend view)\n"
      "const auto db = pmu::EventDatabase::generate(model);\n");
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(BackendRegistry, ReasonlessSuppressionIsItselfAFinding) {
  const auto fs = run(
      "// aegis-lint: event-db-ok()\n"
      "const auto db = pmu::EventDatabase::generate(model);\n");
  EXPECT_TRUE(has_rule(fs, "backend-registry")) << messages(fs);
  EXPECT_TRUE(has_rule(fs, "suppression")) << messages(fs);
}

TEST(BackendRegistry, DisabledByConfigForTheBackendLayer) {
  LintConfig config;
  config.backend_rule = false;
  const auto fs = lint_source(
      "db_ = pmu::EventDatabase::generate(model);\n", "", config);
  EXPECT_TRUE(fs.empty()) << messages(fs);
}

// ---------------------------------------------------------------------------
// Catalog sanity

TEST(Catalog, EverySuppressibleRuleIsListed) {
  const auto catalog = rule_catalog();
  EXPECT_GE(catalog.size(), 10u);
  for (const RuleInfo& r : catalog) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.suppress_tag.empty());
    EXPECT_FALSE(r.summary.empty());
  }
}

}  // namespace
}  // namespace aegis::lint
