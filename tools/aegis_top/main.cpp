// aegis_top: text dashboard over a telemetry JSON snapshot.
//
// Reads the file written by telemetry::write_json_snapshot (e.g.
// `bench_service --stats FILE` or any daemon embedding the registry) and
// renders the service at a glance: session counters, queue depth, template
// cache effectiveness, and a per-tenant privacy-budget table derived from
// the ε-spend timeline.
//
//   aegis_top SNAPSHOT.json             render once
//   aegis_top SNAPSHOT.json --watch N   re-read and re-render every N seconds
//
// It also reads flight-recorder binary dumps (telemetry/flight_recorder.hpp;
// written at shutdown, on a crash, or by a budget-gate breach):
//
//   aegis_top --recorder DUMP.frd            stream table + alerts + last 20
//   aegis_top --recorder DUMP.frd --tail N   show the last N events
//   aegis_top --recorder DUMP.frd --trace OUT.json   chrome://tracing export
//
// Exits non-zero on a missing or malformed snapshot. Lives in tools/ (not
// linted, not part of the library): presentation only, no simulation state.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json_reader.hpp"

namespace {

using aegis::telemetry::JsonValue;

struct TenantRow {
  std::uint64_t tenant_id = 0;
  std::uint64_t admitted = 0;
  std::uint64_t degraded = 0;
  std::uint64_t refused = 0;
  double epsilon_after = 0.0;
  double epsilon_cap = 0.0;
  std::string last_outcome;
};

std::uint64_t counter(const JsonValue& snap, const char* name) {
  return snap.at("counters").at(name).as_u64();
}

double gauge(const JsonValue& snap, const char* name) {
  return snap.at("gauges").at(name).number;
}

/// Folds the ε timeline into one row per tenant: outcome tallies plus the
/// budget position after the latest event (events arrive in seq order).
std::map<std::uint64_t, TenantRow> tenant_rows(const JsonValue& snap) {
  std::map<std::uint64_t, TenantRow> rows;
  for (const JsonValue& e : snap.at("budget_timeline").array) {
    const std::uint64_t id = e.at("tenant").as_u64();
    TenantRow& row = rows[id];
    row.tenant_id = id;
    const std::string& outcome = e.at("outcome").string;
    if (outcome == "admit") ++row.admitted;
    if (outcome == "degrade") ++row.degraded;
    if (outcome == "refuse") ++row.refused;
    row.epsilon_after = e.at("epsilon_after").number;
    row.epsilon_cap = e.at("epsilon_cap").number;
    row.last_outcome = outcome;
  }
  return rows;
}

void render(const JsonValue& snap, std::ostream& os) {
  const std::uint64_t submitted = counter(snap, "aegis_sessions_submitted_total");
  const std::uint64_t started = counter(snap, "aegis_sessions_started_total");
  const std::uint64_t completed = counter(snap, "aegis_sessions_completed_total");
  const std::uint64_t refused = counter(snap, "aegis_sessions_refused_total");
  const std::uint64_t degraded = counter(snap, "aegis_sessions_degraded_total");
  const double active = gauge(snap, "aegis_sessions_active");
  const double queue_depth = gauge(snap, "aegis_service_queue_depth");

  const std::uint64_t lookups = counter(snap, "aegis_cache_lookups_total");
  const std::uint64_t hits = counter(snap, "aegis_cache_hits_total");
  const std::uint64_t misses = counter(snap, "aegis_cache_misses_total");
  const std::uint64_t warm = counter(snap, "aegis_cache_warm_starts_total");
  const std::uint64_t failed = counter(snap, "aegis_cache_failed_loads_total");
  const std::uint64_t analyses = counter(snap, "aegis_cache_analyses_total");
  const double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);

  char line[256];
  os << "aegis_top — protection service\n";
  os << "==============================\n";
  std::snprintf(line, sizeof(line),
                "sessions   submitted %" PRIu64 "  started %" PRIu64
                "  completed %" PRIu64 "  active %.0f\n",
                submitted, started, completed, active);
  os << line;
  std::snprintf(line, sizeof(line),
                "admission  degraded %" PRIu64 "  refused %" PRIu64
                "  queue depth %.0f\n",
                degraded, refused, queue_depth);
  os << line;
  std::snprintf(line, sizeof(line),
                "cache      hit rate %.3f (%" PRIu64 "/%" PRIu64
                ")  misses %" PRIu64 "  warm %" PRIu64 "  failed loads %" PRIu64
                "  analyses %" PRIu64 "\n",
                hit_rate, hits, lookups, misses, warm, failed, analyses);
  os << line;

  const auto rows = tenant_rows(snap);
  if (rows.empty()) {
    os << "\n(no budget timeline events)\n";
    return;
  }
  os << "\ntenant   admit  degrade  refuse   eps spent    eps remaining  last\n";
  os << "------   -----  -------  ------   ---------    -------------  ----\n";
  for (const auto& [id, row] : rows) {
    std::snprintf(line, sizeof(line),
                  "%6" PRIu64 "   %5" PRIu64 "  %7" PRIu64 "  %6" PRIu64
                  "   %9.4f    %13.4f  %s\n",
                  id, row.admitted, row.degraded, row.refused,
                  row.epsilon_after, row.epsilon_cap - row.epsilon_after,
                  row.last_outcome.c_str());
    os << line;
  }
}

int render_file(const std::string& path, bool clear_screen) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "aegis_top: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream text;
  text << is.rdbuf();
  JsonValue snap;
  try {
    snap = aegis::telemetry::parse_json(text.str());
  } catch (const std::exception& e) {
    std::cerr << "aegis_top: bad snapshot " << path << ": " << e.what() << "\n";
    return 1;
  }
  if (!snap.is_object()) {
    std::cerr << "aegis_top: snapshot root is not an object\n";
    return 1;
  }
  if (clear_screen) std::cout << "\033[2J\033[H";
  render(snap, std::cout);
  std::cout.flush();
  return 0;
}

const char* stream_name(const aegis::telemetry::DumpDocument& doc,
                        std::uint16_t stream) {
  if (stream < doc.streams.size()) return doc.streams[stream].c_str();
  return "?";
}

int render_recorder(const std::string& path, std::size_t tail,
                    const std::string& trace_out) {
  const auto doc = aegis::telemetry::read_dump_file(path.c_str());
  if (!doc) {
    std::cerr << "aegis_top: not a flight-recorder dump: " << path << "\n";
    return 1;
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      std::cerr << "aegis_top: cannot write " << trace_out << "\n";
      return 1;
    }
    aegis::telemetry::write_recorder_trace_json(*doc, os);
    std::cout << "aegis_top: wrote chrome://tracing file " << trace_out << " ("
              << doc->events.size() << " events)\n";
    return 0;
  }

  char line[256];
  std::cout << "aegis_top — flight recorder dump\n";
  std::cout << "================================\n";
  std::snprintf(line, sizeof(line),
                "format v%u   events %zu   dropped/overwritten %" PRIu64
                "   streams %zu\n",
                doc->version, doc->events.size(), doc->dropped,
                doc->streams.size());
  std::cout << line;

  // Per-stream event tallies (registration order == id order).
  std::vector<std::uint64_t> per_stream(doc->streams.size(), 0);
  std::size_t alerts = 0;
  for (const auto& e : doc->events) {
    if (e.stream < per_stream.size()) ++per_stream[e.stream];
    if (e.type ==
        static_cast<std::uint16_t>(aegis::telemetry::WideEventType::kAlert)) {
      ++alerts;
    }
  }
  std::cout << "\nstream                     events\n";
  std::cout << "------                     ------\n";
  for (std::size_t s = 0; s < doc->streams.size(); ++s) {
    std::snprintf(line, sizeof(line), "%-24s  %7" PRIu64 "\n",
                  doc->streams[s].c_str(), per_stream[s]);
    std::cout << line;
  }

  if (alerts > 0) {
    std::cout << "\nALERTS (" << alerts << ")\n";
    for (const auto& e : doc->events) {
      if (e.type !=
          static_cast<std::uint16_t>(aegis::telemetry::WideEventType::kAlert)) {
        continue;
      }
      std::snprintf(line, sizeof(line),
                    "  t=%-12" PRIu64 " %-16s tenant=%u kind=%" PRIu64 "\n",
                    e.t_ns, stream_name(*doc, e.stream), e.tenant, e.a);
      std::cout << line;
    }
  }

  const std::size_t n = std::min(tail, doc->events.size());
  std::cout << "\nlast " << n << " events (of " << doc->events.size() << ")\n";
  std::cout << "t             stream            type           tenant"
               "  a                b\n";
  for (std::size_t i = doc->events.size() - n; i < doc->events.size(); ++i) {
    const auto& e = doc->events[i];
    std::snprintf(
        line, sizeof(line),
        "%-12" PRIu64 "  %-16s  %-13s  %6u  %-15" PRIu64 "  %-15" PRIu64 "\n",
        e.t_ns, stream_name(*doc, e.stream),
        aegis::telemetry::to_string(
            static_cast<aegis::telemetry::WideEventType>(e.type)),
        e.tenant, e.a, e.b);
    std::cout << line;
  }
  std::cout.flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string recorder_path;
  std::string trace_out;
  long watch_seconds = 0;
  std::size_t tail = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--recorder") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "aegis_top: --recorder needs a dump-file argument\n";
        return 2;
      }
      recorder_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tail") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "aegis_top: --tail needs a count argument\n";
        return 2;
      }
      tail = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "aegis_top: --trace needs an output-file argument\n";
        return 2;
      }
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "aegis_top: --watch needs a seconds argument\n";
        return 2;
      }
      watch_seconds = std::atol(argv[++i]);
      if (watch_seconds <= 0) {
        std::cerr << "aegis_top: --watch interval must be positive\n";
        return 2;
      }
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::cerr << "aegis_top: unexpected argument " << argv[i] << "\n";
      return 2;
    }
  }
  if (!recorder_path.empty()) {
    if (!path.empty()) {
      std::cerr << "aegis_top: --recorder takes no snapshot argument\n";
      return 2;
    }
    return render_recorder(recorder_path, tail, trace_out);
  }
  if (path.empty()) {
    std::cerr << "usage: aegis_top SNAPSHOT.json [--watch SECONDS]\n"
                 "       aegis_top --recorder DUMP.frd [--tail N] "
                 "[--trace OUT.json]\n";
    return 2;
  }
  if (watch_seconds == 0) return render_file(path, /*clear_screen=*/false);
  for (;;) {
    const int rc = render_file(path, /*clear_screen=*/true);
    if (rc != 0) return rc;
    std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
  }
}
