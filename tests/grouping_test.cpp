// Adaptive grouping tests: pin the exact plan (digest + bank census) for
// both vendors' vulnerable-event sets, and prove the acceptance claim —
// adaptive_grouping needs STRICTLY fewer multiplexing slices than the
// naive ceil(n/4) rotation on both vendors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "pmu/backend/grouping.hpp"
#include "pmu/backend/registry.hpp"

namespace aegis::pmu::backend {
namespace {

using isa::CpuModel;

struct Golden {
  CpuModel model;
  std::size_t vulnerable;
  std::size_t adaptive;
  std::size_t naive;
  std::uint64_t digest;
};

constexpr Golden kGoldens[] = {
    {CpuModel::kAmdEpyc7252, 137, 28, 35, 0xb52b9774869fac4bULL},
    {CpuModel::kAmdEpyc7313P, 137, 28, 35, 0xb52b9774869fac4bULL},
    {CpuModel::kIntelXeonE5_1650, 739, 140, 185, 0x534e59adfc021a52ULL},
    {CpuModel::kIntelXeonE5_4617, 739, 140, 185, 0xc8ad448f8ecae7beULL},
};

TEST(Grouping, GoldenPlansBothVendors) {
  for (const Golden& g : kGoldens) {
    const PmuBackend& b = backend_for(g.model);
    const std::vector<std::uint32_t> vuln = vulnerable_events(b);
    EXPECT_EQ(vuln.size(), g.vulnerable) << b.id();
    const GroupingPlan plan = adaptive_grouping(b, vuln);
    EXPECT_EQ(plan.total_events, g.vulnerable);
    EXPECT_EQ(plan.multiplex_slices(), g.adaptive) << b.id();
    EXPECT_EQ(naive_slices(vuln.size()), g.naive);
    EXPECT_EQ(plan.digest(), g.digest)
        << b.id() << ": packing changed; re-baseline deliberately";
  }
}

// The acceptance bar: strictly fewer slices than ceil(n/4), both vendors.
TEST(Grouping, AdaptiveBeatsNaiveStrictlyOnBothVendors) {
  for (const Golden& g : kGoldens) {
    const PmuBackend& b = backend_for(g.model);
    const auto vuln = vulnerable_events(b);
    EXPECT_LT(adaptive_grouping(b, vuln).multiplex_slices(),
              naive_slices(vuln.size()))
        << b.id();
  }
}

TEST(Grouping, AmdBankCensus) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  const GroupingPlan plan = adaptive_grouping(b, vulnerable_events(b));
  std::size_t groups[4] = {0, 0, 0, 0};
  std::size_t events[4] = {0, 0, 0, 0};
  for (const CounterGroup& g : plan.groups) {
    const auto bank = static_cast<std::size_t>(g.bank);
    ++groups[bank];
    events[bank] += g.events.size();
    EXPECT_TRUE(std::is_sorted(g.events.begin(), g.events.end()));
    EXPECT_FALSE(g.events.empty());
  }
  EXPECT_EQ(groups[0], 1u);    // fixed bank
  EXPECT_EQ(events[0], 2u);    // IRPERF + APERF
  EXPECT_EQ(groups[1], 1u);    // kernel bank
  EXPECT_EQ(events[1], 26u);   // software/tracepoint/probe survivors
  EXPECT_EQ(groups[2], 28u);   // core groups of <= 4
  EXPECT_EQ(events[2], 109u);
  EXPECT_EQ(groups[3], 0u);    // no uncore events survive warm-up
  EXPECT_EQ(plan.core_groups, 28u);
  EXPECT_EQ(plan.uncore_groups, 0u);
  for (const CounterGroup& g : plan.groups) {
    if (g.bank == CounterBank::kCore) {
      EXPECT_LE(g.events.size(), b.counter_budget());
    }
  }
}

TEST(Grouping, PlanIsAPureFunctionOfTheEventSet) {
  const PmuBackend& b = backend_for(CpuModel::kIntelXeonE5_1650);
  std::vector<std::uint32_t> vuln = vulnerable_events(b);
  const GroupingPlan baseline = adaptive_grouping(b, vuln);

  // Reversed order, plus every event duplicated: same plan, same digest.
  std::vector<std::uint32_t> scrambled(vuln.rbegin(), vuln.rend());
  scrambled.insert(scrambled.end(), vuln.begin(), vuln.end());
  const GroupingPlan again = adaptive_grouping(b, scrambled);
  EXPECT_EQ(again.digest(), baseline.digest());
  EXPECT_EQ(again.total_events, baseline.total_events);
  EXPECT_EQ(again.multiplex_slices(), baseline.multiplex_slices());
}

TEST(Grouping, EveryRequestedEventLandsInExactlyOneGroup) {
  for (const Golden& g : kGoldens) {
    const PmuBackend& b = backend_for(g.model);
    const auto vuln = vulnerable_events(b);
    const GroupingPlan plan = adaptive_grouping(b, vuln);
    std::set<std::uint32_t> placed;
    for (const CounterGroup& grp : plan.groups) {
      for (std::uint32_t id : grp.events) {
        EXPECT_TRUE(placed.insert(id).second) << "duplicate id " << id;
      }
    }
    EXPECT_EQ(placed,
              std::set<std::uint32_t>(vuln.begin(), vuln.end()));
  }
}

TEST(Grouping, EmptySetNeedsNoSlices) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  const GroupingPlan plan = adaptive_grouping(b, {});
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.total_events, 0u);
  EXPECT_EQ(plan.multiplex_slices(), 0u);
  EXPECT_EQ(naive_slices(0), 0u);
}

TEST(Grouping, SingleEventStillCostsOneSlice) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  const auto id = b.database().find("RETIRED_UOPS");
  ASSERT_TRUE(id.has_value());
  const GroupingPlan plan = adaptive_grouping(b, {*id});
  EXPECT_EQ(plan.multiplex_slices(), 1u);
}

TEST(Grouping, ReportCarriesTheGoldenNumbers) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  std::ostringstream os;
  write_grouping_report(b, os);
  const std::string report = os.str();
  EXPECT_NE(report.find("\"bench\": \"adaptive_grouping\""),
            std::string::npos);
  EXPECT_NE(report.find("\"backend\": \"amd-zen2\""), std::string::npos);
  EXPECT_NE(report.find("\"cpu_model\": \"AmdEpyc7252\""),
            std::string::npos);
  EXPECT_NE(report.find("\"adaptive_slices\": 28"), std::string::npos);
  EXPECT_NE(report.find("\"naive_slices\": 35"), std::string::npos);
  EXPECT_NE(report.find("b52b9774869fac4b"), std::string::npos);
}

}  // namespace
}  // namespace aegis::pmu::backend
