// Tests for the future-work extensions: the crypto workload, the key
// extraction attack, and the obfuscator's weighted-segment / per-gadget
// mixture injection machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/kea.hpp"
#include "dp/accountant.hpp"
#include "sim/cache_probe.hpp"
#include "sim/host_monitor.hpp"
#include "obf/injector.hpp"
#include "obf/obfuscator.hpp"
#include "workload/crypto.hpp"

namespace aegis {
namespace {

using workload::CryptoOp;
using workload::CryptoWorkload;

TEST(CryptoWorkload, DeriveKeyIsDeterministicAndBalanced) {
  const auto a = CryptoWorkload::derive_key(64, 7);
  const auto b = CryptoWorkload::derive_key(64, 7);
  EXPECT_EQ(a, b);
  const auto c = CryptoWorkload::derive_key(64, 8);
  EXPECT_NE(a, c);
  std::size_t ones = 0;
  for (bool bit : a) ones += bit;
  EXPECT_GT(ones, 16u);
  EXPECT_LT(ones, 48u);
}

TEST(CryptoWorkload, PlanLabelsFollowKeyBits) {
  const std::vector<bool> key{true, false, true, true, false};
  CryptoWorkload wl(key, 120);
  const auto plan = wl.plan(3);
  // Count multiply segments: one per 1-bit.
  std::size_t multiply_runs = 0;
  int prev = workload::kCryptoBlankLabel;
  for (int label : plan.frame_labels) {
    if (label == static_cast<int>(CryptoOp::kMultiply) && label != prev) {
      ++multiply_runs;
    }
    prev = label;
  }
  EXPECT_EQ(multiply_runs, 3u);
}

TEST(CryptoWorkload, MultiplySlicesAreHeavierThanGaps) {
  CryptoWorkload wl(CryptoWorkload::derive_key(16, 1), 160);
  const auto plan = wl.plan(5);
  double op_uops = 0.0, gap_uops = 0.0;
  std::size_t ops = 0, gaps = 0;
  for (std::size_t t = 0; t < 160; ++t) {
    double u = 0.0;
    for (const auto& b : plan.source(t)) u += b.uops;
    if (plan.frame_labels[t] == workload::kCryptoBlankLabel) {
      gap_uops += u;
      ++gaps;
    } else {
      op_uops += u;
      ++ops;
    }
  }
  ASSERT_GT(ops, 0u);
  ASSERT_GT(gaps, 0u);
  EXPECT_GT(op_uops / ops, 5.0 * gap_uops / gaps);
}

TEST(CryptoWorkload, NameEncodesKey) {
  CryptoWorkload wl({true, false, true}, 60);
  EXPECT_EQ(wl.name(), "rsa-exp key=101");
}

TEST(OpsToKey, DecodesTokenStreams) {
  const int S = static_cast<int>(CryptoOp::kSquare);
  const int M = static_cast<int>(CryptoOp::kMultiply);
  // S S -> bits 0,0 ; S M S -> 1,0 ; S M S M -> 1,1.
  EXPECT_EQ(attack::ops_to_key({S, S}), (std::vector<bool>{false, false}));
  EXPECT_EQ(attack::ops_to_key({S, M, S}), (std::vector<bool>{true, false}));
  EXPECT_EQ(attack::ops_to_key({S, M, S, M}), (std::vector<bool>{true, true}));
  EXPECT_TRUE(attack::ops_to_key({}).empty());
  EXPECT_TRUE(attack::ops_to_key({M}).empty());  // multiply before any square
}

TEST(KeyExtraction, RecoversCleanKeys) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  attack::KeaConfig config;
  for (auto name : pmu::kAmdAttackEvents) {
    config.event_ids.push_back(*db.find(name));
  }
  config.key_bits = 20;
  config.training_keys = 8;
  config.traces_per_key = 4;
  config.epochs = 10;
  config.slices = 140;
  attack::KeyExtractionAttack attacker(db, config);
  const auto history = attacker.train();
  EXPECT_GT(history.back().val_accuracy, 0.9);
  EXPECT_GT(attacker.exploit(3, 1, 42), 0.85);
}

TEST(KeyExtraction, ThrowsBeforeTraining) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  attack::KeaConfig config;
  config.event_ids = {0};
  attack::KeyExtractionAttack attacker(db, config);
  EXPECT_THROW((void)attacker.exploit(1, 1, 1), std::logic_error);
}

struct InjectorFixture {
  pmu::EventDatabase db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  std::vector<obf::WeightedGadget> weighted() const {
    std::uint32_t nop = 0, div = 0;
    for (const auto& v : spec.variants()) {
      if (!v.legal()) continue;
      if (!nop && v.iclass == isa::InstructionClass::kNop) nop = v.uid;
      if (!div && v.iclass == isa::InstructionClass::kIntDiv) div = v.uid;
    }
    return {{fuzzer::Gadget{nop, div}, 1.0}, {fuzzer::Gadget{div, nop}, 3.0}};
  }
};

TEST(WeightedInjector, WeightsScaleTheSegment) {
  InjectorFixture f;
  auto gadgets = f.weighted();
  obf::NoiseInjector weighted(f.spec, gadgets, 1.0, 10.0);
  gadgets[1].weight = 1.0;
  obf::NoiseInjector unit(f.spec, gadgets, 1.0, 10.0);
  EXPECT_GT(weighted.segment_block().uops, unit.segment_block().uops);
  EXPECT_EQ(weighted.gadget_count(), 2u);
}

TEST(WeightedInjector, MixtureRequiresOneDrawPerGadget) {
  InjectorFixture f;
  obf::NoiseInjector injector(f.spec, f.weighted(), 1.0, 10.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 1);
  const std::vector<double> wrong_arity{1.0};
  EXPECT_THROW((void)injector.inject_mixture(vm, wrong_arity),
               std::invalid_argument);
}

TEST(WeightedInjector, MixtureInjectsPerGadgetIndependently) {
  InjectorFixture f;
  obf::NoiseInjector injector(f.spec, f.weighted(), 10.0, 10.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 2);
  // Gadget 0 gets noise, gadget 1 does not.
  const std::vector<double> noise{2.0, -1.0};
  const double mean_reps = injector.inject_mixture(vm, noise);
  EXPECT_DOUBLE_EQ(mean_reps, 10.0);  // (2*10 + 0)/2
  EXPECT_TRUE(vm.pending());
}

TEST(WeightedInjector, MixtureClipsPerGadget) {
  InjectorFixture f;
  obf::NoiseInjector injector(f.spec, f.weighted(), 1.0, 3.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 3);
  const std::vector<double> noise{100.0, 100.0};
  const double mean_reps = injector.inject_mixture(vm, noise);
  EXPECT_DOUBLE_EQ(mean_reps, 3.0);  // both clipped at 3
}

TEST(Obfuscator, SingleStreamFlagStillInjects) {
  InjectorFixture f;
  fuzzer::GadgetCover cover;
  for (const auto& wg : f.weighted()) cover.gadgets.push_back(wg.gadget);
  const std::uint32_t uops = *f.db.find("RETIRED_UOPS");
  cover.covered_events = {uops};
  cover.segment_effect = {{uops, 10.0}};
  obf::ObfuscatorConfig config;
  config.mechanism.kind = dp::MechanismKind::kLaplace;
  config.mechanism.epsilon = 0.5;
  config.reference_event = uops;
  config.reference_sigma = 100.0;
  config.unit_reps = 20.0;
  config.single_stream = true;
  config.seed = 4;
  obf::EventObfuscator obf(f.db, f.spec, cover, config);
  sim::VirtualMachine vm(sim::VmConfig{}, 5);
  auto agent = obf.session();
  for (std::size_t t = 0; t < 60; ++t) {
    agent(vm, t);
    (void)vm.run_slice();
  }
  EXPECT_GT(obf.total_injected_repetitions(), 0.0);
}

TEST(CacheProbe, MissesTrackVictimPressure) {
  sim::MicroArchState uarch;
  sim::CacheProbe probe(9000, sim::MicroArchState::kLlcBytes * 0.8);
  (void)probe.probe(uarch);  // install the probe buffer
  const double quiet = probe.probe(uarch);
  // A victim touching a large working set evicts probe lines.
  (void)uarch.access(1, sim::MicroArchState::kLlcBytes * 0.5, 1.0);
  const double pressured = probe.probe(uarch);
  EXPECT_GT(pressured, quiet + 100.0);
}

TEST(CacheProbe, OccupancyMonitorSeparatesBusyFromIdle) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  auto run = [&](double bytes_per_slice) {
    sim::VirtualMachine vm(sim::VmConfig{}, 7);
    sim::HostMonitor monitor(db, 8);
    sim::CacheProbe probe(9000, sim::MicroArchState::kLlcBytes * 0.8);
    sim::BlockSource source = [bytes_per_slice](std::size_t) {
      sim::InstructionBlock b;
      b.region = 42;
      b.read_bytes = bytes_per_slice;
      b.uops = 100;
      return std::vector<sim::InstructionBlock>{b};
    };
    const auto result = monitor.monitor_occupancy(vm, source, probe, 30);
    double total = 0.0;
    for (const auto& row : result.samples) total += row[0];
    return total;
  };
  EXPECT_GT(run(2e6), run(1e3) * 1.5);
}

TEST(PrivacyAccountant, BasicCompositionSums) {
  dp::PrivacyAccountant accountant;
  for (int i = 0; i < 10; ++i) accountant.record_release(0.25);
  EXPECT_EQ(accountant.releases(), 10u);
  EXPECT_DOUBLE_EQ(accountant.basic_epsilon(), 2.5);
  accountant.reset();
  EXPECT_EQ(accountant.releases(), 0u);
  EXPECT_DOUBLE_EQ(accountant.basic_epsilon(), 0.0);
}

TEST(PrivacyAccountant, NonPositiveEpsilonIgnored) {
  dp::PrivacyAccountant accountant;
  accountant.record_release(0.0);
  accountant.record_release(-1.0);
  EXPECT_EQ(accountant.releases(), 0u);
}

TEST(PrivacyAccountant, AdvancedBeatsBasicForManySmallReleases) {
  // k = 3000 slices at eps = 0.01: basic gives 30; advanced is far tighter.
  const double advanced =
      dp::PrivacyAccountant::advanced_composition(0.01, 3000, 1e-6);
  EXPECT_LT(advanced, 30.0 * 0.2);
  EXPECT_GT(advanced, 0.0);
}

TEST(PrivacyAccountant, AdvancedMonotoneInReleases) {
  double prev = 0.0;
  for (std::size_t k : {10u, 100u, 1000u, 10000u}) {
    const double bound = dp::PrivacyAccountant::advanced_composition(0.05, k, 1e-6);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(PrivacyAccountant, HomogeneousReleasesMatchTheClosedForm) {
  dp::PrivacyAccountant accountant;
  for (int i = 0; i < 100; ++i) accountant.record_release(0.02);
  const double direct =
      dp::PrivacyAccountant::advanced_composition(0.02, 100, 1e-6);
  EXPECT_NEAR(accountant.advanced_epsilon(1e-6), direct, 1e-12);
  EXPECT_DOUBLE_EQ(dp::PrivacyAccountant().advanced_epsilon(1e-6), 0.0);
}

TEST(PrivacyAccountant, HeterogeneousReleasesUseExactSumOfSquares) {
  // Mixed granularities (what the BudgetGovernor produces when it
  // degrades): the bound must come from the exact per-release sum of
  // squares, NOT from k releases at the mean epsilon.
  const std::vector<double> epsilons = {0.4, 0.05, 0.05, 0.2, 0.01,
                                        0.3, 0.05, 0.1,  0.25};
  const double delta = 1e-6;
  dp::PrivacyAccountant accountant;
  for (double eps : epsilons) accountant.record_release(eps);

  double sum = 0.0, sum_sq = 0.0, overhead = 0.0;
  for (double eps : epsilons) {
    sum += eps;
    sum_sq += eps * eps;
    overhead += eps * (std::exp(eps) - 1.0);
  }
  const double direct =
      std::sqrt(2.0 * std::log(1.0 / delta) * sum_sq) + overhead;
  EXPECT_NEAR(accountant.advanced_epsilon(delta), direct, 1e-12);
  EXPECT_NEAR(accountant.basic_epsilon(), sum, 1e-12);

  // The mean-epsilon approximation is a DIFFERENT (wrong) number here.
  const double mean_based = dp::PrivacyAccountant::advanced_composition(
      sum / static_cast<double>(epsilons.size()), epsilons.size(), delta);
  EXPECT_GT(std::abs(mean_based - direct), 1e-3);
}

TEST(PrivacyAccountant, RecordReleasesBatchesEqualSingles) {
  dp::PrivacyAccountant batched, single;
  batched.record_releases(0.1, 50);
  batched.record_releases(0.02, 7);
  for (int i = 0; i < 50; ++i) single.record_release(0.1);
  for (int i = 0; i < 7; ++i) single.record_release(0.02);
  EXPECT_EQ(batched.releases(), single.releases());
  EXPECT_NEAR(batched.advanced_epsilon(1e-6), single.advanced_epsilon(1e-6),
              1e-12);
}

TEST(PrivacyAccountant, AdvancedEpsilonIfIsAPureHypothetical) {
  dp::PrivacyAccountant accountant;
  accountant.record_releases(0.05, 20);
  const double before = accountant.advanced_epsilon(1e-6);
  // The hypothetical equals the value reached by actually recording...
  const double hypothetical = accountant.advanced_epsilon_if(0.2, 5, 1e-6);
  dp::PrivacyAccountant committed = accountant;
  committed.record_releases(0.2, 5);
  EXPECT_NEAR(hypothetical, committed.advanced_epsilon(1e-6), 1e-12);
  // ...without mutating the accountant.
  EXPECT_DOUBLE_EQ(accountant.advanced_epsilon(1e-6), before);
  EXPECT_EQ(accountant.releases(), 20u);
  // Zero extra releases = the current bound.
  EXPECT_NEAR(accountant.advanced_epsilon_if(0.0, 0, 1e-6), before, 1e-12);
}

TEST(PrivacyAccountant, RemainingClampsAtZero) {
  dp::PrivacyAccountant accountant;
  accountant.record_releases(0.1, 100);
  const double spent = accountant.advanced_epsilon(1e-6);
  EXPECT_NEAR(accountant.remaining(spent + 1.0, 1e-6), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(accountant.remaining(spent * 0.5, 1e-6), 0.0);
  EXPECT_NEAR(dp::PrivacyAccountant().remaining(3.0, 1e-6), 3.0, 1e-12);
}

}  // namespace
}  // namespace aegis
