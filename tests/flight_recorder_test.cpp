// Flight-recorder tests: the seqlock ring protocol (single-thread semantics,
// overwrite-oldest drops, disabled/null paths), the byte-exact v1 dump
// format and its chrome://tracing conversion, concurrent writers + drains
// under TSan, the allocation-free record-path proof (instrumented global
// allocator), and the seeded-crash dump (fork + abort -> parseable dump
// holding the last ring_capacity events).
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------------
// Instrumented global allocator. Counting is gated on a flag so only the
// record-path window is measured; gtest bookkeeping outside it stays free.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aegis::telemetry {
namespace {

RecorderConfig small_config(std::size_t capacity, std::size_t rings) {
  RecorderConfig c;
  c.ring_capacity = capacity;
  c.rings = rings;
  return c;
}

// ---------------------------------------------------------------------------
// Ring semantics

TEST(FlightRecorder, SingleThreadRecordAndDrainSortsByTime) {
  FlightRecorder rec(small_config(8, 1));
  EventHandle alpha = rec.event_handle("alpha", WideEventType::kHotExec);
  EventHandle beta = rec.event_handle("beta", WideEventType::kAlert);
  alpha.record(/*t_ns=*/5, 1, 2, 3, 4, /*tenant=*/7);
  beta.record(/*t_ns=*/3, 9);

  const std::vector<DrainedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t_ns, 3u);  // sorted by t_ns, not claim order
  EXPECT_EQ(events[0].a, 9u);
  EXPECT_EQ(events[0].type,
            static_cast<std::uint16_t>(WideEventType::kAlert));
  EXPECT_EQ(events[0].stream, 1u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].t_ns, 5u);
  EXPECT_EQ(events[1].d, 4u);
  EXPECT_EQ(events[1].tenant, 7u);
  EXPECT_EQ(events[1].stream, 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.streams(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(FlightRecorder, EventHandleIsIdempotentPerName) {
  FlightRecorder rec(small_config(8, 1));
  rec.event_handle("one", WideEventType::kMetricDelta);
  rec.event_handle("one", WideEventType::kMetricDelta);
  rec.event_handle("two", WideEventType::kMetricDelta);
  EXPECT_EQ(rec.streams().size(), 2u);
}

TEST(FlightRecorder, OverwriteOldestKeepsTheNewestAndCountsDrops) {
  FlightRecorder rec(small_config(4, 1));
  EventHandle h = rec.event_handle("wrap", WideEventType::kMetricDelta);
  for (std::uint64_t i = 0; i < 10; ++i) h.record(i, i * 10);

  const std::vector<DrainedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 4u);  // newest ring_capacity events survive
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t_ns, 6 + i);
    EXPECT_EQ(events[i].a, (6 + i) * 10);
    EXPECT_EQ(events[i].seq, 6 + i);
  }
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  FlightRecorder rec(small_config(8, 1));
  EventHandle h = rec.event_handle("gated", WideEventType::kMetricDelta);
  rec.set_enabled(false);
  h.record(1);
  EXPECT_TRUE(rec.drain().empty());
  rec.set_enabled(true);
  h.record(2);
  EXPECT_EQ(rec.drain().size(), 1u);
}

TEST(FlightRecorder, NullHandleIsANoop) {
  EventHandle h;
  EXPECT_FALSE(h.attached());
  h.record(1, 2, 3, 4, 5, 6);  // must not crash
}

TEST(FlightRecorder, RecordNamedSharesTheStreamWithTheHandle) {
  FlightRecorder rec(small_config(8, 1));
  EventHandle h = rec.event_handle("shared", WideEventType::kMetricDelta);
  h.record(1);
  rec.record_named("shared", WideEventType::kMetricDelta, 2);
  const std::vector<DrainedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stream, events[1].stream);
  EXPECT_EQ(rec.streams().size(), 1u);
}

TEST(FlightRecorder, ClearResetsRingsAndDropCounters) {
  FlightRecorder rec(small_config(4, 1));
  EventHandle h = rec.event_handle("x", WideEventType::kMetricDelta);
  for (std::uint64_t i = 0; i < 9; ++i) h.record(i);
  EXPECT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Allocation-free record path

TEST(FlightRecorder, RecordPathIsAllocationFree) {
  FlightRecorder rec(small_config(256, 2));
  EventHandle h = rec.event_handle("hot", WideEventType::kHotExec);

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    h.record(i, i + 1, i + 2, i + 3, i + 4, 42);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "EventHandle::record allocated on the hot path";
}

// ---------------------------------------------------------------------------
// Dump format v1

void put_u16(std::string& s, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}
void put_record(std::string& s, std::uint64_t t, std::uint64_t a,
                std::uint64_t b, std::uint64_t c, std::uint64_t d,
                std::uint16_t type, std::uint16_t stream, std::uint32_t tenant,
                std::uint32_t ring, std::uint32_t seq) {
  put_u64(s, t);
  put_u64(s, a);
  put_u64(s, b);
  put_u64(s, c);
  put_u64(s, d);
  put_u64(s, (static_cast<std::uint64_t>(type) << 48) |
                 (static_cast<std::uint64_t>(stream) << 32) | tenant);
  put_u32(s, ring);
  put_u32(s, seq);
}

/// The recorder used by the byte-golden, round-trip and tracing tests:
/// one ring, streams "alpha" (kHotExec, id 0) and "beta" (kAlert, id 1),
/// alpha@t=5 then beta@t=3 so the sorted dump reorders them.
std::unique_ptr<FlightRecorder> golden_recorder() {
  auto rec = std::make_unique<FlightRecorder>(small_config(8, 1));
  EventHandle alpha = rec->event_handle("alpha", WideEventType::kHotExec);
  EventHandle beta = rec->event_handle("beta", WideEventType::kAlert);
  alpha.record(5, 1, 2, 3, 4, 7);
  beta.record(3, 9);
  return rec;
}

TEST(FlightRecorderDump, WriteDumpIsByteExact) {
  std::ostringstream os;
  golden_recorder()->write_dump(os);

  std::string want = "AEGISFR1";
  put_u32(want, 1);   // format version
  put_u32(want, 56);  // record size
  put_u64(want, 2);   // event count
  put_u64(want, 0);   // dropped
  put_u32(want, 13);  // name table: (2+5) + (2+4) bytes
  put_u32(want, 2);   // name table entries
  put_u16(want, 5);
  want += "alpha";
  put_u16(want, 4);
  want += "beta";
  // drain() order: (t_ns, ring, seq) ascending — beta first.
  put_record(want, 3, 9, 0, 0, 0, /*type=*/7, /*stream=*/1, 0, 0, /*seq=*/1);
  put_record(want, 5, 1, 2, 3, 4, /*type=*/8, /*stream=*/0, 7, 0, /*seq=*/0);

  EXPECT_EQ(os.str(), want);
}

TEST(FlightRecorderDump, RoundTripsThroughReadDump) {
  auto rec = golden_recorder();
  std::ostringstream os;
  rec->write_dump(os);
  std::istringstream is(os.str());

  const std::optional<DumpDocument> doc = read_dump(is);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->version, 1u);
  EXPECT_EQ(doc->dropped, 0u);
  EXPECT_EQ(doc->streams, (std::vector<std::string>{"alpha", "beta"}));
  const std::vector<DrainedEvent> live = rec->drain();
  ASSERT_EQ(doc->events.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(doc->events[i].t_ns, live[i].t_ns);
    EXPECT_EQ(doc->events[i].a, live[i].a);
    EXPECT_EQ(doc->events[i].type, live[i].type);
    EXPECT_EQ(doc->events[i].stream, live[i].stream);
    EXPECT_EQ(doc->events[i].tenant, live[i].tenant);
    EXPECT_EQ(doc->events[i].seq, live[i].seq);
  }
}

TEST(FlightRecorderDump, TraceJsonConversionIsByteExact) {
  auto rec = golden_recorder();
  std::ostringstream dump;
  rec->write_dump(dump);
  std::istringstream is(dump.str());
  const std::optional<DumpDocument> doc = read_dump(is);
  ASSERT_TRUE(doc.has_value());

  std::ostringstream os;
  write_recorder_trace_json(*doc, os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"beta\", \"cat\": \"alert\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": 0.003, \"pid\": 1, \"tid\": 0, "
            "\"args\": {\"a\": 9, \"b\": 0, \"c\": 0, \"d\": 0, "
            "\"tenant\": 0, \"seq\": 1}},\n"
            "  {\"name\": \"alpha\", \"cat\": \"hot-exec\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": 0.005, \"pid\": 1, \"tid\": 0, "
            "\"args\": {\"a\": 1, \"b\": 2, \"c\": 3, \"d\": 4, "
            "\"tenant\": 7, \"seq\": 0}}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(FlightRecorderDump, TruncatedRecordStreamParsesThePrefix) {
  std::ostringstream os;
  golden_recorder()->write_dump(os);
  const std::string full = os.str();
  // Cut mid-way through the last record: the reader keeps what landed.
  std::istringstream is(full.substr(0, full.size() - 10));
  const std::optional<DumpDocument> doc = read_dump(is);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->events.size(), 1u);
  EXPECT_EQ(doc->events[0].t_ns, 3u);
}

TEST(FlightRecorderDump, BadMagicIsRejected) {
  std::istringstream is("NOTADUMPxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  EXPECT_FALSE(read_dump(is).has_value());
}

TEST(FlightRecorderDump, SignalSafeDumpUsesUntilEofCountAndParses) {
  auto rec = golden_recorder();
  const std::string path = testing::TempDir() + "aegis_fr_fd_dump.frd";
  ASSERT_TRUE(rec->dump_to_file(path.c_str()));
  const std::optional<DumpDocument> doc = read_dump_file(path.c_str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->version, 1u);
  // Per-ring claim order (no sort in signal context): alpha then beta.
  ASSERT_EQ(doc->events.size(), 2u);
  EXPECT_EQ(doc->events[0].t_ns, 5u);
  EXPECT_EQ(doc->events[1].t_ns, 3u);
  EXPECT_EQ(doc->streams, (std::vector<std::string>{"alpha", "beta"}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrency (run under -DAEGIS_SANITIZE=thread in CI)

TEST(FlightRecorderConcurrency, EightWritersWithConcurrentDrainsStayClean) {
  FlightRecorder rec(small_config(256, 4));
  EventHandle h = rec.event_handle("stress", WideEventType::kMetricDelta);

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::atomic<bool> stop{false};

  // Drainer races the writers: every delivered event must be internally
  // consistent (a == t_ns + 1) — torn slots are dropped, never delivered.
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const DrainedEvent& ev : rec.drain()) {
        ASSERT_EQ(ev.a, ev.t_ns + 1);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t stamp = static_cast<std::uint64_t>(t) * kPerThread + i;
        h.record(stamp, stamp + 1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();

  const std::vector<DrainedEvent> final_events = rec.drain();
  EXPECT_LE(final_events.size(), 4u * 256u);
  EXPECT_FALSE(final_events.empty());
  for (const DrainedEvent& ev : final_events) {
    EXPECT_EQ(ev.a, ev.t_ns + 1);
  }
  // Nothing vanishes silently: whatever the rings no longer hold is
  // accounted as dropped.
  EXPECT_GE(final_events.size() + rec.dropped(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Seeded crash -> parseable dump with the last N events

TEST(FlightRecorderCrash, AbortProducesAParseableDumpWithTheLastEvents) {
  const std::string prefix = testing::TempDir() + "aegis_fr_crash";
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record 100 events into a 64-slot ring, arm, abort. The
    // SIGABRT hook must dump before the process dies.
    FlightRecorder rec(small_config(64, 1));
    EventHandle h = rec.event_handle("crash.site", WideEventType::kMetricDelta);
    for (std::uint64_t i = 0; i < 100; ++i) h.record(i, i * 2, 0xDEAD);
    rec.arm_crash_dump(prefix.c_str());
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string path =
      prefix + "." + std::to_string(static_cast<int>(pid)) + ".frd";
  const std::optional<DumpDocument> doc = read_dump_file(path.c_str());
  ASSERT_TRUE(doc.has_value()) << "crash dump missing or unparseable: " << path;
  EXPECT_EQ(doc->version, 1u);
  ASSERT_EQ(doc->streams.size(), 1u);
  EXPECT_EQ(doc->streams[0], "crash.site");
  // The newest ring_capacity events survived the wrap; the tail is the
  // final event before the abort.
  ASSERT_EQ(doc->events.size(), 64u);
  EXPECT_EQ(doc->events.front().seq, 36u);
  EXPECT_EQ(doc->events.back().seq, 99u);
  EXPECT_EQ(doc->events.back().a, 198u);
  EXPECT_EQ(doc->events.back().b, 0xDEADu);
  EXPECT_EQ(doc->dropped, 36u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aegis::telemetry
