// Failure-injection and edge-case tests: the library must degrade
// gracefully (clear exceptions, empty results) rather than crash or hang
// when configured at the boundaries.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "attack/wfa.hpp"
#include "core/serialize.hpp"
#include "fuzzer/fuzzer.hpp"
#include "obf/noise_calculator.hpp"
#include "profiler/profiler.hpp"
#include "workload/idle.hpp"

namespace aegis {
namespace {

TEST(Robustness, VmWithZeroBudgetDoesNotHang) {
  sim::VmConfig config;
  config.slice_budget_cycles = 0.0;
  config.interrupt_rate = 0.0;
  sim::VirtualMachine vm(config, 1);
  sim::InstructionBlock b;
  b.uops = 100;
  vm.submit(b);
  // With a zero budget the first block of a slice still executes (budget is
  // checked before each block, and one block may overshoot), so the queue
  // drains one block per slice rather than deadlocking.
  int slices = 0;
  while (vm.pending() && slices < 10) {
    (void)vm.run_slice();
    ++slices;
  }
  EXPECT_FALSE(vm.pending());
}

TEST(Robustness, VmWithExtremeInterruptLoadStillRuns) {
  sim::VmConfig config;
  config.interrupt_rate = 500.0;  // pathological interrupt storm
  sim::VirtualMachine vm(config, 2);
  for (int t = 0; t < 20; ++t) {
    const auto stats = vm.run_slice();
    EXPECT_GT(stats.interrupts, 0.0);
    EXPECT_TRUE(std::isfinite(stats.cycles));
  }
  EXPECT_LE(vm.cpu_usage(), 1.0);
}

TEST(Robustness, MonitorWithNullSourceProducesIdleTrace) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  sim::VirtualMachine vm(sim::VmConfig{}, 3);
  sim::HostMonitor monitor(db, 4);
  const auto result = monitor.monitor(vm, nullptr, {0, 1}, 10);
  EXPECT_EQ(result.samples.size(), 10u);
}

TEST(Robustness, CounterFileWithNoProgrammedEvents) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  pmu::CounterRegisterFile counters(db, 5);
  counters.program({});
  pmu::ExecutionStats stats;
  stats.uops = 100;
  counters.tick(stats);  // must not crash
  EXPECT_TRUE(counters.read_all().empty());
}

TEST(Robustness, FuzzerWithNoEventsReturnsEmptyResult) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  fuzzer::FuzzerConfig config;
  config.reset_sample = 4;
  config.trigger_sample = 4;
  fuzzer::EventFuzzer fuzzer(db, spec, config);
  const auto result = fuzzer.run({});
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.cleaned_instructions, spec.legal_count());
}

TEST(Robustness, SetCoverOfEmptyResultIsEmpty) {
  const fuzzer::GadgetCover cover = fuzzer::minimal_gadget_cover({});
  EXPECT_TRUE(cover.gadgets.empty());
  EXPECT_TRUE(cover.covered_events.empty());
  EXPECT_TRUE(cover.uncovered_events.empty());
}

TEST(Robustness, NoiseCalculatorWithZeroBufferSize) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kLaplace;
  config.epsilon = 1.0;
  obf::NoiseCalculator calc(config, 0);  // clamped internally to 1
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(std::isfinite(calc.noise_for(0.0)));
  }
}

TEST(Robustness, ProfilerRankWithNoEventsOrSecrets) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  profiler::ProfilerConfig config;
  config.ranking_runs_per_secret = 2;
  profiler::ApplicationProfiler profiler(db, config);
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  secrets.push_back(std::make_unique<workload::IdleWorkload>(40));
  EXPECT_TRUE(profiler.rank(secrets, {}).empty());
}

TEST(Robustness, TraceFeaturesOnEmptyTrace) {
  trace::Trace empty;
  EXPECT_TRUE(empty.window_features(8).empty());
  EXPECT_TRUE(empty.sorted_window_features(8).empty());
  EXPECT_EQ(empty.events(), 0u);
}

TEST(Robustness, TraceZeroWindowsIsEmpty) {
  trace::Trace t;
  t.samples = {{1.0}, {2.0}};
  EXPECT_TRUE(t.window_features(0).empty());
}

TEST(Robustness, MlpSingleSampleSingleClass) {
  ml::MlpConfig config;
  config.epochs = 3;
  ml::MlpClassifier mlp(2, 1, config);
  const auto history = mlp.fit({{0.5, -0.5}}, {0}, {}, {});
  EXPECT_EQ(history.size(), 3u);
  EXPECT_EQ(mlp.predict({0.0, 0.0}), 0);
}

TEST(Robustness, MlpEmptyFitReturnsEmptyHistory) {
  ml::MlpClassifier mlp(2, 2, ml::MlpConfig{});
  EXPECT_TRUE(mlp.fit({}, {}, {}, {}).empty());
  EXPECT_EQ(mlp.accuracy({}, {}), 0.0);
}

TEST(Robustness, EventDatabaseFindEmptyName) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  EXPECT_FALSE(db.find("").has_value());
}

TEST(Robustness, SerializeEmptyResultRoundTrips) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  core::OfflineResult empty;
  std::stringstream stream;
  core::save_offline_result(stream, empty, db);
  const core::OfflineResult loaded = core::load_offline_result(stream, db);
  EXPECT_TRUE(loaded.ranking.empty());
  EXPECT_TRUE(loaded.cover.gadgets.empty());
  EXPECT_TRUE(loaded.fuzz.reports.empty());
}

TEST(Robustness, GadgetRunnerEmptySequenceMeasuresNothing) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  sim::GadgetRunner runner(db, spec, 6);
  runner.program({*db.find("RETIRED_UOPS")});
  const std::vector<std::uint32_t> empty;
  const auto delta = runner.execute_once(empty);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_NEAR(delta[0], 0.0, 1.0);
}

TEST(Robustness, WorkloadSliceBeyondWindowIsBenign) {
  workload::WebsiteWorkload site(0, 50);
  auto source = site.visit(1);
  // Asking for slices past the configured window returns no phase work.
  const auto blocks = source(10000);
  for (const auto& b : blocks) {
    EXPECT_TRUE(std::isfinite(b.uops));
  }
}

TEST(Robustness, AttackExploitWithZeroVisits) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  attack::WfaScale scale;
  scale.sites = 2;
  scale.traces_per_site = 6;
  scale.epochs = 3;
  scale.slices = 60;
  auto secrets = attack::make_wfa_secrets(scale);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*db.find(name));
  attack::ClassificationAttack wfa(db, attack::make_wfa_config(events, scale));
  (void)wfa.train(secrets);
  EXPECT_EQ(wfa.exploit(secrets, 0, 1), 0.0);
}

}  // namespace
}  // namespace aegis
