#include <gtest/gtest.h>

#include <set>

#include "workload/dnn.hpp"
#include "workload/idle.hpp"
#include "workload/keystroke.hpp"
#include "workload/website.hpp"

namespace aegis::workload {
namespace {

double total_uops(const sim::BlockSource& source, std::size_t slices) {
  double total = 0.0;
  for (std::size_t t = 0; t < slices; ++t) {
    for (const auto& b : source(t)) total += b.uops;
  }
  return total;
}

TEST(Website, SameSeedSameVisit) {
  WebsiteWorkload site(3, 200);
  auto a = site.visit(42);
  auto b = site.visit(42);
  for (std::size_t t = 0; t < 200; t += 17) {
    const auto blocks_a = a(t);
    const auto blocks_b = b(t);
    ASSERT_EQ(blocks_a.size(), blocks_b.size());
    for (std::size_t i = 0; i < blocks_a.size(); ++i) {
      EXPECT_DOUBLE_EQ(blocks_a[i].uops, blocks_b[i].uops);
    }
  }
}

TEST(Website, DifferentVisitsJitter) {
  WebsiteWorkload site(3, 200);
  const double u1 = total_uops(site.visit(1), 200);
  const double u2 = total_uops(site.visit(2), 200);
  EXPECT_NE(u1, u2);
  // Same site: visits stay within a modest band.
  EXPECT_NEAR(u1 / u2, 1.0, 0.5);
}

TEST(Website, SitesHaveDistinctActivity) {
  std::set<long long> signatures;
  for (std::size_t s = 0; s < WebsiteWorkload::kNumSites; ++s) {
    WebsiteWorkload site(s, 200);
    signatures.insert(static_cast<long long>(total_uops(site.visit(7), 200)));
  }
  // All 45 sites produce distinct total work signatures.
  EXPECT_EQ(signatures.size(), WebsiteWorkload::kNumSites);
}

TEST(Website, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (std::size_t s = 0; s < WebsiteWorkload::kNumSites; ++s) {
    const std::string n = WebsiteWorkload(s, 100).name();
    EXPECT_FALSE(n.empty());
    names.insert(n);
  }
  EXPECT_EQ(names.size(), WebsiteWorkload::kNumSites);
}

TEST(Website, SiteIdWrapsModulo) {
  EXPECT_EQ(WebsiteWorkload(0, 100).name(),
            WebsiteWorkload(WebsiteWorkload::kNumSites, 100).name());
}

TEST(Website, InitialSlicesAreQuietNetworkWait) {
  WebsiteWorkload site(5, 300);
  auto source = site.visit(9);
  double early = 0.0, late = 0.0;
  for (std::size_t t = 0; t < 10; ++t) {
    for (const auto& b : source(t)) early += b.uops;
  }
  for (std::size_t t = 120; t < 130; ++t) {
    for (const auto& b : source(t)) late += b.uops;
  }
  EXPECT_LT(early, late);
}

class KeystrokeCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KeystrokeCountTest, WorkGrowsWithKeyCount) {
  const std::size_t k = GetParam();
  KeystrokeWorkload wl(k, 300);
  // Average across visits to smooth jitter.
  double total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    total += total_uops(wl.visit(seed), 300);
  }
  KeystrokeWorkload zero(0, 300);
  double base = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    base += total_uops(zero.visit(seed), 300);
  }
  if (k == 0) {
    EXPECT_NEAR(total, base, 1e-6);
  } else {
    // Each keystroke adds a burst of roughly constant work.
    const double per_key = (total - base) / 8.0 / static_cast<double>(k);
    EXPECT_GT(per_key, 10e3);
    EXPECT_LT(per_key, 80e3);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, KeystrokeCountTest,
                         ::testing::Values(0u, 1u, 3u, 5u, 9u));

TEST(Keystroke, ClampsToMaxKeys) {
  KeystrokeWorkload wl(50, 100);
  EXPECT_EQ(wl.num_keys(), KeystrokeWorkload::kMaxKeys);
}

TEST(Keystroke, NameEncodesCount) {
  EXPECT_EQ(KeystrokeWorkload(4, 100).name(), "4 keystrokes");
}

TEST(Dnn, ThirtyDistinctArchitectures) {
  std::set<std::string> names;
  std::set<std::size_t> lengths;
  for (std::size_t m = 0; m < DnnWorkload::kNumModels; ++m) {
    DnnWorkload wl(m, 240);
    names.insert(wl.name());
    lengths.insert(wl.layers().size());
    EXPECT_GE(wl.layers().size(), 8u) << wl.name();
  }
  EXPECT_EQ(names.size(), DnnWorkload::kNumModels);
  EXPECT_GT(lengths.size(), 8u);  // depths genuinely vary
}

TEST(Dnn, LayerSequenceMatchesLayers) {
  DnnWorkload wl(3, 240);
  const auto seq = wl.layer_sequence();
  ASSERT_EQ(seq.size(), wl.layers().size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], wl.layers()[i].kind);
  }
}

TEST(Dnn, PlanLabelsAreAlignedAndCoverLayers) {
  DnnWorkload wl(5, 240);
  const auto plan = wl.plan(11);
  ASSERT_EQ(plan.frame_labels.size(), 240u);
  // Labels are layer kinds or blank.
  std::size_t labelled = 0;
  for (int label : plan.frame_labels) {
    EXPECT_GE(label, 0);
    EXPECT_LE(label, kBlankLabel);
    if (label != kBlankLabel) ++labelled;
  }
  EXPECT_GT(labelled, 60u);  // a solid fraction of frames carry a layer
}

TEST(Dnn, LabelledFramesHaveLayerActivity) {
  DnnWorkload wl(7, 240);
  const auto plan = wl.plan(13);
  double labelled_uops = 0.0, blank_uops = 0.0;
  std::size_t labelled = 0, blank = 0;
  for (std::size_t t = 0; t < 240; ++t) {
    double u = 0.0;
    for (const auto& b : plan.source(t)) u += b.uops;
    if (plan.frame_labels[t] != kBlankLabel) {
      labelled_uops += u;
      ++labelled;
    } else {
      blank_uops += u;
      ++blank;
    }
  }
  ASSERT_GT(labelled, 0u);
  ASSERT_GT(blank, 0u);
  EXPECT_GT(labelled_uops / static_cast<double>(labelled),
            3.0 * blank_uops / static_cast<double>(blank));
}

TEST(Dnn, ConvLayersAreSimdHeavy) {
  DnnWorkload wl(3, 240);  // vgg16: conv-dominated
  const auto plan = wl.plan(17);
  double simd = 0.0, total = 0.0;
  for (std::size_t t = 0; t < 240; ++t) {
    if (plan.frame_labels[t] != static_cast<int>(LayerKind::kConv)) continue;
    for (const auto& b : plan.source(t)) {
      simd += b.class_counts[isa::InstructionClass::kSimdFp];
      total += b.uops;
    }
  }
  ASSERT_GT(total, 0.0);
  EXPECT_GT(simd / total, 0.3);
}

TEST(Dnn, LayerKindNames) {
  EXPECT_EQ(to_string(LayerKind::kConv), "Conv");
  EXPECT_EQ(to_string(LayerKind::kFc), "FC");
  EXPECT_EQ(to_string(LayerKind::kAdd), "Add");
}

TEST(Idle, NearlyNoActivity) {
  IdleWorkload idle(300);
  EXPECT_LT(total_uops(idle.visit(3), 300), 2000.0);
  EXPECT_EQ(idle.name(), "idle");
}

TEST(Workloads, TraceSlicesRespected) {
  EXPECT_EQ(WebsiteWorkload(1, 123).trace_slices(), 123u);
  EXPECT_EQ(KeystrokeWorkload(1, 77).trace_slices(), 77u);
  EXPECT_EQ(DnnWorkload(1, 88).trace_slices(), 88u);
  EXPECT_EQ(IdleWorkload(99).trace_slices(), 99u);
}

}  // namespace
}  // namespace aegis::workload
