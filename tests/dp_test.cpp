#include <gtest/gtest.h>

#include <cmath>

#include "dp/baselines.hpp"
#include "dp/dstar.hpp"
#include "dp/laplace.hpp"
#include "util/stats.hpp"

namespace aegis::dp {
namespace {

TEST(Laplace, NoiseIsZeroCenteredWithCorrectScale) {
  LaplaceMechanism mech(0.5, 1.0, 1);
  std::vector<double> noise;
  for (int i = 0; i < 60000; ++i) noise.push_back(mech.noisy_value(0.0));
  EXPECT_NEAR(util::mean(noise), 0.0, 0.05);
  // Lap(b) variance = 2 b^2 with b = sensitivity / epsilon = 2.
  EXPECT_NEAR(util::variance(noise), 8.0, 0.5);
}

TEST(Laplace, ScaleTracksEpsilonAndSensitivity) {
  EXPECT_DOUBLE_EQ(LaplaceMechanism(2.0, 1.0, 1).scale(), 0.5);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(0.5, 3.0, 1).scale(), 6.0);
}

TEST(Laplace, RejectsInvalidParameters) {
  EXPECT_THROW(LaplaceMechanism(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(LaplaceMechanism(1.0, -1.0, 1), std::invalid_argument);
}

/// Numerical verification of Theorem 1: for adjacent inputs x, x' with
/// |x - x'| <= Delta, the output density ratio is bounded by exp(eps).
/// We estimate densities from histograms of many mechanism outputs.
class LaplaceDpBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceDpBoundTest, EpsilonDpRatioBoundHolds) {
  const double eps = GetParam();
  const double x = 0.0, x_adj = 1.0;  // |x - x'| = Delta = 1
  LaplaceMechanism m1(eps, 1.0, 11), m2(eps, 1.0, 22);
  constexpr int kSamples = 200000;
  std::vector<double> out1, out2;
  out1.reserve(kSamples);
  out2.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    out1.push_back(m1.noisy_value(x));
    out2.push_back(m2.noisy_value(x_adj));
  }
  const double lo = -3.0 / eps, hi = 3.0 / eps + 1.0;
  constexpr std::size_t kBins = 30;
  const auto h1 = util::make_histogram(out1, kBins, lo, hi);
  const auto h2 = util::make_histogram(out2, kBins, lo, hi);
  const double bound = std::exp(eps);
  for (std::size_t b = 0; b < kBins; ++b) {
    const double p1 = static_cast<double>(h1.counts[b]) / kSamples;
    const double p2 = static_cast<double>(h2.counts[b]) / kSamples;
    if (p1 < 2e-3 || p2 < 2e-3) continue;  // skip statistically thin bins
    EXPECT_LT(p1 / p2, bound * 1.25) << "bin " << b << " eps " << eps;
    EXPECT_LT(p2 / p1, bound * 1.25) << "bin " << b << " eps " << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, LaplaceDpBoundTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(DStar, LargestDividingPow2) {
  EXPECT_EQ(largest_dividing_pow2(1), 1u);
  EXPECT_EQ(largest_dividing_pow2(2), 2u);
  EXPECT_EQ(largest_dividing_pow2(3), 1u);
  EXPECT_EQ(largest_dividing_pow2(4), 4u);
  EXPECT_EQ(largest_dividing_pow2(6), 2u);
  EXPECT_EQ(largest_dividing_pow2(12), 4u);
  EXPECT_EQ(largest_dividing_pow2(96), 32u);
}

struct GtCase {
  std::uint64_t t, expected;
};

class DStarParentTest : public ::testing::TestWithParam<GtCase> {};

TEST_P(DStarParentTest, MatchesEq4) {
  EXPECT_EQ(dstar_parent(GetParam().t), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Eq4Table, DStarParentTest,
    ::testing::Values(GtCase{1, 0},    // t = 1 -> 0
                      GtCase{2, 1},    // t = D(t) = 2 -> t/2
                      GtCase{4, 2},    // power of two -> t/2
                      GtCase{8, 4},
                      GtCase{3, 2},    // t > D(t) -> t - D(t)
                      GtCase{6, 4},
                      GtCase{12, 8},
                      GtCase{13, 12},
                      GtCase{20, 16}));

TEST(DStar, ParentChainTerminatesAtZero) {
  for (std::uint64_t t = 1; t <= 256; ++t) {
    std::uint64_t cursor = t;
    int hops = 0;
    while (cursor != 0 && hops < 64) {
      const std::uint64_t parent = dstar_parent(cursor);
      EXPECT_LT(parent, cursor);
      cursor = parent;
      ++hops;
    }
    EXPECT_EQ(cursor, 0u);
    // Tree property: O(log t) hops to the root.
    EXPECT_LE(hops, 2 * 8 + 2);
  }
}

TEST(DStar, TracksInputWithHighEpsilon) {
  // With a huge privacy budget the noise is negligible and the released
  // series follows x almost exactly through the tree reconstruction.
  DStarMechanism mech(1e6, 3);
  for (int t = 1; t <= 64; ++t) {
    const double x = 10.0 * t + std::sin(t);
    EXPECT_NEAR(mech.noisy_value(x), x, 1e-3) << t;
  }
}

TEST(DStar, NoiseGrowsAsEpsilonShrinks) {
  auto mean_abs_error = [](double eps) {
    DStarMechanism mech(eps, 4);
    double err = 0.0;
    for (int t = 1; t <= 512; ++t) {
      err += std::abs(mech.noisy_value(5.0) - 5.0);
    }
    return err / 512.0;
  };
  EXPECT_LT(mean_abs_error(4.0), mean_abs_error(0.25));
}

TEST(DStar, ResetClearsHistory) {
  DStarMechanism a(1.0, 5), b(1.0, 5);
  std::vector<double> first;
  for (int t = 1; t <= 16; ++t) first.push_back(a.noisy_value(t));
  a.reset();
  for (int t = 1; t <= 16; ++t) {
    // Same seed stream continues, so values differ from the first pass, but
    // the structural reconstruction restarts: the mechanism must not throw
    // and must keep tracking the fresh series.
    const double v = a.noisy_value(t);
    EXPECT_TRUE(std::isfinite(v));
  }
  (void)b;
}

TEST(DStar, NoiseIsCorrelatedAcrossTime) {
  // The tree construction reuses parent noise: adjacent outputs share terms,
  // unlike i.i.d. Laplace. Correlation of consecutive errors is positive.
  DStarMechanism mech(0.5, 6);
  std::vector<double> errors;
  for (int t = 1; t <= 4096; ++t) errors.push_back(mech.noisy_value(0.0));
  std::vector<double> a(errors.begin(), errors.end() - 1);
  std::vector<double> b(errors.begin() + 1, errors.end());
  EXPECT_GT(util::pearson(a, b), 0.2);
}

TEST(DStar, RejectsInvalidEpsilon) {
  EXPECT_THROW(DStarMechanism(0.0, 1), std::invalid_argument);
}

TEST(Baselines, UniformRandomWithinBound) {
  UniformRandomMechanism mech(5.0, 7);
  for (int i = 0; i < 5000; ++i) {
    const double v = mech.noisy_value(2.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Baselines, UniformRandomMeanIsHalfBound) {
  UniformRandomMechanism mech(10.0, 8);
  std::vector<double> noise;
  for (int i = 0; i < 30000; ++i) noise.push_back(mech.noisy_value(0.0));
  EXPECT_NEAR(util::mean(noise), 5.0, 0.15);
}

TEST(Baselines, UniformRandomRejectsNegativeBound) {
  EXPECT_THROW(UniformRandomMechanism(-1.0, 1), std::invalid_argument);
}

TEST(Baselines, ConstantOutputPadsToLevel) {
  ConstantOutputMechanism mech(100.0);
  EXPECT_DOUBLE_EQ(mech.noisy_value(30.0), 100.0);
  EXPECT_DOUBLE_EQ(mech.noisy_value(0.0), 100.0);
  // Values above the level pass through (the peak was underestimated).
  EXPECT_DOUBLE_EQ(mech.noisy_value(130.0), 130.0);
}

TEST(Baselines, ConstantOutputCostsFarMoreThanLaplace) {
  // Section IX-A: padding to the peak injects ~18x the Laplace noise.
  ConstantOutputMechanism constant(1.0);  // peak-normalized level
  LaplaceMechanism laplace(1.0, 1.0, 9);
  util::Rng rng(10);
  double constant_cost = 0.0, laplace_cost = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 0.2);  // typical slice well below peak
    constant_cost += constant.noisy_value(x) - x;
    const double lap_noise = laplace.noisy_value(x) - x;
    laplace_cost += std::max(lap_noise, 0.0);  // injection cannot be negative
  }
  EXPECT_GT(constant_cost / laplace_cost, 1.5);
}

TEST(Factory, MakesEveryKind) {
  for (MechanismKind kind :
       {MechanismKind::kLaplace, MechanismKind::kDStar,
        MechanismKind::kUniformRandom, MechanismKind::kConstantOutput}) {
    MechanismConfig config;
    config.kind = kind;
    config.epsilon = 1.0;
    const auto mech = make_mechanism(config);
    ASSERT_NE(mech, nullptr);
    EXPECT_EQ(mech->name(), to_string(kind));
    EXPECT_TRUE(std::isfinite(mech->noisy_value(1.0)));
  }
}

}  // namespace
}  // namespace aegis::dp
