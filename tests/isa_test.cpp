#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "isa/spec.hpp"

namespace aegis::isa {
namespace {

class SpecPerCpuTest : public ::testing::TestWithParam<CpuModel> {};

TEST_P(SpecPerCpuTest, TotalAndLegalCountsMatchPaperScale) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  // Section VI-C: 3386 of 14014 legal (24.16 %, Intel); 3407 of 14016
  // (24.31 %, AMD).
  if (vendor_of(GetParam()) == Vendor::kIntel) {
    EXPECT_EQ(spec.total_count(), 14014u);
    EXPECT_EQ(spec.legal_count(), 3386u);
  } else {
    EXPECT_EQ(spec.total_count(), 14016u);
    EXPECT_EQ(spec.legal_count(), 3407u);
  }
}

TEST_P(SpecPerCpuTest, MostFaultsAreIllegalOpcode) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  // Paper: ~98.8 % of cleanup faults are illegal-instruction (#UD).
  EXPECT_GT(spec.illegal_opcode_fault_fraction(), 0.985);
  EXPECT_LT(spec.illegal_opcode_fault_fraction(), 1.0);
}

TEST_P(SpecPerCpuTest, UidsAreDenseAndRoundTrip) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  for (std::uint32_t uid = 0; uid < spec.total_count(); uid += 97) {
    EXPECT_EQ(spec.by_uid(uid).uid, uid);
  }
  EXPECT_THROW(spec.by_uid(static_cast<std::uint32_t>(spec.total_count())),
               std::out_of_range);
}

TEST_P(SpecPerCpuTest, Avx512NeverLegal) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  for (const auto& v : spec.variants()) {
    if (v.extension == Extension::kAvx512) {
      EXPECT_FALSE(v.legal()) << v.mnemonic;
    }
  }
}

TEST_P(SpecPerCpuTest, PrivilegedVariantsFaultWithGp) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  std::size_t privileged = 0;
  for (const auto& v : spec.variants()) {
    if (v.extension == Extension::kSystem) {
      EXPECT_EQ(v.fault, FaultKind::kPrivilegeFault) << v.mnemonic;
      ++privileged;
    }
  }
  EXPECT_GT(privileged, 10u);
}

TEST_P(SpecPerCpuTest, LegalVariantListMatchesLegalCount) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  EXPECT_EQ(spec.legal_variants().size(), spec.legal_count());
  for (const auto* v : spec.legal_variants()) EXPECT_TRUE(v->legal());
}

TEST_P(SpecPerCpuTest, MemoryVariantsHaveBytes) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  for (const auto& v : spec.variants()) {
    if (v.has_memory_operand && v.iclass != InstructionClass::kCacheFlush) {
      EXPECT_GT(v.mem_bytes, 0) << v.mnemonic;
    }
    if (!v.has_memory_operand) EXPECT_EQ(v.mem_bytes, 0) << v.mnemonic;
  }
}

TEST_P(SpecPerCpuTest, MnemonicsAreUnique) {
  const IsaSpecification spec = IsaSpecification::generate(GetParam());
  std::unordered_set<std::string> names;
  for (const auto& v : spec.variants()) names.insert(v.mnemonic);
  EXPECT_EQ(names.size(), spec.total_count());
}

TEST_P(SpecPerCpuTest, GenerationIsDeterministic) {
  const IsaSpecification a = IsaSpecification::generate(GetParam());
  const IsaSpecification b = IsaSpecification::generate(GetParam());
  ASSERT_EQ(a.total_count(), b.total_count());
  for (std::size_t i = 0; i < a.total_count(); i += 131) {
    EXPECT_EQ(a.variants()[i].mnemonic, b.variants()[i].mnemonic);
    EXPECT_EQ(a.variants()[i].fault, b.variants()[i].fault);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCpus, SpecPerCpuTest,
                         ::testing::Values(CpuModel::kIntelXeonE5_1650,
                                           CpuModel::kIntelXeonE5_4617,
                                           CpuModel::kAmdEpyc7252,
                                           CpuModel::kAmdEpyc7313P));

TEST(Spec, TsxIsIntelOnly) {
  const auto intel = IsaSpecification::generate(CpuModel::kIntelXeonE5_1650);
  const auto amd = IsaSpecification::generate(CpuModel::kAmdEpyc7252);
  auto tsx_legal = [](const IsaSpecification& spec) {
    for (const auto& v : spec.variants()) {
      if (v.extension == Extension::kTsx && v.legal()) return true;
    }
    return false;
  };
  EXPECT_TRUE(tsx_legal(intel));
  EXPECT_FALSE(tsx_legal(amd));
}

TEST(Spec, Avx2IsAmdOnlyOnTheseModels) {
  // The Table-I Xeons are Sandy-Bridge era: no AVX2/FMA/SHA.
  const auto intel = IsaSpecification::generate(CpuModel::kIntelXeonE5_1650);
  for (const auto& v : intel.variants()) {
    if (v.extension == Extension::kAvx2 || v.extension == Extension::kFma ||
        v.extension == Extension::kSha) {
      EXPECT_FALSE(v.legal()) << v.mnemonic;
    }
  }
}

TEST(Spec, VendorAndFamilyHelpers) {
  EXPECT_EQ(vendor_of(CpuModel::kIntelXeonE5_1650), Vendor::kIntel);
  EXPECT_EQ(vendor_of(CpuModel::kAmdEpyc7313P), Vendor::kAmd);
  EXPECT_EQ(family_of(CpuModel::kIntelXeonE5_1650),
            family_of(CpuModel::kIntelXeonE5_4617));
  EXPECT_NE(family_of(CpuModel::kIntelXeonE5_1650),
            family_of(CpuModel::kAmdEpyc7252));
}

TEST(Spec, ToStringCoversAllEnums) {
  for (int i = 0; i < static_cast<int>(Extension::kCount); ++i) {
    EXPECT_NE(to_string(static_cast<Extension>(i)), "?");
  }
  for (int i = 0; i < static_cast<int>(Category::kCount); ++i) {
    EXPECT_NE(to_string(static_cast<Category>(i)), "?");
  }
  for (std::size_t i = 0; i < kNumInstructionClasses; ++i) {
    EXPECT_NE(to_string(static_cast<InstructionClass>(i)), "?");
  }
}

TEST(Spec, ClflushVariantExistsAndIsLegal) {
  const auto spec = IsaSpecification::generate(CpuModel::kAmdEpyc7252);
  bool found = false;
  for (const auto& v : spec.variants()) {
    if (v.iclass == InstructionClass::kCacheFlush && v.legal()) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace aegis::isa
