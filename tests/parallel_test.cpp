// Differential proof of the parallel campaign engine: serial (1 thread) and
// parallel (2/4/8 thread) runs must produce element-wise identical results,
// because every shard derives its RNG stream and simulator state from the
// shard index alone (util::split_mix64(seed, shard)) — never from thread
// identity or scheduling order. Plus golden-value regression tests pinning
// key fuzzer/profiler outputs at fixed seeds so refactors can't silently
// drift, and work-stealing thread-pool unit coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/config.hpp"
#include "fuzzer/fuzzer.hpp"
#include "fuzzer/parallel_campaign.hpp"
#include "profiler/profiler.hpp"
#include "util/thread_pool.hpp"
#include "workload/website.hpp"

namespace aegis {
namespace {

using fuzzer::EventFuzzer;
using fuzzer::FuzzerConfig;
using fuzzer::FuzzResult;

// Golden values pinned at seed 7 with Fixture::small_config on the AMD
// substrate (events() order: the 4 kAmdAttackEvents, then
// RETIRED_BRANCH_INSTRUCTIONS, RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR).
constexpr std::size_t kGoldenCleaned = 3407;  // the paper's AMD legal count
// 2 event groups x 24 resets x 24 triggers (class-stratified sampling
// rounds the requested 20 up to one pick per instruction class).
constexpr std::size_t kGoldenExecuted = 1152;
constexpr std::size_t kGoldenCandidates[6] = {576, 324, 232, 29, 92, 218};
constexpr std::size_t kGoldenConfirmed[6] = {338, 133, 77, 6, 48, 120};
constexpr std::uint32_t kGoldenTopRanked[3] = {1770, 1764, 1765};

// ---------------------------------------------------------------------------
// FuzzResult equality (element-wise; timing excluded — wall clock is the one
// field allowed to differ between thread counts).

void expect_gadgets_equal(const std::vector<fuzzer::ConfirmedGadget>& a,
                          const std::vector<fuzzer::ConfirmedGadget>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gadget.reset_uid, b[i].gadget.reset_uid) << what << " " << i;
    EXPECT_EQ(a[i].gadget.trigger_uid, b[i].gadget.trigger_uid)
        << what << " " << i;
    EXPECT_EQ(a[i].event_id, b[i].event_id) << what << " " << i;
    // Bit-identical, not approximately equal: both runs must execute the
    // exact same double-arithmetic sequence.
    EXPECT_EQ(a[i].median_delta, b[i].median_delta) << what << " " << i;
  }
}

void expect_results_equal(const FuzzResult& a, const FuzzResult& b) {
  EXPECT_EQ(a.total_gadget_space, b.total_gadget_space);
  EXPECT_EQ(a.executed_gadgets, b.executed_gadgets);
  EXPECT_EQ(a.cleaned_instructions, b.cleaned_instructions);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t e = 0; e < a.reports.size(); ++e) {
    const auto& ra = a.reports[e];
    const auto& rb = b.reports[e];
    EXPECT_EQ(ra.event_id, rb.event_id);
    EXPECT_EQ(ra.candidates, rb.candidates);
    expect_gadgets_equal(ra.confirmed, rb.confirmed, "confirmed");
    expect_gadgets_equal(ra.representatives, rb.representatives,
                         "representatives");
    EXPECT_EQ(ra.best.gadget.reset_uid, rb.best.gadget.reset_uid);
    EXPECT_EQ(ra.best.gadget.trigger_uid, rb.best.gadget.trigger_uid);
    EXPECT_EQ(ra.best.median_delta, rb.best.median_delta);
  }
}

struct Fixture {
  pmu::EventDatabase db =
      pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  /// Six events -> two counter groups, so the group dimension of the shard
  /// grid is exercised too.
  std::vector<std::uint32_t> events() const {
    std::vector<std::uint32_t> ids;
    for (auto name : pmu::kAmdAttackEvents) ids.push_back(*db.find(name));
    ids.push_back(*db.find("RETIRED_BRANCH_INSTRUCTIONS"));
    ids.push_back(*db.find("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR"));
    return ids;
  }

  FuzzerConfig small_config(std::size_t num_threads) const {
    FuzzerConfig config;
    config.seed = 7;
    config.reset_sample = 20;
    config.trigger_sample = 20;
    config.repeats = 4;
    config.num_threads = num_threads;
    return config;
  }
};

// ---------------------------------------------------------------------------
// Differential suite: serial vs parallel.

TEST(ParallelDifferential, FuzzResultIdenticalAcrossThreadCounts) {
  Fixture f;
  EventFuzzer serial(f.db, f.spec, f.small_config(1));
  const FuzzResult baseline = serial.run(f.events());
  // The baseline must be non-trivial, otherwise equality proves nothing.
  std::size_t total_confirmed = 0;
  for (const auto& r : baseline.reports) total_confirmed += r.confirmed.size();
  ASSERT_GT(total_confirmed, 0u);

  for (std::size_t threads : {2u, 4u, 8u}) {
    EventFuzzer parallel(f.db, f.spec, f.small_config(threads));
    const FuzzResult result = parallel.run(f.events());
    SCOPED_TRACE(testing::Message() << "num_threads=" << threads);
    expect_results_equal(baseline, result);
  }
}

TEST(ParallelDifferential, CleanupIdenticalAcrossThreadCounts) {
  Fixture f;
  EventFuzzer serial(f.db, f.spec, f.small_config(1));
  const std::vector<std::uint32_t> baseline = serial.cleanup();
  EXPECT_EQ(baseline.size(), f.spec.legal_count());
  for (std::size_t threads : {3u, 8u}) {
    EventFuzzer parallel(f.db, f.spec, f.small_config(threads));
    EXPECT_EQ(parallel.cleanup(), baseline) << "num_threads=" << threads;
  }
}

TEST(ParallelDifferential, ProfilerWarmupIdenticalAcrossThreadCounts) {
  Fixture f;
  profiler::ProfilerConfig config;
  config.seed = 7;
  config.warmup_slices = 30;
  config.warmup_repeats = 2;
  const workload::WebsiteWorkload app(0, config.warmup_slices);

  config.num_threads = 1;
  const profiler::WarmupReport baseline =
      profiler::ApplicationProfiler(f.db, config).warmup(app);
  ASSERT_GT(baseline.surviving.size(), 0u);

  for (std::size_t threads : {2u, 4u, 8u}) {
    config.num_threads = threads;
    const profiler::WarmupReport report =
        profiler::ApplicationProfiler(f.db, config).warmup(app);
    EXPECT_EQ(report.surviving, baseline.surviving)
        << "num_threads=" << threads;
    EXPECT_EQ(report.after_by_type, baseline.after_by_type);
    EXPECT_EQ(report.total_events, baseline.total_events);
  }
}

TEST(ParallelDifferential, ProfilerRankIdenticalAcrossThreadCounts) {
  Fixture f;
  profiler::ProfilerConfig config;
  config.seed = 7;
  config.ranking_runs_per_secret = 3;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::uint32_t site = 0; site < 3; ++site) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(site, 40));
  }
  // Six events -> two ranking groups.
  const std::vector<std::uint32_t> event_ids = Fixture{}.events();

  config.num_threads = 1;
  const std::vector<profiler::EventRank> baseline =
      profiler::ApplicationProfiler(f.db, config).rank(secrets, event_ids);
  ASSERT_EQ(baseline.size(), event_ids.size());

  for (std::size_t threads : {2u, 8u}) {
    config.num_threads = threads;
    const std::vector<profiler::EventRank> ranks =
        profiler::ApplicationProfiler(f.db, config).rank(secrets, event_ids);
    ASSERT_EQ(ranks.size(), baseline.size()) << "num_threads=" << threads;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i].event_id, baseline[i].event_id) << i;
      EXPECT_EQ(ranks[i].mutual_information, baseline[i].mutual_information)
          << i;
    }
  }
}

TEST(ParallelDifferential, OfflineConfigThreadKnobReachesEveryStage) {
  core::OfflineConfig config = core::make_quick_offline_config(7, 3);
  EXPECT_EQ(config.profiler.num_threads, 3u);
  EXPECT_EQ(config.fuzzer.num_threads, 3u);
  config.set_num_threads(0);
  EXPECT_EQ(config.fuzzer.num_threads, 0u);
}

// ---------------------------------------------------------------------------
// Golden regression: key outputs pinned at seed 7 (see EXPERIMENTS.md).
// These values were produced by the 1-thread run and — by the differential
// suite above — hold for every thread count. If an intentional change to
// the fuzzing pipeline shifts them, re-pin and note it in EXPERIMENTS.md.

TEST(GoldenFuzzer, Seed7PinnedCounts) {
  Fixture f;
  EventFuzzer fuzzer(f.db, f.spec, f.small_config(0));
  const FuzzResult result = fuzzer.run(f.events());
  EXPECT_EQ(result.cleaned_instructions, kGoldenCleaned);
  EXPECT_EQ(result.total_gadget_space, kGoldenCleaned * kGoldenCleaned);
  EXPECT_EQ(result.executed_gadgets, kGoldenExecuted);
  ASSERT_EQ(result.reports.size(), 6u);
  for (std::size_t e = 0; e < result.reports.size(); ++e) {
    EXPECT_EQ(result.reports[e].candidates, kGoldenCandidates[e]) << e;
    EXPECT_EQ(result.reports[e].confirmed.size(), kGoldenConfirmed[e]) << e;
  }
}

TEST(GoldenProfiler, Seed7PinnedTopRankedEvents) {
  Fixture f;
  profiler::ProfilerConfig config;
  config.seed = 7;
  config.ranking_runs_per_secret = 3;
  config.num_threads = 0;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::uint32_t site = 0; site < 3; ++site) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(site, 40));
  }
  const std::vector<profiler::EventRank> ranks =
      profiler::ApplicationProfiler(f.db, config).rank(secrets, f.events());
  ASSERT_EQ(ranks.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ranks[i].event_id, kGoldenTopRanked[i]) << i;
  }
  EXPECT_GT(ranks.front().mutual_information, 0.0);
}

// ---------------------------------------------------------------------------
// Work-stealing thread pool.

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesFewerIndicesThanWorkers) {
  util::ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ReusableAcrossJobs) {
  util::ThreadPool pool(3);
  for (int job = 0; job < 5; ++job) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 64u);
  }
}

TEST(ThreadPool, SurvivesRapidRedispatchWhenOversubscribed) {
  // Regression: with more workers than cores, a worker can sleep through an
  // entire job and wake only after the next parallel_for has re-seeded the
  // shards. It must not claim the new indices under the finished epoch's
  // (already cleared) body pointer. Tight back-to-back dispatch on an
  // oversubscribed pool reproduced the crash reliably before the epoch tags.
  util::ThreadPool pool(8);
  for (int job = 0; job < 20000; ++job) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64u) << "job " << job;
  }
}

TEST(ThreadPool, StealsFromUnevenShards) {
  // Front-loaded cost: worker 0's initial slice holds all the slow tasks;
  // stealing must still complete everything (and the completed-count
  // invariant catches double-execution).
  util::ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  pool.parallel_for(32, [&](std::size_t i) {
    if (i < 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32u);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i == 13) throw std::runtime_error("boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // All other indices still ran: a failed shard must not wedge the job.
  EXPECT_EQ(executed.load(), 100u);
}

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_EQ(util::ThreadPool::resolve(5), 5u);
  EXPECT_GE(util::ThreadPool::resolve(0), 1u);
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), util::ThreadPool::resolve(0));
}

// ---------------------------------------------------------------------------
// Speedup: only meaningful with real cores. On a single-core host the
// engine still must be correct (proven above); the wall-clock claim is
// checked where hardware allows it, and by bench_table3_fuzzing
// (AEGIS_THREAD_SWEEP=1) elsewhere.

TEST(ParallelSpeedup, GenerationScalesWithFourCores) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  Fixture f;
  FuzzerConfig config = f.small_config(1);
  config.reset_sample = 32;
  config.trigger_sample = 32;
  const std::vector<std::uint32_t> events = f.events();

  auto wall = [&](std::size_t threads) {
    config.num_threads = threads;
    EventFuzzer fuzzer(f.db, f.spec, config);
    const auto t0 = std::chrono::steady_clock::now();
    const FuzzResult r = fuzzer.run(events);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GT(r.executed_gadgets, 0u);
    return seconds;
  };
  const double serial = wall(1);
  const double parallel = wall(4);
  // The acceptance bar is 2x at 4 threads; assert 1.7x to keep headroom
  // against scheduler noise on shared CI machines.
  EXPECT_LT(parallel, serial / 1.7)
      << "serial " << serial << "s vs 4-thread " << parallel << "s";
}

}  // namespace
}  // namespace aegis
