// Anomaly-layer tests: BudgetForecaster least-squares ETA (exact on linear
// burn, monotone under faster spend, reset semantics, horizon alerts) and
// AttackProbabilityMonitor calibration — the logistic score must separate
// the seceval frontier attacker behaviours (static/adaptive/fusion/
// stepping) from benign readers — plus the BudgetGovernor's proactive
// degradation wired through the forecaster.
#include "telemetry/anomaly.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "service/budget_governor.hpp"
#include "telemetry/registry.hpp"

namespace aegis::telemetry {
namespace {

BudgetEvent make_event(std::uint64_t tenant, std::uint64_t t_ns,
                       double epsilon_after, double cap,
                       std::string outcome = "admit") {
  BudgetEvent e;
  e.tenant_id = tenant;
  e.t_ns = t_ns;
  e.epsilon_after = epsilon_after;
  e.epsilon_cap = cap;
  e.outcome = std::move(outcome);
  return e;
}

// ---------------------------------------------------------------------------
// BudgetForecaster

TEST(BudgetForecaster, InvalidUntilMinPoints) {
  Registry reg;
  ForecasterConfig cfg;
  cfg.min_points = 3;
  BudgetForecaster fc(cfg, &reg);
  fc.ingest(make_event(1, 1000, 0.1, 8.0));
  fc.ingest(make_event(1, 2000, 0.2, 8.0));
  EXPECT_FALSE(fc.forecast(1).valid);
  fc.ingest(make_event(1, 3000, 0.3, 8.0));
  EXPECT_TRUE(fc.forecast(1).valid);
}

TEST(BudgetForecaster, LinearBurnForecastsTheExactEta) {
  Registry reg;
  BudgetForecaster fc({}, &reg);
  // ε grows 0.01 per 1ms: slope 1e-8 /ns. Last point ε=0.59, cap 8.0.
  for (std::uint64_t i = 0; i < 10; ++i) {
    fc.ingest(make_event(7, i * 1'000'000, 0.5 + 0.01 * static_cast<double>(i),
                         8.0));
  }
  const BudgetForecast f = fc.forecast(7);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.slope_eps_per_ns, 1e-8, 1e-12);
  EXPECT_NEAR(f.eta_ns, (8.0 - 0.59) / 1e-8, 1.0);
  EXPECT_DOUBLE_EQ(f.epsilon, 0.59);
  EXPECT_DOUBLE_EQ(f.cap, 8.0);
}

TEST(BudgetForecaster, EtaIsMonotoneUnderFasterSpend) {
  // Property: same cap, same observation count, strictly faster ε burn ->
  // strictly smaller exhaustion ETA. One tenant per spend rate.
  Registry reg;
  BudgetForecaster fc({}, &reg);
  std::vector<double> etas;
  for (std::uint64_t rate = 1; rate <= 8; ++rate) {
    const double step = 0.005 * static_cast<double>(rate);
    for (std::uint64_t i = 0; i < 12; ++i) {
      fc.ingest(make_event(rate, i * 500'000, step * static_cast<double>(i),
                           8.0));
    }
    const BudgetForecast f = fc.forecast(rate);
    ASSERT_TRUE(f.valid) << "rate " << rate;
    etas.push_back(f.eta_ns);
  }
  for (std::size_t i = 1; i < etas.size(); ++i) {
    EXPECT_LT(etas[i], etas[i - 1])
        << "faster spend must not forecast a later exhaustion";
  }
}

TEST(BudgetForecaster, FlatSpendForecastsInfinity) {
  Registry reg;
  BudgetForecaster fc({}, &reg);
  for (std::uint64_t i = 0; i < 6; ++i) {
    fc.ingest(make_event(3, i * 1000, 1.5, 8.0));  // no burn
  }
  const BudgetForecast f = fc.forecast(3);
  EXPECT_TRUE(std::isinf(f.eta_ns));
}

TEST(BudgetForecaster, ResetClearsTheTenantWindow) {
  Registry reg;
  BudgetForecaster fc({}, &reg);
  for (std::uint64_t i = 0; i < 6; ++i) {
    fc.ingest(make_event(9, i * 1000, 0.1 * static_cast<double>(i), 8.0));
  }
  ASSERT_TRUE(fc.forecast(9).valid);
  fc.ingest(make_event(9, 7000, 0.0, 8.0, "reset"));
  EXPECT_FALSE(fc.forecast(9).valid)
      << "a fresh grant must not inherit yesterday's slope";
}

TEST(BudgetForecaster, HorizonAlertEmitsCounterAndWideEvent) {
  Registry reg;
  ForecasterConfig cfg;
  cfg.alert_horizon_ns = std::numeric_limits<std::uint64_t>::max();
  BudgetForecaster fc(cfg, &reg);
  for (std::uint64_t i = 0; i < 5; ++i) {
    fc.ingest(make_event(4, i * 1000, 0.5 * static_cast<double>(i), 4.0));
  }
  EXPECT_GE(fc.alerts(), 1u);
  bool saw_alert = false;
  for (const DrainedEvent& ev : reg.recorder().drain()) {
    if (ev.type == static_cast<std::uint16_t>(WideEventType::kAlert) &&
        ev.a == static_cast<std::uint64_t>(AlertKind::kBudgetExhaustionSoon)) {
      saw_alert = true;
      EXPECT_EQ(ev.tenant, 4u);
    }
  }
  EXPECT_TRUE(saw_alert);
}

// ---------------------------------------------------------------------------
// Proactive degradation through the governor

std::vector<service::AdmissionDecision> drive(service::BudgetGovernor& gov,
                                              int rounds) {
  std::vector<service::AdmissionDecision> out;
  for (int i = 0; i < rounds; ++i) {
    out.push_back(gov.request_window(/*tenant_id=*/1, /*slices=*/64,
                                     /*per_slice_epsilon=*/0.02));
  }
  return out;
}

TEST(ProactiveDegradation, ForecasterHintDegradesBeforeTheAccountantWould) {
  Registry base_reg;
  service::GovernorConfig base_cfg;
  base_cfg.telemetry = &base_reg;
  service::BudgetGovernor baseline(base_cfg);

  Registry reg;
  BudgetForecaster fc({}, &reg);
  service::GovernorConfig cfg;
  cfg.telemetry = &reg;
  cfg.forecaster = &fc;
  cfg.proactive_horizon_ns = std::numeric_limits<std::uint64_t>::max() / 2;
  service::BudgetGovernor proactive(cfg);

  const auto base_decisions = drive(baseline, 6);
  const auto pro_decisions = drive(proactive, 6);

  // The forecaster needs min_points (3) decisions before it is valid; the
  // first decisions are identical to the baseline.
  EXPECT_EQ(pro_decisions[0].outcome, base_decisions[0].outcome);
  EXPECT_EQ(pro_decisions[0].granularity, base_decisions[0].granularity);

  // Once the burn slope is established, the huge horizon forces the ladder
  // to start at 2 while the baseline still happily admits at 1.
  EXPECT_EQ(base_decisions[5].outcome, service::Admission::kAdmit);
  EXPECT_EQ(base_decisions[5].granularity, 1u);
  EXPECT_EQ(pro_decisions[5].outcome, service::Admission::kDegrade);
  EXPECT_GE(pro_decisions[5].granularity, 2u);
}

TEST(ProactiveDegradation, ZeroHorizonLeavesAdmissionByteIdentical) {
  Registry base_reg;
  service::GovernorConfig base_cfg;
  base_cfg.telemetry = &base_reg;
  service::BudgetGovernor baseline(base_cfg);

  Registry reg;
  BudgetForecaster fc({}, &reg);
  service::GovernorConfig cfg;
  cfg.telemetry = &reg;
  cfg.forecaster = &fc;  // fed but never consulted: horizon stays 0
  service::BudgetGovernor shadowed(cfg);

  const auto a = drive(baseline, 8);
  const auto b = drive(shadowed, 8);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "decision " << i;
    EXPECT_EQ(a[i].granularity, b[i].granularity) << "decision " << i;
    EXPECT_EQ(a[i].releases, b[i].releases) << "decision " << i;
    EXPECT_DOUBLE_EQ(a[i].epsilon_after, b[i].epsilon_after)
        << "decision " << i;
  }
  EXPECT_TRUE(fc.forecast(1).valid) << "the shadow forecaster was fed";
}

// ---------------------------------------------------------------------------
// AttackProbabilityMonitor calibration

const std::vector<std::uint32_t> kAttackSet = {11, 12, 13, 14};

SessionFeatures features(std::vector<std::uint32_t> monitored, double cv,
                         double stepped, std::uint64_t tenant = 1) {
  SessionFeatures f;
  f.tenant_id = tenant;
  f.monitored_events = std::move(monitored);
  f.read_gap_cv = cv;
  f.stepped_fraction = stepped;
  f.slices = 60;
  return f;
}

TEST(AttackMonitor, SeparatesFrontierAttackersFromBenignReaders) {
  Registry reg;
  AttackMonitorConfig cfg;
  cfg.attack_events = kAttackSet;
  AttackProbabilityMonitor mon(cfg, &reg);

  // The four seceval frontier attacker behaviours: all watch the vendor
  // attack set with metronomic cadence; the stepping attacker adds
  // SEV-Step-style single-stepping.
  const SessionFeatures fr_static = features(kAttackSet, 0.0, 0.0);
  const SessionFeatures fr_adaptive =
      features({11, 12, 13, 99}, 0.3, 0.0);
  const SessionFeatures fr_fusion = features(kAttackSet, 0.5, 0.0);
  const SessionFeatures fr_stepping = features(kAttackSet, 0.2, 1.0);
  for (const SessionFeatures& f :
       {fr_static, fr_adaptive, fr_fusion, fr_stepping}) {
    const AttackScore s = mon.score(f);
    EXPECT_GE(s.probability, 0.6) << "attacker profile under-scored";
    EXPECT_TRUE(s.alert);
  }

  // Benign readers: bursty ad-hoc dashboards with mostly non-attack events.
  const SessionFeatures benign_mixed = features({11, 20, 21, 22}, 2.0, 0.0);
  const SessionFeatures benign_devops = features({20, 21}, 1.0, 0.0);
  for (const SessionFeatures& f : {benign_mixed, benign_devops}) {
    const AttackScore s = mon.score(f);
    EXPECT_LT(s.probability, 0.25) << "benign profile over-scored";
    EXPECT_FALSE(s.alert);
  }
}

TEST(AttackMonitor, IngestPublishesGaugeCounterAndAlertEvent) {
  Registry reg;
  AttackMonitorConfig cfg;
  cfg.attack_events = kAttackSet;
  AttackProbabilityMonitor mon(cfg, &reg);

  const AttackScore s = mon.ingest(features(kAttackSet, 0.0, 1.0, /*tenant=*/42));
  EXPECT_TRUE(s.alert);
  EXPECT_EQ(mon.alerts(), 1u);

  bool saw_gauge = false;
  for (const auto& g : reg.metrics().snapshot().gauges) {
    if (g.name == "aegis_attack_probability{tenant=\"42\"}") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, s.probability);
    }
  }
  EXPECT_TRUE(saw_gauge);

  bool saw_alert = false;
  for (const DrainedEvent& ev : reg.recorder().drain()) {
    if (ev.type == static_cast<std::uint16_t>(WideEventType::kAlert) &&
        ev.a == static_cast<std::uint64_t>(AlertKind::kAttackSuspected)) {
      saw_alert = true;
      EXPECT_EQ(ev.tenant, 42u);
    }
  }
  EXPECT_TRUE(saw_alert);
}

TEST(AttackMonitor, SetAttackEventsSwapsTheLiveSet) {
  Registry reg;
  AttackProbabilityMonitor mon({}, &reg);  // empty construction-time set
  const SessionFeatures f = features(kAttackSet, 0.0, 0.0);
  const double before = mon.score(f).probability;

  mon.set_attack_events(kAttackSet);
  const double after = mon.score(f).probability;
  EXPECT_GT(after, before);
  EXPECT_EQ(mon.attack_events(), kAttackSet);
  EXPECT_TRUE(mon.config().attack_events.empty())
      << "config() reflects construction time, attack_events() the live set";
}

}  // namespace
}  // namespace aegis::telemetry
