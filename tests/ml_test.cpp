#include <gtest/gtest.h>

#include <cmath>

#include "ml/gaussian_nb.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/sequence_model.hpp"
#include "util/rng.hpp"

namespace aegis::ml {
namespace {

/// Gaussian blobs: `classes` clusters around distinct centres.
void make_blobs(std::size_t classes, std::size_t per_class, double spread,
                FeatureMatrix& X, Labels& y, std::uint64_t seed) {
  util::Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    const double cx = std::cos(2.0 * 3.14159 * c / classes) * 5.0;
    const double cy = std::sin(2.0 * 3.14159 * c / classes) * 5.0;
    for (std::size_t i = 0; i < per_class; ++i) {
      X.push_back({rng.normal(cx, spread), rng.normal(cy, spread)});
      y.push_back(static_cast<int>(c));
    }
  }
}

TEST(Softmax, NormalizesAndOrders) {
  std::vector<double> logits{1.0, 3.0, 2.0};
  softmax(logits);
  double sum = 0.0;
  for (double p : logits) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(logits[1], logits[2]);
  EXPECT_GT(logits[2], logits[0]);
}

TEST(Softmax, StableForLargeLogits) {
  std::vector<double> logits{1000.0, 999.0};
  softmax(logits);
  EXPECT_TRUE(std::isfinite(logits[0]));
  EXPECT_GT(logits[0], logits[1]);
}

class MlpBlobsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MlpBlobsTest, LearnsSeparableBlobs) {
  const std::size_t classes = GetParam();
  FeatureMatrix X, Xv;
  Labels y, yv;
  make_blobs(classes, 60, 0.6, X, y, 1);
  make_blobs(classes, 20, 0.6, Xv, yv, 2);
  MlpConfig config;
  config.epochs = 40;
  config.hidden = {16};
  MlpClassifier mlp(2, classes, config);
  const auto history = mlp.fit(X, y, Xv, yv);
  ASSERT_EQ(history.size(), 40u);
  EXPECT_GT(history.back().val_accuracy, 0.9);
  // Loss decreases over training.
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, MlpBlobsTest,
                         ::testing::Values(2u, 4u, 8u));

TEST(Mlp, RandomLabelsStayNearChance) {
  util::Rng rng(3);
  FeatureMatrix X, Xv;
  Labels y, yv;
  for (int i = 0; i < 300; ++i) {
    X.push_back({rng.normal(), rng.normal()});
    y.push_back(static_cast<int>(rng.uniform_index(4)));
  }
  for (int i = 0; i < 100; ++i) {
    Xv.push_back({rng.normal(), rng.normal()});
    yv.push_back(static_cast<int>(rng.uniform_index(4)));
  }
  MlpConfig config;
  config.epochs = 20;
  MlpClassifier mlp(2, 4, config);
  const auto history = mlp.fit(X, y, Xv, yv);
  EXPECT_LT(history.back().val_accuracy, 0.45);
}

TEST(Mlp, PredictProbaSumsToOne) {
  MlpClassifier mlp(3, 5, MlpConfig{});
  const auto probs = mlp.predict_proba({0.1, -0.2, 0.4});
  ASSERT_EQ(probs.size(), 5u);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, DeterministicGivenSeed) {
  FeatureMatrix X;
  Labels y;
  make_blobs(3, 30, 0.5, X, y, 4);
  MlpConfig config;
  config.epochs = 5;
  config.seed = 77;
  MlpClassifier a(2, 3, config), b(2, 3, config);
  const auto ha = a.fit(X, y, {}, {});
  const auto hb = b.fit(X, y, {}, {});
  EXPECT_DOUBLE_EQ(ha.back().train_loss, hb.back().train_loss);
}

TEST(Mlp, FitRejectsSizeMismatch) {
  MlpClassifier mlp(2, 2, MlpConfig{});
  EXPECT_THROW(mlp.fit({{1.0, 2.0}}, {0, 1}, {}, {}), std::invalid_argument);
}

TEST(Mlp, InputNoiseRegularizerStillLearns) {
  FeatureMatrix X, Xv;
  Labels y, yv;
  make_blobs(3, 60, 0.4, X, y, 5);
  make_blobs(3, 20, 0.4, Xv, yv, 6);
  MlpConfig config;
  config.epochs = 30;
  config.input_noise = 0.3;
  MlpClassifier mlp(2, 3, config);
  const auto history = mlp.fit(X, y, Xv, yv);
  EXPECT_GT(history.back().val_accuracy, 0.85);
}

TEST(GaussianNb, ClassifiesBlobs) {
  FeatureMatrix X, Xv;
  Labels y, yv;
  make_blobs(4, 60, 0.5, X, y, 7);
  make_blobs(4, 20, 0.5, Xv, yv, 8);
  GaussianNbClassifier nb;
  nb.fit(X, y, 4);
  EXPECT_GT(nb.accuracy(Xv, yv), 0.9);
}

TEST(GaussianNb, RespectsPriors) {
  // All training mass in class 1 at the origin: prediction must be 1.
  FeatureMatrix X = {{0.0, 0.0}, {0.1, 0.1}, {-0.1, 0.0}};
  Labels y = {1, 1, 1};
  GaussianNbClassifier nb;
  nb.fit(X, y, 3);
  EXPECT_EQ(nb.predict({0.05, 0.05}), 1);
}

TEST(GaussianNb, ThrowsOnBadInput) {
  GaussianNbClassifier nb;
  EXPECT_THROW(nb.fit({}, {}, 2), std::invalid_argument);
}

TEST(Knn, ClassifiesBlobs) {
  FeatureMatrix X, Xv;
  Labels y, yv;
  make_blobs(4, 50, 0.5, X, y, 9);
  make_blobs(4, 20, 0.5, Xv, yv, 10);
  KnnClassifier knn(5);
  knn.fit(std::move(X), std::move(y), 4);
  EXPECT_GT(knn.accuracy(Xv, yv), 0.9);
}

TEST(Knn, KOneMatchesNearestTrainingPoint) {
  KnnClassifier knn(1);
  knn.fit({{0.0}, {10.0}}, {0, 1}, 2);
  EXPECT_EQ(knn.predict({1.0}), 0);
  EXPECT_EQ(knn.predict({9.0}), 1);
}

TEST(Metrics, AccuracyScore) {
  std::vector<int> truth{1, 2, 3, 4};
  std::vector<int> pred{1, 2, 0, 4};
  EXPECT_DOUBLE_EQ(accuracy_score(truth, pred), 0.75);
  const std::vector<int> short_pred{1};
  EXPECT_THROW((void)accuracy_score(truth, short_pred), std::invalid_argument);
}

TEST(Metrics, EditDistanceCases) {
  EXPECT_EQ(edit_distance(std::vector<int>{}, std::vector<int>{}), 0u);
  EXPECT_EQ(edit_distance(std::vector<int>{1, 2, 3}, std::vector<int>{1, 2, 3}), 0u);
  EXPECT_EQ(edit_distance(std::vector<int>{1, 2, 3}, std::vector<int>{1, 3}), 1u);
  EXPECT_EQ(edit_distance(std::vector<int>{1, 2}, std::vector<int>{3, 4}), 2u);
  EXPECT_EQ(edit_distance(std::vector<int>{}, std::vector<int>{1, 2}), 2u);
}

TEST(Metrics, SequenceMatchAccuracy) {
  EXPECT_DOUBLE_EQ(
      sequence_match_accuracy(std::vector<int>{1, 2, 3, 4}, std::vector<int>{1, 2, 3, 4}),
      1.0);
  EXPECT_DOUBLE_EQ(
      sequence_match_accuracy(std::vector<int>{1, 2, 3, 4}, std::vector<int>{1, 2, 3, 5}),
      0.75);
  EXPECT_DOUBLE_EQ(sequence_match_accuracy(std::vector<int>{}, std::vector<int>{}), 1.0);
}

TEST(Metrics, CtcCollapse) {
  const int blank = 9;
  // Repeated labels merge; blank separates repeats; blanks vanish.
  EXPECT_EQ(ctc_collapse(std::vector<int>{1, 1, 9, 1, 2, 2, 9, 9, 3}, blank),
            (std::vector<int>{1, 1, 2, 3}));
  EXPECT_EQ(ctc_collapse(std::vector<int>{9, 9, 9}, blank), (std::vector<int>{}));
  EXPECT_EQ(ctc_collapse(std::vector<int>{}, blank), (std::vector<int>{}));
}

/// Builds synthetic frame sequences: each label paints a distinct constant
/// pattern over the frame features, with short blank gaps.
FrameSequence make_sequence(const std::vector<int>& tokens, int blank,
                            util::Rng& rng) {
  FrameSequence seq;
  for (int token : tokens) {
    const std::size_t dur = 2 + rng.uniform_index(3);
    for (std::size_t d = 0; d < dur; ++d) {
      seq.frames.push_back({static_cast<double>(token) + rng.normal(0.0, 0.08),
                            static_cast<double>(token * token) / 4.0 +
                                rng.normal(0.0, 0.08)});
      seq.labels.push_back(token);
    }
    seq.frames.push_back({rng.normal(-2.0, 0.08), rng.normal(-2.0, 0.08)});
    seq.labels.push_back(blank);
  }
  return seq;
}

TEST(SequenceModel, LearnsAndDecodesTokenSequences) {
  util::Rng rng(11);
  const int blank = 4;
  SequenceModelConfig config;
  config.blank_label = blank;
  config.context = 1;
  config.mlp.epochs = 25;
  config.mlp.hidden = {24};
  FrameSequenceModel model(config);

  std::vector<FrameSequence> train, val;
  std::vector<std::vector<int>> val_refs;
  for (int i = 0; i < 40; ++i) {
    std::vector<int> tokens;
    for (int k = 0; k < 5; ++k) {
      tokens.push_back(static_cast<int>(rng.uniform_index(4)));
    }
    if (i < 32) {
      train.push_back(make_sequence(tokens, blank, rng));
    } else {
      val.push_back(make_sequence(tokens, blank, rng));
      val_refs.push_back(tokens);
    }
  }
  const auto history = model.fit(train, val, blank + 1);
  EXPECT_GT(history.back().val_accuracy, 0.9);

  std::vector<FrameSequence> test_seqs;
  for (auto& seq : val) {
    FrameSequence s;
    s.frames = seq.frames;
    test_seqs.push_back(std::move(s));
  }
  EXPECT_GT(model.evaluate(test_seqs, val_refs), 0.85);
}

TEST(SequenceModel, RepeatedTokensSurviveDecoding) {
  util::Rng rng(12);
  const int blank = 3;
  SequenceModelConfig config;
  config.blank_label = blank;
  config.context = 1;
  config.mlp.epochs = 25;
  config.mlp.hidden = {16};
  FrameSequenceModel model(config);
  std::vector<FrameSequence> train;
  for (int i = 0; i < 30; ++i) {
    train.push_back(make_sequence({1, 1, 2}, blank, rng));
  }
  (void)model.fit(train, {}, blank + 1);
  const FrameSequence probe = make_sequence({1, 1, 2}, blank, rng);
  FrameSequence unlabeled;
  unlabeled.frames = probe.frames;
  const auto decoded = model.decode_beam(unlabeled);
  EXPECT_EQ(decoded, (std::vector<int>{1, 1, 2}));
}

TEST(SequenceModel, GreedyAndBeamAgreeOnCleanData) {
  util::Rng rng(13);
  const int blank = 4;
  SequenceModelConfig config;
  config.blank_label = blank;
  config.mlp.epochs = 20;
  config.mlp.hidden = {16};
  FrameSequenceModel model(config);
  std::vector<FrameSequence> train;
  for (int i = 0; i < 30; ++i) {
    train.push_back(make_sequence({0, 2, 1, 3}, blank, rng));
  }
  (void)model.fit(train, {}, blank + 1);
  FrameSequence probe;
  probe.frames = make_sequence({0, 2, 1, 3}, blank, rng).frames;
  EXPECT_EQ(model.decode_greedy(probe), model.decode_beam(probe));
}

TEST(SequenceModel, ThrowsBeforeTraining) {
  FrameSequenceModel model(SequenceModelConfig{});
  FrameSequence seq;
  seq.frames = {{0.0}};
  EXPECT_THROW((void)model.decode_greedy(seq), std::logic_error);
  EXPECT_THROW((void)model.fit({}, {}, 2), std::invalid_argument);
}

TEST(SequenceModel, RejectsUnalignedLabels) {
  FrameSequenceModel model(SequenceModelConfig{});
  FrameSequence bad;
  bad.frames = {{0.0}, {1.0}};
  bad.labels = {0};
  EXPECT_THROW((void)model.fit({bad}, {}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace aegis::ml
