#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "attack/ksa.hpp"
#include "attack/retrainable.hpp"
#include "seceval/seceval.hpp"

namespace aegis::seceval {
namespace {

using A = AttackerKind;
using D = DefenseKind;

/// Scale small enough for unit tests; large enough that the Fig. 9b shape
/// (Laplace folds to the adaptive attacker, d* holds) still separates.
HarnessConfig tiny_config() {
  HarnessConfig config;
  config.scale.sites = 4;
  config.scale.traces_per_secret = 5;
  config.scale.slices = 60;
  config.scale.epochs = 6;
  config.scale.visits_per_secret = 2;
  config.num_threads = 2;
  return config;
}

const SecurityHarness& tiny_harness() {
  static const SecurityHarness harness(tiny_config());
  return harness;
}

std::vector<std::uint32_t> attack_events(const SecurityHarness& h) {
  std::vector<std::uint32_t> ids;
  for (auto name : pmu::kAmdAttackEvents) {
    ids.push_back(*h.engine().database().find(name));
  }
  return ids;
}

/// Keeps the obfuscator alive behind the agent factory handed to attacks.
struct Defense {
  std::unique_ptr<obf::EventObfuscator> obf;
  attack::AgentFactory factory() const {
    obf::EventObfuscator* p = obf.get();
    return [p] { return p->session(); };
  }
};

Defense make_defense(const SecurityHarness& h,
                     const std::vector<std::unique_ptr<workload::Workload>>&
                         secrets,
                     dp::MechanismKind kind, double epsilon,
                     std::uint64_t seed) {
  dp::MechanismConfig mechanism;
  mechanism.kind = kind;
  mechanism.epsilon = epsilon;
  return Defense{h.engine().make_obfuscator(h.analysis(), secrets, mechanism,
                                            {}, seed)};
}

TEST(CellKey, StableAndDiscriminating) {
  const CellSpec a{A::kAdaptiveWfa, D::kDStarFixed, 1.0};
  EXPECT_EQ(cell_key(a), cell_key(a));
  CellSpec b = a;
  b.epsilon = 0.25;
  EXPECT_NE(cell_key(a), cell_key(b));
  CellSpec c = a;
  c.defense = D::kLaplaceFixed;
  EXPECT_NE(cell_key(a), cell_key(c));
  CellSpec d = a;
  d.attacker = A::kStaticWfa;
  EXPECT_NE(cell_key(a), cell_key(d));
}

TEST(Matrix, FullCoversAcceptanceFloorAndSmokeIsSubset) {
  const std::vector<CellSpec> full = full_matrix();
  std::set<A> attackers;
  std::set<D> defenses;
  std::set<double> epsilons;
  std::set<std::uint64_t> keys;
  for (const CellSpec& cell : full) {
    attackers.insert(cell.attacker);
    defenses.insert(cell.defense);
    epsilons.insert(cell.epsilon);
    keys.insert(cell_key(cell));
  }
  EXPECT_GE(attackers.size(), 3u);
  EXPECT_GE(defenses.size(), 2u);
  EXPECT_GE(epsilons.size(), 4u);
  EXPECT_EQ(keys.size(), full.size());  // no duplicate cells
  for (const CellSpec& cell : smoke_matrix()) {
    EXPECT_EQ(keys.count(cell_key(cell)), 1u)
        << "smoke cell missing from the full matrix";
  }
}

// ---------------------------------------------------------------------------
// Emitters: byte-exact golden files. If one of these fails after an
// intentional format change, regenerate BENCH_security.json and
// REPORT_security.md with bench_security and update the literals here.
// ---------------------------------------------------------------------------

FrontierResult golden_frontier() {
  CellResult a;
  a.spec = CellSpec{A::kAdaptiveWfa, D::kLaplaceFixed, 0.25};
  a.attack_accuracy = 0.875;
  a.validation_accuracy = 0.9167;
  a.random_guess = 0.125;
  a.injected_reps_per_slice = 12.5;
  a.noise_draws = 240;
  CellResult b;
  b.spec = CellSpec{A::kAdaptiveWfa, D::kDStarFixed, 1.0};
  b.attack_accuracy = 0.25;
  b.validation_accuracy = 0.3125;
  b.random_guess = 0.125;
  b.injected_reps_per_slice = 40.25;
  b.noise_draws = 240;
  FrontierResult frontier;
  frontier.cells = {a, b};
  return frontier;
}

HarnessConfig golden_config() {
  HarnessConfig config;
  config.seed = 7;
  return config;
}

TEST(Emit, JsonGoldenBytes) {
  std::ostringstream out;
  write_frontier_json(golden_frontier(), golden_config(), out);
  const std::string expected = R"({
  "bench": "security_frontier",
  "schema_version": 2,
  "cpu": "AMD EPYC 7252",
  "cpu_model": "AmdEpyc7252",
  "backend": "amd-zen2",
  "seed": 7,
  "scale": {
    "sites": 8,
    "traces_per_secret": 10,
    "slices": 120,
    "epochs": 12,
    "visits_per_secret": 4
  },
  "cells": [
    {
      "attacker": "adaptive_wfa",
      "defense": "laplace_fixed",
      "epsilon": 0.25,
      "attack_accuracy": 0.8750,
      "validation_accuracy": 0.9167,
      "random_guess": 0.1250,
      "injected_reps_per_slice": 12.50,
      "noise_draws": 240
    },
    {
      "attacker": "adaptive_wfa",
      "defense": "dstar_fixed",
      "epsilon": 1,
      "attack_accuracy": 0.2500,
      "validation_accuracy": 0.3125,
      "random_guess": 0.1250,
      "injected_reps_per_slice": 40.25,
      "noise_draws": 240
    }
  ]
}
)";
  EXPECT_EQ(out.str(), expected);
}

TEST(Emit, ReportGoldenBytes) {
  std::ostringstream out;
  write_frontier_report(golden_frontier(), golden_config(), out);
  const std::string expected =
      "# Security frontier\n"
      "\n"
      "Attack accuracy on the victim VM per (attacker, defense, "
      "\xCE\xB5) cell.\n"
      "Generated by `bench_security`; the committed copy is the CI "
      "baseline —\n"
      "`scripts/bench_compare.py --security` fails the build when any "
      "cell's\n"
      "accuracy rises more than 2 points over it. Lower is better for "
      "the\ndefense.\n"
      "\n"
      "- cpu: AMD EPYC 7252 (backend amd-zen2)\n"
      "- seed: 7\n"
      "- scale: 8 sites, 10 traces/secret, 120 slices, 12 epochs, 4 victim "
      "visits/secret\n"
      "- cells: 2\n"
      "\n"
      "## adaptive_wfa (guess floor 12.5%)\n"
      "\n"
      "| \xCE\xB5 | laplace_fixed | dstar_fixed |\n"
      "|---:|---:|---:|\n"
      "| 2^-2 | 87.5% | - |\n"
      "| 2^0 | - | 25.0% |\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Emit, FormatEpsilon) {
  EXPECT_EQ(format_epsilon(0.03125), "2^-5");
  EXPECT_EQ(format_epsilon(0.25), "2^-2");
  EXPECT_EQ(format_epsilon(1.0), "2^0");
  EXPECT_EQ(format_epsilon(8.0), "2^3");
  EXPECT_EQ(format_epsilon(1.5), "1.5");
}

// ---------------------------------------------------------------------------
// Determinism: cell values are pure functions of (config, spec).
// ---------------------------------------------------------------------------

TEST(Harness, CellValueIndependentOfRunList) {
  const SecurityHarness& h = tiny_harness();
  const CellSpec spec{A::kAdaptiveWfa, D::kDStarFixed, 1.0};
  const CellResult direct = h.run_cell(spec);
  const FrontierResult alone = h.run({spec});
  const FrontierResult paired =
      h.run({CellSpec{A::kStaticWfa, D::kDStarFixed, 1.0}, spec});
  ASSERT_EQ(alone.cells.size(), 1u);
  ASSERT_EQ(paired.cells.size(), 2u);
  // Canonical sort puts static_wfa (enum 0) first; ours is cell [1].
  EXPECT_EQ(direct.attack_accuracy, alone.cells[0].attack_accuracy);
  EXPECT_EQ(direct.attack_accuracy, paired.cells[1].attack_accuracy);
  EXPECT_EQ(direct.validation_accuracy, paired.cells[1].validation_accuracy);
  EXPECT_EQ(direct.noise_draws, paired.cells[1].noise_draws);
}

TEST(Harness, FrontierBytesAreThreadCountInvariant) {
  const std::vector<CellSpec> cells = {
      CellSpec{A::kAdaptiveWfa, D::kLaplaceFixed, 1.0},
      CellSpec{A::kAdaptiveWfa, D::kDStarFixed, 1.0},
      CellSpec{A::kStaticWfa, D::kDStarFixed, 1.0},
  };
  HarnessConfig one = tiny_config();
  one.num_threads = 1;
  HarnessConfig eight = tiny_config();
  eight.num_threads = 8;
  const SecurityHarness h1(one);
  const SecurityHarness h8(eight);
  std::ostringstream json1, json8, report1, report8;
  write_frontier_json(h1.run(cells), h1.config(), json1);
  write_frontier_json(h8.run(cells), h8.config(), json8);
  write_frontier_report(h1.run(cells), h1.config(), report1);
  write_frontier_report(h8.run(cells), h8.config(), report8);
  EXPECT_EQ(json1.str(), json8.str());
  EXPECT_EQ(report1.str(), report8.str());
}

// ---------------------------------------------------------------------------
// The arms race itself (the Fig. 9b differential, per attacker class).
// ---------------------------------------------------------------------------

TEST(ArmsRace, AdaptiveWfaBeatsStaticUnderLaplace) {
  const SecurityHarness& h = tiny_harness();
  const CellResult fixed =
      h.run_cell(CellSpec{A::kStaticWfa, D::kLaplaceFixed, 1.0});
  const CellResult adaptive =
      h.run_cell(CellSpec{A::kAdaptiveWfa, D::kLaplaceFixed, 1.0});
  EXPECT_GE(adaptive.attack_accuracy + 1e-9, fixed.attack_accuracy);
  // Deterministic per-slice noise is learnable: retraining recovers most
  // of the undefended accuracy (the paper's ~100 % at moderate ε).
  EXPECT_GE(adaptive.attack_accuracy, 0.5);
}

TEST(ArmsRace, DStarHoldsAdaptiveWfaBelowCeiling) {
  // The Fig. 9b geometry (16 sites, 6.25 % guess floor): d* holds the
  // adaptive attacker near the ~41 % ceiling for every ε ≤ 2^0 (measured
  // here: 12.5 / 15.6 / 43.8 % at ε = 2^-5 / 2^-2 / 2^0, vs Laplace's
  // 45 / 84 / 100 % at the same budgets). The ceiling is floor-relative,
  // so the tiny 4-site harness (25 % floor) cannot express it — this test
  // uses the bench's class count at reduced trace scale with a little
  // slack above 41 %.
  HarnessConfig config = tiny_config();
  config.scale.sites = 16;
  config.scale.traces_per_secret = 12;
  config.scale.slices = 150;
  config.scale.epochs = 14;
  config.scale.visits_per_secret = 4;
  const SecurityHarness h(config);
  for (const double epsilon : {0.03125, 0.25, 1.0}) {
    const CellResult cell =
        h.run_cell(CellSpec{A::kAdaptiveWfa, D::kDStarFixed, epsilon});
    EXPECT_LE(cell.attack_accuracy, 0.45) << "epsilon " << epsilon;
    EXPECT_DOUBLE_EQ(cell.random_guess, 0.0625);
  }
}

TEST(ArmsRace, AdaptiveKsaBeatsStaticUnderLaplace) {
  const SecurityHarness& h = tiny_harness();
  attack::KsaScale scale;
  scale.slices = 60;
  scale.traces_per_count = 4;
  scale.epochs = 6;
  auto secrets = std::make_shared<
      const std::vector<std::unique_ptr<workload::Workload>>>(
      attack::make_ksa_secrets(scale));
  const auto attacker = attack::make_retrainable_classification(
      h.engine().database(), "ksa", secrets,
      attack::make_ksa_config(attack_events(h), scale, 99), 2);
  EXPECT_DOUBLE_EQ(attacker->random_guess(), 0.1);
  const Defense defense =
      make_defense(h, *secrets, dp::MechanismKind::kLaplace, 1.0, 5);
  attacker->retrain(nullptr);
  const double fixed = attacker->exploit(123, defense.factory());
  attacker->retrain(defense.factory());
  const double adaptive = attacker->exploit(123, defense.factory());
  EXPECT_GE(adaptive + 0.05, fixed);
}

TEST(ArmsRace, AdaptiveMeaBeatsStaticUnderLaplace) {
  const SecurityHarness& h = tiny_harness();
  attack::MeaConfig config;
  config.event_ids = attack_events(h);
  config.scale.models = 3;
  config.scale.slices = 80;
  config.scale.traces_per_model = 3;
  config.scale.epochs = 4;
  config.seed = 31;
  const auto attacker =
      attack::make_retrainable_mea(h.engine().database(), config, 1);
  EXPECT_DOUBLE_EQ(attacker->random_guess(), 0.0);
  std::vector<std::unique_ptr<workload::Workload>> calib;
  calib.push_back(std::make_unique<workload::DnnWorkload>(0, 80));
  const Defense defense =
      make_defense(h, calib, dp::MechanismKind::kLaplace, 1.0, 6);
  attacker->retrain(nullptr);
  const double fixed = attacker->exploit(321, defense.factory());
  attacker->retrain(defense.factory());
  const double adaptive = attacker->exploit(321, defense.factory());
  EXPECT_GE(adaptive + 0.05, fixed);
}

TEST(ArmsRace, AdaptiveKeaBeatsStaticUnderLaplace) {
  const SecurityHarness& h = tiny_harness();
  attack::KeaConfig config;
  config.event_ids = attack_events(h);
  config.key_bits = 16;
  config.training_keys = 4;
  config.traces_per_key = 2;
  config.epochs = 4;
  config.slices = 80;
  config.seed = 57;
  const auto attacker =
      attack::make_retrainable_kea(h.engine().database(), config, 2, 1);
  EXPECT_DOUBLE_EQ(attacker->random_guess(), 0.5);
  std::vector<std::unique_ptr<workload::Workload>> calib;
  calib.push_back(std::make_unique<workload::CryptoWorkload>(
      std::vector<bool>{true, false, true, true, false, true, false, true},
      80));
  const Defense defense =
      make_defense(h, calib, dp::MechanismKind::kLaplace, 1.0, 8);
  attacker->retrain(nullptr);
  const double fixed = attacker->exploit(213, defense.factory());
  attacker->retrain(defense.factory());
  const double adaptive = attacker->exploit(213, defense.factory());
  EXPECT_GE(adaptive + 0.05, fixed);
}

TEST(Attackers, SliceStepAndFusionProduceValidCells) {
  const SecurityHarness& h = tiny_harness();
  for (const A attacker : {A::kSliceStepWfa, A::kFusionWfa}) {
    const CellResult cell =
        h.run_cell(CellSpec{attacker, D::kLaplaceFixed, 8.0});
    EXPECT_GE(cell.attack_accuracy, 0.0);
    EXPECT_LE(cell.attack_accuracy, 1.0);
    EXPECT_GT(cell.noise_draws, 0u);
    EXPECT_DOUBLE_EQ(cell.random_guess, 0.25);
  }
}

}  // namespace
}  // namespace aegis::seceval
