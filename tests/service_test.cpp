#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "attack/wfa.hpp"
#include "service/protection_service.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"

namespace aegis::service {
namespace {

/// One offline analysis + calibration shared by the whole suite (the same
/// scaled-down WFA scenario the serialize tests use).
struct Fixture {
  core::Aegis aegis{isa::CpuModel::kAmdEpyc7252};
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  core::OfflineConfig config;
  std::shared_ptr<const core::OfflineResult> analysis;
  ProtectionTemplate tpl;

  Fixture() {
    attack::WfaScale scale;
    scale.sites = 4;
    scale.slices = 100;
    secrets = attack::make_wfa_secrets(scale);
    config = core::make_quick_offline_config();
    config.profiler.ranking_runs_per_secret = 3;
    config.fuzz_top_events = 12;
    analysis = std::make_shared<const core::OfflineResult>(
        aegis.analyze(*secrets[0], secrets, config));
    dp::MechanismConfig mechanism;
    mechanism.kind = dp::MechanismKind::kLaplace;
    mechanism.epsilon = 0.05;
    tpl = make_protection_template(aegis, analysis, secrets, mechanism, {},
                                   0xFEEDULL);
  }

  dp::MechanismConfig mechanism() const { return tpl.obf_config.mechanism; }

  SessionRequest request(std::uint64_t tenant, std::size_t slices = 40) const {
    SessionRequest req;
    req.tenant_id = tenant;
    req.seed = util::split_mix64(0xABCDULL, tenant);
    req.application = secrets[tenant % secrets.size()].get();
    req.slices = slices;
    req.per_slice_epsilon = tpl.obf_config.mechanism.epsilon;
    return req;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = "/tmp/aegis_service_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- keying

TEST(TemplateKeying, FamilyMembersShareAKey) {
  auto& f = fixture();
  const TemplateKey a =
      make_template_key(isa::CpuModel::kAmdEpyc7252, *f.secrets[0], f.config);
  const TemplateKey b =
      make_template_key(isa::CpuModel::kAmdEpyc7313P, *f.secrets[0], f.config);
  EXPECT_EQ(a, b);  // Table I: family members share event lists
  const TemplateKey intel = make_template_key(isa::CpuModel::kIntelXeonE5_1650,
                                              *f.secrets[0], f.config);
  EXPECT_NE(a, intel);
}

TEST(TemplateKeying, ConfigHashIsThreadCountInvariantButFieldSensitive) {
  auto& f = fixture();
  core::OfflineConfig threaded = f.config;
  threaded.set_num_threads(8);
  EXPECT_EQ(hash_offline_config(f.config), hash_offline_config(threaded));

  core::OfflineConfig different = f.config;
  different.fuzzer.seed ^= 1;
  EXPECT_NE(hash_offline_config(f.config), hash_offline_config(different));
  different = f.config;
  different.fuzz_top_events += 1;
  EXPECT_NE(hash_offline_config(f.config), hash_offline_config(different));
}

TEST(TemplateKeying, WorkloadFingerprintSeparatesSecrets) {
  auto& f = fixture();
  EXPECT_NE(fingerprint_workload(*f.secrets[0]),
            fingerprint_workload(*f.secrets[1]));
  EXPECT_EQ(fingerprint_workload(*f.secrets[0]),
            fingerprint_workload(*f.secrets[0]));
}

// ---------------------------------------------------------- single-flight

// Pins the full key-hash composition (vendor, family, fingerprint,
// config hash chained through util::hash_combine). The value was computed
// independently from the FNV-1a spec; if this fails, the on-disk cache
// naming scheme changed and warm starts will re-run every analysis.
TEST(TemplateKeying, KeyHashGoldenValuePinsFnvComposition) {
  TemplateKey key;
  key.vendor = isa::Vendor::kAmd;
  key.cpu_family = 0x19;
  key.workload_fingerprint = 0x1122334455667788ULL;
  key.config_hash = 0xdeadbeefcafef00dULL;
  EXPECT_EQ(TemplateKeyHash{}(key),
            static_cast<std::size_t>(0xac7917c1241e9876ULL));
}

TEST(TemplateCacheTest, ColdStartOfManyTenantsRunsExactlyOneAnalysis) {
  auto& f = fixture();
  TemplateCache cache;  // memory-only
  const TemplateKey key =
      make_template_key(f.aegis.cpu(), *f.secrets[0], f.config);

  constexpr std::size_t kTenants = 8;
  std::atomic<int> analyses{0};
  std::vector<std::shared_ptr<const core::OfflineResult>> results(kTenants);
  std::vector<std::thread> tenants;
  for (std::size_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      results[t] = cache.get_or_analyze(key, f.aegis.database(), [&] {
        ++analyses;
        // Hold the in-flight window open long enough that every other
        // tenant joins it instead of racing past.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return *f.analysis;  // copy of the precomputed analysis
      });
    });
  }
  for (auto& t : tenants) t.join();

  EXPECT_EQ(analyses.load(), 1);
  for (std::size_t t = 1; t < kTenants; ++t) {
    EXPECT_EQ(results[t], results[0]);  // shared pointer identity
  }
  const TemplateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kTenants);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kTenants - 1);
  EXPECT_EQ(stats.analyses_run, 1u);
  EXPECT_EQ(stats.warm_starts, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TemplateCacheTest, WarmStartsFromDiskWithoutReanalysis) {
  auto& f = fixture();
  const std::string dir = fresh_dir("warm");
  const TemplateKey key =
      make_template_key(f.aegis.cpu(), *f.secrets[0], f.config);

  {
    TemplateCache writer({dir});
    (void)writer.get_or_analyze(key, f.aegis.database(),
                                [&] { return *f.analysis; });
    EXPECT_EQ(writer.stats().analyses_run, 1u);
    EXPECT_TRUE(std::filesystem::exists(writer.disk_path(key)));
  }

  TemplateCache cold({dir});  // a restarted service instance
  const auto loaded = cold.get_or_analyze(key, f.aegis.database(), [&]() {
    ADD_FAILURE() << "warm start must not re-run the analysis";
    return *f.analysis;
  });
  EXPECT_EQ(loaded->cover.gadgets, f.analysis->cover.gadgets);
  EXPECT_EQ(loaded->warmup.surviving, f.analysis->warmup.surviving);
  const TemplateCacheStats stats = cold.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_EQ(stats.analyses_run, 0u);
}

TEST(TemplateCacheTest, CorruptDiskFileCountsFailedLoadAndReanalyzes) {
  auto& f = fixture();
  const std::string dir = fresh_dir("corrupt");
  const TemplateKey key =
      make_template_key(f.aegis.cpu(), *f.secrets[0], f.config);

  {
    TemplateCache writer({dir});
    (void)writer.get_or_analyze(key, f.aegis.database(),
                                [&] { return *f.analysis; });
    // Truncate the persisted template: the next instance finds the file,
    // attempts the load, fails, and falls back to a fresh analysis.
    std::ofstream corrupt(writer.disk_path(key), std::ios::trunc);
    corrupt << "not a template";
  }

  TemplateCache cold({dir});
  const auto result = cold.get_or_analyze(key, f.aegis.database(),
                                          [&] { return *f.analysis; });
  EXPECT_EQ(result->cover.gadgets, f.analysis->cover.gadgets);
  const TemplateCacheStats stats = cold.stats();
  EXPECT_EQ(stats.lookups, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.warm_starts, 1u);   // the load was attempted...
  EXPECT_EQ(stats.failed_loads, 1u);  // ...and failed
  EXPECT_EQ(stats.analyses_run, 1u);
  // The documented identity, exactly:
  EXPECT_EQ(stats.analyses_run,
            stats.misses - stats.warm_starts + stats.failed_loads);
}

TEST(TemplateCacheTest, StatsIdentityHoldsAcrossColdWarmAndFailedPaths) {
  auto& f = fixture();
  const std::string dir = fresh_dir("identity");
  const TemplateKey key =
      make_template_key(f.aegis.cpu(), *f.secrets[0], f.config);

  TemplateCache cache({dir});
  (void)cache.get_or_analyze(key, f.aegis.database(),
                             [&] { return *f.analysis; });  // cold miss
  (void)cache.get_or_analyze(key, f.aegis.database(),
                             [&] { return *f.analysis; });  // hit
  // A second key whose analysis throws: still a miss + an analysis run.
  core::OfflineConfig other = f.config;
  other.fuzz_top_events += 1;
  const TemplateKey key2 = make_template_key(f.aegis.cpu(), *f.secrets[0], other);
  EXPECT_THROW((void)cache.get_or_analyze(
                   key2, f.aegis.database(),
                   []() -> core::OfflineResult {
                     throw std::runtime_error("injected failure");
                   }),
               std::runtime_error);

  const TemplateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.warm_starts, 0u);
  EXPECT_EQ(stats.failed_loads, 0u);
  EXPECT_EQ(stats.analyses_run, 2u);  // thrown analyses count: they ran
  EXPECT_EQ(stats.analyses_run,
            stats.misses - stats.warm_starts + stats.failed_loads);
}

TEST(TemplateCacheTest, FailedAnalysisPropagatesAndAllowsRetry) {
  auto& f = fixture();
  TemplateCache cache;
  const TemplateKey key =
      make_template_key(f.aegis.cpu(), *f.secrets[0], f.config);
  EXPECT_THROW((void)cache.get_or_analyze(
                   key, f.aegis.database(),
                   []() -> core::OfflineResult {
                     throw std::runtime_error("injected failure");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // evicted: the next caller may retry
  const auto retried = cache.get_or_analyze(key, f.aegis.database(),
                                            [&] { return *f.analysis; });
  EXPECT_EQ(retried->cover.gadgets, f.analysis->cover.gadgets);
}

// ------------------------------------------------------ fleet determinism

TEST(SessionFleet, SixteenTenantsBitIdenticalToStandaloneAcrossThreadCounts) {
  auto& f = fixture();
  constexpr std::size_t kTenants = 16;

  std::vector<SessionRequest> requests;
  for (std::size_t t = 0; t < kTenants; ++t) {
    requests.push_back(f.request(t));
  }

  // The reference: each tenant standalone, no fleet machinery at all.
  std::vector<SessionResult> standalone;
  for (const auto& req : requests) {
    standalone.push_back(run_protected_session(f.tpl, req, 1));
  }

  for (std::size_t num_threads : {std::size_t{1}, std::size_t{8}}) {
    BudgetGovernor governor;  // fresh budgets: every window admits at g=1
    SessionManager manager(num_threads, governor);
    const std::vector<SessionResult> fleet = manager.run_fleet(f.tpl, requests);

    ASSERT_EQ(fleet.size(), standalone.size());
    for (std::size_t t = 0; t < kTenants; ++t) {
      SCOPED_TRACE("tenant " + std::to_string(t) + " threads " +
                   std::to_string(num_threads));
      EXPECT_EQ(fleet[t].outcome, Admission::kAdmit);
      EXPECT_EQ(fleet[t].granularity, 1u);
      // Bit-identical counter traces: exact double equality, no tolerance.
      ASSERT_EQ(fleet[t].trace.samples, standalone[t].trace.samples);
      EXPECT_EQ(fleet[t].trace.busy_cycles, standalone[t].trace.busy_cycles);
      EXPECT_EQ(fleet[t].injected_repetitions,
                standalone[t].injected_repetitions);
    }
    EXPECT_EQ(manager.completed(), kTenants);
    EXPECT_EQ(manager.refused(), 0u);
  }
}

TEST(SessionFleet, TelemetryAttachmentDoesNotPerturbResults) {
  auto& f = fixture();
  const SessionRequest req = f.request(3);

  const SessionResult bare = run_protected_session(f.tpl, req, 2, nullptr);
  telemetry::Registry registry;
  const SessionResult traced = run_protected_session(f.tpl, req, 2, &registry);

  // Bit-identical results: telemetry draws no randomness and no sim state.
  ASSERT_EQ(traced.trace.samples, bare.trace.samples);
  EXPECT_EQ(traced.trace.busy_cycles, bare.trace.busy_cycles);
  EXPECT_EQ(traced.injected_repetitions, bare.injected_repetitions);

  // Every noise-refresh window was recorded from the VIRTUAL clock: one
  // span per granularity-2 window, stamped in slice-index nanoseconds.
  const auto spans = registry.spans().completed();
  ASSERT_EQ(spans.size(), (req.slices + 1) / 2);
  EXPECT_EQ(spans[0].name, "inject.window");
  EXPECT_EQ(spans[0].begin_ns, 0u);
  EXPECT_EQ(spans[0].end_ns, 2000u);  // 2 slices x 1000 ns/slice
  EXPECT_EQ(spans[0].arg, req.tenant_id);
}

TEST(SessionFleet, SharedRegistryCollectsFleetCountersAndBudgetTimeline) {
  auto& f = fixture();
  constexpr std::size_t kTenants = 4;
  std::vector<SessionRequest> requests;
  for (std::size_t t = 0; t < kTenants; ++t) requests.push_back(f.request(t));

  telemetry::Registry registry;
  GovernorConfig gov_config;
  gov_config.telemetry = &registry;
  BudgetGovernor governor(gov_config);
  SessionManager manager(2, governor, &registry);
  (void)manager.run_fleet(f.tpl, requests);

  const telemetry::MetricsSnapshot snap = registry.metrics().snapshot();
  auto counter_value = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  EXPECT_EQ(counter_value("aegis_sessions_started_total"), kTenants);
  EXPECT_EQ(counter_value("aegis_sessions_completed_total"), kTenants);

  // One ε-timeline event per admission decision, in submission order.
  const auto events = registry.budget().events();
  ASSERT_EQ(events.size(), kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(events[t].tenant_id, t);
    EXPECT_EQ(events[t].outcome, "admit");
    EXPECT_GT(events[t].epsilon_after, 0.0);
  }

  // The fleet phases traced: one admission span + one span per session.
  std::size_t admission = 0, sessions = 0;
  for (const auto& s : registry.spans().completed()) {
    if (s.name == "fleet.admission") ++admission;
    if (s.name == "fleet.session") ++sessions;
  }
  EXPECT_EQ(admission, 1u);
  EXPECT_EQ(sessions, kTenants);
}

TEST(SessionFleet, TenantTraceIndependentOfFleetComposition) {
  auto& f = fixture();
  // Tenant 3 alone...
  BudgetGovernor g1;
  SessionManager alone(2, g1);
  const auto solo = alone.run_fleet(f.tpl, {f.request(3)});
  // ...and inside a 8-tenant fleet.
  std::vector<SessionRequest> requests;
  for (std::size_t t = 0; t < 8; ++t) requests.push_back(f.request(t));
  BudgetGovernor g2;
  SessionManager fleet(4, g2);
  const auto together = fleet.run_fleet(f.tpl, requests);
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].trace.samples, together[3].trace.samples);
}

// ------------------------------------------------------- admission control

TEST(BudgetGovernorTest, WalksAdmitDegradeRefuseAsBudgetExhausts) {
  GovernorConfig config;
  config.default_epsilon_cap = 8.0;
  config.delta = 1e-6;
  config.max_granularity = 64;
  BudgetGovernor governor(config);

  const std::uint64_t tenant = 42;
  const std::size_t slices = 32;
  const double eps = 0.2;

  std::size_t admits = 0, degrades = 0, refusals = 0;
  bool seen_degrade_after_admit = false;
  bool seen_refuse_after_degrade = false;
  Admission last = Admission::kAdmit;
  dp::PrivacyAccountant shadow;  // direct re-computation of the spend

  for (int window = 0; window < 64; ++window) {
    const AdmissionDecision decision =
        governor.request_window(tenant, slices, eps);
    switch (decision.outcome) {
      case Admission::kAdmit:
        ++admits;
        EXPECT_EQ(decision.granularity, 1u);
        EXPECT_EQ(decision.releases, slices);
        break;
      case Admission::kDegrade:
        ++degrades;
        EXPECT_GT(decision.granularity, 1u);
        EXPECT_LT(decision.releases, slices);
        if (last == Admission::kAdmit) seen_degrade_after_admit = true;
        break;
      case Admission::kRefuse:
        ++refusals;
        EXPECT_EQ(decision.releases, 0u);
        if (last == Admission::kDegrade) seen_refuse_after_degrade = true;
        break;
    }
    if (decision.outcome != Admission::kRefuse) {
      shadow.record_releases(eps, decision.releases);
      // The grant itself never crosses the cap...
      EXPECT_LE(decision.epsilon_after, config.default_epsilon_cap + 1e-12);
      // ...and matches a direct advanced-composition computation.
      EXPECT_NEAR(decision.epsilon_after, shadow.advanced_epsilon(config.delta),
                  1e-12);
    } else {
      // Refusals record nothing: the spend stays where it was.
      EXPECT_NEAR(decision.epsilon_after, shadow.advanced_epsilon(config.delta),
                  1e-12);
    }
    last = decision.outcome;
  }

  // All three outcomes occur, in budget order.
  EXPECT_GE(admits, 1u);
  EXPECT_GE(degrades, 1u);
  EXPECT_GE(refusals, 1u);
  EXPECT_TRUE(seen_degrade_after_admit);
  EXPECT_TRUE(seen_refuse_after_degrade);

  // ServiceStats-side counters match the observed outcomes exactly.
  const TenantBudgetStats usage = governor.usage(tenant);
  EXPECT_EQ(usage.admitted, admits);
  EXPECT_EQ(usage.degraded, degrades);
  EXPECT_EQ(usage.refused, refusals);
  EXPECT_EQ(usage.releases, shadow.releases());
  EXPECT_NEAR(usage.advanced_epsilon, shadow.advanced_epsilon(config.delta),
              1e-12);
  EXPECT_LE(usage.advanced_epsilon, usage.epsilon_cap);
  EXPECT_NEAR(governor.remaining(tenant),
              shadow.remaining(config.default_epsilon_cap, config.delta),
              1e-12);
}

TEST(BudgetGovernorTest, RefusedSessionsCarryNoTrace) {
  auto& f = fixture();
  GovernorConfig config;
  config.default_epsilon_cap = 1e-3;  // nothing fits
  config.max_granularity = 4;
  BudgetGovernor governor(config);
  SessionManager manager(2, governor);
  const auto results = manager.run_fleet(f.tpl, {f.request(7)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, Admission::kRefuse);
  EXPECT_TRUE(results[0].trace.samples.empty());
  EXPECT_EQ(manager.refused(), 1u);
  EXPECT_EQ(manager.completed(), 0u);
}

TEST(BudgetGovernorTest, ZeroEpsilonWindowsAlwaysAdmit) {
  BudgetGovernor governor;
  // The d* mechanism's guarantee is series-level: per-slice accounting
  // does not apply, and the governor never refuses it.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(governor.request_window(1, 100, 0.0).outcome, Admission::kAdmit);
  }
  EXPECT_EQ(governor.usage(1).releases, 0u);
}

TEST(BudgetGovernorTest, TenantsAreIsolated) {
  GovernorConfig config;
  config.default_epsilon_cap = 2.0;
  BudgetGovernor governor(config);
  // Exhaust tenant 1.
  while (governor.request_window(1, 64, 0.2).outcome != Admission::kRefuse) {
  }
  // Tenant 2's budget is untouched.
  EXPECT_EQ(governor.request_window(2, 16, 0.05).outcome, Admission::kAdmit);
  EXPECT_NEAR(governor.remaining(2) + governor.usage(2).advanced_epsilon, 2.0,
              1e-12);
}

// ----------------------------------------------------------- bounded queue

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.try_push(3));  // full

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.push(3));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());  // still blocked: the queue is full
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenReportsEmpty) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // rejected after close
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained
}

TEST(BoundedQueueTest, CloseWakesEveryBlockedProducer) {
  // Shutdown with producers parked in push(): close() must wake all of
  // them with push() == false, and the pre-close item must still drain.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));  // queue now full: every push below blocks
  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &rejected, p] {
      if (!queue.push(p + 1)) ++rejected;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  queue.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
  EXPECT_EQ(queue.pop().value(), 0);
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained
}

TEST(BoundedQueueTest, CloseWithFullQueueDrainsInOrder) {
  BoundedQueue<int> queue(3);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  EXPECT_EQ(queue.size(), 3u);  // close never drops accepted items
  const std::deque<int> batch = queue.pop_batch(8);
  ASSERT_EQ(batch.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(batch[i], i);
  EXPECT_TRUE(queue.pop_batch(8).empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, ConcurrentCloseAndPushNeverLosesAcceptedItems) {
  // Races close() against a herd of non-blocking pushers with a live
  // consumer (run under TSan via check.sh's fast filter). Invariant:
  // exactly the accepted pushes are popped — close neither drops an
  // accepted item nor admits one after shutdown.
  constexpr int kPushers = 8;
  constexpr int kPerPusher = 64;
  BoundedQueue<int> queue(16);
  std::atomic<int> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&queue, &accepted, &go, p] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerPusher; ++i) {
        if (queue.try_push(p * kPerPusher + i)) ++accepted;
      }
    });
  }
  std::atomic<int> drained{0};
  std::thread consumer([&queue, &drained] {
    while (queue.pop().has_value()) ++drained;
  });
  go = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.close();
  for (auto& t : pushers) t.join();
  consumer.join();
  EXPECT_EQ(drained.load(), accepted.load());
}

// -------------------------------------------------------------- end to end

TEST(ProtectionServiceTest, EndToEndFleetThroughTheDaemon) {
  auto& f = fixture();
  ServiceConfig config;
  config.num_threads = 4;
  config.queue_capacity = 4;  // tighter than the load: exercises backpressure
  config.batch_size = 4;
  ProtectionService svc(config);

  dp::MechanismConfig mechanism = f.mechanism();
  const std::size_t tpl_id = svc.register_template(
      f.aegis, *f.secrets[0], f.secrets, f.config, mechanism, {}, 0xFEEDULL);

  constexpr std::size_t kSessions = 12;
  for (std::size_t s = 0; s < kSessions; ++s) {
    SessionSubmission sub;
    sub.template_id = tpl_id;
    sub.request = f.request(s % 3, 30);
    ASSERT_TRUE(svc.submit(sub));
  }
  svc.drain();

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.sessions_submitted, kSessions);
  EXPECT_EQ(stats.sessions_completed, kSessions);
  EXPECT_EQ(stats.sessions_refused, 0u);
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.cache.lookups, 1u);
  ASSERT_EQ(stats.tenants.size(), 3u);
  for (const auto& tenant : stats.tenants) {
    EXPECT_GT(tenant.releases, 0u);
    EXPECT_GT(tenant.advanced_epsilon, 0.0);
    EXPECT_LE(tenant.advanced_epsilon, tenant.epsilon_cap);
  }

  const auto completed = svc.take_completed();
  ASSERT_EQ(completed.size(), kSessions);
  for (const auto& done : completed) {
    EXPECT_EQ(done.result.outcome, Admission::kAdmit);
    EXPECT_FALSE(done.result.trace.samples.empty());
    EXPECT_GT(done.latency_seconds, 0.0);
  }
  EXPECT_TRUE(svc.take_completed().empty());  // moved out
}

TEST(ProtectionServiceTest, ConcurrentRegistrationsShareOneTemplate) {
  auto& f = fixture();
  // Pre-populate a disk cache so the heavy analysis is not re-run here.
  const std::string dir = fresh_dir("register");
  {
    TemplateCache seeded({dir});
    (void)seeded.get_or_analyze(
        make_template_key(f.aegis.cpu(), *f.secrets[0], f.config),
        f.aegis.database(), [&] { return *f.analysis; });
  }

  ServiceConfig config;
  config.num_threads = 2;
  config.cache.cache_dir = dir;
  ProtectionService svc(config);

  constexpr std::size_t kTenants = 6;
  std::vector<std::size_t> ids(kTenants);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ids[t] = svc.register_template(f.aegis, *f.secrets[0], f.secrets,
                                     f.config, f.mechanism(), {}, 0xFEEDULL);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t t = 1; t < kTenants; ++t) EXPECT_EQ(ids[t], ids[0]);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache.lookups, kTenants);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.warm_starts, 1u);
  EXPECT_EQ(stats.cache.analyses_run, 0u);
}

}  // namespace
}  // namespace aegis::service
