#include <gtest/gtest.h>

#include "sim/executor.hpp"
#include "sim/gadget_runner.hpp"
#include "sim/host_monitor.hpp"
#include "sim/virtual_machine.hpp"

namespace aegis::sim {
namespace {

using isa::InstructionClass;

TEST(MicroArch, ColdAccessMissesWarmAccessHits) {
  MicroArchState uarch;
  const auto cold = uarch.access(10, 4096, 1.0);
  EXPECT_GT(cold.l1_misses, 0.0);
  EXPECT_GT(cold.llc_misses, 0.0);
  const auto warm = uarch.access(10, 4096, 1.0);
  EXPECT_LT(warm.l1_misses, cold.l1_misses * 0.2);
}

TEST(MicroArch, FlushRestoresMisses) {
  MicroArchState uarch;
  (void)uarch.access(10, 4096, 1.0);
  uarch.flush(10, 4096);
  const auto after = uarch.access(10, 4096, 1.0);
  EXPECT_GT(after.l1_misses, 30.0);  // ~64 lines, mostly missing again
}

TEST(MicroArch, PartialFlushPartiallyEvicts) {
  MicroArchState uarch;
  (void)uarch.access(10, 4096, 1.0);
  const double before = uarch.l1_residency(10);
  uarch.flush(10, 1024);  // a quarter of the working set
  EXPECT_NEAR(uarch.l1_residency(10), before * 0.75, 1e-9);
}

TEST(MicroArch, FlushAllClearsEverything) {
  MicroArchState uarch;
  (void)uarch.access(1, 1024, 1.0);
  (void)uarch.access(2, 1024, 1.0);
  uarch.flush_all();
  EXPECT_EQ(uarch.l1_residency(1), 0.0);
  EXPECT_EQ(uarch.llc_residency(2), 0.0);
}

TEST(MicroArch, LargeFootprintEvictsOtherRegions) {
  MicroArchState uarch;
  (void)uarch.access(1, 4096, 1.0);
  const double before = uarch.l1_residency(1);
  (void)uarch.access(2, MicroArchState::kL1Bytes, 1.0);  // L1-sized working set
  EXPECT_LT(uarch.l1_residency(1), before * 0.05);
}

TEST(MicroArch, WorkingSetLargerThanL1IsPartiallyResident) {
  MicroArchState uarch;
  (void)uarch.access(1, MicroArchState::kL1Bytes * 4, 1.0);
  EXPECT_NEAR(uarch.l1_residency(1), 0.25, 1e-9);
  EXPECT_EQ(uarch.llc_residency(1), 1.0);
}

TEST(MicroArch, RandomAccessMissesMoreThanSequential) {
  MicroArchState a, b;
  (void)a.access(1, 8192, 1.0);
  (void)b.access(1, 8192, 1.0);
  const auto seq = a.access(1, 8192, 1.0);
  const auto rnd = b.access(1, 8192, 0.0);
  EXPECT_GT(rnd.l1_misses, seq.l1_misses);
}

TEST(MicroArch, BranchPredictorWarmsUp) {
  MicroArchState uarch;
  const double first = uarch.run_branches(5, 1000, 1.0);
  for (int i = 0; i < 20; ++i) (void)uarch.run_branches(5, 1000, 1.0);
  const double trained = uarch.run_branches(5, 1000, 1.0);
  EXPECT_LT(trained, first * 0.5);
  EXPECT_GT(trained, 0.0);  // random branches never go to zero
}

TEST(MicroArch, PredictableBranchesRarelyMispredict) {
  MicroArchState uarch;
  const double mispredicts = uarch.run_branches(5, 1000, 0.0);
  EXPECT_EQ(mispredicts, 0.0);
}

TEST(Executor, BlockStatsReflectClassCounts) {
  MicroArchState uarch;
  InstructionBlock b;
  b.class_counts[InstructionClass::kIntAlu] = 100;
  b.uops = 110;
  const pmu::ExecutionStats stats = execute_block(b, uarch);
  EXPECT_DOUBLE_EQ(stats.class_counts[InstructionClass::kIntAlu], 100.0);
  EXPECT_DOUBLE_EQ(stats.uops, 110.0);
  EXPECT_GE(stats.cycles, 110.0 / 4.0);
}

TEST(Executor, MemoryBlocksProduceAccessesAndMisses) {
  MicroArchState uarch;
  InstructionBlock b;
  b.region = 7;
  b.read_bytes = 6400;  // 100 lines
  const pmu::ExecutionStats stats = execute_block(b, uarch);
  EXPECT_DOUBLE_EQ(stats.mem_reads, 100.0);
  EXPECT_GT(stats.l1_misses, 50.0);  // cold region
  const pmu::ExecutionStats warm = execute_block(b, uarch);
  EXPECT_LT(warm.l1_misses, stats.l1_misses * 0.2);
}

TEST(Executor, MissesMakeBlocksSlower) {
  MicroArchState cold_state, warm_state;
  InstructionBlock b;
  b.region = 7;
  b.read_bytes = 64000;
  b.uops = 100;
  (void)execute_block(b, warm_state);  // warm the second state
  const double cold_cycles = execute_block(b, cold_state).cycles;
  const double warm_cycles = execute_block(b, warm_state).cycles;
  EXPECT_GT(cold_cycles, warm_cycles);
}

TEST(Executor, SerializationAddsFixedCost) {
  MicroArchState uarch;
  InstructionBlock b;
  b.serialize_count = 2;
  const CostModel cost;
  const pmu::ExecutionStats stats = execute_block(b, uarch, cost);
  EXPECT_GE(stats.cycles, 2 * cost.serialize_cycles);
}

TEST(InstructionBlock, ScaledMultipliesLinearFields) {
  InstructionBlock b;
  b.class_counts[InstructionClass::kLoad] = 4;
  b.uops = 10;
  b.read_bytes = 100;
  b.serialize_count = 1;
  const InstructionBlock s = b.scaled(2.5);
  EXPECT_DOUBLE_EQ(s.class_counts[InstructionClass::kLoad], 10.0);
  EXPECT_DOUBLE_EQ(s.uops, 25.0);
  EXPECT_DOUBLE_EQ(s.read_bytes, 250.0);
  EXPECT_DOUBLE_EQ(s.serialize_count, 2.5);
}

TEST(InstructionBlock, FromVariantLoadAndStore) {
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  const isa::InstructionVariant* load = nullptr;
  const isa::InstructionVariant* store = nullptr;
  const isa::InstructionVariant* flush = nullptr;
  for (const auto& v : spec.variants()) {
    if (!v.legal()) continue;
    if (!load && v.has_memory_operand && !v.is_store &&
        v.iclass != InstructionClass::kCacheFlush) {
      load = &v;
    }
    if (!store && v.is_store) store = &v;
    if (!flush && v.iclass == InstructionClass::kCacheFlush) flush = &v;
  }
  ASSERT_NE(load, nullptr);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(flush, nullptr);
  const auto lb = InstructionBlock::from_variant(*load, 10, 3);
  EXPECT_GT(lb.read_bytes, 0.0);
  EXPECT_EQ(lb.write_bytes, 0.0);
  const auto sb = InstructionBlock::from_variant(*store, 10, 3);
  EXPECT_GT(sb.write_bytes, 0.0);
  const auto fb = InstructionBlock::from_variant(*flush, 10, 3);
  EXPECT_GT(fb.flush_bytes, 0.0);
  EXPECT_EQ(fb.read_bytes, 0.0);
}

TEST(VirtualMachine, ExecutesQueuedWork) {
  VirtualMachine vm(VmConfig{}, 1);
  InstructionBlock b;
  b.uops = 1000;
  vm.submit(b);
  EXPECT_TRUE(vm.pending());
  const pmu::ExecutionStats stats = vm.run_slice();
  EXPECT_GE(stats.uops, 1000.0);
  EXPECT_FALSE(vm.pending());
}

TEST(VirtualMachine, WorkCarriesOverWhenBudgetExceeded) {
  VmConfig config;
  config.slice_budget_cycles = 1000.0;
  config.interrupt_rate = 0.0;
  VirtualMachine vm(config, 2);
  // 40 blocks of ~500 cycles each: ~20 slices of work.
  for (int i = 0; i < 40; ++i) {
    InstructionBlock b;
    b.uops = 2000;  // 500 cycles at width 4
    vm.submit(b);
  }
  (void)vm.run_slice();
  EXPECT_TRUE(vm.pending());
  int slices = 1;
  while (vm.pending() && slices < 100) {
    (void)vm.run_slice();
    ++slices;
  }
  EXPECT_GE(slices, 15);
  EXPECT_LE(slices, 30);
}

TEST(VirtualMachine, CpuUsageTracksBusyFraction) {
  VmConfig config;
  config.slice_budget_cycles = 10000.0;
  config.interrupt_rate = 0.0;
  VirtualMachine vm(config, 3);
  for (int t = 0; t < 100; ++t) {
    InstructionBlock b;
    b.uops = 8000;  // 2000 cycles = 20 % of the budget
    vm.submit(b);
    (void)vm.run_slice();
  }
  EXPECT_NEAR(vm.cpu_usage(), 0.2, 0.03);
}

TEST(VirtualMachine, InterruptsArriveWhenIdle) {
  VmConfig config;
  config.interrupt_rate = 2.0;
  VirtualMachine vm(config, 4);
  double total_irqs = 0.0;
  for (int t = 0; t < 300; ++t) total_irqs += vm.run_slice().interrupts;
  EXPECT_NEAR(total_irqs / 300.0, 2.0, 0.4);
}

TEST(VirtualMachine, LastSliceStatsExposed) {
  VirtualMachine vm(VmConfig{}, 5);
  InstructionBlock b;
  b.uops = 777;
  vm.submit(b);
  (void)vm.run_slice();
  EXPECT_GE(vm.last_slice_stats().uops, 777.0);
}

TEST(HostMonitor, ProducesPerSliceDeltas) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  VirtualMachine vm(VmConfig{}, 6);
  HostMonitor monitor(db, 7);
  BlockSource source = [](std::size_t) {
    InstructionBlock b;
    b.uops = 5000;
    return std::vector<InstructionBlock>{b};
  };
  const MonitorResult result = monitor.monitor(vm, source, {uops_id}, 50);
  ASSERT_EQ(result.samples.size(), 50u);
  ASSERT_EQ(result.samples[0].size(), 1u);
  double total = 0.0;
  for (const auto& row : result.samples) total += row[0];
  // ~5000 uops per slice plus interrupt-handler uops.
  EXPECT_NEAR(total / 50.0, 5000.0, 2000.0);
}

TEST(HostMonitor, TotalsMatchSummedDeltas) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  BlockSource source = [](std::size_t) {
    InstructionBlock b;
    b.uops = 3000;
    return std::vector<InstructionBlock>{b};
  };
  VirtualMachine vm(VmConfig{}, 8);
  HostMonitor monitor(db, 9);
  const std::vector<double> totals = monitor.totals(vm, source, {uops_id}, 40);
  ASSERT_EQ(totals.size(), 1u);
  // Guest work plus interrupt-handler uops (~1.2 IRQ/slice x 900 uops).
  EXPECT_GT(totals[0], 3000.0 * 40 * 0.9);
  EXPECT_LT(totals[0], (3000.0 + 2500.0) * 40);
}

TEST(HostMonitor, AgentBlocksAreIndistinguishableInflation) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  BlockSource source = [](std::size_t) {
    InstructionBlock b;
    b.uops = 1000;
    return std::vector<InstructionBlock>{b};
  };
  SliceAgent agent = [](VirtualMachine& vm, std::size_t) {
    InstructionBlock noise;
    noise.uops = 3000;
    vm.submit(noise);
  };
  VirtualMachine vm1(VmConfig{}, 10), vm2(VmConfig{}, 10);
  HostMonitor m1(db, 11), m2(db, 11);
  const double clean = m1.totals(vm1, source, {uops_id}, 40)[0];
  VirtualMachine vm3(VmConfig{}, 10);
  const MonitorResult defended = m2.monitor(vm3, source, {uops_id}, 40, agent);
  double defended_total = 0.0;
  for (const auto& row : defended.samples) defended_total += row[0];
  EXPECT_GT(defended_total, clean * 1.3);
}

// ---------------------------------------------------------------------------
// compile_block + execute_compiled must be bit-identical to execute_block:
// GadgetRunner's fused superblocks rely on this to keep the whole fuzzing
// pipeline's counter streams unchanged (see DESIGN.md "SIMD kernels &
// superblock fusion").

void expect_stats_equal(const pmu::ExecutionStats& a,
                        const pmu::ExecutionStats& b, int step) {
  for (std::size_t i = 0; i < a.class_counts.size(); ++i) {
    EXPECT_EQ(a.class_counts.at_index(i), b.class_counts.at_index(i))
        << "class " << i << " step " << step;
  }
  EXPECT_EQ(a.uops, b.uops) << step;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << step;
  EXPECT_EQ(a.llc_misses, b.llc_misses) << step;
  EXPECT_EQ(a.l1_writes, b.l1_writes) << step;
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts) << step;
  EXPECT_EQ(a.mem_reads, b.mem_reads) << step;
  EXPECT_EQ(a.mem_writes, b.mem_writes) << step;
  EXPECT_EQ(a.interrupts, b.interrupts) << step;
  EXPECT_EQ(a.cycles, b.cycles) << step;
}

TEST(ExecutorCompiled, BitIdenticalToExecuteBlock) {
  // Blocks chosen to light up every term of the cycle accounting: memory
  // traffic (miss costs), high-entropy branches (mispredict costs), a
  // serializing flush block, and divider/x87 pressure.
  InstructionBlock memory;
  memory.region = 3;
  memory.class_counts[InstructionClass::kLoad] = 40;
  memory.class_counts[InstructionClass::kStore] = 12;
  memory.uops = 180;
  memory.read_bytes = 8192;
  memory.write_bytes = 2048;
  memory.locality = 0.4;

  InstructionBlock branchy;
  branchy.region = 4;
  branchy.class_counts[InstructionClass::kBranch] = 60;
  branchy.class_counts[InstructionClass::kCall] = 6;
  branchy.uops = 200;
  branchy.branch_entropy = 0.9;

  InstructionBlock fenced;
  fenced.region = 3;
  fenced.class_counts[InstructionClass::kSerialize] = 2;
  fenced.class_counts[InstructionClass::kIntDiv] = 5;
  fenced.class_counts[InstructionClass::kFpDiv] = 3;
  fenced.class_counts[InstructionClass::kX87] = 7;
  fenced.uops = 90;
  fenced.serialize_count = 2;
  fenced.flush_bytes = 4096;

  InstructionBlock flush_all;
  flush_all.region = 4;
  flush_all.uops = 10;
  flush_all.flush_all = true;

  const InstructionBlock blocks[] = {memory, branchy, fenced, flush_all};
  CompiledBlock compiled[4];
  for (int i = 0; i < 4; ++i) compiled[i] = compile_block(blocks[i]);

  // Two states evolve in lockstep; the stats AND the hidden state updates
  // must match at every step, or the divergence compounds.
  MicroArchState plain_state;
  MicroArchState compiled_state;
  for (int step = 0; step < 32; ++step) {
    const int i = step % 4;
    const pmu::ExecutionStats a = execute_block(blocks[i], plain_state);
    const pmu::ExecutionStats b = execute_compiled(compiled[i], compiled_state);
    expect_stats_equal(a, b, step);
    EXPECT_EQ(plain_state.l1_residency(3), compiled_state.l1_residency(3));
    EXPECT_EQ(plain_state.llc_residency(4), compiled_state.llc_residency(4));
    EXPECT_EQ(plain_state.predictor_warmth(4), compiled_state.predictor_warmth(4));
  }
}

TEST(ExecutorCompiled, RespectsCostModelItWasCompiledWith) {
  InstructionBlock b;
  b.class_counts[InstructionClass::kIntDiv] = 4;
  b.uops = 100;
  b.serialize_count = 1;
  CostModel cost;
  cost.issue_width = 2.0;
  cost.int_div_extra = 50.0;
  cost.serialize_cycles = 300.0;
  MicroArchState s1, s2;
  const pmu::ExecutionStats plain = execute_block(b, s1, cost);
  const pmu::ExecutionStats fused =
      execute_compiled(compile_block(b, cost), s2, cost);
  EXPECT_EQ(plain.cycles, fused.cycles);
}

TEST(GadgetRunner, RejectsIllegalVariants) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  GadgetRunner runner(db, spec, 12);
  runner.program({*db.find("RETIRED_UOPS")});
  std::uint32_t illegal = 0;
  for (const auto& v : spec.variants()) {
    if (!v.legal()) {
      illegal = v.uid;
      break;
    }
  }
  const std::array<std::uint32_t, 1> seq = {illegal};
  EXPECT_THROW((void)runner.execute_once(seq), std::invalid_argument);
  // The superblock cache must never swallow the fault: the second call has
  // to throw exactly like the first (illegal sequences are never cached).
  EXPECT_THROW((void)runner.execute_once(seq), std::invalid_argument);
}

TEST(GadgetRunner, MeasuresUopDeltaOfSimpleGadget) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  GadgetRunner runner(db, spec, 13);
  runner.program({*db.find("RETIRED_UOPS")});
  std::uint32_t alu = 0;
  for (const auto& v : spec.variants()) {
    if (v.legal() && v.iclass == InstructionClass::kIntAlu &&
        !v.has_memory_operand) {
      alu = v.uid;
      break;
    }
  }
  const std::array<std::uint32_t, 1> seq = {alu};
  const std::span<const double> delta = runner.execute_once(seq, 32.0);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_GT(delta[0], 20.0);  // ~32 uops, modulo measurement noise
}

TEST(GadgetRunner, DirtyStatePersistsAcrossExecutions) {
  // The C6 confounder: a load gadget's misses vanish once the data page is
  // cached, unless some reset flushes it.
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  GadgetRunner runner(db, spec, 14);
  runner.program({*db.find("MAB_ALLOCATION_BY_PIPE")});
  std::uint32_t load = 0;
  for (const auto& v : spec.variants()) {
    if (v.legal() && v.has_memory_operand && !v.is_store &&
        v.iclass == InstructionClass::kLoad) {
      load = v.uid;
      break;
    }
  }
  const std::array<std::uint32_t, 1> seq = {load};
  const double first = runner.execute_once(seq, 32.0)[0];
  const double second = runner.execute_once(seq, 32.0)[0];
  EXPECT_GT(first, second + 0.5);
  runner.reset_machine_state();
  const double after_reset = runner.execute_once(seq, 32.0)[0];
  EXPECT_GT(after_reset, second + 0.5);
}

TEST(GadgetRunner, ProgramRejectsMoreThanFourEvents) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  GadgetRunner runner(db, spec, 15);
  EXPECT_THROW(runner.program({0, 1, 2, 3, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace aegis::sim
