#include <gtest/gtest.h>

#include <set>

#include "pmu/counter_file.hpp"
#include "pmu/event_database.hpp"

namespace aegis::pmu {
namespace {

using isa::CpuModel;
using isa::InstructionClass;

class DbPerCpuTest : public ::testing::TestWithParam<CpuModel> {};

TEST_P(DbPerCpuTest, EventCountMatchesTableI) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  switch (GetParam()) {
    case CpuModel::kIntelXeonE5_1650: EXPECT_EQ(db.size(), 6166u); break;
    case CpuModel::kIntelXeonE5_4617: EXPECT_EQ(db.size(), 6172u); break;
    case CpuModel::kAmdEpyc7252:
    case CpuModel::kAmdEpyc7313P: EXPECT_EQ(db.size(), 1903u); break;
  }
}

TEST_P(DbPerCpuTest, GuestVisibleCountMatchesWarmupSurvivors) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  std::size_t visible = 0;
  for (const auto& e : db.events()) {
    if (e.response.guest_visible()) ++visible;
  }
  // Section V-B: ~738 events survive warm-up on Intel, 137 on AMD. (One
  // AMD HC event was dropped as physically meaningless: ITLB writes.)
  if (isa::vendor_of(GetParam()) == isa::Vendor::kIntel) {
    EXPECT_NEAR(static_cast<double>(visible), 739.0, 4.0);
  } else {
    EXPECT_NEAR(static_cast<double>(visible), 137.0, 4.0);
  }
}

TEST_P(DbPerCpuTest, IdsAreDense) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  for (std::uint32_t i = 0; i < db.size(); i += 53) {
    EXPECT_EQ(db.by_id(i).id, i);
  }
  EXPECT_THROW(db.by_id(static_cast<std::uint32_t>(db.size())), std::out_of_range);
}

TEST_P(DbPerCpuTest, TracepointsDominateTypeMix) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  const auto counts = db.count_by_type();
  const double total = static_cast<double>(db.size());
  const double t_frac =
      static_cast<double>(counts[static_cast<std::size_t>(EventType::kTracepoint)]) /
      total;
  // Table II: T = 36.15 % (Intel) / 87.17 % (AMD).
  if (isa::vendor_of(GetParam()) == isa::Vendor::kIntel) {
    EXPECT_NEAR(t_frac, 0.3615, 0.01);
  } else {
    EXPECT_NEAR(t_frac, 0.8717, 0.01);
  }
}

TEST_P(DbPerCpuTest, SoftwareAndOtherEventsNeverGuestVisible) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  for (const auto& e : db.events()) {
    if (e.type == EventType::kSoftware || e.type == EventType::kOther) {
      EXPECT_FALSE(e.response.guest_visible()) << e.name;
    }
    if (e.type == EventType::kHardware || e.type == EventType::kHwCache) {
      EXPECT_TRUE(e.response.guest_visible()) << e.name;
    }
  }
}

TEST_P(DbPerCpuTest, NamesAreUnique) {
  const EventDatabase db = EventDatabase::generate(GetParam());
  std::set<std::string> names;
  for (const auto& e : db.events()) names.insert(e.name);
  EXPECT_EQ(names.size(), db.size());
}

INSTANTIATE_TEST_SUITE_P(AllCpus, DbPerCpuTest,
                         ::testing::Values(CpuModel::kIntelXeonE5_1650,
                                           CpuModel::kIntelXeonE5_4617,
                                           CpuModel::kAmdEpyc7252,
                                           CpuModel::kAmdEpyc7313P));

TEST(Db, AmdFamilyMembersShareAllEvents) {
  const auto a = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  const auto b = EventDatabase::generate(CpuModel::kAmdEpyc7313P);
  ASSERT_EQ(a.size(), b.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.events()[i].name != b.events()[i].name) ++differing;
  }
  EXPECT_EQ(differing, 0u);  // Table I: "# of Different Events" = 0
}

TEST(Db, IntelFamilyMembersDifferInFourteenEvents) {
  const auto a = EventDatabase::generate(CpuModel::kIntelXeonE5_1650);
  const auto b = EventDatabase::generate(CpuModel::kIntelXeonE5_4617);
  std::set<std::string> names_a, names_b;
  for (const auto& e : a.events()) names_a.insert(e.name);
  for (const auto& e : b.events()) names_b.insert(e.name);
  std::size_t only_a = 0, only_b = 0;
  for (const auto& n : names_a) {
    if (!names_b.contains(n)) ++only_a;
  }
  for (const auto& n : names_b) {
    if (!names_a.contains(n)) ++only_b;
  }
  EXPECT_EQ(only_a + only_b, 14u);  // Table I: "# of Different Events" = 14
}

TEST(Db, PaperNamedAmdEventsExist) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  for (auto name : kAmdAttackEvents) {
    EXPECT_TRUE(db.find(name).has_value()) << name;
  }
  EXPECT_TRUE(db.find("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR").has_value());
  EXPECT_TRUE(db.find("HW_CACHE_L1D:WRITE:ACCESS").has_value());
}

TEST(Db, PaperNamedIntelEventExists) {
  const auto db = EventDatabase::generate(CpuModel::kIntelXeonE5_1650);
  EXPECT_TRUE(db.find("MEM_LOAD_UOPS_RETIRED:L1_HIT").has_value());
}

TEST(Db, FindMissingEventReturnsNullopt) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  EXPECT_FALSE(db.find("NO_SUCH_EVENT").has_value());
}

TEST(EventResponse, SemanticResponsesMatchStats) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ExecutionStats stats;
  stats.uops = 100;
  stats.mem_reads = 10;
  stats.mem_writes = 5;
  stats.l1_misses = 3;
  stats.llc_misses = 2;

  const auto& uops = db.by_id(*db.find("RETIRED_UOPS")).response;
  EXPECT_DOUBLE_EQ(uops.expected_count(stats), 100.0);
  const auto& ls = db.by_id(*db.find("LS_DISPATCH")).response;
  EXPECT_DOUBLE_EQ(ls.expected_count(stats), 15.0);
  const auto& mab = db.by_id(*db.find("MAB_ALLOCATION_BY_PIPE")).response;
  EXPECT_DOUBLE_EQ(mab.expected_count(stats), 3.0);
  const auto& refill = db.by_id(*db.find("DATA_CACHE_REFILLS_FROM_SYSTEM")).response;
  EXPECT_DOUBLE_EQ(refill.expected_count(stats), 2.0);
}

TEST(EventResponse, NegativeCoefficientsClampAtZero) {
  const auto db = EventDatabase::generate(CpuModel::kIntelXeonE5_1650);
  const auto& hit = db.by_id(*db.find("MEM_LOAD_UOPS_RETIRED:L1_HIT")).response;
  ExecutionStats stats;
  stats.mem_reads = 2;
  stats.l1_misses = 10;  // more misses than loads: hits clamp at 0
  EXPECT_DOUBLE_EQ(hit.expected_count(stats), 0.0);
}

TEST(ExecutionStats, AccumulateAndTotals) {
  ExecutionStats a, b;
  a.class_counts[InstructionClass::kLoad] = 5;
  a.uops = 10;
  a.cycles = 100;
  b.class_counts[InstructionClass::kLoad] = 2;
  b.class_counts[InstructionClass::kStore] = 3;
  b.uops = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a.class_counts[InstructionClass::kLoad], 7.0);
  EXPECT_DOUBLE_EQ(a.total_instructions(), 10.0);
  EXPECT_DOUBLE_EQ(a.uops, 17.0);
}

TEST(CounterFile, ProgramAndAccumulate) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  CounterRegisterFile counters(db, 1);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  counters.program({uops_id});
  ExecutionStats stats;
  stats.uops = 1000;
  counters.accumulate(stats);
  // Measurement noise is bounded to a few percent of the expected count.
  EXPECT_NEAR(counters.read_raw(uops_id), 1000.0, 150.0);
  EXPECT_FALSE(counters.multiplexed());
}

TEST(CounterFile, ResetClearsCounts) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  CounterRegisterFile counters(db, 2);
  const std::uint32_t id = *db.find("RETIRED_UOPS");
  counters.program({id});
  ExecutionStats stats;
  stats.uops = 500;
  counters.tick(stats);
  counters.reset();
  EXPECT_DOUBLE_EQ(counters.read_raw(id), 0.0);
}

TEST(CounterFile, ReadUnprogrammedEventThrows) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  CounterRegisterFile counters(db, 3);
  counters.program({0});
  EXPECT_THROW(counters.read(1), std::invalid_argument);
}

TEST(CounterFile, MultiplexScalingApproximatesFullCount) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  // 8 events on 4 registers: each active half the time; perf-style scaling
  // should roughly recover the full-window count for steady activity.
  std::vector<std::uint32_t> ids;
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  ids.push_back(uops_id);
  for (std::uint32_t i = 0; ids.size() < 8; ++i) {
    if (i != uops_id && db.by_id(i).response.guest_visible()) ids.push_back(i);
  }
  CounterRegisterFile counters(db, 4);
  counters.program(ids);
  EXPECT_TRUE(counters.multiplexed());
  ExecutionStats stats;
  stats.uops = 1000;
  const int slices = 200;
  for (int t = 0; t < slices; ++t) counters.tick(stats);
  const double scaled = counters.read(uops_id);
  EXPECT_NEAR(scaled, 1000.0 * slices, 1000.0 * slices * 0.12);
  // The raw count is roughly half, since the event was active half the time.
  EXPECT_NEAR(counters.read_raw(uops_id), 1000.0 * slices / 2.0,
              1000.0 * slices * 0.12);
}

TEST(CounterFile, HostBackgroundAccruesForHostOnlyEvents) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  // Find a host-only event with a non-zero background rate.
  std::uint32_t host_event = 0;
  bool found = false;
  for (const auto& e : db.events()) {
    if (!e.response.guest_visible() && e.response.host_background > 1.0f) {
      host_event = e.id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  CounterRegisterFile counters(db, 5);
  counters.program({host_event});
  ExecutionStats idle;  // no guest work at all
  for (int t = 0; t < 100; ++t) counters.tick(idle);
  EXPECT_GT(counters.read_raw(host_event), 0.0);
}

namespace {
/// Eight guest-visible events (two counter groups) with RETIRED_UOPS at the
/// given slot, so tests can pin which multiplex group it lands in.
std::vector<std::uint32_t> eight_events_with_uops_at(const EventDatabase& db,
                                                     std::size_t slot) {
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; ids.size() < 8; ++i) {
    if (ids.size() == slot) {
      ids.push_back(uops_id);
      continue;
    }
    if (i != uops_id && db.by_id(i).response.guest_visible()) ids.push_back(i);
  }
  return ids;
}
}  // namespace

TEST(CounterFile, EndSliceRotatesActiveGroup) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  // RETIRED_UOPS in slot 4 = the second counter group.
  CounterRegisterFile counters(db, 6);
  counters.program(eight_events_with_uops_at(db, 4));
  ExecutionStats stats;
  stats.uops = 1000;

  // Group 0 is active first: work accumulated now must not reach group 1.
  counters.accumulate(stats);
  EXPECT_DOUBLE_EQ(counters.read_raw(uops_id), 0.0);

  // end_slice rotates to group 1; the same work now lands on RETIRED_UOPS.
  counters.end_slice();
  counters.accumulate(stats);
  const double after_rotation = counters.read_raw(uops_id);
  EXPECT_GT(after_rotation, 0.0);

  // The next end_slice applies per-slice noise to group 1 (still active),
  // then wraps back to group 0: RETIRED_UOPS stops counting entirely.
  counters.end_slice();
  const double after_wrap = counters.read_raw(uops_id);
  counters.accumulate(stats);
  EXPECT_DOUBLE_EQ(counters.read_raw(uops_id), after_wrap);
}

TEST(CounterFile, ReadExtrapolatesByActiveSliceRatio) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  CounterRegisterFile counters(db, 7);
  counters.program(eight_events_with_uops_at(db, 0));
  ExecutionStats stats;
  stats.uops = 1000;
  // 16 slices over 2 groups: each group active exactly 8. The perf-style
  // estimate is count * total_slices / active_slices = count * 2, and with
  // power-of-two slice counts the scaling is exact in floating point.
  for (int t = 0; t < 16; ++t) counters.tick(stats);
  const double raw = counters.read_raw(uops_id);
  ASSERT_GT(raw, 0.0);
  EXPECT_DOUBLE_EQ(counters.read(uops_id), raw * 2.0);
}

TEST(CounterFile, ReadBeforeAnyCompletedSliceIsZero) {
  const auto db = EventDatabase::generate(CpuModel::kAmdEpyc7252);
  const std::uint32_t uops_id = *db.find("RETIRED_UOPS");
  CounterRegisterFile counters(db, 8);
  counters.program(eight_events_with_uops_at(db, 0));
  ExecutionStats stats;
  stats.uops = 1000;
  // Work accumulated but no slice completed: active_slices is still 0, so
  // the scaled estimate reports 0 even though raw counts exist (perf has no
  // running-time to extrapolate from).
  counters.accumulate(stats);
  EXPECT_GT(counters.read_raw(uops_id), 0.0);
  EXPECT_DOUBLE_EQ(counters.read(uops_id), 0.0);
}

TEST(EventResponse, GuestVisibleIgnoresInterruptCoupling) {
  // Interrupt delivery is host-scheduled noise (C2): an event coupled only
  // to interrupts says nothing about guest activity and must not pass the
  // warm-up filter. See the invariant note on guest_visible().
  EventResponse response;
  response.per_interrupt = 5.0f;
  EXPECT_FALSE(response.guest_visible());
  // Its expected count still reflects interrupts...
  ExecutionStats stats;
  stats.interrupts = 3;
  EXPECT_DOUBLE_EQ(response.expected_count(stats), 15.0);
  // ...and any genuine guest coefficient flips visibility.
  response.per_uop = 1.0f;
  EXPECT_TRUE(response.guest_visible());
}

TEST(EventType, ShortCodesMatchTableII) {
  EXPECT_EQ(short_code(EventType::kHardware), "H");
  EXPECT_EQ(short_code(EventType::kSoftware), "S");
  EXPECT_EQ(short_code(EventType::kHwCache), "HC");
  EXPECT_EQ(short_code(EventType::kTracepoint), "T");
  EXPECT_EQ(short_code(EventType::kRawCpu), "R");
  EXPECT_EQ(short_code(EventType::kOther), "O");
}

}  // namespace
}  // namespace aegis::pmu
