#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string_view>

#include "util/arena.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace aegis::util {
namespace {

// The superblock cache (sim/gadget_runner.cpp) dereferences arena pointers
// from a noalloc loop for the process lifetime; stability across growth is
// the whole contract.
TEST(Arena, AddressesStableAcrossChunkGrowth) {
  Arena<int, 4> arena;
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.push();
    *p = i;
    ptrs.push_back(p);
  }
  EXPECT_EQ(arena.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*ptrs[i], i) << "object " << i << " moved or was overwritten";
  }
}

TEST(Arena, ClearReleasesEverything) {
  Arena<double, 8> arena;
  for (int i = 0; i < 20; ++i) *arena.push() = 1.0;
  EXPECT_EQ(arena.size(), 20u);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  // Reusable after clear; objects are default-constructed again.
  double* p = arena.push();
  EXPECT_EQ(*p, 0.0);
  EXPECT_EQ(arena.size(), 1u);
}

// Golden vectors for FNV-1a 64. The hash names on-disk template-cache
// files (service/template_cache.cpp), so any drift in the offset basis,
// prime, or byte order silently invalidates every cached template; these
// constants pin the algorithm, independently computed from the FNV spec.
TEST(FnvHash, GoldenValuesPinTheAlgorithm) {
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("aegis"), 0x53ee4f03d03d1a6cULL);
  EXPECT_EQ(fnv1a("The quick brown fox"), 0x2374316b9b449782ULL);
  // hash_combine(double) chains the exact bit pattern.
  EXPECT_EQ(hash_combine(kFnvOffset, 1.5), 0xaa95e93229a27c80ULL);
}

TEST(FnvHash, ChainingMatchesOneShotOverConcatenation) {
  // NB: the chained call must go through the string_view overload by name;
  // a bare literal + state would resolve to fnv1a(const void*, size_t).
  const std::string_view head = "The quick ";
  const std::string_view tail = "brown fox";
  EXPECT_EQ(fnv1a(tail, fnv1a(head)), fnv1a("The quick brown fox"));
  const std::uint64_t word = 0x1122334455667788ULL;
  EXPECT_EQ(hash_combine(kFnvOffset, word),
            fnv1a(&word, sizeof(word)));
}

TEST(SplitMixStreams, GoldenFirstSixteenOutputs) {
  // Platform-stability pin for the shard-stream derivation: the parallel
  // campaign's bit-identical-across-thread-counts guarantee rests on
  // split_mix64(seed, stream) producing these exact seeds everywhere.
  // Pinned from the reference implementation (pure 64-bit integer
  // arithmetic, so any conforming platform must match).
  constexpr std::uint64_t kGolden[16] = {
      0x044c3cd7f43c661cULL, 0xe6984080bab12a02ULL,
      0x953aeb70673e29cbULL, 0x73d33b666a1e21daULL,
      0x3fdabe86cbbeaa11ULL, 0x77cbc4a133c2d0f6ULL,
      0x53fcd6513d02befeULL, 0x225ec07a99506761ULL,
      0x69c3a27688795369ULL, 0x1a82e79b05b5faebULL,
      0xf5ba4eb728dd632cULL, 0xeb0354df4a45b34eULL,
      0xdf0f9924a3016430ULL, 0xdd2f9b2d0b5f15e6ULL,
      0x8c5c906b1aeb85f8ULL, 0xe12e5d006cd3d6afULL,
  };
  for (std::uint64_t stream = 0; stream < 16; ++stream) {
    EXPECT_EQ(split_mix64(7, stream), kGolden[stream]) << stream;
  }
}

TEST(SplitMixStreams, DerivedStreamsAreDeterministicAndDistinct) {
  EXPECT_EQ(split_mix64(7, 3), split_mix64(7, 3));
  EXPECT_NE(split_mix64(7, 3), split_mix64(7, 4));
  EXPECT_NE(split_mix64(7, 3), split_mix64(8, 3));
}

TEST(SplitMixStreams, PairwiseXorPassesChiSquare) {
  // Stream independence: XOR two derived streams' outputs and check the
  // result is still uniform. Correlated streams (e.g. naive seed+i) would
  // concentrate mass in a few buckets. 64 buckets from the low 6 bits,
  // 4096 draws per pair: E = 64 per bucket; chi-square threshold 110 is
  // ~p=0.0001 at 63 dof — far beyond noise, tight against correlation.
  constexpr std::size_t kStreams = 6;
  constexpr std::size_t kDraws = 4096;
  constexpr std::size_t kBuckets = 64;
  std::vector<std::vector<std::uint64_t>> outputs(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    Rng rng(split_mix64(7, s));
    outputs[s].reserve(kDraws);
    for (std::size_t i = 0; i < kDraws; ++i) outputs[s].push_back(rng.next_u64());
  }
  for (std::size_t a = 0; a < kStreams; ++a) {
    for (std::size_t b = a + 1; b < kStreams; ++b) {
      std::vector<std::size_t> buckets(kBuckets, 0);
      for (std::size_t i = 0; i < kDraws; ++i) {
        ++buckets[(outputs[a][i] ^ outputs[b][i]) & (kBuckets - 1)];
      }
      const double expected =
          static_cast<double>(kDraws) / static_cast<double>(kBuckets);
      double chi2 = 0.0;
      for (std::size_t k = 0; k < kBuckets; ++k) {
        const double d = static_cast<double>(buckets[k]) - expected;
        chi2 += d * d / expected;
      }
      EXPECT_LT(chi2, 110.0) << "streams " << a << " and " << b;
    }
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[rng.uniform_index(5)];
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 40000; ++i) samples.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mean(samples), 2.0, 0.1);
  EXPECT_NEAR(stddev(samples), 3.0, 0.1);
}

TEST(Rng, LaplaceMomentsMatch) {
  Rng rng(12);
  std::vector<double> samples;
  const double b = 2.0;
  for (int i = 0; i < 60000; ++i) samples.push_back(rng.laplace(1.0, b));
  EXPECT_NEAR(mean(samples), 1.0, 0.08);
  // Laplace variance = 2 b^2.
  EXPECT_NEAR(variance(samples), 2.0 * b * b, 0.4);
}

TEST(Rng, LaplaceMedianIsMu) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.laplace(-4.0, 1.0));
  EXPECT_NEAR(median(samples), -4.0, 0.06);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(14);
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) samples.push_back(rng.exponential(0.5));
  EXPECT_NEAR(mean(samples), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

class PoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonTest, MeanAndVarianceEqualLambda) {
  const double lambda = GetParam();
  Rng rng(16);
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) {
    samples.push_back(static_cast<double>(rng.poisson(lambda)));
  }
  EXPECT_NEAR(mean(samples), lambda, std::max(0.05, lambda * 0.05));
  EXPECT_NEAR(variance(samples), lambda, std::max(0.1, lambda * 0.12));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonTest,
                         ::testing::Values(0.3, 1.0, 4.0, 12.0, 50.0));

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Stats, MeanAndVariance) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 2.5);
}

TEST(Stats, EmptyInputsAreZero) {
  std::vector<double> v;
  EXPECT_EQ(mean(v), 0.0);
  EXPECT_EQ(variance(v), 0.0);
  EXPECT_EQ(median(v), 0.0);
  EXPECT_EQ(quantile(v, 0.5), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  std::vector<double> odd{5, 1, 3};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  std::vector<double> x{1, 1, 1, 1};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Stats, GaussianFitRecoverParams) {
  Rng rng(20);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(7.0, 2.0));
  const GaussianFit fit = fit_gaussian(samples);
  EXPECT_NEAR(fit.mu, 7.0, 0.05);
  EXPECT_NEAR(fit.sigma, 2.0, 0.05);
}

TEST(Stats, GaussianPdfIntegratesToOne) {
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -8.0; x < 8.0; x += dx) {
    integral += gaussian_pdf(x, 0.0, 1.0) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Stats, GaussianCdfKnownValues) {
  EXPECT_NEAR(gaussian_cdf(0.0, 0.0, 1.0), 0.5, 1e-9);
  EXPECT_NEAR(gaussian_cdf(1.96, 0.0, 1.0), 0.975, 1e-3);
}

class InverseNormalTest : public ::testing::TestWithParam<double> {};

TEST_P(InverseNormalTest, RoundTripsThroughCdf) {
  const double p = GetParam();
  const double x = inverse_normal_cdf(p);
  EXPECT_NEAR(gaussian_cdf(x, 0.0, 1.0), p, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, InverseNormalTest,
                         ::testing::Values(0.001, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.99, 0.999));

TEST(Stats, QqCorrelationHighForNormalSamples) {
  Rng rng(21);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.normal(3.0, 5.0));
  EXPECT_GT(qq_normal_correlation(samples), 0.995);
}

TEST(Stats, QqCorrelationLowerForExponentialSamples) {
  Rng rng(22);
  std::vector<double> normal_s, exp_s;
  for (int i = 0; i < 2000; ++i) {
    normal_s.push_back(rng.normal(0.0, 1.0));
    exp_s.push_back(rng.exponential(1.0));
  }
  EXPECT_GT(qq_normal_correlation(normal_s), qq_normal_correlation(exp_s));
}

TEST(Stats, HistogramCountsSumToInput) {
  std::vector<double> v{0.0, 0.5, 1.0, 2.0, 3.0, 3.0};
  const Histogram h = make_histogram(v, 4);
  std::size_t total = 0;
  for (std::size_t c : h.counts) total += c;
  EXPECT_EQ(total, v.size());
}

TEST(Stats, StandardizeYieldsZeroMeanUnitVariance) {
  Rng rng(23);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.normal(10.0, 4.0));
  standardize(v);
  EXPECT_NEAR(mean(v), 0.0, 1e-9);
  EXPECT_NEAR(stddev(v), 1.0, 1e-9);
}

TEST(Stats, StandardizeConstantBecomesZeros) {
  std::vector<double> v{5, 5, 5};
  standardize(v);
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_group(11464996), "11,464,996");
  EXPECT_EQ(fmt_group(-1234), "-1,234");
  EXPECT_EQ(fmt_group(0), "0");
}

TEST(Table, CsvOutput) {
  std::ostringstream os;
  write_csv(os, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

}  // namespace
}  // namespace aegis::util
