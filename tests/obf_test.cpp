#include <gtest/gtest.h>

#include "dp/accountant.hpp"
#include "fuzzer/set_cover.hpp"
#include "obf/injector.hpp"
#include "obf/rotating_plan.hpp"
#include "obf/kernel_controller.hpp"
#include "obf/noise_calculator.hpp"
#include "obf/obfuscator.hpp"
#include "util/stats.hpp"
#include "workload/website.hpp"

namespace aegis::obf {
namespace {

using isa::CpuModel;
using isa::InstructionClass;

struct Fixture {
  pmu::EventDatabase db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(CpuModel::kAmdEpyc7252);

  std::uint32_t find_variant(InstructionClass iclass, bool mem = false) const {
    for (const auto& v : spec.variants()) {
      if (v.legal() && v.iclass == iclass && v.has_memory_operand == mem) {
        return v.uid;
      }
    }
    throw std::runtime_error("variant not found");
  }

  /// A small hand-made cover: nop+div (uops), clflush+load (cache misses).
  fuzzer::GadgetCover make_cover() const {
    fuzzer::GadgetCover cover;
    cover.gadgets = {
        {find_variant(InstructionClass::kNop),
         find_variant(InstructionClass::kIntDiv, true)},
        {find_variant(InstructionClass::kCacheFlush, true),
         find_variant(InstructionClass::kLoad, true)},
    };
    const std::uint32_t uops = *db.find("RETIRED_UOPS");
    const std::uint32_t refills = *db.find("DATA_CACHE_REFILLS_FROM_SYSTEM");
    cover.covered_events = {uops, refills};
    cover.segment_effect = {{uops, 14.0}, {refills, 1.0}};
    return cover;
  }
};

TEST(NoiseCalculator, BufferedLaplaceMatchesDistribution) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kLaplace;
  config.epsilon = 0.5;
  config.seed = 1;
  NoiseCalculator calc(config, 512);
  std::vector<double> noise;
  for (int i = 0; i < 50000; ++i) noise.push_back(calc.noise_for(0.0));
  EXPECT_NEAR(util::mean(noise), 0.0, 0.06);
  // Lap(2) variance = 8.
  EXPECT_NEAR(util::variance(noise), 8.0, 0.6);
}

TEST(NoiseCalculator, PrecomputeBatchSpansRefills) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kLaplace;
  config.epsilon = 1.0;
  NoiseCalculator calc(config, 64);
  const auto batch = calc.precompute_batch(200);  // forces several refills
  EXPECT_EQ(batch.size(), 200u);
  EXPECT_GT(util::stddev(batch), 0.5);
}

TEST(NoiseCalculator, DStarUsesObservations) {
  dp::MechanismConfig config;
  config.kind = dp::MechanismKind::kDStar;
  config.epsilon = 1e6;  // negligible noise: output tracks reconstruction
  NoiseCalculator calc(config);
  // Rising series: with near-zero noise the noise_for values stay ~0
  // (noisy_value tracks x).
  for (int t = 1; t <= 32; ++t) {
    EXPECT_NEAR(calc.noise_for(static_cast<double>(t)), 0.0, 1e-3);
  }
  calc.reset_series();
  EXPECT_NEAR(calc.noise_for(100.0), 0.0, 1e-3);
}

TEST(KernelController, SamplesAndQueues) {
  Fixture f;
  const std::uint32_t uops = *f.db.find("RETIRED_UOPS");
  KernelController controller(f.db, uops, 100.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 1);
  sim::InstructionBlock b;
  b.uops = 5000;
  vm.submit(b);
  (void)vm.run_slice();
  controller.sample(vm);
  EXPECT_EQ(controller.queued(), 1u);
  // 5000 uops (plus interrupt handler uops) normalized by 100.
  const double x = controller.dequeue();
  EXPECT_GT(x, 40.0);
  EXPECT_LT(x, 80.0);
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.dequeue(), 0.0);  // empty channel
}

TEST(Injector, BuildsStackedSegment) {
  Fixture f;
  NoiseInjector injector(f.spec, f.make_cover(), 10.0, 6.0);
  EXPECT_EQ(injector.segment_gadgets(), 2u);
  const auto& segment = injector.segment_block();
  EXPECT_GT(segment.uops, 0.0);
  EXPECT_GT(segment.read_bytes, 0.0);   // the load trigger
  EXPECT_GT(segment.flush_bytes, 0.0);  // the clflush reset
}

TEST(Injector, RejectsEmptyCover) {
  Fixture f;
  EXPECT_THROW(NoiseInjector(f.spec, fuzzer::GadgetCover{}, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Injector, NegativeNoiseInjectsNothing) {
  Fixture f;
  NoiseInjector injector(f.spec, f.make_cover(), 10.0, 6.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 2);
  EXPECT_DOUBLE_EQ(injector.inject(vm, -3.0), 0.0);
  EXPECT_FALSE(vm.pending());
  EXPECT_DOUBLE_EQ(injector.total_repetitions(), 0.0);
}

TEST(Injector, ClipsAtUpperBound) {
  Fixture f;
  NoiseInjector injector(f.spec, f.make_cover(), 10.0, 2.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 3);
  // noise 100 >> clip 2: injected reps = 2 * 10.
  EXPECT_DOUBLE_EQ(injector.inject(vm, 100.0), 20.0);
}

TEST(Injector, RepsScaleWithNoise) {
  Fixture f;
  NoiseInjector injector(f.spec, f.make_cover(), 10.0, 100.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 4);
  EXPECT_DOUBLE_EQ(injector.inject(vm, 1.5), 15.0);
  EXPECT_DOUBLE_EQ(injector.inject(vm, 3.0), 30.0);
  EXPECT_DOUBLE_EQ(injector.total_repetitions(), 45.0);
  EXPECT_TRUE(vm.pending());
}

TEST(Injector, LargeInjectionsAreChunked) {
  Fixture f;
  NoiseInjector injector(f.spec, f.make_cover(), 1e4, 1e9);
  sim::VirtualMachine vm(sim::VmConfig{}, 5);
  (void)injector.inject(vm, 10.0);  // 1e5 reps: far beyond one chunk
  // Multiple queued blocks rather than one monolith.
  int slices = 0;
  while (vm.pending() && slices < 10000) {
    (void)vm.run_slice();
    ++slices;
  }
  EXPECT_GT(slices, 1);
}

TEST(Obfuscator, SessionInjectsIntoVm) {
  Fixture f;
  ObfuscatorConfig config;
  config.mechanism.kind = dp::MechanismKind::kLaplace;
  config.mechanism.epsilon = 1.0;
  config.reference_event = *f.db.find("RETIRED_UOPS");
  config.reference_sigma = 1000.0;
  config.unit_reps = 50.0;
  config.seed = 6;
  EventObfuscator obf(f.db, f.spec, f.make_cover(), config);
  EXPECT_DOUBLE_EQ(obf.total_injected_repetitions(), 0.0);

  sim::VirtualMachine vm(sim::VmConfig{}, 7);
  auto agent = obf.session();
  for (std::size_t t = 0; t < 100; ++t) {
    agent(vm, t);
    (void)vm.run_slice();
  }
  EXPECT_EQ(obf.sessions_started(), 1u);
  // Laplace(1) noise, positive half injected: ~0.5 * unit_reps per slice.
  EXPECT_GT(obf.total_injected_repetitions(), 100.0);
  EXPECT_GT(obf.total_injected_reference_counts(),
            obf.total_injected_repetitions());  // delta 14 on RETIRED_UOPS
}

TEST(Obfuscator, DefenseInflatesMonitoredCounts) {
  Fixture f;
  ObfuscatorConfig config;
  config.mechanism.kind = dp::MechanismKind::kLaplace;
  config.mechanism.epsilon = 0.5;
  config.reference_event = *f.db.find("RETIRED_UOPS");
  config.reference_sigma = 1000.0;
  config.unit_reps = 100.0;
  config.seed = 8;
  EventObfuscator obf(f.db, f.spec, f.make_cover(), config);

  const std::uint32_t uops = *f.db.find("RETIRED_UOPS");
  workload::WebsiteWorkload site(0, 150);
  auto run_total = [&](const sim::SliceAgent& agent) {
    sim::VirtualMachine vm(sim::VmConfig{}, 9);
    sim::HostMonitor monitor(f.db, 10);
    const auto result = monitor.monitor(vm, site.visit(55), {uops}, 150, agent);
    double total = 0.0;
    for (const auto& row : result.samples) total += row[0];
    return total;
  };
  const double clean = run_total(nullptr);
  const double defended = run_total(obf.session());
  EXPECT_GT(defended, clean * 1.05);
}

TEST(Obfuscator, SessionsAreIndependentSeries) {
  Fixture f;
  ObfuscatorConfig config;
  config.mechanism.kind = dp::MechanismKind::kDStar;
  config.mechanism.epsilon = 1.0;
  config.reference_event = *f.db.find("RETIRED_UOPS");
  config.reference_sigma = 1000.0;
  config.unit_reps = 10.0;
  config.seed = 11;
  EventObfuscator obf(f.db, f.spec, f.make_cover(), config);
  auto a = obf.session();
  auto b = obf.session();
  EXPECT_EQ(obf.sessions_started(), 2u);
  sim::VirtualMachine vm_a(sim::VmConfig{}, 12), vm_b(sim::VmConfig{}, 12);
  // Both sessions run without interference (separate mechanism state).
  for (std::size_t t = 0; t < 20; ++t) {
    a(vm_a, t);
    b(vm_b, t);
    (void)vm_a.run_slice();
    (void)vm_b.run_slice();
  }
  EXPECT_GT(obf.total_injected_repetitions(), 0.0);
}

TEST(Calibration, ComputesSpreadAcrossSecrets) {
  Fixture f;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  secrets.push_back(std::make_unique<workload::WebsiteWorkload>(0, 120));
  secrets.push_back(std::make_unique<workload::WebsiteWorkload>(1, 120));
  const std::uint32_t uops = *f.db.find("RETIRED_UOPS");
  const std::uint32_t ls = *f.db.find("LS_DISPATCH");
  const auto cals = calibrate_events(f.db, {uops, ls}, secrets, 2, 13);
  ASSERT_EQ(cals.size(), 2u);
  for (const auto& cal : cals) {
    EXPECT_GT(cal.stddev, 0.0);
    EXPECT_GT(cal.mean, 0.0);
    EXPECT_GE(cal.peak, cal.mean);
  }
  EXPECT_EQ(cals[0].event_id, uops);
  EXPECT_EQ(cals[1].event_id, ls);
}

TEST(RotatingPlan, ScheduleIsPeriodicAndCoversEveryVariant) {
  Fixture f;
  std::vector<WeightedGadget> base;
  for (const auto& g : f.make_cover().gadgets) base.push_back({g, 1.0});
  RotatingPlanConfig config;
  config.variants = 3;
  config.period = 8;
  config.seed = 17;
  const RotatingPlan plan(base, config);
  EXPECT_EQ(plan.variants(), 3u);
  EXPECT_EQ(plan.period(), 8u);
  std::vector<bool> seen(plan.variants(), false);
  for (std::size_t t = 0; t < 3 * 8; ++t) {
    const std::size_t v = plan.variant_at(t);
    ASSERT_LT(v, plan.variants());
    seen[v] = true;
    // Constant within a period window.
    EXPECT_EQ(v, plan.variant_at((t / 8) * 8));
  }
  for (bool s : seen) EXPECT_TRUE(s);
  // Deterministic: same base + config -> same schedule.
  const RotatingPlan replay(base, config);
  for (std::size_t t = 0; t < 64; ++t) {
    EXPECT_EQ(plan.variant_at(t), replay.variant_at(t));
  }
}

TEST(RotatingPlan, VariantsKeepGadgetListButVaryWeights) {
  Fixture f;
  std::vector<WeightedGadget> base;
  for (const auto& g : f.make_cover().gadgets) base.push_back({g, 1.0});
  RotatingPlanConfig config;
  config.variants = 2;
  const RotatingPlan plan(base, config);
  bool weights_differ = false;
  for (std::size_t v = 0; v < plan.variants(); ++v) {
    const auto& segment = plan.segment(v);
    // Same gadget streams in the same order: rotation must never change
    // the stream count (that is what keeps it privacy-neutral).
    ASSERT_EQ(segment.size(), base.size());
    for (std::size_t g = 0; g < segment.size(); ++g) {
      EXPECT_EQ(segment[g].gadget, base[g].gadget);
      EXPECT_GE(segment[g].weight, base[g].weight);
      if (segment[g].weight != plan.segment(0)[g].weight) {
        weights_differ = true;
      }
    }
  }
  EXPECT_TRUE(weights_differ);
}

TEST(RotatingPlan, RejectsEmptyBase) {
  EXPECT_THROW(RotatingPlan({}, RotatingPlanConfig{}), std::invalid_argument);
}

TEST(Obfuscator, RotationIsPrivacyNeutral) {
  // The ISSUE's property: a rotating plan spends exactly the same privacy
  // budget per monitoring window as the fixed plan. Rotation changes WHICH
  // gadget weights realize the noise, never how many DP releases are drawn,
  // so the accountant's totals must be equal, not merely close.
  Fixture f;
  ObfuscatorConfig config;
  config.mechanism.kind = dp::MechanismKind::kLaplace;
  config.mechanism.epsilon = 0.5;
  config.reference_event = *f.db.find("RETIRED_UOPS");
  config.reference_sigma = 100.0;
  config.unit_reps = 10.0;
  config.seed = 21;
  EventObfuscator fixed(f.db, f.spec, f.make_cover(), config);
  config.rotate = true;
  config.rotation.variants = 3;
  config.rotation.period = 8;
  EventObfuscator rotating(f.db, f.spec, f.make_cover(), config);

  auto drive = [](EventObfuscator& obf) {
    sim::VirtualMachine vm(sim::VmConfig{}, 3);
    const sim::SliceAgent agent = obf.session();
    for (std::size_t t = 0; t < 64; ++t) {
      agent(vm, t);
      (void)vm.run_slice();
    }
  };
  drive(fixed);
  drive(rotating);

  ASSERT_GT(fixed.total_noise_draws(), 0u);
  EXPECT_EQ(fixed.total_noise_draws(), rotating.total_noise_draws());
  EXPECT_GT(rotating.total_injected_repetitions(), 0.0);

  dp::PrivacyAccountant fixed_budget, rotating_budget;
  fixed_budget.record_releases(config.mechanism.epsilon,
                               fixed.total_noise_draws());
  rotating_budget.record_releases(config.mechanism.epsilon,
                                  rotating.total_noise_draws());
  EXPECT_DOUBLE_EQ(fixed_budget.basic_epsilon(),
                   rotating_budget.basic_epsilon());
  EXPECT_DOUBLE_EQ(fixed_budget.advanced_epsilon(1e-6),
                   rotating_budget.advanced_epsilon(1e-6));
}

}  // namespace
}  // namespace aegis::obf
