#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/gaussian.hpp"
#include "trace/mutual_information.hpp"
#include "trace/pca.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace aegis::trace {
namespace {

Trace make_trace(std::size_t slices, std::size_t events, double base) {
  Trace t;
  t.samples.assign(slices, std::vector<double>(events, 0.0));
  for (std::size_t s = 0; s < slices; ++s) {
    for (std::size_t e = 0; e < events; ++e) {
      t.samples[s][e] = base + static_cast<double>(s) + 10.0 * static_cast<double>(e);
    }
  }
  return t;
}

TEST(Trace, ShapeAccessors) {
  const Trace t = make_trace(10, 4, 0.0);
  EXPECT_EQ(t.slices(), 10u);
  EXPECT_EQ(t.events(), 4u);
  EXPECT_EQ(Trace{}.events(), 0u);
}

TEST(Trace, EventSeriesExtractsColumn) {
  const Trace t = make_trace(5, 3, 1.0);
  const auto series = t.event_series(2);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0], 21.0);
  EXPECT_DOUBLE_EQ(series[4], 25.0);
}

TEST(Trace, EventTotalSums) {
  const Trace t = make_trace(4, 2, 0.0);
  EXPECT_DOUBLE_EQ(t.event_total(0), 0 + 1 + 2 + 3);
}

TEST(Trace, WindowFeaturesAverageCorrectly) {
  Trace t;
  t.samples = {{2.0}, {4.0}, {10.0}, {20.0}};
  const auto f = t.window_features(2);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0], 3.0);
  EXPECT_DOUBLE_EQ(f[1], 15.0);
}

TEST(Trace, WindowFeaturesLayoutIsEventMajor) {
  Trace t;
  t.samples = {{1.0, 100.0}, {3.0, 300.0}};
  const auto f = t.window_features(2);
  ASSERT_EQ(f.size(), 4u);
  // Layout: e0w0, e0w1, e1w0, e1w1.
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 3.0);
  EXPECT_DOUBLE_EQ(f[2], 100.0);
  EXPECT_DOUBLE_EQ(f[3], 300.0);
}

TEST(Trace, WindowCountClampedToSlices) {
  Trace t;
  t.samples = {{1.0}, {2.0}};
  EXPECT_EQ(t.window_features(10).size(), 2u);
}

TEST(Trace, PaddedWindowFeaturesKeepFixedDimension) {
  // Attacker-stepped sampling produces variable-length traces; classifiers
  // need a dimension that depends only on `windows`, never on T.
  Trace shorter, longer;
  shorter.samples = {{1.0}, {3.0}};
  longer.samples.assign(12, {2.0});
  EXPECT_EQ(shorter.window_features(4, /*pad=*/true).size(), 4u);
  EXPECT_EQ(longer.window_features(4, /*pad=*/true).size(), 4u);
  // Samples land at w = t * windows / T; untouched windows stay zero.
  const auto f = shorter.window_features(4, /*pad=*/true);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  // With T >= windows, pad changes nothing.
  EXPECT_EQ(longer.window_features(4, /*pad=*/true),
            longer.window_features(4));
}

TEST(Trace, SortedWindowFeaturesAreBurstPositionInvariant) {
  Trace early, late;
  early.samples.assign(20, {0.0});
  late.samples.assign(20, {0.0});
  early.samples[2][0] = 50.0;  // burst at the start
  late.samples[17][0] = 50.0;  // same burst at the end
  EXPECT_EQ(early.sorted_window_features(20), late.sorted_window_features(20));
  EXPECT_NE(early.window_features(20), late.window_features(20));
}

TEST(TraceSet, SplitPreservesAllSamples) {
  TraceSet set;
  set.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    set.traces.push_back(make_trace(3, 1, i));
    set.labels.push_back(i % 2);
  }
  util::Rng rng(5);
  TraceSet train, val;
  set.split(0.7, rng, train, val);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(val.size(), 3u);
  EXPECT_EQ(train.num_classes, 2);
}

TEST(TraceSet, SplitByIdPreservesAllSamplesAndIsDisjoint) {
  TraceSet set;
  set.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    set.traces.push_back(make_trace(3, 1, i));
    set.labels.push_back(i % 2);
  }
  TraceSet train, val;
  set.split_by_id(0.7, 5, train, val);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(val.size(), 3u);
  EXPECT_EQ(train.num_classes, 2);
  // Every trace lands in exactly one half (identity = its base value).
  std::vector<double> seen;
  for (const auto& t : train.traces) seen.push_back(t.samples[0][0]);
  for (const auto& t : val.traces) seen.push_back(t.samples[0][0]);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(TraceSet, SplitByIdIsPureFunctionOfSeedAndId) {
  // Regression: the split must not depend on ambient RNG state or call
  // order — two calls with the same seed produce identical halves, and a
  // different seed produces a different assignment.
  TraceSet set;
  set.num_classes = 4;
  for (int i = 0; i < 16; ++i) {
    set.traces.push_back(make_trace(2, 1, i));
    set.labels.push_back(i % 4);
  }
  TraceSet train_a, val_a, train_b, val_b;
  set.split_by_id(0.75, 42, train_a, val_a);
  set.split_by_id(0.75, 42, train_b, val_b);
  ASSERT_EQ(train_a.size(), train_b.size());
  for (std::size_t i = 0; i < train_a.size(); ++i) {
    EXPECT_EQ(train_a.traces[i].samples, train_b.traces[i].samples);
    EXPECT_EQ(train_a.labels[i], train_b.labels[i]);
  }
  TraceSet train_c, val_c;
  set.split_by_id(0.75, 43, train_c, val_c);
  bool any_difference = false;
  for (std::size_t i = 0; i < train_a.size(); ++i) {
    if (train_a.traces[i].samples != train_c.traces[i].samples) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Trace, SplitOrderByIdIsDeterministicPermutation) {
  const std::vector<std::size_t> a = split_order_by_id(20, 7);
  const std::vector<std::size_t> b = split_order_by_id(20, 7);
  EXPECT_EQ(a, b);
  std::vector<std::size_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_NE(split_order_by_id(20, 8), a);
}

TEST(Trace, SplitOrderByIdRanksIdsIndependentlyOfSetSize) {
  // Each id's rank key is split_mix64(seed, id): adding traces to the set
  // must not reshuffle the relative order of the ids already present.
  const std::vector<std::size_t> small = split_order_by_id(10, 11);
  const std::vector<std::size_t> large = split_order_by_id(14, 11);
  std::vector<std::size_t> restricted;
  for (std::size_t id : large) {
    if (id < 10) restricted.push_back(id);
  }
  EXPECT_EQ(restricted, small);
}

TEST(Standardizer, NormalizesTrainDistribution) {
  util::Rng rng(6);
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 2000; ++i) {
    X.push_back({rng.normal(5.0, 2.0), rng.normal(-1.0, 0.5)});
  }
  Standardizer s;
  s.fit(X);
  s.apply_all(X);
  std::vector<double> col0, col1;
  for (const auto& x : X) {
    col0.push_back(x[0]);
    col1.push_back(x[1]);
  }
  EXPECT_NEAR(util::mean(col0), 0.0, 1e-9);
  EXPECT_NEAR(util::stddev(col0), 1.0, 1e-2);
  EXPECT_NEAR(util::mean(col1), 0.0, 1e-9);
}

TEST(Standardizer, ConstantDimensionMapsToZero) {
  std::vector<std::vector<double>> X = {{3.0, 1.0}, {3.0, 2.0}};
  Standardizer s;
  s.fit(X);
  std::vector<double> f{3.0, 1.5};
  s.apply(f);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

TEST(Standardizer, ThrowsOnEmptyFit) {
  Standardizer s;
  EXPECT_THROW(s.fit({}), std::invalid_argument);
  EXPECT_FALSE(s.fitted());
}

TEST(Pca, RecoversDominantDirection) {
  util::Rng rng(7);
  // Data varies strongly along (1, 1)/sqrt(2) and weakly along (1, -1).
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 3000; ++i) {
    const double major = rng.normal(0.0, 10.0);
    const double minor = rng.normal(0.0, 0.5);
    X.push_back({major + minor, major - minor});
  }
  Pca pca;
  pca.fit(X, 2);
  const auto& c0 = pca.components()[0];
  EXPECT_NEAR(std::abs(c0[0]), std::abs(c0[1]), 0.02);
  EXPECT_GT(pca.explained_variance()[0], 50.0);
  EXPECT_LT(pca.explained_variance()[1], 2.0);
}

TEST(Pca, ComponentsAreOrthonormal) {
  util::Rng rng(8);
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 500; ++i) {
    X.push_back({rng.normal(), rng.normal(0, 3), rng.normal(0, 0.2)});
  }
  Pca pca;
  pca.fit(X, 3);
  for (std::size_t a = 0; a < 3; ++a) {
    double norm = 0.0;
    for (double v : pca.components()[a]) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-6);
    for (std::size_t b = a + 1; b < 3; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        dot += pca.components()[a][i] * pca.components()[b][i];
      }
      EXPECT_NEAR(dot, 0.0, 1e-4);
    }
  }
}

TEST(Pca, TransformCentersData) {
  std::vector<std::vector<double>> X = {{1.0, 0.0}, {3.0, 0.0}};
  Pca pca;
  pca.fit(X, 1);
  const double proj_mean =
      (pca.first_component(X[0]) + pca.first_component(X[1])) / 2.0;
  EXPECT_NEAR(proj_mean, 0.0, 1e-9);
}

TEST(Pca, ThrowsWhenUnfitted) {
  Pca pca;
  EXPECT_THROW((void)pca.first_component({1.0}), std::logic_error);
  EXPECT_THROW(pca.fit({}, 1), std::invalid_argument);
}

TEST(Gaussian, EntropyBits) {
  std::vector<double> uniform4{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(entropy_bits(uniform4), 2.0, 1e-12);
  std::vector<double> certain{1.0, 0.0};
  EXPECT_NEAR(entropy_bits(certain), 0.0, 1e-12);
}

TEST(Gaussian, FitPerSecret) {
  const auto model = SecretGaussianModel::fit({{1.0, 1.2, 0.8}, {5.0, 5.5, 4.5}});
  ASSERT_EQ(model.per_secret.size(), 2u);
  EXPECT_NEAR(model.per_secret[0].mu, 1.0, 1e-9);
  EXPECT_NEAR(model.per_secret[1].mu, 5.0, 1e-9);
}

class MiSeparationTest : public ::testing::TestWithParam<double> {};

TEST_P(MiSeparationTest, MiGrowsWithSeparation) {
  const double separation = GetParam();
  SecretGaussianModel model;
  model.per_secret = {{0.0, 1.0}, {separation, 1.0}};
  const double mi = mutual_information_eq1(model);
  // Two equiprobable secrets: MI in [0, 1] bits.
  EXPECT_GE(mi, -1e-9);
  EXPECT_LE(mi, 1.0 + 1e-9);
  if (separation < 0.1) EXPECT_LT(mi, 0.02);
  if (separation > 8.0) EXPECT_GT(mi, 0.98);
}

INSTANTIATE_TEST_SUITE_P(Separations, MiSeparationTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0, 10.0));

TEST(Gaussian, MiMonotoneInSeparation) {
  double prev = -1.0;
  for (double sep : {0.0, 1.0, 2.0, 3.0, 5.0}) {
    SecretGaussianModel model;
    model.per_secret = {{0.0, 1.0}, {sep, 1.0}};
    const double mi = mutual_information_eq1(model);
    EXPECT_GE(mi, prev - 1e-6);
    prev = mi;
  }
}

TEST(Gaussian, MiWithManyWellSeparatedSecretsApproachesLogN) {
  SecretGaussianModel model;
  for (int i = 0; i < 8; ++i) {
    model.per_secret.push_back({i * 50.0, 1.0});
  }
  EXPECT_NEAR(mutual_information_eq1(model, 8001), 3.0, 0.05);
}

TEST(Gaussian, NonUniformPriorsRespectEntropyBound) {
  SecretGaussianModel model;
  model.per_secret = {{0.0, 1.0}, {100.0, 1.0}};
  model.priors = {0.9, 0.1};
  const double h = entropy_bits(model.priors);
  EXPECT_NEAR(mutual_information_eq1(model), h, 0.02);
}

TEST(Gaussian, PriorSizeMismatchThrows) {
  SecretGaussianModel model;
  model.per_secret = {{0.0, 1.0}};
  model.priors = {0.5, 0.5};
  EXPECT_THROW((void)mutual_information_eq1(model), std::invalid_argument);
}

TEST(Mi, GaussianMiZeroForIndependent) {
  util::Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_LT(gaussian_mi_bits(x, y), 0.01);
}

TEST(Mi, GaussianMiHighForIdentical) {
  util::Rng rng(10);
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) x.push_back(rng.normal());
  EXPECT_GT(gaussian_mi_bits(x, x), 15.0);
}

TEST(Mi, GaussianMiDecreasesWithAddedNoise) {
  util::Rng rng(11);
  std::vector<double> x;
  for (int i = 0; i < 8000; ++i) x.push_back(rng.normal(0.0, 1.0));
  double prev = 1e9;
  for (double noise : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    std::vector<double> y = x;
    for (double& v : y) v += rng.normal(0.0, noise);
    const double mi = gaussian_mi_bits(x, y);
    EXPECT_LT(mi, prev);
    prev = mi;
  }
}

TEST(Mi, HistogramMiAgreesWithGaussianOnLinearData) {
  util::Rng rng(12);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.normal();
    x.push_back(v);
    y.push_back(v + rng.normal(0.0, 1.0));
  }
  const double g = gaussian_mi_bits(x, y);
  const double h = histogram_mi_bits(x, y, 24);
  EXPECT_NEAR(g, h, 0.25);
}

TEST(Mi, HistogramMiDegenerateInputsAreZero) {
  std::vector<double> constant(100, 3.0), varying;
  for (int i = 0; i < 100; ++i) varying.push_back(i);
  EXPECT_EQ(histogram_mi_bits(constant, varying), 0.0);
  EXPECT_EQ(histogram_mi_bits({}, {}), 0.0);
}

}  // namespace
}  // namespace aegis::trace
