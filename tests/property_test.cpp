// Cross-module property tests: invariants that must hold across parameter
// sweeps rather than at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "dp/dstar.hpp"
#include "dp/laplace.hpp"
#include "fuzzer/set_cover.hpp"
#include "obf/injector.hpp"
#include "sim/executor.hpp"
#include "sim/virtual_machine.hpp"
#include "trace/gaussian.hpp"
#include "util/stats.hpp"
#include "workload/website.hpp"

namespace aegis {
namespace {

// ---------------------------------------------------------------- dp ----

class LaplaceScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceScaleSweep, MeanAbsoluteNoiseIsInverseEpsilon) {
  const double epsilon = GetParam();
  dp::LaplaceMechanism mech(epsilon, 1.0, 77);
  double total = 0.0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    total += std::abs(mech.noisy_value(0.0));
  }
  // E|Lap(b)| = b = 1/epsilon.
  EXPECT_NEAR(total / kSamples, 1.0 / epsilon, 0.05 / epsilon);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, LaplaceScaleSweep,
                         ::testing::Values(0.125, 0.5, 1.0, 4.0, 16.0));

TEST(DStarProperty, ErrorGrowsLogarithmicallyNotLinearly) {
  // The binary-tree construction reconstructs x~[t] from O(log t) noise
  // terms, so the error std at time t grows like sqrt(log t) — far slower
  // than the sqrt(t) random walk naive prefix-summing would give.
  auto error_std_at = [](std::uint64_t horizon) {
    std::vector<double> errors;
    for (std::uint64_t seed = 0; seed < 48; ++seed) {
      dp::DStarMechanism mech(1.0, 1000 + seed);
      double value = 0.0;
      for (std::uint64_t t = 1; t <= horizon; ++t) value = mech.noisy_value(5.0);
      errors.push_back(value - 5.0);
    }
    return util::stddev(errors);
  };
  const double at_16 = error_std_at(16);
  const double at_1024 = error_std_at(1024);
  EXPECT_LT(at_1024, at_16 * 6.0);          // log growth, not 8x (sqrt(64))
  EXPECT_GT(at_1024, at_16 * 0.5);          // but it does not shrink either
}

TEST(DStarProperty, ParentDepthIsLogarithmic) {
  for (std::uint64_t t = 1; t <= 4096; t += 7) {
    int depth = 0;
    std::uint64_t cursor = t;
    while (cursor != 0) {
      cursor = dp::dstar_parent(cursor);
      ++depth;
    }
    EXPECT_LE(depth, 2 * 13);  // 2 * log2(4096) + slack
  }
}

// --------------------------------------------------------------- sim ----

class VmBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(VmBudgetSweep, AllSubmittedWorkEventuallyExecutes) {
  // Work conservation: whatever the slice budget, the VM executes exactly
  // the uops submitted (plus interrupt handlers), never losing or
  // duplicating queued blocks.
  const double budget = GetParam();
  sim::VmConfig config;
  config.slice_budget_cycles = budget;
  config.interrupt_rate = 0.0;
  sim::VirtualMachine vm(config, 9);
  double submitted = 0.0;
  for (int i = 0; i < 30; ++i) {
    sim::InstructionBlock b;
    b.uops = 700.0 + 13.0 * i;
    submitted += b.uops;
    vm.submit(b);
  }
  double executed = 0.0;
  int slices = 0;
  while (vm.pending() && slices < 100000) {
    executed += vm.run_slice().uops;
    ++slices;
  }
  EXPECT_FALSE(vm.pending());
  EXPECT_NEAR(executed, submitted, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, VmBudgetSweep,
                         ::testing::Values(200.0, 1000.0, 10000.0, 3.0e6));

class ExecutorUopSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExecutorUopSweep, CyclesMonotoneInWork) {
  const double uops = GetParam();
  sim::MicroArchState a, b;
  sim::InstructionBlock small, large;
  small.uops = uops;
  large.uops = uops * 2.0;
  EXPECT_LT(sim::execute_block(small, a).cycles,
            sim::execute_block(large, b).cycles);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExecutorUopSweep,
                         ::testing::Values(10.0, 100.0, 1000.0, 100000.0));

TEST(ExecutorProperty, StatsScaleLinearlyWithBlockScaling) {
  sim::InstructionBlock b;
  b.class_counts[isa::InstructionClass::kIntAlu] = 100;
  b.uops = 120;
  b.read_bytes = 6400;
  for (double f : {0.5, 2.0, 7.0}) {
    sim::MicroArchState fresh_a, fresh_b;
    const auto base = sim::execute_block(b, fresh_a);
    const auto scaled = sim::execute_block(b.scaled(f), fresh_b);
    EXPECT_NEAR(scaled.uops, base.uops * f, 1e-9);
    EXPECT_NEAR(scaled.mem_reads, base.mem_reads * f, 1e-9);
  }
}

// --------------------------------------------------------------- mi -----

TEST(MiProperty, InvariantUnderAffineFeatureTransforms) {
  // Mutual information must not change when every per-secret Gaussian is
  // shifted and scaled identically (the event's units are arbitrary).
  trace::SecretGaussianModel base;
  base.per_secret = {{0.0, 1.0}, {2.0, 1.5}, {5.0, 0.7}};
  const double reference = trace::mutual_information_eq1(base);
  for (double scale : {0.1, 3.0, 50.0}) {
    for (double shift : {-100.0, 0.0, 40.0}) {
      trace::SecretGaussianModel transformed;
      for (const auto& g : base.per_secret) {
        transformed.per_secret.push_back({g.mu * scale + shift, g.sigma * scale});
      }
      EXPECT_NEAR(trace::mutual_information_eq1(transformed), reference, 0.01);
    }
  }
}

class MiClassCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(MiClassCountSweep, WellSeparatedSecretsSaturateAtLogN) {
  const int n = GetParam();
  trace::SecretGaussianModel model;
  for (int i = 0; i < n; ++i) model.per_secret.push_back({i * 100.0, 1.0});
  EXPECT_NEAR(trace::mutual_information_eq1(model, 4001),
              std::log2(static_cast<double>(n)), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Counts, MiClassCountSweep, ::testing::Values(2, 4, 8, 16));

// ------------------------------------------------------------ workload --

class SiteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SiteSweep, VisitJitterIsBoundedAndNonNegative) {
  workload::WebsiteWorkload site(GetParam(), 160);
  std::vector<double> totals;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    double total = 0.0;
    auto source = site.visit(seed);
    for (std::size_t t = 0; t < 160; ++t) {
      for (const auto& b : source(t)) {
        EXPECT_GE(b.uops, 0.0);
        EXPECT_GE(b.read_bytes, 0.0);
        total += b.uops;
      }
    }
    totals.push_back(total);
  }
  // Visits of one site stay within a modest band of each other.
  EXPECT_LT(util::max_value(totals) / std::max(util::min_value(totals), 1.0), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sites, SiteSweep, ::testing::Values(0u, 7u, 21u, 44u));

// ------------------------------------------------------------- cover ----

class SetCoverSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SetCoverSweep, CoverIsCompleteAndNeverLargerThanEventCount) {
  // Synthetic instances: `n` events, gadget i covers events {i, i+1}.
  const std::size_t n = GetParam();
  fuzzer::FuzzResult result;
  for (std::size_t e = 0; e < n; ++e) {
    fuzzer::EventFuzzReport report;
    report.event_id = static_cast<std::uint32_t>(e);
    const std::uint32_t gadget_id = static_cast<std::uint32_t>(e / 2);
    report.confirmed.push_back(
        {fuzzer::Gadget{gadget_id, gadget_id + 1000}, report.event_id, 5.0});
    result.reports.push_back(report);
  }
  const fuzzer::GadgetCover cover = fuzzer::minimal_gadget_cover(result);
  EXPECT_TRUE(cover.uncovered_events.empty());
  EXPECT_EQ(cover.covered_events.size(), n);
  EXPECT_LE(cover.gadgets.size(), (n + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SetCoverSweep, ::testing::Values(1u, 2u, 9u, 40u));

// ------------------------------------------------------------ injector --

TEST(InjectorProperty, RepetitionsLinearInNoiseBelowClip) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  const auto spec = isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);
  std::uint32_t nop = 0, div = 0;
  for (const auto& v : spec.variants()) {
    if (!v.legal()) continue;
    if (!nop && v.iclass == isa::InstructionClass::kNop) nop = v.uid;
    if (!div && v.iclass == isa::InstructionClass::kIntDiv) div = v.uid;
  }
  fuzzer::GadgetCover cover;
  cover.gadgets = {{nop, div}};
  cover.covered_events = {0};
  cover.segment_effect = {{0, 1.0}};
  obf::NoiseInjector injector(spec, cover, 10.0, 100.0);
  sim::VirtualMachine vm(sim::VmConfig{}, 1);
  double prev = 0.0;
  for (double noise : {0.5, 1.0, 2.0, 4.0}) {
    const double reps = injector.inject(vm, noise);
    EXPECT_NEAR(reps, noise * 10.0, 1e-9);
    EXPECT_GT(reps, prev);
    prev = reps;
  }
}

}  // namespace
}  // namespace aegis
