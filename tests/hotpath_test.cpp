// Hot-path engine proof obligations (see DESIGN.md "PMU hot path"):
//   * legacy-vs-batched equivalence — a seed-7 fuzzing shard and a profiler
//     ranking run through both CounterRegisterFile engines must produce
//     bit-identical counter values and the identical EventRank order;
//   * steady-state GadgetRunner::execute_once performs zero heap
//     allocations (instrumented global allocator);
//   * perf smoke — the batched engine must not be slower than the retained
//     reference implementation on the 1903-event sweep shape.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "fuzzer/fuzzer.hpp"
#include "pmu/counter_file.hpp"
#include "pmu/backend/registry.hpp"
#include "pmu/event_database.hpp"
#include "pmu/response_matrix.hpp"
#include "pmu/simd_dispatch.hpp"
#include "profiler/profiler.hpp"
#include "sim/gadget_runner.hpp"
#include "workload/website.hpp"

// ---------------------------------------------------------------------------
// Instrumented allocator: counts every global operator new so tests can
// assert an allocation-free window. Disabled under sanitizers, whose
// runtimes own the allocator.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AEGIS_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AEGIS_ALLOC_HOOK 0
#else
#define AEGIS_ALLOC_HOOK 1
#endif
#else
#define AEGIS_ALLOC_HOOK 1
#endif

#if AEGIS_ALLOC_HOOK

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // AEGIS_ALLOC_HOOK

namespace aegis {
namespace {

using pmu::AccumulateEngine;
using pmu::CounterRegisterFile;
namespace simd = pmu::simd;

/// Flips the process-wide default engine for a scope; campaigns construct
/// their register files internally, so this is how whole runs are steered
/// through one engine or the other.
class EngineGuard {
 public:
  explicit EngineGuard(AccumulateEngine engine) {
    CounterRegisterFile::set_default_engine(engine);
  }
  ~EngineGuard() {
    CounterRegisterFile::set_default_engine(AccumulateEngine::kBatched);
  }
};

struct Fixture {
  // Pinned to the AMD backend: hot-path goldens are AMD bit-identity
  // checks and must not follow AEGIS_CPU.
  const pmu::backend::PmuBackend& backend =
      pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7252);
  const pmu::EventDatabase& db = backend.database();
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  std::vector<std::uint32_t> events() const {
    std::vector<std::uint32_t> ids = backend.attack_events();
    ids.push_back(*db.find("RETIRED_BRANCH_INSTRUCTIONS"));
    ids.push_back(*db.find("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR"));
    return ids;
  }
};

pmu::ExecutionStats busy_stats() {
  pmu::ExecutionStats stats;
  for (std::size_t i = 0; i < stats.class_counts.size(); ++i) {
    stats.class_counts.at_index(i) = 10.0 + static_cast<double>(i);
  }
  stats.uops = 1200.0;
  stats.l1_misses = 7.0;
  stats.llc_misses = 2.0;
  stats.l1_writes = 40.0;
  stats.branch_mispredicts = 3.0;
  stats.mem_reads = 220.0;
  stats.mem_writes = 90.0;
  stats.interrupts = 1.0;
  stats.cycles = 4000.0;
  return stats;
}

// ---------------------------------------------------------------------------
// Feature flattening layout.

TEST(ResponseMatrix, FlattenMatchesExpectedCountTermOrder) {
  const pmu::ExecutionStats stats = busy_stats();
  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(stats, f.data());
  constexpr std::size_t k = isa::kNumInstructionClasses;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(f[i], stats.class_counts.at_index(i)) << i;
  }
  EXPECT_EQ(f[k + 0], stats.uops);
  EXPECT_EQ(f[k + 1], stats.l1_misses);
  EXPECT_EQ(f[k + 2], stats.llc_misses);
  EXPECT_EQ(f[k + 3], stats.l1_writes);
  EXPECT_EQ(f[k + 4], stats.branch_mispredicts);
  EXPECT_EQ(f[k + 5], stats.mem_reads);
  EXPECT_EQ(f[k + 6], stats.mem_writes);
  EXPECT_EQ(f[k + 7], stats.cycles);
  EXPECT_EQ(f[k + 8], stats.interrupts);
}

// Golden layout: hardcoded sentinel values pin the exact feature index of
// every ExecutionStats field. The blocked-sparse SIMD layout, the dense
// coeff_ matrix, and EventResponse::expected_count all assume this order;
// a silent reorder (enum edit, flatten_stats refactor) would scramble the
// coefficient columns without failing any equivalence test, because both
// engines would be wrong identically. This test fails instead.
TEST(ResponseMatrix, FlattenStatsGoldenLayout) {
  ASSERT_EQ(isa::kNumInstructionClasses, 25u);
  ASSERT_EQ(pmu::kStatsFeatureDim, 34u);
  pmu::ExecutionStats stats;
  for (std::size_t i = 0; i < stats.class_counts.size(); ++i) {
    stats.class_counts.at_index(i) = 100.0 + static_cast<double>(i);
  }
  stats.uops = 1000.0;
  stats.l1_misses = 1001.0;
  stats.llc_misses = 1002.0;
  stats.l1_writes = 1003.0;
  stats.branch_mispredicts = 1004.0;
  stats.mem_reads = 1005.0;
  stats.mem_writes = 1006.0;
  stats.cycles = 1007.0;
  stats.interrupts = 1008.0;

  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(stats, f.data());

  // Class counts in enum order (nop, int_alu, ..., serialize, system),
  // then the scalars in expected_count's term order.
  const std::array<double, 34> golden = {
      100.0, 101.0, 102.0, 103.0, 104.0, 105.0, 106.0, 107.0, 108.0,
      109.0, 110.0, 111.0, 112.0, 113.0, 114.0, 115.0, 116.0, 117.0,
      118.0, 119.0, 120.0, 121.0, 122.0, 123.0, 124.0,
      1000.0,  // uops
      1001.0,  // l1_misses
      1002.0,  // llc_misses
      1003.0,  // l1_writes
      1004.0,  // branch_mispredicts
      1005.0,  // mem_reads
      1006.0,  // mem_writes
      1007.0,  // cycles
      1008.0,  // interrupts
  };
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(f[i], golden[i]) << "feature index " << i;
  }
}

TEST(ResponseMatrix, ExpectedIsBitIdenticalToEventResponse) {
  Fixture fix;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) ids.push_back(id);
  pmu::ResponseMatrix matrix;
  matrix.program(fix.db, ids);
  ASSERT_EQ(matrix.rows(), fix.db.size());

  const pmu::ExecutionStats stats = busy_stats();
  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(stats, f.data());
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) {
    const double reference = fix.db.by_id(id).response.expected_count(stats);
    EXPECT_EQ(matrix.expected(id, f.data()), reference) << "event " << id;
  }
}

// ---------------------------------------------------------------------------
// SIMD kernel differential: every group kernel (scalar sparse, AVX2,
// AVX-512) must reproduce the dense expected() dot product bit-for-bit on
// every group of the full 1903-event matrix. Unsupported ISAs are skipped
// (the CI scalar leg and non-AVX hosts still prove the scalar kernel).

TEST(SimdKernels, EveryGroupMatchesDenseExpectedOnAllIsas) {
  Fixture fix;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) ids.push_back(id);
  pmu::ResponseMatrix matrix;
  matrix.program(fix.db, ids);

  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(busy_stats(), f.data());

  constexpr std::size_t kLanes = pmu::ResponseMatrix::kLanes;
  for (const simd::SimdIsa isa :
       {simd::SimdIsa::kScalar, simd::SimdIsa::kAvx2, simd::SimdIsa::kAvx512}) {
    if (!simd::supported(isa)) continue;
    const simd::ExpectedGroupFn kernel = simd::expected_group_kernel(isa);
    ASSERT_NE(kernel, nullptr);
    for (std::size_t g = 0; g < matrix.groups(); ++g) {
      const pmu::ResponseMatrix::GroupView view = matrix.group_view(g);
      alignas(32) double lanes[kLanes];
      kernel(view.lane_coeff, view.col_feat, view.cols, f.data(), lanes);
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::size_t row = g * kLanes + l;
        if (row >= matrix.rows()) {
          // Padded tail lanes carry all-zero coefficients.
          EXPECT_EQ(lanes[l], 0.0) << simd::to_string(isa) << " pad lane";
          continue;
        }
        const double clamped = lanes[l] < 0.0 ? 0.0 : lanes[l];
        EXPECT_EQ(clamped, matrix.expected(row, f.data()))
            << simd::to_string(isa) << " row " << row;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch resolution: the engine decision is observable, made once, and
// degrades (never throws) when a pinned ISA is unavailable.

TEST(EngineDispatch, ResolvedIsaTracksEnginePins) {
  Fixture fix;
  CounterRegisterFile counters(fix.db, 1);
  counters.program({0, 1, 2, 3});

  counters.set_engine(AccumulateEngine::kReference);
  EXPECT_EQ(counters.resolved_isa(), simd::SimdIsa::kScalar);
  counters.set_engine(AccumulateEngine::kScalar);
  EXPECT_EQ(counters.resolved_isa(), simd::SimdIsa::kScalar);

  counters.set_engine(AccumulateEngine::kAvx2);
  EXPECT_EQ(counters.resolved_isa(), simd::supported(simd::SimdIsa::kAvx2)
                                         ? simd::SimdIsa::kAvx2
                                         : simd::SimdIsa::kScalar);
  counters.set_engine(AccumulateEngine::kAvx512);
  EXPECT_EQ(counters.resolved_isa(), simd::supported(simd::SimdIsa::kAvx512)
                                         ? simd::SimdIsa::kAvx512
                                         : simd::SimdIsa::kScalar);

  counters.set_engine(AccumulateEngine::kBatched);
  EXPECT_EQ(counters.resolved_isa(), simd::best_isa());

  // AEGIS_FORCE_SCALAR clamps everything, including explicit pins.
  if (simd::force_scalar_env()) {
    EXPECT_EQ(simd::best_isa(), simd::SimdIsa::kScalar);
    EXPECT_FALSE(simd::supported(simd::SimdIsa::kAvx2));
    EXPECT_FALSE(simd::supported(simd::SimdIsa::kAvx512));
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence, unit level: identical RNG streams through both
// engines must yield bit-identical counters, multiplexed or not.

TEST(EngineEquivalence, CountersBitIdenticalAcrossEngines) {
  Fixture fix;
  for (const std::size_t num_events : {4u, 11u}) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; ids.size() < num_events; ++id) {
      if (fix.db.by_id(id).response.guest_visible()) ids.push_back(id);
    }
    CounterRegisterFile batched(fix.db, 99);
    batched.set_engine(AccumulateEngine::kBatched);
    CounterRegisterFile reference(fix.db, 99);
    reference.set_engine(AccumulateEngine::kReference);
    batched.program(ids);
    reference.program(ids);

    const pmu::ExecutionStats stats = busy_stats();
    for (int t = 0; t < 50; ++t) {
      batched.tick(stats);
      reference.tick(stats);
    }
    for (std::uint32_t id : ids) {
      EXPECT_EQ(batched.read_raw(id), reference.read_raw(id)) << id;
      EXPECT_EQ(batched.read(id), reference.read(id)) << id;
    }
    EXPECT_EQ(batched.read_all(), reference.read_all());
  }
}

TEST(EngineEquivalence, PinnedSimdEnginesBitIdenticalToReference) {
  Fixture fix;
  const AccumulateEngine pins[] = {AccumulateEngine::kScalar,
                                   AccumulateEngine::kAvx2,
                                   AccumulateEngine::kAvx512};
  const simd::SimdIsa isas[] = {simd::SimdIsa::kScalar, simd::SimdIsa::kAvx2,
                                simd::SimdIsa::kAvx512};
  for (const std::size_t num_events : {4u, 11u, 1903u}) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; id < fix.db.size() && ids.size() < num_events;
         ++id) {
      ids.push_back(id);
    }
    CounterRegisterFile reference(fix.db, 99);
    reference.set_engine(AccumulateEngine::kReference);
    reference.program(ids);
    const pmu::ExecutionStats stats = busy_stats();
    for (int t = 0; t < 50; ++t) reference.tick(stats);
    const std::vector<double> expected = reference.read_all();

    for (std::size_t p = 0; p < 3; ++p) {
      if (!simd::supported(isas[p])) continue;
      CounterRegisterFile pinned(fix.db, 99);
      pinned.set_engine(pins[p]);
      pinned.program(ids);
      ASSERT_EQ(pinned.resolved_isa(), isas[p]);
      for (int t = 0; t < 50; ++t) pinned.tick(stats);
      // Bitwise equality: the noise draws AND the expected-count dot
      // products must match the reference walk exactly.
      EXPECT_EQ(pinned.read_all(), expected)
          << simd::to_string(isas[p]) << " over " << num_events << " events";
    }
  }
}

TEST(EngineEquivalence, DefaultEngineRoundTrips) {
  EXPECT_EQ(CounterRegisterFile::default_engine(), AccumulateEngine::kBatched);
  {
    EngineGuard guard(AccumulateEngine::kReference);
    EXPECT_EQ(CounterRegisterFile::default_engine(),
              AccumulateEngine::kReference);
    Fixture fix;
    CounterRegisterFile counters(fix.db, 1);
    EXPECT_EQ(counters.engine(), AccumulateEngine::kReference);
  }
  EXPECT_EQ(CounterRegisterFile::default_engine(), AccumulateEngine::kBatched);
}

// ---------------------------------------------------------------------------
// Engine equivalence, campaign level: the PR 1 golden/differential suite
// extended across engines. A seed-7 fuzzing shard must agree bit-for-bit.

void expect_gadgets_equal(const std::vector<fuzzer::ConfirmedGadget>& a,
                          const std::vector<fuzzer::ConfirmedGadget>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gadget.reset_uid, b[i].gadget.reset_uid) << what << " " << i;
    EXPECT_EQ(a[i].gadget.trigger_uid, b[i].gadget.trigger_uid)
        << what << " " << i;
    EXPECT_EQ(a[i].event_id, b[i].event_id) << what << " " << i;
    EXPECT_EQ(a[i].median_delta, b[i].median_delta) << what << " " << i;
  }
}

/// Full-result comparison; returns the total confirmed-gadget count so
/// callers can assert the comparison was non-vacuous.
std::size_t expect_fuzz_results_equal(const fuzzer::FuzzResult& actual,
                                      const fuzzer::FuzzResult& expected) {
  EXPECT_EQ(actual.cleaned_instructions, expected.cleaned_instructions);
  EXPECT_EQ(actual.executed_gadgets, expected.executed_gadgets);
  EXPECT_EQ(actual.reports.size(), expected.reports.size());
  if (actual.reports.size() != expected.reports.size()) return 0;
  std::size_t total_confirmed = 0;
  for (std::size_t e = 0; e < actual.reports.size(); ++e) {
    EXPECT_EQ(actual.reports[e].event_id, expected.reports[e].event_id);
    EXPECT_EQ(actual.reports[e].candidates, expected.reports[e].candidates);
    expect_gadgets_equal(actual.reports[e].confirmed,
                         expected.reports[e].confirmed, "confirmed");
    expect_gadgets_equal(actual.reports[e].representatives,
                         expected.reports[e].representatives,
                         "representatives");
    total_confirmed += actual.reports[e].confirmed.size();
  }
  return total_confirmed;
}

fuzzer::FuzzerConfig seed7_shard_config() {
  fuzzer::FuzzerConfig config;
  config.seed = 7;
  config.reset_sample = 20;
  config.trigger_sample = 20;
  config.repeats = 4;
  config.num_threads = 2;
  return config;
}

TEST(EngineEquivalence, Seed7FuzzingShardBitIdentical) {
  Fixture fix;
  const fuzzer::FuzzerConfig config = seed7_shard_config();

  auto run_with = [&](AccumulateEngine engine) {
    EngineGuard guard(engine);
    fuzzer::EventFuzzer fuzzer(fix.db, fix.spec, config);
    return fuzzer.run(fix.events());
  };
  const fuzzer::FuzzResult reference = run_with(AccumulateEngine::kReference);
  const fuzzer::FuzzResult batched = run_with(AccumulateEngine::kBatched);

  // Equality of empty results would prove nothing.
  ASSERT_GT(expect_fuzz_results_equal(batched, reference), 0u);
}

// The same shard run through every pinned SIMD engine: scalar is the
// anchor (always supported); AVX2/AVX-512 must reproduce its stream
// bit-for-bit through the whole campaign — superblock execution, RNG
// draws, confirmation reordering, everything.
TEST(EngineEquivalence, Seed7ShardBitIdenticalAcrossSimdEngines) {
  Fixture fix;
  const fuzzer::FuzzerConfig config = seed7_shard_config();

  auto run_with = [&](AccumulateEngine engine) {
    EngineGuard guard(engine);
    fuzzer::EventFuzzer fuzzer(fix.db, fix.spec, config);
    return fuzzer.run(fix.events());
  };
  const fuzzer::FuzzResult scalar = run_with(AccumulateEngine::kScalar);
  ASSERT_GT(scalar.executed_gadgets, 0u);

  bool any_vector = false;
  if (simd::supported(simd::SimdIsa::kAvx2)) {
    any_vector = true;
    const fuzzer::FuzzResult avx2 = run_with(AccumulateEngine::kAvx2);
    ASSERT_GT(expect_fuzz_results_equal(avx2, scalar), 0u) << "avx2";
  }
  if (simd::supported(simd::SimdIsa::kAvx512)) {
    any_vector = true;
    const fuzzer::FuzzResult avx512 = run_with(AccumulateEngine::kAvx512);
    ASSERT_GT(expect_fuzz_results_equal(avx512, scalar), 0u) << "avx512";
  }
  if (!any_vector) {
    GTEST_SKIP() << "no vector ISA usable on this host (or AEGIS_FORCE_SCALAR "
                    "is set); scalar-vs-scalar would be vacuous";
  }
}

TEST(EngineEquivalence, ProfilerRankingIdenticalAcrossEngines) {
  Fixture fix;
  profiler::ProfilerConfig config;
  config.seed = 7;
  config.ranking_runs_per_secret = 3;
  config.num_threads = 2;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::uint32_t site = 0; site < 3; ++site) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(site, 40));
  }

  auto rank_with = [&](AccumulateEngine engine) {
    EngineGuard guard(engine);
    return profiler::ApplicationProfiler(fix.db, config)
        .rank(secrets, fix.events());
  };
  const std::vector<profiler::EventRank> reference =
      rank_with(AccumulateEngine::kReference);
  const std::vector<profiler::EventRank> batched =
      rank_with(AccumulateEngine::kBatched);

  ASSERT_EQ(batched.size(), reference.size());
  ASSERT_GT(batched.size(), 0u);
  EXPECT_GT(batched.front().mutual_information, 0.0);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].event_id, reference[i].event_id) << i;
    EXPECT_EQ(batched[i].mutual_information, reference[i].mutual_information)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state.

TEST(HotPathAllocations, ExecuteOnceSteadyStateAllocatesNothing) {
#if AEGIS_ALLOC_HOOK
  Fixture fix;
  sim::GadgetRunner runner(fix.db, fix.spec, 21);
  const std::vector<std::uint32_t> all_events = fix.events();
  runner.program({all_events.begin(), all_events.begin() + 4});

  // Any two legal variants make a (reset, trigger) gadget; one with a
  // memory operand exercises the cache-access stats path too.
  std::uint32_t plain = 0, memory = 0;
  bool have_plain = false, have_memory = false;
  for (const auto& v : fix.spec.variants()) {
    if (!v.legal()) continue;
    if (!have_plain && !v.has_memory_operand) {
      plain = v.uid;
      have_plain = true;
    }
    if (!have_memory && v.has_memory_operand) {
      memory = v.uid;
      have_memory = true;
    }
    if (have_plain && have_memory) break;
  }
  ASSERT_TRUE(have_plain);
  ASSERT_TRUE(have_memory);
  const std::array<std::uint32_t, 2> gadget = {plain, memory};

  // Warm-up: populates the variant-block cache (the only allocations the
  // measurement loop is allowed).
  for (int i = 0; i < 3; ++i) (void)runner.execute_once(gadget, 16.0);

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int i = 0; i < 200; ++i) {
    const std::span<const double> delta = runner.execute_once(gadget, 16.0);
    sink += delta[0];
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state execute_once must not touch the heap (sink=" << sink
      << ")";
#else
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
}

// ---------------------------------------------------------------------------
// Superblock cache correctness: alternating the unroll factor on the same
// uid sequence must rebuild the fused blocks in place — a stale cache
// would return unroll-8 deltas for the unroll-16 request.

TEST(GadgetRunnerSuperblocks, UnrollAlternationNeverServesStaleBlocks) {
  Fixture fix;
  sim::GadgetRunner runner(fix.db, fix.spec, 21);
  const std::vector<std::uint32_t> all_events = fix.events();
  runner.program({all_events.begin(), all_events.begin() + 4});

  std::uint32_t plain = 0;
  bool have_plain = false;
  for (const auto& v : fix.spec.variants()) {
    if (v.legal() && !v.has_memory_operand) {
      plain = v.uid;
      have_plain = true;
      break;
    }
  }
  ASSERT_TRUE(have_plain);
  const std::array<std::uint32_t, 2> gadget = {plain, plain};

  // Strictly alternate so every call arrives with the other unroll cached.
  std::array<double, 4> sum8{};
  std::array<double, 4> sum16{};
  for (int i = 0; i < 50; ++i) {
    const std::span<const double> d8 = runner.execute_once(gadget, 8.0);
    for (std::size_t j = 0; j < 4; ++j) sum8[j] += d8[j];
    const std::span<const double> d16 = runner.execute_once(gadget, 16.0);
    for (std::size_t j = 0; j < 4; ++j) sum16[j] += d16[j];
  }
  // The most-responsive programmed event must see roughly double the
  // activity at double the unroll; a stale cache leaves the sums equal.
  std::size_t top = 0;
  for (std::size_t j = 1; j < 4; ++j) {
    if (sum8[j] > sum8[top]) top = j;
  }
  ASSERT_GT(sum8[top], 0.0);
  EXPECT_GT(sum16[top], sum8[top] * 1.5)
      << "unroll-16 deltas look like cached unroll-8 blocks";
}

// ---------------------------------------------------------------------------
// Perf smoke: the batched engine must not lose to the reference it
// replaced. Measured on the multiplexed 1903-event sweep shape, where the
// structural win (active-group range vs full-slot walk) dwarfs timer and
// scheduler noise; bench_hot_path tracks the precise ratios.

TEST(HotPathPerfSmoke, BatchedNotSlowerThanReferenceOnSweep) {
  Fixture fix;
  std::vector<std::uint32_t> all_ids;
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) all_ids.push_back(id);
  const pmu::ExecutionStats stats = busy_stats();

  auto time_engine = [&](AccumulateEngine engine) {
    CounterRegisterFile counters(fix.db, 42);
    counters.set_engine(engine);
    counters.program(all_ids);
    // Touch everything once so first-use effects hit neither timing.
    counters.tick(stats);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 400; ++i) counters.accumulate(stats);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double reference = time_engine(AccumulateEngine::kReference);
  const double batched = time_engine(AccumulateEngine::kBatched);
  EXPECT_LE(batched, reference)
      << "batched " << batched << "s vs reference " << reference << "s";
}

}  // namespace
}  // namespace aegis
