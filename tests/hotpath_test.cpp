// Hot-path engine proof obligations (see DESIGN.md "PMU hot path"):
//   * legacy-vs-batched equivalence — a seed-7 fuzzing shard and a profiler
//     ranking run through both CounterRegisterFile engines must produce
//     bit-identical counter values and the identical EventRank order;
//   * steady-state GadgetRunner::execute_once performs zero heap
//     allocations (instrumented global allocator);
//   * perf smoke — the batched engine must not be slower than the retained
//     reference implementation on the 1903-event sweep shape.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "fuzzer/fuzzer.hpp"
#include "pmu/counter_file.hpp"
#include "pmu/event_database.hpp"
#include "pmu/response_matrix.hpp"
#include "profiler/profiler.hpp"
#include "sim/gadget_runner.hpp"
#include "workload/website.hpp"

// ---------------------------------------------------------------------------
// Instrumented allocator: counts every global operator new so tests can
// assert an allocation-free window. Disabled under sanitizers, whose
// runtimes own the allocator.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AEGIS_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AEGIS_ALLOC_HOOK 0
#else
#define AEGIS_ALLOC_HOOK 1
#endif
#else
#define AEGIS_ALLOC_HOOK 1
#endif

#if AEGIS_ALLOC_HOOK

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // AEGIS_ALLOC_HOOK

namespace aegis {
namespace {

using pmu::AccumulateEngine;
using pmu::CounterRegisterFile;

/// Flips the process-wide default engine for a scope; campaigns construct
/// their register files internally, so this is how whole runs are steered
/// through one engine or the other.
class EngineGuard {
 public:
  explicit EngineGuard(AccumulateEngine engine) {
    CounterRegisterFile::set_default_engine(engine);
  }
  ~EngineGuard() {
    CounterRegisterFile::set_default_engine(AccumulateEngine::kBatched);
  }
};

struct Fixture {
  pmu::EventDatabase db =
      pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(isa::CpuModel::kAmdEpyc7252);

  std::vector<std::uint32_t> events() const {
    std::vector<std::uint32_t> ids;
    for (auto name : pmu::kAmdAttackEvents) ids.push_back(*db.find(name));
    ids.push_back(*db.find("RETIRED_BRANCH_INSTRUCTIONS"));
    ids.push_back(*db.find("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR"));
    return ids;
  }
};

pmu::ExecutionStats busy_stats() {
  pmu::ExecutionStats stats;
  for (std::size_t i = 0; i < stats.class_counts.size(); ++i) {
    stats.class_counts.at_index(i) = 10.0 + static_cast<double>(i);
  }
  stats.uops = 1200.0;
  stats.l1_misses = 7.0;
  stats.llc_misses = 2.0;
  stats.l1_writes = 40.0;
  stats.branch_mispredicts = 3.0;
  stats.mem_reads = 220.0;
  stats.mem_writes = 90.0;
  stats.interrupts = 1.0;
  stats.cycles = 4000.0;
  return stats;
}

// ---------------------------------------------------------------------------
// Feature flattening layout.

TEST(ResponseMatrix, FlattenMatchesExpectedCountTermOrder) {
  const pmu::ExecutionStats stats = busy_stats();
  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(stats, f.data());
  constexpr std::size_t k = isa::kNumInstructionClasses;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(f[i], stats.class_counts.at_index(i)) << i;
  }
  EXPECT_EQ(f[k + 0], stats.uops);
  EXPECT_EQ(f[k + 1], stats.l1_misses);
  EXPECT_EQ(f[k + 2], stats.llc_misses);
  EXPECT_EQ(f[k + 3], stats.l1_writes);
  EXPECT_EQ(f[k + 4], stats.branch_mispredicts);
  EXPECT_EQ(f[k + 5], stats.mem_reads);
  EXPECT_EQ(f[k + 6], stats.mem_writes);
  EXPECT_EQ(f[k + 7], stats.cycles);
  EXPECT_EQ(f[k + 8], stats.interrupts);
}

TEST(ResponseMatrix, ExpectedIsBitIdenticalToEventResponse) {
  Fixture fix;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) ids.push_back(id);
  pmu::ResponseMatrix matrix;
  matrix.program(fix.db, ids);
  ASSERT_EQ(matrix.rows(), fix.db.size());

  const pmu::ExecutionStats stats = busy_stats();
  std::array<double, pmu::kStatsFeatureDim> f{};
  pmu::flatten_stats(stats, f.data());
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) {
    const double reference = fix.db.by_id(id).response.expected_count(stats);
    EXPECT_EQ(matrix.expected(id, f.data()), reference) << "event " << id;
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence, unit level: identical RNG streams through both
// engines must yield bit-identical counters, multiplexed or not.

TEST(EngineEquivalence, CountersBitIdenticalAcrossEngines) {
  Fixture fix;
  for (const std::size_t num_events : {4u, 11u}) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; ids.size() < num_events; ++id) {
      if (fix.db.by_id(id).response.guest_visible()) ids.push_back(id);
    }
    CounterRegisterFile batched(fix.db, 99);
    batched.set_engine(AccumulateEngine::kBatched);
    CounterRegisterFile reference(fix.db, 99);
    reference.set_engine(AccumulateEngine::kReference);
    batched.program(ids);
    reference.program(ids);

    const pmu::ExecutionStats stats = busy_stats();
    for (int t = 0; t < 50; ++t) {
      batched.tick(stats);
      reference.tick(stats);
    }
    for (std::uint32_t id : ids) {
      EXPECT_EQ(batched.read_raw(id), reference.read_raw(id)) << id;
      EXPECT_EQ(batched.read(id), reference.read(id)) << id;
    }
    EXPECT_EQ(batched.read_all(), reference.read_all());
  }
}

TEST(EngineEquivalence, DefaultEngineRoundTrips) {
  EXPECT_EQ(CounterRegisterFile::default_engine(), AccumulateEngine::kBatched);
  {
    EngineGuard guard(AccumulateEngine::kReference);
    EXPECT_EQ(CounterRegisterFile::default_engine(),
              AccumulateEngine::kReference);
    Fixture fix;
    CounterRegisterFile counters(fix.db, 1);
    EXPECT_EQ(counters.engine(), AccumulateEngine::kReference);
  }
  EXPECT_EQ(CounterRegisterFile::default_engine(), AccumulateEngine::kBatched);
}

// ---------------------------------------------------------------------------
// Engine equivalence, campaign level: the PR 1 golden/differential suite
// extended across engines. A seed-7 fuzzing shard must agree bit-for-bit.

void expect_gadgets_equal(const std::vector<fuzzer::ConfirmedGadget>& a,
                          const std::vector<fuzzer::ConfirmedGadget>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gadget.reset_uid, b[i].gadget.reset_uid) << what << " " << i;
    EXPECT_EQ(a[i].gadget.trigger_uid, b[i].gadget.trigger_uid)
        << what << " " << i;
    EXPECT_EQ(a[i].event_id, b[i].event_id) << what << " " << i;
    EXPECT_EQ(a[i].median_delta, b[i].median_delta) << what << " " << i;
  }
}

TEST(EngineEquivalence, Seed7FuzzingShardBitIdentical) {
  Fixture fix;
  fuzzer::FuzzerConfig config;
  config.seed = 7;
  config.reset_sample = 20;
  config.trigger_sample = 20;
  config.repeats = 4;
  config.num_threads = 2;

  auto run_with = [&](AccumulateEngine engine) {
    EngineGuard guard(engine);
    fuzzer::EventFuzzer fuzzer(fix.db, fix.spec, config);
    return fuzzer.run(fix.events());
  };
  const fuzzer::FuzzResult reference = run_with(AccumulateEngine::kReference);
  const fuzzer::FuzzResult batched = run_with(AccumulateEngine::kBatched);

  EXPECT_EQ(batched.cleaned_instructions, reference.cleaned_instructions);
  EXPECT_EQ(batched.executed_gadgets, reference.executed_gadgets);
  ASSERT_EQ(batched.reports.size(), reference.reports.size());
  std::size_t total_confirmed = 0;
  for (std::size_t e = 0; e < batched.reports.size(); ++e) {
    EXPECT_EQ(batched.reports[e].event_id, reference.reports[e].event_id);
    EXPECT_EQ(batched.reports[e].candidates, reference.reports[e].candidates);
    expect_gadgets_equal(batched.reports[e].confirmed,
                         reference.reports[e].confirmed, "confirmed");
    expect_gadgets_equal(batched.reports[e].representatives,
                         reference.reports[e].representatives,
                         "representatives");
    total_confirmed += batched.reports[e].confirmed.size();
  }
  // Equality of empty results would prove nothing.
  ASSERT_GT(total_confirmed, 0u);
}

TEST(EngineEquivalence, ProfilerRankingIdenticalAcrossEngines) {
  Fixture fix;
  profiler::ProfilerConfig config;
  config.seed = 7;
  config.ranking_runs_per_secret = 3;
  config.num_threads = 2;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::uint32_t site = 0; site < 3; ++site) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(site, 40));
  }

  auto rank_with = [&](AccumulateEngine engine) {
    EngineGuard guard(engine);
    return profiler::ApplicationProfiler(fix.db, config)
        .rank(secrets, fix.events());
  };
  const std::vector<profiler::EventRank> reference =
      rank_with(AccumulateEngine::kReference);
  const std::vector<profiler::EventRank> batched =
      rank_with(AccumulateEngine::kBatched);

  ASSERT_EQ(batched.size(), reference.size());
  ASSERT_GT(batched.size(), 0u);
  EXPECT_GT(batched.front().mutual_information, 0.0);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].event_id, reference[i].event_id) << i;
    EXPECT_EQ(batched[i].mutual_information, reference[i].mutual_information)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state.

TEST(HotPathAllocations, ExecuteOnceSteadyStateAllocatesNothing) {
#if AEGIS_ALLOC_HOOK
  Fixture fix;
  sim::GadgetRunner runner(fix.db, fix.spec, 21);
  const std::vector<std::uint32_t> all_events = fix.events();
  runner.program({all_events.begin(), all_events.begin() + 4});

  // Any two legal variants make a (reset, trigger) gadget; one with a
  // memory operand exercises the cache-access stats path too.
  std::uint32_t plain = 0, memory = 0;
  bool have_plain = false, have_memory = false;
  for (const auto& v : fix.spec.variants()) {
    if (!v.legal()) continue;
    if (!have_plain && !v.has_memory_operand) {
      plain = v.uid;
      have_plain = true;
    }
    if (!have_memory && v.has_memory_operand) {
      memory = v.uid;
      have_memory = true;
    }
    if (have_plain && have_memory) break;
  }
  ASSERT_TRUE(have_plain);
  ASSERT_TRUE(have_memory);
  const std::array<std::uint32_t, 2> gadget = {plain, memory};

  // Warm-up: populates the variant-block cache (the only allocations the
  // measurement loop is allowed).
  for (int i = 0; i < 3; ++i) (void)runner.execute_once(gadget, 16.0);

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int i = 0; i < 200; ++i) {
    const std::span<const double> delta = runner.execute_once(gadget, 16.0);
    sink += delta[0];
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state execute_once must not touch the heap (sink=" << sink
      << ")";
#else
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
}

// ---------------------------------------------------------------------------
// Perf smoke: the batched engine must not lose to the reference it
// replaced. Measured on the multiplexed 1903-event sweep shape, where the
// structural win (active-group range vs full-slot walk) dwarfs timer and
// scheduler noise; bench_hot_path tracks the precise ratios.

TEST(HotPathPerfSmoke, BatchedNotSlowerThanReferenceOnSweep) {
  Fixture fix;
  std::vector<std::uint32_t> all_ids;
  for (std::uint32_t id = 0; id < fix.db.size(); ++id) all_ids.push_back(id);
  const pmu::ExecutionStats stats = busy_stats();

  auto time_engine = [&](AccumulateEngine engine) {
    CounterRegisterFile counters(fix.db, 42);
    counters.set_engine(engine);
    counters.program(all_ids);
    // Touch everything once so first-use effects hit neither timing.
    counters.tick(stats);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 400; ++i) counters.accumulate(stats);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double reference = time_engine(AccumulateEngine::kReference);
  const double batched = time_engine(AccumulateEngine::kBatched);
  EXPECT_LE(batched, reference)
      << "batched " << batched << "s vs reference " << reference << "s";
}

}  // namespace
}  // namespace aegis
