// Telemetry subsystem tests: histogram bucket semantics, snapshot merge
// determinism, byte-stable exporter golden files under a fixed TimeSource,
// span parentage, the ε timeline, the JSON reader, and a threaded registry
// stress intended for the TSan config of the CI matrix.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/exporters.hpp"
#include "telemetry/json_reader.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/time_source.hpp"

namespace aegis::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterHandleAccumulatesAcrossCopies) {
  MetricsRegistry reg;
  Counter a = reg.counter("c_total");
  Counter b = reg.counter("c_total");  // idempotent: same cell
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Metrics, NullHandlesAreSafeNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(3.0);
  g.add(1.0);
  h.observe(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("g");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram h = reg.histogram("h", bounds);
  // Prometheus `le` semantics: a value equal to a bound lands IN that
  // bucket; strictly greater spills to the next.
  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(1.0);    // bucket 0 (le 1) — boundary is inclusive
  h.observe(1.0001); // bucket 1 (le 10)
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2 (le 100)
  h.observe(100.5);  // bucket 3 (+Inf overflow)

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& s = snap.histograms[0];
  ASSERT_EQ(s.buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds) {
  MetricsRegistry reg;
  const std::array<double, 3> bad = {1.0, 1.0, 2.0};
  EXPECT_THROW(reg.histogram("bad", bad), std::invalid_argument);
}

TEST(Metrics, FirstHistogramBoundsWin) {
  MetricsRegistry reg;
  const std::array<double, 2> first = {1.0, 2.0};
  const std::array<double, 1> second = {5.0};
  reg.histogram("h", first);
  Histogram again = reg.histogram("h", second);
  again.observe(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zz");
  reg.counter("aa");
  reg.counter("mm");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "mm");
  EXPECT_EQ(snap.counters[2].name, "zz");
}

TEST(Metrics, MergeSumsCountersAndMatchingHistograms) {
  MetricsRegistry ra, rb;
  const std::array<double, 2> bounds = {1.0, 2.0};
  ra.counter("shared").inc(3);
  rb.counter("shared").inc(4);
  ra.counter("only_a").inc(1);
  rb.counter("only_b").inc(2);
  ra.gauge("g").set(1.0);
  rb.gauge("g").set(9.0);
  ra.histogram("h", bounds).observe(0.5);
  rb.histogram("h", bounds).observe(1.5);

  const MetricsSnapshot merged = merge_snapshots(ra.snapshot(), rb.snapshot());
  ASSERT_EQ(merged.counters.size(), 3u);
  EXPECT_EQ(merged.counters[0].name, "only_a");
  EXPECT_EQ(merged.counters[1].name, "only_b");
  EXPECT_EQ(merged.counters[2].name, "shared");
  EXPECT_EQ(merged.counters[2].value, 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 9.0);  // b wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].buckets[0], 1u);
  EXPECT_EQ(merged.histograms[0].buckets[1], 1u);
}

TEST(Metrics, MergeIsDeterministic) {
  MetricsRegistry ra, rb;
  ra.counter("x").inc(1);
  rb.counter("y").inc(2);
  const MetricsSnapshot m1 = merge_snapshots(ra.snapshot(), rb.snapshot());
  const MetricsSnapshot m2 = merge_snapshots(ra.snapshot(), rb.snapshot());
  ASSERT_EQ(m1.counters.size(), m2.counters.size());
  for (std::size_t i = 0; i < m1.counters.size(); ++i) {
    EXPECT_EQ(m1.counters[i].name, m2.counters[i].name);
    EXPECT_EQ(m1.counters[i].value, m2.counters[i].value);
  }
}

// TSan target: many threads hammering one counter/gauge/histogram while a
// reader snapshots concurrently. Correctness check: the final counter total
// equals the number of increments (shards never lose writes).
TEST(Metrics, ThreadedRegistryStress) {
  MetricsRegistry reg;
  Counter c = reg.counter("stress_total");
  Gauge g = reg.gauge("stress_gauge");
  const std::array<double, 3> bounds = {10.0, 100.0, 1000.0};
  Histogram h = reg.histogram("stress_hist", bounds);

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(static_cast<double>((w * kIters + i) % 2000));
        if (i % 4096 == 0) (void)reg.snapshot();  // concurrent reader
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Spans

TEST(Spans, ScopedSpanInfersParentOnOneThread) {
  ManualTimeSource clock;
  SpanTracer tracer(&clock);
  {
    ScopedSpan outer(tracer, "outer", "test");
    clock.advance_ns(100);
    { ScopedSpan inner(tracer, "inner", "test"); clock.advance_ns(50); }
    clock.advance_ns(25);
  }
  const std::vector<Span> spans = tracer.completed();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by (begin_ns, id): outer begins at 0, inner at 100.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].begin_ns, 100u);
  EXPECT_EQ(spans[1].end_ns, 150u);
  EXPECT_EQ(spans[0].end_ns, 175u);
}

TEST(Spans, RecordCompleteBypassesTheClock) {
  ManualTimeSource clock;
  clock.set_ns(999999);
  SpanTracer tracer(&clock);
  tracer.record_complete("virtual", "sim", 1000, 3000, 7, 42);
  const std::vector<Span> spans = tracer.completed();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_ns, 1000u);
  EXPECT_EQ(spans[0].end_ns, 3000u);
  EXPECT_EQ(spans[0].track, 7u);
  EXPECT_EQ(spans[0].arg, 42u);
}

TEST(Spans, EndOfUnknownIdIsIgnored) {
  ManualTimeSource clock;
  SpanTracer tracer(&clock);
  tracer.end(12345);
  EXPECT_TRUE(tracer.completed().empty());
}

// ---------------------------------------------------------------------------
// Exporter golden files — byte-stable under a fixed TimeSource.

/// One deterministic registry used by all three exporter golden tests.
void populate_golden(Registry& reg, ManualTimeSource& clock) {
  reg.metrics().counter("aegis_demo_total").inc(3);
  reg.metrics().gauge("aegis_demo_depth").set(2.5);
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram h = reg.metrics().histogram("aegis_demo_reps", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  clock.set_ns(1000);
  const std::uint64_t id = reg.spans().begin("phase", "test", 1, 9);
  clock.set_ns(4000);
  reg.spans().end(id);
  reg.spans().record_complete("window", "sim", 2000, 2500, 3, 7);

  reg.budget().stamp(5, "admit", 1, 60, 2.25, 8.0);
}

TEST(Exporters, PrometheusGolden) {
  ManualTimeSource clock;
  Registry reg(&clock);
  populate_golden(reg, clock);
  std::ostringstream os;
  write_prometheus(reg.metrics().snapshot(), os);
  EXPECT_EQ(os.str(),
            "# TYPE aegis_demo_total counter\n"
            "aegis_demo_total 3\n"
            "# TYPE aegis_demo_depth gauge\n"
            "aegis_demo_depth 2.5\n"
            "# TYPE aegis_demo_reps histogram\n"
            "aegis_demo_reps_bucket{le=\"1\"} 1\n"
            "aegis_demo_reps_bucket{le=\"10\"} 2\n"
            "aegis_demo_reps_bucket{le=\"+Inf\"} 3\n"
            "aegis_demo_reps_sum 55.5\n"
            "aegis_demo_reps_count 3\n");
}

TEST(Exporters, PrometheusHelpLinesAreOptInAndEscaped) {
  Registry reg;
  reg.metrics().counter("aegis_helped_total").inc(1);
  reg.metrics().counter("aegis_unhelped_total").inc(2);
  reg.metrics().set_help("aegis_helped_total",
                         "line one\nline two with a back\\slash");
  std::ostringstream os;
  write_prometheus(reg.metrics().snapshot(), os);
  EXPECT_EQ(os.str(),
            "# HELP aegis_helped_total line one\\nline two with a "
            "back\\\\slash\n"
            "# TYPE aegis_helped_total counter\n"
            "aegis_helped_total 1\n"
            "# TYPE aegis_unhelped_total counter\n"
            "aegis_unhelped_total 2\n")
      << "HELP must be opt-in (no line for aegis_unhelped_total) and must "
         "escape backslash + newline per the text-format spec";
}

TEST(Exporters, PrometheusLabelValuesEscapeQuoteBackslashAndNewline) {
  Registry reg;
  // Registration sites compose label values raw; a hostile value must not
  // be able to break out of the quoted string or inject a sample line.
  reg.metrics()
      .counter("aegis_evil_total{tenant=\"a\\b\"\nc\",zone=\"ok\"}")
      .inc(7);
  reg.metrics().gauge("aegis_plain{tenant=\"4\"}").set(1.5);
  std::ostringstream os;
  write_prometheus(reg.metrics().snapshot(), os);
  EXPECT_EQ(os.str(),
            "# TYPE aegis_evil_total counter\n"
            "aegis_evil_total{tenant=\"a\\\\b\\\"\\nc\",zone=\"ok\"} 7\n"
            "# TYPE aegis_plain gauge\n"
            "aegis_plain{tenant=\"4\"} 1.5\n");
}

TEST(Exporters, JsonSnapshotGolden) {
  ManualTimeSource clock;
  Registry reg(&clock);
  populate_golden(reg, clock);
  std::ostringstream os;
  write_json_snapshot(reg, os);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"counters\": {\n"
            "    \"aegis_demo_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"aegis_demo_depth\": 2.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"aegis_demo_reps\": {\"bounds\": [1, 10], \"buckets\": "
            "[1, 1, 1], \"count\": 3, \"sum\": 55.5}\n"
            "  },\n"
            "  \"budget_timeline\": [\n"
            "    {\"seq\": 0, \"t_ns\": 4000, \"tenant\": 5, \"outcome\": "
            "\"admit\", \"granularity\": 1, \"releases\": 60, "
            "\"epsilon_after\": 2.25, \"epsilon_cap\": 8}\n"
            "  ]\n"
            "}\n");
}

TEST(Exporters, TraceJsonGolden) {
  ManualTimeSource clock;
  Registry reg(&clock);
  populate_golden(reg, clock);
  std::ostringstream os;
  write_trace_json(reg, os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"phase\", \"cat\": \"test\", \"ph\": \"X\", "
            "\"ts\": 1, \"dur\": 3, \"pid\": 1, \"tid\": 1, \"args\": "
            "{\"id\": 1, \"parent\": 0, \"arg\": 9}},\n"
            "  {\"name\": \"window\", \"cat\": \"sim\", \"ph\": \"X\", "
            "\"ts\": 2, \"dur\": 0.5, \"pid\": 1, \"tid\": 3, \"args\": "
            "{\"id\": 2, \"parent\": 0, \"arg\": 7}},\n"
            "  {\"name\": \"epsilon tenant 5\", \"cat\": \"budget\", "
            "\"ph\": \"C\", \"ts\": 4, \"pid\": 1, \"tid\": 0, \"args\": "
            "{\"epsilon\": 2.25, \"remaining\": 5.75}}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(Exporters, GoldenOutputIsByteStableAcrossRuns) {
  auto render = [] {
    ManualTimeSource clock;
    Registry reg(&clock);
    populate_golden(reg, clock);
    std::ostringstream prom, snap, trace;
    write_prometheus(reg.metrics().snapshot(), prom);
    write_json_snapshot(reg, snap);
    write_trace_json(reg, trace);
    return prom.str() + snap.str() + trace.str();
  };
  EXPECT_EQ(render(), render());
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonReader, RoundTripsASnapshot) {
  ManualTimeSource clock;
  Registry reg(&clock);
  populate_golden(reg, clock);
  std::ostringstream os;
  write_json_snapshot(reg, os);

  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("aegis_demo_total").as_u64(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("aegis_demo_depth").number, 2.5);
  const JsonValue& hist = doc.at("histograms").at("aegis_demo_reps");
  ASSERT_TRUE(hist.at("buckets").is_array());
  EXPECT_EQ(hist.at("buckets").array.size(), 3u);
  const JsonValue& timeline = doc.at("budget_timeline");
  ASSERT_EQ(timeline.array.size(), 1u);
  EXPECT_EQ(timeline.array[0].at("outcome").string, "admit");
  EXPECT_DOUBLE_EQ(timeline.array[0].at("epsilon_cap").number, 8.0);
}

TEST(JsonReader, MissingKeyYieldsSharedNull) {
  const JsonValue doc = parse_json("{\"a\": 1}");
  EXPECT_TRUE(doc.at("missing").is_null());
  EXPECT_EQ(doc.at("missing").as_u64(), 0u);
}

TEST(JsonReader, ParsesEscapesAndNesting) {
  const JsonValue doc =
      parse_json("{\"s\": \"a\\\"b\\\\c\\n\", \"arr\": [true, false, null, "
                 "-2.5e1], \"o\": {\"k\": 1}}");
  EXPECT_EQ(doc.at("s").string, "a\"b\\c\n");
  ASSERT_EQ(doc.at("arr").array.size(), 4u);
  EXPECT_TRUE(doc.at("arr").array[0].boolean);
  EXPECT_TRUE(doc.at("arr").array[2].is_null());
  EXPECT_DOUBLE_EQ(doc.at("arr").array[3].number, -25.0);
  EXPECT_EQ(doc.at("o").at("k").as_u64(), 1u);
}

TEST(JsonReader, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonParseError);
  EXPECT_THROW(parse_json("[1, 2,]"), JsonParseError);
  EXPECT_THROW(parse_json("{} trailing"), JsonParseError);
  EXPECT_THROW(parse_json(""), JsonParseError);
}

// ---------------------------------------------------------------------------
// Registry plumbing

TEST(Registry, ResolveFallsBackToGlobal) {
  Registry local;
  EXPECT_EQ(&resolve(&local), &local);
  EXPECT_EQ(&resolve(nullptr), &Registry::global());
}

TEST(Registry, GlobalIsStable) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Registry, SetTimeSourceRewiresSpansAndBudget) {
  Registry reg;  // starts on the internal TickTimeSource
  ManualTimeSource manual;
  manual.set_ns(777);
  reg.set_time_source(&manual);
  const std::uint64_t id = reg.spans().begin("s", "t");
  reg.spans().end(id);
  reg.budget().stamp(1, "admit", 1, 1, 0.5, 8.0);
  const auto spans = reg.spans().completed();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_ns, 777u);
  const auto events = reg.budget().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t_ns, 777u);
}

}  // namespace
}  // namespace aegis::telemetry
