#include <gtest/gtest.h>

#include <sstream>

#include "attack/wfa.hpp"
#include "core/serialize.hpp"
#include "pmu/backend/registry.hpp"

namespace aegis::core {
namespace {

struct Fixture {
  Aegis aegis{isa::CpuModel::kAmdEpyc7252};
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  OfflineResult result;

  Fixture() {
    attack::WfaScale scale;
    scale.sites = 4;
    scale.slices = 100;
    secrets = attack::make_wfa_secrets(scale);
    OfflineConfig config = make_quick_offline_config();
    config.profiler.ranking_runs_per_secret = 3;
    config.fuzz_top_events = 12;
    result = aegis.analyze(*secrets[0], secrets, config);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Serialize, RoundTripsEveryComponent) {
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  const OfflineResult loaded =
      load_offline_result(stream, f.aegis.database());

  EXPECT_EQ(loaded.warmup.surviving, f.result.warmup.surviving);
  ASSERT_EQ(loaded.ranking.size(), f.result.ranking.size());
  for (std::size_t i = 0; i < loaded.ranking.size(); ++i) {
    EXPECT_EQ(loaded.ranking[i].event_id, f.result.ranking[i].event_id);
    EXPECT_NEAR(loaded.ranking[i].mutual_information,
                f.result.ranking[i].mutual_information, 1e-4);
  }
  ASSERT_EQ(loaded.fuzz.reports.size(), f.result.fuzz.reports.size());
  for (std::size_t i = 0; i < loaded.fuzz.reports.size(); ++i) {
    const auto& a = loaded.fuzz.reports[i];
    const auto& b = f.result.fuzz.reports[i];
    EXPECT_EQ(a.event_id, b.event_id);
    ASSERT_EQ(a.confirmed.size(), b.confirmed.size());
    for (std::size_t g = 0; g < a.confirmed.size(); ++g) {
      EXPECT_EQ(a.confirmed[g].gadget, b.confirmed[g].gadget);
      EXPECT_NEAR(a.confirmed[g].median_delta, b.confirmed[g].median_delta, 1e-4);
    }
    EXPECT_EQ(a.best.gadget, b.best.gadget);
  }
  EXPECT_EQ(loaded.cover.gadgets, f.result.cover.gadgets);
  EXPECT_EQ(loaded.cover.covered_events.size(),
            f.result.cover.covered_events.size());
  EXPECT_EQ(loaded.cover.uncovered_events, f.result.cover.uncovered_events);
}

TEST(Serialize, LoadedResultBuildsAWorkingObfuscator) {
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  const OfflineResult loaded = load_offline_result(stream, f.aegis.database());

  dp::MechanismConfig mech;
  mech.kind = dp::MechanismKind::kLaplace;
  mech.epsilon = 0.5;
  auto obf = f.aegis.make_obfuscator(loaded, f.secrets, mech);
  sim::VirtualMachine vm(sim::VmConfig{}, 1);
  auto agent = obf->session();
  for (std::size_t t = 0; t < 50; ++t) {
    agent(vm, t);
    (void)vm.run_slice();
  }
  EXPECT_GT(obf->total_injected_repetitions(), 0.0);
}

TEST(Serialize, LoadsAcrossFamilyMembers) {
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  // The 7313P shares the 7252's event list (Table I): the analysis ports.
  const auto& sibling =
      pmu::backend::backend_for(isa::CpuModel::kAmdEpyc7313P).database();
  const OfflineResult loaded = load_offline_result(stream, sibling);
  EXPECT_EQ(loaded.warmup.surviving.size(), f.result.warmup.surviving.size());
}

TEST(Serialize, RejectsCrossVendorLoads) {
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  const auto& intel =
      pmu::backend::backend_for(isa::CpuModel::kIntelXeonE5_1650).database();
  EXPECT_THROW((void)load_offline_result(stream, intel), std::runtime_error);
}

TEST(Serialize, IntelResultsPortWithinTheXeonE5Family) {
  // Cross-SKU port on the OTHER vendor: a template analyzed on the E5-1650
  // loads on the E5-4617 (14 of 6166+ events differ, none of which the
  // warm-up survivors reference), and is refused by the AMD family.
  Aegis intel{isa::CpuModel::kIntelXeonE5_1650};
  auto& f = fixture();
  attack::WfaScale scale;
  scale.sites = 2;
  scale.slices = 40;
  auto secrets = attack::make_wfa_secrets(scale);
  OfflineConfig config = make_quick_offline_config();
  config.profiler.ranking_runs_per_secret = 3;
  config.fuzz_top_events = 4;
  const OfflineResult result = intel.analyze(*secrets[0], secrets, config);

  std::stringstream stream;
  save_offline_result(stream, result, intel.database());
  const std::string text = stream.str();
  EXPECT_NE(text.find("backend intel-xeon-e5\n"), std::string::npos);

  const auto& sibling =
      pmu::backend::backend_for(isa::CpuModel::kIntelXeonE5_4617).database();
  std::stringstream again(text);
  const OfflineResult loaded = load_offline_result(again, sibling);
  EXPECT_EQ(loaded.warmup.surviving.size(), result.warmup.surviving.size());

  std::stringstream cross(text);
  EXPECT_THROW((void)load_offline_result(cross, f.aegis.database()),
               std::runtime_error);
}

TEST(Serialize, LoadsVersion1StreamsWithoutABackendLine) {
  // Back-compat: a v1 stream (written before the backend line existed)
  // still loads; the backend is implied by the cpu line.
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  std::string text = stream.str();
  const std::string header = "aegis-offline-result v2\n";
  const std::string backend_line = "backend amd-zen2\n";
  ASSERT_EQ(text.rfind(header, 0), 0u);
  const auto pos = text.find(backend_line);
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, backend_line.size());
  text.replace(0, header.size(), "aegis-offline-result v1\n");
  std::stringstream v1(text);
  const OfflineResult loaded = load_offline_result(v1, f.aegis.database());
  EXPECT_EQ(loaded.warmup.surviving, f.result.warmup.surviving);
}

TEST(Serialize, RejectsBackendMismatchInVersion2Streams) {
  // A tampered (or wrongly routed) v2 stream whose backend line disagrees
  // with the loading model's backend is refused with a clear error.
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  std::string text = stream.str();
  const auto pos = text.find("backend amd-zen2\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("backend amd-zen2").size(),
               "backend intel-xeon-e5");
  std::stringstream tampered(text);
  try {
    (void)load_offline_result(tampered, f.aegis.database());
    FAIL() << "backend-mismatched stream must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("backend mismatch"),
              std::string::npos);
  }
}

TEST(Serialize, RejectsGarbage) {
  auto& f = fixture();
  std::stringstream bad("not an aegis file\n");
  EXPECT_THROW((void)load_offline_result(bad, f.aegis.database()),
               std::runtime_error);
  std::stringstream truncated(
      "aegis-offline-result v2\ncpu AMD EPYC 7252\nbackend amd-zen2\n");
  EXPECT_THROW((void)load_offline_result(truncated, f.aegis.database()),
               std::runtime_error);
}

TEST(Serialize, RejectsFutureFormatVersionsWithAClearError) {
  auto& f = fixture();
  std::stringstream stream;
  save_offline_result(stream, f.result, f.aegis.database());
  std::string text = stream.str();

  // Hand-edit the header to claim a future format version: a stream from
  // a newer build must be refused up front, not mis-parsed downstream.
  const std::string header = "aegis-offline-result v2";
  ASSERT_EQ(text.rfind(header, 0), 0u);
  text.replace(0, header.size(), "aegis-offline-result v7");
  std::stringstream future(text);
  try {
    (void)load_offline_result(future, f.aegis.database());
    FAIL() << "future-version stream must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos);
  }

  // Versions that are merely garbage are rejected as malformed.
  std::stringstream junk("aegis-offline-result vQ\n");
  EXPECT_THROW((void)load_offline_result(junk, f.aegis.database()),
               std::runtime_error);
  std::stringstream zero("aegis-offline-result v0\n");
  EXPECT_THROW((void)load_offline_result(zero, f.aegis.database()),
               std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  auto& f = fixture();
  const std::string path = "/tmp/aegis_serialize_test.txt";
  save_offline_result(path, f.result, f.aegis.database());
  const OfflineResult loaded = load_offline_result(path, f.aegis.database());
  EXPECT_EQ(loaded.cover.gadgets, f.result.cover.gadgets);
  EXPECT_THROW((void)load_offline_result("/nonexistent/path", f.aegis.database()),
               std::runtime_error);
}

}  // namespace
}  // namespace aegis::core
