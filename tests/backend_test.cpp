// PMU backend layer tests. Two jobs: (1) pin the bit-identity contract —
// the AMD backend is a pure view over the same EventDatabase the seed
// generated, so the golden AMD results cannot move; (2) pin the per-vendor
// SKU metadata (tier census, attack defaults, fixed-counter sets, Table I
// cross-SKU differentials) so a backend edit is a deliberate re-baseline.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pmu/backend/amd_zen2.hpp"
#include "pmu/backend/backend.hpp"
#include "pmu/backend/intel_xeon_e5.hpp"
#include "pmu/backend/registry.hpp"
#include "pmu/event_database.hpp"

namespace aegis::pmu::backend {
namespace {

using isa::CpuModel;

constexpr CpuModel kAllModels[] = {
    CpuModel::kIntelXeonE5_1650,
    CpuModel::kIntelXeonE5_4617,
    CpuModel::kAmdEpyc7252,
    CpuModel::kAmdEpyc7313P,
};

TEST(Registry, CoversEveryModel) {
  const auto models = BackendRegistry::instance().models();
  ASSERT_EQ(models.size(), 4u);
  for (CpuModel m : kAllModels) {
    const PmuBackend& b = backend_for(m);
    EXPECT_EQ(b.model(), m);
    EXPECT_FALSE(b.id().empty());
  }
}

TEST(Registry, BackendsAreProcessWideSingletons) {
  for (CpuModel m : kAllModels) {
    EXPECT_EQ(&backend_for(m), &BackendRegistry::instance().get(m));
    EXPECT_EQ(&backend_for(m).database(), &backend_for(m).database());
  }
}

TEST(Registry, FamilySharesOneBackendId) {
  EXPECT_EQ(backend_id(CpuModel::kAmdEpyc7252), "amd-zen2");
  EXPECT_EQ(backend_id(CpuModel::kAmdEpyc7313P), "amd-zen2");
  EXPECT_EQ(backend_id(CpuModel::kIntelXeonE5_1650), "intel-xeon-e5");
  EXPECT_EQ(backend_id(CpuModel::kIntelXeonE5_4617), "intel-xeon-e5");
}

// The load-bearing identity: the backend's database IS the seed's
// database, event for event, byte for byte. Everything downstream (hot
// path, seceval, serialize goldens) rides on this.
TEST(Backend, DatabaseIsBitIdenticalToDirectGeneration) {
  for (CpuModel m : kAllModels) {
    // aegis-lint: event-db-ok(this fixture compares the raw database to
    // the backend view; it must call generate() directly)
    const EventDatabase direct = EventDatabase::generate(m);
    const EventDatabase& viewed = backend_for(m).database();
    ASSERT_EQ(viewed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      const EventDescriptor& a = direct.events()[i];
      const EventDescriptor& b = viewed.events()[i];
      ASSERT_EQ(a.id, b.id);
      ASSERT_EQ(a.name, b.name);
      ASSERT_EQ(a.type, b.type);
    }
  }
}

TEST(Backend, WrongVendorConstructionThrows) {
  EXPECT_THROW(AmdZen2Backend{CpuModel::kIntelXeonE5_1650},
               std::invalid_argument);
  EXPECT_THROW(IntelXeonE5Backend{CpuModel::kAmdEpyc7313P},
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Counter topology and tier census

TEST(Backend, CounterBudgets) {
  for (CpuModel m : kAllModels) {
    EXPECT_EQ(backend_for(m).counter_budget(), 4u);
    EXPECT_EQ(backend_for(m).uncore_counter_budget(), 4u);
  }
  EXPECT_EQ(backend_for(CpuModel::kAmdEpyc7252).fixed_counter_budget(), 2u);
  EXPECT_EQ(backend_for(CpuModel::kIntelXeonE5_1650).fixed_counter_budget(),
            3u);
}

TEST(Backend, TierCensusGoldens) {
  using Census = std::array<std::size_t, kNumCounterTiers>;
  const Census amd{26, 1780, 23, 74};
  EXPECT_EQ(backend_for(CpuModel::kAmdEpyc7252).tier_counts(), amd);
  EXPECT_EQ(backend_for(CpuModel::kAmdEpyc7313P).tier_counts(), amd);
  EXPECT_EQ(backend_for(CpuModel::kIntelXeonE5_1650).tier_counts(),
            (Census{25, 5664, 474, 3}));
  EXPECT_EQ(backend_for(CpuModel::kIntelXeonE5_4617).tier_counts(),
            (Census{25, 5670, 474, 3}));
}

TEST(Backend, TierCensusCoversTheWholeDatabase) {
  for (CpuModel m : kAllModels) {
    const PmuBackend& b = backend_for(m);
    std::size_t sum = 0;
    for (std::size_t n : b.tier_counts()) sum += n;
    EXPECT_EQ(sum, b.database().size());
  }
}

TEST(Backend, FixedCounterEventsResolveAndAreUniversal) {
  for (CpuModel m : kAllModels) {
    const PmuBackend& b = backend_for(m);
    std::size_t fixed_servable = 0;
    for (const EventDescriptor& e : b.database().events()) {
      if (!b.fixed_counter_event(e.name)) continue;
      ++fixed_servable;
      EXPECT_EQ(b.tier_of(e.id), CounterTier::kUniversal)
          << e.name << " on " << b.id();
    }
    // Aliases and their raw twins both qualify, so at least one name per
    // fixed slot resolves in the database.
    EXPECT_GE(fixed_servable, b.fixed_counter_budget()) << b.id();
  }
}

// ---------------------------------------------------------------------------
// Attack-event defaults (satellite 1)

TEST(Backend, AmdAttackDefaultsMatchThePaper) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  const std::vector<std::uint32_t> ids = b.attack_events();
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1764, 1765, 1766, 1767}));
  // Same ids the paper's Section III-B names resolve to directly.
  const char* const kPaperNames[] = {
      "RETIRED_UOPS", "LS_DISPATCH", "MAB_ALLOCATION_BY_PIPE",
      "DATA_CACHE_REFILLS_FROM_SYSTEM"};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto direct = b.database().find(kPaperNames[i]);
    ASSERT_TRUE(direct.has_value()) << kPaperNames[i];
    EXPECT_EQ(ids[i], *direct);
  }
}

TEST(Backend, IntelAttackDefaultsResolvePerSku) {
  const std::vector<std::string_view> names =
      backend_for(CpuModel::kIntelXeonE5_1650).attack_event_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "MEM_LOAD_UOPS_RETIRED:L1_HIT");
  // Table I: the two E5 SKUs differ in a handful of events, so the same
  // names land on different ids per SKU.
  EXPECT_EQ(backend_for(CpuModel::kIntelXeonE5_1650).attack_events(),
            (std::vector<std::uint32_t>{2334, 2335, 2337, 2339}));
  EXPECT_EQ(backend_for(CpuModel::kIntelXeonE5_4617).attack_events(),
            (std::vector<std::uint32_t>{2330, 2331, 2333, 2335}));
}

TEST(Backend, AttackEventsFitTheCounterBudget) {
  for (CpuModel m : kAllModels) {
    const PmuBackend& b = backend_for(m);
    EXPECT_EQ(b.attack_events().size(), b.counter_budget());
  }
}

// ---------------------------------------------------------------------------
// SKU overrides and name resolution

TEST(Backend, SkuOverridesResolve) {
  for (CpuModel m : kAllModels) {
    const PmuBackend& b = backend_for(m);
    for (const char* alias :
         {"INSTRUCTIONS", "CPU-CYCLES", "BRANCH-INSTRUCTIONS",
          "BRANCH-MISSES"}) {
      const std::string_view raw = b.sku_override(alias);
      if (raw.empty()) continue;
      EXPECT_TRUE(b.database().find(raw).has_value())
          << alias << " -> " << raw << " on " << b.id();
      EXPECT_TRUE(b.resolve(alias).has_value()) << alias;
    }
    EXPECT_TRUE(b.sku_override("RETIRED_UOPS").empty());
  }
}

TEST(Backend, AmdAliasesResolveToRawTwins) {
  const PmuBackend& b = backend_for(CpuModel::kAmdEpyc7252);
  EXPECT_EQ(b.sku_override("INSTRUCTIONS"), "RETIRED_INSTRUCTIONS");
  EXPECT_EQ(b.sku_override("CPU-CYCLES"), "CYCLES_NOT_IN_HALT");
}

TEST(Backend, IntelAliasesResolveToRawTwins) {
  const PmuBackend& b = backend_for(CpuModel::kIntelXeonE5_4617);
  EXPECT_EQ(b.sku_override("INSTRUCTIONS"), "INST_RETIRED:ANY");
  EXPECT_EQ(b.sku_override("CACHE-MISSES"), "LONGEST_LAT_CACHE:MISS");
}

// ---------------------------------------------------------------------------
// Table I cross-SKU differentials (satellite 3)

std::set<std::string> names_of(const PmuBackend& b) {
  std::set<std::string> out;
  for (const EventDescriptor& e : b.database().events()) out.insert(e.name);
  return out;
}

std::size_t symmetric_difference(const std::set<std::string>& a,
                                 const std::set<std::string>& b) {
  std::size_t n = 0;
  for (const std::string& s : a) n += b.count(s) == 0 ? 1 : 0;
  for (const std::string& s : b) n += a.count(s) == 0 ? 1 : 0;
  return n;
}

TEST(TableI, IntelSkusDifferInExactlyFourteenEvents) {
  const auto a = names_of(backend_for(CpuModel::kIntelXeonE5_1650));
  const auto b = names_of(backend_for(CpuModel::kIntelXeonE5_4617));
  EXPECT_EQ(a.size(), 6166u);
  EXPECT_EQ(b.size(), 6172u);
  EXPECT_EQ(symmetric_difference(a, b), 14u);
}

TEST(TableI, AmdSkusExposeIdenticalEventSets) {
  const auto a = names_of(backend_for(CpuModel::kAmdEpyc7252));
  const auto b = names_of(backend_for(CpuModel::kAmdEpyc7313P));
  EXPECT_EQ(a.size(), 1903u);
  EXPECT_EQ(symmetric_difference(a, b), 0u);
}

// ---------------------------------------------------------------------------
// CPU selector parsing (the AEGIS_CPU seam)

TEST(Selector, ParsesShorthandsTokensAndFullNames) {
  EXPECT_EQ(parse_cpu_model("amd"), CpuModel::kAmdEpyc7252);
  EXPECT_EQ(parse_cpu_model("intel"), CpuModel::kIntelXeonE5_1650);
  EXPECT_EQ(parse_cpu_model("AmdEpyc7313P"), CpuModel::kAmdEpyc7313P);
  EXPECT_EQ(parse_cpu_model("IntelXeonE5_4617"), CpuModel::kIntelXeonE5_4617);
  EXPECT_EQ(parse_cpu_model("AMD EPYC 7252"), CpuModel::kAmdEpyc7252);
  EXPECT_EQ(parse_cpu_model("ryzen"), std::nullopt);
  EXPECT_EQ(parse_cpu_model(""), std::nullopt);
}

TEST(Selector, EnvironmentSteersToolRuns) {
  ::setenv("AEGIS_CPU", "intel", 1);
  EXPECT_EQ(model_from_env(), CpuModel::kIntelXeonE5_1650);
  ::setenv("AEGIS_CPU", "not-a-cpu", 1);
  EXPECT_EQ(model_from_env(CpuModel::kAmdEpyc7313P),
            CpuModel::kAmdEpyc7313P);
  ::unsetenv("AEGIS_CPU");
  EXPECT_EQ(model_from_env(), CpuModel::kAmdEpyc7252);
}

}  // namespace
}  // namespace aegis::pmu::backend
