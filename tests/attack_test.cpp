#include <gtest/gtest.h>

#include "attack/ksa.hpp"
#include "attack/mea.hpp"
#include "attack/wfa.hpp"

namespace aegis::attack {
namespace {

std::vector<std::uint32_t> attack_events(const pmu::EventDatabase& db) {
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*db.find(name));
  return events;
}

TEST(Dataset, CollectsLabelledTraces) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  secrets.push_back(std::make_unique<workload::WebsiteWorkload>(0, 80));
  secrets.push_back(std::make_unique<workload::WebsiteWorkload>(1, 80));
  CollectionConfig config;
  config.event_ids = attack_events(db);
  config.traces_per_secret = 3;
  const trace::TraceSet set = collect_traces(db, secrets, config);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_EQ(set.num_classes, 2);
  for (const auto& t : set.traces) {
    EXPECT_EQ(t.slices(), 80u);
    EXPECT_EQ(t.events(), 4u);
  }
  EXPECT_EQ(set.labels[0], 0);
  EXPECT_EQ(set.labels[5], 1);
}

TEST(Dataset, CollectOneIsDeterministicPerSeed) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  workload::WebsiteWorkload site(2, 60);
  CollectionConfig config;
  config.event_ids = attack_events(db);
  const trace::Trace a = collect_one(db, site, config, 99);
  const trace::Trace b = collect_one(db, site, config, 99);
  EXPECT_EQ(a.samples, b.samples);
  const trace::Trace c = collect_one(db, site, config, 100);
  EXPECT_NE(a.samples, c.samples);
}

TEST(Wfa, SecretFactoryBuildsAllSites) {
  WfaScale scale;
  const auto secrets = make_wfa_secrets(scale);
  EXPECT_EQ(secrets.size(), workload::WebsiteWorkload::kNumSites);
  EXPECT_EQ(secrets[2]->name(), "facebook.com");
}

TEST(Wfa, HighAccuracyOnCleanTraces) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  WfaScale scale;
  scale.sites = 8;
  scale.traces_per_site = 14;
  scale.epochs = 20;
  scale.slices = 180;
  const auto secrets = make_wfa_secrets(scale);
  ClassificationAttack wfa(db, make_wfa_config(attack_events(db), scale));
  const auto history = wfa.train(secrets);
  ASSERT_EQ(history.size(), 20u);
  // Fig. 1a shape: accuracy climbs during training to a high plateau.
  EXPECT_GT(history.back().val_accuracy, 0.85);
  EXPECT_GT(history.back().train_accuracy, history.front().train_accuracy);
  // Victim exploitation mirrors validation accuracy (paper: 98.7 vs 98.6).
  EXPECT_GT(wfa.exploit(secrets, 3, 501), 0.8);
}

TEST(Wfa, PredictThrowsBeforeTraining) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  WfaScale scale;
  ClassificationAttack wfa(db, make_wfa_config(attack_events(db), scale));
  trace::Trace t;
  EXPECT_THROW((void)wfa.predict(t), std::logic_error);
  EXPECT_THROW((void)wfa.exploit({}, 1, 1), std::logic_error);
}

TEST(Ksa, SecretFactoryCoversAllCounts) {
  KsaScale scale;
  const auto secrets = make_ksa_secrets(scale);
  EXPECT_EQ(secrets.size(), 10u);  // K in [0, 9]
  EXPECT_EQ(secrets[0]->name(), "0 keystrokes");
  EXPECT_EQ(secrets[9]->name(), "9 keystrokes");
}

TEST(Ksa, HighAccuracyOnCleanTraces) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  KsaScale scale;
  scale.traces_per_count = 60;
  scale.epochs = 25;
  scale.slices = 200;
  const auto secrets = make_ksa_secrets(scale);
  ClassificationAttack ksa(db, make_ksa_config(attack_events(db), scale));
  const auto history = ksa.train(secrets);
  EXPECT_GT(history.back().val_accuracy, 0.7);
}

TEST(Mea, TrainAndExtractArchitectures) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  MeaConfig config;
  config.event_ids = attack_events(db);
  config.scale.models = 6;
  config.scale.traces_per_model = 8;
  config.scale.epochs = 12;
  config.scale.slices = 200;
  MeaAttack mea(db, config);
  const auto history = mea.train();
  // Frame classifier learns layer signatures (Fig. 1c shape).
  EXPECT_GT(history.back().val_accuracy, 0.85);
  EXPECT_GT(mea.validation_frame_accuracy(), 0.85);
  // Victim extraction: matched-layers metric well above chance.
  EXPECT_GT(mea.exploit(2, 777), 0.6);
}

TEST(Mea, ExtractReturnsPlausibleSequence) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  MeaConfig config;
  config.event_ids = attack_events(db);
  config.scale.models = 4;
  config.scale.traces_per_model = 8;
  config.scale.epochs = 12;
  config.scale.slices = 200;
  MeaAttack mea(db, config);
  (void)mea.train();
  const std::vector<int> seq = mea.extract(0, 31337);
  EXPECT_GT(seq.size(), 3u);
  for (int label : seq) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, workload::kBlankLabel);  // blank never appears decoded
  }
}

TEST(Mea, ThrowsBeforeTraining) {
  const auto db = pmu::EventDatabase::generate(isa::CpuModel::kAmdEpyc7252);
  MeaConfig config;
  config.event_ids = attack_events(db);
  config.scale.models = 2;
  MeaAttack mea(db, config);
  EXPECT_THROW((void)mea.extract(0, 1), std::logic_error);
  EXPECT_THROW((void)mea.exploit(1, 1), std::logic_error);
}

}  // namespace
}  // namespace aegis::attack
