#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <unordered_set>

#include "fuzzer/confirmation.hpp"
#include "fuzzer/filtering.hpp"
#include "fuzzer/fuzzer.hpp"
#include "fuzzer/set_cover.hpp"
#include "sim/instruction_block.hpp"

namespace aegis::fuzzer {
namespace {

using isa::CpuModel;
using isa::InstructionClass;

struct Fixture {
  pmu::EventDatabase db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  isa::IsaSpecification spec =
      isa::IsaSpecification::generate(CpuModel::kAmdEpyc7252);

  std::uint32_t find_variant(InstructionClass iclass, bool mem = false,
                             bool store = false) const {
    for (const auto& v : spec.variants()) {
      if (v.legal() && v.iclass == iclass && v.has_memory_operand == mem &&
          v.is_store == store) {
        return v.uid;
      }
    }
    throw std::runtime_error("variant not found");
  }
};

TEST(Cleanup, KeepsExactlyTheLegalVariants) {
  Fixture f;
  EventFuzzer fuzzer(f.db, f.spec, FuzzerConfig{});
  const auto& cleaned = fuzzer.cleanup();
  EXPECT_EQ(cleaned.size(), f.spec.legal_count());
  for (std::uint32_t uid : cleaned) {
    EXPECT_TRUE(f.spec.by_uid(uid).legal());
  }
}

TEST(Cleanup, IsIdempotent) {
  Fixture f;
  EventFuzzer fuzzer(f.db, f.spec, FuzzerConfig{});
  const auto first = fuzzer.cleanup();
  const auto second = fuzzer.cleanup();
  EXPECT_EQ(first, second);
}

TEST(Confirmation, ConfirmsFlushLoadGadgetForCacheEvent) {
  // The paper's canonical example: clflush reset + load trigger disturbs
  // cache-refill events.
  Fixture f;
  sim::GadgetRunner runner(f.db, f.spec, 1);
  runner.program({*f.db.find("DATA_CACHE_REFILLS_FROM_SYSTEM")});
  const Gadget gadget{f.find_variant(InstructionClass::kCacheFlush, true),
                      f.find_variant(InstructionClass::kLoad, true)};
  const ConfirmationOutcome outcome =
      confirm_gadget(runner, gadget, 0, ConfirmationParams{});
  EXPECT_TRUE(outcome.confirmed);
  EXPECT_GT(outcome.trigger_delta(), 0.3);
}

TEST(Confirmation, RejectsGadgetWhoseResetDoesNotReset) {
  // NOP reset + load trigger: without a flush, the loads hit cache after
  // the first execution, so the cumulative misses fall far short of
  // R * median -> the lambda1 linearity constraint rejects it (C6).
  Fixture f;
  sim::GadgetRunner runner(f.db, f.spec, 2);
  runner.program({*f.db.find("DATA_CACHE_REFILLS_FROM_SYSTEM")});
  const Gadget gadget{f.find_variant(InstructionClass::kNop),
                      f.find_variant(InstructionClass::kLoad, true)};
  const ConfirmationOutcome outcome =
      confirm_gadget(runner, gadget, 0, ConfirmationParams{});
  EXPECT_FALSE(outcome.confirmed);
}

TEST(Confirmation, RejectsResetSideEffectGadget) {
  // Store reset + NOP trigger on a store-counting event: the whole change
  // comes from the reset (C5); the hot path is not lambda2 times the cold.
  Fixture f;
  sim::GadgetRunner runner(f.db, f.spec, 3);
  runner.program({*f.db.find("HW_CACHE_L1D:WRITE:ACCESS")});
  const Gadget gadget{f.find_variant(InstructionClass::kStore, true, true),
                      f.find_variant(InstructionClass::kNop)};
  const ConfirmationOutcome outcome =
      confirm_gadget(runner, gadget, 0, ConfirmationParams{});
  EXPECT_FALSE(outcome.confirmed);
}

TEST(Confirmation, ConfirmsUopGadgetWithCheapReset) {
  Fixture f;
  sim::GadgetRunner runner(f.db, f.spec, 4);
  runner.program({*f.db.find("RETIRED_UOPS")});
  const Gadget gadget{f.find_variant(InstructionClass::kNop),
                      f.find_variant(InstructionClass::kIntDiv)};
  const ConfirmationOutcome outcome =
      confirm_gadget(runner, gadget, 0, ConfirmationParams{});
  EXPECT_TRUE(outcome.confirmed);
}

TEST(Confirmation, MeasurePathSeparatesColdAndHot) {
  Fixture f;
  sim::GadgetRunner runner(f.db, f.spec, 5);
  runner.program({*f.db.find("RETIRED_UOPS")});
  const Gadget gadget{f.find_variant(InstructionClass::kNop),
                      f.find_variant(InstructionClass::kIntMul)};
  const ConfirmationParams params;
  const PathMeasurement cold = measure_path(runner, gadget, false, 0, params);
  const PathMeasurement hot = measure_path(runner, gadget, true, 0, params);
  EXPECT_GT(hot.median, cold.median + 1.0);
  EXPECT_NEAR(hot.cumulative, hot.median * params.repeats,
              hot.cumulative * 0.3 + 1.0);
}

TEST(Filtering, ClustersByExtensionAndCategory) {
  Fixture f;
  // Two gadgets with identical attribute tuples and one different.
  std::vector<std::uint32_t> alus, simds;
  for (const auto& v : f.spec.variants()) {
    if (!v.legal()) continue;
    if (v.iclass == InstructionClass::kIntAlu && !v.has_memory_operand &&
        alus.size() < 2) {
      alus.push_back(v.uid);
    }
    if (v.iclass == InstructionClass::kSimdFp && v.extension == isa::Extension::kSse &&
        simds.size() < 1) {
      simds.push_back(v.uid);
    }
  }
  ASSERT_EQ(alus.size(), 2u);
  ASSERT_EQ(simds.size(), 1u);
  const std::uint32_t nop = f.find_variant(InstructionClass::kNop);
  std::vector<ConfirmedGadget> confirmed = {
      {{nop, alus[0]}, 0, 10.0},
      {{nop, alus[1]}, 0, 20.0},  // same cluster, higher delta
      {{nop, simds[0]}, 0, 5.0},
  };
  const FilterOutcome outcome = filter_gadgets(confirmed, f.spec);
  EXPECT_EQ(outcome.clusters, 2u);
  EXPECT_EQ(outcome.representatives.size(), 2u);
  EXPECT_DOUBLE_EQ(outcome.best.median_delta, 20.0);
  // The ALU cluster representative is the max-delta member.
  bool found = false;
  for (const auto& g : outcome.representatives) {
    if (g.gadget.trigger_uid == alus[1]) found = true;
    EXPECT_NE(g.gadget.trigger_uid, alus[0]);
  }
  EXPECT_TRUE(found);
}

TEST(Filtering, EmptyInputYieldsEmptyOutcome) {
  Fixture f;
  const FilterOutcome outcome = filter_gadgets({}, f.spec);
  EXPECT_EQ(outcome.clusters, 0u);
  EXPECT_TRUE(outcome.representatives.empty());
}

TEST(Fuzzer, RunFindsGadgetsForAttackEvents) {
  Fixture f;
  FuzzerConfig config;
  config.reset_sample = 40;
  config.trigger_sample = 40;
  config.repeats = 6;
  EventFuzzer fuzzer(f.db, f.spec, config);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*f.db.find(name));
  const FuzzResult result = fuzzer.run(events);
  ASSERT_EQ(result.reports.size(), 4u);
  for (const auto& report : result.reports) {
    EXPECT_FALSE(report.confirmed.empty())
        << f.db.by_id(report.event_id).name;
    EXPECT_LE(report.representatives.size(), report.confirmed.size());
    EXPECT_GT(report.best.median_delta, 0.0);
  }
  EXPECT_EQ(result.cleaned_instructions, f.spec.legal_count());
  EXPECT_EQ(result.total_gadget_space,
            f.spec.legal_count() * f.spec.legal_count());
  EXPECT_GT(result.executed_gadgets, 0u);
  EXPECT_GT(result.timing.generation_execution_seconds, 0.0);
}

TEST(Fuzzer, ConfirmedGadgetsAreSubsetOfCandidates) {
  Fixture f;
  FuzzerConfig config;
  config.reset_sample = 24;
  config.trigger_sample = 24;
  config.repeats = 5;
  EventFuzzer fuzzer(f.db, f.spec, config);
  const FuzzResult result = fuzzer.run({*f.db.find("RETIRED_UOPS")});
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_LE(result.reports[0].confirmed.size(), result.reports[0].candidates);
}

TEST(SetCover, CoversEveryEventWithGadgets) {
  Fixture f;
  FuzzerConfig config;
  config.reset_sample = 32;
  config.trigger_sample = 32;
  config.repeats = 5;
  EventFuzzer fuzzer(f.db, f.spec, config);
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*f.db.find(name));
  events.push_back(*f.db.find("RETIRED_BRANCH_INSTRUCTIONS"));
  events.push_back(*f.db.find("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR"));
  const FuzzResult result = fuzzer.run(events);
  const GadgetCover cover = minimal_gadget_cover(result);
  EXPECT_TRUE(cover.uncovered_events.empty());
  EXPECT_EQ(cover.covered_events.size(), events.size());
  // The cover exploits intersections: far fewer gadgets than events.
  EXPECT_LE(cover.gadgets.size(), events.size());
  EXPECT_GE(cover.gadgets.size(), 1u);
  // Every covered event has a positive segment effect.
  for (const auto& [event, delta] : cover.segment_effect) {
    EXPECT_GT(delta, 0.0) << f.db.by_id(event).name;
  }
}

TEST(SetCover, ReportsUncoverableEvents) {
  FuzzResult result;
  EventFuzzReport empty_report;
  empty_report.event_id = 42;
  result.reports.push_back(empty_report);  // no confirmed gadgets
  const GadgetCover cover = minimal_gadget_cover(result);
  ASSERT_EQ(cover.uncovered_events.size(), 1u);
  EXPECT_EQ(cover.uncovered_events[0], 42u);
  EXPECT_TRUE(cover.gadgets.empty());
}

TEST(SetCover, GreedyPrefersSharedGadgets) {
  // Build a synthetic result where one gadget covers both events and two
  // others cover one each; greedy must pick the shared gadget alone.
  FuzzResult result;
  const Gadget shared{1, 2}, only_a{3, 4}, only_b{5, 6};
  EventFuzzReport ra, rb;
  ra.event_id = 100;
  ra.confirmed = {{shared, 100, 5.0}, {only_a, 100, 50.0}};
  rb.event_id = 200;
  rb.confirmed = {{shared, 200, 5.0}, {only_b, 200, 50.0}};
  result.reports = {ra, rb};
  const GadgetCover cover = minimal_gadget_cover(result);
  ASSERT_EQ(cover.gadgets.size(), 1u);
  EXPECT_EQ(cover.gadgets[0], shared);
}

TEST(SetCover, DeterministicAcrossRunsAndInsertionOrders) {
  // Regression for the hash-order tie-break bug: three gadgets cover the
  // same two events with IDENTICAL deltas, so the old implementation's
  // winner depended on unordered_map iteration order (stdlib + insertion
  // sequence). The cover must now be a pure function of the set of
  // confirmed gadgets: same result on every run and for every insertion
  // order of the reports and their confirmed lists.
  const Gadget tie_a{5, 9}, tie_b{2, 7}, tie_c{9, 1};
  const Gadget only_a{11, 3}, only_b{4, 12};
  const std::vector<ConfirmedGadget> base_a = {
      {tie_a, 100, 10.0}, {tie_b, 100, 10.0}, {tie_c, 100, 10.0},
      {only_a, 100, 3.0}};
  const std::vector<ConfirmedGadget> base_b = {
      {tie_a, 200, 10.0}, {tie_b, 200, 10.0}, {tie_c, 200, 10.0},
      {only_b, 200, 3.0}};
  const auto make_result = [](std::vector<ConfirmedGadget> ca,
                              std::vector<ConfirmedGadget> cb,
                              bool swap_reports) {
    EventFuzzReport ra, rb;
    ra.event_id = 100;
    ra.confirmed = std::move(ca);
    rb.event_id = 200;
    rb.confirmed = std::move(cb);
    FuzzResult result;
    if (swap_reports) {
      result.reports = {rb, ra};
    } else {
      result.reports = {ra, rb};
    }
    return result;
  };
  const auto expect_same = [](const GadgetCover& got, const GadgetCover& want,
                              const char* what) {
    EXPECT_EQ(got.gadgets, want.gadgets) << what;
    EXPECT_EQ(got.covered_events, want.covered_events) << what;
    EXPECT_EQ(got.uncovered_events, want.uncovered_events) << what;
    EXPECT_EQ(got.segment_effect, want.segment_effect) << what;
  };

  const GadgetCover base = minimal_gadget_cover(make_result(base_a, base_b, false));
  ASSERT_EQ(base.gadgets.size(), 1u);
  // The pure tie must resolve to the lowest (reset_uid, trigger_uid) key.
  EXPECT_EQ(base.gadgets[0], tie_b);

  // Same input, repeated runs.
  for (int run = 0; run < 3; ++run) {
    expect_same(minimal_gadget_cover(make_result(base_a, base_b, false)), base,
                "repeated run");
  }
  // Every rotation of both confirmed lists, with and without swapped
  // report order — each permutation changes the hash maps' insertion
  // sequence, which the old tie-break leaked into the output.
  for (std::size_t rot = 0; rot < base_a.size(); ++rot) {
    std::vector<ConfirmedGadget> ca(base_a.begin() + rot, base_a.end());
    ca.insert(ca.end(), base_a.begin(), base_a.begin() + rot);
    std::vector<ConfirmedGadget> cb(base_b.rbegin(), base_b.rend());
    std::rotate(cb.begin(), cb.begin() + rot, cb.end());
    expect_same(minimal_gadget_cover(make_result(ca, cb, false)), base,
                "rotated confirmed lists");
    expect_same(minimal_gadget_cover(make_result(ca, cb, true)), base,
                "rotated lists + swapped reports");
  }
}

TEST(FuzzerConfig, UnrollsAreIntegralRepetitionCounts) {
  // The unrolls are how many back-to-back copies of an instruction the
  // generated code contains; a fractional instruction cannot be emitted, so
  // the knobs are integral (the historical double declaration was doc
  // drift).
  static_assert(std::is_integral_v<decltype(FuzzerConfig{}.reset_unroll)>);
  static_assert(std::is_integral_v<decltype(FuzzerConfig{}.trigger_unroll)>);
  static_assert(std::is_integral_v<decltype(ConfirmationParams{}.reset_unroll)>);
  static_assert(
      std::is_integral_v<decltype(ConfirmationParams{}.trigger_unroll)>);
  // Defaults stay in sync between the config and the confirmation stage.
  EXPECT_EQ(FuzzerConfig{}.reset_unroll, ConfirmationParams{}.reset_unroll);
  EXPECT_EQ(FuzzerConfig{}.trigger_unroll, ConfirmationParams{}.trigger_unroll);
}

TEST(FuzzerConfig, UnrollScalesExecutionLinearly) {
  // An unroll of n must behave as exactly n repetitions: the generated
  // block's retired-instruction counts scale linearly and stay integral.
  Fixture f;
  const auto& v = f.spec.by_uid(f.find_variant(InstructionClass::kIntAlu));
  const sim::InstructionBlock one =
      sim::InstructionBlock::from_variant(v, 1.0, sim::kGadgetDataRegion);
  const FuzzerConfig config;
  const sim::InstructionBlock unrolled = sim::InstructionBlock::from_variant(
      v, static_cast<double>(config.trigger_unroll), sim::kGadgetDataRegion);
  const double n = static_cast<double>(config.trigger_unroll);
  EXPECT_DOUBLE_EQ(unrolled.uops, one.uops * n);
  for (std::size_t c = 0; c < one.class_counts.size(); ++c) {
    EXPECT_DOUBLE_EQ(unrolled.class_counts.at_index(c),
                     one.class_counts.at_index(c) * n)
        << c;
    EXPECT_DOUBLE_EQ(unrolled.class_counts.at_index(c),
                     std::round(unrolled.class_counts.at_index(c)))
        << "fractional retired count at class " << c;
  }
}

TEST(GadgetHash, DistinguishesGadgets) {
  GadgetHash h;
  EXPECT_NE(h(Gadget{1, 2}), h(Gadget{2, 1}));
  EXPECT_EQ(h(Gadget{7, 9}), h(Gadget{7, 9}));
}

}  // namespace
}  // namespace aegis::fuzzer
