#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "profiler/profiler.hpp"
#include "workload/keystroke.hpp"
#include "workload/website.hpp"

namespace aegis::profiler {
namespace {

using isa::CpuModel;

ProfilerConfig quick_config() {
  ProfilerConfig config;
  config.warmup_slices = 60;
  config.warmup_repeats = 3;
  config.ranking_runs_per_secret = 5;
  return config;
}

TEST(Warmup, KeepsRoughlyTheGuestVisibleEvents) {
  const auto db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ApplicationProfiler profiler(db, quick_config());
  const workload::WebsiteWorkload app(0, 60);
  const WarmupReport report = profiler.warmup(app);
  EXPECT_EQ(report.total_events, 1903u);
  // Section V-B: 137 AMD events reflect guest activity; the statistical
  // filter recovers nearly all of them and admits almost nothing else.
  EXPECT_NEAR(static_cast<double>(report.surviving.size()), 136.0, 10.0);

  std::size_t visible_kept = 0;
  for (std::uint32_t id : report.surviving) {
    if (db.by_id(id).response.guest_visible()) ++visible_kept;
  }
  // No host-only event sneaks through.
  EXPECT_EQ(visible_kept, report.surviving.size());
}

TEST(Warmup, TypeBreakdownDropsSoftwareAndOther) {
  const auto db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ApplicationProfiler profiler(db, quick_config());
  const workload::WebsiteWorkload app(0, 60);
  const WarmupReport report = profiler.warmup(app);
  using pmu::EventType;
  EXPECT_EQ(report.after_by_type[static_cast<std::size_t>(EventType::kSoftware)], 0u);
  EXPECT_EQ(report.after_by_type[static_cast<std::size_t>(EventType::kOther)], 0u);
  EXPECT_GT(report.after_by_type[static_cast<std::size_t>(EventType::kHardware)], 15u);
  EXPECT_GT(report.after_by_type[static_cast<std::size_t>(EventType::kHwCache)], 40u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Warmup, IdleApplicationKeepsAlmostNothing) {
  const auto db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ApplicationProfiler profiler(db, quick_config());
  const workload::KeystrokeWorkload app(0, 60);  // zero keystrokes: near idle
  const WarmupReport report = profiler.warmup(app);
  EXPECT_LT(report.surviving.size(), 60u);
}

TEST(Ranking, HighMiEventsRankAboveWeaklyCoupledOnes) {
  const auto db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ApplicationProfiler profiler(db, quick_config());
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::size_t s = 0; s < 6; ++s) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(s, 120));
  }
  // Rank a strongly-coupled event against a host-only software event.
  const std::uint32_t uops = *db.find("RETIRED_UOPS");
  const std::uint32_t weak = *db.find("context-switches");
  const auto ranks = profiler.rank(secrets, {uops, weak});
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0].event_id, uops);
  EXPECT_GT(ranks[0].mutual_information, ranks[1].mutual_information);
  // MI is bounded by H(Y) = log2(6) bits.
  for (const auto& r : ranks) {
    EXPECT_GE(r.mutual_information, 0.0);
    EXPECT_LE(r.mutual_information, std::log2(6.0) + 1e-9);
  }
}

TEST(Ranking, SortedDescending) {
  const auto db = pmu::EventDatabase::generate(CpuModel::kAmdEpyc7252);
  ApplicationProfiler profiler(db, quick_config());
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  for (std::size_t s = 0; s < 4; ++s) {
    secrets.push_back(std::make_unique<workload::WebsiteWorkload>(s, 100));
  }
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) events.push_back(*db.find(name));
  events.push_back(*db.find("CPU-CYCLES"));
  events.push_back(*db.find("BRANCH-MISSES"));
  const auto ranks = profiler.rank(secrets, events);
  ASSERT_EQ(ranks.size(), events.size());
  EXPECT_TRUE(std::is_sorted(ranks.begin(), ranks.end(),
                             [](const EventRank& a, const EventRank& b) {
                               return a.mutual_information > b.mutual_information;
                             }));
  // Every input event appears exactly once.
  std::unordered_set<std::uint32_t> seen;
  for (const auto& r : ranks) seen.insert(r.event_id);
  EXPECT_EQ(seen.size(), events.size());
}

TEST(CostModel, WarmupTimeMatchesPaperNumbers) {
  // Section VIII-A: T_W = (M * t_w * 2) / C; 0.85 h on Intel (M = 6166),
  // 0.26 h on AMD (M = 1903), with t_w = 1 s and C = 4.
  EXPECT_NEAR(ApplicationProfiler::warmup_time_hours(6166, 1.0, 4), 0.85, 0.01);
  EXPECT_NEAR(ApplicationProfiler::warmup_time_hours(1903, 1.0, 4), 0.26, 0.01);
}

TEST(CostModel, RankingTimeMatchesPaperNumbers) {
  // T_P = (N * S * 100 * t_p) / C with N = 137 survivors and C = 4:
  // WFA (S = 45): 42.81 h; KSA (S = 10): 9.51 h; MEA (S = 30): 28.54 h.
  EXPECT_NEAR(ApplicationProfiler::ranking_time_hours(137, 45, 100, 1.0, 4),
              42.81, 0.05);
  EXPECT_NEAR(ApplicationProfiler::ranking_time_hours(137, 10, 100, 1.0, 4),
              9.51, 0.05);
  EXPECT_NEAR(ApplicationProfiler::ranking_time_hours(137, 30, 100, 1.0, 4),
              28.54, 0.05);
}

}  // namespace
}  // namespace aegis::profiler
