// Integration tests: the full Aegis pipeline end-to-end at reduced scale —
// profile, rank, fuzz, cover, then verify the online defense actually
// degrades a trained attack (the paper's central claim).
#include <gtest/gtest.h>

#include "attack/wfa.hpp"
#include "core/aegis.hpp"

namespace aegis::core {
namespace {

struct Pipeline {
  Aegis aegis{isa::CpuModel::kAmdEpyc7252};
  attack::WfaScale scale;
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  OfflineResult result;

  Pipeline() {
    scale.sites = 6;
    scale.traces_per_site = 14;
    scale.epochs = 18;
    scale.slices = 160;
    secrets = attack::make_wfa_secrets(scale);
    OfflineConfig config = make_quick_offline_config();
    config.profiler.ranking_runs_per_secret = 4;
    config.fuzz_top_events = 0;
    result = aegis.analyze(*secrets[0], secrets, config);
  }
};

Pipeline& shared_pipeline() {
  static Pipeline pipeline;
  return pipeline;
}

TEST(Pipeline, WarmupMatchesVulnerableEventCount) {
  auto& p = shared_pipeline();
  EXPECT_NEAR(static_cast<double>(p.result.warmup.surviving.size()), 136.0, 10.0);
}

TEST(Pipeline, RankingCoversAllSurvivors) {
  auto& p = shared_pipeline();
  EXPECT_EQ(p.result.ranking.size(), p.result.warmup.surviving.size());
  const auto top = p.result.top_events(4);
  EXPECT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], p.result.ranking[0].event_id);
}

TEST(Pipeline, CoverReachesAlmostEveryEvent) {
  auto& p = shared_pipeline();
  EXPECT_GE(p.result.cover.covered_events.size(),
            p.result.warmup.surviving.size() - 4);
  // Paper Section VII-C: a handful of gadgets cover all vulnerable events
  // (43 gadgets for 137 events on the real machine).
  EXPECT_LT(p.result.cover.gadgets.size(),
            p.result.cover.covered_events.size() / 4);
  EXPECT_GE(p.result.cover.gadgets.size(), 2u);
}

TEST(Pipeline, AttackEventsAreCovered) {
  auto& p = shared_pipeline();
  for (auto name : pmu::kAmdAttackEvents) {
    const auto id = *p.aegis.database().find(name);
    EXPECT_NE(std::find(p.result.cover.covered_events.begin(),
                        p.result.cover.covered_events.end(), id),
              p.result.cover.covered_events.end())
        << name;
  }
}

TEST(Pipeline, FuzzTimingIsPopulated) {
  auto& p = shared_pipeline();
  const auto& timing = p.result.fuzz.timing;
  EXPECT_GT(timing.cleanup_seconds, 0.0);
  EXPECT_GT(timing.generation_execution_seconds, 0.0);
  EXPECT_GT(timing.confirmation_seconds, 0.0);
  EXPECT_GE(timing.filtering_seconds, 0.0);
  // Generation + execution dominates (Table III shape).
  EXPECT_GT(timing.generation_execution_seconds, timing.filtering_seconds);
}

TEST(Pipeline, DefenseCollapsesAttackAccuracy) {
  auto& p = shared_pipeline();
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*p.aegis.database().find(name));
  }
  attack::ClassificationAttack wfa(
      p.aegis.database(), attack::make_wfa_config(events, p.scale));
  (void)wfa.train(p.secrets);
  const double clean = wfa.exploit(p.secrets, 3, 42);
  EXPECT_GT(clean, 0.8);

  dp::MechanismConfig mech;
  mech.kind = dp::MechanismKind::kLaplace;
  mech.epsilon = 0.0625;
  auto obf = p.aegis.make_obfuscator(p.result, p.secrets, mech);
  const double defended =
      wfa.exploit(p.secrets, 3, 42, [&] { return obf->session(); });
  // Fig. 9a shape: accuracy collapses toward random guess (1/6 here).
  EXPECT_LT(defended, clean * 0.55);
  EXPECT_LT(defended, 0.55);
  EXPECT_GT(obf->total_injected_repetitions(), 0.0);
}

TEST(Pipeline, DStarAlsoDefends) {
  auto& p = shared_pipeline();
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*p.aegis.database().find(name));
  }
  attack::ClassificationAttack wfa(
      p.aegis.database(), attack::make_wfa_config(events, p.scale));
  (void)wfa.train(p.secrets);
  dp::MechanismConfig mech;
  mech.kind = dp::MechanismKind::kDStar;
  mech.epsilon = 1.0;
  auto obf = p.aegis.make_obfuscator(p.result, p.secrets, mech);
  const double defended =
      wfa.exploit(p.secrets, 3, 43, [&] { return obf->session(); });
  EXPECT_LT(defended, 0.5);
}

TEST(Pipeline, LessNoiseMeansMoreLeakage) {
  auto& p = shared_pipeline();
  std::vector<std::uint32_t> events;
  for (auto name : pmu::kAmdAttackEvents) {
    events.push_back(*p.aegis.database().find(name));
  }
  attack::ClassificationAttack wfa(
      p.aegis.database(), attack::make_wfa_config(events, p.scale));
  (void)wfa.train(p.secrets);
  dp::MechanismConfig strong, weak;
  strong.kind = weak.kind = dp::MechanismKind::kLaplace;
  strong.epsilon = 0.125;
  weak.epsilon = 16.0;
  auto obf_strong = p.aegis.make_obfuscator(p.result, p.secrets, strong);
  auto obf_weak = p.aegis.make_obfuscator(p.result, p.secrets, weak);
  const double acc_strong =
      wfa.exploit(p.secrets, 3, 44, [&] { return obf_strong->session(); });
  const double acc_weak =
      wfa.exploit(p.secrets, 3, 44, [&] { return obf_weak->session(); });
  EXPECT_LT(acc_strong, acc_weak + 0.15);
}

TEST(Config, QuickConfigIsSane) {
  const OfflineConfig config = make_quick_offline_config(123);
  EXPECT_GT(config.profiler.warmup_repeats, 0u);
  EXPECT_GT(config.fuzzer.reset_sample, 0u);
  EXPECT_EQ(config.profiler.seed, 123u);
}

TEST(Aegis, SubstrateMatchesCpu) {
  Aegis aegis(isa::CpuModel::kIntelXeonE5_1650);
  EXPECT_EQ(aegis.cpu(), isa::CpuModel::kIntelXeonE5_1650);
  EXPECT_EQ(aegis.database().size(), 6166u);
  EXPECT_EQ(aegis.specification().legal_count(), 3386u);
}

}  // namespace
}  // namespace aegis::core
