#!/usr/bin/env bash
# Re-baselines the committed perf numbers: builds the tracker benches in a
# dedicated Release tree and writes BENCH_hotpath.json + BENCH_service.json
# at the repo root. The JSON is committed so the repo's perf trajectory
# (batched SoA engine vs reference; multi-tenant service throughput) is
# diffable across commits.
#
# Usage: scripts/bench_baseline.sh [hotpath.json] [service.json]
#   AEGIS_NATIVE=ON   tune for the host CPU (-O3 -march=native)
#   AEGIS_SCALE=<f>   scale iteration counts (default 1.0)
set -euo pipefail

cd "$(dirname "$0")/.."

HOTPATH_OUT="${1:-BENCH_hotpath.json}"
SERVICE_OUT="${2:-BENCH_service.json}"
JOBS="$(nproc 2>/dev/null || echo 2)"
NATIVE="${AEGIS_NATIVE:-OFF}"

echo "=== bench: configure + build (build-bench, AEGIS_NATIVE=${NATIVE}) ==="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
  -DAEGIS_NATIVE="${NATIVE}" >/dev/null
cmake --build build-bench -j "${JOBS}" \
  --target bench_hot_path --target bench_service >/dev/null

echo "=== bench: bench_hot_path -> ${HOTPATH_OUT} ==="
./build-bench/bench/bench_hot_path "${HOTPATH_OUT}"
cat "${HOTPATH_OUT}"

echo "=== bench: bench_service -> ${SERVICE_OUT} ==="
rm -rf /tmp/aegis_bench_service_cache  # cold template cache: sweep 1 analyses
./build-bench/bench/bench_service "${SERVICE_OUT}"
cat "${SERVICE_OUT}"
