#!/usr/bin/env bash
# Re-baselines the hot-path perf numbers: builds bench_hot_path in a
# dedicated Release tree and writes BENCH_hotpath.json at the repo root.
# The JSON is committed so the repo's perf trajectory (batched SoA engine
# vs the retained reference path) is diffable across commits.
#
# Usage: scripts/bench_baseline.sh [output.json]
#   AEGIS_NATIVE=ON   tune for the host CPU (-O3 -march=native)
#   AEGIS_SCALE=<f>   scale iteration counts (default 1.0)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_hotpath.json}"
JOBS="$(nproc 2>/dev/null || echo 2)"
NATIVE="${AEGIS_NATIVE:-OFF}"

echo "=== bench: configure + build (build-bench, AEGIS_NATIVE=${NATIVE}) ==="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
  -DAEGIS_NATIVE="${NATIVE}" >/dev/null
cmake --build build-bench -j "${JOBS}" --target bench_hot_path >/dev/null

echo "=== bench: bench_hot_path -> ${OUT} ==="
./build-bench/bench/bench_hot_path "${OUT}"
cat "${OUT}"
