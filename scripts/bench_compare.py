#!/usr/bin/env python3
"""Compare fresh bench JSON against committed baselines; fail on regression.

Usage:
    scripts/bench_compare.py BASELINE_hotpath.json FRESH_hotpath.json \
                             BASELINE_service.json FRESH_service.json
    scripts/bench_compare.py --hotpath BASELINE_hotpath.json \
                             FRESH_hotpath.json
    scripts/bench_compare.py --service BASELINE_service.json \
                             FRESH_service.json
    scripts/bench_compare.py --security BASELINE_security.json \
                             FRESH_security.json
    scripts/bench_compare.py --lint BENCH_lint.json FRESH_lint.json

The 4-argument form gates hotpath + service together (the CI perf leg);
--hotpath / --service gate one artifact each (--hotpath is what
scripts/check.sh runs locally, where the service bench is too slow).

Headline metrics (everything else in the JSON is informational):
  hotpath   accumulate_4_events.batched_ns            lower is better
            accumulate_sweep_1903_events.batched_ns   lower is better
            execute_once.steady_state_ns              lower is better
            profiler_sweep.batched_events_per_sec     higher is better
  service   max over sweep of throughput_sessions_per_sec   higher is better

When both sides of a hotpath comparison record the SIMD engine that
produced them (the "engine" field), a mismatch is reported as a note:
cross-engine deltas are attributable to dispatch, not to a code
regression, but the numbers still gate — an accidental scalar fallback on
a machine that used to run AVX2 IS a regression worth failing on.

The PMU backend provenance fields ("backend", "cpu_model") gate harder:
when both sides carry them and they disagree, the comparison FAILS in
every mode — an AEGIS_CPU=intel run measured a different event database
than the committed AMD baseline, so no delta between them is meaningful.
Artifacts predating the backend layer omit the fields and compare as
before.

Hotpath artifacts that carry a "flight_recorder" section additionally gate
recorder_overhead_pct — the execute_once cost of the always-on flight
recorder — against an ABSOLUTE ceiling (default 2%, override with
AEGIS_RECORDER_OVERHEAD_PCT): unlike the relative metrics, a slow baseline
can never grandfather in a slow recorder. Older artifacts without the
section skip the check.

A metric regresses when it is worse than the baseline by more than the
tolerance (default 15%, override with AEGIS_BENCH_TOLERANCE, a fraction).
The tolerance is deliberately loose: shared CI runners jitter, and only a
real hot-path or throughput cliff should block a merge. Improvements are
reported but never fail. Exit status: 0 ok, 1 regression, 2 usage/IO error.

--security mode diffs BENCH_security.json frontiers instead. The metric is
directional per cell keyed by (attacker, defense, epsilon): fresh attack
accuracy may not RISE more than 2 points absolute over the committed
baseline (override with AEGIS_SECURITY_TOLERANCE, a fraction of 1.0, e.g.
0.02). Accuracy drops are improvements and never fail. Every fresh cell
must exist in the baseline — the smoke subset is a strict subset of the
committed full frontier, so an unmatched cell means the matrix drifted and
the gate would otherwise pass vacuously. The harness is bit-deterministic,
so unlike the perf gates this needs no jitter allowance; the tolerance
only absorbs intentional small reshapes of shared attack fixtures.

--lint mode gates the analyzer's own runtime: aegis_lint --time-json
writes {ruleset, files_analyzed, cache_hits, wall_ms}, and a fresh COLD
run (cache_hits == 0) may not exceed 2x the committed BENCH_lint.json
wall time (override with AEGIS_LINT_TOLERANCE, a multiplier). The loose
multiplier absorbs runner jitter on a tens-of-milliseconds measurement;
only a superlinear blowup in the analyzer (the failure mode interproc
analyses actually have) trips it. A ruleset mismatch between the two
artifacts is a note, not a failure — new rules legitimately cost time,
but the budget still holds. Warm runs (cache_hits > 0) are compared
informationally only; the committed baseline is a cold-run number.

Stdlib only — no pip installs in CI.
"""

import json
import os
import sys


DEFAULT_TOLERANCE = 0.15
DEFAULT_SECURITY_TOLERANCE = 0.02  # 2 accuracy points, absolute
DEFAULT_LINT_TOLERANCE = 2.0  # fresh cold wall time may not exceed 2x base


class MetricError(Exception):
    pass


def dig(doc, path):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            raise MetricError(f"missing key {path!r}")
        node = node[key]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise MetricError(f"{path!r} is not a number")
    return float(node)


def peak_throughput(doc):
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        raise MetricError("missing or empty 'sweep'")
    values = [
        p["throughput_sessions_per_sec"]
        for p in sweep
        if isinstance(p, dict) and "throughput_sessions_per_sec" in p
    ]
    if not values:
        raise MetricError("sweep has no throughput_sessions_per_sec")
    return float(max(values))


# (label, extractor, higher_is_better)
HOTPATH_METRICS = [
    ("hotpath accumulate_4_events.batched_ns",
     lambda d: dig(d, "accumulate_4_events.batched_ns"), False),
    ("hotpath accumulate_sweep_1903_events.batched_ns",
     lambda d: dig(d, "accumulate_sweep_1903_events.batched_ns"), False),
    ("hotpath execute_once.steady_state_ns",
     lambda d: dig(d, "execute_once.steady_state_ns"), False),
    ("hotpath profiler_sweep.batched_events_per_sec",
     lambda d: dig(d, "profiler_sweep.batched_events_per_sec"), True),
]

SERVICE_METRICS = [
    ("service peak throughput_sessions_per_sec", peak_throughput, True),
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def tolerance():
    raw = os.environ.get("AEGIS_BENCH_TOLERANCE", "")
    if not raw:
        return DEFAULT_TOLERANCE
    try:
        value = float(raw)
    except ValueError:
        print(f"bench_compare: bad AEGIS_BENCH_TOLERANCE {raw!r}",
              file=sys.stderr)
        sys.exit(2)
    if value <= 0:
        print("bench_compare: AEGIS_BENCH_TOLERANCE must be positive",
              file=sys.stderr)
        sys.exit(2)
    return value


def security_tolerance():
    raw = os.environ.get("AEGIS_SECURITY_TOLERANCE", "")
    if not raw:
        return DEFAULT_SECURITY_TOLERANCE
    try:
        value = float(raw)
    except ValueError:
        print(f"bench_compare: bad AEGIS_SECURITY_TOLERANCE {raw!r}",
              file=sys.stderr)
        sys.exit(2)
    if value < 0:
        print("bench_compare: AEGIS_SECURITY_TOLERANCE must be >= 0",
              file=sys.stderr)
        sys.exit(2)
    return value


def lint_tolerance():
    raw = os.environ.get("AEGIS_LINT_TOLERANCE", "")
    if not raw:
        return DEFAULT_LINT_TOLERANCE
    try:
        value = float(raw)
    except ValueError:
        print(f"bench_compare: bad AEGIS_LINT_TOLERANCE {raw!r}",
              file=sys.stderr)
        sys.exit(2)
    if value <= 1.0:
        print("bench_compare: AEGIS_LINT_TOLERANCE must be > 1 (a multiplier "
              "on the baseline wall time)", file=sys.stderr)
        sys.exit(2)
    return value


def compare_lint(base_path, fresh_path):
    """Lint runtime budget: a cold run slower than tol x baseline fails."""
    baseline, fresh = load(base_path), load(fresh_path)
    tol = lint_tolerance()
    try:
        base_ms = float(baseline["wall_ms"])
        new_ms = float(fresh["wall_ms"])
        base_files = int(baseline["files_analyzed"])
        new_files = int(fresh["files_analyzed"])
        hits = int(fresh.get("cache_hits", 0))
    except (KeyError, TypeError, ValueError) as e:
        print(f"bench_compare: malformed lint timing artifact: {e}",
              file=sys.stderr)
        sys.exit(2)
    base_rules = baseline.get("ruleset")
    new_rules = fresh.get("ruleset")
    if base_rules and new_rules and base_rules != new_rules:
        print(f"note  lint ruleset changed: baseline {base_rules!r}, fresh "
              f"{new_rules!r} — new rules cost time, but the budget holds")
    if new_files != base_files:
        print(f"note  lint tree grew: {base_files} -> {new_files} file(s); "
              f"the wall-time budget is deliberately NOT per-file — a "
              f"superlinear analyzer shows up here first")
    if hits > 0:
        print(f"  ok  lint wall time (warm, {hits} cache hit(s)): "
              f"{new_ms:.0f} ms — informational only, the budget gates "
              f"cold runs")
        return 0
    # The absolute floor keeps the gate honest across machines: the
    # committed baseline is a fast-dev-box number, and a CI runner being
    # 5x slower on a 30 ms measurement is not the failure mode this gate
    # exists for. A superlinear blowup in the interprocedural analysis —
    # the failure mode it DOES exist for — lands in whole seconds and
    # clears the floor on any hardware.
    budget = max(base_ms * tol, 2000.0)
    verdict = "FAIL" if new_ms > budget else "  ok"
    print(f"{verdict}  lint wall time (cold): baseline {base_ms:.0f} ms -> "
          f"{new_ms:.0f} ms (budget {budget:.0f} ms = max({tol:g}x baseline, "
          f"2000 ms))")
    if new_ms > budget:
        print(f"bench_compare: aegis-lint cold run exceeded its wall-time "
              f"budget; profile phase 1/2 or re-baseline BENCH_lint.json "
              f"deliberately", file=sys.stderr)
        return 1
    return 0


def frontier_cells(doc, path):
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        print(f"bench_compare: {path} has no 'cells' array", file=sys.stderr)
        sys.exit(2)
    table = {}
    for cell in cells:
        try:
            key = (cell["attacker"], cell["defense"], float(cell["epsilon"]))
            accuracy = float(cell["attack_accuracy"])
        except (TypeError, KeyError, ValueError) as e:
            print(f"bench_compare: malformed cell in {path}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        if key in table:
            print(f"bench_compare: duplicate cell {key} in {path}",
                  file=sys.stderr)
            sys.exit(2)
        table[key] = accuracy
    return table


def compare_security(base_path, fresh_path):
    """Directional per-cell gate: attack accuracy may drop, not rise."""
    baseline = frontier_cells(load(base_path), base_path)
    fresh = frontier_cells(load(fresh_path), fresh_path)
    tol = security_tolerance()
    regressions = 0
    for key in sorted(fresh):
        attacker, defense, epsilon = key
        label = f"security {attacker} vs {defense} @ eps={epsilon:g}"
        if key not in baseline:
            # A cell with no committed counterpart cannot be gated; treat it
            # as a hard failure so matrix drift re-baselines deliberately.
            print(f"FAIL  {label}: cell missing from baseline {base_path}")
            regressions += 1
            continue
        base, new = baseline[key], fresh[key]
        delta = new - base
        verdict = "FAIL" if delta > tol else ("  ok" if delta >= 0 else "good")
        print(f"{verdict}  {label}: accuracy {base:.4f} -> {new:.4f} "
              f"({'+' if delta >= 0 else ''}{delta * 100:.2f} pts, "
              f"tolerance +{tol * 100:.0f} pts)")
        if delta > tol:
            regressions += 1
    skipped = len(baseline) - sum(1 for k in fresh if k in baseline)
    if skipped:
        print(f"note  {skipped} baseline cell(s) not exercised by this run "
              f"(smoke subset)")
    return regressions


def note_engine_mismatch(baseline, fresh):
    base_engine = baseline.get("engine")
    fresh_engine = fresh.get("engine")
    if base_engine and fresh_engine and base_engine != fresh_engine:
        print(f"note  engine changed: baseline ran {base_engine!r}, fresh "
              f"ran {fresh_engine!r} — deltas include the dispatch change")


def check_backend_match(label, baseline, fresh):
    """Hard gate on the PMU backend provenance fields.

    Unlike a SIMD engine swap (same numbers, different kernel), a backend
    or cpu_model mismatch means the two artifacts measured DIFFERENT event
    databases — an AEGIS_CPU=intel run diffed against the committed AMD
    baseline compares nothing comparable, so it fails rather than notes.
    Artifacts predating the backend layer carry neither field and are
    compared as before. Returns the number of regressions (0 or 1 per
    field).
    """
    regressions = 0
    for field in ("backend", "cpu_model"):
        base, new = baseline.get(field), fresh.get(field)
        if not isinstance(base, str) or not isinstance(new, str):
            continue  # pre-backend artifact (or hotpath's "cpu" object)
        if base != new:
            print(f"FAIL  {label} {field} mismatch: baseline measured "
                  f"{base!r}, fresh measured {new!r} — not comparable; "
                  f"re-baseline or rerun with the matching AEGIS_CPU")
            regressions += 1
    return regressions


def check_recorder_overhead(fresh):
    """Absolute gate on the flight recorder's execute_once overhead.

    The recorder is always-on in production, so its cost is gated against a
    fixed ceiling (default 2% on execute_once), not against the baseline:
    a slow baseline must not grandfather in a slow recorder. Artifacts
    predating the flight_recorder section pass untouched. The raw
    measurement is an on-minus-off delta of two short runs, so it can be
    negative (noise); only the positive direction gates.
    """
    section = fresh.get("flight_recorder")
    if not isinstance(section, dict):
        return 0  # pre-recorder artifact
    try:
        pct = float(section["recorder_overhead_pct"])
    except (KeyError, TypeError, ValueError):
        print("FAIL  hotpath flight_recorder section is malformed "
              "(recorder_overhead_pct missing or non-numeric)")
        return 1
    ceiling = 2.0
    raw = os.environ.get("AEGIS_RECORDER_OVERHEAD_PCT", "")
    if raw:
        try:
            ceiling = float(raw)
        except ValueError:
            print(f"bench_compare: bad AEGIS_RECORDER_OVERHEAD_PCT {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
    verdict = "FAIL" if pct > ceiling else "  ok"
    print(f"{verdict}  hotpath recorder_overhead_pct: {pct:+.2f}% on "
          f"execute_once (absolute ceiling {ceiling:g}%)")
    return 1 if pct > ceiling else 0


def compare(metrics, baseline, fresh, tol):
    """Returns the number of regressions, printing one line per metric."""
    regressions = 0
    for label, extract, higher_is_better in metrics:
        try:
            base = extract(baseline)
            new = extract(fresh)
        except MetricError as e:
            # A missing metric is a hard failure: silently skipping it would
            # make the gate pass vacuously after a rename.
            print(f"FAIL  {label}: {e}")
            regressions += 1
            continue
        if base <= 0:
            print(f"skip  {label}: non-positive baseline {base}")
            continue
        # ratio > 0 means worse, as a fraction of the baseline.
        if higher_is_better:
            ratio = (base - new) / base
        else:
            ratio = (new - base) / base
        verdict = "FAIL" if ratio > tol else ("  ok" if ratio >= 0 else "good")
        print(f"{verdict}  {label}: baseline {base:.2f} -> {new:.2f} "
              f"({'-' if ratio > 0 else '+'}{abs(ratio) * 100:.1f}% "
              f"{'worse' if ratio > 0 else 'better'}, tolerance "
              f"{tol * 100:.0f}%)")
        if ratio > tol:
            regressions += 1
    return regressions


def finish(regressions, tol):
    if regressions:
        print(f"bench_compare: {regressions} metric(s) regressed beyond "
              f"{tol * 100:.0f}%", file=sys.stderr)
        return 1
    print("bench_compare: all headline metrics within tolerance")
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--security":
        regressions = check_backend_match("security", load(argv[2]),
                                          load(argv[3]))
        regressions += compare_security(argv[2], argv[3])
        if regressions:
            print(f"bench_compare: {regressions} security cell(s) regressed",
                  file=sys.stderr)
            return 1
        print("bench_compare: no security cell rose above tolerance")
        return 0
    if len(argv) == 4 and argv[1] == "--lint":
        failures = compare_lint(argv[2], argv[3])
        if failures:
            return 1
        print("bench_compare: lint runtime within budget")
        return 0
    if len(argv) == 4 and argv[1] == "--hotpath":
        baseline, fresh = load(argv[2]), load(argv[3])
        note_engine_mismatch(baseline, fresh)
        tol = tolerance()
        regressions = check_backend_match("hotpath", baseline, fresh)
        regressions += compare(HOTPATH_METRICS, baseline, fresh, tol)
        regressions += check_recorder_overhead(fresh)
        return finish(regressions, tol)
    if len(argv) == 4 and argv[1] == "--service":
        tol = tolerance()
        baseline, fresh = load(argv[2]), load(argv[3])
        regressions = check_backend_match("service", baseline, fresh)
        regressions += compare(SERVICE_METRICS, baseline, fresh, tol)
        return finish(regressions, tol)
    if len(argv) != 5:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_hot, fresh_hot, base_svc, fresh_svc = argv[1:5]
    tol = tolerance()
    baseline_hot, fresh_hot_doc = load(base_hot), load(fresh_hot)
    baseline_svc, fresh_svc_doc = load(base_svc), load(fresh_svc)
    note_engine_mismatch(baseline_hot, fresh_hot_doc)
    regressions = 0
    regressions += check_backend_match("hotpath", baseline_hot, fresh_hot_doc)
    regressions += check_backend_match("service", baseline_svc, fresh_svc_doc)
    regressions += compare(HOTPATH_METRICS, baseline_hot, fresh_hot_doc, tol)
    regressions += compare(SERVICE_METRICS, baseline_svc, fresh_svc_doc, tol)
    regressions += check_recorder_overhead(fresh_hot_doc)
    return finish(regressions, tol)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
