#!/usr/bin/env bash
# CI-style check: build and run the full test suite in the default
# configuration, then under ThreadSanitizer, AddressSanitizer, and
# UndefinedBehaviorSanitizer (-DAEGIS_SANITIZE=thread|address|undefined).
# The TSan pass is the data-race proof for the work-stealing parallel
# campaign engine; the UBSan pass guards the arithmetic-heavy PMU/DP
# kernels. A dedicated lint stage builds and runs aegis-lint explicitly so
# a broken lint build fails the check rather than silently skipping the
# gate, and runs clang-tidy when available. A seceval stage runs the smoke
# security frontier and fails if any attack accuracy rose over the
# committed BENCH_security.json baseline. A hotpath stage runs the
# Release-mode hot-path microbench at reduced scale and fails if any
# headline ns metric regressed >15% against the committed
# BENCH_hotpath.json (AEGIS_HOTPATH_SCALE overrides the scale;
# AEGIS_BENCH_TOLERANCE the threshold).
#
# Usage: scripts/check.sh [--fast]
#   --fast   sanitizer passes run only the concurrency-relevant suites
#            (thread pool, parallel campaign, fuzzer, profiler, queue)
#            instead of the whole test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/check.sh [--fast]" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST_FILTER='ThreadPool|Parallel|Golden|Rng|SplitMix|Fuzzer|Confirmation|Profiler|Warmup|Cleanup|BoundedQueue'
# Every ctest run executes with AEGIS_FR_DUMP armed so a crashing test
# leaves behind a flight-recorder dump (<prefix>.<pid>.frd) with the last
# wide events before the fault. On failure the dumps are listed so they can
# be pulled for `aegis_top --recorder` triage.
FR_DUMP_ROOT="${AEGIS_FR_DUMP_ROOT:-/tmp/aegis-fr-dumps}"

run_suite() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAEGIS_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "=== ${name}: ctest ==="
  local fr_dir="${FR_DUMP_ROOT}/${name}"
  rm -rf "${fr_dir}" && mkdir -p "${fr_dir}"
  local -a filter=()
  if [[ "${FAST}" == 1 && -n "${sanitize}" ]]; then
    filter=(-R "${FAST_FILTER}")
  fi
  if ! AEGIS_FR_DUMP="${fr_dir}/fr" \
      ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${filter[@]}"; then
    echo "=== ${name}: ctest FAILED; flight-recorder dumps in ${fr_dir} ===" >&2
    ls -l "${fr_dir}"/*.frd >&2 2>/dev/null ||
      echo "(no crash dumps written — failures were assertions, not faults)" >&2
    exit 1
  fi
}

# Lint stage: build the analyzer and its unit tests by name so a lint build
# failure is a hard error here (ctest would otherwise just drop the gate),
# then run the tree-wide two-phase gate directly for file:line diagnostics
# on stdout. The gate run also checks the committed RNG stream manifest,
# emits a SARIF log, times itself for the runtime budget, and warms the
# persistent phase-1 cache under build/; a second leg fails on stale
# suppression comments so they never accumulate.
run_lint() {
  local dir="build"
  echo "=== lint: build aegis-lint ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAEGIS_SANITIZE="" >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
    --target aegis_lint aegis_lint_test aegis_lint_graph_test >/dev/null
  echo "=== lint: aegis-lint gate (src bench examples tools + RNG manifest) ==="
  "${dir}/tools/aegis_lint/aegis_lint" --root . \
    --check-rng-manifest RNG_STREAMS.md \
    --cache-dir "${dir}/lint-cache" \
    --sarif "${dir}/aegis-lint.sarif" \
    --time-json /tmp/aegis_lint_time.json \
    src bench examples tools
  echo "=== lint: stale suppressions ==="
  "${dir}/tools/aegis_lint/aegis_lint" --root . --stale-as-error \
    --cache-dir "${dir}/lint-cache" src bench examples tools >/dev/null
  echo "=== lint: runtime budget ==="
  python3 scripts/bench_compare.py --lint \
    BENCH_lint.json /tmp/aegis_lint_time.json
  echo "=== lint: aegis-lint unit tests ==="
  "${dir}/tools/aegis_lint/aegis_lint_test" --gtest_brief=1
  "${dir}/tools/aegis_lint/aegis_lint_graph_test" --gtest_brief=1
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== lint: clang-tidy (src) ==="
    # Compile-commands come from the default build dir; tidy only src/ so
    # the pass stays fast enough for every push.
    cmake -B "${dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cpp' -print0 |
      xargs -0 -P "${JOBS}" -n 4 clang-tidy -p "${dir}" --quiet
  else
    echo "=== lint: clang-tidy not found, skipping ==="
  fi
}

# Security regression gate: run the PR-CI smoke subset of the attack/defense
# frontier and diff it against the committed baseline. The harness is
# bit-deterministic, so any cell whose attack accuracy rises more than
# 2 points absolute is a real security regression, not jitter.
run_seceval() {
  local dir="build"
  echo "=== seceval: smoke frontier + security gate ==="
  cmake --build "${dir}" -j "${JOBS}" --target bench_security >/dev/null
  "${dir}/bench/bench_security" --smoke \
    --json /tmp/aegis_seceval_smoke.json \
    --report /tmp/aegis_seceval_smoke.md >/dev/null
  python3 scripts/bench_compare.py --security \
    BENCH_security.json /tmp/aegis_seceval_smoke.json
}

# Hot-path perf regression gate: run bench_hot_path in a Release build (the
# committed baseline is Release numbers; a RelWithDebInfo run would trip the
# gate on optimization level, not on code). Reduced scale keeps the stage
# under a minute; min-of-N timing still holds the jitter below the 15%
# tolerance.
run_hotpath() {
  local dir="build-bench"
  echo "=== hotpath: build bench_hot_path (Release) ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target bench_hot_path >/dev/null
  echo "=== hotpath: bench + regression gate ==="
  AEGIS_SCALE="${AEGIS_HOTPATH_SCALE:-0.25}" \
    "${dir}/bench/bench_hot_path" /tmp/aegis_hotpath_fresh.json
  python3 scripts/bench_compare.py --hotpath \
    BENCH_hotpath.json /tmp/aegis_hotpath_fresh.json
}

run_lint
run_suite "default" build ""
run_seceval
run_hotpath
run_suite "tsan" build-tsan thread
run_suite "asan" build-asan address
run_suite "ubsan" build-ubsan undefined

echo "All checks passed."
