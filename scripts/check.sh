#!/usr/bin/env bash
# CI-style check: build and run the full test suite in the default
# configuration, then under ThreadSanitizer and AddressSanitizer
# (-DAEGIS_SANITIZE=thread|address). The TSan pass is the data-race proof
# for the work-stealing parallel campaign engine.
#
# Usage: scripts/check.sh [--fast]
#   --fast   sanitizer passes run only the concurrency-relevant suites
#            (thread pool, parallel campaign, fuzzer, profiler) instead of
#            the whole test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/check.sh [--fast]" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST_FILTER='ThreadPool|Parallel|Golden|Rng|SplitMix|Fuzzer|Confirmation|Profiler|Warmup|Cleanup'

run_suite() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAEGIS_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "=== ${name}: ctest ==="
  if [[ "${FAST}" == 1 && -n "${sanitize}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${FAST_FILTER}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

run_suite "default" build ""
run_suite "tsan" build-tsan thread
run_suite "asan" build-asan address

echo "All checks passed."
