// Host-side HPC sampling (the attacker's and the profiler's viewpoint).
//
// The malicious hypervisor reads the HPC registers mapped to a victim vCPU
// every sampling interval (1 ms in the paper), producing a per-event
// time series of count deltas. HostMonitor drives a VirtualMachine for T
// slices, feeding it workload blocks and letting an optional in-guest agent
// (the Event Obfuscator) inject blocks first, then records the per-slice
// counter deltas — exactly the 4 x T tensors the paper's attacks train on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pmu/counter_file.hpp"
#include "sim/cache_probe.hpp"
#include "sim/virtual_machine.hpp"

namespace aegis::sim {

/// Supplies the guest workload's blocks for slice t (empty = idle).
using BlockSource = std::function<std::vector<InstructionBlock>(std::size_t)>;

/// In-guest agent hook, invoked before each slice runs. The Event
/// Obfuscator implements this to inject noise gadgets into the execution
/// flow; the hypervisor cannot tell agent blocks from workload blocks.
using SliceAgent = std::function<void(VirtualMachine&, std::size_t)>;

struct MonitorResult {
  /// samples[t][e] = count delta of programmed event e during slice t.
  std::vector<std::vector<double>> samples;
  std::uint64_t slices = 0;
  double busy_cycles = 0.0;
};

class HostMonitor {
 public:
  explicit HostMonitor(const pmu::EventDatabase& db, std::uint64_t seed);

  /// Monitors `vm` for `slices` sampling intervals while it executes blocks
  /// from `source`. Returns per-slice deltas for `event_ids` (any number;
  /// more than 4 triggers counter multiplexing like real perf).
  MonitorResult monitor(VirtualMachine& vm, const BlockSource& source,
                        const std::vector<std::uint32_t>& event_ids,
                        std::size_t slices, const SliceAgent& agent = nullptr);

  /// Total (cumulative) counts over a run, for warm-up profiling where only
  /// aggregate activity matters.
  std::vector<double> totals(VirtualMachine& vm, const BlockSource& source,
                             const std::vector<std::uint32_t>& event_ids,
                             std::size_t slices);

  /// Cache-occupancy channel: instead of HPC registers, a co-resident probe
  /// sweeps its buffer once per slice and records its own miss count
  /// (samples[t] = {probe misses at t}). Used by the future-work extension
  /// bench; the probe shares the victim's micro-architectural state.
  MonitorResult monitor_occupancy(VirtualMachine& vm, const BlockSource& source,
                                  CacheProbe& probe, std::size_t slices,
                                  const SliceAgent& agent = nullptr);

 private:
  const pmu::EventDatabase* db_;
  util::Rng rng_;
};

}  // namespace aegis::sim
