// Host-side HPC sampling (the attacker's and the profiler's viewpoint).
//
// The malicious hypervisor reads the HPC registers mapped to a victim vCPU
// every sampling interval (1 ms in the paper), producing a per-event
// time series of count deltas. HostMonitor drives a VirtualMachine for T
// slices, feeding it workload blocks and letting an optional in-guest agent
// (the Event Obfuscator) inject blocks first, then records the per-slice
// counter deltas — exactly the 4 x T tensors the paper's attacks train on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pmu/counter_file.hpp"
#include "sim/cache_probe.hpp"
#include "sim/virtual_machine.hpp"

namespace aegis::sim {

/// Supplies the guest workload's blocks for slice t (empty = idle).
using BlockSource = std::function<std::vector<InstructionBlock>(std::size_t)>;

/// In-guest agent hook, invoked before each slice runs. The Event
/// Obfuscator implements this to inject noise gadgets into the execution
/// flow; the hypervisor cannot tell agent blocks from workload blocks.
using SliceAgent = std::function<void(VirtualMachine&, std::size_t)>;

/// Attacker-controlled slice boundaries (SEV-Step-style single stepping):
/// before recording sample s, the planner is shown the previously recorded
/// per-event delta (empty for s = 0) and returns how many base scheduling
/// slices to coalesce into the next sample (clamped to >= 1). The victim
/// still executes base slices — only the hypervisor's read cadence changes,
/// which is exactly the attacker's power: interrupt-driven stepping picks
/// WHERE the counter reads land instead of passively consuming 1 ms windows.
using SlicePlanner =
    std::function<std::size_t(std::size_t, const std::vector<double>&)>;

struct MonitorResult {
  /// samples[t][e] = count delta of programmed event e during slice t.
  std::vector<std::vector<double>> samples;
  std::uint64_t slices = 0;
  double busy_cycles = 0.0;
};

class HostMonitor {
 public:
  explicit HostMonitor(const pmu::EventDatabase& db, std::uint64_t seed);

  /// Monitors `vm` for `slices` sampling intervals while it executes blocks
  /// from `source`. Returns per-slice deltas for `event_ids` (any number;
  /// more than 4 triggers counter multiplexing like real perf).
  MonitorResult monitor(VirtualMachine& vm, const BlockSource& source,
                        const std::vector<std::uint32_t>& event_ids,
                        std::size_t slices, const SliceAgent& agent = nullptr);

  /// Monitors `vm` for `base_slices` scheduling intervals, but lets
  /// `planner` choose the sampling boundaries: each recorded sample covers
  /// the planner's chosen number of consecutive base slices (trailing base
  /// slices past the budget are truncated). With a null planner (or one
  /// that always answers 1) this is bit-identical to monitor(). The agent,
  /// when present, still fires once per BASE slice — defense cadence is the
  /// guest's, not the attacker's.
  MonitorResult monitor_stepped(VirtualMachine& vm, const BlockSource& source,
                                const std::vector<std::uint32_t>& event_ids,
                                std::size_t base_slices,
                                const SlicePlanner& planner,
                                const SliceAgent& agent = nullptr);

  /// Total (cumulative) counts over a run, for warm-up profiling where only
  /// aggregate activity matters.
  std::vector<double> totals(VirtualMachine& vm, const BlockSource& source,
                             const std::vector<std::uint32_t>& event_ids,
                             std::size_t slices);

  /// Cache-occupancy channel: instead of HPC registers, a co-resident probe
  /// sweeps its buffer once per slice and records its own miss count
  /// (samples[t] = {probe misses at t}). Used by the future-work extension
  /// bench; the probe shares the victim's micro-architectural state.
  MonitorResult monitor_occupancy(VirtualMachine& vm, const BlockSource& source,
                                  CacheProbe& probe, std::size_t slices,
                                  const SliceAgent& agent = nullptr);

 private:
  const pmu::EventDatabase* db_;
  util::Rng rng_;
};

}  // namespace aegis::sim
