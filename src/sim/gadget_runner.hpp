// Fuzzing execution environment (paper Section VI-D).
//
// Reproduces the paper's measurement discipline for gadget fuzzing:
//   * the process is pinned to an isolated core (isolcpus) -> near-zero
//     interrupt rate, but not exactly zero;
//   * generated code runs between a prolog and epilog that save state and
//     point all memory operands at one pre-allocated writable page
//     (kScratchRegion);
//   * serializing instructions (CPUID) fence the measured window;
//   * HPC values are read with RDPMC before and after the gadget.
// Micro-architectural state deliberately persists across measurements —
// gadgets fuzzed back-to-back inherit each other's cache dirt (C6), which
// Event Fuzzer's confirmation stage has to detect and reject.
//
// The steady-state measurement loop is allocation-free: generated variant
// blocks are cached per (uid, unroll), the prolog/epilog are built once,
// and before/delta live in fixed member scratch sized to the 4-register
// hardware limit (see DESIGN.md "PMU hot path"; pinned by the
// instrumented-allocator test in tests/hotpath_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "isa/spec.hpp"
#include "pmu/counter_file.hpp"
#include "sim/virtual_machine.hpp"
#include "telemetry/metrics.hpp"

namespace aegis::sim {

class GadgetRunner {
 public:
  GadgetRunner(const pmu::EventDatabase& db, const isa::IsaSpecification& spec,
               std::uint64_t seed);

  /// Programs the events measured by subsequent executions (<= 4, the
  /// hardware register limit).
  void program(std::vector<std::uint32_t> event_ids);

  /// Executes the instruction sequence (each uid repeated `unroll` times,
  /// uids in order: reset sequence then trigger sequence) once inside the
  /// prolog/epilog + serialization harness, and returns the per-event HPC
  /// count deltas across the measured window. The returned span aliases
  /// member scratch: it is valid until the next execute_once call and holds
  /// one delta per programmed event.
  std::span<const double> execute_once(
      std::span<const std::uint32_t> variant_uids, double unroll = 8.0);

  /// Clears cache/predictor state (a fresh process image). Tests use this;
  /// the fuzzer intentionally does NOT between gadgets. The variant-block
  /// cache survives: cached blocks depend only on the immutable ISA spec,
  /// never on machine state.
  void reset_machine_state();

  const std::vector<std::uint32_t>& programmed() const noexcept {
    return counters_.programmed();
  }

 private:
  /// Returns the cached InstructionBlock::from_variant(uid, unroll) result,
  /// building (and legality-checking) it on first use. One entry per uid;
  /// an unroll change rebuilds the entry in place. Illegal variants are
  /// never cached and throw on every call, exactly like the uncached path.
  const InstructionBlock& variant_block(std::uint32_t uid, double unroll);

  struct CachedBlock {
    double unroll = -1.0;  // never a valid repetition count
    InstructionBlock block;
  };

  const isa::IsaSpecification* spec_;
  VmConfig config_;
  util::Rng rng_;
  MicroArchState uarch_;
  pmu::CounterRegisterFile counters_;
  std::unordered_map<std::uint32_t, CachedBlock> block_cache_;
  std::array<double, pmu::EventDatabase::kNumCounters> before_{};
  std::array<double, pmu::EventDatabase::kNumCounters> delta_{};
  /// Resolved once at construction (telemetry-handle rule); incrementing in
  /// execute_once stays allocation-free.
  telemetry::Counter executions_;
};

}  // namespace aegis::sim
