// Fuzzing execution environment (paper Section VI-D).
//
// Reproduces the paper's measurement discipline for gadget fuzzing:
//   * the process is pinned to an isolated core (isolcpus) -> near-zero
//     interrupt rate, but not exactly zero;
//   * generated code runs between a prolog and epilog that save state and
//     point all memory operands at one pre-allocated writable page
//     (kScratchRegion);
//   * serializing instructions (CPUID) fence the measured window;
//   * HPC values are read with RDPMC before and after the gadget.
// Micro-architectural state deliberately persists across measurements —
// gadgets fuzzed back-to-back inherit each other's cache dirt (C6), which
// Event Fuzzer's confirmation stage has to detect and reject.
//
// The steady-state measurement loop is allocation-free and runs fused
// superblocks: a whole (reset sequence, trigger sequence) uid span is
// compiled once into a cached sequence of sim::CompiledBlocks (every
// state-independent execution term prehoisted, see sim/executor.hpp), the
// static prolog/epilog are compiled at namespace scope, and RDPMC reads go
// through slot indices resolved at program() time. Compiled blocks live in
// a stable-address util::Arena so an unroll change rebuilds them in place
// without growing memory. before/delta live in fixed member scratch sized
// to the 4-register hardware limit (see DESIGN.md "SIMD kernels &
// superblock fusion"; pinned by the instrumented-allocator test in
// tests/hotpath_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "isa/spec.hpp"
#include "pmu/counter_file.hpp"
#include "sim/executor.hpp"
#include "sim/virtual_machine.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/arena.hpp"

namespace aegis::sim {

class GadgetRunner {
 public:
  GadgetRunner(const pmu::EventDatabase& db, const isa::IsaSpecification& spec,
               std::uint64_t seed);

  /// Programs the events measured by subsequent executions (<= 4, the
  /// hardware register limit) and resolves the RDPMC slot index of each
  /// programmed event so the measurement loop reads raw slots directly.
  void program(std::vector<std::uint32_t> event_ids);

  /// Executes the instruction sequence (each uid repeated `unroll` times,
  /// uids in order: reset sequence then trigger sequence) once inside the
  /// prolog/epilog + serialization harness, and returns the per-event HPC
  /// count deltas across the measured window. The returned span aliases
  /// member scratch: it is valid until the next execute_once call and holds
  /// one delta per programmed event.
  std::span<const double> execute_once(
      std::span<const std::uint32_t> variant_uids, double unroll = 8.0);

  /// Clears cache/predictor state (a fresh process image). Tests use this;
  /// the fuzzer intentionally does NOT between gadgets. The superblock
  /// cache survives: compiled blocks depend only on the immutable ISA spec,
  /// never on machine state.
  void reset_machine_state();

  const std::vector<std::uint32_t>& programmed() const noexcept {
    return counters_.programmed();
  }

 private:
  /// One fused, precompiled gadget sequence: the CompiledBlock per uid (in
  /// sequence order) plus the inputs it was built from. Block storage is
  /// arena-backed so the pointers stay valid across cache rehashes and an
  /// unroll change overwrites the pointed-to objects in place.
  struct Superblock {
    std::vector<std::uint32_t> uids;
    double unroll = -1.0;  // never a valid repetition count
    std::vector<CompiledBlock*> blocks;
  };

  /// Returns the cached superblock for (variant_uids, unroll), building it
  /// on first use. Keyed by FNV-1a over the uid bytes with the stored uids
  /// verified against the request, so a hash collision rebuilds instead of
  /// executing the wrong gadget. Sequences containing an illegal variant
  /// are never cached and throw on every call, exactly like the uncached
  /// path. A two-entry MRU keeps the fuzzer's steady alternation between
  /// its reset and trigger sequences off the hash probe entirely.
  const Superblock& superblock(std::span<const std::uint32_t> variant_uids,
                               double unroll);
  void rebuild(Superblock& sb, std::span<const std::uint32_t> variant_uids,
               double unroll);

  const isa::IsaSpecification* spec_;
  VmConfig config_;
  util::Rng rng_;
  MicroArchState uarch_;
  pmu::CounterRegisterFile counters_;
  util::Arena<CompiledBlock> arena_;
  std::unordered_map<std::uint64_t, Superblock> superblocks_;
  Superblock* mru0_ = nullptr;  // most recently used
  Superblock* mru1_ = nullptr;  // second most recently used
  /// Slot index of each programmed event (first occurrence wins for
  /// duplicates, matching CounterRegisterFile::read_raw's lookup).
  std::array<std::size_t, pmu::EventDatabase::kNumCounters> slot_idx_{};
  std::array<double, pmu::EventDatabase::kNumCounters> before_{};
  std::array<double, pmu::EventDatabase::kNumCounters> delta_{};
  /// Resolved once at construction (telemetry-handle rule); incrementing in
  /// execute_once stays allocation-free.
  telemetry::Counter executions_;
  /// Flight-recorder hot-path record point, also resolved at construction.
  /// Sampled 1-in-8 executions and stamped with a LOCAL ordinal (no shared
  /// clock traffic); bench_hot_path gates the enabled-vs-disabled overhead
  /// on execute_once at <= 2%.
  telemetry::EventHandle exec_event_;
  std::uint64_t exec_count_ = 0;
};

}  // namespace aegis::sim
