#include "sim/uarch_state.hpp"

#include <algorithm>
#include <cmath>

namespace aegis::sim {

// aegis-lint: amortized-alloc(first touch of a region appends its slot; every later access returns the existing entry)
MicroArchState::RegionState& MicroArchState::state_of(RegionId region) {
  for (auto& [id, st] : regions_) {
    if (id == region) return st;
  }
  regions_.emplace_back(region, RegionState{});
  return regions_.back().second;
}

const MicroArchState::RegionState* MicroArchState::find(
    RegionId region) const noexcept {
  for (const auto& [id, st] : regions_) {
    if (id == region) return &st;
  }
  return nullptr;
}

void MicroArchState::evict_pressure(RegionId keep, double bytes) {
  // Bringing `bytes` into a level displaces other regions' lines roughly in
  // proportion to the capacity fraction consumed.
  const double l1_pressure = std::min(1.0, bytes / kL1Bytes);
  const double llc_pressure = std::min(1.0, bytes / kLlcBytes);
  for (auto& [id, st] : regions_) {
    if (id == keep) continue;
    st.l1_frac *= (1.0 - l1_pressure);
    st.llc_frac *= (1.0 - llc_pressure);
  }
}

MemoryAccessResult MicroArchState::access(RegionId region, double bytes,
                                          double locality) {
  MemoryAccessResult result;
  if (bytes <= 0.0) return result;
  RegionState& st = state_of(region);
  const double lines = std::max(1.0, bytes / kLineBytes);

  // Hit probability: residency attenuated by access locality (random
  // strides defeat partially-resident working sets more often).
  const double l1_hit = st.l1_frac * (0.35 + 0.65 * locality);
  result.l1_misses = lines * (1.0 - l1_hit);
  const double llc_hit = st.llc_frac * (0.5 + 0.5 * locality);
  result.llc_misses = result.l1_misses * (1.0 - llc_hit);

  // Update residency: the touched set is now cached as far as it fits.
  st.footprint = bytes;
  st.l1_frac = std::min(1.0, kL1Bytes / bytes);
  st.llc_frac = std::min(1.0, kLlcBytes / bytes);
  evict_pressure(region, bytes);
  return result;
}

void MicroArchState::flush(RegionId region, double bytes) {
  RegionState& st = state_of(region);
  if (st.footprint <= 0.0) {
    st.l1_frac = 0.0;
    st.llc_frac = 0.0;
    return;
  }
  const double flushed_frac = std::min(1.0, bytes / st.footprint);
  st.l1_frac *= (1.0 - flushed_frac);
  st.llc_frac *= (1.0 - flushed_frac);
}

void MicroArchState::flush_all() noexcept {
  for (auto& [id, st] : regions_) {
    st.l1_frac = 0.0;
    st.llc_frac = 0.0;
  }
}

double MicroArchState::predictor_warmth(RegionId region) const noexcept {
  const RegionState* st = find(region);
  return st == nullptr ? 0.0 : st->warmth;
}

double MicroArchState::run_branches(RegionId region, double branches,
                                    double entropy) {
  if (branches <= 0.0) return 0.0;
  RegionState& st = state_of(region);
  // Random-outcome branches mispredict regardless of training; structured
  // ones stop mispredicting once the predictor has seen the region.
  const double rate = entropy * (0.45 * (1.0 - st.warmth) + 0.05);
  st.warmth = std::min(1.0, st.warmth + branches / 4096.0);
  return branches * rate;
}

double MicroArchState::l1_residency(RegionId region) const noexcept {
  const RegionState* st = find(region);
  return st == nullptr ? 0.0 : st->l1_frac;
}

double MicroArchState::llc_residency(RegionId region) const noexcept {
  const RegionState* st = find(region);
  return st == nullptr ? 0.0 : st->llc_frac;
}

}  // namespace aegis::sim
