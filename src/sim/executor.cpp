#include "sim/executor.hpp"

namespace aegis::sim {

pmu::ExecutionStats execute_block(const InstructionBlock& block,
                                  MicroArchState& uarch, const CostModel& cost) {
  using isa::InstructionClass;
  pmu::ExecutionStats s;
  s.class_counts = block.class_counts;
  s.uops = block.uops;

  // Memory behaviour.
  const double lines_read = block.read_bytes / MicroArchState::kLineBytes;
  const double lines_written = block.write_bytes / MicroArchState::kLineBytes;
  s.mem_reads = lines_read;
  s.mem_writes = lines_written;
  s.l1_writes = lines_written;
  const double touched = block.read_bytes + block.write_bytes;
  if (touched > 0.0) {
    const MemoryAccessResult misses =
        uarch.access(block.region, touched, block.locality);
    s.l1_misses = misses.l1_misses;
    s.llc_misses = misses.llc_misses;
  }
  if (block.flush_all) {
    uarch.flush_all();
  } else if (block.flush_bytes > 0.0) {
    uarch.flush(block.region, block.flush_bytes);
  }

  // Branch behaviour.
  const double branches = block.class_counts[InstructionClass::kBranch] +
                          block.class_counts[InstructionClass::kCall];
  s.branch_mispredicts =
      uarch.run_branches(block.region, branches, block.branch_entropy);

  // Cycle accounting.
  double cycles = s.uops / cost.issue_width;
  cycles += s.l1_misses * cost.l1_miss_cycles;
  cycles += s.llc_misses * cost.llc_miss_cycles;
  cycles += s.branch_mispredicts * cost.branch_miss_cycles;
  cycles += block.serialize_count * cost.serialize_cycles;
  cycles += block.class_counts[InstructionClass::kIntDiv] * cost.int_div_extra;
  cycles += block.class_counts[InstructionClass::kFpDiv] * cost.fp_div_extra;
  cycles += block.class_counts[InstructionClass::kX87] * 2.0;
  s.cycles = cycles;
  return s;
}

}  // namespace aegis::sim
