#include "sim/executor.hpp"

namespace aegis::sim {

pmu::ExecutionStats execute_block(const InstructionBlock& block,
                                  MicroArchState& uarch, const CostModel& cost) {
  using isa::InstructionClass;
  pmu::ExecutionStats s;
  s.class_counts = block.class_counts;
  s.uops = block.uops;

  // Memory behaviour.
  const double lines_read = block.read_bytes / MicroArchState::kLineBytes;
  const double lines_written = block.write_bytes / MicroArchState::kLineBytes;
  s.mem_reads = lines_read;
  s.mem_writes = lines_written;
  s.l1_writes = lines_written;
  const double touched = block.read_bytes + block.write_bytes;
  if (touched > 0.0) {
    const MemoryAccessResult misses =
        uarch.access(block.region, touched, block.locality);
    s.l1_misses = misses.l1_misses;
    s.llc_misses = misses.llc_misses;
  }
  if (block.flush_all) {
    uarch.flush_all();
  } else if (block.flush_bytes > 0.0) {
    uarch.flush(block.region, block.flush_bytes);
  }

  // Branch behaviour.
  const double branches = block.class_counts[InstructionClass::kBranch] +
                          block.class_counts[InstructionClass::kCall];
  s.branch_mispredicts =
      uarch.run_branches(block.region, branches, block.branch_entropy);

  // Cycle accounting.
  double cycles = s.uops / cost.issue_width;
  cycles += s.l1_misses * cost.l1_miss_cycles;
  cycles += s.llc_misses * cost.llc_miss_cycles;
  cycles += s.branch_mispredicts * cost.branch_miss_cycles;
  cycles += block.serialize_count * cost.serialize_cycles;
  cycles += block.class_counts[InstructionClass::kIntDiv] * cost.int_div_extra;
  cycles += block.class_counts[InstructionClass::kFpDiv] * cost.fp_div_extra;
  cycles += block.class_counts[InstructionClass::kX87] * 2.0;
  s.cycles = cycles;
  return s;
}

// Every precomputed field below is the same IEEE-754 expression
// execute_block evaluates per call, moved to compile time: identical
// operands, identical operation, identical bits.
CompiledBlock compile_block(const InstructionBlock& block,
                            const CostModel& cost) {
  using isa::InstructionClass;
  CompiledBlock cb;
  cb.block = block;
  cb.base.class_counts = block.class_counts;
  cb.base.uops = block.uops;
  cb.base.mem_reads = block.read_bytes / MicroArchState::kLineBytes;
  cb.base.mem_writes = block.write_bytes / MicroArchState::kLineBytes;
  cb.base.l1_writes = cb.base.mem_writes;
  cb.touched = block.read_bytes + block.write_bytes;
  cb.branches = block.class_counts[InstructionClass::kBranch] +
                block.class_counts[InstructionClass::kCall];
  cb.uops_over_width = block.uops / cost.issue_width;
  cb.serialize_cycles = block.serialize_count * cost.serialize_cycles;
  cb.int_div_cycles =
      block.class_counts[InstructionClass::kIntDiv] * cost.int_div_extra;
  cb.fp_div_cycles =
      block.class_counts[InstructionClass::kFpDiv] * cost.fp_div_extra;
  cb.x87_cycles = block.class_counts[InstructionClass::kX87] * 2.0;
  return cb;
}

// aegis-lint: noalloc
pmu::ExecutionStats execute_compiled(const CompiledBlock& compiled,
                                     MicroArchState& uarch,
                                     const CostModel& cost) {
  pmu::ExecutionStats s = compiled.base;
  if (compiled.touched > 0.0) {
    const MemoryAccessResult misses = uarch.access(
        compiled.block.region, compiled.touched, compiled.block.locality);
    s.l1_misses = misses.l1_misses;
    s.llc_misses = misses.llc_misses;
  }
  if (compiled.block.flush_all) {
    uarch.flush_all();
  } else if (compiled.block.flush_bytes > 0.0) {
    uarch.flush(compiled.block.region, compiled.block.flush_bytes);
  }
  s.branch_mispredicts = uarch.run_branches(
      compiled.block.region, compiled.branches, compiled.block.branch_entropy);

  // The additions run in execute_block's exact order; only the
  // state-independent products/quotient were hoisted to compile_block.
  double cycles = compiled.uops_over_width;
  cycles += s.l1_misses * cost.l1_miss_cycles;
  cycles += s.llc_misses * cost.llc_miss_cycles;
  cycles += s.branch_mispredicts * cost.branch_miss_cycles;
  cycles += compiled.serialize_cycles;
  cycles += compiled.int_div_cycles;
  cycles += compiled.fp_div_cycles;
  cycles += compiled.x87_cycles;
  s.cycles = cycles;
  return s;
}

}  // namespace aegis::sim
