// InstructionBlock: the unit of simulated execution.
//
// The simulator executes at block granularity rather than instruction
// granularity: a block aggregates a run of instructions (a workload phase,
// one fuzzing gadget, or an injected noise segment) into per-class retired
// counts plus its memory/branch behaviour. This keeps trace generation fast
// while preserving everything the PMU response model (src/pmu) can observe.
#pragma once

#include <cstdint>

#include "isa/instruction_class.hpp"
#include "isa/spec.hpp"

namespace aegis::sim {

/// Memory region ids name disjoint working sets in the cache model.
using RegionId = std::uint32_t;

inline constexpr RegionId kScratchRegion = 0;     // prolog/epilog stack scratch
inline constexpr RegionId kGadgetDataRegion = 1;  // the pre-allocated writable
                                                  // data page memory operands
                                                  // are pointed at (Sec. VI-D)
inline constexpr RegionId kInjectedNoiseRegion = 2;  // obfuscator segment data

struct InstructionBlock {
  isa::ClassVector<double> class_counts;  // retired instructions per class
  double uops = 0.0;
  RegionId region = kScratchRegion;
  double read_bytes = 0.0;
  double write_bytes = 0.0;
  double locality = 0.9;        // 0 = random stride, 1 = fully sequential
  double branch_entropy = 0.1;  // 0 = predictable, 1 = random outcomes
  double flush_bytes = 0.0;     // bytes clflushed from `region`
  bool flush_all = false;       // wbinvd-style full flush
  double serialize_count = 0.0; // cpuid-like serializations

  /// Scales every linear field by f (used to repeat or split work).
  InstructionBlock scaled(double f) const;

  /// Builds the block for `reps` back-to-back executions of one ISA
  /// variant against the given region (the fuzzer's generated code and the
  /// obfuscator's noise segments are assembled this way).
  static InstructionBlock from_variant(const isa::InstructionVariant& v,
                                       double reps, RegionId region);

  InstructionBlock& operator+=(const InstructionBlock& o);
};

}  // namespace aegis::sim
