// Block executor: turns an InstructionBlock plus the current MicroArchState
// into the ExecutionStats record that PMU event responses consume, and
// charges cycle costs (the basis of the Fig. 10 latency / CPU-usage
// overhead measurements).
//
// Two entry points share one observable behaviour:
//   * execute_block — computes everything from the block per call;
//   * compile_block + execute_compiled — hoists every state-independent
//     term (line counts, branch totals, the issue-width division, the
//     fixed cycle products) into a CompiledBlock once, so the per-call
//     work shrinks to the cache/branch-state interaction. GadgetRunner's
//     superblocks are sequences of CompiledBlocks.
// execute_compiled is bit-identical to execute_block on the same state:
// the precomputed values are the identical IEEE-754 results of the
// identical expressions, and the remaining additions run in the identical
// order (pinned by the ExecutorCompiled tests in tests/sim_test.cpp).
#pragma once

#include "pmu/event_model.hpp"
#include "sim/instruction_block.hpp"
#include "sim/uarch_state.hpp"

namespace aegis::sim {

/// Pipeline cost constants for a generic 4-wide out-of-order core.
struct CostModel {
  double issue_width = 4.0;
  double l1_miss_cycles = 12.0;
  double llc_miss_cycles = 90.0;
  double branch_miss_cycles = 16.0;
  double serialize_cycles = 120.0;
  double int_div_extra = 18.0;
  double fp_div_extra = 10.0;
};

/// Executes one block against the micro-architectural state; returns the
/// observable activity record.
pmu::ExecutionStats execute_block(const InstructionBlock& block,
                                  MicroArchState& uarch,
                                  const CostModel& cost = CostModel{});

/// A block with its state-independent execution terms precomputed against
/// one CostModel. Build on the cold path, execute from noalloc loops.
struct CompiledBlock {
  InstructionBlock block;    // region/locality/entropy/flush inputs
  pmu::ExecutionStats base;  // class_counts, uops, mem_reads/writes, l1_writes
  double touched = 0.0;      // read_bytes + write_bytes
  double branches = 0.0;     // branch + call retirements
  double uops_over_width = 0.0;   // uops / issue_width
  double serialize_cycles = 0.0;  // serialize_count * cost
  double int_div_cycles = 0.0;
  double fp_div_cycles = 0.0;
  double x87_cycles = 0.0;
};

/// Precomputes `block`'s state-independent terms. The CostModel baked in
/// here must be the one later passed to execute_compiled.
CompiledBlock compile_block(const InstructionBlock& block,
                            const CostModel& cost = CostModel{});

/// Executes a compiled block; bit-identical to
/// execute_block(compiled.block, uarch, cost) for the cost model the block
/// was compiled with.
pmu::ExecutionStats execute_compiled(const CompiledBlock& compiled,
                                     MicroArchState& uarch,
                                     const CostModel& cost = CostModel{});

}  // namespace aegis::sim
