// Block executor: turns an InstructionBlock plus the current MicroArchState
// into the ExecutionStats record that PMU event responses consume, and
// charges cycle costs (the basis of the Fig. 10 latency / CPU-usage
// overhead measurements).
#pragma once

#include "pmu/event_model.hpp"
#include "sim/instruction_block.hpp"
#include "sim/uarch_state.hpp"

namespace aegis::sim {

/// Pipeline cost constants for a generic 4-wide out-of-order core.
struct CostModel {
  double issue_width = 4.0;
  double l1_miss_cycles = 12.0;
  double llc_miss_cycles = 90.0;
  double branch_miss_cycles = 16.0;
  double serialize_cycles = 120.0;
  double int_div_extra = 18.0;
  double fp_div_extra = 10.0;
};

/// Executes one block against the micro-architectural state; returns the
/// observable activity record.
pmu::ExecutionStats execute_block(const InstructionBlock& block,
                                  MicroArchState& uarch,
                                  const CostModel& cost = CostModel{});

}  // namespace aegis::sim
