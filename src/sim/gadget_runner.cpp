#include "sim/gadget_runner.hpp"

#include <stdexcept>

#include "sim/executor.hpp"
#include "telemetry/registry.hpp"

namespace aegis::sim {

namespace {

/// Prolog: saves callee-saved registers, carves one page of stack scratch,
/// initializes memory-operand registers to the writable data page. Mostly
/// stores plus a serializing fence; runs OUTSIDE the measured window but
/// still perturbs cache state (one source of C5 side effects).
InstructionBlock make_prolog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kStore] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.write_bytes = 4096;  // the scratch page
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

InstructionBlock make_epilog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kLoad] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.read_bytes = 256;  // register restore area
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

// The prolog/epilog never change between executions; building them per
// call was pure hot-loop overhead.
const InstructionBlock kProlog = make_prolog();
const InstructionBlock kEpilog = make_epilog();

}  // namespace

GadgetRunner::GadgetRunner(const pmu::EventDatabase& db,
                           const isa::IsaSpecification& spec, std::uint64_t seed)
    : spec_(&spec),
      rng_(seed),
      counters_(db, rng_.next_u64()),
      executions_(telemetry::Registry::global().metrics().counter(
          "aegis_gadget_executions_total")) {
  // isolcpus + core pinning: almost no external interference.
  config_.interrupt_rate = 0.002;
}

void GadgetRunner::program(std::vector<std::uint32_t> event_ids) {
  if (event_ids.size() > pmu::EventDatabase::kNumCounters) {
    throw std::invalid_argument(
        "GadgetRunner: at most 4 events can be measured concurrently");
  }
  counters_.program(std::move(event_ids));
}

const InstructionBlock& GadgetRunner::variant_block(std::uint32_t uid,
                                                    double unroll) {
  const auto it = block_cache_.find(uid);
  if (it != block_cache_.end() && it->second.unroll == unroll) {
    return it->second.block;
  }
  const isa::InstructionVariant& v = spec_->by_uid(uid);
  if (!v.legal()) {
    throw std::invalid_argument("GadgetRunner: illegal variant " + v.mnemonic);
  }
  CachedBlock& entry = it != block_cache_.end() ? it->second : block_cache_[uid];
  entry.unroll = unroll;
  entry.block = InstructionBlock::from_variant(v, unroll, kGadgetDataRegion);
  return entry.block;
}

// aegis-lint: noalloc
std::span<const double> GadgetRunner::execute_once(
    std::span<const std::uint32_t> variant_uids, double unroll) {
  executions_.inc();
  // Prolog runs before the first RDPMC.
  (void)execute_block(kProlog, uarch_);

  const std::vector<std::uint32_t>& ids = counters_.programmed();
  const std::size_t n = ids.size();
  for (std::size_t i = 0; i < n; ++i) {
    before_[i] = counters_.read_raw(ids[i]);
  }

  // Measured window: the generated instruction sequence. A rare interrupt
  // can still land inside (the residual C2 noise the fuzzer's repetition
  // machinery has to average out).
  for (std::uint32_t uid : variant_uids) {
    pmu::ExecutionStats stats =
        execute_block(variant_block(uid, unroll), uarch_);
    if (rng_.bernoulli(config_.interrupt_rate)) {
      stats.interrupts += 1.0;
      stats.cycles += config_.interrupt_cycles;
      stats.uops += config_.interrupt_uops;
    }
    counters_.accumulate(stats);
  }

  for (std::size_t i = 0; i < n; ++i) {
    delta_[i] = counters_.read_raw(ids[i]) - before_[i];
  }

  (void)execute_block(kEpilog, uarch_);
  return std::span<const double>(delta_.data(), n);
}

void GadgetRunner::reset_machine_state() { uarch_ = MicroArchState{}; }

}  // namespace aegis::sim
