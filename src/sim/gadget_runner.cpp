#include "sim/gadget_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/registry.hpp"
#include "util/hash.hpp"

namespace aegis::sim {

namespace {

/// Prolog: saves callee-saved registers, carves one page of stack scratch,
/// initializes memory-operand registers to the writable data page. Mostly
/// stores plus a serializing fence; runs OUTSIDE the measured window but
/// still perturbs cache state (one source of C5 side effects).
InstructionBlock make_prolog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kStore] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.write_bytes = 4096;  // the scratch page
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

InstructionBlock make_epilog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kLoad] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.read_bytes = 256;  // register restore area
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

// The prolog/epilog never change between executions; compiled once, their
// state-independent terms never recompute.
const CompiledBlock kProlog = compile_block(make_prolog());
const CompiledBlock kEpilog = compile_block(make_epilog());

bool same_sequence(const std::vector<std::uint32_t>& cached,
                   std::span<const std::uint32_t> requested) noexcept {
  return cached.size() == requested.size() &&
         std::equal(cached.begin(), cached.end(), requested.begin());
}

}  // namespace

GadgetRunner::GadgetRunner(const pmu::EventDatabase& db,
                           const isa::IsaSpecification& spec, std::uint64_t seed)
    : spec_(&spec),
      rng_(seed),
      counters_(db, rng_.next_u64()),
      executions_(telemetry::Registry::global().metrics().counter(
          "aegis_gadget_executions_total")),
      exec_event_(telemetry::Registry::global().recorder().event_handle(
          "gadget.exec", telemetry::WideEventType::kHotExec)) {
  // isolcpus + core pinning: almost no external interference.
  config_.interrupt_rate = 0.002;
}

void GadgetRunner::program(std::vector<std::uint32_t> event_ids) {
  if (event_ids.size() > pmu::EventDatabase::kNumCounters) {
    throw std::invalid_argument(
        "GadgetRunner: at most 4 events can be measured concurrently");
  }
  counters_.program(std::move(event_ids));
  const std::vector<std::uint32_t>& ids = counters_.programmed();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::size_t j = 0;
    while (ids[j] != ids[i]) ++j;  // first occurrence, like read_raw
    slot_idx_[i] = j;
  }
}

// aegis-lint: amortized-alloc(runs only for a first-seen (uids, unroll) key; steady-state execute_once hits the MRU pair or the hash probe)
void GadgetRunner::rebuild(Superblock& sb,
                           std::span<const std::uint32_t> variant_uids,
                           double unroll) {
  // Validate the whole sequence before touching the cache entry: a
  // sequence with an illegal variant must throw on every call and leave no
  // partially-built superblock behind.
  for (std::uint32_t uid : variant_uids) {
    const isa::InstructionVariant& v = spec_->by_uid(uid);
    if (!v.legal()) {
      throw std::invalid_argument("GadgetRunner: illegal variant " +
                                  v.mnemonic);
    }
  }
  sb.uids.assign(variant_uids.begin(), variant_uids.end());
  sb.unroll = unroll;
  while (sb.blocks.size() < variant_uids.size()) {
    sb.blocks.push_back(arena_.push());
  }
  sb.blocks.resize(variant_uids.size());
  for (std::size_t i = 0; i < variant_uids.size(); ++i) {
    *sb.blocks[i] = compile_block(InstructionBlock::from_variant(
        spec_->by_uid(variant_uids[i]), unroll, kGadgetDataRegion));
  }
}

const GadgetRunner::Superblock& GadgetRunner::superblock(
    std::span<const std::uint32_t> variant_uids, double unroll) {
  if (mru0_ != nullptr && mru0_->unroll == unroll &&
      same_sequence(mru0_->uids, variant_uids)) {
    return *mru0_;
  }
  if (mru1_ != nullptr && mru1_->unroll == unroll &&
      same_sequence(mru1_->uids, variant_uids)) {
    std::swap(mru0_, mru1_);
    return *mru0_;
  }
  const std::uint64_t key =
      util::fnv1a(variant_uids.data(), variant_uids.size_bytes());
  const auto it = superblocks_.find(key);
  // Pointers/references into an unordered_map survive rehashing, so the
  // MRU pointers and arena-backed block pointers both stay valid as the
  // cache grows.
  Superblock& sb = it != superblocks_.end() ? it->second : superblocks_[key];
  if (!same_sequence(sb.uids, variant_uids) || sb.unroll != unroll) {
    rebuild(sb, variant_uids, unroll);
  }
  mru1_ = mru0_;
  mru0_ = &sb;
  return sb;
}

// aegis-lint: noalloc
// aegis-rng: stream(gadget-runner-execute-once)
std::span<const double> GadgetRunner::execute_once(
    std::span<const std::uint32_t> variant_uids, double unroll) {
  // Cache hits resolve via the MRU compare / hash probe with zero
  // allocation; only a first-seen (uids, unroll) builds.
  const Superblock& sb = superblock(variant_uids, unroll);
  executions_.inc();
  // Sampled flight-recorder record point (1-in-8): one branch on the fast
  // iterations, a wait-free ring write on the sampled ones, stamped with a
  // local ordinal rather than a shared clock.
  if ((++exec_count_ & 7) == 0) {
    exec_event_.record(exec_count_, sb.uids.size(),
                       static_cast<std::uint64_t>(unroll));
  }
  // Prolog runs before the first RDPMC.
  (void)execute_compiled(kProlog, uarch_);

  const std::size_t n = counters_.programmed().size();
  for (std::size_t i = 0; i < n; ++i) {
    before_[i] = counters_.read_raw_slot(slot_idx_[i]);
  }

  // Measured window: the generated instruction sequence. A rare interrupt
  // can still land inside (the residual C2 noise the fuzzer's repetition
  // machinery has to average out).
  for (const CompiledBlock* block : sb.blocks) {
    pmu::ExecutionStats stats = execute_compiled(*block, uarch_);
    if (rng_.bernoulli(config_.interrupt_rate)) {
      stats.interrupts += 1.0;
      stats.cycles += config_.interrupt_cycles;
      stats.uops += config_.interrupt_uops;
    }
    counters_.accumulate(stats);
  }

  for (std::size_t i = 0; i < n; ++i) {
    delta_[i] = counters_.read_raw_slot(slot_idx_[i]) - before_[i];
  }

  (void)execute_compiled(kEpilog, uarch_);
  return std::span<const double>(delta_.data(), n);
}

void GadgetRunner::reset_machine_state() { uarch_ = MicroArchState{}; }

}  // namespace aegis::sim
