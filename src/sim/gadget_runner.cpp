#include "sim/gadget_runner.hpp"

#include <stdexcept>

#include "sim/executor.hpp"

namespace aegis::sim {

namespace {

/// Prolog: saves callee-saved registers, carves one page of stack scratch,
/// initializes memory-operand registers to the writable data page. Mostly
/// stores plus a serializing fence; runs OUTSIDE the measured window but
/// still perturbs cache state (one source of C5 side effects).
InstructionBlock make_prolog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kStore] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.write_bytes = 4096;  // the scratch page
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

InstructionBlock make_epilog() {
  InstructionBlock b;
  b.region = kScratchRegion;
  b.class_counts[isa::InstructionClass::kLoad] = 20;
  b.class_counts[isa::InstructionClass::kMov] = 16;
  b.class_counts[isa::InstructionClass::kSerialize] = 1;
  b.uops = 60;
  b.read_bytes = 256;  // register restore area
  b.serialize_count = 1;
  b.locality = 1.0;
  return b;
}

}  // namespace

GadgetRunner::GadgetRunner(const pmu::EventDatabase& db,
                           const isa::IsaSpecification& spec, std::uint64_t seed)
    : spec_(&spec), rng_(seed), counters_(db, rng_.next_u64()) {
  // isolcpus + core pinning: almost no external interference.
  config_.interrupt_rate = 0.002;
}

void GadgetRunner::program(std::vector<std::uint32_t> event_ids) {
  if (event_ids.size() > pmu::EventDatabase::kNumCounters) {
    throw std::invalid_argument(
        "GadgetRunner: at most 4 events can be measured concurrently");
  }
  counters_.program(std::move(event_ids));
}

std::vector<double> GadgetRunner::execute_once(
    std::span<const std::uint32_t> variant_uids, double unroll) {
  // Prolog runs before the first RDPMC.
  (void)execute_block(make_prolog(), uarch_);

  std::vector<double> before;
  before.reserve(counters_.programmed().size());
  for (std::uint32_t id : counters_.programmed()) {
    before.push_back(counters_.read_raw(id));
  }

  // Measured window: the generated instruction sequence. A rare interrupt
  // can still land inside (the residual C2 noise the fuzzer's repetition
  // machinery has to average out).
  for (std::uint32_t uid : variant_uids) {
    const isa::InstructionVariant& v = spec_->by_uid(uid);
    if (!v.legal()) {
      throw std::invalid_argument("GadgetRunner: illegal variant " + v.mnemonic);
    }
    pmu::ExecutionStats stats = execute_block(
        InstructionBlock::from_variant(v, unroll, kGadgetDataRegion), uarch_);
    if (rng_.bernoulli(config_.interrupt_rate)) {
      stats.interrupts += 1.0;
      stats.cycles += config_.interrupt_cycles;
      stats.uops += config_.interrupt_uops;
    }
    counters_.accumulate(stats);
  }

  std::vector<double> delta(before.size());
  const auto& ids = counters_.programmed();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    delta[i] = counters_.read_raw(ids[i]) - before[i];
  }

  (void)execute_block(make_epilog(), uarch_);
  return delta;
}

void GadgetRunner::reset_machine_state() { uarch_ = MicroArchState{}; }

}  // namespace aegis::sim
