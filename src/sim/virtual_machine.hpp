// Discrete-time virtual machine model.
//
// The VM executes queued instruction blocks on one pinned vCPU in fixed
// wall-clock slices (1 ms of guest time ~ a few million cycles). Work that
// does not fit a slice carries over — this is what turns injected noise
// instructions into measurable execution-latency and CPU-usage overhead
// (Fig. 10). External interrupts arrive per slice and perturb both cycle
// counts and interrupt-coupled HPC events (the paper's C2 noise).
#pragma once

#include <cstdint>
#include <deque>

#include "pmu/event_model.hpp"
#include "sim/executor.hpp"
#include "sim/instruction_block.hpp"
#include "sim/uarch_state.hpp"
#include "util/rng.hpp"

namespace aegis::sim {

struct VmConfig {
  double slice_budget_cycles = 3.0e6;  // 1 ms at 3 GHz
  double interrupt_rate = 1.2;         // expected interrupts per slice
  double interrupt_cycles = 2500.0;    // ISR cost per interrupt
  double interrupt_uops = 900.0;
  CostModel cost;
};

class VirtualMachine {
 public:
  VirtualMachine(VmConfig config, std::uint64_t seed);

  /// Queues a block for execution on the vCPU.
  void submit(InstructionBlock block);

  /// Runs one monitoring slice: executes queued blocks until the cycle
  /// budget is exhausted (unfinished work stays queued), delivers external
  /// interrupts, and returns the slice's aggregate activity.
  pmu::ExecutionStats run_slice();

  /// True while queued work remains (used to measure completion latency).
  bool pending() const noexcept { return !queue_.empty(); }

  MicroArchState& uarch() noexcept { return uarch_; }
  const VmConfig& config() const noexcept { return config_; }

  /// Activity of the most recent slice. In-guest software (the Event
  /// Obfuscator's kernel module) reads its own HPC values via RDPMC; this
  /// is the simulator's equivalent of that in-guest view.
  const pmu::ExecutionStats& last_slice_stats() const noexcept {
    return last_slice_stats_;
  }

  /// Cumulative accounting since construction.
  std::uint64_t slices_run() const noexcept { return slices_run_; }
  double total_busy_cycles() const noexcept { return total_busy_cycles_; }
  /// Busy fraction = busy cycles / slice capacity (the `top` CPU-usage view
  /// the paper's host measures every 0.2 s).
  double cpu_usage() const noexcept;

 private:
  VmConfig config_;
  util::Rng rng_;
  MicroArchState uarch_;
  std::deque<InstructionBlock> queue_;
  pmu::ExecutionStats last_slice_stats_;
  std::uint64_t slices_run_ = 0;
  double total_busy_cycles_ = 0.0;
};

}  // namespace aegis::sim
