// Cache-occupancy probe (paper Section X future work: generalizing the
// framework to cache side channels).
//
// A co-resident attacker repeatedly sweeps a probe buffer and counts its
// own misses: the victim's memory activity evicts probe lines, so the
// per-slice probe-miss series tracks the victim's cache pressure — the
// cache-occupancy website-fingerprinting channel of Shusterman et al.
// (the paper's [63]). The probe itself also evicts victim data, exactly as
// on real hardware. The Event Obfuscator's injected gadget segments touch
// memory too, so the same defense obfuscates this channel.
#pragma once

#include "sim/uarch_state.hpp"

namespace aegis::sim {

class CacheProbe {
 public:
  /// `region` must be disjoint from the victim's regions; `probe_bytes`
  /// is the sweep size (a large fraction of the LLC for occupancy probes).
  CacheProbe(RegionId region, double probe_bytes)
      : region_(region), probe_bytes_(probe_bytes) {}

  /// One probe sweep: returns the probe's own LLC miss count (what the
  /// attacker's timing loop measures) and re-installs the probe buffer.
  double probe(MicroArchState& uarch) {
    return uarch.access(region_, probe_bytes_, 1.0).llc_misses;
  }

  RegionId region() const noexcept { return region_; }
  double probe_bytes() const noexcept { return probe_bytes_; }

 private:
  RegionId region_;
  double probe_bytes_;
};

}  // namespace aegis::sim
