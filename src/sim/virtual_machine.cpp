#include "sim/virtual_machine.hpp"

namespace aegis::sim {

VirtualMachine::VirtualMachine(VmConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void VirtualMachine::submit(InstructionBlock block) {
  queue_.push_back(std::move(block));
}

// aegis-rng: stream(virtual-machine-run-slice)
pmu::ExecutionStats VirtualMachine::run_slice() {
  pmu::ExecutionStats slice;
  double budget = config_.slice_budget_cycles;

  // External interrupts: delivered regardless of guest activity; they
  // consume cycles and couple into interrupt-sensitive events.
  const std::uint64_t irqs = rng_.poisson(config_.interrupt_rate);
  slice.interrupts = static_cast<double>(irqs);
  const double irq_cycles = static_cast<double>(irqs) * config_.interrupt_cycles;
  slice.cycles += irq_cycles;
  slice.uops += static_cast<double>(irqs) * config_.interrupt_uops;
  budget -= irq_cycles;

  // Forward-progress guarantee: at least one queued block executes per
  // slice even if interrupts (or a pathological configuration) consumed
  // the whole budget — a scheduled task is never starved forever.
  bool first = true;
  while (!queue_.empty() && (first || budget > 0.0)) {
    first = false;
    const InstructionBlock block = queue_.front();
    queue_.pop_front();
    const pmu::ExecutionStats stats =
        execute_block(block, uarch_, config_.cost);
    slice += stats;
    budget -= stats.cycles;
  }

  ++slices_run_;
  total_busy_cycles_ += slice.cycles;
  last_slice_stats_ = slice;
  return slice;
}

double VirtualMachine::cpu_usage() const noexcept {
  if (slices_run_ == 0) return 0.0;
  const double capacity =
      static_cast<double>(slices_run_) * config_.slice_budget_cycles;
  const double usage = total_busy_cycles_ / capacity;
  return usage > 1.0 ? 1.0 : usage;
}

}  // namespace aegis::sim
