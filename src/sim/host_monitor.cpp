#include "sim/host_monitor.hpp"

#include <cmath>

namespace aegis::sim {

HostMonitor::HostMonitor(const pmu::EventDatabase& db, std::uint64_t seed)
    : db_(&db), rng_(seed) {}

// aegis-rng: stream(host-monitor-monitor)
MonitorResult HostMonitor::monitor(VirtualMachine& vm, const BlockSource& source,
                                   const std::vector<std::uint32_t>& event_ids,
                                   std::size_t slices, const SliceAgent& agent) {
  pmu::CounterRegisterFile counters(*db_, rng_.next_u64());
  counters.program(event_ids);

  MonitorResult result;
  result.samples.reserve(slices);
  std::vector<double> prev(event_ids.size(), 0.0);
  const double busy_before = vm.total_busy_cycles();

  for (std::size_t t = 0; t < slices; ++t) {
    if (agent) agent(vm, t);
    if (source) {
      for (auto& block : source(t)) vm.submit(std::move(block));
    }
    const pmu::ExecutionStats stats = vm.run_slice();
    counters.tick(stats);

    std::vector<double> now = counters.read_all();
    std::vector<double> delta(now.size());
    for (std::size_t e = 0; e < now.size(); ++e) {
      delta[e] = now[e] - prev[e];
      if (delta[e] < 0.0) delta[e] = 0.0;  // multiplex rescaling artefact
    }
    prev = std::move(now);
    result.samples.push_back(std::move(delta));
  }
  result.slices = slices;
  result.busy_cycles = vm.total_busy_cycles() - busy_before;
  return result;
}

// aegis-rng: stream(host-monitor-monitor-stepped)
MonitorResult HostMonitor::monitor_stepped(
    VirtualMachine& vm, const BlockSource& source,
    const std::vector<std::uint32_t>& event_ids, std::size_t base_slices,
    const SlicePlanner& planner, const SliceAgent& agent) {
  if (!planner) return monitor(vm, source, event_ids, base_slices, agent);

  pmu::CounterRegisterFile counters(*db_, rng_.next_u64());
  counters.program(event_ids);

  MonitorResult result;
  std::vector<double> prev(event_ids.size(), 0.0);
  std::vector<double> last_delta;  // empty until the first sample lands
  const double busy_before = vm.total_busy_cycles();

  std::size_t t = 0;
  std::size_t sample = 0;
  while (t < base_slices) {
    std::size_t step = planner(sample, last_delta);
    if (step < 1) step = 1;
    step = std::min(step, base_slices - t);
    // The victim's scheduling quantum is unchanged: the guest (and its
    // defense agent) see the same base slices; only the hypervisor defers
    // its counter read to the boundary the planner picked.
    for (std::size_t k = 0; k < step; ++k, ++t) {
      if (agent) agent(vm, t);
      if (source) {
        for (auto& block : source(t)) vm.submit(std::move(block));
      }
      counters.tick(vm.run_slice());
    }
    std::vector<double> now = counters.read_all();
    std::vector<double> delta(now.size());
    for (std::size_t e = 0; e < now.size(); ++e) {
      delta[e] = now[e] - prev[e];
      if (delta[e] < 0.0) delta[e] = 0.0;  // multiplex rescaling artefact
    }
    prev = std::move(now);
    last_delta = delta;
    result.samples.push_back(std::move(delta));
    ++sample;
  }
  result.slices = result.samples.size();
  result.busy_cycles = vm.total_busy_cycles() - busy_before;
  return result;
}

// aegis-rng: stream(host-monitor-totals)
std::vector<double> HostMonitor::totals(VirtualMachine& vm,
                                        const BlockSource& source,
                                        const std::vector<std::uint32_t>& event_ids,
                                        std::size_t slices) {
  pmu::CounterRegisterFile counters(*db_, rng_.next_u64());
  counters.program(event_ids);
  for (std::size_t t = 0; t < slices; ++t) {
    if (source) {
      for (auto& block : source(t)) vm.submit(std::move(block));
    }
    counters.tick(vm.run_slice());
  }
  return counters.read_all();
}

// aegis-rng: stream(host-monitor-monitor-occupancy)
MonitorResult HostMonitor::monitor_occupancy(VirtualMachine& vm,
                                             const BlockSource& source,
                                             CacheProbe& probe,
                                             std::size_t slices,
                                             const SliceAgent& agent) {
  MonitorResult result;
  result.samples.reserve(slices);
  const double busy_before = vm.total_busy_cycles();
  for (std::size_t t = 0; t < slices; ++t) {
    if (agent) agent(vm, t);
    if (source) {
      for (auto& block : source(t)) vm.submit(std::move(block));
    }
    (void)vm.run_slice();
    // The attacker's sweep: measures and perturbs the shared caches.
    const double misses = probe.probe(vm.uarch());
    // Probe timing jitter (the attacker measures via a software timer).
    result.samples.push_back({misses + std::abs(rng_.normal(0.0, 2.0))});
  }
  result.slices = slices;
  result.busy_cycles = vm.total_busy_cycles() - busy_before;
  return result;
}

}  // namespace aegis::sim
