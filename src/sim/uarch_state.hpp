// Hidden micro-architectural state shared by all code running on a vCPU.
//
// Two behaviours matter for the reproduction:
//   * cache residency decides L1/LLC miss counts, which several vulnerable
//     events (MAB_ALLOCATION_BY_PIPE, DATA_CACHE_REFILLS_FROM_SYSTEM, ...)
//     respond to;
//   * state persists across instruction gadgets, producing the paper's C6
//     "inherited dirty state" confounder that Event Fuzzer's reordering
//     confirmation must reject.
// The model is deliberately coarse (fractional residency per region, not
// per-line LRU): precise geometry is irrelevant, persistence is not.
//
// Region state lives in a flat first-touch-ordered vector, not a hash map:
// the hot paths (GadgetRunner touches 2 regions, a VM's workloads a
// handful) do a short linear scan over one cache line instead of a hashed
// probe, the eviction/flush sweeps iterate contiguously, and iteration
// order is deterministic by construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/instruction_block.hpp"

namespace aegis::sim {

struct MemoryAccessResult {
  double l1_misses = 0.0;
  double llc_misses = 0.0;
};

class MicroArchState {
 public:
  static constexpr double kL1Bytes = 32.0 * 1024;
  static constexpr double kLlcBytes = 4.0 * 1024 * 1024;
  static constexpr double kLineBytes = 64.0;

  /// Simulates touching `bytes` of `region` and returns the miss counts.
  /// Updates residency (the touched region is cached afterwards, evicting
  /// other regions proportionally to the pressure it exerts).
  MemoryAccessResult access(RegionId region, double bytes, double locality);

  /// clflush of `bytes` from the region's working set.
  void flush(RegionId region, double bytes);
  void flush_all() noexcept;

  /// Branch predictor warmth for a region's code, in [0, 1].
  double predictor_warmth(RegionId region) const noexcept;
  /// Executes `branches` branches with the given outcome entropy; returns
  /// the mispredict count and trains the predictor.
  double run_branches(RegionId region, double branches, double entropy);

  /// Fraction of the region's last-seen working set resident in each level.
  double l1_residency(RegionId region) const noexcept;
  double llc_residency(RegionId region) const noexcept;

 private:
  struct RegionState {
    double l1_frac = 0.0;
    double llc_frac = 0.0;
    double footprint = 0.0;   // bytes last touched
    double warmth = 0.0;      // branch predictor training level
  };

  RegionState& state_of(RegionId region);
  const RegionState* find(RegionId region) const noexcept;
  void evict_pressure(RegionId keep, double bytes);

  std::vector<std::pair<RegionId, RegionState>> regions_;  // first-touch order
};

}  // namespace aegis::sim
