#include "sim/instruction_block.hpp"

#include "sim/uarch_state.hpp"

namespace aegis::sim {

InstructionBlock InstructionBlock::scaled(double f) const {
  InstructionBlock b = *this;
  for (std::size_t i = 0; i < b.class_counts.size(); ++i) {
    b.class_counts.at_index(i) *= f;
  }
  b.uops *= f;
  b.read_bytes *= f;
  b.write_bytes *= f;
  b.flush_bytes *= f;
  b.serialize_count *= f;
  return b;
}

InstructionBlock InstructionBlock::from_variant(const isa::InstructionVariant& v,
                                                double reps, RegionId region) {
  InstructionBlock b;
  b.region = region;
  b.class_counts[v.iclass] = reps;
  b.uops = reps * v.micro_ops;
  if (v.has_memory_operand) {
    const double bytes = reps * v.mem_bytes;
    if (v.iclass == isa::InstructionClass::kCacheFlush) {
      // clflush touches no data; it evicts one line per execution.
      b.flush_bytes = reps * MicroArchState::kLineBytes;
    } else if (v.is_store) {
      b.write_bytes = bytes;
    } else {
      b.read_bytes = bytes;
    }
  }
  if (v.iclass == isa::InstructionClass::kSerialize) b.serialize_count = reps;
  if (v.iclass == isa::InstructionClass::kBranch ||
      v.iclass == isa::InstructionClass::kCall) {
    // Gadget branches test uninitialized scratch data, so their outcomes
    // are data-random: this is what lets the fuzzer find gadgets for
    // branch-mispredict events.
    b.branch_entropy = 0.5;
  }
  // The fuzzer's code page is tiny and sequentially accessed.
  b.locality = 1.0;
  return b;
}

InstructionBlock& InstructionBlock::operator+=(const InstructionBlock& o) {
  for (std::size_t i = 0; i < class_counts.size(); ++i) {
    class_counts.at_index(i) += o.class_counts.at_index(i);
  }
  uops += o.uops;
  read_bytes += o.read_bytes;
  write_bytes += o.write_bytes;
  flush_bytes += o.flush_bytes;
  serialize_count += o.serialize_count;
  flush_all = flush_all || o.flush_all;
  return *this;
}

}  // namespace aegis::sim
