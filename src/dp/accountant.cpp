#include "dp/accountant.hpp"

#include <cmath>

namespace aegis::dp {

void PrivacyAccountant::record_release(double epsilon) noexcept {
  if (epsilon <= 0.0) return;
  ++releases_;
  basic_epsilon_ += epsilon;
}

double PrivacyAccountant::advanced_epsilon(double delta) const noexcept {
  if (releases_ == 0) return 0.0;
  const double mean_epsilon = basic_epsilon_ / static_cast<double>(releases_);
  return advanced_composition(mean_epsilon, releases_, delta);
}

void PrivacyAccountant::reset() noexcept {
  releases_ = 0;
  basic_epsilon_ = 0.0;
}

double PrivacyAccountant::advanced_composition(double epsilon, std::size_t k,
                                               double delta) noexcept {
  if (k == 0 || epsilon <= 0.0) return 0.0;
  if (delta <= 0.0 || delta >= 1.0) delta = 1e-6;
  const double kd = static_cast<double>(k);
  return epsilon * std::sqrt(2.0 * kd * std::log(1.0 / delta)) +
         kd * epsilon * (std::exp(epsilon) - 1.0);
}

}  // namespace aegis::dp
