#include "dp/accountant.hpp"

#include <algorithm>
#include <cmath>

namespace aegis::dp {

namespace {

double sanitize_delta(double delta) noexcept {
  return (delta <= 0.0 || delta >= 1.0) ? 1e-6 : delta;
}

/// eps (e^eps - 1): the per-release additive term of advanced composition.
double overhead_term(double epsilon) noexcept {
  return epsilon * (std::exp(epsilon) - 1.0);
}

}  // namespace

void PrivacyAccountant::record_release(double epsilon) noexcept {
  record_releases(epsilon, 1);
}

void PrivacyAccountant::record_releases(double epsilon,
                                        std::size_t k) noexcept {
  if (epsilon <= 0.0 || k == 0) return;
  const double kd = static_cast<double>(k);
  releases_ += k;
  basic_epsilon_ += kd * epsilon;
  sum_squares_ += kd * epsilon * epsilon;
  overhead_sum_ += kd * overhead_term(epsilon);
}

double PrivacyAccountant::advanced_epsilon(double delta) const noexcept {
  if (releases_ == 0) return 0.0;
  return std::sqrt(2.0 * std::log(1.0 / sanitize_delta(delta)) * sum_squares_) +
         overhead_sum_;
}

double PrivacyAccountant::advanced_epsilon_if(double epsilon, std::size_t k,
                                              double delta) const noexcept {
  double squares = sum_squares_;
  double overhead = overhead_sum_;
  if (epsilon > 0.0 && k > 0) {
    const double kd = static_cast<double>(k);
    squares += kd * epsilon * epsilon;
    overhead += kd * overhead_term(epsilon);
  }
  if (squares <= 0.0) return 0.0;
  return std::sqrt(2.0 * std::log(1.0 / sanitize_delta(delta)) * squares) +
         overhead;
}

double PrivacyAccountant::remaining(double budget, double delta) const noexcept {
  return std::max(0.0, budget - advanced_epsilon(delta));
}

void PrivacyAccountant::reset() noexcept {
  releases_ = 0;
  basic_epsilon_ = 0.0;
  sum_squares_ = 0.0;
  overhead_sum_ = 0.0;
}

double PrivacyAccountant::advanced_composition(double epsilon, std::size_t k,
                                               double delta) noexcept {
  if (k == 0 || epsilon <= 0.0) return 0.0;
  const double kd = static_cast<double>(k);
  return epsilon * std::sqrt(2.0 * kd * std::log(1.0 / sanitize_delta(delta))) +
         kd * overhead_term(epsilon);
}

}  // namespace aegis::dp
