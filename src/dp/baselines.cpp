#include "dp/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "dp/dstar.hpp"
#include "dp/laplace.hpp"

namespace aegis::dp {

UniformRandomMechanism::UniformRandomMechanism(double bound, std::uint64_t seed)
    : bound_(bound), rng_(seed) {
  if (bound < 0.0) {
    throw std::invalid_argument("UniformRandomMechanism: bound must be >= 0");
  }
}

// aegis-rng: stream(baselines-noisy-value)
double UniformRandomMechanism::noisy_value(double x_t) {
  return x_t + rng_.uniform(0.0, bound_);
}

ConstantOutputMechanism::ConstantOutputMechanism(double level) : level_(level) {}

double ConstantOutputMechanism::noisy_value(double x_t) {
  return std::max(x_t, level_);
}

std::unique_ptr<NoiseMechanism> make_mechanism(const MechanismConfig& config) {
  switch (config.kind) {
    case MechanismKind::kLaplace:
      return std::make_unique<LaplaceMechanism>(config.epsilon,
                                                config.sensitivity, config.seed);
    case MechanismKind::kDStar:
      return std::make_unique<DStarMechanism>(config.epsilon, config.seed);
    case MechanismKind::kUniformRandom:
      return std::make_unique<UniformRandomMechanism>(config.uniform_bound,
                                                      config.seed);
    case MechanismKind::kConstantOutput:
      return std::make_unique<ConstantOutputMechanism>(config.constant_level);
  }
  throw std::invalid_argument("make_mechanism: unknown kind");
}

}  // namespace aegis::dp
