// Differential-privacy noise mechanisms (paper Section VII-B).
//
// A mechanism maps the monitored HPC series x[1..T] (normalized units) to a
// noisy series x~[1..T]; the Event Obfuscator realizes x~[t] - x[t] as
// injected instruction gadgets. Two DP mechanisms (Laplace: eps-DP, d*:
// (d*, 2eps)-privacy) plus the two non-DP baselines the paper compares
// against in Section IX-A (uniform random noise, constant-output padding).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

namespace aegis::dp {

class NoiseMechanism {
 public:
  virtual ~NoiseMechanism() = default;

  /// Consumes the true value x_t of the protected series at the next time
  /// step (t = 1, 2, ...) and returns the noisy value x~_t.
  virtual double noisy_value(double x_t) = 0;

  /// Restarts the series (t back to 1, history cleared).
  virtual void reset() = 0;

  virtual std::string_view name() const noexcept = 0;
};

enum class MechanismKind : unsigned char {
  kLaplace,
  kDStar,
  kUniformRandom,   // baseline: Section IX-A "Random noise"
  kConstantOutput,  // baseline: Section IX-A "Constant HPC output"
};

std::string_view to_string(MechanismKind k) noexcept;

struct MechanismConfig {
  MechanismKind kind = MechanismKind::kLaplace;
  double epsilon = 1.0;       // privacy budget (Laplace, d*)
  double sensitivity = 1.0;   // Delta_x[t]; 1 after normalization
  double uniform_bound = 1.0; // random-noise baseline: noise ~ U[0, bound]
  double constant_level = 1.0;// constant-output baseline: the peak p
  std::uint64_t seed = 1;
};

/// Factory over MechanismKind.
std::unique_ptr<NoiseMechanism> make_mechanism(const MechanismConfig& config);

}  // namespace aegis::dp
