// Privacy-budget accounting across a protection session.
//
// The Laplace mechanism gives eps-DP PER SLICE (Theorem 1); a monitoring
// window of T slices therefore composes. The accountant tracks the
// cumulative budget under two standard bounds so a deployment can reason
// about session-level privacy:
//   * basic (sequential) composition: eps_total = sum of per-release eps;
//   * advanced composition (Dwork–Rothblum–Vadhan): for k releases at eps
//     each and slack delta,
//       eps_total = eps * sqrt(2 k ln(1/delta)) + k eps (e^eps - 1),
//     which is far tighter for small eps and large k.
// The d* mechanism's guarantee is already series-level ((d*, 2 eps) over
// the whole trace, Theorem 2) and does not compose per slice.
#pragma once

#include <cstddef>

namespace aegis::dp {

class PrivacyAccountant {
 public:
  /// Records one eps-DP release (one protected monitoring slice).
  void record_release(double epsilon) noexcept;

  std::size_t releases() const noexcept { return releases_; }

  /// Basic sequential composition: the sum of recorded epsilons.
  double basic_epsilon() const noexcept { return basic_epsilon_; }

  /// Advanced composition over the recorded releases, treating them as k
  /// releases at the mean epsilon, with the given delta slack.
  double advanced_epsilon(double delta) const noexcept;

  void reset() noexcept;

  /// The standalone advanced-composition bound for k releases at `epsilon`.
  static double advanced_composition(double epsilon, std::size_t k,
                                     double delta) noexcept;

 private:
  std::size_t releases_ = 0;
  double basic_epsilon_ = 0.0;
};

}  // namespace aegis::dp
