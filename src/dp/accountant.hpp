// Privacy-budget accounting across a protection session.
//
// The Laplace mechanism gives eps-DP PER SLICE (Theorem 1); a monitoring
// window of T slices therefore composes. The accountant tracks the
// cumulative budget under two standard bounds so a deployment can reason
// about session-level privacy:
//   * basic (sequential) composition: eps_total = sum of per-release eps;
//   * advanced composition (Dwork–Rothblum–Vadhan), in its heterogeneous
//     form: for releases at eps_1..eps_k and slack delta,
//       eps_total = sqrt(2 ln(1/delta) sum_i eps_i^2)
//                   + sum_i eps_i (e^{eps_i} - 1).
//     For k releases at a common eps this reduces to the familiar
//       eps sqrt(2 k ln(1/delta)) + k eps (e^eps - 1),
//     which is far tighter than basic for small eps and large k. The
//     accountant tracks the exact per-release sum of squares (and the
//     sum of eps_i (e^{eps_i} - 1) overhead terms), so mixing release
//     granularities — as the service's BudgetGovernor does when it
//     degrades a tenant to coarser slices — is accounted exactly rather
//     than approximated through the mean epsilon.
// The d* mechanism's guarantee is already series-level ((d*, 2 eps) over
// the whole trace, Theorem 2) and does not compose per slice.
#pragma once

#include <cstddef>

namespace aegis::dp {

class PrivacyAccountant {
 public:
  /// Records one eps-DP release (one protected monitoring slice).
  void record_release(double epsilon) noexcept;

  /// Records k releases at the same epsilon (one admitted monitoring
  /// window). Equivalent to k record_release calls.
  void record_releases(double epsilon, std::size_t k) noexcept;

  std::size_t releases() const noexcept { return releases_; }

  /// Basic sequential composition: the sum of recorded epsilons.
  double basic_epsilon() const noexcept { return basic_epsilon_; }

  /// Heterogeneous advanced composition over the exact recorded releases
  /// with the given delta slack.
  double advanced_epsilon(double delta) const noexcept;

  /// Advanced-composition epsilon IF k further releases at `epsilon` were
  /// recorded on top of the current history. The BudgetGovernor uses this
  /// to decide admission without mutating the accountant.
  double advanced_epsilon_if(double epsilon, std::size_t k,
                             double delta) const noexcept;

  /// Budget left under advanced composition: max(0, budget -
  /// advanced_epsilon(delta)). The admission controller refuses new
  /// monitoring windows once this reaches zero.
  double remaining(double budget, double delta) const noexcept;

  void reset() noexcept;

  /// The standalone advanced-composition bound for k releases at `epsilon`.
  static double advanced_composition(double epsilon, std::size_t k,
                                     double delta) noexcept;

 private:
  std::size_t releases_ = 0;
  double basic_epsilon_ = 0.0;
  double sum_squares_ = 0.0;     // sum of eps_i^2
  double overhead_sum_ = 0.0;    // sum of eps_i (e^{eps_i} - 1)
};

}  // namespace aegis::dp
