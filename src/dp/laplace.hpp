// Laplace mechanism: x~[t] = x[t] + Lap(Delta / eps).
//
// Theorem 1 (paper): this satisfies eps-DP per time slice. Proof sketch,
// reproduced from the paper: for adjacent values x[t], x[t]' with
// |x[t]-x[t]'| <= Delta,
//   P(A(x[t]) = Z) / P(A(x[t]') = Z)
//     = exp(eps (|r - x[t]'| - |r - x[t]|) / Delta) <= exp(eps).
// The ratio bound is verified numerically by a property test
// (tests/dp_test.cpp).
#pragma once

#include "dp/mechanism.hpp"
#include "util/rng.hpp"

namespace aegis::dp {

class LaplaceMechanism final : public NoiseMechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity, std::uint64_t seed);

  double noisy_value(double x_t) override;
  void reset() override;
  std::string_view name() const noexcept override { return "Laplace"; }

  double epsilon() const noexcept { return epsilon_; }
  double scale() const noexcept { return sensitivity_ / epsilon_; }

 private:
  double epsilon_;
  double sensitivity_;
  util::Rng rng_;
};

}  // namespace aegis::dp
