#include "dp/laplace.hpp"

#include <stdexcept>

namespace aegis::dp {

std::string_view to_string(MechanismKind k) noexcept {
  switch (k) {
    case MechanismKind::kLaplace: return "Laplace";
    case MechanismKind::kDStar: return "d*";
    case MechanismKind::kUniformRandom: return "UniformRandom";
    case MechanismKind::kConstantOutput: return "ConstantOutput";
  }
  return "?";
}

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity,
                                   std::uint64_t seed)
    : epsilon_(epsilon), sensitivity_(sensitivity), rng_(seed) {
  if (epsilon <= 0.0 || sensitivity <= 0.0) {
    throw std::invalid_argument("LaplaceMechanism: epsilon and sensitivity must be > 0");
  }
}

// aegis-rng: stream(laplace-noisy-value)
double LaplaceMechanism::noisy_value(double x_t) {
  return x_t + rng_.laplace(0.0, scale());
}

void LaplaceMechanism::reset() {}  // i.i.d. noise; no per-series state

}  // namespace aegis::dp
