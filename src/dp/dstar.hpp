// d* mechanism (paper Section VII-B, after Chan et al. and Xiao et al.).
//
// For the metric d*(x, x') = sum_t |(x[t]-x[t-1]) - (x'[t]-x'[t-1])|, the
// mechanism releases
//     x~[t] = x~[G(t)] + (x[t] - x[G(t)]) + r_t
// with the binary-tree index map
//     G(t) = 0          if t = 1
//          = t/2        if t = D(t) >= 2          (Eq. 4)
//          = t - D(t)   if t > D(t)
// where D(t) is the largest power of two dividing t, and
//     r_t ~ Lap(1/eps)                 if t = D(t)  (Eq. 5)
//         ~ Lap(floor(log2 t) / eps)   otherwise.
// Theorem 2: the released series satisfies (d*, 2 eps)-privacy.
#pragma once

#include <vector>

#include "dp/mechanism.hpp"
#include "util/rng.hpp"

namespace aegis::dp {

/// Largest power of two dividing t (t >= 1).
std::uint64_t largest_dividing_pow2(std::uint64_t t) noexcept;

/// The Eq. 4 tree parent index G(t) (t >= 1).
std::uint64_t dstar_parent(std::uint64_t t) noexcept;

class DStarMechanism final : public NoiseMechanism {
 public:
  DStarMechanism(double epsilon, std::uint64_t seed);

  double noisy_value(double x_t) override;
  void reset() override;
  std::string_view name() const noexcept override { return "d*"; }

  double epsilon() const noexcept { return epsilon_; }

 private:
  double epsilon_;
  util::Rng rng_;
  // 1-indexed histories; index 0 holds the virtual origin x[0] = x~[0] = 0.
  std::vector<double> x_;
  std::vector<double> noisy_;
};

}  // namespace aegis::dp
