#include "dp/dstar.hpp"

#include <cmath>
#include <stdexcept>

namespace aegis::dp {

std::uint64_t largest_dividing_pow2(std::uint64_t t) noexcept {
  return t == 0 ? 0 : (t & (~t + 1));  // lowest set bit
}

std::uint64_t dstar_parent(std::uint64_t t) noexcept {
  if (t <= 1) return 0;
  const std::uint64_t d = largest_dividing_pow2(t);
  if (t == d) return t / 2;   // t is a power of two
  return t - d;               // t > D(t)
}

DStarMechanism::DStarMechanism(double epsilon, std::uint64_t seed)
    : epsilon_(epsilon), rng_(seed) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("DStarMechanism: epsilon must be > 0");
  }
  reset();
}

void DStarMechanism::reset() {
  x_.assign(1, 0.0);      // x[0] = 0
  noisy_.assign(1, 0.0);  // x~[0] = 0
}

// aegis-rng: stream(dstar-noisy-value)
double DStarMechanism::noisy_value(double x_t) {
  const std::uint64_t t = x_.size();  // next index (1-based)
  x_.push_back(x_t);
  const std::uint64_t d = largest_dividing_pow2(t);
  double scale;
  if (t == d) {
    scale = 1.0 / epsilon_;
  } else {
    const double log2_t = std::floor(std::log2(static_cast<double>(t)));
    scale = log2_t / epsilon_;
  }
  const double r_t = rng_.laplace(0.0, scale);
  const std::uint64_t g = dstar_parent(t);
  const double value = noisy_[g] + (x_t - x_[g]) + r_t;
  noisy_.push_back(value);
  return value;
}

}  // namespace aegis::dp
