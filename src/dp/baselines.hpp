// Non-DP obfuscation baselines from the paper's Section IX-A discussion:
//   * UniformRandomMechanism — add noise ~ U[0, bound]; no privacy proof,
//     and (Fig. 11) needs ~4.37x more noise than Laplace for the same
//     attack suppression;
//   * ConstantOutputMechanism — pad every slice up to the peak value p so
//     the observed series is flat; ~18x more injected counts than Laplace.
#pragma once

#include "dp/mechanism.hpp"
#include "util/rng.hpp"

namespace aegis::dp {

class UniformRandomMechanism final : public NoiseMechanism {
 public:
  UniformRandomMechanism(double bound, std::uint64_t seed);

  double noisy_value(double x_t) override;
  void reset() override {}
  std::string_view name() const noexcept override { return "UniformRandom"; }
  double bound() const noexcept { return bound_; }

 private:
  double bound_;
  util::Rng rng_;
};

class ConstantOutputMechanism final : public NoiseMechanism {
 public:
  /// `level` is the peak value p; output is max(x_t, level).
  explicit ConstantOutputMechanism(double level);

  double noisy_value(double x_t) override;
  void reset() override {}
  std::string_view name() const noexcept override { return "ConstantOutput"; }
  double level() const noexcept { return level_; }

 private:
  double level_;
};

}  // namespace aegis::dp
