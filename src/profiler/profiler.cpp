#include "profiler/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "trace/pca.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/idle.hpp"

namespace aegis::profiler {

namespace {

// Domain-separation salts for the per-group shard streams (see the
// determinism contract in DESIGN.md "Parallel campaign").
constexpr std::uint64_t kWarmupSalt = 0x3A2250F11E2ULL;
constexpr std::uint64_t kRankSalt = 0x4A11ULL;

}  // namespace

ApplicationProfiler::ApplicationProfiler(const pmu::EventDatabase& db,
                                         ProfilerConfig config)
    : db_(&db), config_(config) {}

// aegis-rng: stream(profiler-warmup)
WarmupReport ApplicationProfiler::warmup(const workload::Workload& application) {
  // aegis-lint: clock-ok(reporting-only: WarmupReport::wall_seconds)
  const auto start = std::chrono::steady_clock::now();
  WarmupReport report;
  report.total_events = db_->size();
  report.before_by_type = db_->count_by_type();

  const workload::IdleWorkload idle(config_.warmup_slices);
  constexpr std::size_t kGroup = pmu::EventDatabase::kNumCounters;
  const std::size_t group_count = (db_->size() + kGroup - 1) / kGroup;

  // One shard per counter group; survivors land in index-keyed slots and
  // are merged in group order, so the report is identical for any worker
  // count (and identical to a serial run).
  std::vector<std::vector<std::uint32_t>> surviving(group_count);
  telemetry::Registry& tel = telemetry::resolve(config_.telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "profiler.warmup", "profiler", 0,
                              group_count);
  util::ThreadPool pool(config_.num_threads);
  pool.parallel_for(group_count, [&](std::size_t g) {
    telemetry::ScopedSpan span(tel.spans(), "profiler.warmup.group",
                               "profiler", static_cast<std::uint32_t>(g));
    util::Rng rng(util::split_mix64(config_.seed ^ kWarmupSalt, g));
    std::vector<std::uint32_t> group;
    const std::uint32_t base = static_cast<std::uint32_t>(g * kGroup);
    for (std::uint32_t id = base; id < db_->size() && id < base + kGroup; ++id) {
      group.push_back(id);
    }
    // Repeat the idle/active comparison; the median change decides, which
    // averages out interrupt noise and host background (C2).
    std::vector<std::vector<double>> rel_changes(group.size());
    std::vector<std::vector<double>> abs_changes(group.size());
    for (std::size_t rep = 0; rep < config_.warmup_repeats; ++rep) {
      sim::VirtualMachine idle_vm(config_.vm, rng.next_u64());
      sim::HostMonitor idle_monitor(*db_, rng.next_u64());
      const std::vector<double> idle_counts = idle_monitor.totals(
          idle_vm, idle.visit(rng.next_u64()), group, config_.warmup_slices);

      sim::VirtualMachine active_vm(config_.vm, rng.next_u64());
      sim::HostMonitor active_monitor(*db_, rng.next_u64());
      const std::vector<double> active_counts = active_monitor.totals(
          active_vm, application.visit(rng.next_u64()), group,
          config_.warmup_slices);

      for (std::size_t e = 0; e < group.size(); ++e) {
        const double diff = std::abs(active_counts[e] - idle_counts[e]);
        const double base_count = std::max(idle_counts[e], 1.0);
        rel_changes[e].push_back(diff / base_count);
        abs_changes[e].push_back(diff);
      }
    }
    for (std::size_t e = 0; e < group.size(); ++e) {
      if (util::median(rel_changes[e]) > config_.warmup_rel_change &&
          util::median(abs_changes[e]) > config_.warmup_abs_change) {
        surviving[g].push_back(group[e]);
      }
    }
  });
  for (const auto& shard : surviving) {
    report.surviving.insert(report.surviving.end(), shard.begin(), shard.end());
  }

  for (std::uint32_t id : report.surviving) {
    ++report.after_by_type[static_cast<std::size_t>(db_->by_id(id).type)];
  }
  report.wall_seconds =
      // aegis-lint: clock-ok(reporting-only: WarmupReport::wall_seconds)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

// aegis-rng: stream(profiler-rank)
std::vector<EventRank> ApplicationProfiler::rank(
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const std::vector<std::uint32_t>& event_ids) {
  constexpr std::size_t kGroup = pmu::EventDatabase::kNumCounters;
  const std::size_t group_count = (event_ids.size() + kGroup - 1) / kGroup;
  std::vector<std::vector<EventRank>> per_group(group_count);

  telemetry::Registry& tel = telemetry::resolve(config_.telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "profiler.rank", "profiler", 0,
                              group_count);
  util::ThreadPool pool(config_.num_threads);
  pool.parallel_for(group_count, [&](std::size_t g) {
    telemetry::ScopedSpan span(tel.spans(), "profiler.rank.group", "profiler",
                               static_cast<std::uint32_t>(g));
    util::Rng rng(util::split_mix64(config_.seed ^ kRankSalt, g));
    const std::size_t base = g * kGroup;
    std::vector<std::uint32_t> group(
        event_ids.begin() + static_cast<std::ptrdiff_t>(base),
        event_ids.begin() +
            static_cast<std::ptrdiff_t>(std::min(event_ids.size(), base + kGroup)));

    // One run yields a trace for all 4 events of the group at once.
    // pooled[e][s] = per-run pooled series for event e under secret s.
    std::vector<std::vector<std::vector<std::vector<double>>>> pooled(
        group.size(),
        std::vector<std::vector<std::vector<double>>>(secrets.size()));
    for (std::size_t s = 0; s < secrets.size(); ++s) {
      for (std::size_t run = 0; run < config_.ranking_runs_per_secret; ++run) {
        sim::VirtualMachine vm(config_.vm, rng.next_u64());
        sim::HostMonitor monitor(*db_, rng.next_u64());
        sim::MonitorResult r =
            monitor.monitor(vm, secrets[s]->visit(rng.next_u64()), group,
                            secrets[s]->trace_slices());
        trace::Trace t;
        t.samples = std::move(r.samples);  // last use; avoids a deep copy
        const std::vector<double> all =
            t.window_features(config_.feature_windows);
        const std::size_t w = all.size() / group.size();
        for (std::size_t e = 0; e < group.size(); ++e) {
          pooled[e][s].emplace_back(all.begin() + static_cast<std::ptrdiff_t>(e * w),
                                    all.begin() + static_cast<std::ptrdiff_t>((e + 1) * w));
        }
      }
    }

    for (std::size_t e = 0; e < group.size(); ++e) {
      // PCA over every run of this event, then per-secret Gaussian fits.
      std::vector<std::vector<double>> flat;
      for (const auto& per_secret : pooled[e]) {
        flat.insert(flat.end(), per_secret.begin(), per_secret.end());
      }
      trace::Pca pca;
      pca.fit(flat, 1);
      std::vector<std::vector<double>> values_by_secret(secrets.size());
      for (std::size_t s = 0; s < secrets.size(); ++s) {
        for (const auto& feat : pooled[e][s]) {
          values_by_secret[s].push_back(pca.first_component(feat));
        }
      }
      const trace::SecretGaussianModel model =
          trace::SecretGaussianModel::fit(values_by_secret);
      per_group[g].push_back(
          EventRank{group[e], trace::mutual_information_eq1(model)});
    }
  });

  std::vector<EventRank> ranks;
  ranks.reserve(event_ids.size());
  for (const auto& shard : per_group) {
    ranks.insert(ranks.end(), shard.begin(), shard.end());
  }
  std::sort(ranks.begin(), ranks.end(), [](const EventRank& a, const EventRank& b) {
    return a.mutual_information > b.mutual_information;
  });
  return ranks;
}

double ApplicationProfiler::warmup_time_hours(std::size_t total_events,
                                              double t_w_seconds,
                                              std::size_t counters) {
  return static_cast<double>(total_events) * t_w_seconds * 2.0 /
         static_cast<double>(counters) / 3600.0;
}

double ApplicationProfiler::ranking_time_hours(std::size_t surviving_events,
                                               std::size_t secrets,
                                               std::size_t runs,
                                               double t_p_seconds,
                                               std::size_t counters) {
  return static_cast<double>(surviving_events) * static_cast<double>(secrets) *
         static_cast<double>(runs) * t_p_seconds /
         static_cast<double>(counters) / 3600.0;
}

}  // namespace aegis::profiler
