// Application Profiler (paper Section V): finds the HPC events that leak a
// given application's secrets.
//
// Two stages, both performed on a template server with host privileges:
//   * warm-up profiling — compares every available event's counts between
//     an idle guest and the running application (4 events per run, the
//     counter-register limit; repeated 5x to tame non-determinism) and
//     drops events with no change: less than 10 % of events survive;
//   * event ranking — per surviving event, collects m leakage traces per
//     customer-specified secret, compresses each trace to a scalar with
//     PCA, fits a per-secret Gaussian (Fig. 3) and scores the event by the
//     Eq. 1 mutual information between secret and feature value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pmu/event_database.hpp"
#include "sim/host_monitor.hpp"
#include "trace/gaussian.hpp"
#include "workload/workload.hpp"

namespace aegis::telemetry {
class Registry;
}

namespace aegis::profiler {

struct ProfilerConfig {
  std::size_t warmup_slices = 120;      // t_w as monitoring slices
  std::size_t warmup_repeats = 5;       // paper: 5 repeated warm-up passes
  double warmup_rel_change = 0.30;      // median relative change to survive
  double warmup_abs_change = 30.0;      // and a minimum absolute change
  std::size_t ranking_runs_per_secret = 10;  // m (paper: 100)
  std::size_t feature_windows = 24;     // pre-PCA temporal pooling
  std::uint64_t seed = 11;
  sim::VmConfig vm;
  /// Workers for warm-up and ranking trace collection (0 = hardware
  /// concurrency). One shard per 4-event counter group; each shard derives
  /// its RNG stream from split_mix64(seed, group), so reports are
  /// bit-identical for every thread count.
  std::size_t num_threads = 0;
  /// Span/metric sink for warm-up and ranking (null = telemetry::Registry::
  /// global()). Purely observational; excluded from config fingerprints.
  telemetry::Registry* telemetry = nullptr;
};

struct WarmupReport {
  std::vector<std::uint32_t> surviving;  // guest-activity-coupled events
  std::size_t total_events = 0;
  /// Per Table II type: [before, after] counts.
  std::array<std::size_t, pmu::kNumEventTypes> before_by_type{};
  std::array<std::size_t, pmu::kNumEventTypes> after_by_type{};
  double wall_seconds = 0.0;
};

struct EventRank {
  std::uint32_t event_id = 0;
  double mutual_information = 0.0;  // bits, Eq. 1
};

class ApplicationProfiler {
 public:
  ApplicationProfiler(const pmu::EventDatabase& db, ProfilerConfig config);

  /// Warm-up filtering of the full event list against one representative
  /// application run.
  WarmupReport warmup(const workload::Workload& application);

  /// Ranks `event_ids` by Eq. 1 mutual information against the secret set
  /// (one workload per secret). Sorted descending.
  std::vector<EventRank> rank(
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      const std::vector<std::uint32_t>& event_ids);

  /// Section VIII-A cost model: T_W = (M * t_w * 2) / C, in hours.
  static double warmup_time_hours(std::size_t total_events, double t_w_seconds,
                                  std::size_t counters);
  /// T_P = (N * S * runs * t_p) / C, in hours.
  static double ranking_time_hours(std::size_t surviving_events,
                                   std::size_t secrets, std::size_t runs,
                                   double t_p_seconds, std::size_t counters);

 private:
  const pmu::EventDatabase* db_;
  ProfilerConfig config_;
};

}  // namespace aegis::profiler
