#include "seceval/seceval.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "attack/ksa.hpp"
#include "attack/retrainable.hpp"
#include "attack/slice_step.hpp"
#include "attack/wfa.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace aegis::seceval {
namespace {

bool is_laplace(DefenseKind kind) noexcept {
  return kind == DefenseKind::kLaplaceFixed ||
         kind == DefenseKind::kLaplaceRotating;
}

bool is_rotating(DefenseKind kind) noexcept {
  return kind == DefenseKind::kLaplaceRotating ||
         kind == DefenseKind::kDStarRotating;
}

bool is_adaptive(AttackerKind kind) noexcept {
  return kind != AttackerKind::kStaticWfa;
}

// The nightly ε sweep: 2^-5 (strong privacy) .. 2^3 (weak).
constexpr double kEpsilons[] = {0.03125, 0.25, 1.0, 8.0};

}  // namespace

std::string_view to_string(AttackerKind kind) noexcept {
  switch (kind) {
    case AttackerKind::kStaticWfa: return "static_wfa";
    case AttackerKind::kAdaptiveWfa: return "adaptive_wfa";
    case AttackerKind::kAdaptiveKsa: return "adaptive_ksa";
    case AttackerKind::kSliceStepWfa: return "slice_step_wfa";
    case AttackerKind::kFusionWfa: return "fusion_wfa";
  }
  return "unknown";
}

std::string_view to_string(DefenseKind kind) noexcept {
  switch (kind) {
    case DefenseKind::kLaplaceFixed: return "laplace_fixed";
    case DefenseKind::kLaplaceRotating: return "laplace_rotating";
    case DefenseKind::kDStarFixed: return "dstar_fixed";
    case DefenseKind::kDStarRotating: return "dstar_rotating";
  }
  return "unknown";
}

std::uint64_t cell_key(const CellSpec& spec) noexcept {
  std::uint64_t key = util::fnv1a("seceval.cell");
  key = util::hash_combine(key, static_cast<std::uint64_t>(spec.attacker));
  key = util::hash_combine(key, static_cast<std::uint64_t>(spec.defense));
  key = util::hash_combine(key, spec.epsilon);
  return key;
}

std::vector<CellSpec> full_matrix() {
  std::vector<CellSpec> cells;
  for (AttackerKind attacker : kAllAttackers) {
    for (DefenseKind defense : kAllDefenses) {
      for (double epsilon : kEpsilons) {
        cells.push_back(CellSpec{attacker, defense, epsilon});
      }
    }
  }
  return cells;
}

std::vector<CellSpec> smoke_matrix() {
  using A = AttackerKind;
  using D = DefenseKind;
  // One row per regression the gate must catch cheaply: the Fig. 9b
  // adaptive-vs-mechanism split (Laplace folds, d* holds), rotation
  // non-regression, the static baseline, and one cell per exotic attacker.
  return {
      CellSpec{A::kAdaptiveWfa, D::kLaplaceFixed, 0.25},
      CellSpec{A::kAdaptiveWfa, D::kLaplaceFixed, 1.0},
      CellSpec{A::kAdaptiveWfa, D::kDStarFixed, 0.25},
      CellSpec{A::kAdaptiveWfa, D::kDStarFixed, 1.0},
      CellSpec{A::kAdaptiveWfa, D::kDStarRotating, 0.25},
      CellSpec{A::kAdaptiveWfa, D::kDStarRotating, 1.0},
      CellSpec{A::kStaticWfa, D::kDStarFixed, 1.0},
      CellSpec{A::kAdaptiveKsa, D::kDStarFixed, 1.0},
      CellSpec{A::kSliceStepWfa, D::kDStarFixed, 1.0},
      CellSpec{A::kFusionWfa, D::kDStarFixed, 1.0},
  };
}

SecurityHarness::SecurityHarness(HarnessConfig config)
    : config_(config), engine_(config.cpu) {
  attack::WfaScale wfa_scale;
  wfa_scale.sites = config_.scale.sites;
  wfa_scale.slices = config_.scale.slices;
  wfa_scale.traces_per_site = config_.scale.traces_per_secret;
  wfa_scale.epochs = config_.scale.epochs;
  const auto secrets = attack::make_wfa_secrets(wfa_scale);

  core::OfflineConfig offline =
      core::make_quick_offline_config(11, config_.num_threads);
  offline.profiler.ranking_runs_per_secret = 5;
  offline.fuzzer.reset_sample = 40;
  offline.fuzzer.trigger_sample = 40;
  offline.fuzz_top_events = 0;
  offline.set_telemetry(config_.telemetry);
  analysis_ = engine_.analyze(*secrets.front(), secrets, offline);

  // The attacked counter set is a backend query: the paper's AMD picks on
  // EPYC (kAmdAttackEvents, unchanged), the Xeon E5 equivalents on Intel.
  attack_events_ = engine_.backend().attack_events();
  // Fusion group: the 4 named attack events plus the next top-ranked events
  // not already among them — a second multiplexed counter group, reaching
  // signals the cover may not protect.
  fusion_events_ = attack_events_;
  for (const auto& rank : analysis_.ranking) {
    if (fusion_events_.size() >= 2 * pmu::EventDatabase::kNumCounters) break;
    if (std::find(fusion_events_.begin(), fusion_events_.end(),
                  rank.event_id) == fusion_events_.end()) {
      fusion_events_.push_back(rank.event_id);
    }
  }
}

CellResult SecurityHarness::run_cell(const CellSpec& spec) const {
  const std::uint64_t seed = util::split_mix64(config_.seed, cell_key(spec));
  const HarnessScale& scale = config_.scale;

  // Attacker: secret set + classification config for the cell's class.
  attack::WfaScale wfa_scale;
  wfa_scale.sites = scale.sites;
  wfa_scale.slices = scale.slices;
  wfa_scale.traces_per_site = scale.traces_per_secret;
  wfa_scale.epochs = scale.epochs;

  std::vector<std::unique_ptr<workload::Workload>> secrets;
  attack::ClassificationAttackConfig attack_config;
  switch (spec.attacker) {
    case AttackerKind::kStaticWfa:
    case AttackerKind::kAdaptiveWfa:
      secrets = attack::make_wfa_secrets(wfa_scale);
      attack_config =
          attack::make_wfa_config(attack_events_, wfa_scale, seed ^ 0xA77ULL);
      break;
    case AttackerKind::kSliceStepWfa:
      secrets = attack::make_wfa_secrets(wfa_scale);
      attack_config =
          attack::make_wfa_config(attack_events_, wfa_scale, seed ^ 0xA77ULL);
      attack_config.collection.stepper =
          attack::make_burst_planner(attack::BurstStepPolicy{});
      break;
    case AttackerKind::kFusionWfa:
      secrets = attack::make_wfa_secrets(wfa_scale);
      attack_config =
          attack::make_wfa_config(fusion_events_, wfa_scale, seed ^ 0xA77ULL);
      break;
    case AttackerKind::kAdaptiveKsa: {
      attack::KsaScale ksa_scale;
      ksa_scale.slices = scale.slices;
      ksa_scale.traces_per_count = scale.traces_per_secret;
      ksa_scale.epochs = scale.epochs;
      secrets = attack::make_ksa_secrets(ksa_scale);
      attack_config =
          attack::make_ksa_config(attack_events_, ksa_scale, seed ^ 0xA77ULL);
      break;
    }
  }
  auto shared = std::make_shared<
      const std::vector<std::unique_ptr<workload::Workload>>>(
      std::move(secrets));
  const auto attacker = attack::make_retrainable_classification(
      engine_.database(), std::string(to_string(spec.attacker)), shared,
      std::move(attack_config), scale.visits_per_secret);

  // Defense: obfuscator calibrated against the cell's own secret set.
  dp::MechanismConfig mechanism;
  mechanism.kind = is_laplace(spec.defense) ? dp::MechanismKind::kLaplace
                                            : dp::MechanismKind::kDStar;
  mechanism.epsilon = spec.epsilon;
  core::ObfuscatorBuildOptions options;
  options.rotate = is_rotating(spec.defense);
  const auto obfuscator = engine_.make_obfuscator(analysis_, *shared,
                                                  mechanism, options,
                                                  seed ^ 0x0B5FULL);
  obf::EventObfuscator* obf = obfuscator.get();
  const attack::AgentFactory defense = [obf] { return obf->session(); };

  attacker->retrain(is_adaptive(spec.attacker) ? defense
                                               : attack::AgentFactory{});

  CellResult result;
  result.spec = spec;
  result.attack_accuracy = attacker->exploit(seed ^ 0xE4ULL, defense);
  result.validation_accuracy = attacker->validation_accuracy();
  result.random_guess = attacker->random_guess();
  result.noise_draws = obf->total_noise_draws();
  const double sessions = static_cast<double>(obf->sessions_started());
  result.injected_reps_per_slice =
      sessions > 0.0 ? obf->total_injected_repetitions() /
                           (sessions * static_cast<double>(scale.slices))
                     : 0.0;
  return result;
}

FrontierResult SecurityHarness::run(const std::vector<CellSpec>& cells) const {
  telemetry::Registry& reg = telemetry::resolve(config_.telemetry);
  const telemetry::Counter cells_done =
      reg.metrics().counter("seceval_cells_total");

  std::vector<CellResult> results(cells.size());
  util::ThreadPool pool(config_.num_threads);
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    telemetry::ScopedSpan span(reg.spans(), "seceval.cell", "seceval", 0,
                               static_cast<std::uint64_t>(i));
    results[i] = run_cell(cells[i]);
    cells_done.inc();
  });

  FrontierResult frontier;
  frontier.cells = std::move(results);
  std::sort(frontier.cells.begin(), frontier.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              if (a.spec.attacker != b.spec.attacker) {
                return a.spec.attacker < b.spec.attacker;
              }
              if (a.spec.defense != b.spec.defense) {
                return a.spec.defense < b.spec.defense;
              }
              return a.spec.epsilon < b.spec.epsilon;
            });
  return frontier;
}

}  // namespace aegis::seceval
