// Security-evaluation harness: the adaptive-attacker arms race as a
// regression-gated artifact.
//
// Accuracy-threshold unit tests pin single points; what the defense claims
// is a FRONTIER — attack accuracy as a function of (attacker class,
// defense, privacy budget ε). This module runs that matrix and emits it as
// a deterministic artifact (BENCH_security.json + REPORT_security.md) so CI
// can diff security the way it diffs performance: scripts/bench_compare.py
// --security fails the build when any cell's attack accuracy RISES more
// than 2 points over the committed baseline.
//
// Attacker classes (attack::Retrainable seam):
//   * static        — trains on clean traces, exploits under the defense
//   * adaptive      — retrains on defense-obfuscated traces (paper Fig. 9b)
//   * slice-stepping— adaptive + attacker-chosen sampling boundaries
//                     (SEV-Step spirit; sim::SlicePlanner hook)
//   * fusion        — adaptive + concatenated features from two multiplexed
//                     counter groups (events beyond the protected top-4)
// Defenses: {Laplace, d*} x {fixed plan, rotating plan (obf::RotatingPlan)}.
//
// Determinism contract: a cell's value is a pure function of (harness
// config, cell spec) — the per-cell seed derives from a stable hash of the
// spec itself, NOT from the cell's position in the run list. The smoke
// subset therefore reproduces the full frontier's values bit-for-bit, and
// sharding the matrix across any util::ThreadPool size changes nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/aegis.hpp"
#include "telemetry/registry.hpp"

namespace aegis::seceval {

enum class AttackerKind : unsigned char {
  kStaticWfa,     // Fig. 9a attacker: clean templates
  kAdaptiveWfa,   // Fig. 9b attacker: retrained under the defense
  kAdaptiveKsa,   // adaptive keystroke sniffer
  kSliceStepWfa,  // adaptive + burst-adaptive slice stepping
  kFusionWfa,     // adaptive + 8-event cross-signal fusion
};
inline constexpr AttackerKind kAllAttackers[] = {
    AttackerKind::kStaticWfa,    AttackerKind::kAdaptiveWfa,
    AttackerKind::kAdaptiveKsa,  AttackerKind::kSliceStepWfa,
    AttackerKind::kFusionWfa,
};

enum class DefenseKind : unsigned char {
  kLaplaceFixed,
  kLaplaceRotating,
  kDStarFixed,
  kDStarRotating,
};
inline constexpr DefenseKind kAllDefenses[] = {
    DefenseKind::kLaplaceFixed, DefenseKind::kLaplaceRotating,
    DefenseKind::kDStarFixed,   DefenseKind::kDStarRotating,
};

std::string_view to_string(AttackerKind kind) noexcept;
std::string_view to_string(DefenseKind kind) noexcept;

struct CellSpec {
  AttackerKind attacker = AttackerKind::kAdaptiveWfa;
  DefenseKind defense = DefenseKind::kDStarFixed;
  double epsilon = 1.0;
};

/// Stable identity hash of a cell spec (FNV over the enum values and the
/// ε bit pattern). Seeds derive from this, so a cell's result is the same
/// whether it runs in the smoke subset or the full frontier.
std::uint64_t cell_key(const CellSpec& spec) noexcept;

struct CellResult {
  CellSpec spec;
  double attack_accuracy = 0.0;      // success metric on the victim VM
  double validation_accuracy = 0.0;  // attacker's held-out metric
  double random_guess = 0.0;         // guessing floor of the metric
  double injected_reps_per_slice = 0.0;  // defense overhead proxy
  std::uint64_t noise_draws = 0;     // DP releases the accountant charges
};

/// Matrix sizing. Defaults are tuned so the smoke subset finishes inside a
/// PR-CI budget while the attacks stay strong enough to separate defenses.
struct HarnessScale {
  std::size_t sites = 8;              // WFA classes
  std::size_t traces_per_secret = 10; // template visits per class
  std::size_t slices = 120;           // monitoring window per visit
  std::size_t epochs = 12;            // classifier training epochs
  std::size_t visits_per_secret = 4;  // victim visits per class at exploit
};

struct HarnessConfig {
  HarnessScale scale;
  std::size_t num_threads = 0;  // cell shards; 0 = hardware concurrency
  std::uint64_t seed = 0x5ECE7A1ULL;
  isa::CpuModel cpu = isa::CpuModel::kAmdEpyc7252;
  telemetry::Registry* telemetry = nullptr;  // null = process global
};

struct FrontierResult {
  /// Sorted canonically by (attacker, defense, ε) regardless of run order.
  std::vector<CellResult> cells;
};

/// The committed nightly frontier: every attacker x every defense x
/// ε in {2^-5, 2^-2, 2^0, 2^3}.
std::vector<CellSpec> full_matrix();
/// The PR-CI subset (a strict subset of full_matrix(), identical values).
std::vector<CellSpec> smoke_matrix();

class SecurityHarness {
 public:
  /// Runs the offline pipeline once (profile -> rank -> fuzz -> cover) on
  /// the WFA secret set; every cell reuses the resulting gadget cover.
  explicit SecurityHarness(HarnessConfig config = {});

  /// Shards `cells` across the thread pool. Bit-identical at any worker
  /// count (per-cell seeds come from cell_key, shards merge in index
  /// order, output is canonically sorted).
  FrontierResult run(const std::vector<CellSpec>& cells) const;

  /// One cell, synchronously: builds the defense obfuscator and the
  /// attacker, retrains (adaptively unless the attacker is static), then
  /// exploits fresh victim runs. Pure function of (config, spec).
  CellResult run_cell(const CellSpec& spec) const;

  const core::OfflineResult& analysis() const noexcept { return analysis_; }
  const HarnessConfig& config() const noexcept { return config_; }
  /// The underlying pipeline (tests build extra obfuscators/attacks on the
  /// shared analysis instead of re-running the offline stage).
  const core::Aegis& engine() const noexcept { return engine_; }

 private:
  HarnessConfig config_;
  core::Aegis engine_;
  core::OfflineResult analysis_;
  std::vector<std::uint32_t> attack_events_;  // the paper's 4 AMD events
  std::vector<std::uint32_t> fusion_events_;  // + next ranked, 2 groups
};

/// "2^-5" for exact powers of two, plain decimal otherwise.
std::string format_epsilon(double epsilon);

/// Deterministic machine artifact (BENCH_security.json): byte-exact for a
/// given frontier — golden-tested, diffed by bench_compare.py --security.
void write_frontier_json(const FrontierResult& frontier,
                         const HarnessConfig& config, std::ostream& out);

/// Human-readable companion (REPORT_security.md): one accuracy table per
/// attacker, defenses as columns, ε rows. Also byte-exact.
void write_frontier_report(const FrontierResult& frontier,
                           const HarnessConfig& config, std::ostream& out);

}  // namespace aegis::seceval
