#include "fuzzer/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "fuzzer/parallel_campaign.hpp"
#include "util/thread_pool.hpp"

namespace aegis::fuzzer {

namespace {

// Wall-clock reads here fill FuzzResult::timing only — reporting fields
// that never feed a ranking, seed, or serialized artifact.
double seconds_since(std::chrono::steady_clock::time_point start) {
  // aegis-lint: clock-ok(reporting-only: FuzzResult::timing fields)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

EventFuzzer::EventFuzzer(const pmu::EventDatabase& db,
                         const isa::IsaSpecification& spec, FuzzerConfig config)
    : db_(&db), spec_(&spec), config_(config) {}

const std::vector<std::uint32_t>& EventFuzzer::cleanup() {
  if (!cleaned_.empty()) return cleaned_;
  util::ThreadPool pool(config_.num_threads);
  ParallelCampaign campaign(*db_, *spec_, config_, pool);
  return cleanup_with(campaign);
}

const std::vector<std::uint32_t>& EventFuzzer::cleanup_with(
    const ParallelCampaign& campaign) {
  if (cleaned_.empty()) cleaned_ = campaign.cleanup();
  return cleaned_;
}

// aegis-rng: stream(fuzzer-sample-instructions)
std::vector<std::uint32_t> EventFuzzer::sample_instructions(
    std::size_t count, util::Rng& rng) const {
  if (count == 0 || count >= cleaned_.size()) return cleaned_;
  // Class-stratified sampling: narrow events respond to a single
  // instruction class, so every class present in the cleaned list must be
  // represented in the sample.
  std::unordered_map<int, std::vector<std::uint32_t>> by_class;
  for (std::uint32_t uid : cleaned_) {
    by_class[static_cast<int>(spec_->by_uid(uid).iclass)].push_back(uid);
  }
  std::vector<std::uint32_t> sample;
  sample.reserve(count);
  const std::size_t per_class =
      std::max<std::size_t>(1, count / by_class.size());
  // Int-keyed map filled in deterministic cleaned_ order: for a fixed
  // stdlib the iteration order is a pure function of the key set, and
  // GoldenFuzzer pins the resulting sample (cross-stdlib drift re-pins
  // goldens per EXPERIMENTS.md).
  // aegis-lint: ordered-ok(int keys inserted in fixed order; goldens pin the sample)
  for (auto& [cls, uids] : by_class) {
    rng.shuffle(uids);
    for (std::size_t i = 0; i < per_class && i < uids.size(); ++i) {
      sample.push_back(uids[i]);
    }
  }
  // Top up with uniform picks if stratification undershot.
  while (sample.size() < count) {
    sample.push_back(cleaned_[rng.uniform_index(cleaned_.size())]);
  }
  return sample;
}

// aegis-rng: stream(fuzzer-run)
FuzzResult EventFuzzer::run(const std::vector<std::uint32_t>& event_ids) {
  FuzzResult result;
  util::Rng rng(config_.seed);
  util::ThreadPool pool(config_.num_threads);
  ParallelCampaign campaign(*db_, *spec_, config_, pool);

  // aegis-lint: clock-ok(reporting-only timing field)
  auto t0 = std::chrono::steady_clock::now();
  cleanup_with(campaign);
  result.timing.cleanup_seconds = seconds_since(t0);
  result.cleaned_instructions = cleaned_.size();
  result.total_gadget_space = cleaned_.size() * cleaned_.size();

  // One shared gadget grid for all events: the set-cover stage needs the
  // same gadgets evaluated against every event. Sampling stays on the main
  // thread (one stream, draw order fixed by the sample sizes alone).
  const std::vector<std::uint32_t> resets =
      sample_instructions(config_.reset_sample, rng);
  const std::vector<std::uint32_t> triggers =
      sample_instructions(config_.trigger_sample, rng);

  result.reports.reserve(event_ids.size());
  for (std::uint32_t event_id : event_ids) {
    result.reports.push_back(EventFuzzReport{event_id, 0, {}, {}, {}});
  }

  // --- Step 2: generation + execution, one shard per (group, reset) ---
  // aegis-lint: clock-ok(reporting-only timing field)
  t0 = std::chrono::steady_clock::now();
  GenerationOutput generation = campaign.generate(event_ids, resets, triggers);
  result.executed_gadgets = generation.executed_pairs;
  result.timing.generation_execution_seconds = seconds_since(t0);

  // --- Step 3: confirmation, one shard per event ---
  // aegis-lint: clock-ok(reporting-only timing field)
  t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<ConfirmedGadget>> stable =
      campaign.confirm(event_ids, generation.candidates);
  for (std::size_t e = 0; e < event_ids.size(); ++e) {
    result.reports[e].candidates = generation.candidates[e].size();
    result.reports[e].confirmed = stable[e];
  }
  result.timing.confirmation_seconds = seconds_since(t0);

  // --- Step 4: filtering / clustering, one shard per event ---
  // aegis-lint: clock-ok(reporting-only timing field)
  t0 = std::chrono::steady_clock::now();
  std::vector<FilterOutcome> filtered = campaign.filter(stable);
  for (std::size_t e = 0; e < event_ids.size(); ++e) {
    result.reports[e].representatives = std::move(filtered[e].representatives);
    result.reports[e].best = filtered[e].best;
  }
  result.timing.filtering_seconds = seconds_since(t0);
  return result;
}

}  // namespace aegis::fuzzer
