#include "fuzzer/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "fuzzer/confirmation.hpp"
#include "fuzzer/filtering.hpp"

namespace aegis::fuzzer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

EventFuzzer::EventFuzzer(const pmu::EventDatabase& db,
                         const isa::IsaSpecification& spec, FuzzerConfig config)
    : db_(&db), spec_(&spec), config_(config) {}

const std::vector<std::uint32_t>& EventFuzzer::cleanup() {
  if (!cleaned_.empty()) return cleaned_;
  // Test-execute each variant in the harness: variants that fault (#UD from
  // unsupported extensions / reserved encodings, #GP from privileged
  // instructions) are excluded. The simulator's execution model faults
  // exactly where the spec says real hardware would.
  sim::GadgetRunner probe(*db_, *spec_, config_.seed ^ 0xC1EA17ULL);
  probe.program({});
  cleaned_.reserve(spec_->variants().size() / 4 + 1);
  for (const auto& v : spec_->variants()) {
    const std::array<std::uint32_t, 1> seq = {v.uid};
    try {
      (void)probe.execute_once(seq, 1.0);
      cleaned_.push_back(v.uid);
    } catch (const std::invalid_argument&) {
      // faulted: excluded from the cleaned list
    }
  }
  return cleaned_;
}

std::vector<std::uint32_t> EventFuzzer::sample_instructions(
    std::size_t count, util::Rng& rng) const {
  if (count == 0 || count >= cleaned_.size()) return cleaned_;
  // Class-stratified sampling: narrow events respond to a single
  // instruction class, so every class present in the cleaned list must be
  // represented in the sample.
  std::unordered_map<int, std::vector<std::uint32_t>> by_class;
  for (std::uint32_t uid : cleaned_) {
    by_class[static_cast<int>(spec_->by_uid(uid).iclass)].push_back(uid);
  }
  std::vector<std::uint32_t> sample;
  sample.reserve(count);
  const std::size_t per_class =
      std::max<std::size_t>(1, count / by_class.size());
  for (auto& [cls, uids] : by_class) {
    rng.shuffle(uids);
    for (std::size_t i = 0; i < per_class && i < uids.size(); ++i) {
      sample.push_back(uids[i]);
    }
  }
  // Top up with uniform picks if stratification undershot.
  while (sample.size() < count) {
    sample.push_back(cleaned_[rng.uniform_index(cleaned_.size())]);
  }
  return sample;
}

FuzzResult EventFuzzer::run(const std::vector<std::uint32_t>& event_ids) {
  FuzzResult result;
  util::Rng rng(config_.seed);

  auto t0 = std::chrono::steady_clock::now();
  cleanup();
  result.timing.cleanup_seconds = seconds_since(t0);
  result.cleaned_instructions = cleaned_.size();
  result.total_gadget_space = cleaned_.size() * cleaned_.size();

  // One shared gadget grid for all events: the set-cover stage needs the
  // same gadgets evaluated against every event.
  const std::vector<std::uint32_t> resets =
      sample_instructions(config_.reset_sample, rng);
  const std::vector<std::uint32_t> triggers =
      sample_instructions(config_.trigger_sample, rng);

  ConfirmationParams confirm_params;
  confirm_params.repeats = config_.repeats;
  confirm_params.lambda1 = config_.lambda1;
  confirm_params.lambda2 = config_.lambda2;
  confirm_params.reset_unroll = config_.reset_unroll;
  confirm_params.trigger_unroll = config_.trigger_unroll;
  confirm_params.delta_threshold = config_.delta_threshold;

  result.reports.reserve(event_ids.size());
  for (std::uint32_t event_id : event_ids) {
    result.reports.push_back(EventFuzzReport{event_id, 0, {}, {}, {}});
  }

  // --- Step 2: generation + execution, events in groups of <= 4 ---
  t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<Gadget>> candidates(event_ids.size());
  constexpr std::size_t kGroup = pmu::EventDatabase::kNumCounters;
  for (std::size_t g0 = 0; g0 < event_ids.size(); g0 += kGroup) {
    const std::size_t g1 = std::min(event_ids.size(), g0 + kGroup);
    std::vector<std::uint32_t> group(event_ids.begin() + g0,
                                     event_ids.begin() + g1);
    sim::GadgetRunner runner(*db_, *spec_, config_.seed ^ (g0 * 0x9E37ULL));
    runner.program(group);
    for (std::uint32_t reset : resets) {
      for (std::uint32_t trigger : triggers) {
        // Fuzzed back-to-back without state cleanup (speed over isolation;
        // the confirmation stage handles the resulting dirty state).
        const std::array<std::uint32_t, 2> seq = {reset, trigger};
        const std::vector<double> delta =
            runner.execute_once(seq, config_.trigger_unroll);
        ++result.executed_gadgets;
        for (std::size_t e = 0; e < group.size(); ++e) {
          if (delta[e] > config_.delta_threshold) {
            candidates[g0 + e].push_back(Gadget{reset, trigger});
          }
        }
      }
    }
  }
  result.timing.generation_execution_seconds = seconds_since(t0);

  // --- Step 3: confirmation ---
  t0 = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < event_ids.size(); ++e) {
    EventFuzzReport& report = result.reports[e];
    report.candidates = candidates[e].size();
    sim::GadgetRunner runner(*db_, *spec_, config_.seed ^ (e * 0xC0FFEEULL));
    runner.program({event_ids[e]});

    std::vector<ConfirmedGadget> confirmed;
    for (const Gadget& gadget : candidates[e]) {
      const ConfirmationOutcome outcome =
          confirm_gadget(runner, gadget, 0, confirm_params);
      if (outcome.confirmed) {
        confirmed.push_back(
            ConfirmedGadget{gadget, event_ids[e], outcome.trigger_delta()});
      }
    }

    // Gadget reordering: re-measure in a shuffled order and drop gadgets
    // whose behaviour changes (dirty state from the new predecessor).
    std::vector<std::size_t> order(confirmed.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ConfirmedGadget> stable;
    stable.reserve(confirmed.size());
    for (std::size_t idx : order) {
      const ConfirmedGadget& g = confirmed[idx];
      const ConfirmationOutcome again =
          confirm_gadget(runner, g.gadget, 0, confirm_params);
      if (!again.confirmed) continue;
      const double ratio = again.trigger_delta() / g.median_delta;
      if (ratio < config_.reorder_tolerance ||
          ratio > 1.0 / config_.reorder_tolerance) {
        continue;
      }
      stable.push_back(g);
    }
    report.confirmed = std::move(stable);
  }
  result.timing.confirmation_seconds = seconds_since(t0);

  // --- Step 4: filtering / clustering ---
  t0 = std::chrono::steady_clock::now();
  for (EventFuzzReport& report : result.reports) {
    FilterOutcome filtered = filter_gadgets(report.confirmed, *spec_);
    report.representatives = std::move(filtered.representatives);
    report.best = filtered.best;
  }
  result.timing.filtering_seconds = seconds_since(t0);
  return result;
}

}  // namespace aegis::fuzzer
