#include "fuzzer/filtering.hpp"

#include <map>
#include <tuple>

namespace aegis::fuzzer {

FilterOutcome filter_gadgets(const std::vector<ConfirmedGadget>& confirmed,
                             const isa::IsaSpecification& spec) {
  using ClusterKey = std::tuple<isa::Extension, isa::Category, isa::Extension,
                                isa::Category>;
  FilterOutcome outcome;
  std::map<ClusterKey, ConfirmedGadget> clusters;
  for (const ConfirmedGadget& g : confirmed) {
    const isa::InstructionVariant& reset = spec.by_uid(g.gadget.reset_uid);
    const isa::InstructionVariant& trigger = spec.by_uid(g.gadget.trigger_uid);
    const ClusterKey key{reset.extension, reset.category, trigger.extension,
                         trigger.category};
    auto [it, inserted] = clusters.emplace(key, g);
    if (!inserted && g.median_delta > it->second.median_delta) {
      it->second = g;
    }
    if (g.median_delta > outcome.best.median_delta) outcome.best = g;
  }
  outcome.clusters = clusters.size();
  outcome.representatives.reserve(clusters.size());
  for (auto& [key, g] : clusters) outcome.representatives.push_back(g);
  return outcome;
}

}  // namespace aegis::fuzzer
