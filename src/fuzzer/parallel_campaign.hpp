// Sharded execution engine for the Event Fuzzer pipeline (paper Fig. 5).
//
// Every stage of the campaign is decomposed into shards whose boundaries
// depend only on the input — never on the thread count — and every shard
// derives its own RNG stream and GadgetRunner from the shard index via
// util::split_mix64(seed ^ stage_salt, shard). Shard outputs land in
// index-keyed slots and are merged in shard order, so the merged result is
// bit-identical whether the pool has 1 worker or 64 (tests/parallel_test.cpp
// proves this differentially).
//
// Shard grains:
//   cleanup     — fixed-size chunks of the ISA variant list;
//   generation  — one shard per (event group, reset instruction): the
//                 triggers of a row run back-to-back on one runner, keeping
//                 the paper's C6 dirty-state realism within the row;
//   confirmation / filtering — one shard per event.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzzer/confirmation.hpp"
#include "fuzzer/filtering.hpp"
#include "fuzzer/fuzzer.hpp"
#include "fuzzer/gadget.hpp"
#include "isa/spec.hpp"
#include "pmu/event_database.hpp"
#include "util/thread_pool.hpp"

namespace aegis::fuzzer {

// Domain-separation salts: each stage derives shard streams from
// split_mix64(config.seed ^ salt, shard) so no two stages share a stream.
inline constexpr std::uint64_t kCleanupSalt = 0xC1EA17ULL;
inline constexpr std::uint64_t kGenerationSalt = 0x6E4E7A7EULL;
inline constexpr std::uint64_t kConfirmSalt = 0xC0FF112ULL;
inline constexpr std::uint64_t kReorderSalt = 0x2E02DE2ULL;

struct GenerationOutput {
  /// candidates[e] = flagged gadgets for event_ids[e], in (reset-major,
  /// trigger-minor) grid order.
  std::vector<std::vector<Gadget>> candidates;
  std::size_t executed_pairs = 0;
};

class ParallelCampaign {
 public:
  ParallelCampaign(const pmu::EventDatabase& db,
                   const isa::IsaSpecification& spec,
                   const FuzzerConfig& config, util::ThreadPool& pool);

  /// Step 1: test-executes every spec variant in a per-chunk harness and
  /// returns the legal uids in spec order.
  std::vector<std::uint32_t> cleanup() const;

  /// Step 2: executes the reset x trigger grid against the events (grouped
  /// by the 4-counter register limit) and flags pairs whose count delta
  /// clears the threshold.
  GenerationOutput generate(const std::vector<std::uint32_t>& event_ids,
                            const std::vector<std::uint32_t>& resets,
                            const std::vector<std::uint32_t>& triggers) const;

  /// Step 3: per-event confirmation (repeated-trigger constraints) plus the
  /// shuffled-reorder stability pass; returns the stable gadgets per event.
  std::vector<std::vector<ConfirmedGadget>> confirm(
      const std::vector<std::uint32_t>& event_ids,
      const std::vector<std::vector<Gadget>>& candidates) const;

  /// Step 4: per-event extension/category clustering.
  std::vector<FilterOutcome> filter(
      const std::vector<std::vector<ConfirmedGadget>>& confirmed) const;

 private:
  const pmu::EventDatabase* db_;
  const isa::IsaSpecification* spec_;
  const FuzzerConfig* config_;
  util::ThreadPool* pool_;
};

}  // namespace aegis::fuzzer
