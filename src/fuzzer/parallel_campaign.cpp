#include "fuzzer/parallel_campaign.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>

#include "sim/gadget_runner.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "util/rng.hpp"

namespace aegis::fuzzer {

namespace {

// Variants legality-tested per cleanup shard. Small enough to load-balance,
// large enough that the per-shard runner setup cost stays negligible.
constexpr std::size_t kCleanupChunk = 128;

}  // namespace

ParallelCampaign::ParallelCampaign(const pmu::EventDatabase& db,
                                   const isa::IsaSpecification& spec,
                                   const FuzzerConfig& config,
                                   util::ThreadPool& pool)
    : db_(&db), spec_(&spec), config_(&config), pool_(&pool) {}

std::vector<std::uint32_t> ParallelCampaign::cleanup() const {
  const auto& variants = spec_->variants();
  const std::size_t shard_count =
      (variants.size() + kCleanupChunk - 1) / kCleanupChunk;
  std::vector<std::vector<std::uint32_t>> kept(shard_count);

  telemetry::Registry& tel = telemetry::resolve(config_->telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "fuzz.cleanup", "fuzzer", 0,
                              shard_count);
  pool_->parallel_for(shard_count, [&](std::size_t shard) {
    telemetry::ScopedSpan span(tel.spans(), "fuzz.cleanup.shard", "fuzzer",
                               static_cast<std::uint32_t>(shard));
    // Variants that fault (#UD / #GP) are excluded; the simulator faults
    // exactly where the spec says real hardware would.
    sim::GadgetRunner probe(*db_, *spec_,
                            util::split_mix64(config_->seed ^ kCleanupSalt, shard));
    probe.program({});
    const std::size_t lo = shard * kCleanupChunk;
    const std::size_t hi = std::min(variants.size(), lo + kCleanupChunk);
    kept[shard].reserve((hi - lo) / 4 + 1);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::array<std::uint32_t, 1> seq = {variants[i].uid};
      try {
        (void)probe.execute_once(seq, 1.0);
        kept[shard].push_back(variants[i].uid);
      } catch (const std::invalid_argument&) {
        // faulted: excluded from the cleaned list
      }
    }
  });

  std::vector<std::uint32_t> cleaned;
  cleaned.reserve(variants.size() / 4 + 1);
  for (const auto& shard : kept) {
    cleaned.insert(cleaned.end(), shard.begin(), shard.end());
  }
  return cleaned;
}

GenerationOutput ParallelCampaign::generate(
    const std::vector<std::uint32_t>& event_ids,
    const std::vector<std::uint32_t>& resets,
    const std::vector<std::uint32_t>& triggers) const {
  GenerationOutput out;
  out.candidates.resize(event_ids.size());
  if (event_ids.empty() || resets.empty() || triggers.empty()) return out;

  constexpr std::size_t kGroup = pmu::EventDatabase::kNumCounters;
  const std::size_t group_count = (event_ids.size() + kGroup - 1) / kGroup;
  const std::size_t shard_count = group_count * resets.size();

  // hits[shard][e] = flagged gadgets of the shard's reset row for the e-th
  // event of the shard's group, in trigger order.
  std::vector<std::vector<std::vector<Gadget>>> hits(shard_count);

  telemetry::Registry& tel = telemetry::resolve(config_->telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "fuzz.generate", "fuzzer", 0,
                              shard_count);
  pool_->parallel_for(shard_count, [&](std::size_t shard) {
    telemetry::ScopedSpan span(tel.spans(), "fuzz.generate.shard", "fuzzer",
                               static_cast<std::uint32_t>(shard));
    const std::size_t group_index = shard / resets.size();
    const std::uint32_t reset = resets[shard % resets.size()];
    const std::size_t g0 = group_index * kGroup;
    const std::size_t g1 = std::min(event_ids.size(), g0 + kGroup);
    std::vector<std::uint32_t> group(event_ids.begin() + g0,
                                     event_ids.begin() + g1);
    sim::GadgetRunner runner(
        *db_, *spec_, util::split_mix64(config_->seed ^ kGenerationSalt, shard));
    runner.program(std::move(group));
    hits[shard].resize(g1 - g0);
    for (std::uint32_t trigger : triggers) {
      // Fuzzed back-to-back without state cleanup (speed over isolation;
      // the confirmation stage handles the resulting dirty state).
      const std::array<std::uint32_t, 2> seq = {reset, trigger};
      const std::span<const double> delta = runner.execute_once(
          seq, static_cast<double>(config_->trigger_unroll));
      for (std::size_t e = 0; e < hits[shard].size(); ++e) {
        if (delta[e] > config_->delta_threshold) {
          hits[shard][e].push_back(Gadget{reset, trigger});
        }
      }
    }
  });

  // Merge in shard order: shards of one group are its resets in sample
  // order, so candidates keep the serial grid order.
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::size_t g0 = (shard / resets.size()) * kGroup;
    for (std::size_t e = 0; e < hits[shard].size(); ++e) {
      auto& dst = out.candidates[g0 + e];
      dst.insert(dst.end(), hits[shard][e].begin(), hits[shard][e].end());
    }
  }
  out.executed_pairs = shard_count * triggers.size();
  return out;
}

// aegis-rng: stream(parallel-campaign-confirm)
std::vector<std::vector<ConfirmedGadget>> ParallelCampaign::confirm(
    const std::vector<std::uint32_t>& event_ids,
    const std::vector<std::vector<Gadget>>& candidates) const {
  ConfirmationParams params;
  params.repeats = config_->repeats;
  params.lambda1 = config_->lambda1;
  params.lambda2 = config_->lambda2;
  params.reset_unroll = config_->reset_unroll;
  params.trigger_unroll = config_->trigger_unroll;
  params.delta_threshold = config_->delta_threshold;

  telemetry::Registry& tel = telemetry::resolve(config_->telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "fuzz.confirm", "fuzzer", 0,
                              event_ids.size());
  std::vector<std::vector<ConfirmedGadget>> stable(event_ids.size());
  pool_->parallel_for(event_ids.size(), [&](std::size_t e) {
    telemetry::ScopedSpan span(tel.spans(), "fuzz.confirm.shard", "fuzzer",
                               static_cast<std::uint32_t>(e),
                               candidates[e].size());
    sim::GadgetRunner runner(
        *db_, *spec_, util::split_mix64(config_->seed ^ kConfirmSalt, e));
    runner.program({event_ids[e]});

    std::vector<ConfirmedGadget> confirmed;
    for (const Gadget& gadget : candidates[e]) {
      const ConfirmationOutcome outcome =
          confirm_gadget(runner, gadget, 0, params);
      if (outcome.confirmed) {
        confirmed.push_back(
            ConfirmedGadget{gadget, event_ids[e], outcome.trigger_delta()});
      }
    }

    // Gadget reordering: re-measure in a shuffled order and drop gadgets
    // whose behaviour changes (dirty state from the new predecessor). The
    // shuffle draws from a per-event stream so the order — and therefore
    // the runner's state evolution — is thread-count-invariant.
    util::Rng reorder_rng(util::split_mix64(config_->seed ^ kReorderSalt, e));
    std::vector<std::size_t> order(confirmed.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    reorder_rng.shuffle(order);
    stable[e].reserve(confirmed.size());
    for (std::size_t idx : order) {
      const ConfirmedGadget& g = confirmed[idx];
      const ConfirmationOutcome again = confirm_gadget(runner, g.gadget, 0, params);
      if (!again.confirmed) continue;
      const double ratio = again.trigger_delta() / g.median_delta;
      if (ratio < config_->reorder_tolerance ||
          ratio > 1.0 / config_->reorder_tolerance) {
        continue;
      }
      stable[e].push_back(g);
    }
  });
  return stable;
}

std::vector<FilterOutcome> ParallelCampaign::filter(
    const std::vector<std::vector<ConfirmedGadget>>& confirmed) const {
  telemetry::Registry& tel = telemetry::resolve(config_->telemetry);
  telemetry::ScopedSpan stage(tel.spans(), "fuzz.filter", "fuzzer", 0,
                              confirmed.size());
  std::vector<FilterOutcome> outcomes(confirmed.size());
  pool_->parallel_for(confirmed.size(), [&](std::size_t e) {
    telemetry::ScopedSpan span(tel.spans(), "fuzz.filter.shard", "fuzzer",
                               static_cast<std::uint32_t>(e),
                               confirmed[e].size());
    outcomes[e] = filter_gadgets(confirmed[e], *spec_);
  });
  return outcomes;
}

}  // namespace aegis::fuzzer
