// Event Fuzzer (paper Section VI): grammar-based fuzzing over instruction
// gadgets to find, for every vulnerable HPC event, the gadgets that disturb
// its count.
//
// Pipeline (Fig. 5): (1) instruction cleanup — test-execute every ISA-spec
// variant and drop the ~76 % that fault; (2) code generation & execution —
// run sampled (reset, trigger) pairs in the GadgetRunner harness and flag
// pairs that change the monitored counts; (3) result confirmation —
// multiple executions, repeated-trigger cold/hot-path constraints
// (lambda1/lambda2) and random reordering to reject C5 side effects and C6
// dirty state; (4) gadget filtering — cluster by instruction extension and
// category, keep representatives and the highest-impact gadget per event.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzzer/gadget.hpp"
#include "isa/spec.hpp"
#include "pmu/event_database.hpp"
#include "sim/gadget_runner.hpp"

namespace aegis::telemetry {
class Registry;
}

namespace aegis::fuzzer {

class ParallelCampaign;

struct FuzzerConfig {
  std::size_t repeats = 10;        // R: paper's execution-repetition count
  double lambda1 = 0.2;            // (V2-V1) vs R(v2-v1) tolerance band
  double lambda2 = 10.0;           // require V2 > lambda2 * V1
  double delta_threshold = 0.3;       // minimum count change to flag a candidate
  std::size_t reset_unroll = 2;    // reset-instruction repetitions per exec
  std::size_t trigger_unroll = 32; // trigger-instruction repetitions per exec
  std::size_t reset_sample = 48;   // sampled reset instructions (0 = all)
  std::size_t trigger_sample = 48; // sampled trigger instructions (0 = all)
  double reorder_tolerance = 0.5;  // re-measured delta must stay within
                                   // [tol, 1/tol] x original
  std::uint64_t seed = 7;
  /// Campaign workers (0 = hardware_concurrency). Results are bit-identical
  /// for every value: shards derive deterministic RNG streams from
  /// split_mix64(seed, shard), never from thread identity.
  std::size_t num_threads = 0;
  /// Span/metric sink for campaign stages (null = telemetry::Registry::
  /// global()). Purely observational: never hashed into config fingerprints,
  /// never consulted by any result-producing code.
  telemetry::Registry* telemetry = nullptr;
};

struct StepTiming {
  double cleanup_seconds = 0.0;
  double generation_execution_seconds = 0.0;
  double confirmation_seconds = 0.0;
  double filtering_seconds = 0.0;
};

struct EventFuzzReport {
  std::uint32_t event_id = 0;
  std::size_t candidates = 0;                 // raw generation-step hits
  std::vector<ConfirmedGadget> confirmed;     // survived confirmation
  std::vector<ConfirmedGadget> representatives;  // one per filter cluster
  ConfirmedGadget best;                       // highest median delta
};

struct FuzzResult {
  std::vector<EventFuzzReport> reports;
  StepTiming timing;
  std::size_t total_gadget_space = 0;   // legal^2 (the paper's 11.5 M)
  std::size_t executed_gadgets = 0;     // pairs actually executed
  std::size_t cleaned_instructions = 0; // legal variants after cleanup
};

class EventFuzzer {
 public:
  EventFuzzer(const pmu::EventDatabase& db, const isa::IsaSpecification& spec,
              FuzzerConfig config);

  /// Step 1: test-executes every spec variant, keeping the legal ones.
  /// One-time; reused across events. Returns the cleaned uid list.
  const std::vector<std::uint32_t>& cleanup();

  /// Steps 2-4 against the given vulnerable events (any number; fuzzed in
  /// groups of up to 4, the concurrent-counter limit). Sharded across
  /// FuzzerConfig::num_threads workers; the result is bit-identical for
  /// every thread count (see ParallelCampaign).
  FuzzResult run(const std::vector<std::uint32_t>& event_ids);

  const FuzzerConfig& config() const noexcept { return config_; }

 private:
  std::vector<std::uint32_t> sample_instructions(std::size_t count,
                                                 util::Rng& rng) const;
  const std::vector<std::uint32_t>& cleanup_with(const ParallelCampaign& campaign);

  const pmu::EventDatabase* db_;
  const isa::IsaSpecification* spec_;
  FuzzerConfig config_;
  std::vector<std::uint32_t> cleaned_;
};

}  // namespace aegis::fuzzer
