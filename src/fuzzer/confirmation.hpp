// Result-confirmation machinery (paper Section VI-E): decides whether a
// candidate gadget genuinely drives the event change, rejecting reset-side
// effects (C5) and inherited dirty state (C6).
#pragma once

#include <optional>

#include "fuzzer/gadget.hpp"
#include "sim/gadget_runner.hpp"

namespace aegis::fuzzer {

struct ConfirmationParams {
  std::size_t repeats = 10;   // R
  double lambda1 = 0.2;
  double lambda2 = 10.0;
  // Unrolls are repetition counts — how many back-to-back copies of the
  // reset/trigger instruction the generated code contains — so they are
  // integral (a fractional instruction cannot be emitted).
  std::size_t reset_unroll = 2;
  std::size_t trigger_unroll = 32;
  double delta_threshold = 0.3;
};

struct PathMeasurement {
  double median = 0.0;      // per-execution median count change (v)
  double cumulative = 0.0;  // total over R executions (V)
};

/// Runs one path (reset only = cold, reset+trigger = hot) R times on the
/// runner and summarizes the per-execution deltas for `event_slot` (index
/// into the runner's programmed events).
PathMeasurement measure_path(sim::GadgetRunner& runner, const Gadget& gadget,
                             bool with_trigger, std::size_t event_slot,
                             const ConfirmationParams& params);

struct ConfirmationOutcome {
  bool confirmed = false;
  PathMeasurement cold;  // v1 / V1
  PathMeasurement hot;   // v2 / V2
  double trigger_delta() const noexcept { return hot.median - cold.median; }
};

/// The paper's repeated-trigger test:
///   V2 - V1 within (1 +- lambda1) * R * (v2 - v1)   and   V2 > lambda2 * V1.
ConfirmationOutcome confirm_gadget(sim::GadgetRunner& runner, const Gadget& gadget,
                                   std::size_t event_slot,
                                   const ConfirmationParams& params);

}  // namespace aegis::fuzzer
