// Instruction-sequence gadget types (paper Section VI-B).
//
// A gadget is a (reset sequence, trigger sequence) pair: the reset brings
// the monitored event to a known state S0, the trigger moves it to S1,
// changing the count. Following the paper's implementation, each sequence
// is a single instruction variant (multi-instruction sequences are listed
// as future work); the trigger is unrolled more than the reset inside the
// measured window.
#pragma once

#include <cstdint>
#include <vector>

namespace aegis::fuzzer {

struct Gadget {
  std::uint32_t reset_uid = 0;
  std::uint32_t trigger_uid = 0;

  friend bool operator==(const Gadget&, const Gadget&) = default;
};

struct GadgetHash {
  std::size_t operator()(const Gadget& g) const noexcept {
    return (static_cast<std::size_t>(g.reset_uid) << 32) ^ g.trigger_uid;
  }
};

/// A gadget confirmed to disturb one event, with its measured effect.
struct ConfirmedGadget {
  Gadget gadget;
  std::uint32_t event_id = 0;
  double median_delta = 0.0;  // per-execution hot-path count change
};

}  // namespace aegis::fuzzer
