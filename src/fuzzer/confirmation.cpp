#include "fuzzer/confirmation.hpp"

#include <array>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/stats.hpp"

namespace aegis::fuzzer {

namespace {

/// Handle resolved outside the noalloc region (telemetry-handle rule): the
/// by-name lookup allocates, so it happens once behind a function-local
/// static; measure_path itself only bumps the lock-free counter.
// aegis-lint: amortized-alloc(function-local static: the allocating by-name lookup runs once per process)
const telemetry::Counter& path_measurements_counter() {
  static const telemetry::Counter counter =
      telemetry::Registry::global().metrics().counter(
          "aegis_fuzzer_path_measurements_total");
  return counter;
}

}  // namespace

// aegis-lint: noalloc
PathMeasurement measure_path(sim::GadgetRunner& runner, const Gadget& gadget,
                             bool with_trigger, std::size_t event_slot,
                             const ConfirmationParams& params) {
  // Per-repeat deltas live in thread-local scratch: confirmation runs this
  // for every candidate gadget, and per-call vectors dominated its profile.
  // aegis-lint: alloc-ok(thread_local: constructed once per thread, reused)
  thread_local std::vector<double> deltas;
  path_measurements_counter().inc();
  deltas.clear();
  // aegis-lint: alloc-ok(thread_local scratch; capacity retained across calls)
  deltas.reserve(params.repeats);
  // One unmeasured warm-up execution: the first run of a path carries a
  // cold-cache/predictor transient that would otherwise break the
  // cumulative-vs-median linearity check for genuine gadgets.
  for (std::size_t r = 0; r < params.repeats + 1; ++r) {
    double value = 0.0;
    if (with_trigger) {
      // Reset executes lightly, trigger is unrolled: the measured window is
      // dominated by the trigger's effect when the gadget is genuine.
      const std::array<std::uint32_t, 2> seq = {gadget.reset_uid,
                                                gadget.trigger_uid};
      // Two sub-windows with different unrolls; sum the deltas. The first
      // span aliases runner scratch, so read it before the second call
      // overwrites it.
      const std::span<const double> a = runner.execute_once(
          std::span(seq).first(1), static_cast<double>(params.reset_unroll));
      if (event_slot >= a.size()) {
        throw std::out_of_range("measure_path: event_slot not programmed");
      }
      const double reset_delta = a[event_slot];
      const std::span<const double> b = runner.execute_once(
          std::span(seq).last(1), static_cast<double>(params.trigger_unroll));
      value = reset_delta + b[event_slot];
    } else {
      const std::array<std::uint32_t, 1> seq = {gadget.reset_uid};
      const std::span<const double> d =
          runner.execute_once(seq, static_cast<double>(params.reset_unroll));
      if (event_slot >= d.size()) {
        throw std::out_of_range("measure_path: event_slot not programmed");
      }
      value = d[event_slot];
    }
    // aegis-lint: alloc-ok(appends into pre-reserved thread_local scratch)
    if (r > 0) deltas.push_back(value);
  }
  PathMeasurement m;
  for (double v : deltas) m.cumulative += v;
  // In-place median: deltas is scratch, and the copying median() would be
  // this function's one remaining hot-path allocation.
  m.median = util::median_inplace(deltas);
  return m;
}

ConfirmationOutcome confirm_gadget(sim::GadgetRunner& runner, const Gadget& gadget,
                                   std::size_t event_slot,
                                   const ConfirmationParams& params) {
  ConfirmationOutcome outcome;
  outcome.cold = measure_path(runner, gadget, false, event_slot, params);
  outcome.hot = measure_path(runner, gadget, true, event_slot, params);

  const double R = static_cast<double>(params.repeats);
  const double v_diff = outcome.hot.median - outcome.cold.median;
  const double V_diff = outcome.hot.cumulative - outcome.cold.cumulative;

  // The trigger must produce a real, repeatable change...
  if (v_diff < params.delta_threshold) return outcome;
  // ...that accumulates linearly over repetitions, i.e. the reset sequence
  // genuinely restores S0 each round (C6 rejection):
  //    V2 - V1 = (1 - lambda1) R (v2 - v1),  lambda1 in [-0.2, 0.2].
  const double expected = R * v_diff;
  if (V_diff < (1.0 - params.lambda1) * expected ||
      V_diff > (1.0 + params.lambda1) * expected) {
    return outcome;
  }
  // ...and must dominate any side effect of the reset itself (C5):
  //    V2 > lambda2 * V1. A tiny floor keeps the test meaningful for
  //    events where the cold path counts essentially zero.
  const double v1_floor = std::max(outcome.cold.cumulative, 0.02);
  if (outcome.hot.cumulative <= params.lambda2 * v1_floor) return outcome;

  outcome.confirmed = true;
  return outcome;
}

}  // namespace aegis::fuzzer
