// Gadget filtering (paper Section VI-F): clusters confirmed gadgets by the
// extension and general category of their reset and trigger instructions —
// attributes that indicate the micro-architectural root cause — and keeps
// one representative per cluster plus the highest-impact gadget per event.
#pragma once

#include <vector>

#include "fuzzer/gadget.hpp"
#include "isa/spec.hpp"

namespace aegis::fuzzer {

struct FilterOutcome {
  std::vector<ConfirmedGadget> representatives;  // max-delta per cluster
  ConfirmedGadget best;                          // overall max delta
  std::size_t clusters = 0;
};

FilterOutcome filter_gadgets(const std::vector<ConfirmedGadget>& confirmed,
                             const isa::IsaSpecification& spec);

}  // namespace aegis::fuzzer
