// Minimal gadget cover (paper Section VII-C): gadget sets for different
// events intersect heavily, so instead of injecting one gadget per
// vulnerable event, Aegis extracts the smallest gadget set that covers all
// of them (the paper needs 43 gadgets for 137 events) and stacks it into
// one repeatable noise code segment.
#pragma once

#include <vector>

#include "fuzzer/fuzzer.hpp"

namespace aegis::fuzzer {

struct GadgetCover {
  /// Chosen gadgets; together they disturb every covered event.
  std::vector<Gadget> gadgets;
  /// Events covered (== input events when every event had >= 1 gadget).
  std::vector<std::uint32_t> covered_events;
  /// Events with no confirmed gadget (uncoverable by this fuzz run).
  std::vector<std::uint32_t> uncovered_events;
  /// Per covered event: summed median delta when the whole stacked segment
  /// executes once (the obfuscator's per-repetition effect).
  std::vector<std::pair<std::uint32_t, double>> segment_effect;
};

/// Greedy set cover over the fuzz result's confirmed gadgets.
GadgetCover minimal_gadget_cover(const FuzzResult& result);

}  // namespace aegis::fuzzer
