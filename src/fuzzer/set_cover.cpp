#include "fuzzer/set_cover.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace aegis::fuzzer {

namespace {

/// Deterministic gadget ordering: lexicographic on (reset_uid,
/// trigger_uid). The greedy loop scans candidates in this order and
/// replaces the incumbent only on a STRICT improvement, so every tie —
/// same coverage, same total delta — resolves to the lowest gadget key
/// regardless of hash-table iteration order or report insertion order.
bool gadget_key_less(const Gadget& a, const Gadget& b) {
  if (a.reset_uid != b.reset_uid) return a.reset_uid < b.reset_uid;
  return a.trigger_uid < b.trigger_uid;
}

/// One greedy candidate: a gadget and its per-event deltas sorted by event
/// id. Flattening out of the hash maps fixes BOTH sources of
/// nondeterminism the original implementation had: the scan order of the
/// gadgets and the floating-point summation order of their deltas.
struct Candidate {
  Gadget gadget;
  std::vector<std::pair<std::uint32_t, double>> effects;
};

}  // namespace

GadgetCover minimal_gadget_cover(const FuzzResult& result) {
  GadgetCover cover;

  // gadget -> (event -> delta), from each event's confirmed list. The hash
  // maps deduplicate in O(1); every traversal that feeds the result walks
  // the deterministically sorted `candidates` list built below instead.
  std::unordered_map<Gadget, std::unordered_map<std::uint32_t, double>, GadgetHash>
      effect_of;
  std::unordered_set<std::uint32_t> universe;
  for (const EventFuzzReport& report : result.reports) {
    if (report.confirmed.empty()) {
      cover.uncovered_events.push_back(report.event_id);
      continue;
    }
    universe.insert(report.event_id);
    for (const ConfirmedGadget& g : report.confirmed) {
      effect_of[g.gadget][report.event_id] =
          std::max(effect_of[g.gadget][report.event_id], g.median_delta);
    }
  }

  std::vector<Candidate> candidates;
  candidates.reserve(effect_of.size());
  // aegis-lint: ordered-ok(flattening only; candidates + effects are sorted below)
  for (const auto& [gadget, effects] : effect_of) {
    Candidate c;
    c.gadget = gadget;
    c.effects.assign(effects.begin(), effects.end());
    std::sort(c.effects.begin(), c.effects.end());
    candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return gadget_key_less(a.gadget, b.gadget);
            });

  std::unordered_set<std::uint32_t> uncovered = universe;
  while (!uncovered.empty()) {
    // Pick the gadget covering the most still-uncovered events; break ties
    // by total delta (stronger disturbance preferred), then by lowest
    // gadget key (scan order + strict improvement).
    const Candidate* best = nullptr;
    std::size_t best_newly = 0;
    double best_delta = 0.0;
    for (const Candidate& c : candidates) {
      std::size_t newly = 0;
      double delta = 0.0;
      for (const auto& [event, d] : c.effects) {
        if (uncovered.contains(event)) {
          ++newly;
          delta += d;
        }
      }
      if (newly > best_newly ||
          (newly == best_newly && newly > 0 && delta > best_delta)) {
        best = &c;
        best_newly = newly;
        best_delta = delta;
      }
    }
    if (best == nullptr || best_newly == 0) break;  // defensive; cannot happen
    cover.gadgets.push_back(best->gadget);
    for (const auto& [event, d] : best->effects) uncovered.erase(event);
  }

  // Segment effect: executing every chosen gadget once sums their deltas,
  // accumulated in chosen-gadget order over event-sorted effect lists —
  // a fixed floating-point evaluation order.
  cover.covered_events.assign(universe.begin(), universe.end());
  std::sort(cover.covered_events.begin(), cover.covered_events.end());
  std::unordered_map<std::uint32_t, double> segment;
  for (const Candidate& c : candidates) {
    const bool chosen =
        std::find(cover.gadgets.begin(), cover.gadgets.end(), c.gadget) !=
        cover.gadgets.end();
    if (!chosen) continue;
    for (const auto& [event, d] : c.effects) segment[event] += d;
  }
  cover.segment_effect.reserve(cover.covered_events.size());
  for (std::uint32_t event : cover.covered_events) {
    cover.segment_effect.emplace_back(event, segment[event]);
  }
  return cover;
}

}  // namespace aegis::fuzzer
