#include "fuzzer/set_cover.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace aegis::fuzzer {

GadgetCover minimal_gadget_cover(const FuzzResult& result) {
  GadgetCover cover;

  // gadget -> (event -> delta), from each event's confirmed list.
  std::unordered_map<Gadget, std::unordered_map<std::uint32_t, double>, GadgetHash>
      effect_of;
  std::unordered_set<std::uint32_t> universe;
  for (const EventFuzzReport& report : result.reports) {
    if (report.confirmed.empty()) {
      cover.uncovered_events.push_back(report.event_id);
      continue;
    }
    universe.insert(report.event_id);
    for (const ConfirmedGadget& g : report.confirmed) {
      effect_of[g.gadget][report.event_id] =
          std::max(effect_of[g.gadget][report.event_id], g.median_delta);
    }
  }

  std::unordered_set<std::uint32_t> uncovered = universe;
  while (!uncovered.empty()) {
    // Pick the gadget covering the most still-uncovered events; break ties
    // by total delta (stronger disturbance preferred).
    const Gadget* best = nullptr;
    std::size_t best_newly = 0;
    double best_delta = 0.0;
    for (const auto& [gadget, effects] : effect_of) {
      std::size_t newly = 0;
      double delta = 0.0;
      for (const auto& [event, d] : effects) {
        if (uncovered.contains(event)) {
          ++newly;
          delta += d;
        }
      }
      if (newly > best_newly ||
          (newly == best_newly && newly > 0 && delta > best_delta)) {
        best = &gadget;
        best_newly = newly;
        best_delta = delta;
      }
    }
    if (best == nullptr || best_newly == 0) break;  // defensive; cannot happen
    cover.gadgets.push_back(*best);
    for (const auto& [event, d] : effect_of[*best]) uncovered.erase(event);
  }

  // Segment effect: executing every chosen gadget once sums their deltas.
  std::unordered_map<std::uint32_t, double> segment;
  for (const Gadget& g : cover.gadgets) {
    for (const auto& [event, d] : effect_of[g]) segment[event] += d;
  }
  for (std::uint32_t event : universe) {
    cover.covered_events.push_back(event);
    cover.segment_effect.emplace_back(event, segment[event]);
  }
  std::sort(cover.covered_events.begin(), cover.covered_events.end());
  std::sort(cover.segment_effect.begin(), cover.segment_effect.end());
  return cover;
}

}  // namespace aegis::fuzzer
