// Multi-layer perceptron classifier, from scratch.
//
// Stands in for the paper's CNN attack models (Section III-B). The defense
// claim is model-agnostic — it bounds the information in the traces, not a
// particular architecture — so any sufficiently strong learner reproduces
// the evaluation shape: >90 % accuracy on clean traces, random-guess
// accuracy under the DP defense. Training records per-epoch accuracy/loss
// so the Fig. 1 training curves can be regenerated.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace aegis::ml {

using FeatureMatrix = std::vector<std::vector<double>>;
using Labels = std::vector<int>;

struct MlpConfig {
  std::vector<std::size_t> hidden = {96, 48};
  double learning_rate = 0.03;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
  double lr_decay = 0.97;       // multiplicative per epoch
  double input_noise = 0.0;     // train-time Gaussian input jitter (regularizer)
  std::uint64_t seed = 1;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

class MlpClassifier {
 public:
  MlpClassifier(std::size_t input_dim, std::size_t num_classes, MlpConfig config);

  /// Trains with minibatch SGD + momentum; returns the per-epoch history
  /// (train loss/accuracy and validation accuracy — the Fig. 1 curves).
  std::vector<EpochStats> fit(const FeatureMatrix& X, const Labels& y,
                              const FeatureMatrix& X_val, const Labels& y_val);

  int predict(const std::vector<double>& x) const;
  /// Softmax class probabilities.
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  double accuracy(const FeatureMatrix& X, const Labels& y) const;

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;   // out x in, row-major
    std::vector<double> b;   // out
    std::vector<double> vw;  // momentum buffers
    std::vector<double> vb;
  };

  /// Forward pass; fills per-layer activations (post-ReLU; last = logits).
  void forward(const std::vector<double>& x,
               std::vector<std::vector<double>>& activations) const;

  std::size_t input_dim_;
  std::size_t num_classes_;
  MlpConfig config_;
  std::vector<Layer> layers_;
  util::Rng rng_;
};

/// Softmax in place (numerically stable).
void softmax(std::vector<double>& logits) noexcept;

}  // namespace aegis::ml
