#include "ml/gaussian_nb.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace aegis::ml {

void GaussianNbClassifier::fit(const FeatureMatrix& X, const Labels& y,
                               int num_classes) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("GaussianNb::fit: bad inputs");
  }
  const std::size_t d = X.front().size();
  const std::size_t c = static_cast<std::size_t>(num_classes);
  mu_.assign(c, std::vector<double>(d, 0.0));
  var_.assign(c, std::vector<double>(d, 0.0));
  std::vector<double> counts(c, 0.0);
  for (std::size_t i = 0; i < X.size(); ++i) {
    const auto k = static_cast<std::size_t>(y[i]);
    counts[k] += 1.0;
    for (std::size_t j = 0; j < d; ++j) mu_[k][j] += X[i][j];
  }
  for (std::size_t k = 0; k < c; ++k) {
    if (counts[k] > 0.0) {
      for (double& m : mu_[k]) m /= counts[k];
    }
  }
  for (std::size_t i = 0; i < X.size(); ++i) {
    const auto k = static_cast<std::size_t>(y[i]);
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = X[i][j] - mu_[k][j];
      var_[k][j] += diff * diff;
    }
  }
  log_prior_.assign(c, -std::numeric_limits<double>::infinity());
  const double n = static_cast<double>(X.size());
  for (std::size_t k = 0; k < c; ++k) {
    if (counts[k] > 0.0) {
      for (double& v : var_[k]) v = v / counts[k] + 1e-6;  // variance smoothing
      log_prior_[k] = std::log(counts[k] / n);
    }
  }
}

int GaussianNbClassifier::predict(const std::vector<double>& x) const {
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < mu_.size(); ++k) {
    double score = log_prior_[k];
    if (!std::isfinite(score)) continue;
    for (std::size_t j = 0; j < x.size() && j < mu_[k].size(); ++j) {
      const double diff = x[j] - mu_[k][j];
      score += -0.5 * (std::log(2.0 * 3.141592653589793 * var_[k][j]) +
                       diff * diff / var_[k][j]);
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(k);
    }
  }
  return best;
}

double GaussianNbClassifier::accuracy(const FeatureMatrix& X, const Labels& y) const {
  if (X.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (predict(X[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

}  // namespace aegis::ml
