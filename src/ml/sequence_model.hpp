// Frame-level sequence model for the model-extraction attack (MEA).
//
// Stands in for the paper's bidirectional-GRU + CTC decoder: a per-frame
// classifier over sliding context windows predicts a layer kind (or blank)
// for every monitoring slice; a CTC-style collapse plus prefix beam search
// turns frame posteriors into the predicted layer sequence.
#pragma once

#include <memory>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/mlp.hpp"

namespace aegis::ml {

struct SequenceModelConfig {
  std::size_t context = 2;     // frames of context on each side
  int blank_label = 0;         // set to the workload's blank id
  std::size_t beam_width = 4;
  MlpConfig mlp;
};

/// One training/inference sequence: per-frame event vectors, plus aligned
/// labels when training.
struct FrameSequence {
  std::vector<std::vector<double>> frames;  // T x E
  std::vector<int> labels;                  // T, empty at inference time
};

class FrameSequenceModel {
 public:
  explicit FrameSequenceModel(SequenceModelConfig config);

  /// Trains on aligned sequences; returns the per-epoch history of the
  /// underlying frame classifier.
  std::vector<EpochStats> fit(const std::vector<FrameSequence>& train,
                              const std::vector<FrameSequence>& val,
                              int num_labels);

  /// Greedy decode: per-frame argmax then CTC collapse.
  std::vector<int> decode_greedy(const FrameSequence& seq) const;

  /// CTC prefix beam search over the frame posteriors.
  std::vector<int> decode_beam(const FrameSequence& seq) const;

  /// Mean sequence_match_accuracy of beam decoding against references.
  double evaluate(const std::vector<FrameSequence>& sequences,
                  const std::vector<std::vector<int>>& references) const;

 private:
  std::vector<double> window_at(const FrameSequence& seq, std::size_t t) const;
  std::vector<std::vector<double>> frame_posteriors(const FrameSequence& seq) const;

  SequenceModelConfig config_;
  int num_labels_ = 0;  // includes blank
  std::unique_ptr<MlpClassifier> frame_classifier_;
};

}  // namespace aegis::ml
