// k-nearest-neighbours classifier — the third attack-model family used to
// cross-check that the defense degrades every learner, not just the MLP.
#pragma once

#include <vector>

#include "ml/mlp.hpp"  // FeatureMatrix / Labels aliases

namespace aegis::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(FeatureMatrix X, Labels y, int num_classes);
  int predict(const std::vector<double>& x) const;
  double accuracy(const FeatureMatrix& X, const Labels& y) const;

 private:
  std::size_t k_;
  int num_classes_ = 0;
  FeatureMatrix X_;
  Labels y_;
};

}  // namespace aegis::ml
