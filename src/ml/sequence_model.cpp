#include "ml/sequence_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

namespace aegis::ml {

FrameSequenceModel::FrameSequenceModel(SequenceModelConfig config)
    : config_(std::move(config)) {}

std::vector<double> FrameSequenceModel::window_at(const FrameSequence& seq,
                                                  std::size_t t) const {
  const std::size_t T = seq.frames.size();
  const std::size_t E = seq.frames.empty() ? 0 : seq.frames.front().size();
  const std::size_t ctx = config_.context;
  std::vector<double> window;
  window.reserve((2 * ctx + 1) * E);
  for (std::ptrdiff_t off = -static_cast<std::ptrdiff_t>(ctx);
       off <= static_cast<std::ptrdiff_t>(ctx); ++off) {
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(t) + off;
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(T) - 1);
    const auto& frame = seq.frames[static_cast<std::size_t>(idx)];
    window.insert(window.end(), frame.begin(), frame.end());
  }
  return window;
}

std::vector<EpochStats> FrameSequenceModel::fit(
    const std::vector<FrameSequence>& train, const std::vector<FrameSequence>& val,
    int num_labels) {
  if (train.empty()) throw std::invalid_argument("FrameSequenceModel::fit: empty");
  num_labels_ = num_labels;
  FeatureMatrix X, X_val;
  Labels y, y_val;
  auto collect = [&](const std::vector<FrameSequence>& seqs, FeatureMatrix& Xo,
                     Labels& yo) {
    for (const auto& seq : seqs) {
      if (seq.labels.size() != seq.frames.size()) {
        throw std::invalid_argument("FrameSequenceModel: unaligned labels");
      }
      for (std::size_t t = 0; t < seq.frames.size(); ++t) {
        Xo.push_back(window_at(seq, t));
        yo.push_back(seq.labels[t]);
      }
    }
  };
  collect(train, X, y);
  collect(val, X_val, y_val);
  frame_classifier_ = std::make_unique<MlpClassifier>(
      X.front().size(), static_cast<std::size_t>(num_labels_), config_.mlp);
  return frame_classifier_->fit(X, y, X_val, y_val);
}

std::vector<std::vector<double>> FrameSequenceModel::frame_posteriors(
    const FrameSequence& seq) const {
  if (!frame_classifier_) throw std::logic_error("FrameSequenceModel: not fitted");
  std::vector<std::vector<double>> post;
  post.reserve(seq.frames.size());
  for (std::size_t t = 0; t < seq.frames.size(); ++t) {
    post.push_back(frame_classifier_->predict_proba(window_at(seq, t)));
  }
  return post;
}

std::vector<int> FrameSequenceModel::decode_greedy(const FrameSequence& seq) const {
  const auto post = frame_posteriors(seq);
  std::vector<int> frames;
  frames.reserve(post.size());
  for (const auto& p : post) {
    frames.push_back(
        static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin()));
  }
  return ctc_collapse(frames, config_.blank_label);
}

std::vector<int> FrameSequenceModel::decode_beam(const FrameSequence& seq) const {
  // Standard CTC prefix beam search with separate blank/non-blank mass.
  const auto post = frame_posteriors(seq);
  const int blank = config_.blank_label;

  struct Mass {
    double p_blank = 0.0;     // prefix prob, path ending in blank
    double p_nonblank = 0.0;  // prefix prob, path ending in last symbol
    double total() const { return p_blank + p_nonblank; }
  };
  std::map<std::vector<int>, Mass> beams;
  beams[{}] = Mass{1.0, 0.0};

  for (const auto& p : post) {
    std::map<std::vector<int>, Mass> next;
    for (const auto& [prefix, mass] : beams) {
      for (int s = 0; s < static_cast<int>(p.size()); ++s) {
        const double ps = p[static_cast<std::size_t>(s)];
        if (ps < 1e-6) continue;
        if (s == blank) {
          next[prefix].p_blank += ps * mass.total();
        } else if (!prefix.empty() && prefix.back() == s) {
          // Repeat of the last symbol: extends the same prefix only from
          // the non-blank path; a new occurrence needs a blank in between.
          next[prefix].p_nonblank += ps * mass.p_nonblank;
          std::vector<int> extended = prefix;
          extended.push_back(s);
          next[extended].p_nonblank += ps * mass.p_blank;
        } else {
          std::vector<int> extended = prefix;
          extended.push_back(s);
          next[extended].p_nonblank += ps * mass.total();
        }
      }
    }
    // Keep the top beam_width prefixes.
    std::vector<std::pair<double, std::vector<int>>> ranked;
    ranked.reserve(next.size());
    for (auto& [prefix, mass] : next) ranked.emplace_back(mass.total(), prefix);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    beams.clear();
    double renorm = 0.0;
    for (std::size_t i = 0; i < ranked.size() && i < config_.beam_width; ++i) {
      renorm += ranked[i].first;
    }
    if (renorm <= 0.0) renorm = 1.0;
    for (std::size_t i = 0; i < ranked.size() && i < config_.beam_width; ++i) {
      Mass m = next[ranked[i].second];
      m.p_blank /= renorm;
      m.p_nonblank /= renorm;
      beams[ranked[i].second] = m;
    }
  }

  const std::vector<int>* best = nullptr;
  double best_mass = -1.0;
  for (const auto& [prefix, mass] : beams) {
    if (mass.total() > best_mass) {
      best_mass = mass.total();
      best = &prefix;
    }
  }
  return best ? *best : std::vector<int>{};
}

double FrameSequenceModel::evaluate(
    const std::vector<FrameSequence>& sequences,
    const std::vector<std::vector<int>>& references) const {
  if (sequences.size() != references.size() || sequences.empty()) {
    throw std::invalid_argument("FrameSequenceModel::evaluate: size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const std::vector<int> hyp = decode_beam(sequences[i]);
    total += sequence_match_accuracy(references[i], hyp);
  }
  return total / static_cast<double>(sequences.size());
}

}  // namespace aegis::ml
