#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aegis::ml {

void KnnClassifier::fit(FeatureMatrix X, Labels y, int num_classes) {
  if (X.size() != y.size() || X.empty()) {
    throw std::invalid_argument("Knn::fit: bad inputs");
  }
  X_ = std::move(X);
  y_ = std::move(y);
  num_classes_ = num_classes;
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  std::vector<std::pair<double, int>> dist;
  dist.reserve(X_.size());
  for (std::size_t i = 0; i < X_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size() && j < X_[i].size(); ++j) {
      const double diff = x[j] - X_[i][j];
      d2 += diff * diff;
    }
    dist.emplace_back(d2, y_[i]);
  }
  const std::size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<std::size_t>(dist[i].second)];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

double KnnClassifier::accuracy(const FeatureMatrix& X, const Labels& y) const {
  if (X.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (predict(X[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

}  // namespace aegis::ml
