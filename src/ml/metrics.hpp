// Classification and sequence metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aegis::ml {

/// Fraction of equal elements. Requires equal sizes.
double accuracy_score(std::span<const int> truth, std::span<const int> predicted);

/// Levenshtein edit distance between two label sequences.
std::size_t edit_distance(std::span<const int> a, std::span<const int> b);

/// The paper's MEA "matched layers" metric: 1 - ED / max(|ref|, |hyp|).
double sequence_match_accuracy(std::span<const int> reference,
                               std::span<const int> hypothesis);

/// CTC-style collapse: merges runs of identical labels and removes `blank`.
std::vector<int> ctc_collapse(std::span<const int> frames, int blank);

}  // namespace aegis::ml
