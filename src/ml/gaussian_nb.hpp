// Gaussian naive Bayes classifier — a second, structurally different attack
// model. The Fig. 9 defense claim is model-agnostic, so the evaluation
// cross-checks the MLP results with this generative learner (and kNN).
#pragma once

#include <vector>

#include "ml/mlp.hpp"  // FeatureMatrix / Labels aliases

namespace aegis::ml {

class GaussianNbClassifier {
 public:
  void fit(const FeatureMatrix& X, const Labels& y, int num_classes);
  int predict(const std::vector<double>& x) const;
  double accuracy(const FeatureMatrix& X, const Labels& y) const;

 private:
  std::vector<std::vector<double>> mu_;     // class x dim
  std::vector<std::vector<double>> var_;    // class x dim
  std::vector<double> log_prior_;
};

}  // namespace aegis::ml
