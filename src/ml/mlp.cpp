#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aegis::ml {

void softmax(std::vector<double>& logits) noexcept {
  const double peak = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& z : logits) {
    z = std::exp(z - peak);
    sum += z;
  }
  for (double& z : logits) z /= sum;
}

// aegis-rng: stream(mlp-init)
MlpClassifier::MlpClassifier(std::size_t input_dim, std::size_t num_classes,
                             MlpConfig config)
    : input_dim_(input_dim),
      num_classes_(num_classes),
      config_(std::move(config)),
      rng_(config_.seed) {
  std::size_t prev = input_dim_;
  std::vector<std::size_t> sizes = config_.hidden;
  sizes.push_back(num_classes_);
  for (std::size_t out : sizes) {
    Layer layer;
    layer.in = prev;
    layer.out = out;
    layer.w.resize(out * prev);
    layer.b.assign(out, 0.0);
    layer.vw.assign(out * prev, 0.0);
    layer.vb.assign(out, 0.0);
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(prev));
    for (double& w : layer.w) w = rng_.normal(0.0, scale);
    layers_.push_back(std::move(layer));
    prev = out;
  }
}

void MlpClassifier::forward(const std::vector<double>& x,
                            std::vector<std::vector<double>>& activations) const {
  if (x.size() != input_dim_) {
    // Out-of-bounds reads in the mat-vec below would otherwise be silent.
    throw std::invalid_argument("Mlp::forward: input dimension mismatch");
  }
  activations.assign(layers_.size() + 1, {});
  activations[0] = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::vector<double>& in = activations[l];
    std::vector<double> out(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* row = &layer.w[o * layer.in];
      double z = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) z += row[i] * in[i];
      // ReLU on hidden layers; logits on the last.
      out[o] = (l + 1 < layers_.size() && z < 0.0) ? 0.0 : z;
    }
    activations[l + 1] = std::move(out);
  }
}

// aegis-rng: stream(mlp-fit)
std::vector<EpochStats> MlpClassifier::fit(const FeatureMatrix& X, const Labels& y,
                                           const FeatureMatrix& X_val,
                                           const Labels& y_val) {
  if (X.size() != y.size()) throw std::invalid_argument("Mlp::fit: size mismatch");
  std::vector<EpochStats> history;
  if (X.empty()) return history;

  std::vector<std::size_t> order(X.size());
  std::iota(order.begin(), order.end(), 0);
  double lr = config_.learning_rate;

  // Gradient accumulators, reused across batches.
  std::vector<std::vector<double>> grad_w(layers_.size()), grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].assign(layers_[l].w.size(), 0.0);
    grad_b[l].assign(layers_[l].b.size(), 0.0);
  }

  std::vector<std::vector<double>> acts;
  std::vector<double> noisy;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    double loss_sum = 0.0;
    std::size_t correct = 0;

    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      for (auto& g : grad_w) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        const std::vector<double>* input = &X[idx];
        if (config_.input_noise > 0.0) {
          noisy = X[idx];
          for (double& v : noisy) v += rng_.normal(0.0, config_.input_noise);
          input = &noisy;
        }
        forward(*input, acts);
        std::vector<double> probs = acts.back();
        softmax(probs);
        const int label = y[idx];
        loss_sum += -std::log(std::max(probs[static_cast<std::size_t>(label)], 1e-12));
        const int pred = static_cast<int>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (pred == label) ++correct;

        // Backprop: delta at logits is probs - onehot.
        std::vector<double> delta = std::move(probs);
        delta[static_cast<std::size_t>(label)] -= 1.0;
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& in = acts[l];
          for (std::size_t o = 0; o < layer.out; ++o) {
            grad_b[l][o] += delta[o];
            double* grow = &grad_w[l][o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i) grow[i] += delta[o] * in[i];
          }
          if (l == 0) break;
          std::vector<double> prev_delta(layer.in, 0.0);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double* row = &layer.w[o * layer.in];
            const double d = delta[o];
            for (std::size_t i = 0; i < layer.in; ++i) prev_delta[i] += row[i] * d;
          }
          // ReLU derivative via the stored (post-activation) values.
          for (std::size_t i = 0; i < layer.in; ++i) {
            if (acts[l][i] <= 0.0) prev_delta[i] = 0.0;
          }
          delta = std::move(prev_delta);
        }
      }

      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.w.size(); ++k) {
          const double g = grad_w[l][k] * inv_batch + config_.weight_decay * layer.w[k];
          layer.vw[k] = config_.momentum * layer.vw[k] - lr * g;
          layer.w[k] += layer.vw[k];
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          const double g = grad_b[l][k] * inv_batch;
          layer.vb[k] = config_.momentum * layer.vb[k] - lr * g;
          layer.b[k] += layer.vb[k];
        }
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(X.size());
    stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(X.size());
    stats.val_accuracy = X_val.empty() ? 0.0 : accuracy(X_val, y_val);
    history.push_back(stats);
    lr *= config_.lr_decay;
  }
  return history;
}

std::vector<double> MlpClassifier::predict_proba(const std::vector<double>& x) const {
  std::vector<std::vector<double>> acts;
  forward(x, acts);
  std::vector<double> probs = acts.back();
  softmax(probs);
  return probs;
}

int MlpClassifier::predict(const std::vector<double>& x) const {
  const std::vector<double> probs = predict_proba(x);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

double MlpClassifier::accuracy(const FeatureMatrix& X, const Labels& y) const {
  if (X.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (predict(X[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

}  // namespace aegis::ml
