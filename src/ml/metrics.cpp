#include "ml/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace aegis::ml {

double accuracy_score(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("accuracy_score: size mismatch");
  }
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

std::size_t edit_distance(std::span<const int> a, std::span<const int> b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double sequence_match_accuracy(std::span<const int> reference,
                               std::span<const int> hypothesis) {
  const std::size_t denom = std::max(reference.size(), hypothesis.size());
  if (denom == 0) return 1.0;
  const std::size_t ed = edit_distance(reference, hypothesis);
  return 1.0 - static_cast<double>(ed) / static_cast<double>(denom);
}

std::vector<int> ctc_collapse(std::span<const int> frames, int blank) {
  std::vector<int> out;
  int prev = blank;
  for (int f : frames) {
    if (f != blank && f != prev) out.push_back(f);
    prev = f;
  }
  return out;
}

}  // namespace aegis::ml
