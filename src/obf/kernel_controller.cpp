#include "obf/kernel_controller.hpp"

namespace aegis::obf {

KernelController::KernelController(const pmu::EventDatabase& db,
                                   std::uint32_t reference_event,
                                   double noise_unit)
    : event_(&db.by_id(reference_event)),
      noise_unit_(noise_unit > 0.0 ? noise_unit : 1.0) {}

void KernelController::sample(const sim::VirtualMachine& vm) {
  const double raw = event_->response.expected_count(vm.last_slice_stats());
  channel_.push_back(raw / noise_unit_);
  // A netlink socket buffer is bounded; the daemon keeps up in practice,
  // but drop oldest on overflow rather than block the kernel side.
  if (channel_.size() > 1024) channel_.pop_front();
}

double KernelController::dequeue() noexcept {
  if (channel_.empty()) return 0.0;
  const double value = channel_.front();
  channel_.pop_front();
  return value;
}

}  // namespace aegis::obf
