// Rotating noise plans (Obelix-style dynamic defense, ROADMAP item 3).
//
// A fixed weighted gadget segment places every injected count on one learned
// direction (per stream) in event space; an adaptive attacker who retrains
// on obfuscated traces can model that stationary signature. RotatingPlan
// answers by morphing the plan over time: it derives `variants` distinct
// reweightings of the base segment and walks them on a deterministic,
// seed-keyed schedule (one variant per `period` slices), so the injected
// signature is non-stationary across the attacker's pooling windows.
//
// Privacy neutrality BY CONSTRUCTION: every variant keeps the base plan's
// gadget list (same gadget count, hence the same number of per-gadget noise
// streams), and the rotation only selects WHICH injector realizes each
// slice's noise. The DP mechanism draws — the only thing the accountant
// charges — are one per stream per slice, exactly as for the fixed plan.
// tests/obf_test's RotationIsPrivacyNeutral pins this property.
#pragma once

#include <cstdint>
#include <vector>

#include "obf/injector.hpp"

namespace aegis::obf {

struct RotatingPlanConfig {
  std::size_t variants = 4;  // distinct reweightings to rotate over (>= 1)
  std::size_t period = 16;   // slices per variant before morphing
  double boost = 2.5;        // weight multiplier on each variant's subset
  std::uint64_t seed = 0x0BE11ULL;  // schedule + subset derivation
};

class RotatingPlan {
 public:
  /// Derives `config.variants` reweightings of `base`. Variant v boosts the
  /// gadgets of a seed-derived subset (one in every `variants` gadgets,
  /// phase-shifted by v) by `config.boost`; all variants share the base
  /// gadget list and order.
  RotatingPlan(std::vector<WeightedGadget> base, RotatingPlanConfig config);

  std::size_t variants() const noexcept { return segments_.size(); }
  std::size_t period() const noexcept { return config_.period; }
  const RotatingPlanConfig& config() const noexcept { return config_; }

  /// Deterministic schedule: slice t runs variant
  /// schedule[(t / period) mod variants], where schedule is a seed-keyed
  /// permutation of the variant ids. Pure function of (config, t).
  std::size_t variant_at(std::size_t slice) const noexcept;

  const std::vector<WeightedGadget>& segment(std::size_t variant) const {
    return segments_.at(variant);
  }

 private:
  RotatingPlanConfig config_;
  std::vector<std::vector<WeightedGadget>> segments_;
  std::vector<std::size_t> schedule_;
};

}  // namespace aegis::obf
