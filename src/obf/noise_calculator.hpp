// Noise calculator (paper Section VII-C, userspace daemon component).
//
// Computes the per-slice noise amount from the configured mechanism. To
// support high injection rates, Laplace draws come from a precomputed ring
// buffer refilled in batches with the direct uniform->Laplace inverse-CDF
// transform — the paper notes that calling library APIs per draw is too
// slow (see bench_micro_components for the comparison).
#pragma once

#include <memory>
#include <vector>

#include "dp/mechanism.hpp"
#include "util/rng.hpp"

namespace aegis::obf {

class NoiseCalculator {
 public:
  explicit NoiseCalculator(dp::MechanismConfig config,
                           std::size_t buffer_size = 4096);

  /// Normalized noise to inject at the next slice, given the normalized
  /// observation x_t of the protected series (x_t is ignored by mechanisms
  /// with input-independent noise, e.g. Laplace).
  double noise_for(double x_t);

  /// Restarts the protected series (new application run).
  void reset_series();

  const dp::MechanismConfig& config() const noexcept { return config_; }

  /// Exposed for the micro-benchmarks: refills and drains the Laplace ring
  /// buffer once, returning the batch.
  std::vector<double> precompute_batch(std::size_t n);

 private:
  double next_buffered_laplace();

  dp::MechanismConfig config_;
  std::unique_ptr<dp::NoiseMechanism> mechanism_;
  util::Rng rng_;
  std::vector<double> buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace aegis::obf
