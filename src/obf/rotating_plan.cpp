#include "obf/rotating_plan.hpp"

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace aegis::obf {

// aegis-rng: stream(rotating-plan-init)
RotatingPlan::RotatingPlan(std::vector<WeightedGadget> base,
                           RotatingPlanConfig config)
    : config_(config) {
  if (base.empty()) {
    throw std::invalid_argument("RotatingPlan: empty base segment");
  }
  if (config_.variants == 0) config_.variants = 1;
  if (config_.period == 0) config_.period = 1;

  // A seed-derived phase offset decorrelates the boosted subsets from the
  // base segment's gadget order without changing the gadget list.
  util::Rng rng(config_.seed);
  const std::size_t phase = static_cast<std::size_t>(
      rng.uniform_index(static_cast<std::uint64_t>(base.size())));

  segments_.reserve(config_.variants);
  for (std::size_t v = 0; v < config_.variants; ++v) {
    std::vector<WeightedGadget> variant = base;
    for (std::size_t g = 0; g < variant.size(); ++g) {
      if ((g + phase + v) % config_.variants == 0) {
        variant[g].weight *= config_.boost;
      }
    }
    segments_.push_back(std::move(variant));
  }

  schedule_.resize(segments_.size());
  std::iota(schedule_.begin(), schedule_.end(), 0);
  rng.shuffle(schedule_);
}

std::size_t RotatingPlan::variant_at(std::size_t slice) const noexcept {
  return schedule_[(slice / config_.period) % schedule_.size()];
}

}  // namespace aegis::obf
