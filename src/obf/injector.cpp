#include "obf/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace aegis::obf {

namespace {

/// Bucket bounds for the injected-repetition histogram: injections span a
/// few reps (idle slices) to tens of thousands (worst-case bursts).
constexpr double kRepsBounds[] = {1.0,    10.0,    100.0,   1000.0,
                                  10000.0, 100000.0};

/// Upper bound on the uops of a single submitted chunk (see the chunking
/// comment in the constructor).
constexpr double kMaxChunkUops = 50e3;

std::vector<WeightedGadget> unit_weights(const fuzzer::GadgetCover& cover) {
  std::vector<WeightedGadget> gadgets;
  gadgets.reserve(cover.gadgets.size());
  for (const fuzzer::Gadget& g : cover.gadgets) {
    gadgets.push_back(WeightedGadget{g, 1.0});
  }
  return gadgets;
}

}  // namespace

NoiseInjector::NoiseInjector(const isa::IsaSpecification& spec,
                             const fuzzer::GadgetCover& cover, double unit_reps,
                             double clip_norm)
    : NoiseInjector(spec, unit_weights(cover), unit_reps, clip_norm) {}

NoiseInjector::NoiseInjector(const isa::IsaSpecification& spec,
                             const std::vector<WeightedGadget>& gadgets,
                             double unit_reps, double clip_norm)
    : unit_reps_(unit_reps),
      clip_norm_(clip_norm),
      injections_(telemetry::Registry::global().metrics().counter(
          "aegis_obf_injections_total")),
      injected_reps_(telemetry::Registry::global().metrics().histogram(
          "aegis_obf_injected_reps", kRepsBounds)) {
  if (gadgets.empty()) {
    throw std::invalid_argument("NoiseInjector: empty gadget cover");
  }
  for (const WeightedGadget& wg : gadgets) {
    sim::InstructionBlock block =
        sim::InstructionBlock::from_variant(spec.by_uid(wg.gadget.reset_uid),
                                            1.0, sim::kInjectedNoiseRegion)
            .scaled(wg.weight);
    block += sim::InstructionBlock::from_variant(
                 spec.by_uid(wg.gadget.trigger_uid), 1.0,
                 sim::kInjectedNoiseRegion)
                 .scaled(wg.weight);
    segment_ += block;
    per_gadget_.push_back(std::move(block));
  }
  gadget_count_ = gadgets.size();
  // Submissions are split into bounded chunks so one injection cannot
  // monopolize a slice's cycle budget in a single unsplittable block.
  per_gadget_max_reps_.reserve(per_gadget_.size());
  per_gadget_full_chunk_.reserve(per_gadget_.size());
  for (const sim::InstructionBlock& block : per_gadget_) {
    const double uops_per_rep = std::max(block.uops, 1.0);
    per_gadget_max_reps_.push_back(std::max(1.0, kMaxChunkUops / uops_per_rep));
    per_gadget_full_chunk_.push_back(block.scaled(per_gadget_max_reps_.back()));
  }
  segment_max_reps_per_chunk_ =
      std::max(1.0, kMaxChunkUops / std::max(segment_.uops, 1.0));
  segment_full_chunk_ = segment_.scaled(segment_max_reps_per_chunk_);
}

// aegis-lint: noalloc
double NoiseInjector::inject_mixture(sim::VirtualMachine& vm,
                                     std::span<const double> noise_norms) {
  if (noise_norms.size() != per_gadget_.size()) {
    throw std::invalid_argument("inject_mixture: one draw per gadget required");
  }
  double reps_total = 0.0;
  for (std::size_t g = 0; g < per_gadget_.size(); ++g) {
    const double clipped = std::clamp(noise_norms[g], 0.0, clip_norm_);
    const double reps = clipped * unit_reps_;
    if (reps <= 0.0) continue;
    reps_total += reps;
    const double max_reps = per_gadget_max_reps_[g];
    // Full chunks submit the precomputed block; this yields the identical
    // submission sequence as scaling every chunk (the last chunk, including
    // the remaining == max_reps case, is block.scaled(remaining) either way
    // and full chunks are by definition scaled(max_reps)).
    double remaining = reps;
    while (remaining > max_reps) {
      // aegis-lint: alloc-ok(simulator boundary: the VM queue models guest work; a deployed injector programs noise without building instruction queues)
      vm.submit(per_gadget_full_chunk_[g]);
      remaining -= max_reps;
    }
    if (remaining > 0.0) {
      // aegis-lint: alloc-ok(simulator boundary: the VM queue models guest work; a deployed injector programs noise without building instruction queues)
      vm.submit(per_gadget_[g].scaled(remaining));
    }
  }
  const double mean_reps =
      reps_total / static_cast<double>(per_gadget_.size());
  total_reps_ += mean_reps;
  injections_.inc();
  injected_reps_.observe(mean_reps);
  return mean_reps;
}

// aegis-lint: noalloc
double NoiseInjector::inject(sim::VirtualMachine& vm, double noise_norm) {
  // Paper: each noise element is truncated by the clip bound [0, B_u]
  // (repetition counts cannot be negative).
  const double clipped = std::clamp(noise_norm, 0.0, clip_norm_);
  const double reps = clipped * unit_reps_;
  if (reps <= 0.0) return 0.0;
  // Same chunk sequence as scaling each chunk per call; see inject_mixture.
  double remaining = reps;
  while (remaining > segment_max_reps_per_chunk_) {
    // aegis-lint: alloc-ok(simulator boundary: the VM queue models guest work; a deployed injector programs noise without building instruction queues)
    vm.submit(segment_full_chunk_);
    remaining -= segment_max_reps_per_chunk_;
  }
  if (remaining > 0.0) {
    // aegis-lint: alloc-ok(simulator boundary: the VM queue models guest work; a deployed injector programs noise without building instruction queues)
    vm.submit(segment_.scaled(remaining));
  }
  total_reps_ += reps;
  injections_.inc();
  injected_reps_.observe(reps);
  return reps;
}

}  // namespace aegis::obf
