// Kernel-module controller (paper Section VII-C, Fig. 7).
//
// Inside the guest, a kernel module launches the protection service and —
// when the d* mechanism is active — reads the protected HPC event's
// real-time value with RDPMC, forwarding it to the userspace daemon over a
// netlink socket. In the simulator, the in-guest RDPMC view of the last
// slice is VirtualMachine::last_slice_stats(); the netlink channel is a
// bounded queue between controller and daemon.
#pragma once

#include <cstdint>
#include <deque>

#include "pmu/event_database.hpp"
#include "sim/virtual_machine.hpp"

namespace aegis::obf {

class KernelController {
 public:
  /// `reference_event` is the protected series the mechanism normalizes
  /// over; `noise_unit` is the raw-count value of 1.0 normalized units.
  KernelController(const pmu::EventDatabase& db, std::uint32_t reference_event,
                   double noise_unit);

  /// RDPMC sample of the reference event over the VM's last slice,
  /// normalized. Enqueued on the netlink channel.
  void sample(const sim::VirtualMachine& vm);

  /// Daemon side: drains the oldest queued sample (0 if none yet — the
  /// first slice of a run has no RDPMC history).
  double dequeue() noexcept;

  std::size_t queued() const noexcept { return channel_.size(); }

 private:
  const pmu::EventDescriptor* event_;
  double noise_unit_;
  std::deque<double> channel_;  // netlink socket stand-in
};

}  // namespace aegis::obf
