// Event Obfuscator (paper Section VII): the online in-guest defense.
//
// Deployed inside the victim VM and triggered when a protected application
// launches, it runs a kernel controller (HPC monitoring for d*) and a
// userspace daemon (noise calculator + injector) pinned to the same vCPU as
// the protected application, injecting DP-calibrated gadget noise into the
// VM's execution flow every sampling slice.
//
// Noise calibration. The DP mechanisms operate on *normalized* series
// (Delta_x = 1 after normalization, Section VII-B). The normalization unit
// of an event is its calibrated per-slice leakage spread (the standard
// deviation of per-slice counts across secrets and visits). One repetition
// of the stacked cover segment adds a known count delta to every covered
// event, so the repetition count per 1.0 units of normalized noise is
//     unit_reps = max over protected events of (sigma_e / delta_e),
// which guarantees every protected event receives at least its full
// mechanism noise (extra noise on the others only strengthens privacy).
#pragma once

#include <memory>

#include "dp/mechanism.hpp"
#include "fuzzer/set_cover.hpp"
#include "obf/injector.hpp"
#include "obf/kernel_controller.hpp"
#include "obf/noise_calculator.hpp"
#include "obf/rotating_plan.hpp"
#include "sim/host_monitor.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/workload.hpp"

namespace aegis::obf {

struct ObfuscatorConfig {
  dp::MechanismConfig mechanism;
  std::uint32_t reference_event = 0;  // series the d* mechanism monitors
  double reference_sigma = 1.0;       // raw counts per 1.0 normalized units
  double unit_reps = 1.0;             // segment reps per 1.0 normalized noise
  double clip_norm = 6.0;             // B_u in normalized units
  /// Optional weighted segment (per-gadget multiplicities). Empty = stack
  /// the cover gadgets with unit weight.
  std::vector<WeightedGadget> weighted_segment;
  /// Ablation switch: drive the whole segment with ONE noise stream instead
  /// of one per gadget. This places all injected counts on a fixed ray in
  /// event space, which a defense-aware attacker can project out — kept
  /// only for the design-ablation bench.
  bool single_stream = false;
  /// Dynamic defense: morph the injected plan over a deterministic schedule
  /// (see obf/rotating_plan.hpp). ε-neutral: rotation never changes the
  /// number of DP releases, only which gadget weights realize them.
  bool rotate = false;
  RotatingPlanConfig rotation;
  std::uint64_t seed = 1;
};

/// Per-event per-slice count statistics over a secret set, used to size the
/// injected noise (sigma) and the clip bound / constant-output level (peak).
struct EventCalibration {
  std::uint32_t event_id = 0;
  double stddev = 0.0;
  double mean = 0.0;
  double peak = 0.0;  // the paper's p
};

/// Degraded-granularity wrapper for admission-controlled sessions: the
/// inner agent (kernel sample + noise injection) fires only every
/// `granularity`-th slice, so a monitoring window of T slices consumes
/// ceil(T / granularity) DP releases instead of T. granularity == 1 is the
/// identity. The skipped slices run un-refreshed — the previously injected
/// gadget counts still skew them via micro-architectural carry-over, but
/// the DP guarantee is only per released slice, which is exactly what the
/// BudgetGovernor accounts for.
sim::SliceAgent coarsen_agent(sim::SliceAgent inner, std::size_t granularity);

std::vector<EventCalibration> calibrate_events(
    const pmu::EventDatabase& db, const std::vector<std::uint32_t>& event_ids,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    std::size_t runs_per_secret, std::uint64_t seed,
    const sim::VmConfig& vm_config = {});

class EventObfuscator {
 public:
  EventObfuscator(const pmu::EventDatabase& db,
                  const isa::IsaSpecification& spec, fuzzer::GadgetCover cover,
                  ObfuscatorConfig config);

  /// Starts one protection session (one protected application run) and
  /// returns the slice agent to install in the VM. Each session gets a
  /// fresh mechanism series and independent randomness.
  sim::SliceAgent session();

  /// Cumulative injected noise across all sessions (Section IX-A compares
  /// mechanisms by total injected event counts).
  double total_injected_repetitions() const noexcept;
  /// Injected counts as seen on the reference event.
  double total_injected_reference_counts() const noexcept;
  /// Cumulative DP mechanism invocations across all sessions — what the
  /// privacy accountant charges. Rotation must leave this identical to the
  /// fixed plan's (tests/obf_test RotationIsPrivacyNeutral).
  std::uint64_t total_noise_draws() const noexcept { return *total_draws_; }
  std::size_t sessions_started() const noexcept { return sessions_; }

  const fuzzer::GadgetCover& cover() const noexcept { return cover_; }
  const ObfuscatorConfig& config() const noexcept { return config_; }
  double reference_delta() const noexcept { return reference_delta_; }

 private:
  const pmu::EventDatabase* db_;
  const isa::IsaSpecification* spec_;
  fuzzer::GadgetCover cover_;
  ObfuscatorConfig config_;
  util::Rng session_seeds_;
  std::size_t sessions_ = 0;
  // Shared across sessions for cumulative accounting.
  std::shared_ptr<double> total_reps_ = std::make_shared<double>(0.0);
  std::shared_ptr<std::uint64_t> total_draws_ =
      std::make_shared<std::uint64_t>(0);
  double reference_delta_ = 1.0;
  /// Flight-recorder handles, resolved once at construction (telemetry-
  /// handle rule). rotation_event_ fires on every plan-variant switch (the
  /// slice agent runs on worker threads — the record path is wait-free and
  /// draws no RNG, so the bit-identity contract holds); rng_event_
  /// checkpoints each session's derived mechanism seed. Both stamp VIRTUAL
  /// time (slice index / session ordinal), never a wall clock.
  telemetry::EventHandle rotation_event_;
  telemetry::EventHandle rng_event_;
};

}  // namespace aegis::obf
