#include "obf/noise_calculator.hpp"

namespace aegis::obf {

NoiseCalculator::NoiseCalculator(dp::MechanismConfig config,
                                 std::size_t buffer_size)
    : config_(config),
      mechanism_(dp::make_mechanism(config)),
      rng_(config.seed ^ 0xCA1CULL) {
  buffer_.reserve(buffer_size == 0 ? 1 : buffer_size);
  buffer_.resize(buffer_size == 0 ? 1 : buffer_size);
  buffer_pos_ = buffer_.size();  // force refill on first use
}

// aegis-rng: stream(noise-calculator-next-buffered-laplace)
double NoiseCalculator::next_buffered_laplace() {
  if (buffer_pos_ >= buffer_.size()) {
    const double scale = config_.sensitivity / config_.epsilon;
    for (double& r : buffer_) r = rng_.laplace(0.0, scale);
    buffer_pos_ = 0;
  }
  return buffer_[buffer_pos_++];
}

double NoiseCalculator::noise_for(double x_t) {
  if (config_.kind == dp::MechanismKind::kLaplace) {
    // Fast path: input-independent noise straight from the ring buffer.
    return next_buffered_laplace();
  }
  return mechanism_->noisy_value(x_t) - x_t;
}

void NoiseCalculator::reset_series() { mechanism_->reset(); }

std::vector<double> NoiseCalculator::precompute_batch(std::size_t n) {
  std::vector<double> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(next_buffered_laplace());
  return batch;
}

}  // namespace aegis::obf
