// Noise injector (paper Section VII-C): realizes a computed noise amount as
// repetitions of the stacked cover-gadget code segment submitted into the
// VM's execution flow. The segment executes every cover gadget once per
// repetition, so one repetition adds the cover's per-event segment effect
// to every vulnerable event simultaneously.
#pragma once

#include <span>

#include "fuzzer/set_cover.hpp"
#include "isa/spec.hpp"
#include "sim/virtual_machine.hpp"
#include "telemetry/metrics.hpp"

namespace aegis::obf {

/// One gadget's multiplicity inside the stacked noise segment. The base
/// cover gadgets carry weight 1; events whose segment delta is weak get
/// their best gadget boosted (Section VI-F: the highest-value-change gadget
/// disturbs most per executed instruction).
struct WeightedGadget {
  fuzzer::Gadget gadget;
  double weight = 1.0;
};

class NoiseInjector {
 public:
  /// Builds the stacked segment from the cover with unit weights.
  /// `unit_reps` converts 1.0 units of normalized mechanism noise into
  /// segment repetitions; `clip_norm` is the paper's B_u truncation bound
  /// in normalized units.
  NoiseInjector(const isa::IsaSpecification& spec,
                const fuzzer::GadgetCover& cover, double unit_reps,
                double clip_norm);

  /// Builds the segment from an explicitly weighted gadget list.
  NoiseInjector(const isa::IsaSpecification& spec,
                const std::vector<WeightedGadget>& gadgets, double unit_reps,
                double clip_norm);

  /// Clips the normalized noise to [0, B_u], converts it to segment
  /// repetitions and submits the blocks. Returns the repetitions injected.
  double inject(sim::VirtualMachine& vm, double noise_norm);

  /// Mixture injection: one independent noise draw per gadget. A single
  /// draw for the whole segment would place all injected counts on one
  /// fixed direction in event space, which a defense-aware attacker can
  /// project out; independent per-gadget draws span the full gadget-effect
  /// subspace. `noise_norms` must have one entry per gadget. Returns the
  /// mean repetitions injected across gadgets.
  double inject_mixture(sim::VirtualMachine& vm,
                        std::span<const double> noise_norms);

  std::size_t gadget_count() const noexcept { return per_gadget_.size(); }

  const sim::InstructionBlock& segment_block() const noexcept { return segment_; }
  std::size_t segment_gadgets() const noexcept { return gadget_count_; }

  /// Cumulative repetitions injected by this session.
  double total_repetitions() const noexcept { return total_reps_; }

 private:
  sim::InstructionBlock segment_;   // one execution of all cover gadgets
  std::vector<sim::InstructionBlock> per_gadget_;  // weighted, per gadget
  // Chunking bounds AND the full-sized chunk blocks precomputed at
  // construction: inject runs on the protected VM's per-slice execution
  // path, so per-call divisions over immutable segment shapes — and the
  // scaled() block materialization for every full chunk, which dominates
  // large injections — were hoisted out of it. Only the final partial
  // chunk still scales per call.
  double segment_max_reps_per_chunk_ = 1.0;
  sim::InstructionBlock segment_full_chunk_;  // segment_.scaled(max chunk)
  std::vector<double> per_gadget_max_reps_;
  std::vector<sim::InstructionBlock> per_gadget_full_chunk_;
  double unit_reps_ = 1.0;
  double clip_norm_ = 0.0;
  std::size_t gadget_count_ = 0;
  double total_reps_ = 0.0;
  /// Resolved once at construction (telemetry-handle rule); the noalloc
  /// inject paths only touch lock-free handles.
  telemetry::Counter injections_;
  telemetry::Histogram injected_reps_;
};

}  // namespace aegis::obf
