#include "obf/obfuscator.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.hpp"
#include "util/stats.hpp"

namespace aegis::obf {

sim::SliceAgent coarsen_agent(sim::SliceAgent inner, std::size_t granularity) {
  if (granularity <= 1) return inner;
  return [inner = std::move(inner), granularity](sim::VirtualMachine& vm,
                                                 std::size_t t) {
    if (t % granularity == 0) inner(vm, t);
  };
}

// aegis-rng: stream(obfuscator-calibrate-events)
std::vector<EventCalibration> calibrate_events(
    const pmu::EventDatabase& db, const std::vector<std::uint32_t>& event_ids,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    std::size_t runs_per_secret, std::uint64_t seed,
    const sim::VmConfig& vm_config) {
  util::Rng rng(seed);
  std::vector<EventCalibration> calibrations;
  calibrations.reserve(event_ids.size());
  constexpr std::size_t kGroup = pmu::EventDatabase::kNumCounters;

  for (std::size_t base = 0; base < event_ids.size(); base += kGroup) {
    std::vector<std::uint32_t> group(
        event_ids.begin() + static_cast<std::ptrdiff_t>(base),
        event_ids.begin() +
            static_cast<std::ptrdiff_t>(std::min(event_ids.size(), base + kGroup)));
    std::vector<std::vector<double>> samples(group.size());
    for (const auto& secret : secrets) {
      for (std::size_t run = 0; run < runs_per_secret; ++run) {
        sim::VirtualMachine vm(vm_config, rng.next_u64());
        sim::HostMonitor monitor(db, rng.next_u64());
        const sim::MonitorResult result =
            monitor.monitor(vm, secret->visit(rng.next_u64()), group,
                            secret->trace_slices());
        for (const auto& row : result.samples) {
          for (std::size_t e = 0; e < group.size(); ++e) {
            samples[e].push_back(row[e]);
          }
        }
      }
    }
    for (std::size_t e = 0; e < group.size(); ++e) {
      EventCalibration cal;
      cal.event_id = group[e];
      cal.mean = util::mean(samples[e]);
      cal.stddev = util::stddev(samples[e]);
      cal.peak = util::max_value(samples[e]);
      calibrations.push_back(cal);
    }
  }
  return calibrations;
}

EventObfuscator::EventObfuscator(const pmu::EventDatabase& db,
                                 const isa::IsaSpecification& spec,
                                 fuzzer::GadgetCover cover,
                                 ObfuscatorConfig config)
    : db_(&db),
      spec_(&spec),
      cover_(std::move(cover)),
      config_(config),
      session_seeds_(config.seed ^ 0x0BF5ULL),
      rotation_event_(telemetry::Registry::global().recorder().event_handle(
          "plan.rotation", telemetry::WideEventType::kPlanRotation)),
      rng_event_(telemetry::Registry::global().recorder().event_handle(
          "obfuscator.rng", telemetry::WideEventType::kRngCheckpoint)) {
  for (const auto& [event, delta] : cover_.segment_effect) {
    if (event == config_.reference_event) {
      reference_delta_ = std::max(delta, 1e-9);
      break;
    }
  }
}

// aegis-rng: stream(obfuscator-session)
sim::SliceAgent EventObfuscator::session() {
  ++sessions_;
  dp::MechanismConfig mech = config_.mechanism;
  mech.seed = session_seeds_.next_u64();
  // RNG-stream checkpoint: with the session ordinal and the derived seed a
  // dump reader can replay exactly which mechanism randomness this session
  // consumed (seed derivation itself is untouched — the record draws none).
  rng_event_.record(/*t_ns=*/sessions_, mech.seed, config_.seed,
                    static_cast<std::uint64_t>(config_.rotate));

  auto controller = std::make_shared<KernelController>(
      *db_, config_.reference_event, config_.reference_sigma);
  const std::vector<WeightedGadget> base_segment =
      config_.weighted_segment.empty() ? [&] {
        std::vector<WeightedGadget> unit;
        unit.reserve(cover_.gadgets.size());
        for (const auto& g : cover_.gadgets) unit.push_back({g, 1.0});
        return unit;
      }()
                                       : config_.weighted_segment;

  // Fixed plan: one injector for the whole session. Rotating plan: one
  // injector per variant; the schedule picks which one realizes slice t's
  // noise. Every variant keeps the base gadget list, so the stream count —
  // and with it the number of DP releases — is identical either way.
  auto injectors =
      std::make_shared<std::vector<std::unique_ptr<NoiseInjector>>>();
  std::shared_ptr<RotatingPlan> plan;
  if (config_.rotate) {
    RotatingPlanConfig rotation = config_.rotation;
    rotation.seed = session_seeds_.next_u64() ^ rotation.seed;
    plan = std::make_shared<RotatingPlan>(base_segment, rotation);
    for (std::size_t v = 0; v < plan->variants(); ++v) {
      injectors->push_back(std::make_unique<NoiseInjector>(
          *spec_, plan->segment(v), config_.unit_reps, config_.clip_norm));
    }
  } else {
    injectors->push_back(std::make_unique<NoiseInjector>(
        *spec_, base_segment, config_.unit_reps, config_.clip_norm));
  }

  // One independent noise stream per gadget: a single stream would put all
  // injected counts on one fixed direction in event space, which a
  // defense-aware attacker could project out (see NoiseInjector::
  // inject_mixture).
  const std::size_t streams =
      config_.single_stream ? 1 : injectors->front()->gadget_count();
  auto calculators = std::make_shared<std::vector<NoiseCalculator>>();
  for (std::size_t g = 0; g < streams; ++g) {
    dp::MechanismConfig per_gadget = mech;
    per_gadget.seed = session_seeds_.next_u64();
    calculators->emplace_back(per_gadget);
  }
  std::shared_ptr<double> total_reps = total_reps_;
  std::shared_ptr<std::uint64_t> total_draws = total_draws_;
  const telemetry::EventHandle rotation_event = rotation_event_;
  const std::uint64_t session_ordinal = sessions_;

  return [calculators, controller, injectors, plan, total_reps, total_draws,
          rotation_event,
          session_ordinal](sim::VirtualMachine& vm, std::size_t t) {
    // Kernel module: RDPMC the protected series (previous slice) and send
    // it to the daemon over the netlink channel.
    controller->sample(vm);
    const double x_t = controller->dequeue();
    // Userspace daemon: compute per-gadget noise and inject through the
    // slice's scheduled plan variant (index 0 when not rotating).
    const std::size_t variant = plan ? plan->variant_at(t) : 0;
    if (plan && (t == 0 || plan->variant_at(t - 1) != variant)) {
      // Plan rotation wide event, stamped with the slice index (virtual
      // time). Wait-free, RNG-free: safe on worker threads without touching
      // the bit-identity contract.
      rotation_event.record(/*t_ns=*/t, variant, injectors->size(),
                            session_ordinal);
    }
    NoiseInjector& injector = *(*injectors)[variant];
    const double before = injector.total_repetitions();
    if (calculators->size() == 1) {
      injector.inject(vm, (*calculators)[0].noise_for(x_t));
    } else {
      std::vector<double> noise(calculators->size());
      for (std::size_t g = 0; g < noise.size(); ++g) {
        noise[g] = (*calculators)[g].noise_for(x_t);
      }
      injector.inject_mixture(vm, noise);
    }
    *total_draws += calculators->size();
    *total_reps += injector.total_repetitions() - before;
  };
}

double EventObfuscator::total_injected_repetitions() const noexcept {
  return *total_reps_;
}

double EventObfuscator::total_injected_reference_counts() const noexcept {
  return *total_reps_ * reference_delta_;
}

}  // namespace aegis::obf
