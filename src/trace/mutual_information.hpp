// Mutual-information estimators between paired continuous series, used by
// the Fig. 9c evaluation: I(X; X') between clean and noised leakage traces
// shrinks as the DP noise grows, which bounds I(X'; Y) for ANY downstream
// attack model (data-processing inequality).
#pragma once

#include <span>

namespace aegis::trace {

/// Gaussian (correlation-based) MI in bits: -0.5 log2(1 - rho^2).
/// Exact when (X, X') are jointly Gaussian — which holds here because the
/// noised series is clean + independent additive noise on near-Gaussian
/// counts (Section V's Fig. 3 observation).
double gaussian_mi_bits(std::span<const double> x, std::span<const double> y) noexcept;

/// Histogram (binned plug-in) MI in bits, with equal-width bins. A
/// distribution-free cross-check for the Gaussian estimator.
double histogram_mi_bits(std::span<const double> x, std::span<const double> y,
                         std::size_t bins = 16);

}  // namespace aegis::trace
