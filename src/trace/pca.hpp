// Principal Component Analysis via power iteration with deflation.
//
// The profiler compresses each leakage time series to a scalar feature with
// PCA before Gaussian modelling (Section V-B, following the paper). Sizes
// here are small (hundreds of samples, tens-to-hundreds of dimensions), so
// a dependency-free power-iteration implementation is plenty.
#pragma once

#include <cstddef>
#include <vector>

namespace aegis::trace {

class Pca {
 public:
  /// Fits `components` principal directions on row-major samples X (n x d).
  void fit(const std::vector<std::vector<double>>& X, std::size_t components);

  /// Projects one sample onto the fitted components.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Convenience: projection onto the first principal component.
  double first_component(const std::vector<double>& x) const;

  const std::vector<double>& mean() const noexcept { return mean_; }
  const std::vector<std::vector<double>>& components() const noexcept {
    return components_;
  }
  const std::vector<double>& explained_variance() const noexcept {
    return eigenvalues_;
  }

 private:
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  // k x d, unit norm
  std::vector<double> eigenvalues_;
};

}  // namespace aegis::trace
