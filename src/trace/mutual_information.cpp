#include "trace/mutual_information.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace aegis::trace {

double gaussian_mi_bits(std::span<const double> x,
                        std::span<const double> y) noexcept {
  const double rho = util::pearson(x, y);
  const double r2 = std::min(rho * rho, 1.0 - 1e-12);
  return -0.5 * std::log2(1.0 - r2);
}

double histogram_mi_bits(std::span<const double> x, std::span<const double> y,
                         std::size_t bins) {
  if (x.size() != y.size() || x.size() < 2 || bins < 2) return 0.0;
  const double x_lo = util::min_value(x), x_hi = util::max_value(x);
  const double y_lo = util::min_value(y), y_hi = util::max_value(y);
  if (!(x_hi > x_lo) || !(y_hi > y_lo)) return 0.0;

  auto bin_of = [bins](double v, double lo, double hi) {
    std::size_t b = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                             static_cast<double>(bins));
    return b >= bins ? bins - 1 : b;
  };

  std::vector<double> joint(bins * bins, 0.0), px(bins, 0.0), py(bins, 0.0);
  const double w = 1.0 / static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t bx = bin_of(x[i], x_lo, x_hi);
    const std::size_t by = bin_of(y[i], y_lo, y_hi);
    joint[bx * bins + by] += w;
    px[bx] += w;
    py[by] += w;
  }
  double mi = 0.0;
  for (std::size_t bx = 0; bx < bins; ++bx) {
    for (std::size_t by = 0; by < bins; ++by) {
      const double j = joint[bx * bins + by];
      if (j > 0.0 && px[bx] > 0.0 && py[by] > 0.0) {
        mi += j * std::log2(j / (px[bx] * py[by]));
      }
    }
  }
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace aegis::trace
