// Trace containers and feature extraction.
//
// A Trace is one monitored execution: T sampling slices x E events of HPC
// count deltas (the paper's 4 x 3000 tensors). TraceSet pairs traces with
// secret labels for attack training and profiler analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace aegis::trace {

struct Trace {
  /// samples[t][e] — count delta of event e in slice t.
  std::vector<std::vector<double>> samples;

  std::size_t slices() const noexcept { return samples.size(); }
  std::size_t events() const noexcept {
    return samples.empty() ? 0 : samples.front().size();
  }

  /// Column e as a flat series.
  std::vector<double> event_series(std::size_t e) const;

  /// Total count of event e over the window.
  double event_total(std::size_t e) const noexcept;

  /// Per-event, per-window mean features: splits the T slices into
  /// `windows` equal chunks and averages each event within a chunk,
  /// yielding an events() * windows feature vector. This is the temporal
  /// pooling the paper's CNN front-end effectively performs.
  /// By default a trace shorter than `windows` shrinks the vector to
  /// events() * T; with `pad` the dimension is always events() * windows
  /// and windows that received no sample stay zero. Classifiers need
  /// `pad` when trace length varies per run (attacker-stepped sampling),
  /// because their input dimension is fixed at training time.
  std::vector<double> window_features(std::size_t windows,
                                      bool pad = false) const;

  /// Like window_features, but each event's windows are sorted descending —
  /// an order-statistic view that is invariant to *when* activity bursts
  /// occur. This supplies the translation invariance the paper's CNN gets
  /// from convolution; transient workloads (keystrokes) need it.
  std::vector<double> sorted_window_features(std::size_t windows,
                                             bool pad = false) const;
};

struct TraceSet {
  std::vector<Trace> traces;
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const noexcept { return traces.size(); }

  /// Random split preserving nothing fancy (the paper splits 70/30).
  void split(double train_fraction, util::Rng& rng, TraceSet& train,
             TraceSet& validation) const;

  /// Deterministic split keyed purely on (seed, trace id): trace i ranks by
  /// split_mix64(seed, i) and the lowest-keyed 70% (say) train. Unlike the
  /// Rng overload the assignment is a pure function of the seed and each
  /// trace's stable index — independent of container iteration order, of
  /// how many draws the caller's RNG made before the split, and of thread
  /// count — so training sets are reproducible from the seed alone.
  void split_by_id(double train_fraction, std::uint64_t seed, TraceSet& train,
                   TraceSet& validation) const;
};

/// Index order underlying split_by_id: [0, n) sorted ascending by
/// (split_mix64(seed, i), i). The first floor(train_fraction * n) indices
/// of this order form the training split. Shared with the sequence attacks
/// (MEA/KEA), which split frame sequences rather than TraceSets.
std::vector<std::size_t> split_order_by_id(std::size_t n, std::uint64_t seed);

/// Per-dimension z-score normalizer fitted on training features and applied
/// to both splits (never fit on validation).
class Standardizer {
 public:
  void fit(const std::vector<std::vector<double>>& features);
  void apply(std::vector<double>& feature) const;
  void apply_all(std::vector<std::vector<double>>& features) const;
  bool fitted() const noexcept { return !mu_.empty(); }

 private:
  std::vector<double> mu_;
  std::vector<double> sigma_;
};

}  // namespace aegis::trace
