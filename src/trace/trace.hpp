// Trace containers and feature extraction.
//
// A Trace is one monitored execution: T sampling slices x E events of HPC
// count deltas (the paper's 4 x 3000 tensors). TraceSet pairs traces with
// secret labels for attack training and profiler analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace aegis::trace {

struct Trace {
  /// samples[t][e] — count delta of event e in slice t.
  std::vector<std::vector<double>> samples;

  std::size_t slices() const noexcept { return samples.size(); }
  std::size_t events() const noexcept {
    return samples.empty() ? 0 : samples.front().size();
  }

  /// Column e as a flat series.
  std::vector<double> event_series(std::size_t e) const;

  /// Total count of event e over the window.
  double event_total(std::size_t e) const noexcept;

  /// Per-event, per-window mean features: splits the T slices into
  /// `windows` equal chunks and averages each event within a chunk,
  /// yielding an events() * windows feature vector. This is the temporal
  /// pooling the paper's CNN front-end effectively performs.
  std::vector<double> window_features(std::size_t windows) const;

  /// Like window_features, but each event's windows are sorted descending —
  /// an order-statistic view that is invariant to *when* activity bursts
  /// occur. This supplies the translation invariance the paper's CNN gets
  /// from convolution; transient workloads (keystrokes) need it.
  std::vector<double> sorted_window_features(std::size_t windows) const;
};

struct TraceSet {
  std::vector<Trace> traces;
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const noexcept { return traces.size(); }

  /// Random split preserving nothing fancy (the paper splits 70/30).
  void split(double train_fraction, util::Rng& rng, TraceSet& train,
             TraceSet& validation) const;
};

/// Per-dimension z-score normalizer fitted on training features and applied
/// to both splits (never fit on validation).
class Standardizer {
 public:
  void fit(const std::vector<std::vector<double>>& features);
  void apply(std::vector<double>& feature) const;
  void apply_all(std::vector<std::vector<double>>& features) const;
  bool fitted() const noexcept { return !mu_.empty(); }

 private:
  std::vector<double> mu_;
  std::vector<double> sigma_;
};

}  // namespace aegis::trace
