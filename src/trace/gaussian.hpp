// Gaussian modelling of per-secret event values and the paper's Eq. 1
// mutual-information vulnerability metric.
//
// Section V-B: per secret y, the PCA feature of an event's leakage trace is
// modelled as N(mu_y, sigma_y^2). The event's vulnerability is the mutual
// information I(Y; X) = H(Y) - Int P(x) H(Y | X=x) dx, computed here by
// numerical integration over the Gaussian mixture.
#pragma once

#include <span>
#include <vector>

#include "util/stats.hpp"

namespace aegis::trace {

/// Per-secret Gaussian model of one event's feature value.
struct SecretGaussianModel {
  std::vector<util::GaussianFit> per_secret;  // N(mu_y, sigma_y) for each y
  std::vector<double> priors;                 // P(y); uniform if empty

  /// Fits one Gaussian per secret from grouped feature values:
  /// values_by_secret[y] = feature values observed for secret y.
  static SecretGaussianModel fit(
      const std::vector<std::vector<double>>& values_by_secret);
};

/// Entropy of a discrete distribution, in bits.
double entropy_bits(std::span<const double> p) noexcept;

/// Eq. 1: mutual information (bits) between the secret Y and the event
/// feature X under the fitted Gaussian mixture, by numerical integration
/// with `grid_points` samples across +-4 sigma of the mixture support.
double mutual_information_eq1(const SecretGaussianModel& model,
                              std::size_t grid_points = 2001);

}  // namespace aegis::trace
