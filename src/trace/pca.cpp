#include "trace/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace aegis::trace {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

// aegis-rng: stream(pca-fit)
void Pca::fit(const std::vector<std::vector<double>>& X, std::size_t components) {
  if (X.empty()) throw std::invalid_argument("Pca::fit: empty sample set");
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  components = std::min(components, d);

  mean_.assign(d, 0.0);
  for (const auto& x : X) {
    for (std::size_t i = 0; i < d; ++i) mean_[i] += x[i];
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  std::vector<std::vector<double>> centered(n, std::vector<double>(d));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < d; ++i) centered[r][i] = X[r][i] - mean_[i];
  }

  components_.clear();
  eigenvalues_.clear();
  util::Rng rng(0xACA5ULL);
  // Power iteration on the (implicit) covariance: v <- X^T (X v) / n,
  // deflating previously-found directions from the data.
  for (std::size_t k = 0; k < components; ++k) {
    std::vector<double> v(d);
    for (double& vi : v) vi = rng.normal();
    double lambda = 0.0;
    for (int iter = 0; iter < 120; ++iter) {
      std::vector<double> w(d, 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        const double proj = dot(centered[r], v);
        for (std::size_t i = 0; i < d; ++i) w[i] += proj * centered[r][i];
      }
      for (double& wi : w) wi /= static_cast<double>(n);
      const double w_norm = norm(w);
      if (w_norm < 1e-15) break;
      double delta = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double next = w[i] / w_norm;
        delta += std::abs(next - v[i]);
        v[i] = next;
      }
      lambda = w_norm;
      if (delta < 1e-10) break;
    }
    components_.push_back(v);
    eigenvalues_.push_back(lambda);
    // Deflate: remove the found direction from every sample.
    for (auto& row : centered) {
      const double proj = dot(row, v);
      for (std::size_t i = 0; i < d; ++i) row[i] -= proj * v[i];
    }
  }
}

std::vector<double> Pca::transform(const std::vector<double>& x) const {
  std::vector<double> out(components_.size(), 0.0);
  for (std::size_t k = 0; k < components_.size(); ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size() && i < mean_.size(); ++i) {
      s += (x[i] - mean_[i]) * components_[k][i];
    }
    out[k] = s;
  }
  return out;
}

double Pca::first_component(const std::vector<double>& x) const {
  if (components_.empty()) throw std::logic_error("Pca: not fitted");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size() && i < mean_.size(); ++i) {
    s += (x[i] - mean_[i]) * components_[0][i];
  }
  return s;
}

}  // namespace aegis::trace
