#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aegis::trace {

std::vector<double> Trace::event_series(std::size_t e) const {
  std::vector<double> series;
  series.reserve(samples.size());
  for (const auto& row : samples) series.push_back(row.at(e));
  return series;
}

double Trace::event_total(std::size_t e) const noexcept {
  double total = 0.0;
  for (const auto& row : samples) total += row[e];
  return total;
}

std::vector<double> Trace::window_features(std::size_t windows,
                                           bool pad) const {
  const std::size_t T = slices();
  const std::size_t E = events();
  if (windows == 0 || T == 0) return {};
  if (windows > T && !pad) windows = T;
  std::vector<double> features(E * windows, 0.0);
  std::vector<double> counts(windows, 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    std::size_t w = t * windows / T;
    if (w >= windows) w = windows - 1;
    counts[w] += 1.0;
    for (std::size_t e = 0; e < E; ++e) {
      features[e * windows + w] += samples[t][e];
    }
  }
  for (std::size_t e = 0; e < E; ++e) {
    for (std::size_t w = 0; w < windows; ++w) {
      if (counts[w] > 0.0) features[e * windows + w] /= counts[w];
    }
  }
  return features;
}

std::vector<double> Trace::sorted_window_features(std::size_t windows,
                                                  bool pad) const {
  std::vector<double> features = window_features(windows, pad);
  const std::size_t E = events();
  if (E == 0) return features;
  const std::size_t w = features.size() / E;
  for (std::size_t e = 0; e < E; ++e) {
    auto first = features.begin() + static_cast<std::ptrdiff_t>(e * w);
    std::sort(first, first + static_cast<std::ptrdiff_t>(w),
              [](double a, double b) { return a > b; });
  }
  return features;
}

// aegis-rng: stream(trace-split)
void TraceSet::split(double train_fraction, util::Rng& rng, TraceSet& train,
                     TraceSet& validation) const {
  std::vector<std::size_t> order(traces.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(order.size()));
  train = TraceSet{};
  validation = TraceSet{};
  train.num_classes = num_classes;
  validation.num_classes = num_classes;
  for (std::size_t i = 0; i < order.size(); ++i) {
    TraceSet& dst = i < n_train ? train : validation;
    dst.traces.push_back(traces[order[i]]);
    dst.labels.push_back(labels[order[i]]);
  }
}

std::vector<std::size_t> split_order_by_id(std::size_t n, std::uint64_t seed) {
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed;
  keyed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keyed.emplace_back(util::split_mix64(seed, i), i);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::size_t> order;
  order.reserve(n);
  for (const auto& [key, i] : keyed) order.push_back(i);
  return order;
}

void TraceSet::split_by_id(double train_fraction, std::uint64_t seed,
                           TraceSet& train, TraceSet& validation) const {
  const std::vector<std::size_t> order = split_order_by_id(traces.size(), seed);
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(order.size()));
  train = TraceSet{};
  validation = TraceSet{};
  train.num_classes = num_classes;
  validation.num_classes = num_classes;
  for (std::size_t i = 0; i < order.size(); ++i) {
    TraceSet& dst = i < n_train ? train : validation;
    dst.traces.push_back(traces[order[i]]);
    dst.labels.push_back(labels[order[i]]);
  }
}

void Standardizer::fit(const std::vector<std::vector<double>>& features) {
  if (features.empty()) throw std::invalid_argument("Standardizer: empty fit set");
  const std::size_t d = features.front().size();
  mu_.assign(d, 0.0);
  sigma_.assign(d, 0.0);
  for (const auto& f : features) {
    for (std::size_t i = 0; i < d; ++i) mu_[i] += f[i];
  }
  const double n = static_cast<double>(features.size());
  for (double& m : mu_) m /= n;
  for (const auto& f : features) {
    for (std::size_t i = 0; i < d; ++i) {
      const double diff = f[i] - mu_[i];
      sigma_[i] += diff * diff;
    }
  }
  for (double& s : sigma_) s = std::sqrt(s / n);
}

void Standardizer::apply(std::vector<double>& feature) const {
  for (std::size_t i = 0; i < feature.size() && i < mu_.size(); ++i) {
    feature[i] = sigma_[i] > 1e-12 ? (feature[i] - mu_[i]) / sigma_[i] : 0.0;
  }
}

void Standardizer::apply_all(std::vector<std::vector<double>>& features) const {
  for (auto& f : features) apply(f);
}

}  // namespace aegis::trace
