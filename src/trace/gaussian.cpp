#include "trace/gaussian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace aegis::trace {

SecretGaussianModel SecretGaussianModel::fit(
    const std::vector<std::vector<double>>& values_by_secret) {
  SecretGaussianModel model;
  model.per_secret.reserve(values_by_secret.size());
  for (const auto& values : values_by_secret) {
    model.per_secret.push_back(util::fit_gaussian(values));
  }
  return model;
}

double entropy_bits(std::span<const double> p) noexcept {
  double h = 0.0;
  for (double pi : p) {
    if (pi > 0.0) h -= pi * std::log2(pi);
  }
  return h;
}

double mutual_information_eq1(const SecretGaussianModel& model,
                              std::size_t grid_points) {
  const std::size_t n = model.per_secret.size();
  if (n == 0) return 0.0;
  std::vector<double> priors = model.priors;
  if (priors.empty()) {
    priors.assign(n, 1.0 / static_cast<double>(n));
  }
  if (priors.size() != n) {
    throw std::invalid_argument("mutual_information_eq1: prior size mismatch");
  }
  const double h_y = entropy_bits(priors);

  // Integration support: union of +-4 sigma intervals.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& g : model.per_secret) {
    lo = std::min(lo, g.mu - 4.0 * g.sigma);
    hi = std::max(hi, g.mu + 4.0 * g.sigma);
  }
  if (!(hi > lo)) return 0.0;
  if (grid_points < 3) grid_points = 3;
  const double dx = (hi - lo) / static_cast<double>(grid_points - 1);

  double conditional_term = 0.0;  // Int P(x) H(Y|X=x) dx (trapezoid rule)
  std::vector<double> posterior(n);
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double x = lo + static_cast<double>(g) * dx;
    double px = 0.0;
    for (std::size_t y = 0; y < n; ++y) {
      posterior[y] =
          priors[y] *
          util::gaussian_pdf(x, model.per_secret[y].mu, model.per_secret[y].sigma);
      px += posterior[y];
    }
    if (px <= 0.0) continue;
    for (double& p : posterior) p /= px;
    const double h_y_given_x = entropy_bits(posterior);
    const double weight = (g == 0 || g + 1 == grid_points) ? 0.5 : 1.0;
    conditional_term += weight * px * h_y_given_x * dx;
  }
  const double mi = h_y - conditional_term;
  return std::clamp(mi, 0.0, h_y);
}

}  // namespace aegis::trace
