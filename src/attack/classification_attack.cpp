#include "attack/classification_attack.hpp"

#include <stdexcept>

namespace aegis::attack {

ClassificationAttack::ClassificationAttack(const pmu::EventDatabase& db,
                                           ClassificationAttackConfig config)
    : db_(&db), config_(std::move(config)) {}

std::vector<double> ClassificationAttack::featurize(const trace::Trace& t) const {
  // Padded pooling: attacker-stepped sampling (SlicePlanner) makes trace
  // length vary per run, but the classifier's input dimension is fixed at
  // training time.
  std::vector<double> f =
      config_.sort_windows
          ? t.sorted_window_features(config_.feature_windows, /*pad=*/true)
          : t.window_features(config_.feature_windows, /*pad=*/true);
  if (standardizer_.fitted()) standardizer_.apply(f);
  return f;
}

std::vector<ml::EpochStats> ClassificationAttack::train(
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const AgentFactory& template_agent) {
  const trace::TraceSet all =
      collect_traces(*db_, secrets, config_.collection, template_agent);

  // Pure (seed, trace id) split: reproducible from the seed alone, immune
  // to RNG draw history and container iteration order (regression-tested in
  // trace_test's SplitByIdIsPureFunctionOfSeedAndId).
  trace::TraceSet train_set, val_set;
  all.split_by_id(config_.train_fraction, config_.collection.seed ^ 0x5A11ULL,
                  train_set, val_set);

  auto raw_features = [this](const trace::Trace& t) {
    return config_.sort_windows
               ? t.sorted_window_features(config_.feature_windows, /*pad=*/true)
               : t.window_features(config_.feature_windows, /*pad=*/true);
  };
  ml::FeatureMatrix X_train, X_val;
  for (const auto& t : train_set.traces) X_train.push_back(raw_features(t));
  standardizer_ = trace::Standardizer{};
  standardizer_.fit(X_train);
  standardizer_.apply_all(X_train);
  for (const auto& t : val_set.traces) {
    std::vector<double> f = raw_features(t);
    standardizer_.apply(f);
    X_val.push_back(std::move(f));
  }

  model_ = std::make_unique<ml::MlpClassifier>(
      X_train.front().size(), static_cast<std::size_t>(all.num_classes),
      config_.mlp);
  auto history = model_->fit(X_train, train_set.labels, X_val, val_set.labels);
  validation_accuracy_ = history.empty() ? 0.0 : history.back().val_accuracy;
  return history;
}

int ClassificationAttack::predict(const trace::Trace& trace) const {
  if (!model_) throw std::logic_error("ClassificationAttack: not trained");
  return model_->predict(featurize(trace));
}

// aegis-rng: stream(classification-attack-exploit)
double ClassificationAttack::exploit(
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    std::size_t visits_per_secret, std::uint64_t seed,
    const AgentFactory& victim_agent) const {
  if (!model_) throw std::logic_error("ClassificationAttack: not trained");
  util::Rng rng(seed);
  std::size_t correct = 0, total = 0;
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    for (std::size_t v = 0; v < visits_per_secret; ++v) {
      sim::SliceAgent agent = victim_agent ? victim_agent() : sim::SliceAgent{};
      const trace::Trace t = collect_one(*db_, *secrets[s], config_.collection,
                                         rng.next_u64(), agent);
      if (predict(t) == static_cast<int>(s)) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace aegis::attack
