// Website fingerprinting attack (paper Section III-C): 45 Alexa-top sites,
// 4 monitored HPC events, CNN-analog classifier. Undefended accuracy in the
// paper: 98.7 % validation / 98.6 % on the victim VM.
#pragma once

#include "attack/classification_attack.hpp"
#include "workload/website.hpp"

namespace aegis::attack {

struct WfaScale {
  std::size_t sites = workload::WebsiteWorkload::kNumSites;
  std::size_t slices = 240;             // paper: 3000 (3 s at 1 ms)
  std::size_t traces_per_site = 24;     // paper: 1000 visits per site
  std::size_t epochs = 30;
};

/// Builds the WFA secret set (one workload per target site).
std::vector<std::unique_ptr<workload::Workload>> make_wfa_secrets(
    const WfaScale& scale);

/// Default attack configuration for the given monitored events.
ClassificationAttackConfig make_wfa_config(std::vector<std::uint32_t> event_ids,
                                           const WfaScale& scale,
                                           std::uint64_t seed = 0x3FA1ULL);

}  // namespace aegis::attack
