// Slice-stepping attacker policy (SEV-Step spirit): instead of passively
// consuming fixed 1 ms sampling windows, the malicious hypervisor places
// the counter reads itself — single-stepping through activity bursts to
// keep their fine structure, and coalescing quiet stretches where a finer
// cadence only buys noise. The policy plugs into the trace sampler through
// CollectionConfig::stepper, so every existing attack pipeline can run in
// stepped mode without code changes.
#pragma once

#include "attack/dataset.hpp"

namespace aegis::attack {

/// Burst-adaptive stepping policy. The planner watches one monitored event
/// and keeps a running mean of its per-sample deltas; a delta above
/// `burst_factor * mean` marks a burst.
struct BurstStepPolicy {
  std::size_t fine_step = 1;    // base slices per sample inside a burst
  std::size_t coarse_step = 4;  // base slices per sample when quiet
  double burst_factor = 1.0;    // burst iff watched delta > factor * mean
  std::size_t watch_event = 0;  // index into the monitored event group
};

/// Planner factory for CollectionConfig::stepper. Each collected run gets a
/// fresh planner (fresh running mean), so traces are independent and the
/// collection stays a pure function of its seeds.
PlannerFactory make_burst_planner(BurstStepPolicy policy);

}  // namespace aegis::attack
