#include "attack/dataset.hpp"

namespace aegis::attack {

trace::Trace collect_one(const pmu::EventDatabase& db,
                         const workload::Workload& secret,
                         const CollectionConfig& config, std::uint64_t visit_seed,
                         const sim::SliceAgent& agent) {
  sim::VirtualMachine vm(config.vm, visit_seed ^ 0xF00DULL);
  sim::HostMonitor monitor(db, visit_seed ^ 0xBEEFULL);
  const sim::MonitorResult result =
      config.stepper
          ? monitor.monitor_stepped(vm, secret.visit(visit_seed),
                                    config.event_ids, secret.trace_slices(),
                                    config.stepper(), agent)
          : monitor.monitor(vm, secret.visit(visit_seed), config.event_ids,
                            secret.trace_slices(), agent);
  trace::Trace t;
  t.samples = result.samples;
  return t;
}

// aegis-rng: stream(dataset-collect-traces)
trace::TraceSet collect_traces(
    const pmu::EventDatabase& db,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const CollectionConfig& config, const AgentFactory& agent_factory) {
  trace::TraceSet set;
  set.num_classes = static_cast<int>(secrets.size());
  util::Rng rng(config.seed);
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    for (std::size_t v = 0; v < config.traces_per_secret; ++v) {
      const std::uint64_t visit_seed = rng.next_u64();
      sim::SliceAgent agent = agent_factory ? agent_factory() : sim::SliceAgent{};
      set.traces.push_back(
          collect_one(db, *secrets[s], config, visit_seed, agent));
      set.labels.push_back(static_cast<int>(s));
    }
  }
  return set;
}

}  // namespace aegis::attack
