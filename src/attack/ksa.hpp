// Keystroke sniffing attack (paper Section III-D): infer the number of
// keystrokes K in [0, 9] typed during the monitoring window. Undefended
// accuracy in the paper: 95.2 % validation / 95.5 % on the victim VM.
#pragma once

#include "attack/classification_attack.hpp"
#include "workload/keystroke.hpp"

namespace aegis::attack {

struct KsaScale {
  std::size_t slices = 240;           // paper: 3000
  std::size_t traces_per_count = 60;  // paper: 10000 windows over 10 classes
  std::size_t epochs = 30;
};

/// One secret per keystroke count K = 0..9.
std::vector<std::unique_ptr<workload::Workload>> make_ksa_secrets(
    const KsaScale& scale);

ClassificationAttackConfig make_ksa_config(std::vector<std::uint32_t> event_ids,
                                           const KsaScale& scale,
                                           std::uint64_t seed = 0x4A5BULL);

}  // namespace aegis::attack
