#include "attack/mea.hpp"

#include <stdexcept>

#include "ml/metrics.hpp"

namespace aegis::attack {

MeaAttack::MeaAttack(const pmu::EventDatabase& db, MeaConfig config)
    : db_(&db), config_(std::move(config)) {
  models_.reserve(config_.scale.models);
  for (std::size_t m = 0; m < config_.scale.models; ++m) {
    models_.emplace_back(m, config_.scale.slices);
  }
}

ml::FrameSequence MeaAttack::monitor_run(const workload::DnnWorkload& model,
                                         std::uint64_t visit_seed,
                                         bool want_labels,
                                         const sim::SliceAgent& agent) const {
  const workload::DnnWorkload::VisitPlan plan = model.plan(visit_seed);
  sim::VirtualMachine vm(config_.vm, visit_seed ^ 0xF00DULL);
  sim::HostMonitor monitor(*db_, visit_seed ^ 0xBEEFULL);
  const sim::MonitorResult result = monitor.monitor(
      vm, plan.source, config_.event_ids, config_.scale.slices, agent);
  ml::FrameSequence seq;
  seq.frames = result.samples;
  if (frame_standardizer_.fitted()) {
    frame_standardizer_.apply_all(seq.frames);
  }
  if (want_labels) seq.labels = plan.frame_labels;
  return seq;
}

// aegis-rng: stream(mea-train)
std::vector<ml::EpochStats> MeaAttack::train(const AgentFactory& template_agent) {
  util::Rng rng(config_.seed);
  std::vector<ml::FrameSequence> sequences;
  sequences.reserve(models_.size() * config_.scale.traces_per_model);
  for (const auto& model : models_) {
    for (std::size_t r = 0; r < config_.scale.traces_per_model; ++r) {
      sim::SliceAgent agent =
          template_agent ? template_agent() : sim::SliceAgent{};
      sequences.push_back(monitor_run(model, rng.next_u64(), true, agent));
    }
  }

  // Fit the frame standardizer on the raw training frames, then normalize.
  std::vector<std::vector<double>> all_frames;
  for (const auto& seq : sequences) {
    all_frames.insert(all_frames.end(), seq.frames.begin(), seq.frames.end());
  }
  frame_standardizer_ = trace::Standardizer{};
  frame_standardizer_.fit(all_frames);
  for (auto& seq : sequences) frame_standardizer_.apply_all(seq.frames);

  // Pure (seed, sequence id) split — see trace::split_order_by_id.
  const std::vector<std::size_t> order =
      trace::split_order_by_id(sequences.size(), config_.seed ^ 0x5A11ULL);
  const std::size_t n_train = static_cast<std::size_t>(
      config_.train_fraction * static_cast<double>(order.size()));
  std::vector<ml::FrameSequence> train_set, val_set;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? train_set : val_set).push_back(std::move(sequences[order[i]]));
  }

  ml::SequenceModelConfig seq_config;
  seq_config.context = 2;
  seq_config.blank_label = workload::kBlankLabel;
  seq_config.beam_width = 4;
  seq_config.mlp.hidden = {64, 32};
  seq_config.mlp.epochs = config_.scale.epochs;
  seq_config.mlp.learning_rate = 0.02;
  seq_config.mlp.batch_size = 64;
  seq_config.mlp.seed = config_.seed ^ 0x4D0DE1ULL;
  seq_model_ = std::make_unique<ml::FrameSequenceModel>(seq_config);
  auto history =
      seq_model_->fit(train_set, val_set, workload::kBlankLabel + 1);
  val_frame_accuracy_ = history.empty() ? 0.0 : history.back().val_accuracy;
  return history;
}

std::vector<int> MeaAttack::extract(std::size_t model_id,
                                    std::uint64_t visit_seed,
                                    const sim::SliceAgent& agent) const {
  if (!seq_model_) throw std::logic_error("MeaAttack: not trained");
  const ml::FrameSequence seq =
      monitor_run(models_.at(model_id), visit_seed, false, agent);
  return seq_model_->decode_beam(seq);
}

// aegis-rng: stream(mea-exploit)
double MeaAttack::exploit(std::size_t runs_per_model, std::uint64_t seed,
                          const AgentFactory& victim_agent) const {
  if (!seq_model_) throw std::logic_error("MeaAttack: not trained");
  util::Rng rng(seed);
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    // Reference: the true architecture with consecutive duplicate kinds
    // merged the same way the decoder's collapse merges them.
    std::vector<int> reference;
    for (workload::LayerKind k : models_[m].layer_sequence()) {
      reference.push_back(static_cast<int>(k));
    }
    for (std::size_t r = 0; r < runs_per_model; ++r) {
      sim::SliceAgent agent = victim_agent ? victim_agent() : sim::SliceAgent{};
      const std::vector<int> hyp = extract(m, rng.next_u64(), agent);
      total += ml::sequence_match_accuracy(reference, hyp);
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace aegis::attack
