// Generic HPC-trace classification attack (the Section III-B abstraction):
// offline, train f_theta : X -> Y on template-VM traces; online, predict the
// victim's secret from monitored traces. WFA and KSA are instances.
#pragma once

#include <memory>
#include <vector>

#include "attack/dataset.hpp"
#include "ml/mlp.hpp"
#include "trace/trace.hpp"

namespace aegis::attack {

struct ClassificationAttackConfig {
  CollectionConfig collection;
  std::size_t feature_windows = 24;  // temporal pooling of each trace
  bool sort_windows = false;         // order-statistic (burst-count) features
  double train_fraction = 0.7;       // paper: 70/30 train/validation
  ml::MlpConfig mlp;
};

class ClassificationAttack {
 public:
  ClassificationAttack(const pmu::EventDatabase& db,
                       ClassificationAttackConfig config);

  /// Offline stage: collects template traces for every secret (optionally
  /// under a defense agent — the Fig. 9b adaptive attacker trains on noisy
  /// data) and trains the model. Returns the training history (Fig. 1).
  std::vector<ml::EpochStats> train(
      const std::vector<std::unique_ptr<workload::Workload>>& secrets,
      const AgentFactory& template_agent = nullptr);

  /// Online stage: monitors fresh victim executions and returns the attack
  /// accuracy. `victim_agent` installs the defense inside the victim VM.
  double exploit(const std::vector<std::unique_ptr<workload::Workload>>& secrets,
                 std::size_t visits_per_secret, std::uint64_t seed,
                 const AgentFactory& victim_agent = nullptr) const;

  /// Classifies one already-monitored trace.
  int predict(const trace::Trace& trace) const;

  double validation_accuracy() const noexcept { return validation_accuracy_; }
  const ClassificationAttackConfig& config() const noexcept { return config_; }

 private:
  std::vector<double> featurize(const trace::Trace& trace) const;

  const pmu::EventDatabase* db_;
  ClassificationAttackConfig config_;
  trace::Standardizer standardizer_;
  std::unique_ptr<ml::MlpClassifier> model_;
  double validation_accuracy_ = 0.0;
};

}  // namespace aegis::attack
