// Key extraction attack (the paper's future-work scenario): recover an
// RSA-style secret exponent from HPC traces of a square-and-multiply
// modular exponentiation. Square and multiply operations have distinct HPC
// signatures; the decoded operation sequence maps directly back to key
// bits (S -> next bit, M -> that bit is 1).
#pragma once

#include <memory>
#include <vector>

#include "attack/dataset.hpp"
#include "ml/sequence_model.hpp"
#include "workload/crypto.hpp"

namespace aegis::attack {

struct KeaConfig {
  std::vector<std::uint32_t> event_ids;
  std::size_t key_bits = 40;
  std::size_t training_keys = 16;      // attacker-chosen template keys
  std::size_t traces_per_key = 6;
  std::size_t epochs = 14;
  std::size_t slices = 260;
  double train_fraction = 0.75;
  std::uint64_t seed = 0x4EAULL;
  sim::VmConfig vm;
};

/// Reconstructs key bits from a decoded square/multiply token sequence.
std::vector<bool> ops_to_key(const std::vector<int>& tokens);

class KeyExtractionAttack {
 public:
  KeyExtractionAttack(const pmu::EventDatabase& db, KeaConfig config);

  /// Offline: runs exponentiations with attacker-chosen keys and trains the
  /// frame/sequence model on the aligned square/multiply labels.
  std::vector<ml::EpochStats> train(const AgentFactory& template_agent = nullptr);

  /// Extracts the key from one victim exponentiation run.
  std::vector<bool> extract(const workload::CryptoWorkload& victim,
                            std::uint64_t visit_seed,
                            const sim::SliceAgent& agent = nullptr) const;

  /// Mean per-bit recovery accuracy over fresh victim keys.
  double exploit(std::size_t victim_keys, std::size_t runs_per_key,
                 std::uint64_t seed,
                 const AgentFactory& victim_agent = nullptr) const;

 private:
  ml::FrameSequence monitor_run(const workload::CryptoWorkload& target,
                                std::uint64_t visit_seed, bool want_labels,
                                const sim::SliceAgent& agent) const;

  const pmu::EventDatabase* db_;
  KeaConfig config_;
  trace::Standardizer frame_standardizer_;
  std::unique_ptr<ml::FrameSequenceModel> seq_model_;
};

}  // namespace aegis::attack
