#include "attack/slice_step.hpp"

#include <algorithm>
#include <memory>

namespace aegis::attack {

PlannerFactory make_burst_planner(BurstStepPolicy policy) {
  return [policy]() -> sim::SlicePlanner {
    // Shared state outlives the returned closure's copies; one planner
    // instance serves exactly one monitored run.
    auto sum = std::make_shared<double>(0.0);
    auto count = std::make_shared<std::size_t>(0);
    return [policy, sum, count](std::size_t /*sample*/,
                                const std::vector<double>& last) {
      const std::size_t fine = std::max<std::size_t>(policy.fine_step, 1);
      if (last.empty()) return fine;  // no signal yet: start fine
      const std::size_t e = std::min(policy.watch_event, last.size() - 1);
      const double delta = last[e];
      *sum += delta;
      ++*count;
      const double mean = *sum / static_cast<double>(*count);
      const bool burst = delta > policy.burst_factor * mean;
      return burst ? fine : std::max<std::size_t>(policy.coarse_step, 1);
    };
  };
}

}  // namespace aegis::attack
