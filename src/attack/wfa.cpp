#include "attack/wfa.hpp"

namespace aegis::attack {

std::vector<std::unique_ptr<workload::Workload>> make_wfa_secrets(
    const WfaScale& scale) {
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  secrets.reserve(scale.sites);
  for (std::size_t s = 0; s < scale.sites; ++s) {
    secrets.push_back(
        std::make_unique<workload::WebsiteWorkload>(s, scale.slices));
  }
  return secrets;
}

ClassificationAttackConfig make_wfa_config(std::vector<std::uint32_t> event_ids,
                                           const WfaScale& scale,
                                           std::uint64_t seed) {
  ClassificationAttackConfig config;
  config.collection.event_ids = std::move(event_ids);
  config.collection.traces_per_secret = scale.traces_per_site;
  config.collection.seed = seed;
  config.feature_windows = 24;
  config.mlp.hidden = {96, 48};
  config.mlp.epochs = scale.epochs;
  config.mlp.learning_rate = 0.03;
  config.mlp.seed = seed ^ 0x4D0DE1ULL;
  return config;
}

}  // namespace aegis::attack
