#include "attack/retrainable.hpp"

#include <optional>
#include <utility>

namespace aegis::attack {
namespace {

class ClassificationRetrainable final : public Retrainable {
 public:
  ClassificationRetrainable(
      const pmu::EventDatabase& db, std::string name,
      std::shared_ptr<const std::vector<std::unique_ptr<workload::Workload>>>
          secrets,
      ClassificationAttackConfig config, std::size_t visits_per_secret)
      : db_(&db),
        name_(std::move(name)),
        secrets_(std::move(secrets)),
        config_(std::move(config)),
        visits_per_secret_(visits_per_secret) {}

  const std::string& name() const noexcept override { return name_; }

  double random_guess() const noexcept override {
    return secrets_->empty() ? 0.0
                             : 1.0 / static_cast<double>(secrets_->size());
  }

  void retrain(const AgentFactory& template_agent) override {
    attack_.emplace(*db_, config_);
    attack_->train(*secrets_, template_agent);
  }

  double exploit(std::uint64_t seed,
                 const AgentFactory& victim_agent) const override {
    return attack_->exploit(*secrets_, visits_per_secret_, seed, victim_agent);
  }

  double validation_accuracy() const noexcept override {
    return attack_ ? attack_->validation_accuracy() : 0.0;
  }

 private:
  const pmu::EventDatabase* db_;
  std::string name_;
  std::shared_ptr<const std::vector<std::unique_ptr<workload::Workload>>>
      secrets_;
  ClassificationAttackConfig config_;
  std::size_t visits_per_secret_;
  std::optional<ClassificationAttack> attack_;
};

class MeaRetrainable final : public Retrainable {
 public:
  MeaRetrainable(const pmu::EventDatabase& db, MeaConfig config,
                 std::size_t runs_per_model)
      : db_(&db),
        name_("mea"),
        config_(std::move(config)),
        runs_per_model_(runs_per_model) {}

  const std::string& name() const noexcept override { return name_; }
  // Matched-layers is a sequence metric; an uninformed decoder scores ~0.
  double random_guess() const noexcept override { return 0.0; }

  void retrain(const AgentFactory& template_agent) override {
    attack_.emplace(*db_, config_);
    attack_->train(template_agent);
  }

  double exploit(std::uint64_t seed,
                 const AgentFactory& victim_agent) const override {
    return attack_->exploit(runs_per_model_, seed, victim_agent);
  }

  double validation_accuracy() const noexcept override {
    return attack_ ? attack_->validation_frame_accuracy() : 0.0;
  }

 private:
  const pmu::EventDatabase* db_;
  std::string name_;
  MeaConfig config_;
  std::size_t runs_per_model_;
  std::optional<MeaAttack> attack_;
};

class KeaRetrainable final : public Retrainable {
 public:
  KeaRetrainable(const pmu::EventDatabase& db, KeaConfig config,
                 std::size_t victim_keys, std::size_t runs_per_key)
      : db_(&db),
        name_("kea"),
        config_(std::move(config)),
        victim_keys_(victim_keys),
        runs_per_key_(runs_per_key) {}

  const std::string& name() const noexcept override { return name_; }
  // Per-bit recovery: a coin flip gets half the key bits.
  double random_guess() const noexcept override { return 0.5; }

  void retrain(const AgentFactory& template_agent) override {
    attack_.emplace(*db_, config_);
    attack_->train(template_agent);
  }

  double exploit(std::uint64_t seed,
                 const AgentFactory& victim_agent) const override {
    return attack_->exploit(victim_keys_, runs_per_key_, seed, victim_agent);
  }

  double validation_accuracy() const noexcept override { return 0.0; }

 private:
  const pmu::EventDatabase* db_;
  std::string name_;
  KeaConfig config_;
  std::size_t victim_keys_;
  std::size_t runs_per_key_;
  std::optional<KeyExtractionAttack> attack_;
};

}  // namespace

std::unique_ptr<Retrainable> make_retrainable_classification(
    const pmu::EventDatabase& db, std::string name,
    std::shared_ptr<const std::vector<std::unique_ptr<workload::Workload>>>
        secrets,
    ClassificationAttackConfig config, std::size_t visits_per_secret) {
  return std::make_unique<ClassificationRetrainable>(
      db, std::move(name), std::move(secrets), std::move(config),
      visits_per_secret);
}

std::unique_ptr<Retrainable> make_retrainable_mea(const pmu::EventDatabase& db,
                                                  MeaConfig config,
                                                  std::size_t runs_per_model) {
  return std::make_unique<MeaRetrainable>(db, std::move(config),
                                          runs_per_model);
}

std::unique_ptr<Retrainable> make_retrainable_kea(const pmu::EventDatabase& db,
                                                  KeaConfig config,
                                                  std::size_t victim_keys,
                                                  std::size_t runs_per_key) {
  return std::make_unique<KeaRetrainable>(db, std::move(config), victim_keys,
                                          runs_per_key);
}

}  // namespace aegis::attack
