#include "attack/kea.hpp"

#include <stdexcept>

#include "ml/metrics.hpp"

namespace aegis::attack {

std::vector<bool> ops_to_key(const std::vector<int>& tokens) {
  // Token stream per bit: SQUARE, then MULTIPLY iff the bit is 1.
  std::vector<bool> key;
  bool have_bit = false;
  bool current = false;
  for (int token : tokens) {
    if (token == static_cast<int>(workload::CryptoOp::kSquare)) {
      if (have_bit) key.push_back(current);
      have_bit = true;
      current = false;
    } else if (token == static_cast<int>(workload::CryptoOp::kMultiply)) {
      current = true;
    }
  }
  if (have_bit) key.push_back(current);
  return key;
}

KeyExtractionAttack::KeyExtractionAttack(const pmu::EventDatabase& db,
                                         KeaConfig config)
    : db_(&db), config_(std::move(config)) {}

ml::FrameSequence KeyExtractionAttack::monitor_run(
    const workload::CryptoWorkload& target, std::uint64_t visit_seed,
    bool want_labels, const sim::SliceAgent& agent) const {
  const workload::CryptoWorkload::VisitPlan plan = target.plan(visit_seed);
  sim::VirtualMachine vm(config_.vm, visit_seed ^ 0xF00DULL);
  sim::HostMonitor monitor(*db_, visit_seed ^ 0xBEEFULL);
  const sim::MonitorResult result =
      monitor.monitor(vm, plan.source, config_.event_ids, config_.slices, agent);
  ml::FrameSequence seq;
  seq.frames = result.samples;
  if (frame_standardizer_.fitted()) frame_standardizer_.apply_all(seq.frames);
  if (want_labels) seq.labels = plan.frame_labels;
  return seq;
}

// aegis-rng: stream(kea-train)
std::vector<ml::EpochStats> KeyExtractionAttack::train(
    const AgentFactory& template_agent) {
  util::Rng rng(config_.seed);
  std::vector<ml::FrameSequence> sequences;
  for (std::size_t k = 0; k < config_.training_keys; ++k) {
    const workload::CryptoWorkload target(
        workload::CryptoWorkload::derive_key(config_.key_bits, 0x7E0 + k),
        config_.slices);
    for (std::size_t r = 0; r < config_.traces_per_key; ++r) {
      sim::SliceAgent agent =
          template_agent ? template_agent() : sim::SliceAgent{};
      sequences.push_back(monitor_run(target, rng.next_u64(), true, agent));
    }
  }

  std::vector<std::vector<double>> all_frames;
  for (const auto& seq : sequences) {
    all_frames.insert(all_frames.end(), seq.frames.begin(), seq.frames.end());
  }
  frame_standardizer_ = trace::Standardizer{};
  frame_standardizer_.fit(all_frames);
  for (auto& seq : sequences) frame_standardizer_.apply_all(seq.frames);

  // Pure (seed, sequence id) split — see trace::split_order_by_id.
  const std::vector<std::size_t> order =
      trace::split_order_by_id(sequences.size(), config_.seed ^ 0x5A11ULL);
  const std::size_t n_train = static_cast<std::size_t>(
      config_.train_fraction * static_cast<double>(order.size()));
  std::vector<ml::FrameSequence> train_set, val_set;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? train_set : val_set).push_back(std::move(sequences[order[i]]));
  }

  ml::SequenceModelConfig seq_config;
  seq_config.context = 1;
  seq_config.blank_label = workload::kCryptoBlankLabel;
  seq_config.beam_width = 4;
  seq_config.mlp.hidden = {32, 16};
  seq_config.mlp.epochs = config_.epochs;
  seq_config.mlp.learning_rate = 0.02;
  seq_config.mlp.batch_size = 64;
  seq_config.mlp.seed = config_.seed ^ 0x4D0DE1ULL;
  seq_model_ = std::make_unique<ml::FrameSequenceModel>(seq_config);
  return seq_model_->fit(train_set, val_set, workload::kCryptoBlankLabel + 1);
}

std::vector<bool> KeyExtractionAttack::extract(
    const workload::CryptoWorkload& victim, std::uint64_t visit_seed,
    const sim::SliceAgent& agent) const {
  if (!seq_model_) throw std::logic_error("KeyExtractionAttack: not trained");
  const ml::FrameSequence seq = monitor_run(victim, visit_seed, false, agent);
  return ops_to_key(seq_model_->decode_beam(seq));
}

// aegis-rng: stream(kea-exploit)
double KeyExtractionAttack::exploit(std::size_t victim_keys,
                                    std::size_t runs_per_key,
                                    std::uint64_t seed,
                                    const AgentFactory& victim_agent) const {
  if (!seq_model_) throw std::logic_error("KeyExtractionAttack: not trained");
  util::Rng rng(seed);
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < victim_keys; ++k) {
    // Fresh victim keys, disjoint from the training keys.
    const std::vector<bool> key =
        workload::CryptoWorkload::derive_key(config_.key_bits, 0xF0000 + k);
    const workload::CryptoWorkload victim(key, config_.slices);
    std::vector<int> truth;
    for (bool bit : key) truth.push_back(bit ? 1 : 0);
    for (std::size_t r = 0; r < runs_per_key; ++r) {
      sim::SliceAgent agent = victim_agent ? victim_agent() : sim::SliceAgent{};
      const std::vector<bool> recovered =
          extract(victim, rng.next_u64(), agent);
      std::vector<int> hyp;
      for (bool bit : recovered) hyp.push_back(bit ? 1 : 0);
      total += ml::sequence_match_accuracy(truth, hyp);
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace aegis::attack
