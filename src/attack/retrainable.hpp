// attack::Retrainable — the uniform adaptive-attacker seam.
//
// The paper's Fig. 9b adaptive attacker re-collects its template set UNDER
// the deployed defense and retrains, which defeats deterministic noise
// (Laplace recovers to ~100 %) but not d*. Each attack class already
// accepts an agent factory at train time; this interface erases the
// per-class API differences (classification accuracy vs sequence metrics,
// secrets vs models vs keys) so the security-evaluation harness
// (src/seceval) can run any attacker against any defense cell without
// caring which pipeline is underneath.
//
// retrain() rebuilds the attack from its config every time, so one
// Retrainable can be evaluated against many defenses in sequence — state
// never leaks across cells.
#pragma once

#include <memory>
#include <string>

#include "attack/classification_attack.hpp"
#include "attack/kea.hpp"
#include "attack/mea.hpp"

namespace aegis::attack {

class Retrainable {
 public:
  virtual ~Retrainable() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Guessing floor of the success metric (1/classes for classification,
  /// 0.5 per key bit, 0 for sequence recovery).
  virtual double random_guess() const noexcept = 0;

  /// Trains from scratch. Adaptive attackers pass the defense's agent
  /// factory so templates are collected under the deployed defense; static
  /// attackers pass null and train on clean traces.
  virtual void retrain(const AgentFactory& template_agent) = 0;

  /// Attacks fresh victim runs (always under the victim's defense) and
  /// returns the success metric in [0, 1]. Requires a prior retrain().
  virtual double exploit(std::uint64_t seed,
                         const AgentFactory& victim_agent) const = 0;

  /// Validation metric of the last retrain() (0 before training, and for
  /// attacks without a held-out metric).
  virtual double validation_accuracy() const noexcept = 0;
};

/// WFA / KSA / any ClassificationAttack instance. `secrets` is shared so
/// several attackers (static + adaptive variants) can reuse one secret set.
std::unique_ptr<Retrainable> make_retrainable_classification(
    const pmu::EventDatabase& db, std::string name,
    std::shared_ptr<const std::vector<std::unique_ptr<workload::Workload>>>
        secrets,
    ClassificationAttackConfig config, std::size_t visits_per_secret);

std::unique_ptr<Retrainable> make_retrainable_mea(const pmu::EventDatabase& db,
                                                  MeaConfig config,
                                                  std::size_t runs_per_model);

std::unique_ptr<Retrainable> make_retrainable_kea(const pmu::EventDatabase& db,
                                                  KeaConfig config,
                                                  std::size_t victim_keys,
                                                  std::size_t runs_per_key);

}  // namespace aegis::attack
