#include "attack/ksa.hpp"

namespace aegis::attack {

std::vector<std::unique_ptr<workload::Workload>> make_ksa_secrets(
    const KsaScale& scale) {
  std::vector<std::unique_ptr<workload::Workload>> secrets;
  secrets.reserve(workload::KeystrokeWorkload::kMaxKeys + 1);
  for (std::size_t k = 0; k <= workload::KeystrokeWorkload::kMaxKeys; ++k) {
    secrets.push_back(
        std::make_unique<workload::KeystrokeWorkload>(k, scale.slices));
  }
  return secrets;
}

ClassificationAttackConfig make_ksa_config(std::vector<std::uint32_t> event_ids,
                                           const KsaScale& scale,
                                           std::uint64_t seed) {
  ClassificationAttackConfig config;
  config.collection.event_ids = std::move(event_ids);
  config.collection.traces_per_secret = scale.traces_per_count;
  config.collection.seed = seed;
  // Keystrokes are transient: finer temporal pooling preserves burst counts.
  config.feature_windows = 40;
  config.sort_windows = true;  // burst-position invariance (counting task)
  config.mlp.hidden = {96, 48};
  config.mlp.epochs = scale.epochs;
  config.mlp.learning_rate = 0.025;
  config.mlp.seed = seed ^ 0x4D0DE1ULL;
  return config;
}

}  // namespace aegis::attack
