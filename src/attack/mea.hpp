// Model extraction attack (paper Section III-E): recover the layer sequence
// of a DNN running in the guest from HPC traces — a sequence-to-sequence
// task (paper: bidirectional GRU + CTC + beam search; here: frame classifier
// + CTC prefix beam search). Undefended accuracy in the paper: 91.8 %
// validation / 90.5 % (matched layers) on the victim VM.
#pragma once

#include <memory>
#include <vector>

#include "attack/dataset.hpp"
#include "ml/sequence_model.hpp"
#include "workload/dnn.hpp"

namespace aegis::attack {

struct MeaScale {
  std::size_t models = workload::DnnWorkload::kNumModels;
  std::size_t slices = 240;            // paper: 3000
  std::size_t traces_per_model = 12;   // paper: 1000 runs per model
  std::size_t epochs = 18;
};

struct MeaConfig {
  std::vector<std::uint32_t> event_ids;
  MeaScale scale;
  std::uint64_t seed = 0x6EAULL;
  double train_fraction = 0.7;
  sim::VmConfig vm;
};

class MeaAttack {
 public:
  MeaAttack(const pmu::EventDatabase& db, MeaConfig config);

  /// Offline: runs each template model repeatedly, aligns frames with the
  /// known layer schedule, trains the frame/sequence model. Returns the
  /// frame-classifier training history (Fig. 1c analog).
  std::vector<ml::EpochStats> train(const AgentFactory& template_agent = nullptr);

  /// Online: monitors victim inference runs and scores the decoded layer
  /// sequences against the true architectures (matched-layers metric).
  double exploit(std::size_t runs_per_model, std::uint64_t seed,
                 const AgentFactory& victim_agent = nullptr) const;

  /// Decodes one run of one model (victim side; labels unknown).
  std::vector<int> extract(std::size_t model_id, std::uint64_t visit_seed,
                           const sim::SliceAgent& agent = nullptr) const;

  double validation_frame_accuracy() const noexcept { return val_frame_accuracy_; }

 private:
  ml::FrameSequence monitor_run(const workload::DnnWorkload& model,
                                std::uint64_t visit_seed, bool want_labels,
                                const sim::SliceAgent& agent) const;

  const pmu::EventDatabase* db_;
  MeaConfig config_;
  std::vector<workload::DnnWorkload> models_;
  trace::Standardizer frame_standardizer_;
  std::unique_ptr<ml::FrameSequenceModel> seq_model_;
  double val_frame_accuracy_ = 0.0;
};

}  // namespace aegis::attack
