// Trace collection: the attacker's offline template phase and online
// exploitation phase both reduce to "run a workload in a VM while the host
// samples 4 HPC events" (Section III-B). This module packages that loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pmu/event_database.hpp"
#include "sim/host_monitor.hpp"
#include "trace/trace.hpp"
#include "workload/workload.hpp"

namespace aegis::attack {

/// Builds a fresh in-guest agent (e.g. an Event Obfuscator session) for one
/// workload execution. Null = undefended VM.
using AgentFactory = std::function<sim::SliceAgent()>;

/// Builds a fresh slice planner (see sim::SlicePlanner) for one workload
/// execution. Stateful planners (running-mean burst detectors) need fresh
/// state per run, so the sampler takes a factory, not a planner. Null =
/// passive fixed-cadence sampling.
using PlannerFactory = std::function<sim::SlicePlanner()>;

struct CollectionConfig {
  std::vector<std::uint32_t> event_ids;  // monitored events (4 in the paper)
  std::size_t traces_per_secret = 30;
  std::uint64_t seed = 42;
  sim::VmConfig vm;
  /// Attacker-chosen sampling boundaries (SEV-Step-style). Null keeps the
  /// paper's passive 1 ms cadence and is bit-identical to the plain monitor.
  PlannerFactory stepper;
};

/// Runs every secret's workload `traces_per_secret` times and records the
/// monitored 4 x T trace of each run. Labels are secret indices.
trace::TraceSet collect_traces(
    const pmu::EventDatabase& db,
    const std::vector<std::unique_ptr<workload::Workload>>& secrets,
    const CollectionConfig& config, const AgentFactory& agent_factory = nullptr);

/// Single-run variant used by the profiler and benches.
trace::Trace collect_one(const pmu::EventDatabase& db,
                         const workload::Workload& secret,
                         const CollectionConfig& config, std::uint64_t visit_seed,
                         const sim::SliceAgent& agent = nullptr);

}  // namespace aegis::attack
