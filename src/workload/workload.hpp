// Workload interface: the guest applications whose secrets the HPC side
// channels leak.
//
// A Workload instance embodies one *secret* (one website, one keystroke
// count, one DNN architecture). Each call to visit() materializes one
// execution/run of that secret with fresh run-to-run jitter, returning a
// BlockSource the simulator can drive. Distinct visits of the same secret
// produce similar-but-not-identical traces — the Gaussian-per-secret event
// value distributions of paper Fig. 3.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/host_monitor.hpp"

namespace aegis::workload {

class Workload {
 public:
  virtual ~Workload() = default;

  /// One execution of the secret. The returned source yields the blocks the
  /// application executes in monitoring slice t (empty vector = idle).
  virtual sim::BlockSource visit(std::uint64_t visit_seed) const = 0;

  /// Monitoring window length the paper uses for this application
  /// (3 s at 1 ms sampling = 3000 slices; scaled down by default).
  virtual std::size_t trace_slices() const = 0;

  /// Human-readable secret label ("facebook.com", "7 keystrokes", ...).
  virtual std::string name() const = 0;
};

}  // namespace aegis::workload
