#include "workload/website.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace aegis::workload {

namespace {

using isa::InstructionClass;
using sim::InstructionBlock;

// Region-id space: each site gets disjoint working sets per phase type so
// cache behaviour is site-structured.
constexpr std::uint32_t kSiteRegionBase = 1000;

const char* kSiteNames[WebsiteWorkload::kNumSites] = {
    "google.com",    "youtube.com",    "facebook.com",  "twitter.com",
    "instagram.com", "baidu.com",      "wikipedia.org", "yandex.ru",
    "yahoo.com",     "whatsapp.com",   "amazon.com",    "live.com",
    "netflix.com",   "reddit.com",     "tiktok.com",    "office.com",
    "linkedin.com",  "zoom.us",        "vk.com",        "discord.com",
    "twitch.tv",     "bing.com",       "naver.com",     "microsoft.com",
    "roblox.com",    "ebay.com",       "pinterest.com", "qq.com",
    "apple.com",     "aliexpress.com", "bbc.com",       "cnn.com",
    "espn.com",      "github.com",     "stackoverflow.com",
    "imdb.com",      "spotify.com",    "paypal.com",    "dropbox.com",
    "weather.com",   "booking.com",    "nytimes.com",   "quora.com",
    "canva.com",     "etsy.com"};

}  // namespace

// aegis-rng: stream(website-init)
WebsiteWorkload::WebsiteWorkload(std::size_t site_id, std::size_t slices)
    : site_id_(site_id % kNumSites), slices_(slices) {
  // Deterministic per-site profile: same site always has the same phase
  // structure (that is what makes it fingerprintable).
  util::Rng rng(0x5173ULL * 2654435761ULL + site_id_);
  const double total_scale = rng.uniform(0.8, 1.35);
  const double js_intensity = rng.uniform(0.3, 2.0);
  const double media_fraction = rng.uniform(0.05, 0.7);
  const int resources = static_cast<int>(rng.uniform_int(6, 18));

  // Initial network wait before first byte.
  Phase wait{PhaseKind::kNetworkWait, 0.0, rng.uniform(0.06, 0.22), 0.2,
             kSiteRegionBase + static_cast<std::uint32_t>(site_id_) * 8, 4096};
  phases_.push_back(wait);

  // HTML parse right after the wait.
  phases_.push_back(Phase{PhaseKind::kParse, wait.duration_frac,
                          rng.uniform(0.08, 0.2), total_scale,
                          wait.region + 1, rng.uniform(64e3, 512e3)});

  for (int r = 0; r < resources; ++r) {
    const double pick = rng.uniform();
    PhaseKind kind;
    double intensity;
    double footprint;
    if (pick < media_fraction) {
      kind = PhaseKind::kImageDecode;
      intensity = total_scale * rng.uniform(0.5, 1.6);
      footprint = rng.uniform(256e3, 4e6);
    } else if (pick < media_fraction + 0.5) {
      kind = PhaseKind::kScript;
      intensity = total_scale * js_intensity * rng.uniform(0.5, 1.5);
      footprint = rng.uniform(128e3, 2e6);
    } else {
      kind = PhaseKind::kPaint;
      intensity = total_scale * rng.uniform(0.4, 1.2);
      footprint = rng.uniform(512e3, 6e6);
    }
    const double start = rng.uniform(wait.duration_frac + 0.02, 0.85);
    const double duration = rng.uniform(0.04, 0.25);
    phases_.push_back(Phase{kind, start, duration, intensity,
                            wait.region + 2 + static_cast<std::uint32_t>(r % 6),
                            footprint});
  }

  // Final full-page paint.
  phases_.push_back(Phase{PhaseKind::kPaint, rng.uniform(0.75, 0.9),
                          rng.uniform(0.08, 0.18), total_scale,
                          wait.region + 7, rng.uniform(1e6, 8e6)});
}

std::string WebsiteWorkload::name() const { return kSiteNames[site_id_]; }

// aegis-rng: stream(website-visit)
sim::BlockSource WebsiteWorkload::visit(std::uint64_t visit_seed) const {
  // Per-visit jitter: timing shifts, work scaling, and slice-level noise.
  auto rng = std::make_shared<util::Rng>(visit_seed ^ (site_id_ * 0x9E3779B9ULL));
  struct JitteredPhase {
    Phase phase;
    double start, end, scale;
  };
  auto jittered = std::make_shared<std::vector<JitteredPhase>>();
  const double global_scale = std::exp(rng->normal(0.0, 0.06));
  for (const Phase& p : phases_) {
    JitteredPhase jp;
    jp.phase = p;
    jp.start = std::max(0.0, p.start_frac + rng->normal(0.0, 0.015));
    jp.end = std::min(1.0, jp.start + p.duration_frac * std::exp(rng->normal(0.0, 0.05)));
    jp.scale = p.intensity * global_scale * std::exp(rng->normal(0.0, 0.08));
    jittered->push_back(jp);
  }

  const std::size_t slices = slices_;
  return [rng, jittered, slices](std::size_t t) {
    std::vector<InstructionBlock> blocks;
    const double frac = static_cast<double>(t) / static_cast<double>(slices);
    for (const auto& jp : *jittered) {
      if (frac < jp.start || frac >= jp.end) continue;
      const double active_slices =
          std::max(1.0, (jp.end - jp.start) * static_cast<double>(slices));
      // Per-slice share of the phase's work, with slice-level noise.
      const double w = jp.scale * std::exp(rng->normal(0.0, 0.1)) * 10.0 /
                       active_slices * static_cast<double>(slices) / 300.0;
      InstructionBlock b;
      b.region = jp.phase.region;
      switch (jp.phase.kind) {
        case PhaseKind::kNetworkWait:
          b.class_counts[InstructionClass::kIntAlu] = 60 * w;
          b.class_counts[InstructionClass::kBranch] = 25 * w;
          b.class_counts[InstructionClass::kSystem] = 0;
          b.read_bytes = 2048 * w;
          b.locality = 0.8;
          b.branch_entropy = 0.2;
          break;
        case PhaseKind::kParse:
          b.class_counts[InstructionClass::kIntAlu] = 2600 * w;
          b.class_counts[InstructionClass::kLogic] = 1400 * w;
          b.class_counts[InstructionClass::kBranch] = 1100 * w;
          b.class_counts[InstructionClass::kLoad] = 900 * w;
          b.class_counts[InstructionClass::kStore] = 350 * w;
          b.read_bytes = 40e3 * w;
          b.write_bytes = 10e3 * w;
          b.locality = 0.7;
          b.branch_entropy = 0.35;
          break;
        case PhaseKind::kScript:
          b.class_counts[InstructionClass::kIntAlu] = 4200 * w;
          b.class_counts[InstructionClass::kBranch] = 2300 * w;
          b.class_counts[InstructionClass::kCall] = 380 * w;
          b.class_counts[InstructionClass::kLoad] = 1800 * w;
          b.class_counts[InstructionClass::kStore] = 700 * w;
          b.class_counts[InstructionClass::kFpAdd] = 250 * w;
          b.read_bytes = 60e3 * w;
          b.write_bytes = 22e3 * w;
          b.locality = 0.45;  // pointer chasing
          b.branch_entropy = 0.5;
          break;
        case PhaseKind::kImageDecode:
          b.class_counts[InstructionClass::kSimdInt] = 5200 * w;
          b.class_counts[InstructionClass::kSimdFp] = 1400 * w;
          b.class_counts[InstructionClass::kLoad] = 1500 * w;
          b.class_counts[InstructionClass::kStore] = 600 * w;
          b.class_counts[InstructionClass::kBranch] = 500 * w;
          b.read_bytes = 180e3 * w;
          b.write_bytes = 60e3 * w;
          b.locality = 0.95;
          b.branch_entropy = 0.1;
          break;
        case PhaseKind::kPaint:
          b.class_counts[InstructionClass::kSimdFp] = 2800 * w;
          b.class_counts[InstructionClass::kFpMul] = 750 * w;
          b.class_counts[InstructionClass::kFpAdd] = 600 * w;
          b.class_counts[InstructionClass::kStore] = 1400 * w;
          b.class_counts[InstructionClass::kLoad] = 600 * w;
          b.read_bytes = 50e3 * w;
          b.write_bytes = 140e3 * w;
          b.locality = 1.0;  // streaming
          b.branch_entropy = 0.05;
          break;
      }
      // Footprint decides cache pressure; large media blow out L1.
      const double fp_scale = std::min(1.0, jp.phase.footprint / 1e6);
      b.read_bytes *= (0.5 + fp_scale);
      double uops = 0.0;
      for (std::size_t i = 0; i < b.class_counts.size(); ++i) {
        uops += b.class_counts.at_index(i);
      }
      b.uops = uops * 1.12;
      blocks.push_back(std::move(b));
    }
    return blocks;
  };
}

}  // namespace aegis::workload
