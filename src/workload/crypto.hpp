// Cryptographic workload: RSA-style square-and-multiply modular
// exponentiation (the paper's future-work target: "stealing cryptographic
// keys" via fine-grained HPC attacks).
//
// For each secret key bit the loop executes a SQUARE (big-integer
// multiplication); when the bit is 1 it additionally executes a MULTIPLY.
// The two operations have distinguishable instruction mixes and durations,
// so the per-slice HPC traces segment into a bit-string — the classic
// square-and-multiply leak, lifted from the cache/timing domain into the
// HPC-count domain.
#pragma once

#include <vector>

#include "workload/workload.hpp"

namespace aegis::workload {

/// Per-slice ground-truth labels of the exponentiation trace.
enum class CryptoOp : unsigned char {
  kSquare = 0,   // executed for every bit
  kMultiply,     // executed only for 1-bits
  kCount
};
inline constexpr int kCryptoBlankLabel = static_cast<int>(CryptoOp::kCount);

class CryptoWorkload final : public Workload {
 public:
  /// `key_bits` is the secret exponent, MSB first.
  CryptoWorkload(std::vector<bool> key_bits, std::size_t slices = 300);

  /// Convenience: derive an n-bit key deterministically from a seed.
  static std::vector<bool> derive_key(std::size_t bits, std::uint64_t seed);

  sim::BlockSource visit(std::uint64_t visit_seed) const override;
  std::size_t trace_slices() const override { return slices_; }
  std::string name() const override;

  const std::vector<bool>& key() const noexcept { return key_bits_; }

  /// One execution plus frame-aligned CryptoOp labels (for the offline
  /// attacker, who trains on his own keys).
  struct VisitPlan {
    sim::BlockSource source;
    std::vector<int> frame_labels;  // CryptoOp or kCryptoBlankLabel
  };
  VisitPlan plan(std::uint64_t visit_seed) const;

 private:
  std::vector<bool> key_bits_;
  std::size_t slices_;
};

}  // namespace aegis::workload
