// Keystroke workload (KSA case study, paper Section III-D).
//
// The paper drives xdotool to emit K keystrokes (K uniform in [0, 9]) over
// a 3-second window; the attacker infers K (whose timing pattern in turn
// identifies keys). We model a keystroke as a short burst of interrupt-
// handler + input-stack + UI-redraw work over an otherwise quiet desktop
// background, at K random burst positions with human inter-key spacing.
#pragma once

#include "workload/workload.hpp"

namespace aegis::workload {

class KeystrokeWorkload final : public Workload {
 public:
  static constexpr std::size_t kMaxKeys = 9;  // K in [0, 9]

  explicit KeystrokeWorkload(std::size_t num_keys, std::size_t slices = 300);

  sim::BlockSource visit(std::uint64_t visit_seed) const override;
  std::size_t trace_slices() const override { return slices_; }
  std::string name() const override;

  std::size_t num_keys() const noexcept { return num_keys_; }

 private:
  std::size_t num_keys_;
  std::size_t slices_;
};

}  // namespace aegis::workload
