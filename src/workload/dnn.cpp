#include "workload/dnn.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/rng.hpp"

namespace aegis::workload {

namespace {
using isa::InstructionClass;
using sim::InstructionBlock;

constexpr std::uint32_t kDnnRegionBase = 2000;

const char* kModelNames[DnnWorkload::kNumModels] = {
    "alexnet",        "vgg11",          "vgg13",        "vgg16",
    "vgg19",          "resnet18",       "resnet34",     "resnet50",
    "resnet101",      "resnet152",      "squeezenet1_0", "squeezenet1_1",
    "densenet121",    "densenet161",    "densenet169",  "densenet201",
    "googlenet",      "inception_v3",   "mobilenet_v2", "mobilenet_v3_small",
    "mobilenet_v3_large", "mnasnet0_5", "mnasnet1_0",   "shufflenet_v2_x0_5",
    "shufflenet_v2_x1_0", "efficientnet_b0", "efficientnet_b1",
    "wide_resnet50_2", "resnext50_32x4d", "regnet_y_400mf"};

void push(std::vector<Layer>& layers, LayerKind kind, double work,
          double footprint) {
  layers.push_back(Layer{kind, work, footprint});
}

/// Builds the layer list for one model id; family decided by id range.
// aegis-rng: stream(dnn-build-architecture)
std::vector<Layer> build_architecture(std::size_t id, util::Rng& rng) {
  std::vector<Layer> layers;
  auto conv = [&](double w) { push(layers, LayerKind::kConv, w, rng.uniform(0.5e6, 6e6)); };
  auto fc = [&](double w) { push(layers, LayerKind::kFc, w, rng.uniform(4e6, 40e6)); };
  auto pool = [&] { push(layers, LayerKind::kPool, 0.25, rng.uniform(0.2e6, 1e6)); };
  auto bn = [&] { push(layers, LayerKind::kBatchNorm, 0.3, rng.uniform(0.1e6, 0.6e6)); };
  auto relu = [&] { push(layers, LayerKind::kReLU, 0.15, rng.uniform(0.1e6, 0.5e6)); };
  auto add = [&] { push(layers, LayerKind::kAdd, 0.2, rng.uniform(0.2e6, 1e6)); };

  if (id == 0) {  // alexnet
    for (int i = 0; i < 5; ++i) {
      conv(rng.uniform(0.8, 2.0));
      relu();
      if (i == 0 || i == 1 || i == 4) pool();
    }
    for (int i = 0; i < 3; ++i) {
      fc(rng.uniform(0.8, 1.6));
      if (i < 2) relu();
    }
  } else if (id <= 4) {  // vgg11/13/16/19
    const int convs_per_block[5][5] = {{0},
                                       {1, 1, 2, 2, 2},
                                       {2, 2, 2, 2, 2},
                                       {2, 2, 3, 3, 3},
                                       {2, 2, 4, 4, 4}};
    for (int blockIdx = 0; blockIdx < 5; ++blockIdx) {
      for (int c = 0; c < convs_per_block[id][blockIdx]; ++c) {
        conv(rng.uniform(1.0, 2.5));
        relu();
      }
      pool();
    }
    fc(1.8);
    relu();
    fc(1.2);
    relu();
    fc(0.5);
  } else if (id <= 9) {  // resnet18/34/50/101/152
    const int blocks[] = {4, 8, 8, 17, 25};
    conv(1.5);
    bn();
    relu();
    pool();
    for (int blockIdx = 0; blockIdx < blocks[id - 5]; ++blockIdx) {
      conv(rng.uniform(0.7, 1.8));
      bn();
      relu();
      conv(rng.uniform(0.7, 1.8));
      bn();
      add();
      relu();
    }
    pool();
    fc(0.4);
  } else if (id <= 11) {  // squeezenet
    conv(1.0);
    relu();
    pool();
    for (int f = 0; f < 8; ++f) {
      conv(rng.uniform(0.3, 0.8));  // squeeze
      relu();
      conv(rng.uniform(0.5, 1.2));  // expand
      relu();
      if (f == 2 || f == 6) pool();
    }
    conv(0.6);
    pool();
  } else if (id <= 15) {  // densenet121/161/169/201
    const int dense_layers[] = {10, 13, 14, 16};
    conv(1.4);
    bn();
    relu();
    pool();
    for (int l = 0; l < dense_layers[id - 12]; ++l) {
      bn();
      relu();
      conv(rng.uniform(0.4, 1.0));
      add();  // feature concatenation
      if (l % 5 == 4) pool();
    }
    bn();
    pool();
    fc(0.3);
  } else if (id <= 17) {  // googlenet / inception
    conv(1.2);
    pool();
    for (int i = 0; i < (id == 16 ? 9 : 11); ++i) {
      conv(rng.uniform(0.4, 1.2));
      bn();
      relu();
      conv(rng.uniform(0.4, 1.2));
      relu();
      if (i % 3 == 2) pool();
    }
    pool();
    fc(0.4);
  } else if (id <= 24) {  // mobilenet / mnasnet / shufflenet
    conv(0.8);
    bn();
    relu();
    const int inverted_blocks = 7 + static_cast<int>(id) % 5;
    for (int i = 0; i < inverted_blocks; ++i) {
      conv(rng.uniform(0.2, 0.6));  // pointwise
      bn();
      relu();
      conv(rng.uniform(0.15, 0.4)); // depthwise
      bn();
      if (i % 2 == 1) add();
    }
    conv(0.5);
    pool();
    fc(0.3);
  } else {  // efficientnet / wide-resnet / resnext / regnet
    conv(1.0);
    bn();
    relu();
    const int stages = 5 + static_cast<int>(id) % 4;
    for (int s = 0; s < stages; ++s) {
      conv(rng.uniform(0.6, 2.2));
      bn();
      relu();
      conv(rng.uniform(0.6, 2.2));
      bn();
      add();
      relu();
      if (s % 2 == 0) pool();
    }
    pool();
    fc(0.5);
  }
  return layers;
}

InstructionBlock layer_block(LayerKind kind, double intensity, double footprint,
                             std::uint32_t region) {
  InstructionBlock b;
  b.region = region;
  const double i = intensity;
  switch (kind) {
    case LayerKind::kConv:
      b.class_counts[InstructionClass::kSimdFp] = 7800 * i;
      b.class_counts[InstructionClass::kFpMul] = 1900 * i;
      b.class_counts[InstructionClass::kFpAdd] = 1500 * i;
      b.class_counts[InstructionClass::kLoad] = 2400 * i;
      b.class_counts[InstructionClass::kStore] = 700 * i;
      b.class_counts[InstructionClass::kBranch] = 300 * i;
      b.read_bytes = 150e3 * i;
      b.write_bytes = 40e3 * i;
      b.locality = 0.9;
      b.branch_entropy = 0.05;
      break;
    case LayerKind::kFc:
      b.class_counts[InstructionClass::kSimdFp] = 4200 * i;
      b.class_counts[InstructionClass::kFpAdd] = 900 * i;
      b.class_counts[InstructionClass::kLoad] = 3800 * i;
      b.class_counts[InstructionClass::kStore] = 250 * i;
      b.read_bytes = 400e3 * i;  // streaming weight matrix
      b.write_bytes = 8e3 * i;
      b.locality = 1.0;
      b.branch_entropy = 0.02;
      break;
    case LayerKind::kPool:
      b.class_counts[InstructionClass::kSimdInt] = 1400 * i;
      b.class_counts[InstructionClass::kSimdFp] = 600 * i;
      b.class_counts[InstructionClass::kLoad] = 900 * i;
      b.class_counts[InstructionClass::kStore] = 300 * i;
      b.class_counts[InstructionClass::kBranch] = 180 * i;
      b.read_bytes = 60e3 * i;
      b.write_bytes = 15e3 * i;
      b.locality = 0.95;
      b.branch_entropy = 0.08;
      break;
    case LayerKind::kBatchNorm:
      b.class_counts[InstructionClass::kFpAdd] = 1300 * i;
      b.class_counts[InstructionClass::kFpMul] = 1300 * i;
      b.class_counts[InstructionClass::kFpDiv] = 120 * i;
      b.class_counts[InstructionClass::kLoad] = 700 * i;
      b.class_counts[InstructionClass::kStore] = 700 * i;
      b.read_bytes = 40e3 * i;
      b.write_bytes = 40e3 * i;
      b.locality = 1.0;
      break;
    case LayerKind::kReLU:
      b.class_counts[InstructionClass::kSimdInt] = 900 * i;
      b.class_counts[InstructionClass::kLoad] = 450 * i;
      b.class_counts[InstructionClass::kStore] = 450 * i;
      b.read_bytes = 30e3 * i;
      b.write_bytes = 30e3 * i;
      b.locality = 1.0;
      break;
    case LayerKind::kAdd:
      b.class_counts[InstructionClass::kSimdFp] = 700 * i;
      b.class_counts[InstructionClass::kLoad] = 1100 * i;
      b.class_counts[InstructionClass::kStore] = 550 * i;
      b.read_bytes = 70e3 * i;
      b.write_bytes = 35e3 * i;
      b.locality = 1.0;
      break;
    case LayerKind::kCount:
      break;
  }
  const double fp_scale = std::min(1.5, 0.5 + footprint / 4e6);
  b.read_bytes *= fp_scale;
  double uops = 0.0;
  for (std::size_t c = 0; c < b.class_counts.size(); ++c) {
    uops += b.class_counts.at_index(c);
  }
  b.uops = uops * 1.15;
  return b;
}

/// Framework gap between layers: allocator + dispatcher work.
InstructionBlock gap_block(double scale) {
  InstructionBlock b;
  b.region = kDnnRegionBase + 63;
  b.class_counts[InstructionClass::kIntAlu] = 350 * scale;
  b.class_counts[InstructionClass::kBranch] = 140 * scale;
  b.class_counts[InstructionClass::kCall] = 60 * scale;
  b.class_counts[InstructionClass::kStore] = 120 * scale;
  b.read_bytes = 6e3 * scale;
  b.write_bytes = 3e3 * scale;
  b.uops = 750 * scale;
  b.locality = 0.6;
  b.branch_entropy = 0.4;
  return b;
}

}  // namespace

std::string_view to_string(LayerKind k) noexcept {
  switch (k) {
    case LayerKind::kConv: return "Conv";
    case LayerKind::kFc: return "FC";
    case LayerKind::kPool: return "Pool";
    case LayerKind::kBatchNorm: return "BN";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kCount: break;
  }
  return "?";
}

// aegis-rng: stream(dnn-init)
DnnWorkload::DnnWorkload(std::size_t model_id, std::size_t slices)
    : model_id_(model_id % kNumModels), slices_(slices) {
  util::Rng rng(0xD44ULL * 0x9E3779B97F4A7C15ULL + model_id_);
  layers_ = build_architecture(model_id_, rng);
}

std::string DnnWorkload::name() const { return kModelNames[model_id_]; }

std::vector<LayerKind> DnnWorkload::layer_sequence() const {
  std::vector<LayerKind> seq;
  seq.reserve(layers_.size());
  for (const Layer& l : layers_) seq.push_back(l.kind);
  return seq;
}

// aegis-rng: stream(dnn-plan)
DnnWorkload::VisitPlan DnnWorkload::plan(std::uint64_t visit_seed) const {
  auto rng = std::make_shared<util::Rng>(visit_seed ^ (model_id_ * 0x9E3779B9ULL));

  // Schedule: per-layer durations proportional to work, scaled to fit the
  // window with a leading warm-up margin and a 1-slice gap between layers.
  double total_work = 0.0;
  for (const Layer& l : layers_) total_work += std::max(0.1, l.work);
  const double usable =
      static_cast<double>(slices_) * 0.82 - static_cast<double>(layers_.size());
  const double slices_per_work = std::max(0.5, usable / total_work);

  struct Segment {
    int layer_index;  // -1 = gap
    std::size_t start, end;
  };
  auto segments = std::make_shared<std::vector<Segment>>();
  auto labels = std::make_shared<std::vector<int>>(slices_, kBlankLabel);
  std::size_t cursor = 2 + rng->uniform_index(4);  // process start latency
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const double jitter = std::exp(rng->normal(0.0, 0.08));
    std::size_t dur = static_cast<std::size_t>(std::max(
        1.0, std::round(std::max(0.1, layers_[li].work) * slices_per_work * jitter)));
    dur = std::min<std::size_t>(dur, 14);
    if (cursor + dur + 1 >= slices_) break;
    segments->push_back(Segment{static_cast<int>(li), cursor, cursor + dur});
    for (std::size_t t = cursor; t < cursor + dur; ++t) {
      (*labels)[t] = static_cast<int>(layers_[li].kind);
    }
    cursor += dur + 1;  // +1: framework gap (blank frame)
  }

  const auto layers_copy = layers_;
  sim::BlockSource source = [rng, segments, layers_copy](std::size_t t) {
    std::vector<InstructionBlock> blocks;
    for (const auto& seg : *segments) {
      if (t < seg.start || t >= seg.end) continue;
      const Layer& l = layers_copy[static_cast<std::size_t>(seg.layer_index)];
      const double dur = static_cast<double>(seg.end - seg.start);
      const double intensity = std::max(0.1, l.work) / dur * 4.0 *
                               std::exp(rng->normal(0.0, 0.08));
      blocks.push_back(layer_block(
          l.kind, intensity, l.footprint,
          kDnnRegionBase + static_cast<std::uint32_t>(seg.layer_index % 12)));
      return blocks;
    }
    // Between layers: framework gap activity.
    blocks.push_back(gap_block(std::exp(rng->normal(0.0, 0.15))));
    return blocks;
  };
  return VisitPlan{std::move(source), std::move(*labels)};
}

sim::BlockSource DnnWorkload::visit(std::uint64_t visit_seed) const {
  return plan(visit_seed).source;
}

}  // namespace aegis::workload
