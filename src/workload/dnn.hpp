// DNN inference workload (MEA case study, paper Section III-E).
//
// The paper runs inference of 30 torchvision models in the guest and the
// attacker recovers the layer sequence from HPC traces (seq-to-seq with a
// GRU+CTC model). We model each architecture as a sequence of layers; each
// layer kind has a characteristic instruction mix and memory behaviour, and
// executes for a number of slices proportional to its work. Short framework
// gaps (tensor allocation / op dispatch) separate consecutive layers —
// these act as the CTC blank frames that let the sequence decoder separate
// repeated layer kinds.
#pragma once

#include <vector>

#include "workload/workload.hpp"

namespace aegis::workload {

enum class LayerKind : unsigned char {
  kConv = 0,
  kFc,
  kPool,
  kBatchNorm,
  kReLU,
  kAdd,       // residual connection
  kCount
};

inline constexpr std::size_t kNumLayerKinds =
    static_cast<std::size_t>(LayerKind::kCount);
/// Frame label for inter-layer gaps (the CTC blank).
inline constexpr int kBlankLabel = static_cast<int>(LayerKind::kCount);

std::string_view to_string(LayerKind k) noexcept;

struct Layer {
  LayerKind kind;
  double work;       // GFLOP-ish scale, decides duration and intensity
  double footprint;  // bytes of weights+activations touched
};

class DnnWorkload final : public Workload {
 public:
  /// Number of model architectures in the paper's MEA.
  static constexpr std::size_t kNumModels = 30;

  explicit DnnWorkload(std::size_t model_id, std::size_t slices = 300);

  sim::BlockSource visit(std::uint64_t visit_seed) const override;
  std::size_t trace_slices() const override { return slices_; }
  std::string name() const override;

  /// Ground-truth architecture (the MEA label sequence).
  const std::vector<Layer>& layers() const noexcept { return layers_; }
  std::vector<LayerKind> layer_sequence() const;

  /// One execution plus its frame-aligned labels. The offline attacker
  /// builds training alignments this way: the template models are his, so
  /// he can segment traces by known per-layer work.
  struct VisitPlan {
    sim::BlockSource source;
    std::vector<int> frame_labels;  // per-slice LayerKind or kBlankLabel
  };
  VisitPlan plan(std::uint64_t visit_seed) const;

  std::size_t model_id() const noexcept { return model_id_; }

 private:
  std::size_t model_id_;
  std::size_t slices_;
  std::vector<Layer> layers_;
};

}  // namespace aegis::workload
