#include "workload/idle.hpp"

#include <memory>

#include "util/rng.hpp"

namespace aegis::workload {

sim::BlockSource IdleWorkload::visit(std::uint64_t visit_seed) const {
  auto rng = std::make_shared<util::Rng>(visit_seed ^ 0x1D1EULL);
  return [rng](std::size_t t) {
    std::vector<sim::InstructionBlock> blocks;
    // Kernel housekeeping tick: tiny, sparse, and secret-independent.
    if (t % 25 == 0) {
      sim::InstructionBlock b;
      b.region = 900;
      b.class_counts[isa::InstructionClass::kIntAlu] = 40;
      b.class_counts[isa::InstructionClass::kBranch] = 15;
      b.class_counts[isa::InstructionClass::kLoad] = 20;
      b.read_bytes = 1024;
      b.uops = 90;
      b.locality = 0.9;
      blocks.push_back(b);
    }
    return blocks;
  };
}

}  // namespace aegis::workload
