// Idle-guest workload: what the VM does when the protected application is
// not running. Warm-up profiling (Section V-B) compares event counts under
// this workload against the active application to discard events that
// cannot reflect guest activity.
#pragma once

#include "workload/workload.hpp"

namespace aegis::workload {

class IdleWorkload final : public Workload {
 public:
  explicit IdleWorkload(std::size_t slices = 300) : slices_(slices) {}

  sim::BlockSource visit(std::uint64_t visit_seed) const override;
  std::size_t trace_slices() const override { return slices_; }
  std::string name() const override { return "idle"; }

 private:
  std::size_t slices_;
};

}  // namespace aegis::workload
