#include "workload/keystroke.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/rng.hpp"

namespace aegis::workload {

namespace {
using isa::InstructionClass;
using sim::InstructionBlock;

constexpr std::uint32_t kInputRegion = 600;
constexpr std::uint32_t kUiRegion = 601;
constexpr std::uint32_t kBackgroundRegion = 602;

/// Burst profile: slice 0 = interrupt + input stack, slice 1-2 = UI redraw.
InstructionBlock burst_block(std::size_t phase, double scale) {
  InstructionBlock b;
  if (phase == 0) {
    b.region = kInputRegion;
    b.class_counts[InstructionClass::kIntAlu] = 9000 * scale;
    b.class_counts[InstructionClass::kLogic] = 3600 * scale;
    b.class_counts[InstructionClass::kBranch] = 2500 * scale;
    b.class_counts[InstructionClass::kLoad] = 3000 * scale;
    b.class_counts[InstructionClass::kStore] = 1500 * scale;
    b.read_bytes = 70e3 * scale;
    b.write_bytes = 25e3 * scale;
    b.locality = 0.7;
    b.branch_entropy = 0.3;
  } else {
    b.region = kUiRegion;
    b.class_counts[InstructionClass::kSimdFp] = 7200 * scale;
    b.class_counts[InstructionClass::kStore] = 5400 * scale;
    b.class_counts[InstructionClass::kLoad] = 2400 * scale;
    b.class_counts[InstructionClass::kBranch] = 1200 * scale;
    b.read_bytes = 120e3 * scale;
    b.write_bytes = 240e3 * scale;
    b.locality = 0.95;
    b.branch_entropy = 0.1;
  }
  double uops = 0.0;
  for (std::size_t i = 0; i < b.class_counts.size(); ++i) {
    uops += b.class_counts.at_index(i);
  }
  b.uops = uops * 1.1;
  return b;
}

}  // namespace

KeystrokeWorkload::KeystrokeWorkload(std::size_t num_keys, std::size_t slices)
    : num_keys_(std::min(num_keys, kMaxKeys)), slices_(slices) {}

std::string KeystrokeWorkload::name() const {
  return std::to_string(num_keys_) + " keystrokes";
}

// aegis-rng: stream(keystroke-visit)
sim::BlockSource KeystrokeWorkload::visit(std::uint64_t visit_seed) const {
  auto rng = std::make_shared<util::Rng>(visit_seed ^ 0x4B335935ULL);
  // Place K bursts with human-like spacing: a random start, then gaps drawn
  // from a lognormal around ~120 ms (12 slices at our default scale).
  auto bursts = std::make_shared<std::vector<std::size_t>>();
  if (num_keys_ > 0) {
    double pos = rng->uniform(2.0, static_cast<double>(slices_) * 0.3);
    for (std::size_t k = 0; k < num_keys_; ++k) {
      bursts->push_back(static_cast<std::size_t>(pos));
      pos += std::exp(rng->normal(std::log(12.0), 0.4));
      if (pos >= static_cast<double>(slices_ - 3)) {
        pos = rng->uniform(2.0, static_cast<double>(slices_ - 4));
      }
    }
    std::sort(bursts->begin(), bursts->end());
  }

  return [rng, bursts](std::size_t t) {
    std::vector<InstructionBlock> blocks;
    // Quiet desktop background: a timer tick every 10 slices.
    if (t % 10 == 0) {
      InstructionBlock bg;
      bg.region = kBackgroundRegion;
      bg.class_counts[InstructionClass::kIntAlu] = 120;
      bg.class_counts[InstructionClass::kBranch] = 40;
      bg.class_counts[InstructionClass::kLoad] = 60;
      bg.read_bytes = 2048;
      bg.uops = 250;
      bg.locality = 0.9;
      blocks.push_back(bg);
    }
    for (std::size_t burst_start : *bursts) {
      if (t >= burst_start && t < burst_start + 3) {
        const double scale = std::exp(rng->normal(0.0, 0.12));
        blocks.push_back(burst_block(t - burst_start, scale));
      }
    }
    return blocks;
  };
}

}  // namespace aegis::workload
