// Website-loading workload (WFA case study, paper Section III-C).
//
// The paper loads 45 Alexa-top websites in Chrome inside the SEV guest; we
// model a browser page load as a per-site randomized resource pipeline:
// network-wait gaps, HTML parsing, JavaScript execution, image decoding and
// layout/paint phases, with per-site phase structure (resource count,
// JS intensity, media fraction, working-set sizes) derived deterministically
// from the site id and per-visit timing/scale jitter on top. Different
// sites produce distinct 4 x T event signatures; repeat visits of one site
// produce Gaussian-like count distributions.
#pragma once

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace aegis::workload {

class WebsiteWorkload final : public Workload {
 public:
  /// Number of target sites in the paper's WFA (Alexa top-50 minus 5).
  static constexpr std::size_t kNumSites = 45;

  /// `slices`: monitoring window (paper: 3000; default scaled to 300).
  explicit WebsiteWorkload(std::size_t site_id, std::size_t slices = 300);

  sim::BlockSource visit(std::uint64_t visit_seed) const override;
  std::size_t trace_slices() const override { return slices_; }
  std::string name() const override;

  std::size_t site_id() const noexcept { return site_id_; }

 private:
  enum class PhaseKind { kNetworkWait, kParse, kScript, kImageDecode, kPaint };
  struct Phase {
    PhaseKind kind;
    double start_frac;    // position within the load, [0, 1)
    double duration_frac; // fraction of the window
    double intensity;     // work multiplier
    std::uint32_t region; // working-set id
    double footprint;     // bytes
  };

  std::size_t site_id_;
  std::size_t slices_;
  std::vector<Phase> phases_;
};

}  // namespace aegis::workload
