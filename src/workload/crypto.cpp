#include "workload/crypto.hpp"

#include <cmath>
#include <memory>

#include "util/rng.hpp"

namespace aegis::workload {

namespace {
using isa::InstructionClass;
using sim::InstructionBlock;

constexpr std::uint32_t kBigNumRegion = 3000;

/// One slice of big-integer SQUARE work (schoolbook limbs: mul-adds over a
/// small hot working set).
InstructionBlock square_block(double scale) {
  InstructionBlock b;
  b.region = kBigNumRegion;
  b.class_counts[InstructionClass::kIntMul] = 5200 * scale;
  b.class_counts[InstructionClass::kIntAlu] = 3800 * scale;
  b.class_counts[InstructionClass::kLoad] = 1400 * scale;
  b.class_counts[InstructionClass::kStore] = 900 * scale;
  b.class_counts[InstructionClass::kBranch] = 300 * scale;
  b.read_bytes = 16e3 * scale;
  b.write_bytes = 8e3 * scale;
  b.locality = 1.0;
  b.branch_entropy = 0.05;
  b.uops = 12500 * scale;
  return b;
}

/// One slice of MULTIPLY (by the base) work: same kernel plus the extra
/// operand stream and the Montgomery reduction tail.
InstructionBlock multiply_block(double scale) {
  InstructionBlock b;
  b.region = kBigNumRegion + 1;
  b.class_counts[InstructionClass::kIntMul] = 6000 * scale;
  b.class_counts[InstructionClass::kIntAlu] = 4600 * scale;
  b.class_counts[InstructionClass::kIntDiv] = 90 * scale;  // reduction
  b.class_counts[InstructionClass::kLoad] = 2100 * scale;
  b.class_counts[InstructionClass::kStore] = 1100 * scale;
  b.class_counts[InstructionClass::kBranch] = 380 * scale;
  b.read_bytes = 28e3 * scale;
  b.write_bytes = 11e3 * scale;
  b.locality = 0.95;
  b.branch_entropy = 0.08;
  b.uops = 15500 * scale;
  return b;
}

}  // namespace

CryptoWorkload::CryptoWorkload(std::vector<bool> key_bits, std::size_t slices)
    : key_bits_(std::move(key_bits)), slices_(slices) {}

// aegis-rng: stream(crypto-derive-key)
std::vector<bool> CryptoWorkload::derive_key(std::size_t bits,
                                             std::uint64_t seed) {
  util::Rng rng(seed ^ 0x4B45ULL);
  std::vector<bool> key(bits);
  for (std::size_t i = 0; i < bits; ++i) key[i] = rng.bernoulli(0.5);
  return key;
}

std::string CryptoWorkload::name() const {
  std::string bits;
  for (bool b : key_bits_) bits += b ? '1' : '0';
  return "rsa-exp key=" + bits;
}

// aegis-rng: stream(crypto-plan)
CryptoWorkload::VisitPlan CryptoWorkload::plan(std::uint64_t visit_seed) const {
  auto rng = std::make_shared<util::Rng>(visit_seed ^ 0xC4'9970ULL);

  // Schedule: per bit, SQUARE for 2 slices, then MULTIPLY for 2 slices when
  // the bit is 1, then a 1-slice loop-bookkeeping gap. Scaled to fit.
  struct Segment {
    CryptoOp op;
    std::size_t start, end;
  };
  auto segments = std::make_shared<std::vector<Segment>>();
  auto labels = std::make_shared<std::vector<int>>(slices_, kCryptoBlankLabel);
  std::size_t cursor = 1 + rng->uniform_index(3);
  for (bool bit : key_bits_) {
    const std::size_t square_len = 2;
    if (cursor + square_len + 3 >= slices_) break;
    segments->push_back(Segment{CryptoOp::kSquare, cursor, cursor + square_len});
    for (std::size_t t = cursor; t < cursor + square_len; ++t) {
      (*labels)[t] = static_cast<int>(CryptoOp::kSquare);
    }
    cursor += square_len;
    if (bit) {
      const std::size_t mult_len = 2;
      segments->push_back(Segment{CryptoOp::kMultiply, cursor, cursor + mult_len});
      for (std::size_t t = cursor; t < cursor + mult_len; ++t) {
        (*labels)[t] = static_cast<int>(CryptoOp::kMultiply);
      }
      cursor += mult_len;
    }
    cursor += 1;  // loop bookkeeping gap
  }

  sim::BlockSource source = [rng, segments](std::size_t t) {
    std::vector<InstructionBlock> blocks;
    for (const auto& seg : *segments) {
      if (t < seg.start || t >= seg.end) continue;
      const double scale = std::exp(rng->normal(0.0, 0.07));
      blocks.push_back(seg.op == CryptoOp::kSquare ? square_block(scale)
                                                   : multiply_block(scale));
      return blocks;
    }
    // Loop bookkeeping between operations.
    InstructionBlock gap;
    gap.region = kBigNumRegion + 2;
    gap.class_counts[InstructionClass::kIntAlu] = 250;
    gap.class_counts[InstructionClass::kBranch] = 90;
    gap.class_counts[InstructionClass::kLoad] = 80;
    gap.read_bytes = 2e3;
    gap.uops = 500;
    gap.locality = 0.9;
    blocks.push_back(gap);
    return blocks;
  };
  return VisitPlan{std::move(source), std::move(*labels)};
}

sim::BlockSource CryptoWorkload::visit(std::uint64_t visit_seed) const {
  return plan(visit_seed).source;
}

}  // namespace aegis::workload
