// Hardware counter register file with perf-style time multiplexing.
//
// Both testbed CPUs expose 4 programmable counter registers. Monitoring
// more than 4 events forces the perf subsystem to time-multiplex groups and
// scale counts by enabled/running time — an accuracy loss the paper's
// profiler avoids by monitoring exactly 4 events per run (Section V-B).
// This class reproduces both behaviours, plus the per-read measurement
// noise that makes HPC values non-deterministic (C2).
//
// The accumulate engines share one observable behaviour (see DESIGN.md
// "PMU hot path" and "SIMD kernels & superblock fusion"):
//   * kBatched (default) — structure-of-arrays mat-vec over a coefficient
//     matrix flattened at program() time (pmu::ResponseMatrix); touches
//     only the active counter group, O(active) per call. Auto-dispatches to
//     the widest supported SIMD kernel (AVX-512, then AVX2, then scalar) —
//     the dispatch decision is made ONCE, at program()/set_engine() time,
//     never per call.
//   * kScalar / kAvx2 / kAvx512 — the batched engine pinned to one kernel
//     (an unsupported pin falls back to scalar; resolved_isa() reports what
//     actually runs). AEGIS_FORCE_SCALAR=1 clamps everything to scalar.
//   * kReference — the original per-slot EventDatabase::by_id walk over
//     every slot, retained as the equivalence/bench ground truth.
// All engines draw measurement noise in the same per-slot order from the
// same stream, so counter values are bit-identical across engines.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pmu/event_database.hpp"
#include "pmu/response_matrix.hpp"
#include "pmu/simd_dispatch.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace aegis::pmu {

/// Selects the accumulate/end_slice implementation of a
/// CounterRegisterFile. kReference is the retained pre-batching code path;
/// production always runs kBatched (auto SIMD dispatch). The pinned
/// engines exist for the differential suite and the bench.
enum class AccumulateEngine : unsigned char {
  kBatched = 0,  // batched layout, widest supported SIMD kernel
  kReference,    // per-slot scattered walk (ground truth)
  kScalar,       // batched layout, dense scalar math
  kAvx2,         // batched layout, AVX2 group kernel
  kAvx512,       // batched layout, AVX-512 group kernel
};

class CounterRegisterFile {
 public:
  CounterRegisterFile(const EventDatabase& db, std::uint64_t noise_seed);

  /// Programs the set of monitored events and zeroes all counts. More than
  /// EventDatabase::kNumCounters ids enables multiplexing. Also resolves
  /// the SIMD kernel dispatch for the current engine (never re-examined on
  /// the per-call paths).
  void program(std::vector<std::uint32_t> event_ids);

  /// Zeroes counts and multiplexing bookkeeping, keeping the programming.
  void reset() noexcept;

  /// Accounts one batch of executed work into the currently-active group,
  /// applying each event's response and measurement noise. Does not rotate.
  void accumulate(const ExecutionStats& stats);

  /// Per-slice host-side effects: background counting of host-only events
  /// and multiplex rotation. Call once per monitoring slice.
  void end_slice();

  /// Convenience: accumulate + end_slice.
  void tick(const ExecutionStats& stats);

  /// Multiplex-scaled count (count * total_time / active_time), as perf
  /// reports it. Throws if the event is not programmed.
  double read(std::uint32_t event_id) const;

  /// Raw accumulated count with no multiplex scaling (RDPMC view).
  double read_raw(std::uint32_t event_id) const;

  /// Raw count of slot `slot_index` (0-based programming order), skipping
  /// the id lookup. For callers that resolved their slot indices once at
  /// program() time (GadgetRunner's RDPMC loop).
  // aegis-lint: noalloc
  double read_raw_slot(std::size_t slot_index) const noexcept {
    return slots_[slot_index].count;
  }

  std::vector<double> read_all() const;

  bool multiplexed() const noexcept {
    return slots_.size() > EventDatabase::kNumCounters;
  }
  const std::vector<std::uint32_t>& programmed() const noexcept { return ids_; }

  /// Engine used by this instance (captured from the process-wide default
  /// at construction; tests can override per instance). Setting an engine
  /// re-resolves the kernel dispatch immediately.
  AccumulateEngine engine() const noexcept { return engine_; }
  void set_engine(AccumulateEngine engine) noexcept {
    engine_ = engine;
    resolve_dispatch();
  }

  /// The ISA the batched engine actually runs after dispatch: requested pins
  /// degrade to kScalar when the CPU (or AEGIS_FORCE_SCALAR) rules them
  /// out. Always kScalar for kReference.
  simd::SimdIsa resolved_isa() const noexcept { return resolved_isa_; }

  /// Process-wide default engine for newly constructed register files. The
  /// equivalence suite and bench flip this to run whole campaigns — which
  /// construct their register files internally — through either engine.
  static void set_default_engine(AccumulateEngine engine) noexcept;
  static AccumulateEngine default_engine() noexcept;

 private:
  struct Slot {
    std::uint32_t event_id = 0;
    double count = 0.0;
    std::uint64_t active_slices = 0;
  };

  std::size_t group_count() const noexcept;
  bool slot_active(std::size_t slot_index) const noexcept;
  /// [first, last) slot range of the currently-active counter group (groups
  /// are contiguous by construction).
  std::pair<std::size_t, std::size_t> active_range() const noexcept;
  std::size_t slot_of(std::uint32_t event_id) const;
  double read_slot(std::size_t slot_index) const noexcept;

  /// Resolves engine_ into a stored kernel pointer + ISA (cpuid runs here,
  /// on the cold path, never inside accumulate — dispatch-once rule).
  void resolve_dispatch() noexcept;

  void accumulate_batched(const ExecutionStats& stats);
  void accumulate_reference(const ExecutionStats& stats);
  void end_slice_batched();
  void end_slice_reference();

  const EventDatabase* db_;
  util::Rng rng_;
  std::vector<std::uint32_t> ids_;
  std::vector<Slot> slots_;
  /// Programmed-id -> slot index; replaces the former O(n) linear scan in
  /// read/read_raw (O(n^2) for a fully-programmed 1903-event sweep).
  std::unordered_map<std::uint32_t, std::uint32_t> slot_index_;
  ResponseMatrix matrix_;
  std::size_t active_group_ = 0;
  std::uint64_t total_slices_ = 0;
  AccumulateEngine engine_;
  /// Dispatch state, resolved once per program()/set_engine(); null kernel
  /// means the dense scalar path.
  simd::ExpectedGroupFn group_kernel_ = nullptr;
  simd::SimdIsa resolved_isa_ = simd::SimdIsa::kScalar;
  /// Resolved once at construction (telemetry-handle rule): recording in the
  /// noalloc accumulate path is a lock-free shard increment.
  telemetry::Counter accumulate_calls_;
  /// Last-resolved ISA, exported so aegis_top/CI logs show which kernel
  /// actually runs (0 scalar, 1 avx2, 2 avx512).
  telemetry::Gauge engine_isa_gauge_;
};

}  // namespace aegis::pmu
