// Hardware counter register file with perf-style time multiplexing.
//
// Both testbed CPUs expose 4 programmable counter registers. Monitoring
// more than 4 events forces the perf subsystem to time-multiplex groups and
// scale counts by enabled/running time — an accuracy loss the paper's
// profiler avoids by monitoring exactly 4 events per run (Section V-B).
// This class reproduces both behaviours, plus the per-read measurement
// noise that makes HPC values non-deterministic (C2).
#pragma once

#include <cstdint>
#include <vector>

#include "pmu/event_database.hpp"
#include "util/rng.hpp"

namespace aegis::pmu {

class CounterRegisterFile {
 public:
  CounterRegisterFile(const EventDatabase& db, std::uint64_t noise_seed);

  /// Programs the set of monitored events and zeroes all counts. More than
  /// EventDatabase::kNumCounters ids enables multiplexing.
  void program(std::vector<std::uint32_t> event_ids);

  /// Zeroes counts and multiplexing bookkeeping, keeping the programming.
  void reset() noexcept;

  /// Accounts one batch of executed work into the currently-active group,
  /// applying each event's response and measurement noise. Does not rotate.
  void accumulate(const ExecutionStats& stats);

  /// Per-slice host-side effects: background counting of host-only events
  /// and multiplex rotation. Call once per monitoring slice.
  void end_slice();

  /// Convenience: accumulate + end_slice.
  void tick(const ExecutionStats& stats);

  /// Multiplex-scaled count (count * total_time / active_time), as perf
  /// reports it. Throws if the event is not programmed.
  double read(std::uint32_t event_id) const;

  /// Raw accumulated count with no multiplex scaling (RDPMC view).
  double read_raw(std::uint32_t event_id) const;

  std::vector<double> read_all() const;

  bool multiplexed() const noexcept {
    return slots_.size() > EventDatabase::kNumCounters;
  }
  const std::vector<std::uint32_t>& programmed() const noexcept { return ids_; }

 private:
  struct Slot {
    std::uint32_t event_id = 0;
    double count = 0.0;
    std::uint64_t active_slices = 0;
  };

  std::size_t group_count() const noexcept;
  bool slot_active(std::size_t slot_index) const noexcept;
  std::size_t slot_of(std::uint32_t event_id) const;

  const EventDatabase* db_;
  util::Rng rng_;
  std::vector<std::uint32_t> ids_;
  std::vector<Slot> slots_;
  std::size_t active_group_ = 0;
  std::uint64_t total_slices_ = 0;
};

}  // namespace aegis::pmu
