// PMU event model: what an HPC event *is* in this reproduction.
//
// Real HPC events count micro-architectural occurrences (retired uops,
// cache refills, dispatched loads, ...). The simulator represents each
// event as a linear response over an ExecutionStats record that the vCPU
// produces while executing instruction blocks, plus noise terms modelling
// the paper's C2 non-determinism (interrupts, kernel interaction).
//
// IMPORTANT: the response vectors are the simulation's hidden ground truth.
// The profiler, fuzzer and attacks never read them — they observe events
// only through CounterRegisterFile reads, exactly like the paper's tooling
// observes real HPCs through perf_event_open / RDPMC.
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction_class.hpp"

namespace aegis::pmu {

/// perf-style event classification (paper Table II).
enum class EventType : unsigned char {
  kHardware = 0,   // H  — generic hardware events (cycles, instructions)
  kSoftware,       // S  — kernel software events (context switches, faults)
  kHwCache,        // HC — generic cache events (L1D read/write/miss, ...)
  kTracepoint,     // T  — kernel static tracepoints (syscalls, sched, ...)
  kRawCpu,         // R  — vendor-specific raw PMU events
  kOther,          // O  — breakpoints, dynamic probes, ...
  kCount
};

inline constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kCount);

std::string_view to_string(EventType t) noexcept;
/// One-letter code used by Table II ("H", "S", "HC", "T", "R", "O").
std::string_view short_code(EventType t) noexcept;

/// Aggregated micro-architectural activity of one executed instruction
/// block (or one monitoring slice). Produced by the vCPU, consumed by
/// event responses.
struct ExecutionStats {
  isa::ClassVector<double> class_counts;  // retired instructions per class
  double uops = 0;                        // retired micro-ops
  double l1_misses = 0;
  double llc_misses = 0;                  // refills from memory/system
  double l1_writes = 0;
  double branch_mispredicts = 0;
  double mem_reads = 0;                   // load accesses
  double mem_writes = 0;                  // store accesses
  double interrupts = 0;                  // external interrupts delivered
  double cycles = 0;

  ExecutionStats& operator+=(const ExecutionStats& o) noexcept;
  double total_instructions() const noexcept;
};

/// Linear response of an event to ExecutionStats, plus noise coefficients.
struct EventResponse {
  isa::ClassVector<float> class_weight;   // counts per retired instr of class
  float per_uop = 0.0f;
  float per_l1_miss = 0.0f;
  float per_llc_miss = 0.0f;
  float per_l1_write = 0.0f;
  float per_branch_miss = 0.0f;
  float per_mem_read = 0.0f;
  float per_mem_write = 0.0f;
  float per_cycle = 0.0f;                 // e.g. the CYCLES event
  float per_interrupt = 0.0f;             // interrupt-coupled noise
  float noise_rel = 0.0f;                 // relative measurement noise
  float noise_abs = 0.0f;                 // absolute noise floor per read
  /// Host-side background rate per slice for events that count host (not
  /// guest) activity; what makes non-guest-visible events non-constant.
  float host_background = 0.0f;

  /// Expected (noise-free) count contribution of the given stats record.
  double expected_count(const ExecutionStats& s) const noexcept;

  /// True if any guest-activity coefficient is non-zero, i.e. the event can
  /// reflect what runs inside the VM (what warm-up profiling discovers).
  ///
  /// Invariant: per_interrupt is deliberately NOT consulted. Interrupt
  /// delivery is scheduled by the host (the paper's C2 non-determinism),
  /// so an event coupled only to interrupts carries no information about
  /// what the guest executes — counting it as guest-visible would let
  /// warm-up profiling keep pure-noise events. Pinned by
  /// pmu_test.GuestVisibleIgnoresInterruptCoupling.
  bool guest_visible() const noexcept;
};

/// A monitorable HPC event.
struct EventDescriptor {
  std::uint32_t id = 0;
  std::string name;
  EventType type = EventType::kRawCpu;
  EventResponse response;
};

}  // namespace aegis::pmu
