#include "pmu/event_database.hpp"

#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace aegis::pmu {

namespace {

using isa::CpuModel;
using isa::InstructionClass;
using isa::Vendor;

/// Per-type event counts and guest-visible counts, tuned to Table I/II and
/// the warm-up survivor counts in Section V (Intel: ~738 remain of 6166;
/// AMD: 137 remain of 1903).
struct TypePlan {
  std::size_t h, s, hc, t, r, o;
  std::size_t t_visible, r_visible;  // H and HC are fully guest-visible
};

TypePlan plan_for(CpuModel model) {
  if (isa::vendor_of(model) == Vendor::kIntel) {
    // 24+19+62+2229+478+3354 = 6166; visible = 24+62+178+475 = 739.
    return TypePlan{24, 19, 62, 2229, 478, 3354, 178, 475};
  }
  // 24+19+62+1659+99+40 = 1903; visible = 24+62+26+25 = 137.
  // Note: Table II's bracketed per-type survivor percentages are mutually
  // inconsistent with the headline "137 events remain" for AMD; we follow
  // the headline count, which the rest of the paper (e.g. the 43-gadget
  // cover) builds on. See EXPERIMENTS.md.
  return TypePlan{24, 19, 62, 1659, 99, 40, 26, 25};
}

void set_class_weight(EventResponse& r, InstructionClass c, float w) {
  r.class_weight[c] = w;
}

void all_classes(EventResponse& r, float w) {
  for (std::size_t i = 0; i < r.class_weight.size(); ++i) {
    r.class_weight.at_index(i) = w;
  }
}

/// Common measurement-noise coefficients for guest-visible events (C2:
/// HPCs never count precisely).
// aegis-rng: stream(event-database-add-measurement-noise)
void add_measurement_noise(EventResponse& r, util::Rng& rng) {
  r.noise_rel = static_cast<float>(rng.uniform(0.005, 0.03));
  r.noise_abs = static_cast<float>(rng.uniform(0.0, 4.0));
  if (rng.bernoulli(0.5)) {
    r.per_interrupt = static_cast<float>(rng.uniform(1.0, 20.0));
  }
}

/// Builds a guest-visible response from one of the behavioural archetypes.
/// `idx` picks the archetype deterministically so family members agree.
// aegis-rng: stream(event-database-make-visible-response)
EventResponse make_visible_response(std::size_t idx, util::Rng& rng) {
  EventResponse r;
  const float scale = static_cast<float>(rng.uniform(0.4, 1.6));
  switch (idx % 12) {
    case 0:  // retired-instruction-like: broad class coverage
      all_classes(r, scale);
      break;
    case 1:  // uop-like
      r.per_uop = scale;
      break;
    case 2:  // load-dispatch-like
      r.per_mem_read = scale;
      if (rng.bernoulli(0.4)) r.per_mem_write = scale;
      break;
    case 3:  // store/L1-write-like
      r.per_mem_write = scale;
      r.per_l1_write = static_cast<float>(rng.uniform(0.3, 1.0));
      break;
    case 4:  // L1-miss-like
      r.per_l1_miss = scale;
      break;
    case 5:  // LLC/system-refill-like
      r.per_llc_miss = scale;
      break;
    case 6:  // branch-like
      set_class_weight(r, InstructionClass::kBranch, scale);
      set_class_weight(r, InstructionClass::kCall, scale);
      break;
    case 7:  // branch-mispredict-like
      r.per_branch_miss = scale;
      break;
    case 8:  // scalar-FP-like
      set_class_weight(r, InstructionClass::kFpAdd, scale);
      set_class_weight(r, InstructionClass::kFpMul, scale);
      set_class_weight(r, InstructionClass::kFpDiv, scale);
      if (rng.bernoulli(0.5)) set_class_weight(r, InstructionClass::kX87, scale);
      break;
    case 9:  // SIMD-like
      set_class_weight(r, InstructionClass::kSimdInt, scale);
      set_class_weight(r, InstructionClass::kSimdFp, scale);
      break;
    case 10: {  // narrow: one to three specific classes
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t k = 0; k < n; ++k) {
        const auto c = static_cast<InstructionClass>(
            rng.uniform_index(isa::kNumInstructionClasses - 1));  // skip kCount
        r.class_weight[c] = scale;
      }
      break;
    }
    case 11:  // cycle-like (stalls, clocks)
      r.per_cycle = static_cast<float>(rng.uniform(0.05, 1.0));
      break;
  }
  // Secondary cross-coupling so gadget sets intersect across events
  // (Section VII-C: one gadget can disturb many events).
  if (rng.bernoulli(0.35)) r.per_uop += static_cast<float>(rng.uniform(0.05, 0.3));
  if (rng.bernoulli(0.2)) r.per_l1_miss += static_cast<float>(rng.uniform(0.05, 0.5));
  add_measurement_noise(r, rng);
  return r;
}

/// Host-only events: active on the host regardless of guest activity, so
/// idle-vs-running comparison shows no shift and warm-up drops them.
// aegis-rng: stream(event-database-make-host-only-response)
EventResponse make_host_only_response(util::Rng& rng, double rate_scale) {
  EventResponse r;
  r.host_background = static_cast<float>(rng.uniform(0.0, 50.0) * rate_scale);
  r.noise_rel = static_cast<float>(rng.uniform(0.02, 0.1));
  r.noise_abs = static_cast<float>(rng.uniform(0.0, 2.0));
  return r;
}

void append_named(std::vector<EventDescriptor>& out, std::string name,
                  EventType type, EventResponse response) {
  EventDescriptor d;
  d.id = static_cast<std::uint32_t>(out.size());
  d.name = std::move(name);
  d.type = type;
  d.response = std::move(response);
  out.push_back(std::move(d));
}

// aegis-rng: stream(event-database-build-hardware-events)
void build_hardware_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                           std::size_t count) {
  const std::size_t target = out.size() + count;
  // The perf generic hardware events.
  {
    EventResponse r;
    r.per_cycle = 1.0f;
    add_measurement_noise(r, rng);
    append_named(out, "CPU-CYCLES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    all_classes(r, 1.0f);
    add_measurement_noise(r, rng);
    append_named(out, "INSTRUCTIONS", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_mem_read = 1.0f;
    r.per_mem_write = 1.0f;
    add_measurement_noise(r, rng);
    append_named(out, "CACHE-REFERENCES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_llc_miss = 1.0f;
    add_measurement_noise(r, rng);
    append_named(out, "CACHE-MISSES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    set_class_weight(r, InstructionClass::kBranch, 1.0f);
    set_class_weight(r, InstructionClass::kCall, 1.0f);
    add_measurement_noise(r, rng);
    append_named(out, "BRANCH-INSTRUCTIONS", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_branch_miss = 1.0f;
    add_measurement_noise(r, rng);
    append_named(out, "BRANCH-MISSES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_cycle = 0.1f;
    add_measurement_noise(r, rng);
    append_named(out, "BUS-CYCLES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_cycle = 1.0f;
    r.noise_rel = 0.002f;
    append_named(out, "REF-CYCLES", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_cycle = 0.15f;
    r.per_l1_miss = 2.0f;
    add_measurement_noise(r, rng);
    append_named(out, "STALLED-CYCLES-FRONTEND", EventType::kHardware, r);
  }
  {
    EventResponse r;
    r.per_cycle = 0.2f;
    r.per_llc_miss = 20.0f;
    add_measurement_noise(r, rng);
    append_named(out, "STALLED-CYCLES-BACKEND", EventType::kHardware, r);
  }
  for (std::size_t i = out.size(); i < target; ++i) {
    append_named(out, "HW-GENERIC-" + std::to_string(i), EventType::kHardware,
                 make_visible_response(i, rng));
  }
}

// aegis-rng: stream(event-database-build-software-events)
void build_software_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                           std::size_t count) {
  static const char* kNames[] = {
      "context-switches", "cpu-migrations",   "page-faults",
      "minor-faults",     "major-faults",     "alignment-faults",
      "emulation-faults", "task-clock",       "cpu-clock",
      "bpf-output",       "dummy",            "cgroup-switches"};
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = i < std::size(kNames)
                           ? std::string(kNames[i])
                           : "sw-event-" + std::to_string(i);
    // Monitored with exclude-kernel + guest pid the way the paper configures
    // perf, software events show only host scheduler background.
    append_named(out, std::move(name), EventType::kSoftware,
                 make_host_only_response(rng, 0.5));
  }
}

// aegis-rng: stream(event-database-build-hw-cache-events)
void build_hw_cache_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                           std::size_t count) {
  const std::size_t target = out.size() + count;
  struct CacheKind {
    const char* name;
    float read_w, write_w, l1_miss_w, llc_miss_w;
  };
  static constexpr CacheKind kKinds[] = {
      {"L1D", 1.0f, 1.0f, 1.0f, 0.0f}, {"L1I", 0.1f, 0.0f, 0.2f, 0.0f},
      {"LL", 0.2f, 0.2f, 0.0f, 1.0f},  {"DTLB", 0.15f, 0.15f, 0.30f, 0.0f},
      {"ITLB", 0.10f, 0.0f, 0.20f, 0.0f}, {"BPU", 0.0f, 0.0f, 0.0f, 0.0f},
      {"NODE", 0.12f, 0.12f, 0.0f, 0.5f}};
  static constexpr const char* kOps[] = {"READ", "WRITE", "PREFETCH"};
  static constexpr const char* kResults[] = {"ACCESS", "MISS"};
  for (const auto& kind : kKinds) {
    for (const char* op : kOps) {
      // Instruction-side TLBs have no write port.
      if (std::string_view(kind.name) == "ITLB" &&
          std::string_view(op) == "WRITE") {
        continue;
      }
      for (const char* result : kResults) {
        if (out.size() >= target) return;
        EventResponse r;
        const bool is_miss = std::string_view(result) == "MISS";
        const bool is_write = std::string_view(op) == "WRITE";
        if (std::string_view(kind.name) == "BPU") {
          set_class_weight(r, InstructionClass::kBranch, is_miss ? 0.0f : 1.0f);
          r.per_branch_miss = is_miss ? 1.0f : 0.0f;
        } else if (is_miss) {
          r.per_l1_miss = kind.l1_miss_w;
          r.per_llc_miss = kind.llc_miss_w > 0 ? kind.llc_miss_w : 0.0f;
          if (r.per_l1_miss == 0.0f && r.per_llc_miss == 0.0f) {
            r.per_l1_miss = 0.2f;
          }
        } else if (is_write) {
          r.per_mem_write = kind.write_w > 0 ? kind.write_w : 0.01f;
          r.per_l1_write = kind.write_w;
        } else {
          r.per_mem_read = kind.read_w > 0 ? kind.read_w : 0.01f;
        }
        add_measurement_noise(r, rng);
        append_named(out,
                     std::string("HW_CACHE_") + kind.name + ":" + op + ":" + result,
                     EventType::kHwCache, r);
      }
    }
  }
  for (std::size_t i = out.size(); i < target; ++i) {
    append_named(out, "HC-EXTRA-" + std::to_string(i), EventType::kHwCache,
                 make_visible_response(i + 2, rng));
  }
}

// aegis-rng: stream(event-database-build-tracepoint-events)
void build_tracepoint_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                             std::size_t count, std::size_t visible) {
  static const char* kSubsystems[] = {"syscalls", "sched", "irq",   "block",
                                      "net",      "ext4",  "timer", "signal",
                                      "writeback", "workqueue", "mm", "power"};
  // Guest-visible tracepoints are the virtualization ones: the host kernel's
  // kvm tracepoints fire on guest exits/entries/injections, so their rates
  // track guest activity (cycles consumed, interrupts delivered).
  static const char* kKvmPoints[] = {"kvm_exit", "kvm_entry", "kvm_inj_virq",
                                     "kvm_pio",  "kvm_mmio",  "kvm_msr",
                                     "kvm_cpuid", "kvm_halt_poll", "kvm_fpu",
                                     "kvm_page_fault"};
  for (std::size_t i = 0; i < visible; ++i) {
    EventResponse r;
    r.per_cycle = static_cast<float>(rng.uniform(1e-3, 6e-3));
    r.per_interrupt = static_cast<float>(rng.uniform(0.5, 2.0));
    r.noise_rel = static_cast<float>(rng.uniform(0.03, 0.1));
    r.noise_abs = static_cast<float>(rng.uniform(0.0, 2.0));
    std::string point = i < std::size(kKvmPoints)
                            ? std::string(kKvmPoints[i])
                            : "kvm_sub_event_" + std::to_string(i);
    append_named(out, "kvm:" + point, EventType::kTracepoint, r);
  }
  for (std::size_t i = visible; i < count; ++i) {
    const char* subsystem = kSubsystems[i % std::size(kSubsystems)];
    append_named(out,
                 std::string(subsystem) + ":tp_" + std::to_string(i),
                 EventType::kTracepoint, make_host_only_response(rng, 1.0));
  }
}

// aegis-rng: stream(event-database-build-raw-events)
void build_raw_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                      Vendor vendor, std::size_t count, std::size_t visible) {
  std::size_t emitted = 0;
  auto named = [&](const char* name, EventResponse r) {
    add_measurement_noise(r, rng);
    append_named(out, name, EventType::kRawCpu, std::move(r));
    ++emitted;
  };
  if (vendor == Vendor::kAmd) {
    // The paper's four attack events (Section III-B) plus the other raw
    // events it names, with semantically faithful responses.
    {
      EventResponse r;
      r.per_uop = 1.0f;
      named("RETIRED_UOPS", std::move(r));
    }
    {
      EventResponse r;
      r.per_mem_read = 1.0f;
      r.per_mem_write = 1.0f;
      named("LS_DISPATCH", std::move(r));
    }
    {
      EventResponse r;
      r.per_l1_miss = 1.0f;  // miss-address-buffer allocations track L1 misses
      named("MAB_ALLOCATION_BY_PIPE", std::move(r));
    }
    {
      EventResponse r;
      r.per_llc_miss = 1.0f;
      named("DATA_CACHE_REFILLS_FROM_SYSTEM", std::move(r));
    }
    {
      EventResponse r;
      set_class_weight(r, InstructionClass::kSimdInt, 1.0f);
      set_class_weight(r, InstructionClass::kSimdFp, 1.0f);
      set_class_weight(r, InstructionClass::kFpAdd, 1.0f);
      set_class_weight(r, InstructionClass::kFpMul, 1.0f);
      set_class_weight(r, InstructionClass::kFpDiv, 1.0f);
      named("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR", std::move(r));
    }
    {
      EventResponse r;
      all_classes(r, 1.0f);
      named("RETIRED_INSTRUCTIONS", std::move(r));
    }
    {
      EventResponse r;
      set_class_weight(r, InstructionClass::kBranch, 1.0f);
      set_class_weight(r, InstructionClass::kCall, 1.0f);
      named("RETIRED_BRANCH_INSTRUCTIONS", std::move(r));
    }
    {
      EventResponse r;
      r.per_branch_miss = 1.0f;
      named("RETIRED_BRANCH_MISPREDICTED", std::move(r));
    }
    {
      EventResponse r;
      r.per_cycle = 1.0f;
      named("CYCLES_NOT_IN_HALT", std::move(r));
    }
    {
      EventResponse r;
      set_class_weight(r, InstructionClass::kIntDiv, 1.0f);
      named("DIV_OP_COUNT", std::move(r));
    }
  } else {
    {
      EventResponse r;
      r.per_mem_read = 1.0f;
      r.per_l1_miss = -1.0f;  // hits = loads minus misses
      named("MEM_LOAD_UOPS_RETIRED:L1_HIT", std::move(r));
    }
    {
      EventResponse r;
      r.per_uop = 1.0f;
      named("UOPS_RETIRED:ALL", std::move(r));
    }
    {
      EventResponse r;
      all_classes(r, 1.0f);
      named("INST_RETIRED:ANY", std::move(r));
    }
    {
      EventResponse r;
      r.per_mem_read = 1.0f;
      named("MEM_UOPS_RETIRED:ALL_LOADS", std::move(r));
    }
    {
      EventResponse r;
      r.per_mem_write = 1.0f;
      named("MEM_UOPS_RETIRED:ALL_STORES", std::move(r));
    }
    {
      EventResponse r;
      r.per_llc_miss = 1.0f;
      named("LONGEST_LAT_CACHE:MISS", std::move(r));
    }
    {
      EventResponse r;
      set_class_weight(r, InstructionClass::kBranch, 1.0f);
      set_class_weight(r, InstructionClass::kCall, 1.0f);
      named("BR_INST_RETIRED:ALL_BRANCHES", std::move(r));
    }
    {
      EventResponse r;
      r.per_branch_miss = 1.0f;
      named("BR_MISP_RETIRED:ALL_BRANCHES", std::move(r));
    }
    {
      EventResponse r;
      set_class_weight(r, InstructionClass::kFpAdd, 1.0f);
      set_class_weight(r, InstructionClass::kFpMul, 1.0f);
      set_class_weight(r, InstructionClass::kSimdFp, 1.0f);
      named("FP_COMP_OPS_EXE:SSE_FP", std::move(r));
    }
    {
      EventResponse r;
      r.per_l1_miss = 0.08f;
      named("DTLB_LOAD_MISSES:MISS_CAUSES_A_WALK", std::move(r));
    }
  }
  const char* prefix = vendor == Vendor::kAmd ? "PMCx" : "CORE_EVT_";
  for (std::size_t i = emitted; i < visible; ++i) {
    append_named(out, std::string(prefix) + std::to_string(0x100 + i),
                 EventType::kRawCpu, make_visible_response(i * 7 + 3, rng));
  }
  for (std::size_t i = visible; i < count; ++i) {
    // Uncore / fixed-purpose host events the guest cannot influence.
    append_named(out, std::string(prefix) + "UNCORE_" + std::to_string(i),
                 EventType::kRawCpu, make_host_only_response(rng, 0.8));
  }
}

// aegis-rng: stream(event-database-build-other-events)
void build_other_events(std::vector<EventDescriptor>& out, util::Rng& rng,
                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const char* kind = (i % 3 == 0) ? "breakpoint:bp_"
                       : (i % 3 == 1) ? "probe:dyn_"
                                      : "raw_other:evt_";
    append_named(out, std::string(kind) + std::to_string(i), EventType::kOther,
                 make_host_only_response(rng, i % 7 == 0 ? 0.2 : 0.0));
  }
}

}  // namespace

// aegis-rng: stream(event-database-generate)
// aegis-lint: event-db-ok(this is the definition of generate() itself; callers go through pmu::backend::backend_for)
EventDatabase EventDatabase::generate(isa::CpuModel model) {
  EventDatabase db;
  db.model_ = model;
  const TypePlan plan = plan_for(model);
  // Family seed: CPUs in the same family get near-identical event lists.
  util::Rng rng(0xE5E7ULL + static_cast<std::uint64_t>(isa::family_of(model)) * 977ULL);

  auto& events = db.events_;
  events.reserve(plan.h + plan.s + plan.hc + plan.t + plan.r + plan.o + 16);

  build_hardware_events(events, rng, plan.h);
  build_software_events(events, rng, plan.s);
  build_hw_cache_events(events, rng, plan.hc);
  build_tracepoint_events(events, rng, plan.t, plan.t_visible);
  build_raw_events(events, rng, isa::vendor_of(model), plan.r, plan.r_visible);
  build_other_events(events, rng, plan.o);

  // Table I: the E5-4617 differs from its family sibling in 14 events
  // (4 removed, 10 added — net +6, matching 6172 vs 6166 totals).
  if (model == isa::CpuModel::kIntelXeonE5_4617) {
    std::size_t removed = 0;
    for (auto it = events.begin(); it != events.end() && removed < 4;) {
      if (it->type == EventType::kTracepoint && !it->response.guest_visible()) {
        it = events.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    for (std::size_t i = 0; i < 10; ++i) {
      append_named(events, "xeon4617:extra_evt_" + std::to_string(i),
                   EventType::kTracepoint, make_host_only_response(rng, 1.0));
    }
  }
  // Re-number ids to be dense and positional after any edits.
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].id = static_cast<std::uint32_t>(i);
  }
  return db;
}

const EventDescriptor& EventDatabase::by_id(std::uint32_t id) const {
  if (id >= events_.size()) throw std::out_of_range("EventDatabase::by_id");
  return events_[id];
}

std::optional<std::uint32_t> EventDatabase::find(std::string_view name) const noexcept {
  for (const auto& e : events_) {
    if (e.name == name) return e.id;
  }
  return std::nullopt;
}

std::array<std::size_t, kNumEventTypes> EventDatabase::count_by_type() const noexcept {
  std::array<std::size_t, kNumEventTypes> counts{};
  for (const auto& e : events_) {
    ++counts[static_cast<std::size_t>(e.type)];
  }
  return counts;
}

}  // namespace aegis::pmu
