// Runtime SIMD dispatch for the PMU response-matrix kernels.
//
// The batched accumulate engine computes, per call, the expected counts of
// the 4 rows in the active counter group. ResponseMatrix lays those rows
// out as a group-blocked column-sparse matrix at program() time (see
// response_matrix.hpp); the kernels here evaluate one group against a
// flattened feature vector, one row per SIMD lane.
//
// Bit-identity contract (DESIGN.md "SIMD kernels & superblock fusion"):
// every kernel produces exactly the scalar per-row accumulation order —
// ascending feature index, one multiply and one dependent add per retained
// column — so lane L's result is bit-identical to the dense scalar loop in
// ResponseMatrix::expected for row (group*4 + L). Columns whose coefficient
// is +/-0.0 in every lane are pruned at program() time; with finite
// features that is an exact no-op (the accumulator starts at +0.0 and a sum
// can only become -0.0 from (-0)+(-0), so adding a zero product never
// changes its bits). No FMA is ever used: the AVX2/AVX-512 translation
// units are compiled with -ffp-contract=off and use explicit mul/add
// intrinsics only.
//
// Dispatch is resolved ONCE, at CounterRegisterFile::program()/set_engine()
// time, into a stored function pointer; feature detection (cpuid) never
// runs inside the noalloc hot paths (enforced by the aegis-lint
// dispatch-once rule). AEGIS_FORCE_SCALAR=1 in the environment disables
// both SIMD ISAs process-wide, pinning every engine to the scalar path
// (the CI fallback leg runs the whole suite this way).
#pragma once

#include <cstddef>
#include <cstdint>

namespace aegis::pmu::simd {

/// Instruction-set level of a resolved accumulate kernel. Numeric values
/// are stable: they are exported as the aegis_pmu_engine_isa gauge and in
/// the BENCH_hotpath.json "engine" field.
enum class SimdIsa : unsigned char { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* to_string(SimdIsa isa) noexcept;

/// Host capabilities relevant to the kernels, detected once per process.
/// avx512 requires the F+VL+DQ subset the 512-bit kernel uses.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512 = false;
};

/// cpuid-backed detection, cached after the first call. Never call this
/// from a noalloc region (dispatch-once lint rule): resolve at program()
/// time and store the kernel pointer.
CpuFeatures detect_cpu_features() noexcept;

/// True when AEGIS_FORCE_SCALAR=1/true/yes is set in the environment
/// (read once per process).
bool force_scalar_env() noexcept;

/// True when kernels for `isa` can run here: CPU support AND not clamped
/// by AEGIS_FORCE_SCALAR. kScalar is always supported.
bool supported(SimdIsa isa) noexcept;

/// The widest supported ISA (what the auto engine resolves to).
SimdIsa best_isa() noexcept;

/// Evaluates one 4-lane group of the blocked column-sparse layout:
///   out_lanes[l] = sum over c of lane_coeff[4*c + l] * features[col_feat[c]]
/// accumulated in ascending column order per lane (no reassociation, no
/// FMA). `lane_coeff` is 32-byte aligned, 4 doubles per column; the caller
/// applies the negative clamp. Features must be finite.
using ExpectedGroupFn = void (*)(const double* lane_coeff,
                                 const std::uint32_t* col_feat,
                                 std::size_t cols, const double* features,
                                 double* out_lanes);

/// Kernel for `isa`; always returns a callable (the scalar kernel computes
/// the identical sparse accumulation without vector registers). Callers
/// must not request an unsupported ISA — guard with supported().
ExpectedGroupFn expected_group_kernel(SimdIsa isa) noexcept;

}  // namespace aegis::pmu::simd
