// Intel Xeon E5 family backend: E5-1650 and E5-4617 (paper Table I — 6166
// vs 6172 events, exactly 14 differing within the family).
#pragma once

#include "pmu/backend/backend.hpp"

namespace aegis::pmu::backend {

class IntelXeonE5Backend final : public PmuBackend {
 public:
  explicit IntelXeonE5Backend(isa::CpuModel model);

  std::string_view id() const noexcept override { return "intel-xeon-e5"; }

  /// Architectural fixed counters: INST_RETIRED.ANY, CPU_CLK_UNHALTED,
  /// CPU_CLK_UNHALTED.REF.
  std::size_t fixed_counter_budget() const noexcept override { return 3; }

  /// C-box/uncore PMON counters.
  std::size_t uncore_counter_budget() const noexcept override { return 4; }

  bool fixed_counter_event(std::string_view name) const noexcept override;

  /// The Xeon E5 defaults mirroring the paper's AMD picks (uops, loads,
  /// L1 activity, LLC refills), led by the event the paper itself names
  /// for Intel: MEM_LOAD_UOPS_RETIRED:L1_HIT (Section VIII extension).
  std::vector<std::string_view> attack_event_names() const override;

  std::string_view sku_override(std::string_view name) const noexcept override;
};

}  // namespace aegis::pmu::backend
