// AMD Zen 2 family backend: EPYC 7252 and EPYC 7313P (paper Table I — 1903
// events each, 0 differing within the family).
#pragma once

#include "pmu/backend/backend.hpp"

namespace aegis::pmu::backend {

class AmdZen2Backend final : public PmuBackend {
 public:
  explicit AmdZen2Backend(isa::CpuModel model);

  std::string_view id() const noexcept override { return "amd-zen2"; }

  /// IRPERF (retired instructions) + APERF (unhalted cycles).
  std::size_t fixed_counter_budget() const noexcept override { return 2; }

  /// Data-fabric counters.
  std::size_t uncore_counter_budget() const noexcept override { return 4; }

  bool fixed_counter_event(std::string_view name) const noexcept override;

  /// The paper's four Section III-B attack events, verbatim — pinned equal
  /// to pmu::kAmdAttackEvents so the seceval/bench defaults cannot drift.
  std::vector<std::string_view> attack_event_names() const override;

  std::string_view sku_override(std::string_view name) const noexcept override;
};

}  // namespace aegis::pmu::backend
