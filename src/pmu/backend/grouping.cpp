#include "pmu/backend/grouping.hpp"

#include <algorithm>
#include <ostream>

namespace aegis::pmu::backend {

std::string_view to_string(CounterBank bank) noexcept {
  switch (bank) {
    case CounterBank::kFixed: return "fixed";
    case CounterBank::kKernel: return "kernel";
    case CounterBank::kCore: return "core";
    case CounterBank::kUncore: return "uncore";
  }
  return "?";
}

std::size_t GroupingPlan::multiplex_slices() const noexcept {
  const std::size_t rotating = std::max(core_groups, uncore_groups);
  if (rotating > 0) return rotating;
  return total_events > 0 ? 1 : 0;
}

std::uint64_t GroupingPlan::digest() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const CounterGroup& g : groups) {
    mix(static_cast<std::uint64_t>(g.bank));
    mix(g.events.size());
    for (std::uint32_t id : g.events) mix(id);
  }
  return h;
}

std::size_t naive_slices(std::size_t event_count) noexcept {
  const std::size_t budget = EventDatabase::kNumCounters;
  return (event_count + budget - 1) / budget;
}

GroupingPlan adaptive_grouping(const PmuBackend& backend,
                               std::vector<std::uint32_t> events) {
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  GroupingPlan plan;
  plan.total_events = events.size();

  // Partition by bank, in ascending id order so the plan is a pure function
  // of the set (golden-pinned in tests/grouping_test.cpp).
  CounterGroup fixed{CounterBank::kFixed, {}};
  CounterGroup kernel{CounterBank::kKernel, {}};
  std::vector<std::uint32_t> core;
  std::vector<std::uint32_t> uncore;
  const EventDatabase& db = backend.database();
  for (std::uint32_t id : events) {
    const EventDescriptor& ev = db.by_id(id);
    switch (backend.tier_of(id)) {
      case CounterTier::kUncore:
        uncore.push_back(id);
        continue;
      case CounterTier::kStandard:
        // Software events, tracepoints and probes are kernel counters, not
        // PMU registers: no slot consumed, unlimited concurrency. Generic
        // cache events still program a real core counter.
        if (ev.type != EventType::kHwCache) {
          kernel.events.push_back(id);
          continue;
        }
        break;
      case CounterTier::kUniversal:
      case CounterTier::kExtended:
        break;
    }
    if (backend.fixed_counter_event(ev.name) &&
        fixed.events.size() < backend.fixed_counter_budget()) {
      fixed.events.push_back(id);  // first-come in ascending id order
    } else {
      core.push_back(id);
    }
  }

  if (!fixed.events.empty()) plan.groups.push_back(std::move(fixed));
  if (!kernel.events.empty()) plan.groups.push_back(std::move(kernel));

  const auto pack = [&plan](const std::vector<std::uint32_t>& ids,
                            CounterBank bank, std::size_t width) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < ids.size(); i += width) {
      CounterGroup g{bank, {}};
      const std::size_t end = std::min(i + width, ids.size());
      g.events.assign(ids.begin() + static_cast<std::ptrdiff_t>(i),
                      ids.begin() + static_cast<std::ptrdiff_t>(end));
      plan.groups.push_back(std::move(g));
      ++count;
    }
    return count;
  };
  plan.core_groups = pack(core, CounterBank::kCore, backend.counter_budget());
  plan.uncore_groups =
      pack(uncore, CounterBank::kUncore, backend.uncore_counter_budget());
  return plan;
}

std::vector<std::uint32_t> vulnerable_events(const PmuBackend& backend) {
  std::vector<std::uint32_t> ids;
  for (const EventDescriptor& ev : backend.database().events()) {
    if (ev.response.guest_visible()) ids.push_back(ev.id);
  }
  return ids;
}

void write_grouping_report(const PmuBackend& backend, std::ostream& out) {
  const GroupingPlan plan = adaptive_grouping(backend, vulnerable_events(backend));

  std::array<std::size_t, 4> bank_events{};
  std::array<std::size_t, 4> bank_groups{};
  for (const CounterGroup& g : plan.groups) {
    bank_events[static_cast<std::size_t>(g.bank)] += g.events.size();
    bank_groups[static_cast<std::size_t>(g.bank)] += 1;
  }
  const auto tiers = backend.tier_counts();

  out << "{\n";
  out << "  \"bench\": \"adaptive_grouping\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"cpu_model\": \"" << isa::to_token(backend.model()) << "\",\n";
  out << "  \"backend\": \"" << backend.id() << "\",\n";
  out << "  \"database_events\": " << backend.database().size() << ",\n";
  out << "  \"tier_counts\": {";
  for (std::size_t i = 0; i < kNumCounterTiers; ++i) {
    out << (i == 0 ? "" : ", ") << '"'
        << to_string(static_cast<CounterTier>(i)) << "\": " << tiers[i];
  }
  out << "},\n";
  out << "  \"vulnerable_events\": " << plan.total_events << ",\n";
  out << "  \"banks\": {";
  for (std::size_t i = 0; i < 4; ++i) {
    out << (i == 0 ? "" : ", ") << '"'
        << to_string(static_cast<CounterBank>(i)) << "\": {\"groups\": "
        << bank_groups[i] << ", \"events\": " << bank_events[i] << '}';
  }
  out << "},\n";
  out << "  \"adaptive_slices\": " << plan.multiplex_slices() << ",\n";
  out << "  \"naive_slices\": " << naive_slices(plan.total_events) << ",\n";
  out << "  \"plan_digest\": \"0x" << std::hex << plan.digest() << std::dec
      << "\"\n";
  out << "}\n";
}

}  // namespace aegis::pmu::backend
