// Multi-vendor PMU backend layer (see DESIGN.md "PMU backends & adaptive
// grouping").
//
// A PmuBackend bundles everything SKU-specific about one processor model:
//   * the synthetic EventDatabase (paper Table I/II scale),
//   * the counter topology — 4 programmable core counters on both paper
//     testbeds, plus the vendor's fixed-counter bank and uncore bank,
//   * a CounterTier per event (the faultline-style availability taxonomy:
//     universal / standard / extended / uncore),
//   * per-SKU name overrides (the perf generic alias -> vendor raw event),
//   * the default attack-event set the paper's attacks monitor on this
//     vendor (Section III-B on AMD; the Intel equivalents on Xeon E5).
//
// Everything here is a pure function of the CpuModel: backends hold no
// mutable state, tier classification consumes no RNG draws, and the
// wrapped database is exactly EventDatabase::generate(model) — so routing
// call sites through the backend changes no bytes anywhere (the AMD
// goldens are pinned by tests/backend_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "pmu/event_database.hpp"

namespace aegis::pmu::backend {

/// Availability tier of one event across a vendor's SKU range (model:
/// SNIPPETS.md Snippet 3, faultline's CounterTier).
enum class CounterTier : std::uint8_t {
  kUniversal = 0,  // architectural: perf generic hardware events, present
                   // (and fixed-counter servable) on every x86-64 SKU
  kStandard,       // kernel-provided: software events, cache events,
                   // tracepoints, probes — availability follows the kernel,
                   // not the SKU
  kExtended,       // vendor raw PMU events: per-family, programmable
                   // counters only
  kUncore,         // off-core (fabric/uncore) events: separate counter
                   // bank, host-scoped
};

inline constexpr std::size_t kNumCounterTiers = 4;

std::string_view to_string(CounterTier tier) noexcept;

/// One processor model's PMU personality. Concrete implementations:
/// AmdZen2Backend (EPYC 7252 / 7313P) and IntelXeonE5Backend (E5-1650 /
/// E5-4617), registered per model in BackendRegistry.
class PmuBackend {
 public:
  virtual ~PmuBackend();
  PmuBackend(const PmuBackend&) = delete;
  PmuBackend& operator=(const PmuBackend&) = delete;

  isa::CpuModel model() const noexcept { return db_.model(); }

  /// Stable backend identifier, one per vendor family ("amd-zen2",
  /// "intel-xeon-e5"). Flows into TemplateCache keys, serialize headers
  /// and BENCH_*.json artifacts so cross-SKU comparisons fail loudly.
  virtual std::string_view id() const noexcept = 0;

  /// The model's event database — byte-identical to calling
  /// EventDatabase::generate(model()) directly (single shared instance).
  const EventDatabase& database() const noexcept { return db_; }

  /// Programmable core counters available for concurrent monitoring
  /// (paper: 4 on both testbeds).
  std::size_t counter_budget() const noexcept {
    return EventDatabase::kNumCounters;
  }

  /// Fixed-function counter slots (Intel: INST_RETIRED / CPU_CLK /
  /// REF_CLK = 3; AMD Zen2: IRPERF + APERF = 2). Events servable here do
  /// not consume a programmable slot.
  virtual std::size_t fixed_counter_budget() const noexcept = 0;

  /// Uncore-bank counters per slice. Uncore events multiplex through this
  /// bank concurrently with the core bank.
  virtual std::size_t uncore_counter_budget() const noexcept = 0;

  /// True when `name` can be served by a fixed-function counter on this
  /// vendor (the generic alias and its raw twin both qualify).
  virtual bool fixed_counter_event(std::string_view name) const noexcept = 0;

  /// Availability tier of one event. Deterministic classification over
  /// (type, name) only — never consumes randomness, so adding a backend
  /// cannot perturb the generated database.
  CounterTier tier_of(std::uint32_t event_id) const;

  /// Events per tier over the whole database (golden-pinned per vendor).
  std::array<std::size_t, kNumCounterTiers> tier_counts() const;

  /// Default attack-event names for this vendor (paper Section III-B on
  /// AMD; the Xeon E5 equivalents on Intel). Size == counter_budget().
  virtual std::vector<std::string_view> attack_event_names() const = 0;

  /// attack_event_names() resolved to database ids, in order.
  std::vector<std::uint32_t> attack_events() const;

  /// Per-SKU name override: the vendor raw event a perf generic alias
  /// resolves to on this SKU ("" = no override, use the shared name).
  /// Model: faultline's PMUCounter::skuOverride.
  virtual std::string_view sku_override(std::string_view name) const noexcept;

  /// find() that honours sku_override: resolves `name` directly, or via
  /// its override when the shared name needs SKU-specific spelling.
  std::optional<std::uint32_t> resolve(std::string_view name) const noexcept;

 protected:
  explicit PmuBackend(isa::CpuModel model);

 private:
  EventDatabase db_;
};

}  // namespace aegis::pmu::backend
