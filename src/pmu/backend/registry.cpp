#include "pmu/backend/registry.hpp"

#include <cstdlib>

#include "pmu/backend/amd_zen2.hpp"
#include "pmu/backend/intel_xeon_e5.hpp"

namespace aegis::pmu::backend {

namespace {

// One lazily-built singleton per model (thread-safe magic statics): a test
// binary that only ever touches AMD never pays for the Intel databases.
const PmuBackend& singleton(isa::CpuModel model) {
  switch (model) {
    case isa::CpuModel::kIntelXeonE5_1650: {
      static const IntelXeonE5Backend b(isa::CpuModel::kIntelXeonE5_1650);
      return b;
    }
    case isa::CpuModel::kIntelXeonE5_4617: {
      static const IntelXeonE5Backend b(isa::CpuModel::kIntelXeonE5_4617);
      return b;
    }
    case isa::CpuModel::kAmdEpyc7252: {
      static const AmdZen2Backend b(isa::CpuModel::kAmdEpyc7252);
      return b;
    }
    case isa::CpuModel::kAmdEpyc7313P:
      break;
  }
  static const AmdZen2Backend b(isa::CpuModel::kAmdEpyc7313P);
  return b;
}

}  // namespace

const BackendRegistry& BackendRegistry::instance() {
  static const BackendRegistry registry;
  return registry;
}

const PmuBackend& BackendRegistry::get(isa::CpuModel model) const {
  return singleton(model);
}

std::vector<isa::CpuModel> BackendRegistry::models() const {
  return {isa::CpuModel::kIntelXeonE5_1650, isa::CpuModel::kIntelXeonE5_4617,
          isa::CpuModel::kAmdEpyc7252, isa::CpuModel::kAmdEpyc7313P};
}

const PmuBackend& backend_for(isa::CpuModel model) {
  return BackendRegistry::instance().get(model);
}

std::string_view backend_id(isa::CpuModel model) {
  return backend_for(model).id();
}

std::optional<isa::CpuModel> parse_cpu_model(std::string_view text) noexcept {
  if (text == "amd") return isa::CpuModel::kAmdEpyc7252;
  if (text == "intel") return isa::CpuModel::kIntelXeonE5_1650;
  for (isa::CpuModel m : BackendRegistry::instance().models()) {
    if (text == isa::to_token(m) || text == isa::to_string(m)) return m;
  }
  return std::nullopt;
}

isa::CpuModel model_from_env(isa::CpuModel fallback) noexcept {
  const char* env = std::getenv("AEGIS_CPU");
  if (env == nullptr || *env == '\0') return fallback;
  if (const auto model = parse_cpu_model(env)) return *model;
  return fallback;
}

}  // namespace aegis::pmu::backend
