// Adaptive event grouping (model: SNIPPETS.md Snippet 1, hperf's
// adaptive_grouping over a fixed programmable-counter budget).
//
// Today's profiler sweep multiplexes EVERY event through the 4
// programmable core counters, 4 at a time: ceil(n/4) time slices per
// rotation. That wastes the counters the PMU gives away for free:
//
//   * fixed bank    — fixed-function counters (Intel: 3, AMD Zen2: 2)
//                     count their architectural events continuously,
//                     consuming no programmable slot;
//   * kernel "bank" — software events, tracepoints and probes are kernel
//                     counters, not PMU registers: unlimited concurrency;
//   * uncore bank   — uncore events rotate through their own counters,
//                     concurrently with the core bank.
//
// adaptive_grouping() partitions an event set across those banks and packs
// only the remainder into programmable groups, minimizing multiplexing
// slices. The assignment is a pure function of (backend, sorted event
// ids): no RNG, no hashing — the exact plan is golden-pinned for both
// vendors' vulnerable-event sets in tests/grouping_test.cpp, where it is
// also proven to need strictly fewer slices than the naive packing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "pmu/backend/backend.hpp"

namespace aegis::pmu::backend {

/// Which counter resource a group occupies.
enum class CounterBank : std::uint8_t {
  kFixed = 0,  // fixed-function counters; always-on, one group at most
  kKernel,     // kernel software counters; always-on, one group at most
  kCore,       // programmable core counters; groups rotate per slice
  kUncore,     // uncore counters; rotate concurrently with the core bank
};

std::string_view to_string(CounterBank bank) noexcept;

struct CounterGroup {
  CounterBank bank = CounterBank::kCore;
  std::vector<std::uint32_t> events;  // ascending ids
};

struct GroupingPlan {
  /// Fixed group first (if any), then the kernel group, then core groups,
  /// then uncore groups — each bank's events in ascending id order.
  std::vector<CounterGroup> groups;
  std::size_t total_events = 0;
  std::size_t core_groups = 0;
  std::size_t uncore_groups = 0;

  /// Time slices one full rotation needs: the core and uncore banks rotate
  /// concurrently, the fixed/kernel banks count continuously (read in any
  /// slice), so max(core, uncore) — floor 1 when anything is monitored.
  std::size_t multiplex_slices() const noexcept;

  /// FNV-1a over (bank, events) of every group: one number a golden test
  /// pins so any change to the packing is a deliberate re-baseline.
  std::uint64_t digest() const noexcept;
};

/// Slices the pre-backend code path needs: every event through the 4
/// programmable counters, 4 at a time.
std::size_t naive_slices(std::size_t event_count) noexcept;

/// Packs `events` (any order, duplicates ignored) for `backend`.
GroupingPlan adaptive_grouping(const PmuBackend& backend,
                               std::vector<std::uint32_t> events);

/// The set the paper's defense must keep monitorable: every guest-visible
/// event (the warm-up-survivor superset; Section V).
std::vector<std::uint32_t> vulnerable_events(const PmuBackend& backend);

/// Machine-readable grouping report (GROUPING_<backend>.json): tier
/// census, bank census and slice counts for the vulnerable set. The CI
/// Intel leg uploads this as an artifact.
void write_grouping_report(const PmuBackend& backend, std::ostream& out);

}  // namespace aegis::pmu::backend
