// BackendRegistry: the one place a CpuModel becomes a PmuBackend.
//
// Every component that used to call EventDatabase::generate(model)
// directly now asks the registry instead (enforced by the aegis-lint
// `backend-registry` rule); backends are lazily constructed process-wide
// singletons, so the 6k-event Intel database is generated at most once per
// process and every Aegis instance on the same model shares one immutable
// database.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "pmu/backend/backend.hpp"

namespace aegis::pmu::backend {

class BackendRegistry {
 public:
  /// The process-wide registry.
  static const BackendRegistry& instance();

  /// The backend for one model. Never fails: every isa::CpuModel has a
  /// registered backend (pinned by backend_test.CoversEveryModel).
  const PmuBackend& get(isa::CpuModel model) const;

  /// Every supported model, in isa::CpuModel declaration order.
  std::vector<isa::CpuModel> models() const;

 private:
  BackendRegistry() = default;
};

/// Shorthand for BackendRegistry::instance().get(model).
const PmuBackend& backend_for(isa::CpuModel model);

/// Shorthand for backend_for(model).id().
std::string_view backend_id(isa::CpuModel model);

/// Parses a CPU selector: a vendor shorthand ("amd", "intel"), a model
/// token ("AmdEpyc7252", ...) or a full model name ("AMD EPYC 7252", ...).
std::optional<isa::CpuModel> parse_cpu_model(std::string_view text) noexcept;

/// Tool-facing model selection: the AEGIS_CPU environment variable when
/// set and parseable, `fallback` otherwise. Benches and the CI Intel leg
/// steer whole runs through one backend with this (the library itself
/// never reads it — determinism stays config-driven).
isa::CpuModel model_from_env(
    isa::CpuModel fallback = isa::CpuModel::kAmdEpyc7252) noexcept;

}  // namespace aegis::pmu::backend
