#include "pmu/backend/amd_zen2.hpp"

#include <stdexcept>

namespace aegis::pmu::backend {

AmdZen2Backend::AmdZen2Backend(isa::CpuModel model) : PmuBackend(model) {
  if (isa::vendor_of(model) != isa::Vendor::kAmd) {
    throw std::invalid_argument("AmdZen2Backend: not an AMD model");
  }
}

bool AmdZen2Backend::fixed_counter_event(
    std::string_view name) const noexcept {
  // The generic aliases and their raw twins both land on the two
  // fixed-function MSRs (IRPERF, APERF); with only two slots, the packer
  // spills later claimants to the programmable bank.
  return name == "INSTRUCTIONS" || name == "CPU-CYCLES" ||
         name == "RETIRED_INSTRUCTIONS" || name == "CYCLES_NOT_IN_HALT";
}

std::vector<std::string_view> AmdZen2Backend::attack_event_names() const {
  return {kAmdAttackEvents.begin(), kAmdAttackEvents.end()};
}

std::string_view AmdZen2Backend::sku_override(
    std::string_view name) const noexcept {
  if (name == "INSTRUCTIONS") return "RETIRED_INSTRUCTIONS";
  if (name == "CPU-CYCLES") return "CYCLES_NOT_IN_HALT";
  if (name == "BRANCH-INSTRUCTIONS") return "RETIRED_BRANCH_INSTRUCTIONS";
  if (name == "BRANCH-MISSES") return "RETIRED_BRANCH_MISPREDICTED";
  return {};
}

}  // namespace aegis::pmu::backend
