#include "pmu/backend/intel_xeon_e5.hpp"

#include <stdexcept>

namespace aegis::pmu::backend {

IntelXeonE5Backend::IntelXeonE5Backend(isa::CpuModel model)
    : PmuBackend(model) {
  if (isa::vendor_of(model) != isa::Vendor::kIntel) {
    throw std::invalid_argument("IntelXeonE5Backend: not an Intel model");
  }
}

bool IntelXeonE5Backend::fixed_counter_event(
    std::string_view name) const noexcept {
  // The three architectural fixed counters; INST_RETIRED:ANY is the raw
  // spelling of the INSTRUCTIONS alias and shares its slot.
  return name == "INSTRUCTIONS" || name == "CPU-CYCLES" ||
         name == "REF-CYCLES" || name == "INST_RETIRED:ANY";
}

std::vector<std::string_view> IntelXeonE5Backend::attack_event_names() const {
  return {
      "MEM_LOAD_UOPS_RETIRED:L1_HIT",
      "UOPS_RETIRED:ALL",
      "MEM_UOPS_RETIRED:ALL_LOADS",
      "LONGEST_LAT_CACHE:MISS",
  };
}

std::string_view IntelXeonE5Backend::sku_override(
    std::string_view name) const noexcept {
  if (name == "INSTRUCTIONS") return "INST_RETIRED:ANY";
  if (name == "BRANCH-INSTRUCTIONS") return "BR_INST_RETIRED:ALL_BRANCHES";
  if (name == "BRANCH-MISSES") return "BR_MISP_RETIRED:ALL_BRANCHES";
  if (name == "CACHE-MISSES") return "LONGEST_LAT_CACHE:MISS";
  return {};
}

}  // namespace aegis::pmu::backend
