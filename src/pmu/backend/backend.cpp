#include "pmu/backend/backend.hpp"

#include <stdexcept>

namespace aegis::pmu::backend {

std::string_view to_string(CounterTier tier) noexcept {
  switch (tier) {
    case CounterTier::kUniversal: return "universal";
    case CounterTier::kStandard: return "standard";
    case CounterTier::kExtended: return "extended";
    case CounterTier::kUncore: return "uncore";
  }
  return "unknown";
}

PmuBackend::PmuBackend(isa::CpuModel model)
    // The backend is a VIEW over the unchanged generator: same seed, same
    // draw order, same bytes as every pre-backend call site produced.
    // src/pmu/backend/ is the one sanctioned generate() caller — the gate
    // disables the backend-registry rule for this directory, so no
    // suppression comment is needed (one here would be flagged as stale).
    : db_(EventDatabase::generate(model)) {}

PmuBackend::~PmuBackend() = default;

CounterTier PmuBackend::tier_of(std::uint32_t event_id) const {
  const EventDescriptor& e = db_.by_id(event_id);
  // Name-based refinements first: a fixed-counter alias is architectural
  // wherever it appears, and the synthetic uncore events are identifiable
  // by the generator's UNCORE_ name stem.
  if (fixed_counter_event(e.name)) return CounterTier::kUniversal;
  switch (e.type) {
    case EventType::kHardware:
      return CounterTier::kUniversal;
    case EventType::kSoftware:
    case EventType::kHwCache:
    case EventType::kTracepoint:
    case EventType::kOther:
      return CounterTier::kStandard;
    case EventType::kRawCpu:
      return e.name.find("UNCORE_") != std::string::npos
                 ? CounterTier::kUncore
                 : CounterTier::kExtended;
    case EventType::kCount:
      break;
  }
  return CounterTier::kExtended;
}

std::array<std::size_t, kNumCounterTiers> PmuBackend::tier_counts() const {
  std::array<std::size_t, kNumCounterTiers> counts{};
  for (const EventDescriptor& e : db_.events()) {
    ++counts[static_cast<std::size_t>(tier_of(e.id))];
  }
  return counts;
}

std::vector<std::uint32_t> PmuBackend::attack_events() const {
  std::vector<std::uint32_t> ids;
  for (std::string_view name : attack_event_names()) {
    const auto id = db_.find(name);
    if (!id) {
      throw std::logic_error("PmuBackend: attack event '" + std::string(name) +
                             "' missing from " +
                             std::string(isa::to_string(model())) +
                             " database");
    }
    ids.push_back(*id);
  }
  return ids;
}

std::string_view PmuBackend::sku_override(
    std::string_view /*name*/) const noexcept {
  return {};
}

std::optional<std::uint32_t> PmuBackend::resolve(
    std::string_view name) const noexcept {
  if (const auto id = db_.find(name)) return id;
  if (const std::string_view alias = sku_override(name); !alias.empty()) {
    return db_.find(alias);
  }
  return std::nullopt;
}

}  // namespace aegis::pmu::backend
