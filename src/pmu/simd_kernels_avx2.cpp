// AVX2 kernel for the group-blocked column-sparse expected-count layout.
//
// Compiled as its own translation unit with -mavx2 -ffp-contract=off (see
// src/CMakeLists.txt): the rest of the library stays at the portable
// baseline, and no FMA contraction can reassociate the per-lane add chain.
// Only exact per-lane operations are used — one _mm256_mul_pd and one
// dependent _mm256_add_pd per retained column — so each lane performs the
// scalar reference accumulation bit for bit (IEEE-754 ops are exactly
// rounded lane-wise; vectorizing ACROSS rows changes nothing about any
// single row's term order).
//
// Callable only through simd::expected_group_kernel after a supported()
// check resolved at program() time (dispatch-once rule).
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace aegis::pmu::simd {

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

bool have_avx2_support() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

void expected_group_avx2(const double* lane_coeff, const std::uint32_t* col_feat,
                         std::size_t cols, const double* features,
                         double* out_lanes) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t c = 0; c < cols; ++c) {
    const __m256d lane = _mm256_load_pd(lane_coeff + 4 * c);
    const __m256d f = _mm256_broadcast_sd(features + col_feat[c]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(lane, f));
  }
  _mm256_storeu_pd(out_lanes, acc);
}

#else  // non-x86 or a toolchain without AVX2: never selected by dispatch.

bool have_avx2_support() noexcept { return false; }

void expected_group_avx2(const double* lane_coeff, const std::uint32_t* col_feat,
                         std::size_t cols, const double* features,
                         double* out_lanes) {
  // Defensive fallback with the identical accumulation order.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t c = 0; c < cols; ++c) {
    const double f = features[col_feat[c]];
    for (int l = 0; l < 4; ++l) acc[l] += lane_coeff[4 * c + l] * f;
  }
  for (int l = 0; l < 4; ++l) out_lanes[l] = acc[l];
}

#endif

}  // namespace aegis::pmu::simd
