#include "pmu/response_matrix.hpp"

namespace aegis::pmu {

// aegis-lint: noalloc
void flatten_stats(const ExecutionStats& s, double* out) noexcept {
  constexpr std::size_t kClasses = isa::kNumInstructionClasses;
  for (std::size_t i = 0; i < kClasses; ++i) {
    out[i] = s.class_counts.at_index(i);
  }
  out[kClasses + 0] = s.uops;
  out[kClasses + 1] = s.l1_misses;
  out[kClasses + 2] = s.llc_misses;
  out[kClasses + 3] = s.l1_writes;
  out[kClasses + 4] = s.branch_mispredicts;
  out[kClasses + 5] = s.mem_reads;
  out[kClasses + 6] = s.mem_writes;
  out[kClasses + 7] = s.cycles;
  out[kClasses + 8] = s.interrupts;
}

void ResponseMatrix::program(const EventDatabase& db,
                             std::span<const std::uint32_t> ids) {
  constexpr std::size_t kClasses = isa::kNumInstructionClasses;
  coeff_.clear();
  noise_.clear();
  coeff_.reserve(ids.size() * kStatsFeatureDim);
  noise_.reserve(ids.size());
  for (std::uint32_t id : ids) {
    const EventResponse& r = db.by_id(id).response;  // validates like program()
    for (std::size_t i = 0; i < kClasses; ++i) {
      coeff_.push_back(static_cast<double>(r.class_weight.at_index(i)));
    }
    // Scalar coefficients in expected_count's term order (see flatten_stats).
    coeff_.push_back(static_cast<double>(r.per_uop));
    coeff_.push_back(static_cast<double>(r.per_l1_miss));
    coeff_.push_back(static_cast<double>(r.per_llc_miss));
    coeff_.push_back(static_cast<double>(r.per_l1_write));
    coeff_.push_back(static_cast<double>(r.per_branch_miss));
    coeff_.push_back(static_cast<double>(r.per_mem_read));
    coeff_.push_back(static_cast<double>(r.per_mem_write));
    coeff_.push_back(static_cast<double>(r.per_cycle));
    coeff_.push_back(static_cast<double>(r.per_interrupt));
    noise_.push_back(RowNoise{r.noise_rel, r.noise_abs, r.host_background});
  }
}

void ResponseMatrix::clear() noexcept {
  coeff_.clear();
  noise_.clear();
}

}  // namespace aegis::pmu
