#include "pmu/response_matrix.hpp"

#include <cstdint>

namespace aegis::pmu {

// aegis-lint: noalloc
void flatten_stats(const ExecutionStats& s, double* out) noexcept {
  constexpr std::size_t kClasses = isa::kNumInstructionClasses;
  for (std::size_t i = 0; i < kClasses; ++i) {
    out[i] = s.class_counts.at_index(i);
  }
  out[kClasses + 0] = s.uops;
  out[kClasses + 1] = s.l1_misses;
  out[kClasses + 2] = s.llc_misses;
  out[kClasses + 3] = s.l1_writes;
  out[kClasses + 4] = s.branch_mispredicts;
  out[kClasses + 5] = s.mem_reads;
  out[kClasses + 6] = s.mem_writes;
  out[kClasses + 7] = s.cycles;
  out[kClasses + 8] = s.interrupts;
}

void ResponseMatrix::program(const EventDatabase& db,
                             std::span<const std::uint32_t> ids) {
  constexpr std::size_t kClasses = isa::kNumInstructionClasses;
  coeff_.clear();
  noise_.clear();
  coeff_.reserve(ids.size() * kStatsFeatureDim);
  noise_.reserve(ids.size());
  for (std::uint32_t id : ids) {
    const EventResponse& r = db.by_id(id).response;  // validates like program()
    for (std::size_t i = 0; i < kClasses; ++i) {
      coeff_.push_back(static_cast<double>(r.class_weight.at_index(i)));
    }
    // Scalar coefficients in expected_count's term order (see flatten_stats).
    coeff_.push_back(static_cast<double>(r.per_uop));
    coeff_.push_back(static_cast<double>(r.per_l1_miss));
    coeff_.push_back(static_cast<double>(r.per_llc_miss));
    coeff_.push_back(static_cast<double>(r.per_l1_write));
    coeff_.push_back(static_cast<double>(r.per_branch_miss));
    coeff_.push_back(static_cast<double>(r.per_mem_read));
    coeff_.push_back(static_cast<double>(r.per_mem_write));
    coeff_.push_back(static_cast<double>(r.per_cycle));
    coeff_.push_back(static_cast<double>(r.per_interrupt));
    noise_.push_back(RowNoise{r.noise_rel, r.noise_abs, r.host_background});
  }
  build_group_blocks();
}

// Builds the 4-lane group blocks from the dense rows: per group, the
// ascending union of feature columns any lane responds to, packed as 4
// lane coefficients per column into 64-byte-aligned storage. Rows past the
// end pad their lanes with zeros. Exact-zero columns are pruned — a
// bit-exact no-op under IEEE-754 for finite features (simd_dispatch.hpp).
void ResponseMatrix::build_group_blocks() {
  const std::size_t nrows = noise_.size();
  const std::size_t ngroups = (nrows + kLanes - 1) / kLanes;
  col_feat_.clear();
  group_off_.assign(ngroups + 1, 0);
  slice_noise_.assign(ngroups, 0);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t row0 = g * kLanes;
    const std::size_t lanes = std::min(kLanes, nrows - row0);
    for (std::uint32_t f = 0; f < kStatsFeatureDim; ++f) {
      bool any = false;
      for (std::size_t l = 0; l < lanes && !any; ++l) {
        any = coeff_[(row0 + l) * kStatsFeatureDim + f] != 0.0;
      }
      if (any) col_feat_.push_back(f);
    }
    group_off_[g + 1] = static_cast<std::uint32_t>(col_feat_.size());
    for (std::size_t l = 0; l < lanes; ++l) {
      if (noise_[row0 + l].abs > 0.0f || noise_[row0 + l].background > 0.0f) {
        slice_noise_[g] = 1;
      }
    }
  }

  // Pack lane coefficients, 64-byte aligned (overallocate by 7 doubles and
  // round the base pointer up; vector data is always 8-byte aligned).
  lane_store_.assign(col_feat_.size() * kLanes + 7, 0.0);
  double* base = lane_store_.data();
  while (reinterpret_cast<std::uintptr_t>(base) % 64 != 0) ++base;
  lane_coeff_ = base;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t row0 = g * kLanes;
    const std::size_t lanes = std::min(kLanes, nrows - row0);
    for (std::uint32_t c = group_off_[g]; c < group_off_[g + 1]; ++c) {
      const std::uint32_t f = col_feat_[c];
      for (std::size_t l = 0; l < lanes; ++l) {
        base[std::size_t{c} * kLanes + l] =
            coeff_[(row0 + l) * kStatsFeatureDim + f];
      }
    }
  }
}

void ResponseMatrix::clear() noexcept {
  coeff_.clear();
  noise_.clear();
  lane_store_.clear();
  lane_coeff_ = nullptr;
  col_feat_.clear();
  group_off_.clear();
  slice_noise_.clear();
}

}  // namespace aegis::pmu
