// Batched structure-of-arrays PMU response engine.
//
// CounterRegisterFile::accumulate is the innermost loop of every campaign:
// Table III fuzzing, the Fig. 8 sweep over all 1903 events and the
// obfuscator's per-slice in-guest path all funnel millions of simulated
// gadget executions through it. The scattered representation — one
// EventDatabase::by_id pointer chase per slot per call into an
// EventDescriptor whose float coefficients interleave with its name and
// type — costs a dependent load chain plus ~34 float->double conversions
// per slot. ResponseMatrix flattens the programmed responses ONCE, at
// program() time, into a dense row-major double matrix so that accumulate
// becomes a small mat-vec against one flattened feature vector.
//
// Contract: expected(row, features) performs bit-identical arithmetic to
// EventResponse::expected_count on the same ExecutionStats record — the
// same terms, in the same order, at the same (double) precision — so the
// batched engine is a drop-in replacement for the retained reference
// implementation. tests/hotpath_test.cpp proves the equivalence end to end
// (fuzzing shard + profiler ranking, bit-identical counters).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmu/event_database.hpp"
#include "pmu/event_model.hpp"

namespace aegis::pmu {

/// Width of the flattened ExecutionStats feature vector: one slot per
/// instruction class plus the 9 scalar activity fields.
inline constexpr std::size_t kStatsFeatureDim = isa::kNumInstructionClasses + 9;

/// Flattens `s` into out[0..kStatsFeatureDim): class counts first, then the
/// scalars in EventResponse::expected_count's term order (uops, l1_misses,
/// llc_misses, l1_writes, branch_mispredicts, mem_reads, mem_writes,
/// cycles, interrupts). Changing this order breaks the bit-identity
/// contract with the reference implementation.
void flatten_stats(const ExecutionStats& s, double* out) noexcept;

class ResponseMatrix {
 public:
  /// Flattens the EventResponse of each id into one dense coefficient row
  /// (and caches the per-row noise terms used by end_slice). Validates ids
  /// against the database exactly like the reference path (throws
  /// std::out_of_range on unknown ids).
  void program(const EventDatabase& db, std::span<const std::uint32_t> ids);

  void clear() noexcept;

  std::size_t rows() const noexcept { return noise_.size(); }

  /// Expected (noise-free) count of row `row` for a feature vector produced
  /// by flatten_stats. Bit-identical to EventResponse::expected_count.
  // aegis-lint: noalloc
  double expected(std::size_t row, const double* features) const noexcept {
    const double* c = coeff_.data() + row * kStatsFeatureDim;
    double count = 0.0;
    for (std::size_t i = 0; i < kStatsFeatureDim; ++i) {
      count += c[i] * features[i];
    }
    return count < 0.0 ? 0.0 : count;
  }

  float noise_rel(std::size_t row) const noexcept { return noise_[row].rel; }
  float noise_abs(std::size_t row) const noexcept { return noise_[row].abs; }
  float host_background(std::size_t row) const noexcept {
    return noise_[row].background;
  }

 private:
  struct RowNoise {
    float rel = 0.0f;
    float abs = 0.0f;
    float background = 0.0f;
  };

  std::vector<double> coeff_;   // rows() x kStatsFeatureDim, row-major
  std::vector<RowNoise> noise_;
};

}  // namespace aegis::pmu
