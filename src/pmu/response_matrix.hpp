// Batched structure-of-arrays PMU response engine.
//
// CounterRegisterFile::accumulate is the innermost loop of every campaign:
// Table III fuzzing, the Fig. 8 sweep over all 1903 events and the
// obfuscator's per-slice in-guest path all funnel millions of simulated
// gadget executions through it. The scattered representation — one
// EventDatabase::by_id pointer chase per slot per call into an
// EventDescriptor whose float coefficients interleave with its name and
// type — costs a dependent load chain plus ~34 float->double conversions
// per slot. ResponseMatrix flattens the programmed responses ONCE, at
// program() time, into a dense row-major double matrix so that accumulate
// becomes a small mat-vec against one flattened feature vector.
//
// On top of the dense rows, program() builds a group-blocked column-sparse
// layout for the SIMD engines (see DESIGN.md "SIMD kernels & superblock
// fusion"): rows are blocked into groups of kLanes = 4 — exactly the
// hardware counter groups accumulate touches — padded with zero rows to the
// lane width and 64-byte aligned. Per group only the ascending union of
// feature columns with a nonzero coefficient in ANY lane is kept, each
// stored as 4 packed lane coefficients. Pruning exact-zero columns and
// padding with zero lanes are both bit-exact no-ops (see
// simd_dispatch.hpp), so kernels vectorize ACROSS rows while each lane
// retains the scalar per-row term order. Event responses are archetype-
// sparse (most rows have 1-3 nonzero coefficients), so the per-group union
// is typically ~4-8 of the 34 columns — the short-row fast path the 4-event
// attack configuration runs entirely inside one group.
//
// Contract: expected(row, features) performs bit-identical arithmetic to
// EventResponse::expected_count on the same ExecutionStats record — the
// same terms, in the same order, at the same (double) precision — so the
// batched engine is a drop-in replacement for the retained reference
// implementation, and every SIMD kernel is bit-identical to expected().
// tests/hotpath_test.cpp proves the equivalence end to end (fuzzing shard +
// profiler ranking, bit-identical counters, per-group kernel sweeps).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmu/event_database.hpp"
#include "pmu/event_model.hpp"

namespace aegis::pmu {

/// Width of the flattened ExecutionStats feature vector: one slot per
/// instruction class plus the 9 scalar activity fields.
inline constexpr std::size_t kStatsFeatureDim = isa::kNumInstructionClasses + 9;

/// Flattens `s` into out[0..kStatsFeatureDim): class counts first, then the
/// scalars in EventResponse::expected_count's term order (uops, l1_misses,
/// llc_misses, l1_writes, branch_mispredicts, mem_reads, mem_writes,
/// cycles, interrupts). Changing this order breaks the bit-identity
/// contract with the reference implementation (pinned by the
/// FlattenStatsGoldenLayout test).
void flatten_stats(const ExecutionStats& s, double* out) noexcept;

class ResponseMatrix {
 public:
  /// Rows per group block == hardware counters per multiplex group == SIMD
  /// lanes per kernel call.
  static constexpr std::size_t kLanes = EventDatabase::kNumCounters;

  /// One group of the blocked column-sparse layout: `cols` sparse columns,
  /// each 4 packed lane coefficients at coeff[4*c .. 4*c+3] responding to
  /// feature col_feat[c]. Column order is ascending feature index.
  struct GroupView {
    const double* lane_coeff = nullptr;  // 32-byte aligned, 4 doubles/column
    const std::uint32_t* col_feat = nullptr;
    std::size_t cols = 0;
  };

  /// Flattens the EventResponse of each id into one dense coefficient row
  /// (and caches the per-row noise terms used by end_slice), then builds
  /// the aligned group-blocked sparse layout. Validates ids against the
  /// database exactly like the reference path (throws std::out_of_range on
  /// unknown ids).
  void program(const EventDatabase& db, std::span<const std::uint32_t> ids);

  void clear() noexcept;

  std::size_t rows() const noexcept { return noise_.size(); }
  std::size_t groups() const noexcept {
    return group_off_.empty() ? 0 : group_off_.size() - 1;
  }

  // aegis-lint: noalloc
  GroupView group_view(std::size_t group) const noexcept {
    const std::uint32_t begin = group_off_[group];
    return GroupView{lane_coeff_ + std::size_t{begin} * kLanes,
                     col_feat_.data() + begin, group_off_[group + 1] - begin};
  }

  /// Expected (noise-free) count of row `row` for a feature vector produced
  /// by flatten_stats. Bit-identical to EventResponse::expected_count.
  // aegis-lint: noalloc
  double expected(std::size_t row, const double* features) const noexcept {
    const double* c = coeff_.data() + row * kStatsFeatureDim;
    double count = 0.0;
    for (std::size_t i = 0; i < kStatsFeatureDim; ++i) {
      count += c[i] * features[i];
    }
    return count < 0.0 ? 0.0 : count;
  }

  float noise_rel(std::size_t row) const noexcept { return noise_[row].rel; }
  float noise_abs(std::size_t row) const noexcept { return noise_[row].abs; }
  float host_background(std::size_t row) const noexcept {
    return noise_[row].background;
  }

  /// True when any row of `group` draws end-of-slice noise (host background
  /// or absolute measurement noise). Groups of pure guest-visible events
  /// without absolute noise skip the per-row draw tests entirely.
  bool group_has_slice_noise(std::size_t group) const noexcept {
    return slice_noise_[group] != 0;
  }

 private:
  struct RowNoise {
    float rel = 0.0f;
    float abs = 0.0f;
    float background = 0.0f;
  };

  void build_group_blocks();

  std::vector<double> coeff_;   // rows() x kStatsFeatureDim, row-major
  std::vector<RowNoise> noise_;

  // Group-blocked column-sparse layout (built by program, consumed by the
  // SIMD kernels through group_view). lane_coeff_ points at the first
  // 64-byte-aligned double inside lane_store_.
  std::vector<double> lane_store_;
  const double* lane_coeff_ = nullptr;
  std::vector<std::uint32_t> col_feat_;
  std::vector<std::uint32_t> group_off_;  // groups()+1 column offsets
  std::vector<std::uint8_t> slice_noise_;  // per group: any abs/bg noise
};

}  // namespace aegis::pmu
