#include "pmu/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace aegis::pmu::simd {

// Defined in simd_kernels_avx2.cpp / simd_kernels_avx512.cpp, which are
// compiled with their own -m flags (see src/CMakeLists.txt). Declared here
// rather than in the public header so nothing outside the dispatch seam can
// call an ISA-specific symbol without going through supported().
void expected_group_avx2(const double* lane_coeff, const std::uint32_t* col_feat,
                         std::size_t cols, const double* features,
                         double* out_lanes);
void expected_group_avx512(const double* lane_coeff,
                           const std::uint32_t* col_feat, std::size_t cols,
                           const double* features, double* out_lanes);
bool have_avx2_support() noexcept;
bool have_avx512_support() noexcept;

namespace {

/// Reference sparse kernel: the exact accumulation order every SIMD kernel
/// must reproduce per lane. Also the fallback when no vector ISA is usable.
void expected_group_scalar(const double* lane_coeff,
                           const std::uint32_t* col_feat, std::size_t cols,
                           const double* features, double* out_lanes) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const double f = features[col_feat[c]];
    const double* lane = lane_coeff + 4 * c;
    acc0 += lane[0] * f;
    acc1 += lane[1] * f;
    acc2 += lane[2] * f;
    acc3 += lane[3] * f;
  }
  out_lanes[0] = acc0;
  out_lanes[1] = acc1;
  out_lanes[2] = acc2;
  out_lanes[3] = acc3;
}

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

}  // namespace

const char* to_string(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
    case SimdIsa::kScalar:
      break;
  }
  return "scalar";
}

CpuFeatures detect_cpu_features() noexcept {
  // cpuid is not free and must never run per accumulate call; the static
  // makes repeat resolution (one per program()) a plain load.
  static const CpuFeatures cached = [] {
    CpuFeatures f;
    f.avx2 = have_avx2_support();
    f.avx512 = have_avx512_support();
    return f;
  }();
  return cached;
}

bool force_scalar_env() noexcept {
  static const bool forced = env_truthy("AEGIS_FORCE_SCALAR");
  return forced;
}

bool supported(SimdIsa isa) noexcept {
  if (isa == SimdIsa::kScalar) return true;
  if (force_scalar_env()) return false;
  const CpuFeatures f = detect_cpu_features();
  return isa == SimdIsa::kAvx2 ? f.avx2 : f.avx512;
}

SimdIsa best_isa() noexcept {
  if (supported(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
  if (supported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
}

ExpectedGroupFn expected_group_kernel(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kAvx2:
      return &expected_group_avx2;
    case SimdIsa::kAvx512:
      return &expected_group_avx512;
    case SimdIsa::kScalar:
      break;
  }
  return &expected_group_scalar;
}

}  // namespace aegis::pmu::simd
