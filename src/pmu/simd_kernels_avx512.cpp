// AVX-512 kernel for the group-blocked column-sparse expected-count layout.
//
// Compiled with -mavx512f -mavx512vl -mavx512dq -ffp-contract=off in its
// own translation unit (src/CMakeLists.txt). The main loop consumes sparse
// columns in PAIRS: one 512-bit load covers two packed 4-lane columns, one
// 512-bit multiply forms both products (multiplies are order-free — each is
// individually exactly rounded), and the two 256-bit halves are then added
// into the accumulator SEQUENTIALLY, low column first. Per lane that is
// still `acc = (acc + c0*f0) + c1*f1` in ascending column order — the
// scalar reference chain, bit for bit. The odd tail column uses the same
// 256-bit mul/add as the AVX2 kernel. No FMA anywhere.
//
// Callable only through simd::expected_group_kernel after a supported()
// check resolved at program() time (dispatch-once rule).
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
// GCC's unmasked AVX-512 cast/insert/extract intrinsics are built on
// self-initialized "undefined" registers (__Y = __Y in avx512fintrin.h),
// which -Wmaybe-uninitialized flags at -O3. That is the headers' idiom for
// "don't care" bits, not a real read of uninitialized data in this TU.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#endif

namespace aegis::pmu::simd {

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__) && \
    defined(__AVX512VL__) && defined(__AVX512DQ__)

bool have_avx512_support() noexcept {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
}

void expected_group_avx512(const double* lane_coeff,
                           const std::uint32_t* col_feat, std::size_t cols,
                           const double* features, double* out_lanes) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t c = 0;
  for (; c + 2 <= cols; c += 2) {
    const __m512d lanes = _mm512_loadu_pd(lane_coeff + 4 * c);
    const __m256d f0 = _mm256_broadcast_sd(features + col_feat[c]);
    const __m256d f1 = _mm256_broadcast_sd(features + col_feat[c + 1]);
    const __m512d f01 =
        _mm512_insertf64x4(_mm512_castpd256_pd512(f0), f1, 1);
    const __m512d prod = _mm512_mul_pd(lanes, f01);
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(prod));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
  }
  if (c < cols) {
    const __m256d lane = _mm256_load_pd(lane_coeff + 4 * c);
    const __m256d f = _mm256_broadcast_sd(features + col_feat[c]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(lane, f));
  }
  _mm256_storeu_pd(out_lanes, acc);
}

#else  // non-x86 or a toolchain without AVX-512: never selected by dispatch.

bool have_avx512_support() noexcept { return false; }

void expected_group_avx512(const double* lane_coeff,
                           const std::uint32_t* col_feat, std::size_t cols,
                           const double* features, double* out_lanes) {
  // Defensive fallback with the identical accumulation order.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t c = 0; c < cols; ++c) {
    const double f = features[col_feat[c]];
    for (int l = 0; l < 4; ++l) acc[l] += lane_coeff[4 * c + l] * f;
  }
  for (int l = 0; l < 4; ++l) out_lanes[l] = acc[l];
}

#endif

}  // namespace aegis::pmu::simd
